// Edge-semantics tests for the two-tier event kernel: ordering across the
// timer-wheel / overflow-heap boundary, generation-tagged EventId reuse, and
// cursor advancement across empty wheel levels.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aetr::sim {
namespace {

using namespace time_literals;

// Any event whose time differs from now() at or above the horizon bit
// overflows to the comparison heap; everything nearer lives in the wheel.
constexpr Time kHorizon = Scheduler::wheel_horizon();  // ~1.1 s

TEST(SchedulerEdge, SameTimeFifoAcrossWheelHeapBoundary) {
  Scheduler s;
  std::vector<int> order;
  const Time target = kHorizon + 1_ns;
  // Scheduled from t=0 the event crosses the horizon: overflow heap.
  s.schedule_at(target, [&] { order.push_back(1); });
  // From just below the target the same instant fits in the wheel.
  s.run_until(kHorizon);
  s.schedule_at(target, [&] { order.push_back(2); });
  EXPECT_EQ(s.pending(), 2u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // FIFO by scheduling order
  EXPECT_EQ(s.now(), target);
}

TEST(SchedulerEdge, HeapAndWheelEventsInterleaveInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(kHorizon + 200_ms, [&] { order.push_back(4); });  // heap
  s.schedule_at(10_ns, [&] { order.push_back(1); });              // wheel
  s.schedule_at(kHorizon + 100_ms, [&] { order.push_back(3); });  // heap
  s.schedule_at(1_ms, [&] { order.push_back(2); });               // wheel
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(s.now(), kHorizon + 200_ms);
}

TEST(SchedulerEdge, SameTimeFifoSurvivesCascades) {
  Scheduler s;
  std::vector<int> order;
  // ~1 ms from t=0 lands several wheel levels up; both events cascade to
  // level 0 together and must keep their scheduling order.
  for (int i = 0; i < 8; ++i) {
    s.schedule_at(1_ms, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SchedulerEdge, CancelOfAlreadyRanIdReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(10_ns, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerEdge, StaleIdNeverCancelsSlotReusedByNewerEvent) {
  Scheduler s;
  bool b_ran = false;
  const EventId a = s.schedule_at(10_ns, [] {});
  ASSERT_TRUE(s.cancel(a));
  const EventId b = s.schedule_at(10_ns, [&] { b_ran = true; });
  // The pool recycles slots LIFO, so b reuses a's slot with a bumped
  // generation; make sure this test really exercises reuse.
  ASSERT_EQ(a.id & 0xFFFFFFFFu, b.id & 0xFFFFFFFFu);
  ASSERT_NE(a.id, b.id);
  EXPECT_FALSE(s.cancel(a));  // stale handle: must not touch b
  s.run();
  EXPECT_TRUE(b_ran);
}

TEST(SchedulerEdge, StaleIdAfterDispatchDoesNotCancelReusedSlot) {
  Scheduler s;
  bool b_ran = false;
  const EventId a = s.schedule_at(10_ns, [] {});
  s.run();
  const EventId b = s.schedule_at(20_ns, [&] { b_ran = true; });
  ASSERT_EQ(a.id & 0xFFFFFFFFu, b.id & 0xFFFFFFFFu);
  EXPECT_FALSE(s.cancel(a));
  s.run();
  EXPECT_TRUE(b_ran);
}

TEST(SchedulerEdge, RunUntilAdvancesPastEmptyWheelLevels) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(10_ms, [&] { ran = true; });  // several wheel levels up
  s.run_until(1_ms);                          // crosses empty lower levels
  EXPECT_EQ(s.now(), 1_ms);
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 1u);
  // The cascade triggered by the advance must not perturb the event time.
  s.run_until(10_ms);
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 10_ms);
}

TEST(SchedulerEdge, RunUntilBoundaryIncludesHeapEvent) {
  Scheduler s;
  int hits = 0;
  const Time far = kHorizon + 100_ms;
  s.schedule_at(far, [&] { ++hits; });  // heap-resident
  s.run_until(far);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(s.now(), far);
}

TEST(SchedulerEdge, CancelHeapResidentEventIsO1AndEffective) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(kHorizon + 1_ms, [&] { ran = true; });
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.processed(), 0u);
}

TEST(SchedulerEdge, CancelUnlinksWheelEventImmediately) {
  Scheduler s;
  std::vector<int> order;
  const EventId id = s.schedule_at(10_ns, [&] { order.push_back(0); });
  s.schedule_at(10_ns, [&] { order.push_back(1); });
  s.schedule_at(10_ns, [&] { order.push_back(2); });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_EQ(s.pending(), 2u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerEdge, CallbackMayRescheduleIntoFreedSlot) {
  Scheduler s;
  int hits = 0;
  s.schedule_at(1_ns, [&] {
    ++hits;
    // The dispatching event's slot is already free here; reusing it for a
    // chained event must work and preserve exact timing.
    s.schedule_after(1_ns, [&] { ++hits; });
  });
  s.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), 2_ns);
}

TEST(SchedulerEdge, LongIdleGapThenDenseBurst) {
  Scheduler s;
  // Mimics the paper's workload shape: sparse far wakeups then dense edges.
  std::vector<Time> seen;
  s.schedule_at(500_ms, [&] {
    for (int i = 1; i <= 5; ++i) {
      s.schedule_after(Time::ns(i), [&] { seen.push_back(s.now()); });
    }
  });
  s.run();
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i - 1)], 500_ms + Time::ns(i));
  }
}

TEST(SchedulerEdge, PendingCountsBothTiers) {
  Scheduler s;
  const EventId a = s.schedule_at(10_ns, [] {});              // wheel
  s.schedule_at(kHorizon + 1_ms, [] {});                      // heap
  const EventId c = s.schedule_at(kHorizon + 2_ms, [] {});    // heap
  EXPECT_EQ(s.pending(), 3u);
  EXPECT_TRUE(s.cancel(a));
  EXPECT_TRUE(s.cancel(c));
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.processed(), 1u);
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace aetr::sim
