// Unit tests for the small-buffer callable used by the event kernel.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "util/inplace_function.hpp"

namespace aetr::util {
namespace {

using Fn = InplaceFunction<int(int), 32>;

TEST(InplaceFunction, DefaultIsEmpty) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  Fn g{nullptr};
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InplaceFunction, InvokesSmallCaptureInline) {
  int base = 40;
  Fn f{[&base](int x) { return base + x; }};
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(2), 42);
  static_assert(Fn::stores_inline<decltype([&base](int x) { return base + x; })>());
}

TEST(InplaceFunction, MoveTransfersOwnership) {
  int calls = 0;
  Fn f{[&calls](int x) {
    ++calls;
    return x;
  }};
  Fn g{std::move(f)};
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(7), 7);
  Fn h;
  h = std::move(g);
  EXPECT_FALSE(static_cast<bool>(g));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(h(9), 9);
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFunction, HoldsMoveOnlyCallable) {
  auto p = std::make_unique<int>(5);
  InplaceFunction<int(), 32> f{[q = std::move(p)] { return *q; }};
  EXPECT_EQ(f(), 5);
  InplaceFunction<int(), 32> g{std::move(f)};
  EXPECT_EQ(g(), 5);  // unique_ptr survived the relocation
}

TEST(InplaceFunction, OversizedCaptureFallsBackToHeap) {
  struct Big {
    char data[128];
  };
  Big big{};
  big.data[100] = 7;
  InplaceFunction<int(), 32> f{[big] { return static_cast<int>(big.data[100]); }};
  static_assert(
      !InplaceFunction<int(), 32>::stores_inline<decltype([big] {
        return static_cast<int>(big.data[100]);
      })>());
  EXPECT_EQ(f(), 7);
  InplaceFunction<int(), 32> g{std::move(f)};
  EXPECT_EQ(g(), 7);
  g.reset();
  EXPECT_FALSE(static_cast<bool>(g));  // heap callable destroyed exactly once
}

TEST(InplaceFunction, ResetDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InplaceFunction<void(), 32> f{[t = std::move(token)] { (void)t; }};
  EXPECT_FALSE(watch.expired());
  f.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(InplaceFunction, AssignmentReplacesPrevious) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InplaceFunction<int(), 32> f{[t = std::move(token)] { return *t; }};
  f = InplaceFunction<int(), 32>{[] { return 9; }};
  EXPECT_TRUE(watch.expired());  // old capture destroyed on assignment
  EXPECT_EQ(f(), 9);
}

TEST(InplaceFunction, ForwardsArguments) {
  InplaceFunction<std::string(std::string, int), 48> f{
      [](std::string s, int n) { return s + std::to_string(n); }};
  EXPECT_EQ(f("x", 3), "x3");
}

}  // namespace
}  // namespace aetr::util
