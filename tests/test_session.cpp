// core::Session: the incremental run API behind run_scenario().
//
// The load-bearing properties:
//   * streaming (feed / advance_to) without snapshots reproduces the batch
//     run exactly, at every advance schedule;
//   * a snapshot is a deterministic synchronization point: a fresh session
//     restored from the blob continues byte-identically to the session that
//     took it — including later snapshot blobs, byte for byte — at 25
//     randomized mid-stream points, with faults injected and telemetry on;
//   * backpressure, feed ordering, and restore rejection behave as
//     documented in core/session.hpp.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/session.hpp"
#include "fault/fault_plan.hpp"
#include "gen/sources.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace aetr;

aer::EventStream make_stream(std::size_t n, std::uint64_t seed) {
  gen::PoissonSource source{100e3, 256, seed};
  return gen::take(source, n);
}

core::ScenarioConfig faulty_scenario() {
  core::ScenarioConfig scenario;
  scenario.fast_forward = false;
  scenario.faults = fault::scaled_plan(0.3, 42);
  telemetry::SessionOptions tel;
  tel.metrics = true;  // probes + snapshot grid; no artifact paths
  scenario.telemetry = core::TelemetryChoice::owned(tel);
  return scenario;
}

void expect_equal(const core::RunResult& a, const core::RunResult& b,
                  const std::string& what) {
  EXPECT_EQ(a.events_in, b.events_in) << what;
  EXPECT_EQ(a.words_out, b.words_out) << what;
  EXPECT_EQ(a.handshakes, b.handshakes) << what;
  EXPECT_EQ(a.caviar_violations, b.caviar_violations) << what;
  EXPECT_EQ(a.protocol_violations, b.protocol_violations) << what;
  EXPECT_EQ(a.fifo_overflows, b.fifo_overflows) << what;
  EXPECT_EQ(a.batches, b.batches) << what;
  EXPECT_EQ(a.decoded.size(), b.decoded.size()) << what;
  EXPECT_EQ(a.sim_end.count_ps(), b.sim_end.count_ps()) << what;
  EXPECT_EQ(a.average_power_w, b.average_power_w) << what;
  EXPECT_EQ(a.error.events, b.error.events) << what;
  EXPECT_EQ(a.error.mean_rel_error(), b.error.mean_rel_error()) << what;
  EXPECT_EQ(a.faults.injected_total(), b.faults.injected_total()) << what;
  EXPECT_EQ(a.faults.recovered_total(), b.faults.recovered_total()) << what;
  EXPECT_EQ(a.faults.watchdog_resyncs, b.faults.watchdog_resyncs) << what;
  EXPECT_EQ(a.faults.crc_rejected_words, b.faults.crc_rejected_words) << what;
}

// --- streaming == batch ------------------------------------------------------

// advance_to() at any mid-stream point is composition-transparent: the
// final result matches feeding the whole stream and finishing in one go.
TEST(Session, AdvanceScheduleIsTransparent) {
  core::ScenarioConfig scenario;
  scenario.fast_forward = false;  // force the event-driven path in batch
  const aer::EventStream events = make_stream(3000, 7);
  core::Session batch{scenario};
  batch.feed_all(events);
  const core::RunResult ref = batch.finish();
  const Time end = events.back().time;
  for (int k = 1; k <= 7; ++k) {
    const Time at = Time::ps(end.count_ps() * k / 8);
    core::Session s{scenario};
    s.feed_all(events);
    s.advance_to(at);
    expect_equal(s.finish(), ref, "advance at k=" + std::to_string(k));
  }
}

// Per-event feeding with interleaved advances (the service-mode pattern,
// minus snapshots) also reproduces the batch run exactly.
TEST(Session, StreamedFeedMatchesBatch) {
  core::ScenarioConfig scenario;
  scenario.fast_forward = false;
  const aer::EventStream events = make_stream(3000, 7);
  core::Session batch{scenario};
  batch.feed_all(events);
  const core::RunResult ref = batch.finish();

  core::Session s{scenario};
  std::size_t i = 0;
  for (const auto& ev : events) {
    ASSERT_TRUE(s.feed(ev));
    if (++i % 64 == 0) s.advance_to(ev.time);
  }
  expect_equal(s.finish(), ref, "streamed feed");
}

// --- snapshot / restore ------------------------------------------------------

// The core property, at `points` randomized mid-stream snapshot points:
// restore the blob into a fresh session, replay the rest of the stream,
// and the continuation is byte-identical to the session that took the
// snapshot — checked via a second snapshot at a fixed later checkpoint
// (compared byte for byte) and the final RunResult.
void check_kill_resume(const core::ScenarioConfig& scenario, int points) {
  const aer::EventStream events = make_stream(2000, 11);
  const Time end = events.back().time;
  const Time checkpoint = Time::ps(end.count_ps() * 9 / 10);
  std::mt19937_64 rng{0xA5E7u};
  std::uniform_int_distribution<std::int64_t> pick{end.count_ps() / 20,
                                                   end.count_ps() * 4 / 5};
  for (int p = 0; p < points; ++p) {
    const Time at = Time::ps(pick(rng));

    // Reference: one session that snapshots mid-stream and keeps going.
    core::Session ref{scenario};
    std::vector<std::uint8_t> blob;
    std::vector<std::uint8_t> ref_checkpoint;
    std::uint64_t fed_at_snapshot = 0;
    for (const auto& ev : events) {
      if (blob.empty() && ev.time >= at) {
        ref.advance_to(at);
        blob = ref.snapshot();
        fed_at_snapshot = ref.events_fed();
      }
      if (ref_checkpoint.empty() && ev.time >= checkpoint) {
        ref.advance_to(checkpoint);
        ref_checkpoint = ref.snapshot();
      }
      ASSERT_TRUE(ref.feed(ev));
    }
    ASSERT_FALSE(blob.empty());
    ASSERT_FALSE(ref_checkpoint.empty());
    const core::RunResult a = ref.finish();

    // Resumed: a fresh session restored from the blob, fed the remainder.
    core::Session res{scenario};
    res.restore(blob);
    ASSERT_EQ(res.events_fed(), fed_at_snapshot);
    std::vector<std::uint8_t> res_checkpoint;
    for (std::size_t i = fed_at_snapshot; i < events.size(); ++i) {
      if (res_checkpoint.empty() && events[i].time >= checkpoint) {
        res.advance_to(checkpoint);
        res_checkpoint = res.snapshot();
      }
      ASSERT_TRUE(res.feed(events[i]));
    }
    const core::RunResult b = res.finish();

    const std::string what = "snapshot at " + std::to_string(at.count_ps()) +
                             " ps (point " + std::to_string(p) + ")";
    EXPECT_EQ(ref_checkpoint, res_checkpoint)
        << what << ": checkpoint blobs differ";
    expect_equal(a, b, what);
  }
}

TEST(Session, KillResumeByteIdentical25Points) {
  core::ScenarioConfig scenario;
  scenario.fast_forward = false;
  check_kill_resume(scenario, 25);
}

TEST(Session, KillResumeByteIdenticalWithFaultsAndTelemetry) {
  check_kill_resume(faulty_scenario(), 25);
}

// Two sessions driven through the identical feed/advance/snapshot schedule
// produce identical blobs and results: the run is a deterministic function
// of (stream, snapshot schedule).
TEST(Session, SnapshotScheduleIsDeterministic) {
  core::ScenarioConfig scenario;
  scenario.fast_forward = false;
  const aer::EventStream events = make_stream(1500, 3);
  const Time at = Time::ps(events.back().time.count_ps() / 2);
  auto run = [&](std::vector<std::uint8_t>& blob) {
    core::Session s{scenario};
    for (const auto& ev : events) {
      if (blob.empty() && ev.time >= at) {
        s.advance_to(at);
        blob = s.snapshot();
      }
      EXPECT_TRUE(s.feed(ev));
    }
    return s.finish();
  };
  std::vector<std::uint8_t> blob1, blob2;
  const core::RunResult r1 = run(blob1);
  const core::RunResult r2 = run(blob2);
  EXPECT_EQ(blob1, blob2);
  expect_equal(r1, r2, "repeated schedule");
}

// --- backpressure / API contract --------------------------------------------

TEST(Session, BackpressureRefusesThenDrains) {
  core::ScenarioConfig scenario;
  scenario.session.max_buffered_events = 8;
  const aer::EventStream events = make_stream(16, 5);
  core::Session s{scenario};
  std::size_t accepted = 0;
  while (accepted < events.size() && s.feed(events[accepted])) ++accepted;
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(s.buffered(), 8u);
  EXPECT_TRUE(s.backpressure());
  EXPECT_FALSE(s.feed(events[accepted]));
  s.advance_to(events[accepted].time);  // submits everything <= that time
  EXPECT_FALSE(s.backpressure());
  EXPECT_TRUE(s.feed(events[accepted]));
  EXPECT_EQ(s.events_fed(), 9u);
  (void)s.finish();
}

TEST(Session, FeedRejectsTimeRegression) {
  core::Session s{core::ScenarioConfig{}};
  EXPECT_TRUE(s.feed(aer::Event{1, Time::us(10)}));
  EXPECT_THROW((void)s.feed(aer::Event{2, Time::us(9)}),
               std::invalid_argument);
}

TEST(Session, RestoreRejectsMismatchedScenario) {
  core::ScenarioConfig a;
  a.fast_forward = false;
  core::Session s{a};
  s.advance_to(Time::us(50));
  const auto blob = s.snapshot();

  core::ScenarioConfig b = a;
  b.interface.clock.theta_div *= 2;
  core::Session other{b};
  EXPECT_THROW(other.restore(blob), std::runtime_error);
}

TEST(Session, RestoreRejectsTruncatedBlob) {
  core::ScenarioConfig scenario;
  scenario.fast_forward = false;
  core::Session s{scenario};
  s.advance_to(Time::us(50));
  auto blob = s.snapshot();
  blob.resize(blob.size() / 2);
  core::Session fresh{scenario};
  EXPECT_THROW(fresh.restore(blob), std::runtime_error);
}

TEST(Session, RestoreRequiresFreshSession) {
  core::ScenarioConfig scenario;
  scenario.fast_forward = false;
  core::Session s{scenario};
  s.advance_to(Time::us(50));
  const auto blob = s.snapshot();
  core::Session used{scenario};
  (void)used.feed(aer::Event{1, Time::us(1)});
  EXPECT_THROW(used.restore(blob), std::logic_error);
}

// run_scenario() is a thin wrapper over Session: same stream, same result.
TEST(Session, WrapperEquivalence) {
  for (const bool fast_forward : {false, true}) {
    core::ScenarioConfig scenario;
    scenario.fast_forward = fast_forward;
    const aer::EventStream events = make_stream(1000, 13);
    const core::RunResult a = core::run_scenario(scenario, events);
    core::Session s{scenario};
    s.feed_all(events);
    expect_equal(s.finish(), a,
                 fast_forward ? "wrapper (fast path)" : "wrapper (DES)");
  }
}

}  // namespace
