// The paper's headline claims as executable regression tests — small-scale
// versions of the figure benches with the qualitative assertions of
// EXPERIMENTS.md pinned. If any refactor bends a reproduced curve, this
// suite fails before the benches are ever rerun.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/error.hpp"
#include "analysis/power_curve.hpp"
#include "clockgen/schedule.hpp"
#include "core/scenario.hpp"
#include "gen/sources.hpp"

namespace aetr {
namespace {

using namespace time_literals;

core::InterfaceConfig iface_config(std::uint32_t theta, bool divide) {
  core::InterfaceConfig cfg;
  cfg.clock.theta_div = theta;
  cfg.clock.divide_enabled = divide;
  cfg.clock.shutdown_enabled = divide;
  cfg.front_end.keep_records = false;
  cfg.fifo.batch_threshold = 512;
  return cfg;
}

double power_at(double rate_hz, std::uint32_t theta, bool divide,
                std::uint32_t seed) {
  gen::LfsrRateSource src{rate_hz, Frequency::mhz(30.0), 128, 0xACE1u + seed,
                          0x1234u + seed};
  const auto n = static_cast<std::size_t>(
      std::clamp(rate_hz * 0.3, 200.0, 6000.0));
  core::ScenarioConfig sc;
  sc.interface = iface_config(theta, divide);
  return core::run_scenario(sc, src, n).average_power_w;
}

// --- Abstract -----------------------------------------------------------

TEST(PaperClaims, Abstract_4p5mW_At550k) {
  EXPECT_LT(power_at(550e3, 64, true, 1), 4.6e-3);
  EXPECT_GT(power_at(550e3, 64, true, 1), 4.0e-3);
}

TEST(PaperClaims, Abstract_50uW_NoSpikes) {
  core::ScenarioConfig sc;
  sc.interface = iface_config(64, true);
  sc.cooldown = Time::sec(1.0);
  const auto r = core::run_scenario(sc, {});
  EXPECT_LT(r.average_power_w, 60e-6);
  EXPECT_GT(r.average_power_w, 49e-6);
}

TEST(PaperClaims, Abstract_AccuracyAbove97Percent) {
  clockgen::ScheduleConfig sc;
  sc.theta_div = 64;
  const auto stats =
      analysis::sweep_error(sc, 50e3, {.n_events = 4000, .seed = 2});
  EXPECT_GT(1.0 - stats.weighted_rel_error(), 0.97);
}

// --- Section 5 / Fig. 6 ---------------------------------------------------

TEST(PaperClaims, Fig6_ErrorBelowBoundAcrossActiveRegion) {
  clockgen::ScheduleConfig sc;
  sc.theta_div = 64;
  for (const double rate : {3e3, 30e3, 300e3}) {
    const auto s = analysis::sweep_error(sc, rate, {.n_events = 3000,
                                                    .seed = 3});
    EXPECT_LT(s.weighted_rel_error(), analysis::analytic_error_bound(64))
        << rate;
  }
}

TEST(PaperClaims, Fig6_ThetaOrderingOfAccuracy) {
  std::vector<double> errs;
  for (const std::uint32_t theta : {16u, 32u, 64u}) {
    clockgen::ScheduleConfig sc;
    sc.theta_div = theta;
    errs.push_back(analysis::sweep_error(sc, 30e3, {.n_events = 4000,
                                                    .seed = 4})
                       .weighted_rel_error());
  }
  EXPECT_GT(errs[0], errs[1]);
  EXPECT_GT(errs[1], errs[2]);
}

TEST(PaperClaims, Fig6_InactiveRegionSaturates) {
  clockgen::ScheduleConfig sc;
  sc.theta_div = 64;
  const auto s = analysis::sweep_error(sc, 100.0, {.n_events = 800,
                                                   .seed = 5});
  EXPECT_GT(s.frac_saturated(), 0.5);
  EXPECT_GT(s.weighted_rel_error(), 0.5);
}

TEST(PaperClaims, Fig6_HighActivityErrorRises) {
  clockgen::ScheduleConfig sc;
  sc.theta_div = 64;
  const auto mid = analysis::sweep_error(sc, 100e3, {.n_events = 3000,
                                                     .seed = 6});
  const auto hi = analysis::sweep_error(sc, 2e6, {.n_events = 3000,
                                                  .seed = 6});
  EXPECT_GT(hi.weighted_rel_error(), 2.0 * mid.weighted_rel_error());
}

// --- Section 5.2 / Fig. 8 --------------------------------------------------

TEST(PaperClaims, Fig8_NaiveBaselineIsFlat) {
  const double lo = power_at(100.0, 64, false, 7);
  const double hi = power_at(550e3, 64, false, 7);
  EXPECT_GT(lo / hi, 0.9);
  EXPECT_NEAR(hi, 4.5e-3, 0.4e-3);
}

TEST(PaperClaims, Fig8_ActiveRegionSavingAround55Percent) {
  const double divided = power_at(2e3, 64, true, 8);
  const double naive = power_at(2e3, 64, false, 8);
  const double saving = 1.0 - divided / naive;
  EXPECT_GT(saving, 0.40);
  EXPECT_LT(saving, 0.70);
}

TEST(PaperClaims, Fig8_ProportionalitySpanTens) {
  const double busy = power_at(550e3, 64, true, 9);
  core::ScenarioConfig sc;
  sc.interface = iface_config(64, true);
  sc.cooldown = Time::sec(1.0);
  const double idle = core::run_scenario(sc, {}).average_power_w;
  EXPECT_GT(busy / idle, 60.0);  // paper: ~90x
  EXPECT_LT(busy / idle, 120.0);
}

TEST(PaperClaims, Fig8_ThetaOrderingOfPowerAtLowRates) {
  const double p16 = power_at(300.0, 16, true, 10);
  const double p64 = power_at(300.0, 64, true, 10);
  EXPECT_LT(p16, p64);  // smaller theta divides/sleeps sooner
}

TEST(PaperClaims, Fig8_FlexPointNearInverseTmax) {
  // "The maximum time interval ... can be computed as the inverse of the
  // event rate in the flex point": below 1/T_max power falls steeply (the
  // clock sleeps most of the time), above it the curve plateaus.
  clockgen::ScheduleConfig sc;
  sc.theta_div = 64;
  const double flex = 1.0 / clockgen::SamplingSchedule{sc}.awake_span().to_sec();
  const auto cal = power::PowerCalibration::paper();
  const double below = analysis::expected_power(sc, cal, flex / 8.0).power_w;
  const double at = analysis::expected_power(sc, cal, flex).power_w;
  const double above = analysis::expected_power(sc, cal, flex * 8.0).power_w;
  // Steep below the flex (more than 2.5x per octave-of-8), flat above.
  EXPECT_GT(at / below, 2.5);
  EXPECT_LT(above / at, 1.8);
}

// --- Section 5.2 in-text -----------------------------------------------------

TEST(PaperClaims, WakeRecoveryComparableToClockPeriod) {
  // "the time to recover from the off-state is in the order of 100 ns;
  // comparable with a single clock period at the max freq".
  core::InterfaceConfig cfg = iface_config(64, true);
  EXPECT_NEAR(cfg.clock.wake_latency.to_ns(), 100.0, 1.0);
  sim::Scheduler sched;
  core::AerToI2sInterface iface{sched, cfg};
  EXPECT_LT(cfg.clock.wake_latency.to_sec(),
            2.0 * iface.tick_unit().to_sec());
}

TEST(PaperClaims, MinInterspike130ns) {
  sim::Scheduler sched;
  core::AerToI2sInterface iface{sched, iface_config(64, true)};
  EXPECT_NEAR((iface.tick_unit() * 2).to_ns(), 133.3, 0.5);
}

}  // namespace
}  // namespace aetr
