// Tests for the activity-based power model and its calibration anchors.
#include <gtest/gtest.h>

#include <vector>

#include "power/model.hpp"

namespace aetr::power {
namespace {

using namespace time_literals;

ActivityTotals naive_at(double rate_hz, Time window) {
  // The undivided baseline: oscillator always awake, sampling at 15 MHz.
  ActivityTotals a;
  a.window = window;
  a.osc_awake = window;
  a.sampling_cycles =
      static_cast<std::uint64_t>(15e6 * window.to_sec());
  a.events = static_cast<std::uint64_t>(rate_hz * window.to_sec());
  a.fifo_writes = a.events;
  a.fifo_reads = a.events;
  a.i2s_bits = a.events * 32;
  return a;
}

TEST(PowerModel, StaticFloorMatchesPaper) {
  PowerModel model;
  ActivityTotals idle;
  idle.window = 1_sec;
  EXPECT_NEAR(model.average_power_w(idle), 50e-6, 1e-9);
}

TEST(PowerModel, NaiveAnchorNear4p5mW) {
  // Paper: 4.5 mW at 550 kevt/s with the constant 15 MHz clock.
  PowerModel model;
  const auto a = naive_at(550e3, 1_sec);
  EXPECT_NEAR(model.average_power_w(a), 4.5e-3, 0.15e-3);
}

TEST(PowerModel, NaiveIsRateInsensitive) {
  // Paper: "a naive constant clock methodology is stuck to the same 4.5 mW
  // power regardless of the event rate".
  PowerModel model;
  const double hi = model.average_power_w(naive_at(550e3, 1_sec));
  const double lo = model.average_power_w(naive_at(10.0, 1_sec));
  EXPECT_GT(lo / hi, 0.9);
}

TEST(PowerModel, EnergyScalesWithWindow) {
  PowerModel model;
  const auto a1 = naive_at(100e3, 1_sec);
  const auto a2 = naive_at(100e3, 2_sec);
  ActivityTotals doubled = a2;
  EXPECT_NEAR(model.energy_j(doubled), 2.0 * model.energy_j(a1), 1e-9);
}

TEST(PowerModel, BreakdownSumsToTotal) {
  PowerModel model;
  const auto a = naive_at(250e3, 1_sec);
  const auto b = model.breakdown(a);
  EXPECT_NEAR(b.total_w(), model.average_power_w(a), 1e-12);
  EXPECT_GT(b.sampling_w, 0.0);
  EXPECT_GT(b.osc_domain_w, 0.0);
  EXPECT_GT(b.i2s_w, 0.0);
}

TEST(PowerModel, OscDomainAboutHalfTheDynamicBudget) {
  // The split that makes division alone saturate at the paper's ~55 %.
  PowerModel model;
  const auto b = model.breakdown(naive_at(550e3, 1_sec));
  const double dynamic = b.total_w() - b.static_w;
  EXPECT_NEAR(b.osc_domain_w / dynamic, 0.45, 0.1);
}

TEST(PowerModel, IdealLineEq1) {
  PowerModel model;
  const double espike = 8.1e-9;
  EXPECT_NEAR(model.ideal_power_w(0.0, espike), 50e-6, 1e-9);
  EXPECT_NEAR(model.ideal_power_w(550e3, espike), 50e-6 + 4.455e-3, 1e-6);
}

TEST(PowerModel, EstimateEspikeFromHighActivity) {
  EXPECT_NEAR(estimate_espike_j(4.5e-3, 50e-6, 550e3), 8.09e-9, 0.01e-9);
  EXPECT_THROW((void)estimate_espike_j(1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(estimate_espike_j(1e-6, 50e-6, 1e3), 0.0);  // clamped
}

TEST(PowerModel, ActivityDifference) {
  const auto a1 = naive_at(100e3, 1_sec);
  const auto a2 = naive_at(100e3, 2_sec);
  const auto d = a2.since(a1);
  EXPECT_EQ(d.window, 1_sec);
  EXPECT_EQ(d.events, a1.events);
  EXPECT_EQ(d.sampling_cycles, a1.sampling_cycles);
}

TEST(ProportionalityIndex, FlatCurveScoresZero) {
  const std::vector<double> rates{1e2, 1e3, 1e4, 1e5, 550e3};
  const std::vector<double> flat(rates.size(), 4.5e-3);
  EXPECT_NEAR(energy_proportionality_index(rates, flat, 50e-6), 0.0, 1e-6);
}

TEST(ProportionalityIndex, IdealCurveScoresOne) {
  const std::vector<double> rates{1e2, 1e3, 1e4, 1e5, 550e3};
  std::vector<double> ideal;
  const double espike = estimate_espike_j(4.5e-3, 50e-6, 550e3);
  for (double r : rates) ideal.push_back(espike * r + 50e-6);
  EXPECT_NEAR(energy_proportionality_index(rates, ideal, 50e-6), 1.0, 1e-6);
}

TEST(ProportionalityIndex, IntermediateCurveBetween) {
  const std::vector<double> rates{1e2, 1e3, 1e4, 1e5, 550e3};
  std::vector<double> mixed;
  const double espike = estimate_espike_j(4.5e-3, 50e-6, 550e3);
  for (double r : rates) {
    mixed.push_back(0.5 * (espike * r + 50e-6) + 0.5 * 4.5e-3);
  }
  const double idx = energy_proportionality_index(rates, mixed, 50e-6);
  EXPECT_GT(idx, 0.3);
  EXPECT_LT(idx, 0.7);
}

}  // namespace
}  // namespace aetr::power
