// Tests for the cycle-level ring oscillator, divider cascade, and the DES
// clock generator (capture semantics + activity accounting).
#include <gtest/gtest.h>

#include <vector>

#include "clockgen/clock_generator.hpp"
#include "clockgen/divider.hpp"
#include "clockgen/ring_oscillator.hpp"
#include "sim/scheduler.hpp"

namespace aetr::clockgen {
namespace {

using namespace time_literals;

TEST(RingOscillator, NominalFrequencyFromStages) {
  sim::Scheduler sched;
  RingOscillator osc{sched};  // 9 stages x 463 ps x 2 = 8334 ps
  EXPECT_NEAR(osc.nominal_frequency().to_mhz(), 120.0, 0.1);
}

TEST(RingOscillator, EvenStageCountRejected) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 8;
  EXPECT_THROW((RingOscillator{sched, cfg}), std::invalid_argument);
}

TEST(RingOscillator, ProducesPeriodicEdges) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 5;
  cfg.stage_delay = 1_ns;  // period 10 ns
  RingOscillator osc{sched, cfg};
  std::vector<Time> edges;
  osc.line().on_rising([&](Time t, Time) { edges.push_back(t); });
  osc.start();
  sched.run_until(55_ns);
  ASSERT_EQ(edges.size(), 5u);
  EXPECT_EQ(edges[0], 10_ns);
  EXPECT_EQ(edges[4], 50_ns);
}

TEST(RingOscillator, SleepStopsAfterInFlightCycle) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 5;
  cfg.stage_delay = 1_ns;
  RingOscillator osc{sched, cfg};
  int edges = 0;
  osc.line().on_rising([&](Time, Time) { ++edges; });
  osc.start();
  sched.run_until(25_ns);
  EXPECT_EQ(edges, 2);
  osc.sleep();  // glitch-free: the cycle in flight still completes
  sched.run_until(1_us);
  EXPECT_EQ(edges, 3);
  EXPECT_FALSE(osc.running());
}

TEST(RingOscillator, WakeLatencyMatchesPaper) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 5;
  cfg.stage_delay = 1_ns;
  cfg.wake_latency = 100_ns;  // paper §5.2: recovery ~100 ns
  RingOscillator osc{sched, cfg};
  std::vector<Time> edges;
  osc.line().on_rising([&](Time t, Time) { edges.push_back(t); });
  osc.start();
  sched.run_until(15_ns);
  osc.sleep();
  sched.run_until(500_ns);
  ASSERT_EQ(edges.size(), 2u);
  osc.wake();
  sched.run_until(700_ns);
  ASSERT_GE(edges.size(), 3u);
  // First edge after wake: latency plus one full cycle.
  EXPECT_EQ(edges[2], 610_ns);
  EXPECT_EQ(osc.wakeups(), 1u);
}

TEST(RingOscillator, WakeCancelsPendingSleep) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 5;
  cfg.stage_delay = 1_ns;
  RingOscillator osc{sched, cfg};
  osc.start();
  sched.run_until(12_ns);
  osc.sleep();
  osc.wake();  // request raced the sleep: ring must keep running
  sched.run_until(100_ns);
  EXPECT_TRUE(osc.running());
}

TEST(RingOscillator, AwakeTimeAccounting) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 5;
  cfg.stage_delay = 1_ns;
  RingOscillator osc{sched, cfg};
  osc.start();
  sched.run_until(20_ns);
  osc.sleep();
  sched.run();  // final edge at 30 ns, then frozen
  sched.run_until(1_us);
  EXPECT_EQ(osc.awake_time(), 30_ns);
}

TEST(RingOscillator, JitterPreservesMeanPeriod) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 5;
  cfg.stage_delay = 1_ns;
  cfg.jitter_stddev = 0.05;
  RingOscillator osc{sched, cfg};
  int edges = 0;
  osc.line().on_rising([&](Time, Time) { ++edges; });
  osc.start();
  sched.run_until(100_us);
  // 10 ns nominal period -> ~10000 edges; 5 % cycle jitter averages out.
  EXPECT_NEAR(edges, 10000, 150);
}

TEST(Divider, DividesByPowerOfTwo) {
  sim::Scheduler sched;
  sim::FixedClock clk{sched, 10_ns};
  DividerCascade div{clk.line(), 2};  // /4
  std::vector<Time> out;
  div.line().on_rising([&](Time t, Time p) {
    out.push_back(t);
    EXPECT_EQ(p, 40_ns);
  });
  clk.start();
  sched.run_until(200_ns);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 40_ns);
  EXPECT_EQ(out[1], 80_ns);
  EXPECT_EQ(div.input_edges(), 20u);
}

TEST(Divider, RippleToggleCount) {
  sim::Scheduler sched;
  sim::FixedClock clk{sched, 10_ns};
  DividerCascade div{clk.line(), 3};  // /8
  clk.start();
  sched.run_until(80_ns);  // exactly 8 input edges: one full wrap
  // Ripple counter toggles: stage0 every edge (8), stage1 every 2nd (4),
  // stage2 every 4th (2) -> 14 total.
  EXPECT_EQ(div.ff_toggles(), 14u);
}

TEST(Divider, ChainTo30MhzReference) {
  sim::Scheduler sched;
  RingOscillator osc{sched};  // ~120 MHz
  DividerCascade ref{osc.line(), 2};
  int ref_edges = 0;
  ref.line().on_rising([&](Time, Time) { ++ref_edges; });
  osc.start();
  sched.run_until(1_us);
  EXPECT_NEAR(ref_edges, 30, 1);  // 30 MHz reference
}

TEST(Divider, InvalidStagesThrow) {
  sim::Scheduler sched;
  sim::FixedClock clk{sched, 10_ns};
  EXPECT_THROW((DividerCascade{clk.line(), 0}), std::invalid_argument);
  EXPECT_THROW((DividerCascade{clk.line(), 17}), std::invalid_argument);
}

// ---------------------------------------------------------------------------

ClockGeneratorConfig small_cfg() {
  ClockGeneratorConfig cfg;
  cfg.theta_div = 8;
  cfg.n_div = 3;
  return cfg;
}

TEST(ClockGenerator, TminFromRingAndDividers) {
  sim::Scheduler sched;
  ClockGenerator cg{sched};
  // 120 MHz / 8 = 15 MHz -> 66.67 ns.
  EXPECT_NEAR(cg.tmin().to_ns(), 66.67, 0.05);
}

TEST(ClockGenerator, CaptureQuantisesToSamplingEdge) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  const Time tmin = cg.tmin();
  std::uint64_t got_ticks = 0;
  Time got_edge;
  sched.schedule_at(tmin * 5 + 10_ns, [&] {
    cg.capture_request(0, [&](Time edge, std::uint64_t ticks, bool sat) {
      got_edge = edge;
      got_ticks = ticks;
      EXPECT_FALSE(sat);
    });
  });
  sched.run();
  EXPECT_EQ(got_ticks, 6u);
  EXPECT_EQ(got_edge, tmin * 6);
}

TEST(ClockGenerator, CaptureWithSyncEdges) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  const Time tmin = cg.tmin();
  std::uint64_t got_ticks = 0;
  sched.schedule_at(tmin * 3 + 1_ns, [&] {
    cg.capture_request(2, [&](Time, std::uint64_t ticks, bool) {
      got_ticks = ticks;
    });
  });
  sched.run();
  EXPECT_EQ(got_ticks, 6u);  // edge 4 + 2 sync edges
}

TEST(ClockGenerator, CounterResetsAfterCapture) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  const Time tmin = cg.tmin();
  std::vector<std::uint64_t> ticks;
  auto capture_at = [&](Time t) {
    sched.schedule_at(t, [&] {
      cg.capture_request(
          0, [&](Time, std::uint64_t tk, bool) { ticks.push_back(tk); });
    });
  };
  capture_at(tmin * 4 + 1_ns);
  capture_at(tmin * 9 - 1_ns);  // <4 ticks after the previous sample edge
  sched.run();
  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_EQ(ticks[0], 5u);
  EXPECT_EQ(ticks[1], 4u);  // counter restarted at the 5*tmin sample edge
}

TEST(ClockGenerator, SleepsAfterScheduleAndTagsSaturated) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  const Time awake = cg.schedule().awake_span();
  bool saturated = false;
  std::uint64_t got_ticks = 0;
  sched.schedule_at(awake * 3, [&] {
    EXPECT_TRUE(cg.asleep());
    cg.capture_request(2, [&](Time, std::uint64_t ticks, bool sat) {
      saturated = sat;
      got_ticks = ticks;
    });
  });
  sched.run();
  EXPECT_TRUE(saturated);
  EXPECT_EQ(got_ticks, cg.schedule().saturation_ticks());
  EXPECT_EQ(cg.activity().wakeups, 1u);
}

TEST(ClockGenerator, OverlappingCaptureThrows) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  sched.schedule_at(1_ns, [&] {
    cg.capture_request(2, [](Time, std::uint64_t, bool) {});
    EXPECT_THROW(cg.capture_request(2, [](Time, std::uint64_t, bool) {}),
                 std::logic_error);
  });
  sched.run();
}

TEST(ClockGenerator, LevelAndPeriodTrackSchedule) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  const Time tmin = cg.tmin();
  EXPECT_EQ(cg.level(), 0u);
  EXPECT_EQ(cg.current_period(), tmin);
  sched.run_until(tmin * 9);  // past the first division (theta=8)
  EXPECT_EQ(cg.level(), 1u);
  EXPECT_EQ(cg.current_period(), tmin * 2);
}

TEST(ClockGenerator, ActivityCyclesMatchScheduleMath) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  // Run past shutdown with no events: cycles = theta*(n+1)-1 = 31,
  // awake = awake_span.
  sched.run_until(1_sec);
  const auto a = cg.activity();
  EXPECT_EQ(a.sampling_cycles, 31u);
  EXPECT_EQ(a.awake, cg.schedule().awake_span());
  EXPECT_EQ(a.captures, 0u);
}

TEST(ClockGenerator, NaiveModeNeverSleeps) {
  sim::Scheduler sched;
  ClockGeneratorConfig cfg = small_cfg();
  cfg.divide_enabled = false;
  ClockGenerator cg{sched, cfg};
  sched.run_until(1_ms);
  EXPECT_FALSE(cg.asleep());
  const auto a = cg.activity();
  EXPECT_EQ(a.awake, 1_ms);
  // 15 MHz for 1 ms -> ~15000 cycles.
  EXPECT_NEAR(static_cast<double>(a.sampling_cycles), 15000.0, 2.0);
}

TEST(ClockGenerator, RuntimeReconfigTakesEffect) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  sched.run_until(10_us);
  cg.set_theta_div(16);
  EXPECT_EQ(cg.config().theta_div, 16u);
  EXPECT_EQ(cg.level(), 0u);  // schedule restarted
  cg.set_n_div(5);
  const Time expected =
      cg.tmin() * static_cast<Time::Rep>(16 * ((1 << 6) - 1));
  EXPECT_EQ(cg.schedule().awake_span(), expected);
}

TEST(ClockGenerator, ReconfigSettlesActivity) {
  sim::Scheduler sched;
  ClockGenerator cg{sched, small_cfg()};
  const Time tmin = cg.tmin();
  sched.run_until(tmin * 4);
  cg.set_theta_div(16);
  sched.run_until(tmin * 10);
  const auto a = cg.activity();
  EXPECT_EQ(a.sampling_cycles, 10u);  // 4 before + 6 after
}

}  // namespace
}  // namespace aetr::clockgen
