// Unit tests for the discrete-event kernel, clock lines, and VCD writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "sim/vcd.hpp"

namespace aetr::sim {
namespace {

using namespace time_literals;

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30_ns, [&] { order.push_back(3); });
  s.schedule_at(10_ns, [&] { order.push_back(1); });
  s.schedule_at(20_ns, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30_ns);
}

TEST(Scheduler, SameTimeEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(10_ns, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CallbackMaySchedule) {
  Scheduler s;
  int hits = 0;
  s.schedule_at(1_ns, [&] {
    ++hits;
    s.schedule_after(1_ns, [&] { ++hits; });
  });
  s.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), 2_ns);
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(10_ns, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5_ns, [] {}), std::logic_error);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto id = s.schedule_at(10_ns, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelInvalidIdIsSafe) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventId{}));
  EXPECT_FALSE(s.cancel(EventId{999}));
}

TEST(Scheduler, RunUntilAdvancesTimeWithoutEvents) {
  Scheduler s;
  s.run_until(5_us);
  EXPECT_EQ(s.now(), 5_us);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  int hits = 0;
  s.schedule_at(10_ns, [&] { ++hits; });
  s.schedule_at(20_ns, [&] { ++hits; });
  s.schedule_at(30_ns, [&] { ++hits; });
  s.run_until(20_ns);
  EXPECT_EQ(hits, 2);  // event exactly at the boundary runs
  EXPECT_EQ(s.now(), 20_ns);
  s.run();
  EXPECT_EQ(hits, 3);
}

TEST(Scheduler, RunWithLimit) {
  Scheduler s;
  int hits = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(Time::ns(i), [&] { ++hits; });
  }
  s.run(4);
  EXPECT_EQ(hits, 4);
  EXPECT_EQ(s.pending(), 6u);
}

TEST(Scheduler, ProcessedCounter) {
  Scheduler s;
  for (int i = 1; i <= 3; ++i) s.schedule_at(Time::ns(i), [] {});
  s.run();
  EXPECT_EQ(s.processed(), 3u);
}

TEST(ClockLine, FansOutToAllSubscribers) {
  ClockLine line;
  int a = 0, b = 0;
  line.on_rising([&](Time, Time) { ++a; });
  line.on_rising([&](Time, Time) { ++b; });
  line.tick(1_ns, 1_ns);
  line.tick(2_ns, 1_ns);
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(line.edge_count(), 2u);
  EXPECT_EQ(line.last_edge(), 2_ns);
}

TEST(FixedClock, ProducesPeriodicEdges) {
  Scheduler s;
  FixedClock clk{s, 10_ns};
  std::vector<Time> edges;
  clk.line().on_rising([&](Time t, Time p) {
    edges.push_back(t);
    EXPECT_EQ(p, 10_ns);
  });
  clk.start();
  s.run_until(35_ns);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], 10_ns);
  EXPECT_EQ(edges[1], 20_ns);
  EXPECT_EQ(edges[2], 30_ns);
}

TEST(FixedClock, StopHaltsEdges) {
  Scheduler s;
  FixedClock clk{s, 10_ns};
  int edges = 0;
  clk.line().on_rising([&](Time, Time) { ++edges; });
  clk.start();
  s.run_until(25_ns);
  clk.stop();
  s.run_until(100_ns);
  EXPECT_EQ(edges, 2);
}

TEST(FixedClock, SubscriberMayStopClock) {
  Scheduler s;
  FixedClock clk{s, 10_ns};
  int edges = 0;
  clk.line().on_rising([&](Time, Time) {
    if (++edges == 3) clk.stop();
  });
  clk.start();
  s.run();
  EXPECT_EQ(edges, 3);
}

TEST(Vcd, WritesHeaderAndChanges) {
  const std::string path = testing::TempDir() + "aetr_vcd_test.vcd";
  {
    VcdWriter vcd{path};
    const auto clk = vcd.add_signal("top", "clk");
    const auto bus = vcd.add_signal("top", "addr", 10);
    vcd.change(clk, 1, 5_ns);
    vcd.change(clk, 0, 10_ns);
    vcd.change(bus, 0x2A, 10_ns);
    vcd.change(clk, 0, 12_ns);  // duplicate value: suppressed
  }
  std::ifstream f{path};
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find("$var wire 10"), std::string::npos);
  EXPECT_NE(text.find("#5000"), std::string::npos);
  EXPECT_NE(text.find("#10000"), std::string::npos);
  EXPECT_NE(text.find("b101010"), std::string::npos);
  EXPECT_EQ(text.find("#12000"), std::string::npos);  // suppressed change
  std::remove(path.c_str());
}

TEST(Vcd, DeclarationAfterChangeThrows) {
  const std::string path = testing::TempDir() + "aetr_vcd_test2.vcd";
  VcdWriter vcd{path};
  const auto clk = vcd.add_signal("top", "clk");
  vcd.change(clk, 1, 1_ns);
  EXPECT_THROW(vcd.add_signal("top", "late"), std::logic_error);
  std::remove(path.c_str());
}

TEST(Vcd, DeclarationAfterChangeErrorNamesTheSignal) {
  const std::string path = testing::TempDir() + "aetr_vcd_test3.vcd";
  VcdWriter vcd{path};
  const auto clk = vcd.add_signal("top", "clk");
  vcd.change(clk, 1, 1_ns);
  try {
    vcd.add_signal("top", "late_signal");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    // The message must identify the offending declaration, not just say
    // "wrong order" — that's what makes the error actionable.
    EXPECT_NE(std::string{e.what()}.find("late_signal"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("add_signal"), std::string::npos);
  }
  // The writer stays usable for further changes after the failed declare.
  vcd.change(clk, 0, 2_ns);
  std::remove(path.c_str());
}

TEST(Vcd, DestructorFlushesBufferedChanges) {
  const std::string path = testing::TempDir() + "aetr_vcd_test4.vcd";
  {
    VcdWriter vcd{path};
    const auto clk = vcd.add_signal("top", "clk");
    vcd.change(clk, 1, 7_ns);
    // No explicit close(): the destructor must flush both the header and
    // the change stream.
  }
  std::ifstream f{path};
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("#7000"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aetr::sim
