// Tests for the N-to-1 AER channel multiplexer: handshake relay, source
// tagging, arbitration fairness, and the full multi-sensor system path.
#include <gtest/gtest.h>

#include <map>

#include "aer/agents.hpp"
#include "aer/mux.hpp"
#include "core/scenario.hpp"
#include "gen/sources.hpp"

namespace aetr::aer {
namespace {

using namespace time_literals;

struct MuxBench {
  sim::Scheduler sched;
  AerChannel in0{sched};
  AerChannel in1{sched};
  AerChannel out{sched};
  AerChannelMux mux;
  AerSender sender0{sched, in0};
  AerSender sender1{sched, in1};
  ImmediateAckReceiver receiver{sched, out};

  MuxBench() : mux{sched, {&in0, &in1}, out, MuxConfig{}} {
    in0.set_strict(true);
    in1.set_strict(true);
    out.set_strict(true);
  }
};

TEST(Mux, SingleSourceRelaysHandshake) {
  MuxBench b;
  b.sender0.submit(Event{42, 1_us});
  b.sched.run();
  ASSERT_EQ(b.receiver.received().size(), 1u);
  // Source 0, native address 42.
  EXPECT_EQ(b.receiver.received()[0].address, 42);
  EXPECT_EQ(b.in0.handshakes(), 1u);
  EXPECT_EQ(b.out.handshakes(), 1u);
  EXPECT_TRUE(b.out.violations().empty());
}

TEST(Mux, SecondSourceTagged) {
  MuxBench b;
  b.sender1.submit(Event{42, 1_us});
  b.sched.run();
  ASSERT_EQ(b.receiver.received().size(), 1u);
  EXPECT_EQ(b.receiver.received()[0].address, 512 + 42);  // bit 9 = source
  const auto [src, native] = b.mux.split(b.receiver.received()[0].address);
  EXPECT_EQ(src, 1u);
  EXPECT_EQ(native, 42u);
}

TEST(Mux, NativeAddressMaskedToNineBits) {
  MuxBench b;
  b.sender0.submit(Event{0x3FF, 1_us});  // overflows the 9-bit native space
  b.sched.run();
  ASSERT_EQ(b.receiver.received().size(), 1u);
  EXPECT_EQ(b.receiver.received()[0].address, 0x1FF);  // truncated, source 0
}

TEST(Mux, SimultaneousRequestsSerialise) {
  MuxBench b;
  b.sender0.submit(Event{1, 1_us});
  b.sender1.submit(Event{2, 1_us});
  b.sched.run();
  ASSERT_EQ(b.receiver.received().size(), 2u);
  EXPECT_EQ(b.out.handshakes(), 2u);
  EXPECT_TRUE(b.out.violations().empty());
  EXPECT_TRUE(b.in0.violations().empty());
  EXPECT_TRUE(b.in1.violations().empty());
}

TEST(Mux, RoundRobinFairUnderContention) {
  MuxBench b;
  // Both sources saturate the bus; grants must stay balanced.
  for (int i = 0; i < 100; ++i) {
    b.sender0.submit(Event{1, Time::us(static_cast<double>(i))});
    b.sender1.submit(Event{2, Time::us(static_cast<double>(i))});
  }
  b.sched.run();
  EXPECT_EQ(b.mux.grants()[0], 100u);
  EXPECT_EQ(b.mux.grants()[1], 100u);
  // Interleaving: no source ever granted twice in a row while the other
  // was pending — check the output order alternates.
  const auto& got = b.receiver.received();
  ASSERT_EQ(got.size(), 200u);
  int alternations = 0;
  for (std::size_t i = 1; i < got.size(); ++i) {
    if ((got[i].address >> 9) != (got[i - 1].address >> 9)) ++alternations;
  }
  EXPECT_GT(alternations, 150);
}

TEST(Mux, InvalidConfigRejected) {
  sim::Scheduler sched;
  AerChannel a{sched}, b{sched}, c{sched}, out{sched};
  EXPECT_THROW(
      (AerChannelMux{sched, {}, out, MuxConfig{}}),
      std::invalid_argument);
  MuxConfig cfg;
  cfg.source_bits = 1;
  EXPECT_THROW((AerChannelMux{sched, {&a, &b, &c}, out, cfg}),
               std::invalid_argument);
}

TEST(Mux, FullMultiSensorSystem) {
  // Two sensors through the mux into the complete interface: a cochlea-ish
  // Poisson source and a sparser camera-ish one. Every event must arrive
  // at the MCU with its source tag intact.
  sim::Scheduler sched;
  core::InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 64;
  core::AerToI2sInterface iface{sched, cfg};
  AerChannel audio{sched}, video{sched};
  AerChannelMux mux{sched, {&audio, &video}, iface.aer_in(), MuxConfig{}};
  AerSender audio_tx{sched, audio};
  AerSender video_tx{sched, video};
  std::map<std::size_t, int> per_source;
  iface.on_i2s_word([&](AetrWord w, Time) {
    ++per_source[mux.split(w.address()).first];
  });

  gen::PoissonSource audio_src{40e3, 256, 61, Time::us(1.0)};
  gen::PoissonSource video_src{5e3, 256, 62, Time::us(1.0)};
  audio_tx.submit_stream(gen::take(audio_src, 800));
  video_tx.submit_stream(gen::take(video_src, 100));
  sched.run();
  if (!iface.fifo().empty()) iface.i2s_master().request_drain(sched.now());
  sched.run();

  EXPECT_EQ(per_source[0], 800);
  EXPECT_EQ(per_source[1], 100);
  EXPECT_TRUE(iface.aer_in().violations().empty());
}

}  // namespace
}  // namespace aetr::aer
