// aetr::net gateway server over real sockets: an in-process Server on its
// own thread, blocking Clients on the test thread, and the central
// determinism contract — per-session summaries from concurrent interleaved
// socket sessions are byte-identical to batch run_scenario() results.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>

#include "core/config_io.hpp"
#include "core/scenario.hpp"
#include "core/summary.hpp"
#include "fleet/fleet.hpp"
#include "gen/sources.hpp"
#include "net/client.hpp"
#include "net/fleet_bridge.hpp"
#include "net/server.hpp"

namespace {

using namespace aetr;
namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "aetrnetXXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    if (made == nullptr) throw std::runtime_error{"mkdtemp failed"};
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str(const char* leaf) const {
    return (path / leaf).string();
  }
};

aer::EventStream poisson_stream(std::size_t n, std::uint64_t seed,
                                double rate_hz) {
  gen::PoissonSource source{rate_hz, 256, seed};
  return gen::take(source, n);
}

std::string batch_summary(const core::ScenarioConfig& scenario,
                          const aer::EventStream& events) {
  return core::run_summary_text(core::run_scenario(scenario, events));
}

std::string read_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  EXPECT_TRUE(is.good()) << path;
  std::string text{std::istreambuf_iterator<char>{is},
                   std::istreambuf_iterator<char>{}};
  return text;
}

// Run a server for `sessions` completed sessions on its own thread; the
// body gets the live endpoint and drives blocking clients.
template <typename Body>
void with_server(net::ServerOptions options, std::size_t sessions,
                 Body&& body) {
  options.exit_after_sessions = sessions;
  net::Server server{std::move(options)};
  std::thread t{[&server] { server.run(); }};
  try {
    body(server);
  } catch (...) {
    server.request_stop();
    t.join();
    throw;
  }
  t.join();
  EXPECT_EQ(server.sessions_completed(), sessions);
}

TEST(NetServer, TwoInterleavedTcpSessionsMatchBatchByteForByte) {
  const auto stream_a = poisson_stream(1500, 11, 50e3);
  const auto stream_b = poisson_stream(1200, 22, 80e3);
  core::ScenarioConfig scenario_b;
  scenario_b.sender.min_gap = Time::ns(80);

  TempDir tmp;
  net::ServerOptions options;
  options.tcp = true;  // kernel-assigned port
  options.gateway.out_dir = tmp.path.string();

  std::string summary_a;
  std::string summary_b;
  with_server(options, 2, [&](net::Server& server) {
    auto a = net::Client::connect_tcp("127.0.0.1", server.tcp_port());
    auto b = net::Client::connect_tcp("127.0.0.1", server.tcp_port());
    ASSERT_EQ(a.hello("alpha", "").events_fed, 0u);
    ASSERT_EQ(b.hello("beta", core::dump_scenario(scenario_b)).events_fed, 0u);
    // Interleave DATA chunks across the two live sessions so the server
    // genuinely multiplexes (this is the concurrency the determinism gate
    // is about, not just two sessions back to back).
    net::SendOptions chunked;
    chunked.chunk = 128;
    std::size_t pos_a = 0;
    std::size_t pos_b = 0;
    while (pos_a < stream_a.size() || pos_b < stream_b.size()) {
      pos_a += a.send_some(stream_a, pos_a, 128, chunked);
      pos_b += b.send_some(stream_b, pos_b, 128, chunked);
    }
    summary_a = a.drain();
    summary_b = b.drain();
  });

  EXPECT_EQ(summary_a, batch_summary(core::ScenarioConfig{}, stream_a));
  EXPECT_EQ(summary_b, batch_summary(scenario_b, stream_b));
  // The server-side summary files carry the same bytes as the SUMMARY frame.
  EXPECT_EQ(read_file(tmp.str("summary-alpha.txt")), summary_a);
  EXPECT_EQ(read_file(tmp.str("summary-beta.txt")), summary_b);
}

TEST(NetServer, UdsSessionsMatchTcpAndBatch) {
  const auto stream = poisson_stream(1000, 33, 60e3);
  TempDir tmp;

  net::ServerOptions options;
  options.uds_path = tmp.str("gw.sock");
  std::string via_uds;
  with_server(options, 1, [&](net::Server&) {
    auto c = net::Client::connect_uds(tmp.str("gw.sock"));
    (void)c.hello("alpha", "");
    c.send_events(stream, 0);
    via_uds = c.drain();
  });

  net::ServerOptions tcp_options;
  tcp_options.tcp = true;
  std::string via_tcp;
  with_server(tcp_options, 1, [&](net::Server& server) {
    auto c = net::Client::connect_tcp("127.0.0.1", server.tcp_port());
    (void)c.hello("alpha", "");
    c.send_events(stream, 0);
    via_tcp = c.drain();
  });

  const auto batch = batch_summary(core::ScenarioConfig{}, stream);
  EXPECT_EQ(via_uds, batch);
  EXPECT_EQ(via_tcp, batch);
}

TEST(NetServer, ConcurrentEqualsSerial) {
  // The same three sessions run (a) interleaved on one server and (b) one
  // at a time on a fresh server; every summary must match byte-for-byte.
  std::vector<aer::EventStream> streams;
  for (std::uint64_t i = 0; i < 3; ++i) {
    streams.push_back(poisson_stream(700 + 100 * i, 100 + i, 40e3 + 1e4 * i));
  }
  TempDir tmp;

  std::vector<std::string> concurrent(3);
  net::ServerOptions options;
  options.uds_path = tmp.str("c.sock");
  with_server(options, 3, [&](net::Server&) {
    std::vector<net::Client> clients;
    for (std::size_t i = 0; i < 3; ++i) {
      clients.push_back(net::Client::connect_uds(tmp.str("c.sock")));
      (void)clients.back().hello("s" + std::to_string(i), "");
    }
    std::vector<std::size_t> pos(3, 0);
    bool busy = true;
    while (busy) {
      busy = false;
      for (std::size_t i = 0; i < 3; ++i) {
        pos[i] += clients[i].send_some(streams[i], pos[i], 97);
        busy = busy || pos[i] < streams[i].size();
      }
    }
    for (std::size_t i = 0; i < 3; ++i) concurrent[i] = clients[i].drain();
  });

  std::vector<std::string> serial(3);
  for (std::size_t i = 0; i < 3; ++i) {
    net::ServerOptions one;
    one.uds_path = tmp.str("s.sock");
    with_server(one, 1, [&](net::Server&) {
      auto c = net::Client::connect_uds(tmp.str("s.sock"));
      (void)c.hello("solo", "");
      c.send_events(streams[i], 0);
      serial[i] = c.drain();
    });
  }

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(concurrent[i], serial[i]) << "session " << i;
    EXPECT_EQ(concurrent[i], batch_summary(core::ScenarioConfig{}, streams[i]));
  }
}

TEST(NetServer, ClientSnapshotRequestsCheckpointWithoutPerturbing) {
  // snapshot_every forces SNAPSHOT_REQ round trips mid-stream; with no
  // periodic schedule the checkpoints happen at client-chosen points, and
  // the summary must still equal the batch run (snapshots at stream-driven
  // points are part of the deterministic schedule).
  const auto stream = poisson_stream(1000, 44, 50e3);
  TempDir tmp;
  net::ServerOptions options;
  options.uds_path = tmp.str("gw.sock");
  options.gateway.snapshot_dir = tmp.path.string();

  std::string summary;
  with_server(options, 1, [&](net::Server&) {
    auto c = net::Client::connect_uds(tmp.str("gw.sock"));
    (void)c.hello("alpha", "");
    net::SendOptions snap;
    snap.chunk = 100;
    snap.snapshot_every = 400;
    c.send_events(stream, 0, snap);
    summary = c.drain();
  });
  EXPECT_TRUE(fs::exists(tmp.str("alpha.snap")));
  EXPECT_EQ(summary, batch_summary(core::ScenarioConfig{}, stream));
}

TEST(NetServer, BackpressureWindowStillDrainsEveryEvent) {
  // A tiny credit window forces many CREDIT round trips (and exercises the
  // server-side pump absorbing Session backpressure); the result must not
  // depend on the window size.
  const auto stream = poisson_stream(800, 55, 200e3);
  TempDir tmp;
  net::ServerOptions options;
  options.uds_path = tmp.str("gw.sock");
  options.gateway.credit_window = 64;

  std::string summary;
  with_server(options, 1, [&](net::Server&) {
    auto c = net::Client::connect_uds(tmp.str("gw.sock"));
    const auto ack = c.hello("alpha", "");
    EXPECT_EQ(ack.credit, 64u);
    c.send_events(stream, 0);
    summary = c.drain();
  });
  EXPECT_EQ(summary, batch_summary(core::ScenarioConfig{}, stream));
}

TEST(NetServer, AbandonedSessionCountsCompletedWithoutSummary) {
  TempDir tmp;
  net::ServerOptions options;
  options.uds_path = tmp.str("gw.sock");
  options.gateway.out_dir = tmp.path.string();
  with_server(options, 1, [&](net::Server&) {
    auto c = net::Client::connect_uds(tmp.str("gw.sock"));
    (void)c.hello("quitter", "");
    c.send_events(poisson_stream(100, 66, 50e3), 0);
    c.bye();  // abandon: no DRAIN, no summary
  });
  EXPECT_FALSE(fs::exists(tmp.str("summary-quitter.txt")));
}

TEST(NetServer, FleetBridgeMatchesBatchNodeRuns) {
  // The tentpole bridge contract: an aetr::fleet node phase streamed as
  // live concurrent sessions produces, per node, exactly the summary of
  // run_scenario(node_scenario(i), node_stream(i)).
  fleet::FleetConfig fleet;
  fleet.nodes = 5;
  fleet.events_per_node = 400;
  fleet.rate_hz = 40e3;
  fleet.rate_spread = 0.3;
  fleet.seed = 7;

  TempDir tmp;
  net::ServerOptions options;
  options.uds_path = tmp.str("gw.sock");
  options.gateway.out_dir = tmp.path.string();
  options.exit_after_sessions = fleet.nodes;
  net::Server server{std::move(options)};
  std::thread t{[&server] { server.run(); }};

  net::BridgeEndpoint endpoint;
  endpoint.uds_path = tmp.str("gw.sock");
  net::BridgeOptions bridge;
  bridge.concurrency = 3;  // < nodes: exercises the slot-handoff path
  bridge.chunk = 64;
  const auto result = net::run_fleet_bridge(fleet, endpoint, bridge);
  t.join();

  ASSERT_EQ(result.sessions, fleet.nodes);
  ASSERT_EQ(result.summaries.size(), fleet.nodes);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fleet.nodes; ++i) {
    const auto expect = batch_summary(fleet::node_scenario(fleet, i),
                                      fleet::node_stream(fleet, i));
    EXPECT_EQ(result.summaries[i], expect) << "node " << i;
    // ...and the server-side file matches the bridge-side text.
    EXPECT_EQ(read_file(tmp.str(("summary-node-" + std::to_string(i) + ".txt")
                                    .c_str())),
              result.summaries[i]);
    total += fleet.events_per_node;
  }
  EXPECT_EQ(result.events_streamed, total);
}

TEST(NetServer, RequestStopDrainsLiveSessions) {
  // SIGTERM path without the signal: request_stop() mid-stream must finish
  // the live session server-side and write its summary of exactly the
  // events ingested so far.
  const auto stream = poisson_stream(600, 77, 50e3);
  TempDir tmp;
  net::ServerOptions options;
  options.uds_path = tmp.str("gw.sock");
  options.gateway.out_dir = tmp.path.string();
  net::Server server{std::move(options)};
  std::thread t{[&server] { server.run(); }};

  auto c = net::Client::connect_uds(tmp.str("gw.sock"));
  (void)c.hello("alpha", "");
  c.send_events(stream, 0, {});  // fully delivered (credit consumed back)
  server.request_stop();
  t.join();

  const auto drained = read_file(tmp.str("summary-alpha.txt"));
  EXPECT_EQ(drained, batch_summary(core::ScenarioConfig{}, stream));
}

}  // namespace
