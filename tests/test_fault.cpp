// Fault-injection & recovery: the determinism contract and the per-block
// injection/recovery mechanics of src/fault + core::run_scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "fault/injector.hpp"
#include "gen/sources.hpp"
#include "spi/spi.hpp"

namespace aetr {
namespace {

using namespace time_literals;

aer::EventStream test_stream(std::size_t n = 400, std::uint64_t seed = 5) {
  gen::PoissonSource src{40e3, 128, seed, Time::ns(130.0)};
  return gen::take(src, n);
}

// Everything a RunResult measures that must be deterministic, flattened so
// two results can be compared field-for-field.
void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.events_in, b.events_in);
  EXPECT_EQ(a.words_out, b.words_out);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.fifo_overflows, b.fifo_overflows);
  EXPECT_EQ(a.handshakes, b.handshakes);
  EXPECT_EQ(a.sim_end, b.sim_end);
  EXPECT_EQ(a.average_power_w, b.average_power_w);  // bit-exact, no tolerance
  EXPECT_EQ(a.error.weighted_rel_error(), b.error.weighted_rel_error());
  ASSERT_EQ(a.decoded.size(), b.decoded.size());
  for (std::size_t i = 0; i < a.decoded.size(); ++i) {
    EXPECT_EQ(a.decoded[i].address, b.decoded[i].address) << "event " << i;
    EXPECT_EQ(a.decoded[i].reconstructed_time, b.decoded[i].reconstructed_time)
        << "event " << i;
  }
  EXPECT_EQ(a.faults.injected_total(), b.faults.injected_total());
  EXPECT_EQ(a.faults.recovered_total(), b.faults.recovered_total());
  EXPECT_EQ(a.faults.watchdog_resyncs, b.faults.watchdog_resyncs);
  EXPECT_EQ(a.faults.crc_rejected_words, b.faults.crc_rejected_words);
}

// A plan exercising every lottery at once, for the determinism tests.
fault::FaultPlan rich_plan(std::uint64_t seed = 99) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.aer.drop_req_prob = 0.05;
  plan.aer.stuck_ack_prob = 0.05;
  plan.aer.addr_bit_flip_prob = 0.05;
  plan.aer.runt_req_prob = 0.05;
  plan.aer.runt_width = Time::ns(150.0);
  plan.clock.period_jitter_rel = 0.05;
  plan.clock.wake_jitter_rel = 0.05;
  plan.fifo.cell_bit_flip_prob = 0.02;
  plan.i2s.bit_error_rate = 1e-4;
  return plan;
}

// --- determinism contract ----------------------------------------------------

TEST(FaultDeterminism, ZeroRatePlanIdenticalToEmptyPlan) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  ASSERT_FALSE(scenario.faults.any());

  // Same scenario, but with every recovery knob toggled and a different
  // seed: with all rates at zero, none of it may perturb the pipeline.
  core::ScenarioConfig zero_rate = scenario;
  zero_rate.faults.seed = 0xDEADBEEF;
  zero_rate.faults.recovery.watchdog = false;
  zero_rate.faults.recovery.fifo_parity = false;
  zero_rate.faults.recovery.crc_frames = false;
  ASSERT_FALSE(zero_rate.faults.any());

  const auto with_plan = core::run_scenario(scenario, events);
  const auto baseline = core::run_scenario(zero_rate, events);
  expect_identical(with_plan, baseline);
  EXPECT_EQ(with_plan.faults.injected_total(), 0u);
  EXPECT_EQ(with_plan.faults.recovered_total(), 0u);
}

TEST(FaultDeterminism, SameSeedSamePlanSameResult) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults = rich_plan();

  const auto a = core::run_scenario(scenario, events);
  const auto b = core::run_scenario(scenario, events);
  EXPECT_GT(a.faults.injected_total(), 0u);
  expect_identical(a, b);
}

TEST(FaultDeterminism, RecoveryOffStillDeterministic) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults = rich_plan();
  scenario.faults.aer.drop_req_prob = 0.0;   // needs the watchdog to finish
  scenario.faults.aer.stuck_ack_prob = 0.0;
  scenario.faults.aer.runt_req_prob = 0.0;
  scenario.faults.recovery.fifo_parity = false;
  scenario.faults.recovery.crc_frames = false;

  const auto a = core::run_scenario(scenario, events);
  const auto b = core::run_scenario(scenario, events);
  expect_identical(a, b);
  EXPECT_EQ(a.faults.fifo_parity_drops, 0u);
  EXPECT_EQ(a.faults.crc_rejected_batches, 0u);
}

// --- per-block injection + recovery mechanics --------------------------------

TEST(FaultRecovery, WatchdogRedeliversDroppedReq) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.aer.drop_req_prob = 0.2;

  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.req_dropped, 0u);
  EXPECT_GT(r.faults.watchdog_resyncs, 0u);
  // Every dropped REQ is eventually re-delivered: no events are lost.
  EXPECT_EQ(r.decoded.size(), events.size());
}

TEST(FaultRecovery, WatchdogRedrivesStuckAck) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.aer.stuck_ack_prob = 0.2;

  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.ack_stuck, 0u);
  EXPECT_GT(r.faults.ack_recoveries, 0u);
  EXPECT_EQ(r.decoded.size(), events.size());
}

TEST(FaultRecovery, RuntPulsesAreInjectedAndSurvivable) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.aer.runt_req_prob = 0.3;
  scenario.faults.aer.runt_width = Time::ns(150.0);

  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.runt_pulses, 0u);
  EXPECT_EQ(r.decoded.size(), events.size());
}

TEST(FaultInjection, AddrFlipsKeepTimingButChangeAddresses) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.aer.addr_bit_flip_prob = 0.5;

  const auto clean = core::run_scenario(
      core::ScenarioConfig{scenario.interface}, events);
  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.addr_flips, 0u);
  // Address corruption is undetectable: same word count, same timestamps,
  // different addresses.
  ASSERT_EQ(r.decoded.size(), clean.decoded.size());
  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < r.decoded.size(); ++i) {
    EXPECT_EQ(r.decoded[i].reconstructed_time,
              clean.decoded[i].reconstructed_time);
    if (r.decoded[i].address != clean.decoded[i].address) ++mismatched;
  }
  EXPECT_EQ(mismatched, r.faults.addr_flips);
}

TEST(FaultInjection, ClockJitterDegradesAccuracyOnly) {
  const auto events = test_stream(800);
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.clock.period_jitter_rel = 0.3;

  const auto clean = core::run_scenario(
      core::ScenarioConfig{scenario.interface}, events);
  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.tick_jitter_events, 0u);
  EXPECT_EQ(r.decoded.size(), clean.decoded.size());  // nothing lost
  EXPECT_GT(r.error.weighted_rel_error(), clean.error.weighted_rel_error());
}

TEST(FaultRecovery, FifoParityDropsUpsetWords) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.fifo.cell_bit_flip_prob = 0.1;

  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.fifo_bit_flips, 0u);
  // Parity catches every single-bit upset; each detected word is dropped.
  EXPECT_EQ(r.faults.fifo_parity_drops, r.faults.fifo_bit_flips);
  EXPECT_EQ(r.decoded.size() + r.faults.fifo_parity_drops, events.size());
}

TEST(FaultRecovery, FifoUpsetsFlowDownstreamWithoutParity) {
  const auto events = test_stream();
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.fifo.cell_bit_flip_prob = 0.1;
  scenario.faults.recovery.fifo_parity = false;
  scenario.faults.recovery.crc_frames = false;

  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.fifo_bit_flips, 0u);
  EXPECT_EQ(r.faults.fifo_parity_drops, 0u);
  // Corrupt words are delivered as if healthy.
  EXPECT_EQ(r.decoded.size(), events.size());
}

TEST(FaultRecovery, CrcGateRejectsCorruptBatches) {
  const auto events = test_stream(800);
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.i2s.bit_error_rate = 2e-3;

  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.i2s_bit_errors, 0u);
  EXPECT_GT(r.faults.crc_rejected_batches, 0u);
  EXPECT_GT(r.faults.crc_rejected_words, 0u);
  // Rejection is whole-batch: nothing corrupt reaches the reconstruction.
  // Each rejected batch's word count includes its unmatched CRC trailer,
  // so the event accounting subtracts one trailer per rejected batch.
  EXPECT_EQ(r.decoded.size() + r.faults.crc_rejected_words -
                r.faults.crc_rejected_batches,
            events.size());
}

TEST(FaultRecovery, LineNoisePassesWithoutCrc) {
  const auto events = test_stream(800);
  core::ScenarioConfig scenario;
  scenario.interface.fifo.batch_threshold = 64;
  scenario.faults.i2s.bit_error_rate = 2e-3;
  scenario.faults.recovery.crc_frames = false;

  const auto r = core::run_scenario(scenario, events);
  EXPECT_GT(r.faults.i2s_bit_errors, 0u);
  EXPECT_EQ(r.faults.crc_rejected_batches, 0u);
  EXPECT_EQ(r.decoded.size(), events.size());  // corrupt words decoded anyway
}

TEST(FaultInjection, SpiWordCorruptionIsCountedAtTheSlave) {
  spi::ConfigBus bus;
  std::uint8_t reg0 = 0;
  bus.map(spi::Reg::kThetaDiv, [&] { return reg0; },
          [&](std::uint8_t v) { reg0 = v; });

  fault::FaultPlan plan;
  plan.seed = 7;
  plan.spi.word_bit_flip_prob = 1.0;  // every frame corrupts
  fault::FaultInjector injector{plan};

  spi::SpiSlave slave{bus};
  slave.attach_faults(&injector);
  const std::uint16_t frame = 0x8000u | 0x40u;  // write reg0 = 0x40
  slave.set_csn(false);
  for (int bit = 15; bit >= 0; --bit) {
    slave.sck_rise(((frame >> bit) & 1u) != 0);
    slave.sck_fall();
  }
  slave.set_csn(true);
  EXPECT_EQ(injector.counters().spi_corrupted, 1u);
  EXPECT_EQ(slave.transactions(), 1u);
}

// --- injector primitives -----------------------------------------------------

TEST(FaultInjector, ZeroProbabilityConsumesNoRandomness) {
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultInjector a{plan};
  fault::FaultInjector b{plan};
  // Interleave zero-probability rolls on `a` only; the streams must stay
  // aligned because a zero roll never draws.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(a.roll(fault::Site::kAerWire, 0.0));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.roll(fault::Site::kAerWire, 0.5),
              b.roll(fault::Site::kAerWire, 0.5))
        << "draw " << i;
  }
}

TEST(FaultInjector, SitesDrawFromIndependentStreams) {
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultInjector a{plan};
  fault::FaultInjector b{plan};
  // Burn draws on one site of `a`; another site's stream must not move.
  for (int i = 0; i < 100; ++i) {
    (void)a.roll(fault::Site::kFifoCell, 0.5);
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.pick_bit(fault::Site::kI2sLink, 32),
              b.pick_bit(fault::Site::kI2sLink, 32))
        << "draw " << i;
  }
}

// --- validation --------------------------------------------------------------

TEST(ScenarioValidate, RejectsOutOfRangeProbability) {
  core::ScenarioConfig scenario;
  scenario.faults.aer.drop_req_prob = 1.5;
  EXPECT_THROW(scenario.validate(), std::invalid_argument);
  scenario.faults.aer.drop_req_prob = -0.1;
  EXPECT_THROW(scenario.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsDegenerateRuntWidth) {
  core::ScenarioConfig scenario;
  scenario.faults.aer.runt_req_prob = 0.1;
  scenario.faults.aer.runt_width = Time::zero();
  EXPECT_THROW(scenario.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace aetr
