// Unit tests for the stimulus generators.
#include <gtest/gtest.h>

#include <memory>

#include "gen/sources.hpp"
#include "util/stats.hpp"

namespace aetr::gen {
namespace {

using namespace time_literals;

double mean_rate_hz(const aer::EventStream& events) {
  if (events.size() < 2) return 0.0;
  return static_cast<double>(events.size() - 1) /
         (events.back().time - events.front().time).to_sec();
}

TEST(Poisson, MeanRateMatchesTarget) {
  PoissonSource src{10e3, 128, 42};
  const auto events = take(src, 20000);
  EXPECT_NEAR(mean_rate_hz(events), 10e3, 300.0);
}

TEST(Poisson, IntervalsAreExponential) {
  PoissonSource src{1e3, 128, 7};
  const auto events = take(src, 50000);
  RunningStats dt;
  for (std::size_t i = 1; i < events.size(); ++i) {
    dt.add((events[i].time - events[i - 1].time).to_sec());
  }
  // Exponential: stddev == mean.
  EXPECT_NEAR(dt.stddev() / dt.mean(), 1.0, 0.03);
}

TEST(Poisson, TimesMonotone) {
  PoissonSource src{100e3, 64, 3};
  const auto events = take(src, 5000);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

TEST(Poisson, AddressesCoverRange) {
  PoissonSource src{1e3, 8, 1};
  const auto events = take(src, 2000);
  std::array<int, 8> hits{};
  for (const auto& ev : events) {
    ASSERT_LT(ev.address, 8);
    ++hits[ev.address];
  }
  for (int h : hits) EXPECT_GT(h, 100);
}

TEST(Poisson, MinGapHonored) {
  PoissonSource src{1e6, 16, 9, 500_ns};
  const auto events = take(src, 5000);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time - events[i - 1].time, 500_ns);
  }
}

TEST(Poisson, DeterministicPerSeed) {
  PoissonSource a{5e3, 32, 11}, b{5e3, 32, 11};
  EXPECT_EQ(take(a, 100), take(b, 100));
}

TEST(Regular, ExactPeriodicity) {
  RegularSource src{10_us, 4, 5_us};
  const auto events = take(src, 10);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, Time::us(5.0) + Time::us(10.0 * static_cast<double>(i)));
    EXPECT_EQ(events[i].address, i % 4);
  }
}

TEST(LfsrRate, EffectiveRateNearTarget) {
  LfsrRateSource src{50e3, Frequency::mhz(30.0), 128, 0xACE1, 0x1234};
  EXPECT_NEAR(src.effective_rate_hz(), 50e3, 500.0);
  const auto events = take(src, 20000);
  EXPECT_NEAR(mean_rate_hz(events), 50e3, 2500.0);
}

TEST(LfsrRate, EventsAlignedToGeneratorClock) {
  LfsrRateSource src{100e3, Frequency::mhz(30.0), 64, 0xACE1, 0x5678};
  const Time gen_period = Frequency::mhz(30.0).period();
  const auto events = take(src, 1000);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.time % gen_period, Time::zero());
  }
}

TEST(LfsrRate, IntervalsGeometricLike) {
  LfsrRateSource src{200e3, Frequency::mhz(30.0), 64, 0xBEEF, 0xCAFE};
  const auto events = take(src, 30000);
  RunningStats dt;
  for (std::size_t i = 1; i < events.size(); ++i) {
    dt.add((events[i].time - events[i - 1].time).to_sec());
  }
  // Geometric ~ exponential at low firing probability: cv ~ 1.
  EXPECT_NEAR(dt.stddev() / dt.mean(), 1.0, 0.08);
}

TEST(Burst, SilentDuringIdleWindows) {
  const Time active = 10_ms, idle = 40_ms;
  BurstSource src{50e3, active, idle, 64, 5};
  const auto events = take(src, 5000);
  const Time cycle = active + idle;
  for (const auto& ev : events) {
    const Time phase = ev.time % cycle;
    EXPECT_LT(phase, active);
  }
}

TEST(Burst, AverageRateIsDutyCycled) {
  BurstSource src{100e3, 10_ms, 90_ms, 64, 8};
  const auto events = take_until(src, 2_sec);
  // Duty cycle 10 %: average rate ~10 kevt/s over the long run.
  EXPECT_NEAR(static_cast<double>(events.size()) / 2.0, 10e3, 1500.0);
}

TEST(TraceSource, ReplaysExactly) {
  aer::EventStream stream{{1, 10_ns}, {2, 30_ns}};
  TraceSource src{stream};
  EXPECT_EQ(take(src, 10), stream);
  EXPECT_FALSE(src.next().has_value());
}

TEST(Merge, InterleavesSorted) {
  std::vector<std::unique_ptr<SpikeSource>> sources;
  sources.push_back(std::make_unique<RegularSource>(10_us, 1, Time::zero()));
  sources.push_back(std::make_unique<RegularSource>(15_us, 1, 2_us));
  MergeSource merged{std::move(sources)};
  const auto events = take(merged, 50);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

TEST(Merge, ExhaustsFiniteSources) {
  std::vector<std::unique_ptr<SpikeSource>> sources;
  sources.push_back(
      std::make_unique<TraceSource>(aer::EventStream{{1, 1_us}, {1, 3_us}}));
  sources.push_back(
      std::make_unique<TraceSource>(aer::EventStream{{2, 2_us}}));
  MergeSource merged{std::move(sources)};
  const auto events = take(merged, 10);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].address, 1);
  EXPECT_EQ(events[1].address, 2);
  EXPECT_EQ(events[2].address, 1);
}

TEST(TakeUntil, StopsBeforeEnd) {
  RegularSource src{10_us, 2, Time::zero()};
  const auto events = take_until(src, 35_us);
  EXPECT_EQ(events.size(), 4u);  // 0, 10, 20, 30 us
}

}  // namespace
}  // namespace aetr::gen
