// Tests for the silicon-cochlea sensor model: filter design, IAF dynamics,
// tonotopic selectivity, and the audio synthesiser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <map>

#include "cochlea/audio.hpp"
#include "cochlea/biquad.hpp"
#include "cochlea/cochlea.hpp"
#include "cochlea/filterbank.hpp"
#include "util/simd.hpp"

namespace aetr::cochlea {
namespace {

using namespace time_literals;

TEST(Biquad, BandpassPeaksAtCentre) {
  const double fs = 48e3;
  const auto f = Biquad::bandpass(1000.0, 6.0, fs);
  EXPECT_NEAR(f.magnitude(1000.0, fs), 1.0, 0.01);  // 0 dB at centre
  EXPECT_LT(f.magnitude(250.0, fs), 0.3);
  EXPECT_LT(f.magnitude(4000.0, fs), 0.3);
}

TEST(Biquad, StepResponseMatchesMagnitude) {
  const double fs = 48e3;
  const double f0 = 2000.0;
  auto filt = Biquad::bandpass(f0, 6.0, fs);
  // Drive with the centre-frequency sine and measure output amplitude.
  double peak = 0.0;
  for (int n = 0; n < 4800; ++n) {
    const double x = std::sin(2.0 * std::numbers::pi * f0 * n / fs);
    const double y = filt.step(x);
    if (n > 2400) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, 1.0, 0.03);
}

TEST(Biquad, ResetClearsState) {
  auto f = Biquad::bandpass(1000.0, 6.0, 48e3);
  for (int i = 0; i < 100; ++i) (void)f.step(1.0);
  f.reset();
  // After reset the first output of a zero input is zero.
  EXPECT_DOUBLE_EQ(f.step(0.0), 0.0);
}

TEST(LogSpacing, EndpointsAndMonotone) {
  const auto c = log_spaced_centres(100.0, 10e3, 64);
  ASSERT_EQ(c.size(), 64u);
  EXPECT_NEAR(c.front(), 100.0, 1e-9);
  EXPECT_NEAR(c.back(), 10e3, 1e-6);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GT(c[i], c[i - 1]);
    // Constant ratio (log spacing).
    EXPECT_NEAR(c[i] / c[i - 1], c[1] / c[0], 1e-9);
  }
}

TEST(Iaf, FiresAtThresholdWithSubSampleTime) {
  IafNeuron n{1.0, 0.0, Time::zero()};
  double frac = -1.0;
  // Constant drive 100/s with dt 1/16 s: fires on the crossing sample.
  bool fired = false;
  int steps = 0;
  while (!fired && steps < 1000) {
    fired = n.step(100.0, 1.0 / 16.0, frac);
    ++steps;
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(steps, 1);  // 100 * (1/16) = 6.25 >> threshold on first step
  EXPECT_GE(frac, 0.0);
  EXPECT_LT(frac, 1.0);
}

TEST(Iaf, RefractoryBlocksImmediateRefire) {
  IafNeuron n{0.5, 0.0, Time::ms(1.0)};
  double frac = 0.0;
  EXPECT_TRUE(n.step(1000.0, 1e-3, frac));
  // Within the refractory period: no fire even under huge drive. The step
  // that crosses the refractory boundary is consumed entirely (dead time),
  // so firing resumes on the step after.
  EXPECT_FALSE(n.step(1e6, 0.5e-3, frac));
  EXPECT_FALSE(n.step(1e6, 0.4e-3, frac));
  EXPECT_FALSE(n.step(1e6, 0.5e-3, frac));
  EXPECT_TRUE(n.step(1e6, 0.5e-3, frac));
}

TEST(Iaf, LeakPreventsFiringOnWeakDrive) {
  IafNeuron strong_leak{0.01, 1000.0, Time::zero()};
  double frac = 0.0;
  bool fired = false;
  for (int i = 0; i < 10000; ++i) {
    fired = fired || strong_leak.step(0.005, 1e-4, frac);
  }
  EXPECT_FALSE(fired);  // equilibrium 0.005/1000 << threshold
}

TEST(Cochlea, AddressLayoutRoundTrip) {
  CochleaModel model;
  const auto addr = model.address_of(1, 37);
  EXPECT_EQ(addr, 64 + 37);
  EXPECT_EQ(model.ear_of(addr), 1u);
  EXPECT_EQ(model.channel_of(addr), 37u);
}

TEST(Cochlea, RejectsAddressOverflow) {
  CochleaConfig cfg;
  cfg.channels = 600;
  cfg.ears = 2;
  EXPECT_THROW(CochleaModel{cfg}, std::invalid_argument);
}

TEST(Cochlea, PureToneExcitesMatchingChannels) {
  CochleaConfig cfg;
  cfg.channels = 32;
  cfg.ears = 1;
  CochleaModel model{cfg};
  AudioSynth synth{cfg.sample_rate, 1};
  const auto audio = synth.tone(1000.0, 0.5, 300_ms);
  const auto events = model.process(audio);
  ASSERT_GT(events.size(), 10u);
  // Spike-weighted centre frequency should sit near 1 kHz.
  std::map<std::size_t, int> per_channel;
  for (const auto& ev : events) ++per_channel[model.channel_of(ev.address)];
  std::size_t best = 0;
  int best_count = 0;
  for (const auto& [ch, n] : per_channel) {
    if (n > best_count) {
      best = ch;
      best_count = n;
    }
  }
  EXPECT_NEAR(model.centres()[best], 1000.0, 300.0);
}

TEST(Cochlea, SilenceProducesNoEvents) {
  CochleaModel model;
  const auto events = model.process(std::vector<double>(48000, 0.0));
  EXPECT_TRUE(events.empty());
}

TEST(Cochlea, EventsAreTimeSortedWithOffset) {
  CochleaConfig cfg;
  cfg.channels = 16;
  cfg.ears = 2;
  CochleaModel model{cfg};
  AudioSynth synth{cfg.sample_rate, 2};
  const auto audio = synth.tone(500.0, 0.5, 100_ms);
  const auto events = model.process(audio, 1_sec);
  ASSERT_FALSE(events.empty());
  EXPECT_GE(events.front().time, 1_sec);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

TEST(Cochlea, LouderSoundMoreSpikes) {
  CochleaConfig cfg;
  cfg.channels = 16;
  cfg.ears = 1;
  CochleaModel quiet_model{cfg}, loud_model{cfg};
  AudioSynth synth{cfg.sample_rate, 3};
  const auto quiet = quiet_model.process(synth.tone(800.0, 0.1, 200_ms));
  const auto loud = loud_model.process(synth.tone(800.0, 0.8, 200_ms));
  EXPECT_GT(loud.size(), quiet.size() * 2);
}

TEST(Cochlea, BinauralEarSkewBreaksSymmetry) {
  CochleaModel model;  // default: 2 ears, 2 % skew
  AudioSynth synth{model.config().sample_rate, 4};
  const auto events = model.process(synth.tone(1500.0, 0.5, 200_ms));
  std::size_t left = 0, right = 0;
  for (const auto& ev : events) {
    (model.ear_of(ev.address) == 0 ? left : right) += 1;
  }
  EXPECT_GT(left, 0u);
  EXPECT_GT(right, 0u);
  EXPECT_NE(left, right);  // the gain mismatch shows up in the counts
}

TEST(Agc, CompressesDynamicRange) {
  // Without AGC a 20 dB level difference maps to a large rate ratio; with
  // AGC the ratio collapses towards 1 after the envelope settles.
  CochleaConfig base;
  base.channels = 16;
  base.ears = 1;
  auto rate_ratio = [&](bool agc_on) {
    CochleaConfig cfg = base;
    cfg.agc.enabled = agc_on;
    CochleaModel loud_model{cfg}, quiet_model{cfg};
    AudioSynth synth{cfg.sample_rate, 21};
    const auto loud = loud_model.process(synth.tone(800.0, 0.5, 400_ms));
    const auto quiet = quiet_model.process(synth.tone(800.0, 0.05, 400_ms));
    return static_cast<double>(loud.size()) /
           static_cast<double>(std::max<std::size_t>(quiet.size(), 1));
  };
  const double without = rate_ratio(false);
  const double with = rate_ratio(true);
  EXPECT_LT(with, without * 0.5);
  EXPECT_LT(with, 3.0);
}

TEST(Agc, GainSteersTowardsTarget) {
  CochleaConfig cfg;
  cfg.channels = 8;
  cfg.ears = 1;
  cfg.agc.enabled = true;
  CochleaModel model{cfg};
  AudioSynth synth{cfg.sample_rate, 22};
  // Loud sustained tone on channel near 1 kHz: its gain must drop below 1,
  // quiet channels drift towards max gain.
  (void)model.process(synth.tone(1000.0, 0.8, 500_ms));
  std::size_t hot = 0;
  double best = 1e9;
  for (std::size_t ch = 0; ch < cfg.channels; ++ch) {
    const double d = std::abs(model.centres()[ch] - 1000.0);
    if (d < best) {
      best = d;
      hot = ch;
    }
  }
  EXPECT_LT(model.agc_gain(0, hot), 0.7);
  EXPECT_GT(model.agc_gain(0, 0), 2.0);  // 100 Hz channel heard nothing
}

TEST(Agc, DisabledMeansUnityGain) {
  CochleaModel model;  // default: AGC off
  EXPECT_DOUBLE_EQ(model.agc_gain(0, 0), 1.0);
}

TEST(AudioSynth, DemoWordHasSpeechLikeShape) {
  AudioSynth synth{48e3, 5};
  const auto audio = synth.word(AudioSynth::demo_word());
  // ~90+130+70+110+90 ms + 4 gaps of 15 ms = ~550 ms.
  EXPECT_NEAR(static_cast<double>(audio.size()) / 48e3, 0.55, 0.02);
  double peak = 0.0;
  for (double s : audio) peak = std::max(peak, std::abs(s));
  EXPECT_GT(peak, 0.2);
  EXPECT_LT(peak, 2.0);
}

TEST(AudioSynth, BackgroundNoiseRaisesFloor) {
  AudioSynth synth{48e3, 6};
  auto audio = synth.silence(100_ms);
  synth.add_background(audio, 0.05);
  double rms = 0.0;
  for (double s : audio) rms += s * s;
  rms = std::sqrt(rms / static_cast<double>(audio.size()));
  EXPECT_NEAR(rms, 0.05 / std::sqrt(3.0), 0.005);  // uniform noise rms
}

TEST(AudioSynth, WordDrivesHighEventRateBursts) {
  // The Fig. 7a scenario: the word must drive the cochlea into bursts of at
  // least tens of kevt/s.
  CochleaModel model;
  AudioSynth synth{model.config().sample_rate, 7};
  auto audio = synth.word(AudioSynth::demo_word());
  synth.add_background(audio, 0.01);
  const auto events = model.process(audio);
  ASSERT_GT(events.size(), 1000u);
  // Peak rate over 10 ms windows.
  std::map<std::int64_t, int> window_counts;
  for (const auto& ev : events) {
    ++window_counts[ev.time.count_ps() / Time::ms(10.0).count_ps()];
  }
  int peak = 0;
  for (const auto& [w, n] : window_counts) peak = std::max(peak, n);
  EXPECT_GT(peak * 100, 25000);  // >25 kevt/s peak
}

TEST(FilterbankSoA, BitIdenticalToBiquadLoopOnAudioVectors) {
  // The SoA/SIMD bank must reproduce the scalar Biquad reference
  // bit-for-bit on real audio — the contract that lets CochleaModel swap
  // the AoS loop out without changing any downstream spike train.
  const double fs = 48e3;
  const auto centres = log_spaced_centres(100.0, 10e3, 64);
  std::vector<Biquad> reference;
  BiquadBankSoA bank;
  for (const double f0 : centres) {
    const auto s = Biquad::bandpass(f0, 6.0, fs);
    reference.push_back(s);
    bank.add(s);
  }
  AudioSynth synth{fs, 11};
  auto audio = synth.word(AudioSynth::demo_word());
  synth.add_background(audio, 0.02);

  std::vector<double> band(centres.size());
  for (const double x : audio) {
    bank.step_block(x, 0, centres.size(), band.data());
    for (std::size_t ch = 0; ch < centres.size(); ++ch) {
      const double want = reference[ch].step(x);
      ASSERT_EQ(band[ch], want) << "channel " << ch;
    }
  }
}

TEST(FilterbankSoA, OddLaneCountUsesScalarTail) {
  const double fs = 48e3;
  std::vector<Biquad> reference;
  BiquadBankSoA bank;
  for (const double f0 : {300.0, 1000.0, 3300.0}) {
    const auto s = Biquad::bandpass(f0, 6.0, fs);
    reference.push_back(s);
    bank.add(s);
  }
  AudioSynth synth{fs, 5};
  const auto audio = synth.tone(1000.0, 0.5, 50_ms);
  std::vector<double> band(3);
  for (const double x : audio) {
    bank.step_block(x, 0, 3, band.data());
    for (std::size_t ch = 0; ch < 3; ++ch) {
      ASSERT_EQ(band[ch], reference[ch].step(x));
    }
  }
}

TEST(Biquad, SilenceDecaysToExactZeroNotSubnormals) {
  // Denormal guard: after an impulse, a long silent stretch must drive the
  // filter state to exact zero instead of a subnormal tail (which costs a
  // microcode assist per operation on x86).
  auto f = Biquad::bandpass(1000.0, 6.0, 48e3);
  (void)f.step(1.0);
  double y = 0.0;
  for (int i = 0; i < 4'000'000; ++i) {
    y = f.step(0.0);
    ASSERT_NE(std::fpclassify(y), FP_SUBNORMAL) << "sample " << i;
  }
  EXPECT_EQ(y, 0.0);
}

TEST(Simd, Vec2dLanesMatchScalarArithmetic) {
  using simd::Vec2d;
  const double a[2] = {1.5, -3.25};
  const double b[2] = {-0.75, 2.0};
  double out[2];
  (Vec2d::load(a) + Vec2d::load(b)).store(out);
  EXPECT_EQ(out[0], a[0] + b[0]);
  EXPECT_EQ(out[1], a[1] + b[1]);
  (Vec2d::load(a) - Vec2d::load(b)).store(out);
  EXPECT_EQ(out[0], a[0] - b[0]);
  EXPECT_EQ(out[1], a[1] - b[1]);
  (Vec2d::load(a) * Vec2d::load(b)).store(out);
  EXPECT_EQ(out[0], a[0] * b[0]);
  EXPECT_EQ(out[1], a[1] * b[1]);
  Vec2d::load(a).max(Vec2d::load(b)).store(out);
  EXPECT_EQ(out[0], 1.5);
  EXPECT_EQ(out[1], 2.0);
}

TEST(Simd, FlushSubnormalsMatchesScalarHelper) {
  using simd::Vec2d;
  const double cases[] = {0.0,   -0.0, 1e-320, -1e-320,
                          5e-324, std::numeric_limits<double>::min(),
                          1e-300, -1.0};
  for (std::size_t i = 0; i + 2 <= std::size(cases); ++i) {
    double out[2];
    Vec2d::load(&cases[i]).flush_subnormals().store(out);
    EXPECT_EQ(out[0], simd::flush_subnormal(cases[i])) << i;
    EXPECT_EQ(out[1], simd::flush_subnormal(cases[i + 1])) << i;
  }
  // The smallest normal is flushed too (<=), everything above survives.
  EXPECT_EQ(simd::flush_subnormal(std::numeric_limits<double>::min()), 0.0);
  EXPECT_EQ(simd::flush_subnormal(1e-300), 1e-300);
}

}  // namespace
}  // namespace aetr::cochlea
