// Tests for the AER front-end: synchronisation latency, timestamp tagging,
// 4-phase ACK generation, saturation, and metastability injection.
#include <gtest/gtest.h>

#include <vector>

#include "aer/agents.hpp"
#include "frontend/aer_frontend.hpp"
#include "sim/scheduler.hpp"

namespace aetr::frontend {
namespace {

using namespace time_literals;

struct Bench {
  sim::Scheduler sched;
  aer::AerChannel channel{sched};
  clockgen::ClockGenerator clkgen;
  AerFrontEnd fe;
  aer::AerSender sender;
  std::vector<aer::AetrWord> words;

  explicit Bench(clockgen::ClockGeneratorConfig ccfg = {},
                 FrontEndConfig fcfg = {})
      : clkgen{sched, ccfg}, fe{sched, channel, clkgen, fcfg},
        sender{sched, channel} {
    channel.set_strict(true);
    fe.on_word([this](aer::AetrWord w, Time) { words.push_back(w); });
  }
};

clockgen::ClockGeneratorConfig small_clock() {
  clockgen::ClockGeneratorConfig cfg;
  cfg.theta_div = 8;
  cfg.n_div = 3;
  return cfg;
}

TEST(FrontEnd, SingleEventTimedAndAcked) {
  Bench b{small_clock()};
  b.sender.submit(aer::Event{42, 1_us});
  b.sched.run();
  ASSERT_EQ(b.words.size(), 1u);
  EXPECT_EQ(b.words[0].address(), 42);
  EXPECT_EQ(b.channel.handshakes(), 1u);
  EXPECT_TRUE(b.channel.violations().empty());
  EXPECT_EQ(b.fe.events(), 1u);
}

TEST(FrontEnd, TimestampIsDeltaInTminTicks) {
  Bench b{small_clock()};
  const Time tmin = b.clkgen.tmin();
  b.sender.submit(aer::Event{1, Time::zero()});
  b.sender.submit(aer::Event{2, tmin * 20});
  b.sched.run();
  ASSERT_EQ(b.words.size(), 2u);
  // Second delta: ~20 ticks (sync adds latency to both endpoints; the
  // difference stays within a couple of the *current* period).
  EXPECT_NEAR(static_cast<double>(b.words[1].timestamp_ticks()), 20.0, 4.0);
}

TEST(FrontEnd, SyncLatencyIsTwoEdges) {
  FrontEndConfig fcfg;
  fcfg.sync_stages = 2;
  Bench b{small_clock(), fcfg};
  const Time tmin = b.clkgen.tmin();
  b.sender.submit(aer::Event{1, tmin * 3 + 1_ns});
  b.sched.run();
  ASSERT_EQ(b.fe.records().size(), 1u);
  // Request just after edge 3 (+5 ns addr setup): first edge 4, +2 sync.
  EXPECT_EQ(b.fe.records()[0].sample_edge, tmin * 6);
}

TEST(FrontEnd, SaturatedTagAfterLongSilence) {
  Bench b{small_clock()};
  const Time awake = b.clkgen.schedule().awake_span();
  b.sender.submit(aer::Event{1, Time::zero()});
  b.sender.submit(aer::Event{2, awake * 5});
  b.sched.run();
  ASSERT_EQ(b.words.size(), 2u);
  EXPECT_TRUE(b.words[1].is_saturated());
  EXPECT_EQ(b.fe.saturated_events(), 1u);
}

TEST(FrontEnd, BackToBackEventsSerialised) {
  Bench b{small_clock()};
  for (int i = 0; i < 50; ++i) {
    b.sender.submit(aer::Event{static_cast<std::uint16_t>(i % 8),
                               Time::ns(static_cast<double>(i) * 50.0)});
  }
  b.sched.run();
  EXPECT_EQ(b.words.size(), 50u);
  EXPECT_EQ(b.channel.handshakes(), 50u);
  EXPECT_TRUE(b.channel.violations().empty());
}

TEST(FrontEnd, RecordsHoldGroundTruth) {
  Bench b{small_clock()};
  b.sender.submit(aer::Event{7, 500_ns});
  b.sched.run();
  ASSERT_EQ(b.fe.records().size(), 1u);
  const auto& rec = b.fe.records()[0];
  EXPECT_EQ(rec.request.address, 7);
  EXPECT_EQ(rec.request.time, 505_ns);  // + addr setup
  EXPECT_GE(rec.sample_edge, rec.request.time);
  EXPECT_EQ(rec.word.address(), 7);
}

TEST(FrontEnd, RecordsCanBeDisabled) {
  FrontEndConfig fcfg;
  fcfg.keep_records = false;
  Bench b{small_clock(), fcfg};
  b.sender.submit(aer::Event{1, 1_us});
  b.sched.run();
  EXPECT_TRUE(b.fe.records().empty());
  EXPECT_EQ(b.fe.events(), 1u);
}

TEST(FrontEnd, RecordCapDropsOldestHalf) {
  FrontEndConfig fcfg;
  fcfg.max_records = 10;
  Bench b{small_clock(), fcfg};
  for (int i = 0; i < 25; ++i) {
    b.sender.submit(aer::Event{static_cast<std::uint16_t>(i),
                               Time::us(static_cast<double>(i + 1) * 5.0)});
  }
  b.sched.run();
  EXPECT_EQ(b.fe.events(), 25u);
  EXPECT_LE(b.fe.records().size(), 10u);
  // The newest events survive the trim.
  EXPECT_EQ(b.fe.records().back().request.address, 24);
}

TEST(FrontEnd, MetastabilityAddsOneEdgeSometimes) {
  FrontEndConfig fcfg;
  fcfg.metastability_prob = 0.5;
  fcfg.seed = 9;
  Bench b{small_clock(), fcfg};
  for (int i = 0; i < 200; ++i) {
    b.sender.submit(aer::Event{1, Time::us(static_cast<double>(i) * 2.0)});
  }
  b.sched.run();
  EXPECT_EQ(b.fe.events(), 200u);
  EXPECT_GT(b.fe.metastable_hits(), 50u);
  EXPECT_LT(b.fe.metastable_hits(), 150u);
  EXPECT_TRUE(b.channel.violations().empty());
}

TEST(FrontEnd, WakeupPathProducesValidHandshake) {
  Bench b{small_clock()};
  const Time awake = b.clkgen.schedule().awake_span();
  // First event while asleep (the generator starts its schedule at t=0 and
  // has long since shut down).
  b.sender.submit(aer::Event{3, awake * 10});
  b.sched.run();
  ASSERT_EQ(b.words.size(), 1u);
  EXPECT_TRUE(b.words[0].is_saturated());
  EXPECT_EQ(b.channel.handshakes(), 1u);
  EXPECT_EQ(b.clkgen.activity().wakeups, 1u);
}

TEST(FrontEnd, ManyEventsNoProtocolViolations) {
  Bench b{small_clock()};
  Time t = Time::zero();
  for (int i = 0; i < 500; ++i) {
    t += Time::us(static_cast<double>(1 + (i * 7) % 40));
    b.sender.submit(aer::Event{static_cast<std::uint16_t>(i % 128), t});
  }
  b.sched.run();
  EXPECT_EQ(b.fe.events(), 500u);
  EXPECT_TRUE(b.channel.violations().empty());
}

}  // namespace
}  // namespace aetr::frontend
