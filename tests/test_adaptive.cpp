// Tests for the closed-loop theta_div controller, including the full loop
// through SPI into a live interface.
#include <gtest/gtest.h>

#include <vector>

#include "aer/agents.hpp"
#include "core/interface.hpp"
#include "gen/sources.hpp"
#include "mcu/adaptive.hpp"
#include "mcu/consumer.hpp"
#include "spi/spi.hpp"

namespace aetr::mcu {
namespace {

using namespace time_literals;

/// Feed a regular stream at `rate` for `span` starting at `start`.
void feed(AdaptiveController& ctl, double rate, Time start, Time span) {
  const Time dt = Time::sec(1.0 / rate);
  for (Time t = start; t < start + span; t += dt) ctl.observe(t);
}

TEST(Adaptive, StartsInLowestBand) {
  AdaptiveController ctl;
  EXPECT_EQ(ctl.current_band(), 0u);
  EXPECT_EQ(ctl.current_policy().theta_div, 16u);
}

TEST(Adaptive, ClimbsBandsWithRate) {
  AdaptiveController ctl;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> applied;
  ctl.on_apply([&](std::uint32_t t, std::uint32_t n) {
    applied.emplace_back(t, n);
  });
  feed(ctl, 50e3, Time::zero(), 50_ms);
  EXPECT_EQ(ctl.current_band(), 2u);  // the 20 kevt/s.. band
  ASSERT_FALSE(applied.empty());
  EXPECT_EQ(applied.back().first, 64u);
}

TEST(Adaptive, DropsBackAfterSilence) {
  AdaptiveController ctl;
  feed(ctl, 50e3, Time::zero(), 50_ms);
  ASSERT_EQ(ctl.current_band(), 2u);
  // Sparse trickle afterwards: the estimate decays and the controller
  // steps back down.
  feed(ctl, 100.0, 60_ms, 500_ms);
  EXPECT_EQ(ctl.current_band(), 0u);
}

TEST(Adaptive, HysteresisBlocksBorderlineFlapping) {
  AdaptiveConfig cfg;
  cfg.hysteresis = 0.25;
  cfg.min_dwell = Time::zero();
  AdaptiveController ctl{cfg};
  // Rate just above the 20 kevt/s edge but inside the hysteresis margin:
  // must NOT climb.
  feed(ctl, 22e3, Time::zero(), 100_ms);
  EXPECT_EQ(ctl.current_band(), 1u);
  // Well past the margin: climbs.
  feed(ctl, 30e3, 100_ms, 100_ms);
  EXPECT_EQ(ctl.current_band(), 2u);
}

TEST(Adaptive, MinDwellRateLimitsRetunes) {
  AdaptiveConfig cfg;
  cfg.min_dwell = 1_sec;
  AdaptiveController ctl{cfg};
  feed(ctl, 50e3, Time::zero(), 20_ms);
  feed(ctl, 100.0, 30_ms, 300_ms);
  feed(ctl, 50e3, 340_ms, 20_ms);
  // Only the first retune fits inside the dwell window.
  EXPECT_LE(ctl.retunes(), 1u);
}

TEST(Adaptive, RejectsBadPolicyTables) {
  AdaptiveConfig empty;
  empty.policies.clear();
  EXPECT_THROW(AdaptiveController{empty}, std::invalid_argument);
  AdaptiveConfig unsorted;
  unsorted.policies = {{0.0, 16, 6}, {0.0, 32, 8}};
  EXPECT_THROW(AdaptiveController{unsorted}, std::invalid_argument);
}

TEST(Adaptive, ClosedLoopThroughSpiRetunesLiveInterface) {
  // Full loop: decoded I2S events -> controller -> SPI writes -> clock
  // generator reconfigured, while the stream runs.
  sim::Scheduler sched;
  core::InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 32;
  cfg.clock.theta_div = 16;  // boot in the low-power band
  cfg.clock.n_div = 6;
  core::AerToI2sInterface iface{sched, cfg};
  aer::AerSender sender{sched, iface.aer_in()};
  spi::SpiMaster master{sched, iface.spi()};

  AdaptiveController ctl;
  ctl.on_apply([&](std::uint32_t theta, std::uint32_t n) {
    master.write(spi::Reg::kThetaDiv, static_cast<std::uint8_t>(theta));
    master.write(spi::Reg::kNDiv, static_cast<std::uint8_t>(n));
  });
  AetrDecoder decoder{iface.tick_unit(), iface.saturation_span()};
  iface.on_i2s_word([&](aer::AetrWord w, Time) {
    const auto ev = decoder.decode(w);
      ctl.observe(ev.reconstructed_time, ev.saturated);
  });

  // Phase 1: trickle (stays in band 0). Phase 2: 60 kevt/s burst.
  gen::PoissonSource trickle{200.0, 128, 71};
  sender.submit_stream(gen::take_until(trickle, 50_ms));
  gen::PoissonSource burst{60e3, 128, 72, Time::us(2.0)};
  auto burst_events = gen::take(burst, 4000);
  for (auto& ev : burst_events) ev.time += 60_ms;
  sender.submit_stream(burst_events);
  sched.run();
  if (!iface.fifo().empty()) iface.i2s_master().request_drain(sched.now());
  sched.run();

  EXPECT_GE(ctl.retunes(), 1u);
  EXPECT_EQ(iface.clock_generator().config().theta_div, 64u);
  EXPECT_EQ(iface.clock_generator().config().n_div, 8u);
}

}  // namespace
}  // namespace aetr::mcu
