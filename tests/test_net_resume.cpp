// Socket-path crash recovery: SIGKILL the gateway process mid-stream with
// two active sessions, restart it with resume enabled, reconnect, and
// finish — both final summaries must be byte-identical to uninterrupted
// batch runs of the same streams.
//
// The gateway runs in a fork()ed child so SIGKILL really destroys the
// process (threads would survive an in-process simulation of this). fork()
// happens before any thread exists in the test binary, so this file keeps
// to plain fork/exec-free children calling Server::run().
//
// Snapshot interval 0.005 s: on these streams the periodic snapshot grid
// falls on quiescent points, so the snapshotting run — and therefore the
// killed-and-resumed run — equals the no-snapshot batch run exactly (the
// same schedule-is-part-of-the-run contract docs/SERVICE.md documents; a
// finer grid may legally perturb results and is deliberately not used
// here).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "core/config_io.hpp"
#include "core/scenario.hpp"
#include "core/summary.hpp"
#include "gen/sources.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace {

using namespace aetr;
namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "aetrrezXXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    if (made == nullptr) throw std::runtime_error{"mkdtemp failed"};
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str(const char* leaf) const {
    return (path / leaf).string();
  }
};

aer::EventStream poisson_stream(std::size_t n, std::uint64_t seed,
                                double rate_hz) {
  gen::PoissonSource source{rate_hz, 256, seed};
  return gen::take(source, n);
}

// Fork a gateway child. exit_after_sessions == 0 runs until killed.
pid_t spawn_gateway(const TempDir& tmp, bool resume,
                    std::size_t exit_after_sessions) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error{"fork failed"};
  if (pid == 0) {
    try {
      net::ServerOptions options;
      options.uds_path = (tmp.path / "gw.sock").string();
      options.gateway.snapshot_dir = tmp.path.string();
      options.gateway.snapshot_interval_sec = 0.005;
      options.gateway.resume = resume;
      options.exit_after_sessions = exit_after_sessions;
      net::Server server{std::move(options)};
      server.run();
      ::_exit(0);
    } catch (...) {
      ::_exit(1);
    }
  }
  return pid;
}

net::Client connect_retry(const std::string& path) {
  for (int attempt = 0;; ++attempt) {
    try {
      return net::Client::connect_uds(path);
    } catch (const std::runtime_error&) {
      if (attempt > 200) throw;
      ::usleep(10'000);
    }
  }
}

TEST(NetResume, SigkillWithTwoActiveSessionsResumesByteIdentically) {
  const auto stream_a = poisson_stream(3000, 11, 50e3);
  const auto stream_b = poisson_stream(2500, 22, 80e3);
  TempDir tmp;
  const auto sock = tmp.str("gw.sock");

  // Phase 1: stream most of both sessions, interleaved, then SIGKILL the
  // gateway with both sessions live. Credit accounting guarantees that
  // everything send_some() returned as sent has been ingested server-side
  // (the CREDIT reply comes back only after the pump ran), so the periodic
  // snapshots up to that point are on disk when the process dies.
  const pid_t first = spawn_gateway(tmp, /*resume=*/false, 0);
  {
    auto a = connect_retry(sock);
    auto b = connect_retry(sock);
    ASSERT_EQ(a.hello("alpha", "").events_fed, 0u);
    ASSERT_EQ(b.hello("beta", "").events_fed, 0u);
    net::SendOptions chunked;
    chunked.chunk = 128;
    std::size_t pos_a = 0;
    std::size_t pos_b = 0;
    while (pos_a < 2900 || pos_b < 2400) {
      if (pos_a < 2900) pos_a += a.send_some(stream_a, pos_a, 128, chunked);
      if (pos_b < 2400) pos_b += b.send_some(stream_b, pos_b, 128, chunked);
    }
  }  // clients close; sessions stay live (no DRAIN/BYE) — abandoned mid-run
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first, &status, 0), first);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_TRUE(fs::exists(tmp.str("alpha.snap")));
  ASSERT_TRUE(fs::exists(tmp.str("beta.snap")));

  // Phase 2: restart with resume, reconnect, skip what the snapshot
  // already holds, finish both sessions.
  const pid_t second = spawn_gateway(tmp, /*resume=*/true, 2);
  std::string summary_a;
  std::string summary_b;
  {
    auto a = connect_retry(sock);
    auto b = connect_retry(sock);
    const auto ack_a = a.hello("alpha", "");
    const auto ack_b = b.hello("beta", "");
    // The snapshot can only hold events the client already sent — resuming
    // never asks the client to rewind past its own progress.
    ASSERT_GT(ack_a.events_fed, 0u);
    ASSERT_LE(ack_a.events_fed, 2900u);
    ASSERT_GT(ack_b.events_fed, 0u);
    ASSERT_LE(ack_b.events_fed, 2400u);
    a.send_events(stream_a, ack_a.events_fed);
    b.send_events(stream_b, ack_b.events_fed);
    summary_a = a.drain();
    summary_b = b.drain();
  }
  ASSERT_EQ(::waitpid(second, &status, 0), second);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The acceptance gate: resumed-over-sockets == uninterrupted batch.
  const auto batch_a = core::run_summary_text(
      core::run_scenario(core::ScenarioConfig{}, stream_a));
  const auto batch_b = core::run_summary_text(
      core::run_scenario(core::ScenarioConfig{}, stream_b));
  EXPECT_EQ(summary_a, batch_a);
  EXPECT_EQ(summary_b, batch_b);
}

TEST(NetResume, ResumeRejectsConfigMismatch) {
  // A client reconnecting to a snapshot taken under a different scenario
  // must be NACKed, not silently continued under the wrong physics.
  const auto stream = poisson_stream(2000, 11, 50e3);
  TempDir tmp;
  const auto sock = tmp.str("gw.sock");

  const pid_t first = spawn_gateway(tmp, /*resume=*/false, 0);
  {
    auto c = connect_retry(sock);
    (void)c.hello("alpha", "");
    net::SendOptions chunked;
    chunked.chunk = 128;
    std::size_t pos = 0;
    while (pos < 1900) pos += c.send_some(stream, pos, 128, chunked);
  }
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first, &status, 0), first);
  ASSERT_TRUE(fs::exists(tmp.str("alpha.snap")));

  const pid_t second = spawn_gateway(tmp, /*resume=*/true, 1);
  {
    auto c = connect_retry(sock);
    core::ScenarioConfig other;
    other.sender.min_gap = Time::ns(500);
    EXPECT_THROW((void)c.hello("alpha", core::dump_scenario(other)),
                 std::runtime_error);
  }
  ASSERT_EQ(::waitpid(second, &status, 0), second);
}

}  // namespace
