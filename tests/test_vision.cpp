// Tests for the DVS sensor model: address packing, change detection,
// polarity, refractory behaviour, arbitration serialisation, and the scene
// generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "vision/dvs.hpp"

namespace aetr::vision {
namespace {

using namespace time_literals;

TEST(DvsAddress, EncodeDecodeRoundTrip) {
  DvsConfig cfg;
  for (std::size_t y : {0u, 7u, 15u}) {
    for (std::size_t x : {0u, 13u, 31u}) {
      for (Polarity p : {Polarity::kOn, Polarity::kOff}) {
        const auto code = DvsAddress::encode(cfg, x, y, p);
        const auto back = DvsAddress::decode(cfg, code);
        EXPECT_EQ(back.x, x);
        EXPECT_EQ(back.y, y);
        EXPECT_EQ(back.polarity, p);
      }
    }
  }
}

TEST(DvsAddress, FitsTenBits) {
  DvsConfig cfg;
  const auto top = DvsAddress::encode(cfg, cfg.width - 1, cfg.height - 1,
                                      Polarity::kOn);
  EXPECT_LE(top, aer::kAddressMask);
}

TEST(Dvs, GeometryOverflowRejected) {
  DvsConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  EXPECT_THROW(DvsSensor{cfg}, std::invalid_argument);
}

DvsConfig quiet_config() {
  DvsConfig cfg;
  cfg.background_rate_hz = 0.0;  // deterministic tests
  return cfg;
}

TEST(Dvs, FirstFrameOnlyPrimes) {
  DvsSensor sensor{quiet_config()};
  SceneGenerator scene{32, 16};
  const auto events = sensor.process_frame(scene.background(0.5), 0_ms);
  EXPECT_TRUE(events.empty());
}

TEST(Dvs, StaticSceneIsSilent) {
  DvsSensor sensor{quiet_config()};
  SceneGenerator scene{32, 16};
  const auto events = sensor.process(scene.static_scene(1e3, 100_ms));
  EXPECT_TRUE(events.empty());
}

TEST(Dvs, BrighteningEmitsOnEvents) {
  DvsConfig cfg = quiet_config();
  DvsSensor sensor{cfg};
  SceneGenerator scene{32, 16};
  (void)sensor.process_frame(scene.background(0.5), 0_ms);
  const auto events = sensor.process_frame(scene.background(1.0), 1_ms);
  ASSERT_FALSE(events.empty());
  for (const auto& ev : events) {
    EXPECT_EQ(DvsAddress::decode(cfg, ev.address).polarity, Polarity::kOn);
  }
}

TEST(Dvs, DimmingEmitsOffEvents) {
  DvsConfig cfg = quiet_config();
  DvsSensor sensor{cfg};
  SceneGenerator scene{32, 16};
  (void)sensor.process_frame(scene.background(1.0), 0_ms);
  const auto events = sensor.process_frame(scene.background(0.5), 1_ms);
  ASSERT_FALSE(events.empty());
  for (const auto& ev : events) {
    EXPECT_EQ(DvsAddress::decode(cfg, ev.address).polarity, Polarity::kOff);
  }
}

TEST(Dvs, LargeStepEmitsBurstPerPixel) {
  DvsConfig cfg = quiet_config();
  cfg.refractory = Time::zero();  // count every crossing
  DvsSensor sensor{cfg};
  SceneGenerator scene{32, 16};
  (void)sensor.process_frame(scene.background(0.25), 0_ms);
  const auto events = sensor.process_frame(scene.background(1.0), 1_ms);
  // log(1.0/0.25) = 1.386; threshold 0.15 -> 9 crossings per pixel.
  std::map<std::uint16_t, int> per_pixel;
  for (const auto& ev : events) ++per_pixel[ev.address];
  for (const auto& [addr, n] : per_pixel) EXPECT_EQ(n, 9);
}

TEST(Dvs, RefractorySuppressesBurst) {
  DvsConfig cfg = quiet_config();
  cfg.refractory = 10_ms;  // longer than the frame: one event per pixel
  DvsSensor sensor{cfg};
  SceneGenerator scene{32, 16};
  (void)sensor.process_frame(scene.background(0.25), 0_ms);
  const auto events = sensor.process_frame(scene.background(1.0), 1_ms);
  std::map<std::uint16_t, int> per_address;
  for (const auto& ev : events) ++per_address[ev.address];
  for (const auto& [addr, n] : per_address) EXPECT_EQ(n, 1);
  EXPECT_GT(sensor.refractory_drops(), 0u);
}

TEST(Dvs, ArbiterSerialisesAndOrders) {
  DvsConfig cfg = quiet_config();
  cfg.refractory = Time::zero();
  ArbiterConfig arb;
  arb.cycle = 100_ns;
  DvsSensor sensor{cfg, arb};
  SceneGenerator scene{32, 16};
  (void)sensor.process_frame(scene.background(0.5), 0_ms);
  const auto events = sensor.process_frame(scene.background(1.0), 1_ms);
  ASSERT_GT(events.size(), 100u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time - events[i - 1].time, 100_ns);
  }
}

TEST(Dvs, MovingBarActivatesEdgePixels) {
  DvsConfig cfg = quiet_config();
  DvsSensor sensor{cfg};
  SceneGenerator scene{cfg.width, cfg.height};
  (void)sensor.process_frame(scene.vertical_bar(10.0), 0_ms);
  const auto events = sensor.process_frame(scene.vertical_bar(11.0), 1_ms);
  ASSERT_FALSE(events.empty());
  // Only columns near the bar edges fire.
  for (const auto& ev : events) {
    const auto a = DvsAddress::decode(cfg, ev.address);
    EXPECT_GE(a.x, 7u);
    EXPECT_LE(a.x, 14u);
  }
  // Leading edge brightens (ON), trailing edge dims (OFF).
  bool saw_on = false, saw_off = false;
  for (const auto& ev : events) {
    const auto a = DvsAddress::decode(cfg, ev.address);
    if (a.polarity == Polarity::kOn) {
      saw_on = true;
      EXPECT_GT(a.x, 10u);
    } else {
      saw_off = true;
      EXPECT_LT(a.x, 12u);
    }
  }
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_off);
}

TEST(Dvs, SweepProducesTimeSortedStream) {
  DvsConfig cfg = quiet_config();
  cfg.background_rate_hz = 1.0;
  DvsSensor sensor{cfg};
  SceneGenerator scene{cfg.width, cfg.height};
  const auto events = sensor.process(scene.sweeping_bar(1e3, 200_ms));
  ASSERT_GT(events.size(), 500u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

TEST(Dvs, BackgroundNoiseRateApproximatelyConfigured) {
  DvsConfig cfg = quiet_config();
  cfg.background_rate_hz = 20.0;  // per pixel
  DvsSensor sensor{cfg};
  SceneGenerator scene{cfg.width, cfg.height};
  const auto events = sensor.process(scene.static_scene(1e3, 1000_ms));
  const double expected =
      20.0 * static_cast<double>(cfg.width * cfg.height);
  EXPECT_NEAR(static_cast<double>(events.size()), expected, expected * 0.15);
}

TEST(Scene, DiscCoversExpectedArea) {
  SceneGenerator scene{32, 16};
  const auto f = scene.disc(16.0, 8.0, 4.0);
  double bright = 0.0;
  for (double p : f.pixels) {
    if (p > 0.9) bright += 1.0;
  }
  // pi * r^2 ~ 50 pixels fully covered.
  EXPECT_NEAR(bright, 50.0, 15.0);
}

TEST(Scene, BarCoverageIsAntiAliased) {
  SceneGenerator scene{32, 16};
  const auto f = scene.vertical_bar(10.5, 1.0, 0.0, 3.0);
  // Bar spans [9.0, 12.0): columns 9..11 full, neighbours dark.
  EXPECT_NEAR(f.at(10, 0), 1.0, 1e-9);
  EXPECT_NEAR(f.at(8, 0), 0.0, 1e-9);
  EXPECT_NEAR(f.at(12, 0), 0.0, 1e-9);
}

}  // namespace
}  // namespace aetr::vision
