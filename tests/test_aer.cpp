// Unit tests for the AER substrate: event/word encoding, 4-phase channel
// protocol checking, sender/receiver agents, CAVIAR compliance, trace I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "aer/agents.hpp"
#include "aer/caviar.hpp"
#include "aer/channel.hpp"
#include "aer/event.hpp"
#include "aer/trace.hpp"
#include "sim/scheduler.hpp"

namespace aetr::aer {
namespace {

using namespace time_literals;

TEST(AetrWord, FieldPackingRoundTrip) {
  const auto w = AetrWord::make(0x2AB, 123456);
  EXPECT_EQ(w.address(), 0x2AB);
  EXPECT_EQ(w.timestamp_ticks(), 123456u);
  EXPECT_FALSE(w.is_saturated());
}

TEST(AetrWord, AddressMasksToTenBits) {
  const auto w = AetrWord::make(0xFFFF, 1);
  EXPECT_EQ(w.address(), 0x3FF);
}

TEST(AetrWord, TimestampSaturatesAtFieldWidth) {
  const auto w = AetrWord::make(5, std::uint64_t{1} << 30);
  EXPECT_TRUE(w.is_saturated());
  EXPECT_EQ(w.timestamp_ticks(), AetrWord::kSaturated);
}

TEST(AetrWord, SaturatedMarker) {
  const auto w = AetrWord::saturated(17);
  EXPECT_TRUE(w.is_saturated());
  EXPECT_EQ(w.address(), 17);
}

TEST(AetrWord, TimestampScaling) {
  const auto w = AetrWord::make(1, 100);
  EXPECT_EQ(w.timestamp(Time::ns(66.667)), Time::ns(6666.7));
}

TEST(AetrWord, RawRoundTrip) {
  const auto w = AetrWord::make(0x155, 0x1234);
  const AetrWord back{w.raw()};
  EXPECT_EQ(back, w);
}

TEST(Channel, FourPhaseHandshakeCompletes) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.set_strict(true);
  ch.drive_addr(42);
  ch.assert_req();
  EXPECT_TRUE(ch.req());
  EXPECT_EQ(ch.addr(), 42);
  ch.assert_ack();
  ch.deassert_req();
  ch.deassert_ack();
  EXPECT_EQ(ch.handshakes(), 1u);
  EXPECT_TRUE(ch.violations().empty());
}

TEST(Channel, ObserversSeeEdges) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  int req_edges = 0, ack_edges = 0;
  ch.on_req_change([&](bool, Time) { ++req_edges; });
  ch.on_ack_change([&](bool, Time) { ++ack_edges; });
  ch.drive_addr(1);
  ch.assert_req();
  ch.assert_ack();
  ch.deassert_req();
  ch.deassert_ack();
  EXPECT_EQ(req_edges, 2);
  EXPECT_EQ(ack_edges, 2);
}

TEST(Channel, AddrChangeDuringReqIsViolation) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.drive_addr(1);
  ch.assert_req();
  ch.drive_addr(2);
  ASSERT_EQ(ch.violations().size(), 1u);
  EXPECT_NE(ch.violations()[0].description.find("ADDR"), std::string::npos);
}

TEST(Channel, AckWithoutReqIsViolation) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.assert_ack();
  EXPECT_EQ(ch.violations().size(), 1u);
}

TEST(Channel, ReqDeassertBeforeAckIsViolation) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.drive_addr(1);
  ch.assert_req();
  ch.deassert_req();
  EXPECT_FALSE(ch.violations().empty());
}

TEST(Channel, StrictModeThrows) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.set_strict(true);
  EXPECT_THROW(ch.assert_ack(), std::logic_error);
}

TEST(Channel, DoubleReqIsViolation) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.drive_addr(1);
  ch.assert_req();
  ch.assert_req();
  EXPECT_FALSE(ch.violations().empty());
}

TEST(Agents, SenderReceiverRoundTrip) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.set_strict(true);
  AerSender sender{sched, ch};
  ImmediateAckReceiver receiver{sched, ch};
  EventStream stream;
  for (int i = 0; i < 10; ++i) {
    stream.push_back(Event{static_cast<std::uint16_t>(i), Time::us(i * 10)});
  }
  sender.submit_stream(stream);
  sched.run();
  ASSERT_EQ(receiver.received().size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(receiver.received()[i].address, i);
    // Received at the REQ edge: nominal time + addr setup.
    EXPECT_GE(receiver.received()[i].time,
              Time::us(static_cast<double>(i) * 10));
  }
  EXPECT_EQ(ch.handshakes(), 10u);
  EXPECT_EQ(sender.backlog(), 0u);
}

TEST(Agents, SenderAppliesBackpressure) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  ch.set_strict(true);
  AerSender sender{sched, ch};
  // Slow receiver: 1 us to ACK, so closely spaced events must queue.
  ImmediateAckReceiver receiver{sched, ch, 1_us, 1_us};
  EventStream stream;
  for (int i = 0; i < 5; ++i) {
    stream.push_back(Event{static_cast<std::uint16_t>(i), Time::ns(i * 10)});
  }
  sender.submit_stream(stream);
  sched.run();
  ASSERT_EQ(receiver.received().size(), 5u);
  // Actual REQ times must be serialised at >= the handshake duration apart.
  for (std::size_t i = 1; i < sender.sent().size(); ++i) {
    EXPECT_GE(sender.sent()[i].time - sender.sent()[i - 1].time, 2_us);
  }
}

TEST(Agents, SentLogRecordsActualReqTimes) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  AerSender sender{sched, ch, SenderTiming{.addr_setup = 7_ns}};
  ImmediateAckReceiver receiver{sched, ch};
  sender.submit(Event{3, 100_ns});
  sched.run();
  ASSERT_EQ(sender.sent().size(), 1u);
  EXPECT_EQ(sender.sent()[0].time, 107_ns);
  EXPECT_GT(sender.handshake_latency().mean(), 0.0);
}

TEST(Caviar, CompliantHandshakesPass) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  AerSender sender{sched, ch};
  ImmediateAckReceiver receiver{sched, ch, 10_ns, 5_ns};
  CaviarChecker checker{ch};
  EventStream stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(Event{1, Time::us(i)});
  }
  sender.submit_stream(stream);
  sched.run();
  EXPECT_EQ(checker.checked(), 20u);
  EXPECT_TRUE(checker.compliant());
  EXPECT_LT(checker.durations().max(), 700e-9);
}

TEST(Caviar, SlowHandshakeFlagged) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  AerSender sender{sched, ch};
  ImmediateAckReceiver receiver{sched, ch, 1_us, 5_ns};  // ACK after 1 us
  CaviarChecker checker{ch};
  sender.submit(Event{1, Time::zero()});
  sched.run();
  EXPECT_EQ(checker.checked(), 1u);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_GT(checker.violations()[0].duration(), 700_ns);
}

TEST(Trace, WriteReadRoundTrip) {
  EventStream events{{5, 100_ns}, {6, 250_ns}, {1023, 1_ms}};
  std::stringstream ss;
  write_trace(ss, events);
  const auto back = read_trace(ss);
  EXPECT_EQ(back, events);
}

TEST(Trace, CommentsAndBlanksIgnored) {
  std::stringstream ss{"# header\n\n100 5\n  # mid comment\n200 6\n"};
  const auto events = read_trace(ss);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].address, 5);
  EXPECT_EQ(events[1].time, 200_ps);
}

TEST(Trace, MalformedLineThrows) {
  std::stringstream ss{"100 notanumber\n"};
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(Trace, AddressOutOfRangeThrows) {
  std::stringstream ss{"100 5000\n"};
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(Trace, OutOfOrderThrows) {
  std::stringstream ss{"200 1\n100 2\n"};
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(Trace, FileRoundTrip) {
  const std::string path = testing::TempDir() + "aetr_trace_test.txt";
  EventStream events{{1, 10_ns}, {2, 20_ns}};
  save_trace(path, events);
  EXPECT_EQ(load_trace(path), events);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aetr::aer
