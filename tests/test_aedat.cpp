// Tests for the AEDAT 2.0 binary trace format.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "aer/aedat.hpp"
#include "gen/sources.hpp"

namespace aetr::aer {
namespace {

using namespace time_literals;

TEST(Aedat, RoundTripOnMicrosecondGrid) {
  EventStream events{{5, 100_us}, {6, 250_us}, {1023, 2_ms}};
  std::stringstream ss;
  write_aedat(ss, events);
  const auto back = read_aedat(ss);
  EXPECT_EQ(back, events);
}

TEST(Aedat, HeaderIsAsciiWithMagic) {
  std::stringstream ss;
  write_aedat(ss, {{1, 1_us}});
  const auto text = ss.str();
  EXPECT_EQ(text.rfind(kAedatMagic, 0), 0u);  // starts with the magic
  EXPECT_NE(text.find("int32 address, int32 timestamp"), std::string::npos);
}

TEST(Aedat, SubMicrosecondTimesRoundToGrid) {
  EventStream events{{1, Time::ns(1499.0)}, {2, Time::ns(2600.0)}};
  std::stringstream ss;
  write_aedat(ss, events);
  const auto back = read_aedat(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].time, 1_us);  // 1.499 us -> 1 us
  EXPECT_EQ(back[1].time, 3_us);  // 2.6 us -> 3 us
}

TEST(Aedat, BigEndianEncoding) {
  std::stringstream ss;
  write_aedat(ss, {{0x0102, Time::us(0x01020304)}});
  const auto text = ss.str();
  const auto data_at = text.find('\n', text.find("tick")) + 1;
  ASSERT_NE(data_at, std::string::npos);
  const auto* bytes =
      reinterpret_cast<const unsigned char*>(text.data() + data_at);
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(bytes[1], 0x00);
  EXPECT_EQ(bytes[2], 0x01);
  EXPECT_EQ(bytes[3], 0x02);
  EXPECT_EQ(bytes[4], 0x01);
  EXPECT_EQ(bytes[5], 0x02);
  EXPECT_EQ(bytes[6], 0x03);
  EXPECT_EQ(bytes[7], 0x04);
}

TEST(Aedat, BadMagicThrows) {
  std::stringstream ss{"#!AER-DAT9.9\r\n"};
  EXPECT_THROW(read_aedat(ss), std::runtime_error);
}

TEST(Aedat, MissingHeaderThrows) {
  std::stringstream ss{"garbage"};
  EXPECT_THROW(read_aedat(ss), std::runtime_error);
}

TEST(Aedat, TruncatedRecordThrows) {
  std::stringstream ss;
  write_aedat(ss, {{1, 1_us}});
  std::string text = ss.str();
  text.pop_back();  // chop one byte off the last record
  std::stringstream chopped{text};
  EXPECT_THROW(read_aedat(chopped), std::runtime_error);
}

TEST(Aedat, EmptyStreamIsValid) {
  std::stringstream ss;
  write_aedat(ss, {});
  EXPECT_TRUE(read_aedat(ss).empty());
}

TEST(Aedat, FileRoundTripWithGeneratedStream) {
  const std::string path = testing::TempDir() + "aetr_test.aedat";
  gen::PoissonSource src{10e3, 128, 77, Time::us(2.0)};
  const auto events = gen::take(src, 500);
  save_aedat(path, events);
  const auto back = load_aedat(path);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].address, events[i].address);
    // Within the 1 us quantisation.
    const auto dt = back[i].time - events[i].time;
    EXPECT_LE(dt < Time::zero() ? Time::zero() - dt : dt, Time::us(0.5));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aetr::aer
