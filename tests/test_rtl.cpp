// RTL clock unit tests, culminating in the co-simulation equivalence proof:
// the edge-by-edge FSM and the closed-form ClockGenerator produce identical
// timestamps for identical stimuli.
#include <gtest/gtest.h>

#include <vector>

#include "clockgen/clock_generator.hpp"
#include "gen/sources.hpp"
#include "rtl/clock_unit.hpp"
#include "sim/scheduler.hpp"

namespace aetr::rtl {
namespace {

using namespace time_literals;

ClockUnitConfig small_rtl() {
  ClockUnitConfig cfg;
  cfg.theta_div = 8;
  cfg.n_div = 3;
  return cfg;
}

clockgen::ClockGeneratorConfig small_fast() {
  clockgen::ClockGeneratorConfig cfg;
  cfg.theta_div = 8;
  cfg.n_div = 3;
  return cfg;
}

TEST(RtlClockUnit, BaseClockIs15MHz) {
  sim::Scheduler sched;
  RtlClockUnit unit{sched, small_rtl()};
  unit.start();
  sched.run_until(1_ms);
  // 120 MHz ring / 2^3 = 15 MHz, but the FSM divides and then sleeps, so
  // base edges stop once asleep: expect exactly awake_span / Tmin edges.
  EXPECT_TRUE(unit.asleep());
  // theta*(2^(n+1)-1) = 8 * 15 = 120 base-clock periods of awake time.
  EXPECT_NEAR(static_cast<double>(unit.base_edges()), 120.0, 2.0);
}

TEST(RtlClockUnit, DivisionStaircase) {
  sim::Scheduler sched;
  RtlClockUnit unit{sched, small_rtl()};
  std::vector<std::pair<Time, std::uint32_t>> ticks;
  unit.sampling_line().on_rising(
      [&](Time t, Time) { ticks.emplace_back(t, unit.level()); });
  unit.start();
  sched.run_until(1_ms);
  // theta*(n+1) - 1 sampling edges (no reset edge at t=0 from the RTL side,
  // and the shutdown instant is not an edge).
  ASSERT_EQ(ticks.size(), 31u);
  // First 7 ticks at level 0, boundary tick at level 1, etc.
  EXPECT_EQ(ticks[0].second, 0u);
  EXPECT_EQ(ticks[6].second, 0u);
  EXPECT_EQ(ticks[7].second, 1u);   // the boundary edge
  EXPECT_EQ(ticks[15].second, 2u);
  EXPECT_EQ(ticks[23].second, 3u);
  // Spacing doubles across boundaries (measured between consecutive ticks).
  const Time tmin = ticks[1].first - ticks[0].first;
  EXPECT_EQ(ticks[9].first - ticks[8].first, tmin * 2);
  EXPECT_EQ(ticks[17].first - ticks[16].first, tmin * 4);
  EXPECT_EQ(ticks[25].first - ticks[24].first, tmin * 8);
}

TEST(RtlClockUnit, CounterTracksTminUnits) {
  sim::Scheduler sched;
  RtlClockUnit unit{sched, small_rtl()};
  unit.start();
  sched.run_until(1_ms);
  // Frozen at the saturation value theta*(2^(n+1)-1) = 120.
  EXPECT_EQ(unit.counter(), 120u);
}

TEST(RtlClockUnit, SampleLatchesAndResets) {
  sim::Scheduler sched;
  RtlClockUnit unit{sched, small_rtl()};
  std::vector<std::uint64_t> latched;
  unit.on_sample([&](Time, std::uint64_t c, bool sat) {
    latched.push_back(c);
    EXPECT_FALSE(sat);
    unit.set_request(false);  // handshake closes
  });
  unit.start();
  const Time tmin = Time::ps(66664);  // 8 ring periods
  sched.schedule_at(tmin * 3 + 1_ns, [&] { unit.set_request(true); });
  sched.run_until(tmin * 12);
  ASSERT_EQ(latched.size(), 1u);
  EXPECT_EQ(latched[0], 6u);  // first edge >= req is edge 4, +2 sync edges
  EXPECT_EQ(unit.level(), 0u);  // < theta ticks since the reset
}

TEST(RtlClockUnit, WakeFromSleepSamplesSaturated) {
  sim::Scheduler sched;
  RtlClockUnit unit{sched, small_rtl()};
  bool got = false;
  unit.on_sample([&](Time, std::uint64_t c, bool sat) {
    got = true;
    EXPECT_TRUE(sat);
    EXPECT_EQ(c, 120u);
    unit.set_request(false);
  });
  unit.start();
  sched.schedule_at(1_ms, [&] {
    EXPECT_TRUE(unit.asleep());
    unit.set_request(true);
  });
  sched.run_until(2_ms);
  EXPECT_TRUE(got);
  // It slept again after the post-sample schedule expired (another 8 us).
  EXPECT_TRUE(unit.asleep());
  EXPECT_EQ(unit.oscillator().wakeups(), 1u);
}

TEST(RtlClockUnit, NaiveModeNeverSleeps) {
  sim::Scheduler sched;
  ClockUnitConfig cfg = small_rtl();
  cfg.divide_enabled = false;
  RtlClockUnit unit{sched, cfg};
  unit.start();
  sched.run_until(100_us);
  EXPECT_FALSE(unit.asleep());
  EXPECT_EQ(unit.level(), 0u);
  // 15 MHz for 100 us: ~1500 sampling edges.
  EXPECT_NEAR(static_cast<double>(unit.sampling_line().edge_count()), 1500.0,
              3.0);
}

TEST(RtlClockUnit, ShutdownDisabledHoldsSlowestPeriod) {
  sim::Scheduler sched;
  ClockUnitConfig cfg = small_rtl();
  cfg.shutdown_enabled = false;
  RtlClockUnit unit{sched, cfg};
  unit.start();
  sched.run_until(1_ms);
  EXPECT_FALSE(unit.asleep());
  EXPECT_EQ(unit.level(), 3u);
  EXPECT_GT(unit.counter(), 120u);  // keeps counting at the slow period
}

// ---------------------------------------------------------------------------
// Co-simulation equivalence: RTL vs. closed-form ClockGenerator.

// Both harnesses emulate the AER sender's serialisation: a request can
// only launch after the previous handshake closed (captures never overlap).
struct FastHarness {
  sim::Scheduler sched;
  clockgen::ClockGenerator cg;
  std::vector<std::uint64_t> ticks;
  std::vector<bool> sats;
  aer::EventStream events;
  std::size_t next{0};
  std::uint32_t sync{2};

  explicit FastHarness(const clockgen::ClockGeneratorConfig& cfg)
      : cg{sched, cfg} {}

  void issue() {
    if (next >= events.size()) return;
    // The sender re-arms strictly after the previous handshake: a request
    // coincident with a sampling edge would be metastable in the first FF.
    const Time at = std::max(events[next].time, sched.now() + Time::ps(1));
    ++next;
    sched.schedule_at(at, [this] {
      cg.capture_request(sync, [this](Time, std::uint64_t t, bool s) {
        ticks.push_back(t);
        sats.push_back(s);
        issue();
      });
    });
  }

  void run(const aer::EventStream& evs, std::uint32_t sync_stages) {
    events = evs;
    sync = sync_stages;
    issue();
    sched.run();
  }
};

struct RtlHarness {
  sim::Scheduler sched;
  RtlClockUnit unit;
  std::vector<std::uint64_t> ticks;
  std::vector<bool> sats;
  aer::EventStream events;
  std::size_t next{0};

  explicit RtlHarness(const ClockUnitConfig& cfg) : unit{sched, cfg} {
    unit.on_sample([this](Time, std::uint64_t c, bool s) {
      ticks.push_back(c);
      sats.push_back(s);
      unit.set_request(false);
      issue();
    });
  }

  void issue() {
    if (next >= events.size()) return;
    // The sender re-arms strictly after the previous handshake: a request
    // coincident with a sampling edge would be metastable in the first FF.
    const Time at = std::max(events[next].time, sched.now() + Time::ps(1));
    ++next;
    sched.schedule_at(at, [this] { unit.set_request(true); });
  }

  void run(const aer::EventStream& evs) {
    events = evs;
    unit.start();
    issue();
    sched.run();
  }
};

class RtlEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(RtlEquivalence, TimestampsMatchClosedForm) {
  const double rate = GetParam();
  // Streams that keep the clock awake (no sleeps): divider phase after a
  // wake differs by a fraction of Tmin between the models, so the awake
  // path must be tick-exact and the sleep path is checked separately.
  gen::PoissonSource src{rate, 128, 2024, Time::ns(500.0)};
  auto events = gen::take(src, 400);
  for (auto& ev : events) {
    ev.time += 1_us;  // past both models' start-up
  }

  ClockUnitConfig rtl_cfg;
  rtl_cfg.theta_div = 8;
  rtl_cfg.n_div = 3;
  clockgen::ClockGeneratorConfig fast_cfg;
  fast_cfg.theta_div = 8;
  fast_cfg.n_div = 3;
  // Use the RTL ring's exact period (2 * stages * stage_delay) so the two
  // models share one picosecond grid — otherwise they drift a few ps per
  // cycle and quantise borderline requests differently.
  fast_cfg.ring_frequency = Frequency::from_period(
      rtl_cfg.ring.stage_delay * static_cast<Time::Rep>(2 * rtl_cfg.ring.stages));

  FastHarness fast{fast_cfg};
  fast.run(events, 2);
  RtlHarness rtl{rtl_cfg};
  rtl.run(events);

  ASSERT_EQ(fast.ticks.size(), events.size());
  ASSERT_EQ(rtl.ticks.size(), events.size());
  std::size_t awake_compared = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(rtl.sats[i], fast.sats[i]) << "event " << i;
    // The first event measures from different origins (construction vs.
    // start); all subsequent ones must agree tick-exactly.
    if (i > 0) {
      EXPECT_EQ(rtl.ticks[i], fast.ticks[i]) << "event " << i;
      awake_compared += rtl.sats[i] ? 0u : 1u;
    }
  }
  // The stream must actually exercise the awake (non-saturated) path.
  EXPECT_GE(awake_compared, 20u);
}

INSTANTIATE_TEST_SUITE_P(AwakeRates, RtlEquivalence,
                         ::testing::Values(30e3, 100e3, 400e3));

TEST(RtlEquivalenceSleep, BothSaturateOnLongGaps) {
  aer::EventStream events;
  for (int i = 1; i <= 20; ++i) {
    events.push_back(
        {static_cast<std::uint16_t>(i), Time::ms(static_cast<double>(i))});
  }
  FastHarness fast{small_fast()};
  fast.run(events, 2);
  RtlHarness rtl{small_rtl()};
  rtl.run(events);
  ASSERT_EQ(rtl.ticks.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(rtl.sats[i]);
    EXPECT_TRUE(fast.sats[i]);
    EXPECT_EQ(rtl.ticks[i], 120u);
    EXPECT_EQ(fast.ticks[i], 120u);
  }
}

}  // namespace
}  // namespace aetr::rtl
