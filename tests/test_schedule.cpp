// Tests for the closed-form sampling schedule — the heart of the paper's
// Fig. 1 algorithm. Includes the Fig. 2 waveform check (Ndiv=3, theta=8)
// and property sweeps proving the quantisation bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "clockgen/schedule.hpp"
#include "util/rng.hpp"

namespace aetr::clockgen {
namespace {

using namespace time_literals;

ScheduleConfig fig2_config() {
  ScheduleConfig cfg;
  cfg.tmin = 100_ns;  // arbitrary round unit for readability
  cfg.theta_div = 8;
  cfg.n_div = 3;
  return cfg;
}

TEST(Schedule, LevelStartsFollowGeometricSeries) {
  const SamplingSchedule s{fig2_config()};
  EXPECT_EQ(s.level_start(0), Time::zero());
  EXPECT_EQ(s.level_start(1), 800_ns);    // 8 cycles @ 100 ns
  EXPECT_EQ(s.level_start(2), 2400_ns);   // + 8 @ 200 ns
  EXPECT_EQ(s.level_start(3), 5600_ns);   // + 8 @ 400 ns
  EXPECT_EQ(s.awake_span(), 12000_ns);    // + 8 @ 800 ns -> shutdown
}

TEST(Schedule, PeriodDoublesPerLevel) {
  const SamplingSchedule s{fig2_config()};
  EXPECT_EQ(s.period_of_level(0), 100_ns);
  EXPECT_EQ(s.period_of_level(1), 200_ns);
  EXPECT_EQ(s.period_of_level(2), 400_ns);
  EXPECT_EQ(s.period_of_level(3), 800_ns);
}

TEST(Schedule, Fig2EdgePattern) {
  // Reproduces the Fig. 2 waveform: theta_div = 8, N_div = 3. Eight edges
  // per level, each level half the frequency, then silence.
  const SamplingSchedule s{fig2_config()};
  const auto edges = s.enumerate_edges(1_ms);
  // Levels 0..3, 8 edges each, minus the shutdown instant, plus edge 0.
  ASSERT_EQ(edges.size(), 32u);
  // First edges of each level.
  EXPECT_EQ(edges[0].at, 0_ns);
  EXPECT_EQ(edges[0].level, 0u);
  EXPECT_EQ(edges[8].at, 800_ns);
  EXPECT_EQ(edges[8].level, 1u);
  EXPECT_EQ(edges[16].at, 2400_ns);
  EXPECT_EQ(edges[16].level, 2u);
  EXPECT_EQ(edges[24].at, 5600_ns);
  EXPECT_EQ(edges[24].level, 3u);
  // Last edge one slow period before shutdown; no edge at/after 12 us.
  EXPECT_EQ(edges.back().at, 11200_ns);
  // Spacing doubles across the pattern. A boundary edge closes the *old*
  // period (the FSM doubles Tsample at that instant), so each gap equals
  // the period of the level the previous edge ran at.
  for (std::size_t i = 1; i < edges.size(); ++i) {
    const Time spacing = edges[i].at - edges[i - 1].at;
    EXPECT_EQ(spacing, s.period_of_level(edges[i - 1].level));
  }
}

TEST(Schedule, LevelAtAndAsleep) {
  const SamplingSchedule s{fig2_config()};
  EXPECT_EQ(s.level_at(0_ns), 0u);
  EXPECT_EQ(s.level_at(799_ns), 0u);
  EXPECT_EQ(s.level_at(800_ns), 1u);
  EXPECT_EQ(s.level_at(5600_ns), 3u);
  EXPECT_FALSE(s.is_asleep_at(11999_ns));
  EXPECT_TRUE(s.is_asleep_at(12000_ns));
}

TEST(Schedule, CounterTracksElapsedTminUnits) {
  const SamplingSchedule s{fig2_config()};
  // Counter value at any edge equals elapsed / Tmin exactly.
  for (const auto& e : s.enumerate_edges(1_ms)) {
    EXPECT_EQ(s.counter_at_edge(e.at),
              static_cast<std::uint64_t>(e.at / Time::ns(100)));
  }
  EXPECT_EQ(s.saturation_ticks(), 120u);
}

TEST(Schedule, FirstEdgeQuantisesUp) {
  const SamplingSchedule s{fig2_config()};
  EXPECT_EQ(s.first_edge_at_or_after(1_ns), 100_ns);
  EXPECT_EQ(s.first_edge_at_or_after(100_ns), 100_ns);  // exact edge
  EXPECT_EQ(s.first_edge_at_or_after(801_ns), 1000_ns); // level 1 grid
  EXPECT_EQ(s.first_edge_at_or_after(11201_ns), Time::max());  // sleeps first
  EXPECT_EQ(s.first_edge_at_or_after(20_ms), Time::max());
}

TEST(Schedule, CyclesUntilCountsEdges) {
  const SamplingSchedule s{fig2_config()};
  EXPECT_EQ(s.cycles_until(800_ns), 8u);
  EXPECT_EQ(s.cycles_until(850_ns), 8u);
  EXPECT_EQ(s.cycles_until(1000_ns), 9u);
  EXPECT_EQ(s.cycles_until(2400_ns), 16u);
  EXPECT_EQ(s.cycles_until(1_sec), 31u);  // asleep: 4*8 - 1
}

TEST(Schedule, MeasureExactInterval) {
  const SamplingSchedule s{fig2_config()};
  const auto m = s.measure(450_ns);
  EXPECT_EQ(m.sample_edge, 500_ns);
  EXPECT_EQ(m.ticks, 5u);
  EXPECT_FALSE(m.saturated);
}

TEST(Schedule, MeasureAcrossDivision) {
  const SamplingSchedule s{fig2_config()};
  // 1.3 us falls in level 1 (200 ns grid): next edge at 1.4 us -> 14 ticks.
  const auto m = s.measure(1300_ns);
  EXPECT_EQ(m.sample_edge, 1400_ns);
  EXPECT_EQ(m.ticks, 14u);
}

TEST(Schedule, MeasureWithSyncEdges) {
  const SamplingSchedule s{fig2_config()};
  const auto m = s.measure(450_ns, 2);
  EXPECT_EQ(m.sample_edge, 700_ns);  // 2 extra edges at 100 ns
  EXPECT_EQ(m.ticks, 7u);
}

TEST(Schedule, MeasureSaturatedAfterSleep) {
  const SamplingSchedule s{fig2_config()};
  const auto m = s.measure(50_us, 2, 100_ns);
  EXPECT_TRUE(m.saturated);
  EXPECT_EQ(m.ticks, 120u);
  // Wakes at request + latency; first edge one Tmin later, then 2 sync
  // edges at Tmin.
  EXPECT_EQ(m.sample_edge, 50_us + 100_ns + 300_ns);
}

TEST(Schedule, MeasureInFinalPeriodBeforeShutdown) {
  const SamplingSchedule s{fig2_config()};
  // Request lands between the last edge (11.2 us) and shutdown (12 us):
  // the pending request keeps the clock alive; the tag is saturated.
  const auto m = s.measure(11500_ns);
  EXPECT_TRUE(m.saturated);
  EXPECT_GE(m.sample_edge, 11500_ns);
}

TEST(Schedule, DivideDisabledIsConstantRate) {
  ScheduleConfig cfg = fig2_config();
  cfg.divide_enabled = false;
  const SamplingSchedule s{cfg};
  EXPECT_EQ(s.awake_span(), Time::max());
  EXPECT_FALSE(s.is_asleep_at(1_sec));
  const auto m = s.measure(1_ms);
  EXPECT_EQ(m.ticks, 10000u);
  EXPECT_FALSE(m.saturated);
  EXPECT_EQ(s.cycles_until(1_ms), 10000u);
}

TEST(Schedule, ShutdownDisabledDividesForever) {
  ScheduleConfig cfg = fig2_config();
  cfg.shutdown_enabled = false;
  const SamplingSchedule s{cfg};
  EXPECT_EQ(s.awake_span(), Time::max());
  const auto m = s.measure(1_ms);
  EXPECT_FALSE(m.saturated);
  // Quantised to the slowest (800 ns) grid beyond the last division.
  EXPECT_EQ(m.sample_edge % 800_ns, (5600_ns) % 800_ns);
}

TEST(Schedule, InvalidConfigThrows) {
  ScheduleConfig cfg;
  cfg.theta_div = 0;
  EXPECT_THROW(SamplingSchedule{cfg}, std::invalid_argument);
  cfg = ScheduleConfig{};
  cfg.tmin = Time::zero();
  EXPECT_THROW(SamplingSchedule{cfg}, std::invalid_argument);
  cfg = ScheduleConfig{};
  cfg.n_div = 31;
  EXPECT_THROW(SamplingSchedule{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweeps (parameterized over theta_div).

class ScheduleProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScheduleProperty, MeasurementNeverUnderestimatesByMoreThanOneStep) {
  ScheduleConfig cfg;
  cfg.tmin = Time::ns(1e3 / 15.0);
  cfg.theta_div = GetParam();
  cfg.n_div = 8;
  const SamplingSchedule s{cfg};
  Xoshiro256StarStar rng{GetParam()};
  for (int i = 0; i < 20000; ++i) {
    const Time delta = Time::us(rng.uniform(0.1, 3000.0));
    const auto m = s.measure(delta);
    if (m.saturated) continue;
    const Time measured = cfg.tmin * static_cast<Time::Rep>(m.ticks);
    // The sample edge is the first edge at/after the request, so the
    // measurement rounds *up* by at most one current period.
    EXPECT_GE(measured + Time::ps(2), delta);
    const Time step = s.period_of_level(s.level_at(delta));
    EXPECT_LE((measured - delta).count_ps(), step.count_ps() + 2);
  }
}

TEST_P(ScheduleProperty, RelativeErrorBelowAnalyticBound) {
  ScheduleConfig cfg;
  cfg.tmin = Time::ns(1e3 / 15.0);
  cfg.theta_div = GetParam();
  cfg.n_div = 8;
  const SamplingSchedule s{cfg};
  const double bound = 2.0 / static_cast<double>(GetParam());
  Xoshiro256StarStar rng{GetParam() * 17};
  for (int i = 0; i < 20000; ++i) {
    // Restrict to intervals past the first division (where the bound
    // applies) and below saturation.
    const double lo = cfg.tmin.to_sec() * GetParam() * 1.05;
    // Stay clear of the final slow period, where a pending request races
    // the shutdown instant and the tag saturates by design.
    const double hi =
        (s.awake_span() - s.period_of_level(cfg.n_div) * 2).to_sec();
    const Time delta = Time::sec(rng.uniform(lo, hi));
    const auto m = s.measure(delta);
    ASSERT_FALSE(m.saturated);
    const Time measured = cfg.tmin * static_cast<Time::Rep>(m.ticks);
    const double err = std::abs((measured - delta).to_sec()) / delta.to_sec();
    EXPECT_LE(err, bound * 1.02) << "delta=" << delta.to_string();
  }
}

TEST_P(ScheduleProperty, CounterMonotoneAlongEdges) {
  ScheduleConfig cfg;
  cfg.tmin = 50_ns;
  cfg.theta_div = GetParam();
  cfg.n_div = 5;
  const SamplingSchedule s{cfg};
  const auto edges = s.enumerate_edges(s.awake_span());
  std::uint64_t prev = 0;
  for (std::size_t i = 1; i < edges.size(); ++i) {
    const auto c = s.counter_at_edge(edges[i].at);
    EXPECT_GT(c, prev);
    // The increment equals the step of the level the *previous* edge ran
    // at (a boundary edge closes the old period).
    EXPECT_EQ(c - prev, std::uint64_t{1} << edges[i - 1].level);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(ThetaSweep, ScheduleProperty,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

}  // namespace
}  // namespace aetr::clockgen
