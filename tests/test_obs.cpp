// Tests for aetr::obs — the energy-attribution ledger, its reconciliation
// with the power model, the fleet health roll-up, the hot-path profiler,
// and the disabled paths being bit-identical, allocation-free no-ops.
//
// Global operator new/delete are replaced with counting versions (the
// test_telemetry.cpp pattern) so the no-allocation claims are provable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "core/config_io.hpp"
#include "core/scenario.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_io.hpp"
#include "gen/sources.hpp"
#include "obs/ledger.hpp"
#include "obs/report.hpp"
#include "util/profiler.hpp"

namespace {
std::uint64_t g_allocs = 0;  // test binary is single-threaded
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) & ~(a - 1);  // aligned_alloc contract
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace aetr::obs {
namespace {

constexpr double kReconcileJ = 1e-12;  // the ISSUE's reconciliation bound

std::string slurp(const std::string& path) {
  std::ifstream f{path};
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

core::RunResult ledger_run(double rate_hz, std::size_t n_events,
                           bool energy_ledger = true) {
  core::ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 64;
  sc.energy_ledger = energy_ledger;
  gen::PoissonSource src{rate_hz, 128, 20260809};
  return core::run_scenario(sc, gen::take(src, n_events));
}

// --- reconciliation with the power model ------------------------------------

TEST(Ledger, ReconcilesWithPowerModelAcrossRates) {
  // The fig8 operating range: sparse, the paper's sweet spot, near
  // saturation. At every rate the ledger's interface-side stage sum must
  // reproduce average_power_w * window to within 1e-12 J — same per-unit
  // terms, only addition order differs.
  for (const double rate : {1e3, 5e4, 8e5}) {
    const auto r = ledger_run(rate, 5000);
    ASSERT_TRUE(r.ledger.enabled) << "rate " << rate;
    EXPECT_DOUBLE_EQ(r.ledger.window_sec, r.activity.window.to_sec());
    const double model_j = r.average_power_w * r.ledger.window_sec;
    EXPECT_NEAR(r.ledger.interface_energy_j(), model_j, kReconcileJ)
        << "rate " << rate;
    // MCU stage is extra, on top of the interface-side total.
    EXPECT_GT(r.ledger.stage_j(Stage::kMcu), 0.0);
    EXPECT_NEAR(r.ledger.total_energy_j(),
                r.ledger.interface_energy_j() + r.ledger.stage_j(Stage::kMcu),
                kReconcileJ);
    // Outcome split conserves energy and events.
    double outcome_sum = 0.0;
    std::uint64_t event_sum = 0;
    for (std::size_t o = 0; o < kOutcomeCount; ++o) {
      outcome_sum += r.ledger.outcome_energy_j[o];
      event_sum += r.ledger.outcome_events[o];
    }
    EXPECT_NEAR(outcome_sum, r.ledger.total_energy_j(), kReconcileJ);
    EXPECT_EQ(event_sum, r.events_in);
    EXPECT_EQ(r.ledger.events(Outcome::kDelivered), r.decoded.size());
    EXPECT_EQ(r.ledger.events(Outcome::kBufferDropped), r.fifo_overflows);
  }
}

TEST(Ledger, StateResidencyPartitionsTheWindow) {
  const auto r = ledger_run(5e4, 5000);
  const auto& led = r.ledger;
  double sum = 0.0;
  for (std::size_t s = 0; s < kStateCount; ++s) {
    EXPECT_GE(led.state_sec[s], 0.0);
    sum += led.state_sec[s];
  }
  // active + paused == osc-awake and osc_off == window - awake, so the
  // three must tile the run window.
  EXPECT_NEAR(sum, led.window_sec, 1e-9);
  EXPECT_GT(led.state_s(ClockState::kActive), 0.0);
}

// --- disabled path ----------------------------------------------------------

TEST(Ledger, DisabledRunIsBitIdenticalAndCarriesEmptyLedger) {
  const auto off = ledger_run(5e4, 2000, /*energy_ledger=*/false);
  const auto on = ledger_run(5e4, 2000, /*energy_ledger=*/true);
  EXPECT_FALSE(off.ledger.enabled);
  for (const double e : off.ledger.stage_energy_j) EXPECT_EQ(e, 0.0);
  for (const std::uint64_t n : off.ledger.outcome_events) EXPECT_EQ(n, 0u);
  EXPECT_EQ(off.ledger.window_sec, 0.0);
  // The ledger is post-hoc arithmetic: every simulation observable is
  // bit-identical whether it was filled or not.
  EXPECT_EQ(on.sim_end, off.sim_end);
  EXPECT_EQ(on.events_in, off.events_in);
  EXPECT_EQ(on.words_out, off.words_out);
  EXPECT_EQ(on.batches, off.batches);
  EXPECT_EQ(on.fifo_overflows, off.fifo_overflows);
  EXPECT_EQ(on.handshakes, off.handshakes);
  EXPECT_EQ(on.decoded.size(), off.decoded.size());
  EXPECT_EQ(on.average_power_w, off.average_power_w);
  EXPECT_EQ(on.error.weighted_rel_error(), off.error.weighted_rel_error());
}

TEST(Ledger, FromRunAllocatesNothing) {
  const auto r = ledger_run(5e4, 2000);
  LedgerInputs in;
  in.activity = r.activity;
  in.calibration = power::PowerCalibration{};
  in.tick_unit = r.tick_unit;
  in.words = r.words_out;
  in.batches = r.batches;
  in.events_in = r.events_in;
  in.delivered = r.decoded.size();
  in.buffer_dropped = r.fifo_overflows;
  in.include_mcu = true;
  const std::uint64_t before = g_allocs;
  const EnergyLedger led = EnergyLedger::from_run(in);
  EnergyLedger sum;
  accumulate(sum, led);
  scale(sum, 0.5);
  sum.finalize_outcomes();
  (void)sum.interface_energy_j();
  (void)sum.energy_per_delivered_j();
  EXPECT_EQ(g_allocs, before) << "ledger arithmetic allocated";
  EXPECT_TRUE(led.enabled);
}

// --- artifact writers -------------------------------------------------------

TEST(Ledger, CsvAndStackWritesAreByteDeterministic) {
  const auto r = ledger_run(5e4, 3000);
  const std::string csv_a = testing::TempDir() + "aetr_led_a.csv";
  const std::string csv_b = testing::TempDir() + "aetr_led_b.csv";
  const std::string stk_a = testing::TempDir() + "aetr_led_a.txt";
  const std::string stk_b = testing::TempDir() + "aetr_led_b.txt";
  write_ledger_csv(r.ledger, csv_a);
  write_ledger_csv(r.ledger, csv_b);
  write_collapsed_stack(r.ledger, stk_a);
  write_collapsed_stack(r.ledger, stk_b);
  const std::string csv = slurp(csv_a);
  EXPECT_EQ(csv, slurp(csv_b));
  EXPECT_EQ(slurp(stk_a), slurp(stk_b));
  EXPECT_NE(csv.find("section,name,value,unit\n"), std::string::npos);
  EXPECT_NE(csv.find("stage,clockgen,"), std::string::npos);
  EXPECT_NE(csv.find("total,interface,"), std::string::npos);
  // Collapsed-stack grammar: "outcome;stage <integer>" per line.
  std::istringstream stack{slurp(stk_a)};
  std::string line;
  std::size_t frames = 0;
  while (std::getline(stack, line)) {
    const auto semi = line.find(';');
    const auto space = line.rfind(' ');
    ASSERT_NE(semi, std::string::npos) << line;
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_LT(semi, space) << line;
    EXPECT_GT(std::strtoll(line.c_str() + space + 1, nullptr, 10), 0)
        << line;
    ++frames;
  }
  EXPECT_GT(frames, 0u);
  for (const auto& p : {csv_a, csv_b, stk_a, stk_b}) std::remove(p.c_str());
}

TEST(Ledger, FinalizeOutcomesBooksIdleRunsAsDelivered) {
  EnergyLedger led;
  led.enabled = true;
  led.stage_energy_j[static_cast<std::size_t>(Stage::kStatic)] = 2.0;
  led.finalize_outcomes();  // no events at all
  EXPECT_DOUBLE_EQ(led.outcome_j(Outcome::kDelivered), 2.0);
  led.outcome_events[static_cast<std::size_t>(Outcome::kDelivered)] = 3;
  led.outcome_events[static_cast<std::size_t>(Outcome::kLinkDropped)] = 1;
  led.finalize_outcomes();
  EXPECT_DOUBLE_EQ(led.outcome_j(Outcome::kDelivered), 1.5);
  EXPECT_DOUBLE_EQ(led.outcome_j(Outcome::kLinkDropped), 0.5);
}

TEST(Ledger, AccumulateSumsAndScaleLeavesCountsAlone) {
  const auto r = ledger_run(5e4, 2000);
  EnergyLedger sum;
  accumulate(sum, r.ledger);
  accumulate(sum, r.ledger);
  for (std::size_t s = 0; s < kStageCount; ++s) {
    EXPECT_DOUBLE_EQ(sum.stage_energy_j[s], 2.0 * r.ledger.stage_energy_j[s]);
  }
  EXPECT_DOUBLE_EQ(sum.window_sec, r.ledger.window_sec);  // max, not sum
  EXPECT_EQ(sum.events(Outcome::kDelivered),
            2u * r.ledger.events(Outcome::kDelivered));
  scale(sum, 0.25);
  for (std::size_t s = 0; s < kStageCount; ++s) {
    EXPECT_DOUBLE_EQ(sum.stage_energy_j[s], 0.5 * r.ledger.stage_energy_j[s]);
  }
  EXPECT_EQ(sum.events(Outcome::kDelivered),
            2u * r.ledger.events(Outcome::kDelivered));  // counts untouched
}

// --- fleet health roll-up ---------------------------------------------------

fleet::FleetConfig small_fleet(bool health) {
  fleet::FleetConfig cfg;
  cfg.nodes = 4;
  cfg.events_per_node = 300;
  cfg.rate_hz = 30e3;
  cfg.rate_spread = 0.2;
  // Starve the uplink (4 nodes x 30 kHz >> 50 kwords/s) so the roll-up has
  // link drops to attribute.
  cfg.link.bandwidth_words_per_sec = 5e4;
  cfg.link.queue_words = 16;
  cfg.health = health;
  return cfg;
}

TEST(FleetHealth, RollupIsTheSumOfNodeLedgers) {
  const auto res = fleet::run_fleet(small_fleet(true), {});
  ASSERT_TRUE(res.health.enabled);
  ASSERT_EQ(res.health.node_ledgers.size(), 4u);
  EnergyLedger sum;
  for (const auto& led : res.health.node_ledgers) {
    EXPECT_TRUE(led.enabled);
    accumulate(sum, led);
  }
  for (std::size_t s = 0; s < kStageCount; ++s) {
    EXPECT_DOUBLE_EQ(res.health.fleet.stage_energy_j[s],
                     sum.stage_energy_j[s]);
  }
  for (std::size_t s = 0; s < kStateCount; ++s) {
    EXPECT_DOUBLE_EQ(res.health.fleet.state_sec[s], sum.state_sec[s]);
  }
  // Drop-cause attribution matches the fleet totals.
  EXPECT_EQ(res.health.fleet.events(Outcome::kDelivered),
            res.delivered_total);
  EXPECT_EQ(res.health.fleet.events(Outcome::kLinkDropped),
            res.dropped_link_total);
  EXPECT_EQ(res.health.fleet.events(Outcome::kBudgetDead),
            res.dropped_dead_total);
  EXPECT_GT(res.dropped_link_total, 0u) << "scenario should stress the link";
  // The fleet ledger reconciles with the fleet energy total (which counts
  // interface-side joules: NodeResult::energy_j = avg power * window).
  EXPECT_NEAR(res.health.fleet.interface_energy_j(), res.total_energy_j,
              4.0 * kReconcileJ);
  EXPECT_GT(res.health.fleet.stage_j(Stage::kMcu), 0.0);
  // Percentiles are order statistics over the per-node scalars.
  EXPECT_GT(res.health.node_energy_p50_j, 0.0);
  EXPECT_GE(res.health.node_energy_p99_j, res.health.node_energy_p50_j);
  EXPECT_GE(res.health.node_power_p99_w, res.health.node_power_p50_w);
  EXPECT_LE(res.health.delivered_frac_min, res.health.delivered_frac_p50);
}

TEST(FleetHealth, DisabledFleetIsBitIdentical) {
  const auto off = fleet::run_fleet(small_fleet(false), {});
  const auto on = fleet::run_fleet(small_fleet(true), {});
  EXPECT_FALSE(off.health.enabled);
  EXPECT_TRUE(off.health.node_ledgers.empty());
  ASSERT_EQ(on.nodes.size(), off.nodes.size());
  for (std::size_t i = 0; i < on.nodes.size(); ++i) {
    const auto& a = on.nodes[i];
    const auto& b = off.nodes[i];
    EXPECT_EQ(a.energy_j, b.energy_j) << "node " << i;
    EXPECT_EQ(a.average_power_w, b.average_power_w) << "node " << i;
    EXPECT_EQ(a.sim_end_sec, b.sim_end_sec) << "node " << i;
    EXPECT_EQ(a.delivered, b.delivered) << "node " << i;
    EXPECT_EQ(a.dropped_link, b.dropped_link) << "node " << i;
    EXPECT_EQ(a.dropped_dead, b.dropped_dead) << "node " << i;
  }
  EXPECT_EQ(on.total_energy_j, off.total_energy_j);
  EXPECT_EQ(on.delivered_total, off.delivered_total);
  EXPECT_EQ(on.latency_p50_sec, off.latency_p50_sec);
  EXPECT_EQ(on.latency_p99_sec, off.latency_p99_sec);
  EXPECT_EQ(on.latency_p999_sec, off.latency_p999_sec);
}

TEST(FleetHealth, BudgetDeathScalesTheNodeLedger) {
  auto cfg = small_fleet(true);
  cfg.node_energy_budget_j = 1e-7;  // far below a full run's energy
  const auto res = fleet::run_fleet(cfg, {});
  ASSERT_TRUE(res.health.enabled);
  EXPECT_GT(res.dropped_dead_total, 0u);
  for (std::size_t i = 0; i < res.nodes.size(); ++i) {
    const auto& n = res.nodes[i];
    if (!n.budget_exhausted) continue;
    // Constant-power truncation: the scaled ledger's interface energy must
    // match the node's truncated energy, not the full-run energy.
    const auto& led = res.health.node_ledgers[i];
    EXPECT_NEAR(led.interface_energy_j(), n.energy_j,
                1e-9 * std::max(1.0, n.energy_j))
        << "node " << i;
    EXPECT_NEAR(led.window_sec, n.sim_end_sec, 1e-12);
  }
}

// --- config round-trips -----------------------------------------------------

TEST(Config, EnergyLedgerKeyRoundTrips) {
  core::ScenarioConfig sc;
  sc.energy_ledger = true;
  const std::string text = core::dump_scenario(sc);
  EXPECT_NE(text.find("session.energy_ledger = true"), std::string::npos);
  std::istringstream is{text};
  const auto back = core::load_scenario(is);
  EXPECT_TRUE(back.energy_ledger);
  EXPECT_EQ(core::dump_scenario(back), text);  // dump -> load -> dump
}

TEST(Config, FleetHealthKeyRoundTrips) {
  fleet::FleetConfig cfg;
  cfg.health = true;
  const std::string text = fleet::dump_fleet(cfg);
  EXPECT_NE(text.find("fleet.health = true"), std::string::npos);
  std::istringstream is{text};
  const auto back = fleet::load_fleet(is);
  EXPECT_TRUE(back.health);
  EXPECT_EQ(fleet::dump_fleet(back), text);
}

// --- profiler ---------------------------------------------------------------

TEST(Profiler, DisabledScopeRecordsNothingAndAllocatesNothing) {
  util::profiler_set_enabled(false);
  util::profiler_reset();
  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 1000; ++i) {
    util::ProfScope scope{util::ProfSite::kMcuDecode};
  }
  EXPECT_EQ(g_allocs, before) << "disabled ProfScope allocated";
  const auto st = util::profiler_stats(util::ProfSite::kMcuDecode);
  EXPECT_EQ(st.calls, 0u);
  EXPECT_EQ(st.ns, 0u);
}

TEST(Profiler, EnabledScopeAccumulatesAndResetClears) {
  util::profiler_reset();
  util::profiler_set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    util::ProfScope scope{util::ProfSite::kHarvest};
  }
  util::profiler_set_enabled(false);
  const auto st = util::profiler_stats(util::ProfSite::kHarvest);
  EXPECT_EQ(st.calls, 10u);
  // Other sites stay untouched.
  EXPECT_EQ(util::profiler_stats(util::ProfSite::kWordPath).calls, 0u);
  const std::string json = util::profiler_report_json();
  EXPECT_NE(json.find("\"site\": \"harvest\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 10"), std::string::npos);
  util::profiler_reset();
  EXPECT_EQ(util::profiler_stats(util::ProfSite::kHarvest).calls, 0u);
}

TEST(Profiler, RunScenarioExercisesEverySiteWhenEnabled) {
  util::profiler_reset();
  util::profiler_set_enabled(true);
  core::ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 32;
  sc.fast_forward = false;  // profile the reference event-driven path
  gen::PoissonSource src{5e4, 128, 7};
  (void)core::run_scenario(sc, gen::take(src, 500));
  util::profiler_set_enabled(false);
  for (std::size_t i = 0; i < util::kProfSiteCount; ++i) {
    EXPECT_GT(util::profiler_stats(static_cast<util::ProfSite>(i)).calls, 0u)
        << util::to_string(static_cast<util::ProfSite>(i));
  }
  util::profiler_reset();
}

// --- report renderer --------------------------------------------------------

TEST(Report, RendersArtifactsDeterministically) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path{testing::TempDir()} / "aetr_obs_report";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto r = ledger_run(5e4, 3000);
  write_ledger_csv(r.ledger, (dir / "run_ledger.csv").string());
  write_collapsed_stack(r.ledger, (dir / "run_stack.txt").string());
  const auto sum_a = render_report(dir.string(), dir.string());
  const std::string html_a = slurp(sum_a.out_path);
  EXPECT_EQ(sum_a.ledgers, 1u);
  EXPECT_EQ(sum_a.stacks, 1u);
  EXPECT_NE(html_a.find("run_ledger.csv"), std::string::npos);
  EXPECT_NE(html_a.find("<svg"), std::string::npos);
  // Re-render into a different directory: byte-identical (no paths, no
  // timestamps in the output).
  const fs::path dir2 = fs::path{testing::TempDir()} / "aetr_obs_report2";
  fs::remove_all(dir2);
  fs::create_directories(dir2);
  fs::copy_file(dir / "run_ledger.csv", dir2 / "run_ledger.csv");
  fs::copy_file(dir / "run_stack.txt", dir2 / "run_stack.txt");
  const auto sum_b = render_report(dir2.string(), dir2.string());
  EXPECT_EQ(slurp(sum_b.out_path), html_a);
  EXPECT_THROW(render_report((dir / "missing").string(), dir.string()),
               std::runtime_error);
  fs::remove_all(dir);
  fs::remove_all(dir2);
}

}  // namespace
}  // namespace aetr::obs
