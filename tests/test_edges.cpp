// Edge-case coverage across modules: the corners integration tests walk
// past but production users will eventually hit.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "aer/agents.hpp"
#include "buffer/fifo.hpp"
#include "clockgen/pausible.hpp"
#include "clockgen/schedule.hpp"
#include "core/interface.hpp"
#include "gen/sources.hpp"
#include "rtl/clock_unit.hpp"
#include "sim/vcd.hpp"
#include "spi/spi.hpp"
#include "util/table.hpp"
#include "vision/dvs.hpp"

namespace aetr {
namespace {

using namespace time_literals;

TEST(Edges, ScheduleEnumerateRespectsMaxEdges) {
  clockgen::ScheduleConfig cfg;
  cfg.divide_enabled = false;  // infinite edges
  const clockgen::SamplingSchedule s{cfg};
  const auto edges = s.enumerate_edges(1_sec, 100);
  EXPECT_EQ(edges.size(), 100u);
}

TEST(Edges, ScheduleThetaOne) {
  // Degenerate theta_div = 1: one cycle per level, still exact.
  clockgen::ScheduleConfig cfg;
  cfg.tmin = 100_ns;
  cfg.theta_div = 1;
  cfg.n_div = 3;
  const clockgen::SamplingSchedule s{cfg};
  EXPECT_EQ(s.awake_span(), Time::ns(100.0 * 15));
  const auto m = s.measure(250_ns);
  EXPECT_EQ(m.sample_edge, 300_ns);  // level-1 grid (200 ns period from 100)
}

TEST(Edges, RtlVcdOfSamplingLine) {
  // The RTL sampling line drives a real VCD (the Fig. 2 pattern from the
  // edge-by-edge path rather than the closed form).
  sim::Scheduler sched;
  rtl::ClockUnitConfig cfg;
  cfg.theta_div = 8;
  cfg.n_div = 3;
  rtl::RtlClockUnit unit{sched, cfg};
  const std::string path = testing::TempDir() + "aetr_rtl.vcd";
  {
    sim::VcdWriter vcd{path};
    const auto clk = vcd.add_signal("rtl", "sampling");
    unit.sampling_line().on_rising([&](Time t, Time) {
      vcd.change(clk, 1, t);
      vcd.change(clk, 0, t + 1_ns);
    });
    unit.start();
    sched.run_until(1_ms);
  }
  std::ifstream f{path};
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("$enddefinitions"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Edges, FifoThresholdOneFiresEveryRefill) {
  buffer::AetrFifo fifo{{.capacity_words = 4, .batch_threshold = 1}};
  int fires = 0;
  fifo.on_threshold([&](Time) { ++fires; });
  fifo.push(aer::AetrWord::make(1, 0), Time::zero());
  EXPECT_EQ(fires, 1);
  fifo.pop(Time::zero());
  fifo.push(aer::AetrWord::make(2, 0), Time::zero());
  EXPECT_EQ(fires, 2);
}

TEST(Edges, SpiWriteToInvalidThetaIgnored) {
  sim::Scheduler sched;
  core::AerToI2sInterface iface{sched};
  spi::SpiMaster master{sched, iface.spi()};
  master.write(spi::Reg::kThetaDiv, 0);  // invalid: guarded by the mapping
  sched.run();
  EXPECT_EQ(iface.clock_generator().config().theta_div, 64u);
  master.write(spi::Reg::kNDiv, 31);  // out of range
  sched.run();
  EXPECT_EQ(iface.clock_generator().config().n_div, 8u);
}

TEST(Edges, SpiBatchThresholdZeroRejected) {
  sim::Scheduler sched;
  core::AerToI2sInterface iface{sched};
  spi::SpiMaster master{sched, iface.spi()};
  master.write(spi::Reg::kBatchHi, 0);
  master.write(spi::Reg::kBatchLo, 0);  // would make the threshold zero
  sched.run();
  EXPECT_GE(iface.fifo().config().batch_threshold, 1u);
}

TEST(Edges, TableCsvFileContents) {
  Table t{{"a", "b"}};
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  const std::string path = testing::TempDir() + "aetr_table.csv";
  t.write_csv(path);
  std::ifstream f{path};
  std::string l1, l2, l3;
  std::getline(f, l1);
  std::getline(f, l2);
  std::getline(f, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,x");
  EXPECT_EQ(l3, "2,y");
  std::remove(path.c_str());
}

TEST(Edges, PausibleStopLeavesPendingGrantsServed) {
  sim::Scheduler sched;
  clockgen::PausibleClock clk{sched};
  clk.start();
  bool granted = false;
  sched.schedule_at(100_ns, [&] {
    clk.stop();
    clk.request([&](Time) { granted = true; });
  });
  sched.run();
  EXPECT_TRUE(granted);  // stopped clock is always safe
  EXPECT_FALSE(clk.running());
}

TEST(Edges, DvsResetReprimes) {
  vision::DvsConfig cfg;
  cfg.background_rate_hz = 0.0;
  vision::DvsSensor sensor{cfg};
  vision::SceneGenerator scene{cfg.width, cfg.height};
  (void)sensor.process_frame(scene.background(0.5), 0_ms);
  auto events = sensor.process_frame(scene.background(1.0), 1_ms);
  EXPECT_FALSE(events.empty());
  sensor.reset();
  // After reset the next frame only primes: no events even though the
  // intensity changed again.
  events = sensor.process_frame(scene.background(0.25), 2_ms);
  EXPECT_TRUE(events.empty());
}

TEST(Edges, MergeSourceOfNothing) {
  gen::MergeSource merged{{}};
  EXPECT_FALSE(merged.next().has_value());
}

TEST(Edges, SenderBacklogVisibleUnderStall) {
  // No receiver attached: the first handshake never completes, so
  // everything else queues.
  sim::Scheduler sched;
  aer::AerChannel ch{sched};
  aer::AerSender sender{sched, ch};
  gen::RegularSource src{1_us, 8};
  sender.submit_stream(gen::take(src, 10));
  sched.run();
  EXPECT_EQ(sender.backlog(), 9u);
  EXPECT_EQ(sender.sent().size(), 1u);
}

TEST(Edges, InterfaceTickUnitStableAcrossReconfig) {
  sim::Scheduler sched;
  core::AerToI2sInterface iface{sched};
  const Time before = iface.tick_unit();
  iface.clock_generator().set_theta_div(16);
  EXPECT_EQ(iface.tick_unit(), before);  // Tmin is divider-, not FSM-derived
}

TEST(Edges, WordTimestampHelper) {
  const auto w = aer::AetrWord::make(1, 150);
  EXPECT_EQ(w.timestamp(100_ns), 15_us);
}

}  // namespace
}  // namespace aetr
