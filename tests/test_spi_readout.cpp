// Tests for the SPI read-out carrier: the MCU polls AETR words out of the
// FIFO through the register window instead of receiving them over I2S.
#include <gtest/gtest.h>

#include <vector>

#include "aer/agents.hpp"
#include "core/interface.hpp"
#include "gen/sources.hpp"
#include "spi/spi.hpp"

namespace aetr::core {
namespace {

using namespace time_literals;

/// Read one 32-bit word through the DATA0..3 window.
std::uint32_t read_word(sim::Scheduler& sched, spi::SpiMaster& master) {
  std::uint32_t word = 0;
  master.read(spi::Reg::kFifoData0,
              [&](std::uint8_t v) { word |= v; });
  master.read(spi::Reg::kFifoData1,
              [&](std::uint8_t v) { word |= static_cast<std::uint32_t>(v) << 8; });
  master.read(spi::Reg::kFifoData2,
              [&](std::uint8_t v) { word |= static_cast<std::uint32_t>(v) << 16; });
  master.read(spi::Reg::kFifoData3,
              [&](std::uint8_t v) { word |= static_cast<std::uint32_t>(v) << 24; });
  sched.run();
  return word;
}

struct Bench {
  sim::Scheduler sched;
  AerToI2sInterface iface;
  aer::AerSender sender;
  spi::SpiMaster master;
  std::uint64_t i2s_words{0};

  Bench()
      : iface{sched, make_config()},
        sender{sched, iface.aer_in()},
        master{sched, iface.spi()} {
    iface.on_i2s_word([this](aer::AetrWord, Time) { ++i2s_words; });
    // CTRL: divide + shutdown + SPI read-out.
    master.write(spi::Reg::kCtrl, 0x07);
    sched.run();
  }

  static InterfaceConfig make_config() {
    InterfaceConfig cfg;
    cfg.fifo.batch_threshold = 8;
    return cfg;
  }
};

TEST(SpiReadout, CtrlBitEngagesMode) {
  Bench b;
  std::uint8_t ctrl = 0;
  b.master.read(spi::Reg::kCtrl, [&](std::uint8_t v) { ctrl = v; });
  b.sched.run();
  EXPECT_EQ(ctrl, 0x07);
}

TEST(SpiReadout, WordsReadBackExactly) {
  Bench b;
  gen::RegularSource src{50_us, 64};
  const auto events = gen::take(src, 5);
  b.sender.submit_stream(events);
  b.sched.run();
  EXPECT_EQ(b.iface.fifo().size(), 5u);

  for (std::size_t i = 0; i < 5; ++i) {
    const aer::AetrWord w{read_word(b.sched, b.master)};
    EXPECT_EQ(w.address(), events[i].address) << "word " << i;
  }
  EXPECT_TRUE(b.iface.fifo().empty());
  EXPECT_EQ(b.i2s_words, 0u);  // the I2S path stayed silent
}

TEST(SpiReadout, ThresholdStillRaisesInterruptButNoDrain) {
  Bench b;
  gen::RegularSource src{20_us, 64};
  b.sender.submit_stream(gen::take(src, 8));  // exactly the threshold
  b.sched.run();
  EXPECT_TRUE(b.iface.irq().status() &
              static_cast<std::uint8_t>(Irq::kBatchReady));
  EXPECT_EQ(b.iface.fifo().size(), 8u);  // nothing drained
  EXPECT_EQ(b.i2s_words, 0u);
}

TEST(SpiReadout, EmptyFifoReadsZero) {
  Bench b;
  EXPECT_EQ(read_word(b.sched, b.master), 0u);
}

TEST(SpiReadout, SwitchingBackReenablesI2s) {
  Bench b;
  b.master.write(spi::Reg::kCtrl, 0x03);  // read-out off again
  b.sched.run();
  gen::RegularSource src{20_us, 64};
  b.sender.submit_stream(gen::take(src, 8));
  b.sched.run();
  EXPECT_EQ(b.i2s_words, 8u);
}

TEST(SpiReadout, Data123StableWithoutNewPop) {
  Bench b;
  gen::RegularSource src{50_us, 64};
  b.sender.submit_stream(gen::take(src, 1));
  b.sched.run();
  const std::uint32_t w = read_word(b.sched, b.master);
  // Re-reading the high bytes must not pop anything further.
  std::uint8_t again = 0;
  b.master.read(spi::Reg::kFifoData3, [&](std::uint8_t v) { again = v; });
  b.sched.run();
  EXPECT_EQ(again, (w >> 24) & 0xFFu);
  EXPECT_TRUE(b.iface.fifo().empty());
}

}  // namespace
}  // namespace aetr::core
