// Tests for the time-resolved power probe.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "aer/agents.hpp"
#include "core/interface.hpp"
#include "gen/sources.hpp"
#include "power/probe.hpp"

namespace aetr::power {
namespace {

using namespace time_literals;

TEST(Probe, SynthesisedActivityProfiles) {
  // A hand-rolled activity source: constant static plus a burst of events
  // in the 3rd window.
  sim::Scheduler sched;
  ActivityTotals acc;
  PowerProbe probe{
      sched,
      [&] {
        acc.window = sched.now();
        return acc;
      },
      PowerModel{}, 10_ms};
  sched.schedule_at(25_ms, [&] { acc.events += 1000; });
  probe.arm(50_ms);
  sched.run();
  ASSERT_EQ(probe.samples().size(), 5u);
  EXPECT_EQ(probe.samples()[2].events, 1000u);
  EXPECT_GT(probe.samples()[2].average_w, probe.samples()[0].average_w);
  // Idle windows sit at the static floor.
  EXPECT_NEAR(probe.samples()[0].average_w, 50e-6, 1e-9);
}

TEST(Probe, ProfilesBurstyInterfaceRun) {
  sim::Scheduler sched;
  core::InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 64;
  cfg.front_end.keep_records = false;
  core::AerToI2sInterface iface{sched, cfg};
  aer::AerSender sender{sched, iface.aer_in()};
  PowerProbe probe{sched, [&] { return iface.activity(); },
                   PowerModel{cfg.calibration}, 20_ms};

  // 100 ms idle, 100 ms at 100 kevt/s, 100 ms idle.
  gen::PoissonSource burst{100e3, 128, 5, Time::us(1.0)};
  auto events = gen::take_until(burst, 100_ms);
  for (auto& ev : events) ev.time += 100_ms;
  sender.submit_stream(events);
  probe.arm(300_ms);
  sched.run_until(300_ms);
  sched.run();

  ASSERT_GE(probe.samples().size(), 14u);
  // Dynamic range: burst windows at mW, idle windows near the floor.
  EXPECT_GT(probe.peak_w(), 2e-3);
  EXPECT_LT(probe.floor_w(), 150e-6);
  EXPECT_GT(probe.dynamic_range(), 15.0);
}

TEST(Probe, CsvOutput) {
  sim::Scheduler sched;
  ActivityTotals acc;
  PowerProbe probe{
      sched,
      [&] {
        acc.window = sched.now();
        return acc;
      },
      PowerModel{}, 5_ms};
  probe.arm(20_ms);
  sched.run();
  const std::string path = testing::TempDir() + "aetr_probe.csv";
  probe.write_csv(path);
  std::ifstream f{path};
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "start_ms,end_ms,power_mw,events");
  int rows = 0;
  std::string line;
  while (std::getline(f, line)) ++rows;
  EXPECT_EQ(rows, 4);
  std::remove(path.c_str());
}

TEST(Probe, EmptyProfileSafeAccessors) {
  sim::Scheduler sched;
  PowerProbe probe{sched, [] { return ActivityTotals{}; }, PowerModel{}};
  EXPECT_DOUBLE_EQ(probe.peak_w(), 0.0);
  EXPECT_DOUBLE_EQ(probe.floor_w(), 0.0);
  EXPECT_DOUBLE_EQ(probe.dynamic_range(), 0.0);
}

TEST(Probe, ZeroFloorDynamicRangeReturnsSentinel) {
  // A calibration with no static power plus idle windows drives the floor
  // to exactly zero; peak/floor would be inf. dynamic_range() must return
  // the documented 0.0 sentinel instead of a meaningless huge ratio.
  sim::Scheduler sched;
  PowerCalibration cal;
  cal.static_w = 0.0;
  ActivityTotals acc;
  PowerProbe probe{
      sched,
      [&] {
        acc.window = sched.now();
        return acc;
      },
      PowerModel{cal}, 10_ms};
  sched.schedule_at(25_ms, [&] { acc.events += 1000; });
  probe.arm(50_ms);
  sched.run();
  ASSERT_EQ(probe.samples().size(), 5u);
  EXPECT_GT(probe.peak_w(), 0.0);          // the burst window is non-zero
  EXPECT_DOUBLE_EQ(probe.floor_w(), 0.0);  // idle windows are exactly zero
  EXPECT_DOUBLE_EQ(probe.dynamic_range(), 0.0);
}

TEST(Probe, DenormalFloorDynamicRangeReturnsSentinel) {
  // A floor below kFloorEpsilonW (1 fW — far under anything the calibrated
  // model can produce) must also hit the sentinel: dividing by a denormal
  // would "succeed" with an absurd ratio.
  sim::Scheduler sched;
  PowerCalibration cal;
  cal.static_w = 1e-18;
  ActivityTotals acc;
  PowerProbe probe{
      sched,
      [&] {
        acc.window = sched.now();
        return acc;
      },
      PowerModel{cal}, 10_ms};
  sched.schedule_at(25_ms, [&] { acc.events += 1000; });
  probe.arm(50_ms);
  sched.run();
  EXPECT_GT(probe.floor_w(), 0.0);
  EXPECT_LE(probe.floor_w(), PowerProbe::kFloorEpsilonW);
  EXPECT_DOUBLE_EQ(probe.dynamic_range(), 0.0);
}

}  // namespace
}  // namespace aetr::power
