// Property-style bit-exactness tests for the analytic idle-skip advance:
// random pause/resume (and request) schedules are replayed twice — once
// letting the scheduler dispatch every edge, once absorbing each gap with
// advance_to() + Scheduler::fast_forward_to() — and every observable
// counter must match exactly. This is the contract core/fast_path.hpp
// builds on (docs/SIMULATOR.md "Fast path").
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "clockgen/divider.hpp"
#include "clockgen/pausible.hpp"
#include "clockgen/ring_oscillator.hpp"
#include "power/model.hpp"
#include "power/probe.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace aetr::clockgen {
namespace {

using namespace time_literals;

// --- Scheduler gap-query API ------------------------------------------------

TEST(SchedulerFastForward, NextEventTimeIsNonDestructive) {
  sim::Scheduler sched;
  int fired = 0;
  sched.schedule_at(Time::ns(50), [&] { ++fired; });
  sched.schedule_at(Time::ns(10), [&] { ++fired; });
  EXPECT_EQ(sched.next_event_time(), Time::ns(10));
  EXPECT_EQ(sched.next_event_time(), Time::ns(10));  // idempotent
  EXPECT_EQ(sched.now(), Time::zero());
  EXPECT_EQ(fired, 0);
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.next_event_time(), Time::max());
}

TEST(SchedulerFastForward, FastForwardToRefusesToSkipEvents) {
  sim::Scheduler sched;
  sched.schedule_at(Time::ns(10), [] {});
  EXPECT_THROW(sched.fast_forward_to(Time::ns(11)), std::logic_error);
  // An event exactly at the target stays pending.
  sched.fast_forward_to(Time::ns(10));
  EXPECT_EQ(sched.now(), Time::ns(10));
  EXPECT_EQ(sched.next_event_time(), Time::ns(10));
  sched.run();
  EXPECT_THROW(sched.fast_forward_to(Time::ns(5)), std::logic_error);
}

// --- RingOscillator + DividerCascade ---------------------------------------

struct RingState {
  std::uint64_t cycles, wakeups, div_in, div_toggles, div_out;
  Time awake, last_edge, div_last, now;

  bool operator==(const RingState&) const = default;
};

// Drive a deterministic ring + divider through a random sleep/wake
// schedule. `analytic` replays each inter-action gap with advance_to();
// the reference dispatches every edge through the scheduler.
RingState run_ring_schedule(std::uint64_t seed, bool analytic) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.stages = 5;
  cfg.stage_delay = 1_ns;  // 10 ns period
  RingOscillator osc{sched, cfg};
  DividerCascade div{osc.line(), 3};
  osc.start();

  Xoshiro256StarStar rng{seed};
  Time t = Time::zero();
  for (int i = 0; i < 40; ++i) {
    // Gaps span sub-period to many-period lengths, at 1 ps granularity so
    // actions land on and off edge instants.
    t = t + Time::ps(static_cast<Time::Rep>(1 + rng.uniform_int(400'000)));
    if (analytic) {
      osc.advance_to(t);
      sched.fast_forward_to(t);
    } else {
      sched.run_until(t);
    }
    // Random action; redundant sleep/wake calls are no-ops on both paths.
    switch (rng.uniform_int(3)) {
      case 0: osc.sleep(); break;
      case 1: osc.wake(); break;
      default: break;  // just a gap
    }
  }
  const Time end = t + 3_us;
  if (analytic) {
    osc.advance_to(end);
    sched.fast_forward_to(end);
  } else {
    sched.run_until(end);
  }
  return RingState{osc.cycles(),          osc.wakeups(),
                   div.input_edges(),     div.ff_toggles(),
                   div.line().edge_count(), osc.awake_time(),
                   osc.line().last_edge(), div.line().last_edge(),
                   sched.now()};
}

TEST(RingOscillatorAdvance, MatchesStepTickingOverRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const RingState stepped = run_ring_schedule(seed, false);
    const RingState analytic = run_ring_schedule(seed, true);
    EXPECT_EQ(stepped, analytic) << "seed " << seed;
    EXPECT_GT(stepped.cycles, 0u) << "seed " << seed;
  }
}

TEST(RingOscillatorAdvance, JitteredRingRefusesAnalyticSkip) {
  sim::Scheduler sched;
  RingOscillatorConfig cfg;
  cfg.jitter_stddev = 0.01;
  RingOscillator osc{sched, cfg};
  osc.start();
  EXPECT_THROW(osc.advance_to(1_us), std::logic_error);
}

// --- PausibleClock ----------------------------------------------------------

struct PausibleState {
  std::uint64_t edges, grants, contentions;
  Time last_edge, stretch, now;

  bool operator==(const PausibleState&) const = default;
};

PausibleState run_pausible_schedule(std::uint64_t seed, bool analytic) {
  sim::Scheduler sched;
  PausibleClockConfig cfg;
  cfg.seed = seed;
  PausibleClock clk{sched, cfg};
  clk.start();

  Xoshiro256StarStar rng{seed ^ 0x9e3779b97f4a7c15ull};
  std::uint64_t granted = 0;
  Time t = Time::zero();
  for (int i = 0; i < 30; ++i) {
    // A quiet gap the analytic path absorbs...
    t = t + Time::ps(static_cast<Time::Rep>(1 + rng.uniform_int(3'000'000)));
    if (analytic) {
      clk.advance_to(t);
      sched.fast_forward_to(t);
    } else {
      sched.run_until(t);
    }
    // ...then a port request, settled by normal stepping on both paths
    // (grants postpone edges, which advance_to must not skip over).
    clk.request([&](Time) { ++granted; });
    t = t + cfg.period * 4;
    sched.run_until(t);
  }
  EXPECT_EQ(granted, 30u);
  return PausibleState{clk.line().edge_count(), clk.grants(),
                       clk.contentions(),       clk.line().last_edge(),
                       clk.total_stretch(),     sched.now()};
}

TEST(PausibleClockAdvance, MatchesStepTickingOverRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const PausibleState stepped = run_pausible_schedule(seed, false);
    const PausibleState analytic = run_pausible_schedule(seed, true);
    EXPECT_EQ(stepped, analytic) << "seed " << seed;
    EXPECT_GT(stepped.edges, 0u) << "seed " << seed;
  }
}

TEST(PausibleClockAdvance, BusyPortRefusesAnalyticSkip) {
  sim::Scheduler sched;
  PausibleClock clk{sched};
  clk.start();
  clk.request([](Time) {});
  EXPECT_THROW(clk.advance_to(1_us), std::logic_error);
}

// --- PowerProbe -------------------------------------------------------------

TEST(PowerProbeAdvance, MatchesStepTickingAcrossIdleGaps) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<power::PowerSample> runs[2];
    for (int pass = 0; pass < 2; ++pass) {
      const bool analytic = pass == 1;
      sim::Scheduler sched;
      power::ActivityTotals totals;
      power::PowerProbe probe{
          sched, [&] { return totals; }, power::PowerModel{}, 100_us};
      const Time until = Time::ms(20.0);
      probe.arm(until);

      Xoshiro256StarStar rng{seed};
      Time t = Time::zero();
      for (int i = 0; i < 12; ++i) {
        t = t + Time::us(static_cast<double>(50 + rng.uniform_int(1500)));
        if (analytic) {
          probe.advance_to(t);
          sched.fast_forward_to(t);
        } else {
          sched.run_until(t);
        }
        // A burst of activity lands at t, after any window ending at t —
        // identical ordering on both paths.
        totals.window = t;
        totals.events += rng.uniform_int(50);
        totals.fifo_writes += rng.uniform_int(100);
        totals.osc_awake = totals.osc_awake + Time::us(3.0);
      }
      if (analytic) {
        probe.advance_to(until);
        sched.fast_forward_to(until);
      } else {
        sched.run_until(until);
      }
      runs[pass] = probe.samples();
    }
    ASSERT_EQ(runs[0].size(), runs[1].size()) << "seed " << seed;
    ASSERT_GT(runs[0].size(), 100u) << "seed " << seed;
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[0][i].start, runs[1][i].start);
      EXPECT_EQ(runs[0][i].end, runs[1][i].end);
      EXPECT_EQ(runs[0][i].events, runs[1][i].events);
      // Bit-exact power: both paths must run the same arithmetic.
      EXPECT_EQ(runs[0][i].average_w, runs[1][i].average_w)
          << "seed " << seed << " sample " << i;
    }
  }
}

}  // namespace
}  // namespace aetr::clockgen
