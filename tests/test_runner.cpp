// Tests for the experiment runner's options and reporting — the harness
// every bench depends on deserves its own coverage.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "gen/sources.hpp"

namespace aetr::core {
namespace {

using namespace time_literals;

InterfaceConfig small_batches() {
  InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 32;
  return cfg;
}

TEST(Runner, EmptyStreamYieldsIdleResult) {
  RunOptions opt;
  opt.cooldown = 1_sec;
  const auto r = run_stream(small_batches(), {}, opt);
  EXPECT_EQ(r.events_in, 0u);
  EXPECT_EQ(r.words_out, 0u);
  EXPECT_EQ(r.sim_end, 1_sec);
  EXPECT_DOUBLE_EQ(r.input_rate_hz, 0.0);
  // Static floor plus the initial 2.2 ms awake span amortised over 1 s.
  EXPECT_NEAR(r.average_power_w, 54e-6, 4e-6);
}

TEST(Runner, FinalFlushControlsResidue) {
  gen::RegularSource make{10_us, 32};
  const auto events = gen::take(make, 10);  // below the 32-word threshold

  RunOptions flush;
  flush.final_flush = true;
  const auto flushed = run_stream(small_batches(), events, flush);
  EXPECT_EQ(flushed.words_out, 10u);

  gen::RegularSource make2{10_us, 32};
  RunOptions keep;
  keep.final_flush = false;
  const auto kept = run_stream(small_batches(), gen::take(make2, 10), keep);
  EXPECT_EQ(kept.words_out, 0u);  // the residue stayed buffered
}

TEST(Runner, CooldownExtendsTheWindow) {
  gen::RegularSource make{10_us, 32};
  const auto events = gen::take(make, 5);
  RunOptions opt;
  opt.cooldown = 50_ms;
  const auto r = run_stream(small_batches(), events, opt);
  EXPECT_GE(r.sim_end, events.back().time + 50_ms);
}

TEST(Runner, McuDetachable) {
  gen::RegularSource make{10_us, 32};
  RunOptions opt;
  opt.attach_mcu = false;
  const auto r = run_stream(small_batches(), gen::take(make, 40), opt);
  EXPECT_EQ(r.words_out, 40u);
  EXPECT_TRUE(r.decoded.empty());
}

TEST(Runner, SenderTimingPropagates) {
  gen::RegularSource make{10_us, 32};
  const auto events = gen::take(make, 20);
  RunOptions slow;
  slow.sender.addr_setup = 1_us;  // exaggerated pad delay
  const auto r = run_stream(small_batches(), events, slow);
  ASSERT_FALSE(r.records.empty());
  // Ground-truth request times include the setup delay.
  EXPECT_EQ(r.records[0].request.time, events[0].time + 1_us);
}

TEST(Runner, InputRateMeasuredFromStream) {
  gen::RegularSource make{10_us, 32};
  const auto r = run_stream(small_batches(), gen::take(make, 101));
  EXPECT_NEAR(r.input_rate_hz, 100e3, 1.0);
}

TEST(Runner, DrainTimeoutBoundsBufferLatency) {
  InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 1024;  // never reached by this stream
  cfg.drain_timeout = 2_ms;
  gen::RegularSource make{100_us, 32};
  const auto events = gen::take(make, 10);
  RunOptions opt;
  opt.final_flush = false;  // only the timeout can move the words
  opt.cooldown = 20_ms;
  const auto r = run_stream(cfg, events, opt);
  EXPECT_EQ(r.words_out, 10u);
  ASSERT_FALSE(r.decoded.empty());
}

TEST(Runner, RunSourceEquivalentToRunStream) {
  gen::PoissonSource a{10e3, 64, 42}, b{10e3, 64, 42};
  const auto via_source = run_source(small_batches(), a, 200);
  const auto via_stream = run_stream(small_batches(), gen::take(b, 200));
  EXPECT_EQ(via_source.words_out, via_stream.words_out);
  EXPECT_DOUBLE_EQ(via_source.average_power_w, via_stream.average_power_w);
}

}  // namespace
}  // namespace aetr::core
