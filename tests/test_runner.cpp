// Tests for the experiment runner's options and reporting — the harness
// every bench depends on deserves its own coverage.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"
#include "gen/sources.hpp"

namespace aetr::core {
namespace {

using namespace time_literals;

ScenarioConfig small_batches() {
  ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 32;
  return sc;
}

TEST(Runner, EmptyStreamYieldsIdleResult) {
  ScenarioConfig sc = small_batches();
  sc.cooldown = 1_sec;
  const auto r = run_scenario(sc, {});
  EXPECT_EQ(r.events_in, 0u);
  EXPECT_EQ(r.words_out, 0u);
  EXPECT_EQ(r.sim_end, 1_sec);
  EXPECT_DOUBLE_EQ(r.input_rate_hz, 0.0);
  EXPECT_GT(r.average_power_w, 0.0);  // static floor still burns
}

TEST(Runner, FinalFlushControlsResidue) {
  gen::RegularSource make{10_us, 32};
  const auto events = gen::take(make, 10);  // below the 32-word threshold

  ScenarioConfig flush = small_batches();
  flush.final_flush = true;
  const auto flushed = run_scenario(flush, events);
  EXPECT_EQ(flushed.words_out, 10u);

  gen::RegularSource make2{10_us, 32};
  ScenarioConfig keep = small_batches();
  keep.final_flush = false;
  const auto kept = run_scenario(keep, gen::take(make2, 10));
  EXPECT_EQ(kept.words_out, 0u);  // the residue stayed buffered
}

TEST(Runner, CooldownExtendsTheWindow) {
  gen::RegularSource make{10_us, 32};
  const auto events = gen::take(make, 5);
  ScenarioConfig sc = small_batches();
  sc.cooldown = 50_ms;
  const auto r = run_scenario(sc, events);
  EXPECT_GE(r.sim_end, events.back().time + 50_ms);
}

TEST(Runner, McuDetachable) {
  gen::RegularSource make{10_us, 32};
  ScenarioConfig sc = small_batches();
  sc.attach_mcu = false;
  const auto r = run_scenario(sc, gen::take(make, 40));
  EXPECT_EQ(r.words_out, 40u);
  EXPECT_TRUE(r.decoded.empty());
  EXPECT_TRUE(r.delivery_latency_sec.empty());
}

TEST(Runner, SenderTimingPropagates) {
  gen::RegularSource make{10_us, 32};
  const auto events = gen::take(make, 20);
  ScenarioConfig slow = small_batches();
  slow.sender.addr_setup = 1_us;  // exaggerated pad delay
  const auto r = run_scenario(slow, events);
  ASSERT_FALSE(r.records.empty());
  // Ground-truth request times include the setup delay.
  EXPECT_EQ(r.records[0].request.time, events[0].time + 1_us);
}

TEST(Runner, InputRateMeasuredFromStream) {
  gen::RegularSource make{10_us, 32};
  const auto r = run_scenario(small_batches(), gen::take(make, 101));
  EXPECT_NEAR(r.input_rate_hz, 100e3, 1.0);
}

TEST(Runner, DrainTimeoutBoundsBufferLatency) {
  ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 1024;  // never reached by this stream
  sc.interface.drain_timeout = 2_ms;
  gen::RegularSource make{100_us, 32};
  const auto events = gen::take(make, 10);
  sc.final_flush = false;  // only the timeout can move the words
  sc.cooldown = 20_ms;
  const auto r = run_scenario(sc, events);
  EXPECT_EQ(r.words_out, 10u);
  ASSERT_FALSE(r.decoded.empty());
}

TEST(Runner, RunSourceEquivalentToRunStream) {
  gen::PoissonSource a{10e3, 64, 42}, b{10e3, 64, 42};
  const auto via_source = run_scenario(small_batches(), a, 200);
  const auto via_stream = run_scenario(small_batches(), gen::take(b, 200));
  EXPECT_EQ(via_source.words_out, via_stream.words_out);
  EXPECT_DOUBLE_EQ(via_source.average_power_w, via_stream.average_power_w);
}

TEST(Runner, DeliveryLatencyCoversEveryDecodedEvent) {
  gen::RegularSource make{10_us, 32};
  const auto r = run_scenario(small_batches(), gen::take(make, 100));
  ASSERT_FALSE(r.decoded.empty());
  ASSERT_EQ(r.delivery_latency_sec.size(), r.decoded.size());
  for (double lat : r.delivery_latency_sec) EXPECT_GE(lat, 0.0);
  // Batching means the first event of a batch waits the longest: with a
  // 32-word threshold at 10 us spacing the oldest event waits ~310 us.
  const double max_lat = *std::max_element(r.delivery_latency_sec.begin(),
                                           r.delivery_latency_sec.end());
  EXPECT_GT(max_lat, 100e-6);
  EXPECT_LT(max_lat, 1e-3);
}

}  // namespace
}  // namespace aetr::core
