// Failure injection: misbehaving AER agents against the protocol checker,
// and robustness properties of the full interface under hostile streams.
#include <gtest/gtest.h>

#include <string>

#include "aer/agents.hpp"
#include "aer/channel.hpp"
#include "core/scenario.hpp"
#include "gen/sources.hpp"
#include "util/rng.hpp"

namespace aetr::aer {
namespace {

using namespace time_literals;

/// A sender that violates the 4-phase protocol in configurable ways.
struct RogueSender {
  sim::Scheduler& sched;
  AerChannel& ch;

  void addr_glitch_during_req(Time t) {
    sched.schedule_at(t, [this] {
      ch.drive_addr(1);
      ch.assert_req();
      ch.drive_addr(2);  // illegal: ADDR must stay stable under REQ
    });
  }

  void premature_req_drop(Time t) {
    sched.schedule_at(t, [this] {
      ch.drive_addr(3);
      ch.assert_req();
      ch.deassert_req();  // illegal: before ACK
    });
  }

  void double_req(Time t) {
    sched.schedule_at(t, [this] {
      ch.drive_addr(4);
      ch.assert_req();
      ch.assert_req();  // illegal
    });
  }
};

TEST(Fuzz, EveryInjectedViolationIsFlagged) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  RogueSender rogue{sched, ch};
  rogue.addr_glitch_during_req(1_us);
  sched.run();
  ASSERT_EQ(ch.violations().size(), 1u);
  EXPECT_NE(ch.violations()[0].description.find("ADDR"), std::string::npos);
  EXPECT_EQ(ch.violations()[0].time, 1_us);
}

TEST(Fuzz, PrematureReqDropFlagged) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  RogueSender rogue{sched, ch};
  rogue.premature_req_drop(1_us);
  sched.run();
  ASSERT_FALSE(ch.violations().empty());
  EXPECT_NE(ch.violations()[0].description.find("before ACK"),
            std::string::npos);
}

TEST(Fuzz, DoubleReqFlagged) {
  sim::Scheduler sched;
  AerChannel ch{sched};
  RogueSender rogue{sched, ch};
  rogue.double_req(1_us);
  sched.run();
  ASSERT_FALSE(ch.violations().empty());
}

TEST(Fuzz, RandomViolationSoupAllCounted) {
  // Inject a random mix of violations; the count must match the injection
  // count exactly (no violation masked by a previous one).
  sim::Scheduler sched;
  AerChannel ch{sched};
  Xoshiro256StarStar rng{77};
  std::size_t injected = 0;
  for (int i = 0; i < 60; ++i) {
    const Time t = Time::us(static_cast<double>(i + 1) * 5.0);
    switch (rng.uniform_int(3)) {
      case 0:
        // ACK without REQ (channel idle at these instants).
        sched.schedule_at(t, [&ch] { ch.assert_ack(); });
        sched.schedule_at(t + 1_us, [&ch] { ch.deassert_ack(); });
        injected += 1;  // the ACK without REQ (its deassert is order-legal)
        break;
      case 1:
        sched.schedule_at(t, [&ch] {
          ch.assert_req();
          ch.assert_req();
          ch.assert_ack();
          ch.deassert_req();
          ch.deassert_ack();
        });
        injected += 1;  // the double REQ
        break;
      default:
        sched.schedule_at(t, [&ch] {
          ch.drive_addr(9);
          ch.assert_req();
          ch.drive_addr(10);
          ch.assert_ack();
          ch.deassert_req();
          ch.deassert_ack();
        });
        injected += 1;  // the ADDR glitch
        break;
    }
  }
  sched.run();
  EXPECT_EQ(ch.violations().size(), injected);
}

TEST(Fuzz, CleanTrafficAfterViolationsStillWorks) {
  // The channel records violations but keeps functioning: clean handshakes
  // after garbage complete normally.
  sim::Scheduler sched;
  AerChannel ch{sched};
  RogueSender rogue{sched, ch};
  rogue.premature_req_drop(1_us);
  // Manually close the broken attempt so the wires are idle again.
  sched.schedule_at(2_us, [&ch] {
    if (ch.ack()) ch.deassert_ack();
  });
  AerSender sender{sched, ch};
  ImmediateAckReceiver receiver{sched, ch};
  sender.submit(Event{7, 10_us});
  sched.run();
  // The receiver also recorded the rogue REQ edge; the clean event still
  // completes after it.
  ASSERT_EQ(receiver.received().size(), 2u);
  EXPECT_EQ(receiver.received().back().address, 7);
}

TEST(Fuzz, InterfaceSurvivesAdversarialBurstiness) {
  // Pathological stream: alternating dense 130 ns packs and multi-ms gaps
  // (worst case for wake/division churn). No protocol violations, no event
  // loss, every timestamp either valid or saturated.
  EventStream events;
  Time t = Time::zero();
  for (int burst = 0; burst < 30; ++burst) {
    for (int i = 0; i < 20; ++i) {
      t += Time::ns(130.0);
      events.push_back(Event{static_cast<std::uint16_t>(i), t});
    }
    t += Time::ms(5.0);  // beyond the awake span: forces sleep + wake
  }
  core::ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 64;
  const auto r = core::run_scenario(sc, events);
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_EQ(r.words_out, events.size());
  // One saturated event per inter-burst gap (29 gaps are followed by a
  // burst; the last gap has no event after it).
  EXPECT_EQ(r.error.saturated, 29u);
  EXPECT_EQ(r.activity.wakeups, 29u);
}

TEST(Fuzz, MetastabilityInjectionPreservesCorrectness) {
  // Even at an absurd 30 % metastability rate, no events are lost and the
  // accuracy degrades only mildly (one extra period per hit).
  core::ScenarioConfig sc;
  sc.interface.front_end.metastability_prob = 0.3;
  sc.interface.front_end.seed = 5;
  sc.interface.fifo.batch_threshold = 64;
  gen::PoissonSource src{20e3, 128, 51, Time::ns(200.0)};
  const auto events = gen::take(src, 2000);
  const auto r = core::run_scenario(sc, events);
  EXPECT_EQ(r.words_out, 2000u);
  EXPECT_EQ(r.protocol_violations, 0u);
  EXPECT_LT(r.error.weighted_rel_error(), 0.10);
}

}  // namespace
}  // namespace aetr::aer
