// Tests for the telemetry subsystem: registry snapshot determinism, span
// nesting/ordering, the disabled path being a zero-allocation no-op, and
// Chrome-trace JSON well-formedness for a full pipeline run.
//
// Global operator new/delete are replaced with counting versions (the
// test_scheduler_alloc.cpp pattern) so the no-op claims are provable.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "aer/event.hpp"
#include "core/scenario.hpp"
#include "fault/fault_plan.hpp"
#include "gen/sources.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace {
std::uint64_t g_allocs = 0;  // test binary is single-threaded
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) & ~(a - 1);  // aligned_alloc contract
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
// The nothrow forms must be replaced too: libstdc++'s
// get_temporary_buffer (std::stable_sort) allocates through them, and a
// default nothrow-new paired with our free() is an ASan
// alloc-dealloc-mismatch.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(n);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace aetr::telemetry {
namespace {

using namespace time_literals;

// --- a minimal JSON well-formedness parser ---------------------------------
// Validates the full RFC-8259 grammar shape (objects, arrays, strings with
// escapes, numbers, literals); no DOM, just accept/reject. Enough to prove
// the exported trace loads in any real JSON parser.

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_{text} {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string{"\"\\/bfnrt"}.find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are illegal inside strings
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  const std::string& s_;
  std::size_t pos_{0};
};

std::string slurp(const std::string& path) {
  std::ifstream f{path};
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// --- MetricsRegistry --------------------------------------------------------

TEST(Metrics, SnapshotGridIsDeterministic) {
  const auto drive = [](MetricsRegistry& reg) {
    std::uint64_t counter = 0;
    double gauge = 0.0;
    reg.probe("block.counter",
              [&counter] { return static_cast<double>(counter); });
    reg.probe("block.gauge", [&gauge] { return gauge; });
    for (int i = 0; i < 5; ++i) {
      counter += static_cast<std::uint64_t>(i) * 7u;
      gauge = 0.125 * i;
      reg.snapshot(Time::ms(static_cast<double>(i)));
    }
  };
  MetricsRegistry a;
  MetricsRegistry b;
  drive(a);
  drive(b);
  ASSERT_EQ(a.snapshots().size(), 5u);
  ASSERT_EQ(a.names(), b.names());
  for (std::size_t i = 0; i < a.snapshots().size(); ++i) {
    EXPECT_EQ(a.snapshots()[i].at, b.snapshots()[i].at);
    EXPECT_EQ(a.snapshots()[i].values, b.snapshots()[i].values);
  }
  const std::string pa = testing::TempDir() + "aetr_metrics_a.csv";
  const std::string pb = testing::TempDir() + "aetr_metrics_b.csv";
  a.write_csv(pa);
  b.write_csv(pb);
  EXPECT_EQ(slurp(pa), slurp(pb));  // byte-identical, not just equal values
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(Metrics, DuplicateProbeReplacesSampler) {
  MetricsRegistry reg;
  reg.probe("x", [] { return 1.0; });
  reg.probe("x", [] { return 2.0; });  // re-wire, same column
  reg.snapshot(Time::zero());
  ASSERT_EQ(reg.names().size(), 1u);
  EXPECT_DOUBLE_EQ(reg.last("x"), 2.0);
}

TEST(Metrics, LogHistogramRoundTripsThroughCsv) {
  MetricsRegistry reg;
  LogHistogram* h = reg.log_histogram("isi", 1e-6, 1.0, 4);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(reg.log_histogram("isi", 1e-6, 1.0, 4), h);  // get-or-create
  h->add(1e-3);
  h->add(1e-3);
  h->add(0.5);
  const std::string path = testing::TempDir() + "aetr_metrics_hist.csv";
  reg.write_csv(path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("#histogram,bin_lo,bin_hi,count"), std::string::npos);
  EXPECT_NE(text.find("isi,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Metrics, HistogramsAccessorKeepsRegistrationOrder) {
  MetricsRegistry reg;
  LogHistogram* b = reg.log_histogram("b", 1e-6, 1.0, 4);
  LogHistogram* a = reg.log_histogram("a", 1e-6, 1.0, 4);
  LogHistogram* c = reg.log_histogram("c", 1e-3, 10.0, 8);
  ASSERT_EQ(reg.histograms().size(), 3u);
  EXPECT_EQ(reg.histograms()[0].first, "b");  // registration, not name, order
  EXPECT_EQ(reg.histograms()[1].first, "a");
  EXPECT_EQ(reg.histograms()[2].first, "c");
  // Deque storage: earlier pointers stay valid across later registrations.
  EXPECT_EQ(&reg.histograms()[0].second, b);
  EXPECT_EQ(&reg.histograms()[1].second, a);
  EXPECT_EQ(&reg.histograms()[2].second, c);
  b->add(1e-3);
  EXPECT_EQ(reg.histograms()[0].second.total(), 1.0);
  // Histograms are not snapshot columns: the grid is unaffected.
  reg.snapshot(Time::zero());
  EXPECT_TRUE(reg.snapshots().back().values.empty());
  EXPECT_TRUE(reg.names().empty());
}

TEST(Metrics, SnapshotGridEdgeCases) {
  MetricsRegistry reg;
  // Empty registry: last() is 0, a snapshot is an empty (but counted) row.
  EXPECT_DOUBLE_EQ(reg.last("missing"), 0.0);
  reg.snapshot(Time::ms(1.0));
  ASSERT_EQ(reg.snapshots().size(), 1u);
  EXPECT_TRUE(reg.snapshots()[0].values.empty());
  EXPECT_DOUBLE_EQ(reg.last("missing"), 0.0);
  // A probe registered after a snapshot has no column in that row yet:
  // last() must answer 0, not read past the short row.
  reg.probe("late", [] { return 42.0; });
  EXPECT_DOUBLE_EQ(reg.last("late"), 0.0);
  reg.snapshot(Time::ms(2.0));
  EXPECT_DOUBLE_EQ(reg.last("late"), 42.0);
  ASSERT_EQ(reg.snapshots()[0].values.size(), 0u);
  ASSERT_EQ(reg.snapshots()[1].values.size(), 1u);
  // The CSV keeps every row; the pre-registration row is just narrower.
  const std::string path = testing::TempDir() + "aetr_metrics_edge.csv";
  reg.write_csv(path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("time_ms,late\n"), std::string::npos);
  EXPECT_NE(text.find("\n1\n"), std::string::npos);
  EXPECT_NE(text.find("\n2,42\n"), std::string::npos);
  std::remove(path.c_str());
}

// --- TraceSession -----------------------------------------------------------

TEST(Trace, SpanNestingAndOrderingSurviveExport) {
  TraceSession trace;
  const auto t = trace.track("block");
  trace.begin(t, "outer", 10_ns);
  trace.begin(t, "inner", 20_ns);
  trace.instant(t, "tick", 25_ns);
  trace.end(t, "inner", 30_ns);
  trace.end(t, "outer", 40_ns);
  ASSERT_EQ(trace.events().size(), 5u);

  const std::string path = testing::TempDir() + "aetr_trace_nest.json";
  trace.write_chrome_json(path);
  const std::string text = slurp(path);
  EXPECT_TRUE(JsonParser{text}.valid()) << text;
  // Chrome pairs B/E per tid by nesting order: the export must keep
  // outer-B, inner-B, instant, inner-E, outer-E in timestamp order.
  const auto outer_b = text.find("\"name\":\"outer\",\"cat\":\"block\",\"ph\":\"B\"");
  const auto inner_b = text.find("\"name\":\"inner\",\"cat\":\"block\",\"ph\":\"B\"");
  const auto inner_e = text.find("\"name\":\"inner\",\"cat\":\"block\",\"ph\":\"E\"");
  const auto outer_e = text.find("\"name\":\"outer\",\"cat\":\"block\",\"ph\":\"E\"");
  ASSERT_NE(outer_b, std::string::npos);
  ASSERT_NE(inner_b, std::string::npos);
  ASSERT_NE(inner_e, std::string::npos);
  ASSERT_NE(outer_e, std::string::npos);
  EXPECT_LT(outer_b, inner_b);
  EXPECT_LT(inner_b, inner_e);
  EXPECT_LT(inner_e, outer_e);
  std::remove(path.c_str());
}

TEST(Trace, SameTimestampEventsKeepRecordOrder) {
  TraceSession trace;
  const auto t = trace.track("block");
  trace.instant(t, "first", 5_ns);
  trace.instant(t, "second", 5_ns);
  trace.instant(t, "third", 5_ns);
  const std::string path = testing::TempDir() + "aetr_trace_stable.csv";
  trace.write_csv(path);
  const std::string text = slurp(path);
  EXPECT_LT(text.find("first"), text.find("second"));
  EXPECT_LT(text.find("second"), text.find("third"));
  std::remove(path.c_str());
}

TEST(Trace, RaiiSpanClosesOnDestructionAndIsIdempotent) {
  SessionOptions so;
  so.trace = true;
  TelemetrySession session{so};
  Time now = 1_ns;
  session.set_clock([&now] { return now; });
  {
    Span outer{&session, "harness", "run"};
    now = 5_ns;
    Span inner{&session, "harness", "phase"};
    now = 7_ns;
    inner.close();
    inner.close();  // idempotent
    now = 9_ns;
  }
  if (!compiled_in()) {
    EXPECT_TRUE(session.trace().events().empty());
    return;
  }
  const auto& ev = session.trace().events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].phase, TraceSession::Phase::kBegin);
  EXPECT_EQ(ev[0].ts, 1_ns);
  EXPECT_EQ(ev[1].phase, TraceSession::Phase::kBegin);
  EXPECT_EQ(ev[1].ts, 5_ns);
  EXPECT_EQ(ev[2].phase, TraceSession::Phase::kEnd);
  EXPECT_EQ(ev[2].ts, 7_ns);
  EXPECT_EQ(ev[3].phase, TraceSession::Phase::kEnd);
  EXPECT_EQ(ev[3].ts, 9_ns);
}

TEST(Trace, ChromeExportNamesTheProcess) {
  TraceSession trace;
  const auto t = trace.track("block");
  trace.instant(t, "tick", 5_ns);
  const std::string path = testing::TempDir() + "aetr_trace_proc.json";
  trace.write_chrome_json(path);
  const std::string text = slurp(path);
  EXPECT_TRUE(JsonParser{text}.valid()) << text;
  // Perfetto renders the process row as "(pid 1)" without these.
  const auto proc = text.find(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"aetr\"}}");
  ASSERT_NE(proc, std::string::npos);
  EXPECT_NE(text.find("\"name\":\"process_sort_index\""), std::string::npos);
  // Process metadata precedes the per-track thread_name lanes.
  const auto lane = text.find("\"name\":\"thread_name\"");
  ASSERT_NE(lane, std::string::npos);
  EXPECT_LT(proc, lane);
  std::remove(path.c_str());
}

TEST(Trace, EventCapDropsAreCountedNotSilent) {
  TraceSession trace{4};
  const auto t = trace.track("block");
  for (int i = 0; i < 10; ++i) trace.instant(t, "e", Time::ns(i));
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  const std::string path = testing::TempDir() + "aetr_trace_cap.json";
  trace.write_chrome_json(path);
  const std::string text = slurp(path);
  EXPECT_TRUE(JsonParser{text}.valid());
  EXPECT_NE(text.find("\"dropped_events\":6"), std::string::npos);
  std::remove(path.c_str());
}

// --- disabled path ----------------------------------------------------------

TEST(Disabled, EmissionThroughNullSessionIsAllocationFree) {
  BlockTelemetry tel{nullptr, "block"};
  EXPECT_FALSE(tel.tracing());
  EXPECT_EQ(tel.metrics(), nullptr);
  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 1000; ++i) {
    tel.begin("span", Time::ns(i), {{"k", 1.0}});
    tel.instant("point", Time::ns(i), {{"a", 2.0}, {"b", 3.0}});
    tel.counter("gauge", Time::ns(i), static_cast<double>(i));
    tel.end("span", Time::ns(i + 1));
  }
  EXPECT_EQ(g_allocs, before) << "disabled telemetry emission allocated";
}

TEST(Disabled, RuntimeDisabledSessionRecordsNothingAndNeverAllocates) {
  SessionOptions so;  // trace = metrics = false
  TelemetrySession session{so};
  EXPECT_FALSE(session.trace_on());
  EXPECT_FALSE(session.metrics_on());
  BlockTelemetry tel{&session, "block"};
  EXPECT_FALSE(tel.tracing());
  EXPECT_EQ(tel.metrics(), nullptr);
  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 1000; ++i) {
    tel.complete("w", Time::ns(i), Time::ns(i + 1));
    Span s{&session, "harness", "nested"};
  }
  EXPECT_EQ(g_allocs, before);
  EXPECT_TRUE(session.trace().events().empty());
}

#if !AETR_TELEMETRY
TEST(Disabled, CompiledOutSessionIsInertEvenWhenEnabled) {
  SessionOptions so;
  so.trace = true;
  so.metrics = true;
  TelemetrySession session{so};
  EXPECT_FALSE(compiled_in());
  EXPECT_FALSE(session.trace_on());
  EXPECT_FALSE(session.metrics_on());
  BlockTelemetry tel{&session, "block"};
  EXPECT_FALSE(tel.tracing());
  EXPECT_EQ(tel.metrics(), nullptr);
  tel.instant("x", Time::zero());
  EXPECT_TRUE(session.trace().events().empty());
}
#endif

// --- full-pipeline integration ---------------------------------------------

core::ScenarioConfig traced_scenario(const std::string& tag) {
  SessionOptions so;
  so.trace = true;
  so.metrics = true;
  so.metrics_window = Time::ms(0.5);
  so.trace_json_path = testing::TempDir() + "aetr_run_" + tag + ".json";
  so.trace_csv_path = testing::TempDir() + "aetr_run_" + tag + "_trace.csv";
  so.metrics_csv_path = testing::TempDir() + "aetr_run_" + tag + "_metrics.csv";
  core::ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 32;  // several drains within the stream
  sc.telemetry = core::TelemetryChoice::owned(so);
  return sc;
}

aer::EventStream pipeline_stream() {
  gen::PoissonSource src{50e3, 128, 7, Time::us(1.0)};
  return gen::take(src, 400);
}

TEST(Integration, RunStreamTraceCoversEveryPipelineStage) {
  if (!compiled_in()) GTEST_SKIP() << "built with AETR_TELEMETRY=0";
  const auto sc = traced_scenario("cover");
  const auto r = core::run_scenario(sc, pipeline_stream());
  EXPECT_GT(r.events_in, 0u);

  const std::string text = slurp(sc.telemetry.options().trace_json_path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonParser{text}.valid()) << "trace JSON must parse";
  // One named Perfetto lane per pipeline block, plus the harness lane.
  for (const char* track :
       {"frontend", "fifo", "clockgen", "i2s", "mcu", "runner"}) {
    EXPECT_NE(
        text.find("\"args\":{\"name\":\"" + std::string{track} + "\"}"),
        std::string::npos)
        << "missing thread_name lane for " << track;
  }
  // Spans from each stage of the dataflow.
  EXPECT_NE(text.find("\"name\":\"capture\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"occupancy\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"level\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"drain\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"batch_start\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"run_scenario\""), std::string::npos);

  // Metrics CSV: probes from every block on the snapshot grid.
  const std::string metrics = slurp(sc.telemetry.options().metrics_csv_path);
  for (const char* col :
       {"frontend.events", "fifo.occupancy", "clockgen.captures",
        "i2s.words_sent", "mcu.words", "sched.events_dispatched",
        "power.avg_w"}) {
    EXPECT_NE(metrics.find(col), std::string::npos) << "missing " << col;
  }
  std::remove(sc.telemetry.options().trace_json_path.c_str());
  std::remove(sc.telemetry.options().trace_csv_path.c_str());
  std::remove(sc.telemetry.options().metrics_csv_path.c_str());
}

TEST(Integration, IdenticalRunsProduceByteIdenticalArtifacts) {
  if (!compiled_in()) GTEST_SKIP() << "built with AETR_TELEMETRY=0";
  const auto events = pipeline_stream();
  const auto sc_a = traced_scenario("det_a");
  const auto sc_b = traced_scenario("det_b");
  (void)core::run_scenario(sc_a, events);
  (void)core::run_scenario(sc_b, events);
  EXPECT_EQ(slurp(sc_a.telemetry.options().trace_json_path),
            slurp(sc_b.telemetry.options().trace_json_path));
  EXPECT_EQ(slurp(sc_a.telemetry.options().trace_csv_path),
            slurp(sc_b.telemetry.options().trace_csv_path));
  EXPECT_EQ(slurp(sc_a.telemetry.options().metrics_csv_path),
            slurp(sc_b.telemetry.options().metrics_csv_path));
  for (const auto* o : {&sc_a, &sc_b}) {
    std::remove(o->telemetry.options().trace_json_path.c_str());
    std::remove(o->telemetry.options().trace_csv_path.c_str());
    std::remove(o->telemetry.options().metrics_csv_path.c_str());
  }
}

TEST(Integration, FaultProbesAgreeWithRunResultCounters) {
  if (!compiled_in()) GTEST_SKIP() << "built with AETR_TELEMETRY=0";
  SessionOptions so;
  so.metrics = true;
  so.metrics_window = Time::ms(0.5);
  TelemetrySession session{so};
  core::ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 32;
  sc.telemetry = core::TelemetryChoice::borrowed(&session);
  // An active fault plan (like telemetry itself) forces the fast path to
  // fall back to the reference event-driven run; the fault.* probes and
  // RunResult::faults read the same injector counters, so whatever path
  // executed they can never disagree.
  sc.fast_forward = true;
  sc.faults = fault::scaled_plan(0.05, 99);  // the quick faults-figure level
  ASSERT_TRUE(sc.faults.any());
  const auto r = core::run_scenario(sc, pipeline_stream());
  ASSERT_GT(r.faults.injected_total(), 0u) << "fault plan injected nothing";
  ASSERT_FALSE(session.metrics().snapshots().empty());
  const auto& m = session.metrics();
  EXPECT_EQ(m.last("fault.injected"),
            static_cast<double>(r.faults.injected_total()));
  EXPECT_EQ(m.last("fault.recovered"),
            static_cast<double>(r.faults.recovered_total()));
  EXPECT_EQ(m.last("fault.watchdog_resyncs"),
            static_cast<double>(r.faults.watchdog_resyncs));
  EXPECT_EQ(m.last("fault.crc_rejected_words"),
            static_cast<double>(r.faults.crc_rejected_words));
}

TEST(Integration, TelemetryDoesNotChangeRunResults) {
  core::ScenarioConfig plain_sc;
  plain_sc.interface.fifo.batch_threshold = 32;
  const auto events = pipeline_stream();
  const auto plain = core::run_scenario(plain_sc, events);
  const auto sc = traced_scenario("invariant");
  const auto traced = core::run_scenario(sc, events);
  // Telemetry must be a pure observer: every simulation observable is
  // bit-identical with and without it.
  EXPECT_EQ(traced.sim_end, plain.sim_end);
  EXPECT_EQ(traced.words_out, plain.words_out);
  EXPECT_EQ(traced.batches, plain.batches);
  EXPECT_EQ(traced.handshakes, plain.handshakes);
  EXPECT_EQ(traced.average_power_w, plain.average_power_w);
  EXPECT_EQ(traced.error.weighted_rel_error(), plain.error.weighted_rel_error());
  std::remove(sc.telemetry.options().trace_json_path.c_str());
  std::remove(sc.telemetry.options().trace_csv_path.c_str());
  std::remove(sc.telemetry.options().metrics_csv_path.c_str());
}

}  // namespace
}  // namespace aetr::telemetry
