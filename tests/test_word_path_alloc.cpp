// Proves the per-word delivery path is allocation-free now that the word
// callbacks (frontend::AerFrontEnd::WordFn, i2s::I2sMaster::WordFn) are
// util::InplaceFunction instead of std::function: the captures the library
// actually installs — a component `this` pointer, or the scenario runner's
// two-reference MCU+harvest closure — must store inline, and assigning plus
// dispatching them must never touch the global allocator. Global operator
// new/delete are replaced in this binary with counting versions.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "aer/event.hpp"
#include "frontend/aer_frontend.hpp"
#include "i2s/i2s.hpp"
#include "util/time.hpp"

namespace {
std::uint64_t g_allocs = 0;  // test binary is single-threaded
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) & ~(a - 1);  // aligned_alloc contract
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace aetr {
namespace {

using WordFn = frontend::AerFrontEnd::WordFn;

// The two WordFn types must stay interchangeable (core wires the frontend's
// words into the I2S master's consumer contract).
static_assert(
    std::is_same_v<frontend::AerFrontEnd::WordFn, i2s::I2sMaster::WordFn>);

struct FakeSink {
  std::uint64_t words{0};
  std::uint64_t last_addr{0};
  Time last_at{Time::zero()};
  void on_word(aer::AetrWord w, Time t) {
    ++words;
    last_addr = w.address();
    last_at = t;
  }
};

struct FakeHarvester {
  Time latest{Time::zero()};
  void harvest(Time t) { latest = t; }
};

// The library's real capture shapes must be inline-storable by construction:
// the interface installs a bare `this` (core/interface.cpp), the scenario
// runner a two-reference MCU+harvest closure (core/scenario.cpp).
static_assert(WordFn::stores_inline<
              decltype([p = static_cast<FakeSink*>(nullptr)](
                           aer::AetrWord w, Time t) { p->on_word(w, t); })>());
static_assert(WordFn::stores_inline<
              decltype([p = static_cast<FakeSink*>(nullptr),
                        h = static_cast<FakeHarvester*>(nullptr)](
                           aer::AetrWord w, Time t) {
                p->on_word(w, t);
                h->harvest(t);
              })>());

TEST(WordPathAlloc, InstallAndDispatchAreAllocationFree) {
  FakeSink sink;
  FakeHarvester harvester;
  WordFn fn;
  const std::uint64_t before = g_allocs;
  // Re-install every round (components are re-wired between runs) and push
  // a batch of words through: the steady-state word path must stay off the
  // allocator entirely — install included.
  for (int round = 0; round < 10; ++round) {
    fn = [&sink, &harvester](aer::AetrWord w, Time t) {
      sink.on_word(w, t);
      harvester.harvest(t);
    };
    ASSERT_TRUE(static_cast<bool>(fn));
    for (std::uint32_t i = 0; i < 1024; ++i) {
      fn(aer::AetrWord::make(static_cast<std::uint16_t>(i & 0x3FF), i),
         Time::ns(130.0 * (i + 1)));
    }
  }
  EXPECT_EQ(g_allocs, before) << "per-word path touched the allocator";
  EXPECT_EQ(sink.words, 10u * 1024u);
  EXPECT_EQ(sink.last_addr, 1023u & 0x3FFu);
  EXPECT_EQ(harvester.latest, Time::ns(130.0 * 1024));
}

TEST(WordPathAlloc, MoveTransfersTheInlineCallable) {
  FakeSink sink;
  WordFn a = [&sink](aer::AetrWord w, Time t) { sink.on_word(w, t); };
  const std::uint64_t before = g_allocs;
  WordFn b = std::move(a);  // the on_word(std::move(fn)) handoff
  ASSERT_TRUE(static_cast<bool>(b));
  b(aer::AetrWord::make(7, 1), Time::ns(1.0));
  EXPECT_EQ(g_allocs, before) << "moving an inline WordFn allocated";
  EXPECT_EQ(sink.words, 1u);
  EXPECT_EQ(sink.last_addr, 7u);
}

}  // namespace
}  // namespace aetr
