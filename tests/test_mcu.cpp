// Tests for the MCU-side consumer: AETR decoding, rate estimation, the
// time-frequency map, and batch statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "mcu/consumer.hpp"

namespace aetr::mcu {
namespace {

using namespace time_literals;
using aer::AetrWord;

TEST(Decoder, ReconstructsAbsoluteTimes) {
  AetrDecoder dec{100_ns, 12_us};
  const auto e1 = dec.decode(AetrWord::make(3, 10));
  const auto e2 = dec.decode(AetrWord::make(4, 25));
  EXPECT_EQ(e1.reconstructed_time, 1_us);
  EXPECT_EQ(e2.reconstructed_time, Time::us(3.5));
  EXPECT_EQ(e1.address, 3);
  EXPECT_FALSE(e1.saturated);
  EXPECT_EQ(dec.decoded(), 2u);
}

TEST(Decoder, SaturatedAdvancesBySpan) {
  AetrDecoder dec{100_ns, 12_us};
  dec.decode(AetrWord::make(1, 10));
  const auto ev = dec.decode(AetrWord::saturated(2));
  EXPECT_TRUE(ev.saturated);
  EXPECT_EQ(ev.reconstructed_time, 1_us + 12_us);
  EXPECT_EQ(dec.saturated(), 1u);
}

TEST(Decoder, ResetRestartsClock) {
  AetrDecoder dec{100_ns, 12_us};
  dec.decode(AetrWord::make(1, 50));
  dec.reset(1_ms);
  const auto ev = dec.decode(AetrWord::make(2, 10));
  EXPECT_EQ(ev.reconstructed_time, 1_ms + 1_us);
  EXPECT_EQ(dec.decoded(), 1u);
}

TEST(RateEstimator, ConvergesToSteadyRate) {
  RateEstimator est{10_ms};
  // 10 kHz regular stream for 100 ms.
  for (int i = 1; i <= 1000; ++i) {
    est.add(Time::us(static_cast<double>(i) * 100.0));
  }
  EXPECT_NEAR(est.rate_hz(100_ms), 10e3, 500.0);
}

TEST(RateEstimator, DecaysAfterSilence) {
  RateEstimator est{10_ms};
  for (int i = 1; i <= 1000; ++i) {
    est.add(Time::us(static_cast<double>(i) * 100.0));
  }
  const double at_end = est.rate_hz(100_ms);
  const double later = est.rate_hz(150_ms);
  EXPECT_NEAR(later, at_end * std::exp(-5.0), at_end * 0.01);
}

TEST(RateEstimator, UnprimedIsZero) {
  RateEstimator est{10_ms};
  EXPECT_DOUBLE_EQ(est.rate_hz(1_sec), 0.0);
}

TEST(TimeFrequencyMap, BinsByGroupAndTime) {
  TimeFrequencyMap map{4, 1_ms, [](std::uint16_t a) {
                         return static_cast<std::size_t>(a % 4);
                       }};
  map.add({5, Time::us(500.0), false});   // group 1, bin 0
  map.add({5, Time::us(1500.0), false});  // group 1, bin 1
  map.add({2, Time::us(1500.0), false});  // group 2, bin 1
  EXPECT_EQ(map.count(1, 0), 1u);
  EXPECT_EQ(map.count(1, 1), 1u);
  EXPECT_EQ(map.count(2, 1), 1u);
  EXPECT_EQ(map.count(0, 0), 0u);
  EXPECT_EQ(map.total(), 3u);
  EXPECT_EQ(map.bins(), 2u);
}

TEST(TimeFrequencyMap, OutOfRangeGroupIgnored) {
  TimeFrequencyMap map{2, 1_ms,
                       [](std::uint16_t a) { return std::size_t{a}; }};
  map.add({7, 1_ms, false});
  EXPECT_EQ(map.total(), 0u);
}

TEST(TimeFrequencyMap, AsciiHasOneRowPerGroup) {
  TimeFrequencyMap map{3, 1_ms,
                       [](std::uint16_t a) { return std::size_t{a}; }};
  map.add({0, Time::us(100.0), false});
  map.add({2, Time::us(2500.0), false});
  const auto art = map.ascii();
  int rows = 0;
  for (char c : art) rows += (c == '\n');
  EXPECT_EQ(rows, 3);
}

TEST(Consumer, DecodesAndCountsBatches) {
  McuConsumer mcu{100_ns, 12_us, /*batch_gap=*/10_us};
  // Batch 1: three words arriving back-to-back.
  mcu.on_word(AetrWord::make(1, 10), 1_ms);
  mcu.on_word(AetrWord::make(2, 10), 1_ms + 1_us);
  mcu.on_word(AetrWord::make(3, 10), 1_ms + 2_us);
  // Long gap: batch 2.
  mcu.on_word(AetrWord::make(4, 10), 2_ms);
  EXPECT_EQ(mcu.words(), 4u);
  EXPECT_EQ(mcu.batches(), 2u);
  ASSERT_EQ(mcu.events().size(), 4u);
  EXPECT_EQ(mcu.events()[0].reconstructed_time, 1_us);
  EXPECT_EQ(mcu.events()[3].reconstructed_time, 4_us);
  EXPECT_EQ(mcu.bus_active(), 2_us);
}

}  // namespace
}  // namespace aetr::mcu
