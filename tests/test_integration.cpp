// Integration tests: the complete AER-to-I2S interface end to end —
// event conservation through front-end/FIFO/I2S/MCU, SPI runtime
// reconfiguration, power accounting plausibility, protocol compliance, and
// agreement between the cycle-level DES and the algorithmic model.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/error.hpp"
#include "core/scenario.hpp"
#include "gen/sources.hpp"
#include "spi/spi.hpp"

namespace aetr::core {
namespace {

using namespace time_literals;

InterfaceConfig fast_batch_config() {
  InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 32;
  return cfg;
}

// File-local shorthand: run a stream through a default scenario wrapping
// the given interface config.
RunResult run_stream(const InterfaceConfig& cfg,
                     const aer::EventStream& events) {
  ScenarioConfig sc;
  sc.interface = cfg;
  return run_scenario(sc, events);
}

TEST(EndToEnd, EveryEventReachesTheMcu) {
  gen::PoissonSource src{50e3, 128, 1};
  const auto events = gen::take(src, 2000);
  const auto r = run_stream(fast_batch_config(), events);
  EXPECT_EQ(r.events_in, 2000u);
  EXPECT_EQ(r.handshakes, 2000u);
  EXPECT_EQ(r.words_out, 2000u);
  EXPECT_EQ(r.decoded.size(), 2000u);
  EXPECT_EQ(r.fifo_overflows, 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

TEST(EndToEnd, AddressesSurviveTheFullPath) {
  gen::RegularSource src{20_us, 100};
  const auto events = gen::take(src, 300);
  const auto r = run_stream(fast_batch_config(), events);
  ASSERT_EQ(r.decoded.size(), 300u);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(r.decoded[i].address, events[i].address);
  }
}

TEST(EndToEnd, ReconstructedTimesTrackTruth) {
  gen::PoissonSource src{20e3, 128, 3};
  const auto events = gen::take(src, 1000);
  const auto r = run_stream(fast_batch_config(), events);
  ASSERT_EQ(r.decoded.size(), 1000u);
  // Compare reconstructed vs true *spans* between far-apart events: the
  // cumulative drift over the active region stays within the error bound.
  const Time true_span = r.records.back().request.time -
                         r.records.front().request.time;
  const Time recon_span = r.decoded.back().reconstructed_time -
                          r.decoded.front().reconstructed_time;
  const double rel =
      std::abs((recon_span - true_span).to_sec()) / true_span.to_sec();
  EXPECT_LT(rel, 0.05);
}

TEST(EndToEnd, CaviarCompliantAtFullSamplingRate) {
  // Paper §5: the 15 MHz base sampling comfortably meets the CAVIAR 700 ns
  // handshake bound ("more than enough"). That claim is about the undivided
  // clock, so check it in naive mode at the paper's peak rate.
  InterfaceConfig cfg = fast_batch_config();
  cfg.clock.divide_enabled = false;
  cfg.clock.shutdown_enabled = false;
  gen::PoissonSource src{550e3, 128, 5, Time::ns(130.0)};
  const auto events = gen::take(src, 3000);
  const auto r = run_stream(cfg, events);
  EXPECT_EQ(r.caviar_violations, 0u);
  EXPECT_EQ(r.events_in, r.words_out);
}

TEST(EndToEnd, DividedClockStretchesSparseHandshakes) {
  // Deviation the paper does not discuss: once the clock has divided, a
  // late event is synchronised at the slow period, so its handshake can
  // exceed the CAVIAR bound. We document (and pin) this behaviour.
  gen::RegularSource src{1_ms, 128};  // 1 kevt/s: deep division each time
  const auto events = gen::take(src, 50);
  const auto r = run_stream(fast_batch_config(), events);
  EXPECT_GT(r.caviar_violations, 0u);
  EXPECT_EQ(r.events_in, r.words_out);  // still no data loss
}

TEST(EndToEnd, TimestampErrorWithinBoundActiveRegion) {
  gen::PoissonSource src{50e3, 128, 7, Time::ns(130.0)};
  const auto events = gen::take(src, 4000);
  const auto r = run_stream(fast_batch_config(), events);
  // 2-FF sync widens the ideal bound; stay within ~3x of 2/theta.
  EXPECT_LT(r.error.mean_rel_error(),
            3.2 * analysis::analytic_error_bound(64));
}

TEST(EndToEnd, DesAgreesWithAlgorithmicModel) {
  // The cycle-level interface and the pure model quantise identically: run
  // the same Poisson process through both and compare mean errors.
  const double rate = 30e3;
  gen::PoissonSource src{rate, 128, 11, Time::ns(130.0)};
  const auto events = gen::take(src, 3000);
  const auto r = run_stream(fast_batch_config(), events);

  analysis::SweepOptions opt;
  opt.n_events = 3000;
  opt.seed = 11;
  opt.sync_edges = 2;
  const auto model =
      analysis::sweep_error(clockgen::ScheduleConfig{}, rate, opt);
  EXPECT_NEAR(r.error.mean_rel_error(), model.mean_rel_error(),
              0.4 * model.mean_rel_error());
}

TEST(EndToEnd, SaturationAtVeryLowRate) {
  gen::PoissonSource src{50.0, 128, 13};
  const auto events = gen::take(src, 60);
  const auto r = run_stream(fast_batch_config(), events);
  // Mean interval 20 ms >> awake span 2.2 ms: nearly all saturated.
  EXPECT_GT(r.error.frac_saturated(), 0.8);
  EXPECT_GT(r.activity.wakeups, 40u);
}

TEST(EndToEnd, PowerOrderingDividedVsNaive) {
  gen::LfsrRateSource make_src{5e3, Frequency::mhz(30.0), 128, 0xACE1,
                               0x1234};
  const auto events = gen::take(make_src, 800);

  InterfaceConfig divided = fast_batch_config();
  InterfaceConfig naive = fast_batch_config();
  naive.clock.divide_enabled = false;
  naive.clock.shutdown_enabled = false;

  const auto r_div = run_stream(divided, events);
  const auto r_naive = run_stream(naive, events);
  // Paper Fig. 8: division+shutdown always at or below the naive baseline;
  // at a few kevt/s the saving is large.
  EXPECT_LT(r_div.average_power_w, 0.7 * r_naive.average_power_w);
  EXPECT_NEAR(r_naive.average_power_w, 4.5e-3, 0.4e-3);
}

TEST(EndToEnd, FifoOverflowUnderSustainedOverdrive) {
  // Sustained input above the I2S drain rate must overflow the 9.2 kB
  // buffer and drop words (documented behaviour, counted not hidden).
  InterfaceConfig cfg = fast_batch_config();
  cfg.i2s.sck = Frequency::mhz(1.0);  // ~31 kwords/s drain
  gen::PoissonSource src{300e3, 128, 17, Time::ns(200.0)};
  const auto events = gen::take(src, 12000);
  const auto r = run_stream(cfg, events);
  EXPECT_GT(r.fifo_overflows, 0u);
  EXPECT_EQ(r.words_out + r.fifo_overflows, r.events_in);
}

TEST(EndToEnd, BatchingGroupsWords) {
  InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 64;
  gen::PoissonSource src{100e3, 128, 19};
  const auto events = gen::take(src, 640);
  const auto r = run_stream(cfg, events);
  EXPECT_EQ(r.words_out, 640u);
  // ~10 batches of 64 (plus the final flush).
  EXPECT_GE(r.batches, 5u);
  EXPECT_LE(r.batches, 20u);
}

TEST(EndToEnd, SpiReconfiguresThetaDivAtRuntime) {
  sim::Scheduler sched;
  AerToI2sInterface iface{sched};
  spi::SpiMaster master{sched, iface.spi()};
  master.write(spi::Reg::kThetaDiv, 16);
  master.write(spi::Reg::kNDiv, 5);
  std::uint8_t theta_read = 0;
  master.read(spi::Reg::kThetaDiv, [&](std::uint8_t v) { theta_read = v; });
  sched.run();
  EXPECT_EQ(iface.clock_generator().config().theta_div, 16u);
  EXPECT_EQ(iface.clock_generator().config().n_div, 5u);
  EXPECT_EQ(theta_read, 16);
}

TEST(EndToEnd, SpiBatchThresholdSixteenBit) {
  sim::Scheduler sched;
  AerToI2sInterface iface{sched};
  spi::SpiMaster master{sched, iface.spi()};
  master.write(spi::Reg::kBatchHi, 0x04);  // 0x400 = 1024
  master.write(spi::Reg::kBatchLo, 0x80);  // 0x480 = 1152
  sched.run();
  EXPECT_EQ(iface.fifo().config().batch_threshold, 0x480u);
}

TEST(EndToEnd, SpiStatusReflectsClockState) {
  sim::Scheduler sched;
  AerToI2sInterface iface{sched};
  spi::SpiMaster master{sched, iface.spi()};
  // Let the schedule expire: the clock sleeps, STATUS bit1 sets.
  sched.run_until(iface.saturation_span() * 2);
  std::uint8_t status = 0;
  master.read(spi::Reg::kStatus, [&](std::uint8_t v) { status = v; });
  sched.run();
  EXPECT_TRUE(status & 0x02);
}

TEST(EndToEnd, SpiCtrlTogglesNaiveMode) {
  sim::Scheduler sched;
  AerToI2sInterface iface{sched};
  spi::SpiMaster master{sched, iface.spi()};
  master.write(spi::Reg::kCtrl, 0x00);  // divide off, shutdown off
  sched.run();
  EXPECT_FALSE(iface.clock_generator().config().divide_enabled);
  EXPECT_FALSE(iface.clock_generator().config().shutdown_enabled);
  sched.run_until(1_sec);
  EXPECT_FALSE(iface.clock_generator().asleep());
}

TEST(EndToEnd, StrictProtocolRunStaysClean) {
  ScenarioConfig sc;
  sc.interface = fast_batch_config();
  sc.strict_protocol = true;  // throws on any 4-phase violation
  gen::BurstSource src{80e3, 5_ms, 20_ms, 128, 23};
  const auto events = gen::take(src, 1500);
  const auto r = run_scenario(sc, events);
  EXPECT_EQ(r.events_in, r.words_out);
}

TEST(EndToEnd, ActivityWindowsAreConsistent) {
  gen::PoissonSource src{10e3, 128, 29};
  const auto events = gen::take(src, 500);
  const auto r = run_stream(fast_batch_config(), events);
  EXPECT_GT(r.sim_end, events.back().time);
  EXPECT_EQ(r.activity.window, r.sim_end);
  EXPECT_LE(r.activity.osc_awake, r.activity.window);
  EXPECT_EQ(r.activity.events, 500u);
  EXPECT_EQ(r.activity.fifo_writes, 500u);
  EXPECT_EQ(r.activity.fifo_reads, 500u);
  EXPECT_EQ(r.activity.i2s_bits, 500u * 32u);
}

}  // namespace
}  // namespace aetr::core
