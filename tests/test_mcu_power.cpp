// Tests for the MCU power model.
#include <gtest/gtest.h>

#include "mcu/power.hpp"

namespace aetr::mcu {
namespace {

using namespace time_literals;

McuDuty duty(Time window, std::uint64_t words, std::uint64_t batches) {
  return McuDuty{window, words, batches};
}

TEST(McuPower, IdleBatchModeSitsAtStopPower) {
  const auto e = batch_mcu_energy(duty(1_sec, 0, 0));
  EXPECT_NEAR(e.average_power_w, 3.6e-6, 1e-9);
  EXPECT_DOUBLE_EQ(e.duty, 0.0);
}

TEST(McuPower, AlwaysOnPaysRunPowerRegardless) {
  const auto idle = always_on_mcu_energy(duty(1_sec, 0, 0));
  const auto busy = always_on_mcu_energy(duty(1_sec, 100000, 100));
  EXPECT_DOUBLE_EQ(idle.average_power_w, 8e-3);
  EXPECT_DOUBLE_EQ(busy.average_power_w, 8e-3);
  EXPECT_DOUBLE_EQ(idle.duty, 1.0);
}

TEST(McuPower, ActiveTimeScalesWithWordsAndBatches) {
  // 80000 words * 200 cyc / 80 MHz = 0.2 s decode; 10 batches * 10 us wake.
  const auto e = batch_mcu_energy(duty(1_sec, 80000, 10));
  EXPECT_NEAR(e.active_sec, 0.2 + 1e-4, 1e-6);
  EXPECT_NEAR(e.duty, 0.2, 0.01);
  // Energy: run * active + stop * rest + wake per batch.
  EXPECT_NEAR(e.energy_j, 8e-3 * 0.2001 + 3.6e-6 * 0.7999 + 10 * 0.2e-6,
              1e-5);
}

TEST(McuPower, ManySmallBatchesCostMoreThanFewLarge) {
  const auto many = batch_mcu_energy(duty(1_sec, 10000, 1000));
  const auto few = batch_mcu_energy(duty(1_sec, 10000, 10));
  EXPECT_GT(many.energy_j, few.energy_j);
}

TEST(McuPower, BatchBeatsAlwaysOnAtLowRates) {
  const auto batch = batch_mcu_energy(duty(1_sec, 1000, 4));
  const auto on = always_on_mcu_energy(duty(1_sec, 1000, 4));
  EXPECT_LT(batch.average_power_w, on.average_power_w / 100.0);
}

TEST(McuPower, ActiveTimeClampsToWindow) {
  // Overload: decode time exceeds the window; duty saturates at 1.
  const auto e = batch_mcu_energy(duty(1_ms, 10'000'000, 1));
  EXPECT_DOUBLE_EQ(e.duty, 1.0);
  EXPECT_NEAR(e.average_power_w, 8e-3 + 0.2e-6 / 1e-3, 1e-6);
}

TEST(McuPower, EmptyWindowIsZero) {
  const auto e = batch_mcu_energy(duty(Time::zero(), 0, 0));
  EXPECT_DOUBLE_EQ(e.energy_j, 0.0);
  EXPECT_DOUBLE_EQ(e.average_power_w, 0.0);
}

}  // namespace
}  // namespace aetr::mcu
