// Bit-exactness of the idle-skip fast path (core/fast_path.hpp): every
// RunResult field must be byte-identical with session.fast_forward on vs off,
// across rates that exercise the shutdown ladder, FIFO overflow, both
// overflow policies, metastability, and the no-MCU/no-flush corners. Also
// covers the fault-plan eligibility rule: a plan whose probabilities are
// all zero must not force the reference path (satellite of ISSUE 6).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "buffer/fifo.hpp"
#include "core/fast_path.hpp"
#include "core/scenario.hpp"
#include "fault/fault_plan.hpp"
#include "gen/sources.hpp"
#include "opt/optimizer.hpp"
#include "sweeps/figures.hpp"

namespace aetr::core {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Compare every observable RunResult field bit-exactly.
void expect_identical(const RunResult& f, const RunResult& r) {
  EXPECT_EQ(f.events_in, r.events_in);
  EXPECT_EQ(f.words_out, r.words_out);
  EXPECT_EQ(f.fifo_overflows, r.fifo_overflows);
  EXPECT_EQ(f.batches, r.batches);
  EXPECT_EQ(f.handshakes, r.handshakes);
  EXPECT_EQ(f.caviar_violations, r.caviar_violations);
  EXPECT_EQ(f.protocol_violations, r.protocol_violations);
  EXPECT_EQ(f.sim_end, r.sim_end);
  EXPECT_EQ(bits(f.average_power_w), bits(r.average_power_w));
  EXPECT_EQ(f.activity.osc_awake, r.activity.osc_awake);
  EXPECT_EQ(f.activity.sampling_cycles, r.activity.sampling_cycles);
  EXPECT_EQ(f.activity.wakeups, r.activity.wakeups);
  EXPECT_EQ(f.activity.window, r.activity.window);
  EXPECT_EQ(f.activity.fifo_writes, r.activity.fifo_writes);
  EXPECT_EQ(f.activity.fifo_reads, r.activity.fifo_reads);
  EXPECT_EQ(f.activity.i2s_bits, r.activity.i2s_bits);
  EXPECT_EQ(f.activity.events, r.activity.events);
  EXPECT_EQ(bits(f.error.abs_err_sec), bits(r.error.abs_err_sec));
  EXPECT_EQ(f.error.events, r.error.events);
  EXPECT_EQ(f.error.saturated, r.error.saturated);
  ASSERT_EQ(f.records.size(), r.records.size());
  for (std::size_t i = 0; i < f.records.size(); ++i) {
    EXPECT_EQ(f.records[i].word.raw(), r.records[i].word.raw()) << i;
    EXPECT_EQ(f.records[i].sample_edge, r.records[i].sample_edge) << i;
    EXPECT_EQ(f.records[i].request.time, r.records[i].request.time) << i;
    EXPECT_EQ(f.records[i].request.address, r.records[i].request.address) << i;
  }
  ASSERT_EQ(f.decoded.size(), r.decoded.size());
  for (std::size_t i = 0; i < f.decoded.size(); ++i) {
    EXPECT_EQ(f.decoded[i].reconstructed_time,
              r.decoded[i].reconstructed_time) << i;
    EXPECT_EQ(f.decoded[i].address, r.decoded[i].address) << i;
  }
  ASSERT_EQ(f.delivery_latency_sec.size(), r.delivery_latency_sec.size());
  for (std::size_t i = 0; i < f.delivery_latency_sec.size(); ++i) {
    EXPECT_EQ(bits(f.delivery_latency_sec[i]),
              bits(r.delivery_latency_sec[i])) << i;
  }
}

RunResult run_with(ScenarioConfig sc, const aer::EventStream& events,
                   bool fast_forward) {
  sc.fast_forward = fast_forward;
  return run_scenario(sc, events);
}

TEST(FastPathScenario, BitIdenticalAcrossRatesAndCorners) {
  for (const double rate : {500.0, 5e4, 8e5}) {
    for (const unsigned variant : {0u, 1u, 2u, 3u}) {
      SCOPED_TRACE(testing::Message() << "rate=" << rate
                                      << " variant=" << variant);
      ScenarioConfig base;
      base.interface.fifo.batch_threshold = variant >= 2 ? 16u : 64u;
      if (variant >= 2) base.interface.fifo.capacity_words = 24;
      if (variant == 3) {
        base.interface.fifo.overflow_policy =
            buffer::OverflowPolicy::kDropOldest;
        base.final_flush = false;
        base.attach_mcu = false;
      }
      base.interface.front_end.metastability_prob =
          (variant & 1u) != 0 ? 0.01 : 0.0;
      base.cooldown = Time::ms(2.0);
      gen::PoissonSource src{rate, 64, 42};
      const auto events = gen::take(src, 1500);

      ASSERT_TRUE(fast_path_eligible(base, /*telemetry_active=*/false));
      expect_identical(run_with(base, events, true),
                       run_with(base, events, false));
    }
  }
}

TEST(FastPathScenario, EmptyStreamBitIdentical) {
  ScenarioConfig sc;
  sc.cooldown = Time::sec(0.5);
  expect_identical(run_with(sc, {}, true), run_with(sc, {}, false));
}

TEST(FastPathScenario, ZeroProbabilityFaultPlanStaysOnFastPath) {
  // A plan with sites configured but every probability zero injects
  // nothing; FaultPlan::any() is probability-based, so it must not force
  // the reference path...
  fault::FaultPlan zero;
  zero.aer.drop_req_prob = 0.0;
  zero.aer.addr_bit_flip_prob = 0.0;
  zero.fifo.cell_bit_flip_prob = 0.0;
  ASSERT_FALSE(zero.any());

  ScenarioConfig with_zero_plan;
  with_zero_plan.faults = zero;
  ASSERT_TRUE(fast_path_eligible(with_zero_plan, false));

  // ...and its fast-forward run must be byte-identical to the fault-free
  // fast-forward baseline (and to both reference runs).
  gen::PoissonSource src{5e4, 64, 7};
  const auto events = gen::take(src, 1200);
  ScenarioConfig fault_free;
  const auto baseline = run_with(fault_free, events, true);
  expect_identical(run_with(with_zero_plan, events, true), baseline);
  expect_identical(run_with(with_zero_plan, events, false), baseline);
}

TEST(FastPathScenario, ActiveFaultPlanFallsBackToReference) {
  fault::FaultPlan plan = fault::scaled_plan(0.5, 99);
  ScenarioConfig sc;
  sc.faults = plan;
  EXPECT_FALSE(fast_path_eligible(sc, false));
  // Borrowed/owned telemetry and drain timeouts also disqualify.
  ScenarioConfig timed;
  timed.interface.drain_timeout = Time::us(50.0);
  EXPECT_FALSE(fast_path_eligible(timed, false));
  ScenarioConfig plain;
  EXPECT_FALSE(fast_path_eligible(plain, /*telemetry_active=*/true));
  plain.fast_forward = false;
  EXPECT_FALSE(fast_path_eligible(plain, false));
}

std::string slurp(const std::string& path) {
  std::ifstream f{path};
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(FastPathSweeps, QuickFigureCsvsByteIdenticalOnVsOff) {
  // The acceptance bar of ISSUE 6: quick fig6/fig8/faults sweeps must
  // produce byte-identical CSV artifacts whether the fast path is engaged
  // or not (the CI fastpath-determinism job re-checks this via the CLI).
  struct Figure {
    const char* name;
    sweeps::FigureResult (*run)(const sweeps::FigureOptions&);
  };
  const Figure figures[] = {{"fig6", sweeps::run_fig6},
                            {"fig8", sweeps::run_fig8},
                            {"faults", sweeps::run_faults}};
  const auto dir =
      std::filesystem::temp_directory_path() / "aetr_fastpath_sweeps";
  std::filesystem::remove_all(dir);
  for (const auto& fig : figures) {
    SCOPED_TRACE(fig.name);
    sweeps::FigureOptions on;
    on.jobs = 1;
    on.quick = true;
    on.fast_forward = true;
    on.out_dir = (dir / fig.name / "on").string();
    sweeps::FigureOptions off = on;
    off.fast_forward = false;
    off.out_dir = (dir / fig.name / "off").string();
    const auto r_on = fig.run(on);
    const auto r_off = fig.run(off);
    EXPECT_EQ(slurp(r_on.csv_path), slurp(r_off.csv_path));
    EXPECT_EQ(slurp(r_on.points_csv_path), slurp(r_off.points_csv_path));
    EXPECT_FALSE(slurp(r_on.csv_path).empty());
  }
  std::filesystem::remove_all(dir);
}

TEST(FastPathSweeps, QuickOptArtifactsByteIdenticalOnVsOff) {
  const auto dir =
      std::filesystem::temp_directory_path() / "aetr_fastpath_opt";
  std::filesystem::remove_all(dir);
  opt::OptOptions options;
  options.jobs = 1;
  options.budget = 8;
  options.workload.n_events = 600;
  const auto space = opt::SearchSpace::default_space();

  ScenarioConfig base_on;
  options.out_dir = (dir / "on").string();
  const auto on = opt::optimize(space, base_on, options);

  ScenarioConfig base_off;
  base_off.fast_forward = false;
  options.out_dir = (dir / "off").string();
  const auto off = opt::optimize(space, base_off, options);

  ASSERT_EQ(on.artifacts.size(), off.artifacts.size());
  for (std::size_t i = 0; i < on.artifacts.size(); ++i) {
    EXPECT_EQ(slurp(on.artifacts[i]), slurp(off.artifacts[i]))
        << on.artifacts[i] << " vs " << off.artifacts[i];
    EXPECT_FALSE(slurp(on.artifacts[i]).empty()) << on.artifacts[i];
  }
  EXPECT_EQ(on.hypervolume, off.hypervolume);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace aetr::core
