// Proves the event kernel's hot path is allocation-free: after warm-up, a
// schedule/dispatch cycle with the library's typical small captures (a
// component pointer plus a couple of ints) must never touch the global
// allocator. Global operator new/delete are replaced in this binary with
// counting versions.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/scheduler.hpp"
#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace {
std::uint64_t g_allocs = 0;  // test binary is single-threaded
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) & ~(a - 1);  // aligned_alloc contract
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace aetr::sim {
namespace {

using namespace time_literals;

struct FakeComponent {
  std::uint64_t hits{0};
  int last_arg{0};
  void on_event(int arg) {
    ++hits;
    last_arg = arg;
  }
};

// The claimed common case must be inline-storable by construction.
static_assert(Scheduler::Callback::stores_inline<
              decltype([p = static_cast<FakeComponent*>(nullptr),
                        arg = 0] { p->on_event(arg); })>());

TEST(SchedulerAlloc, SteadyStateScheduleRunIsAllocationFree) {
  Scheduler s;
  FakeComponent comp;
  const auto round = [&](int n) {
    for (int i = 0; i < n; ++i) {
      s.schedule_after(Time::ns(i + 1), [&comp, i] { comp.on_event(i); });
    }
    s.run();
  };
  round(256);  // warm-up: grows the slot pool and free list once
  const std::uint64_t before = g_allocs;
  for (int r = 0; r < 10; ++r) round(256);
  const std::uint64_t after = g_allocs;
  EXPECT_EQ(after, before) << "schedule/dispatch hot path allocated";
  EXPECT_EQ(comp.hits, 256u * 11u);
}

TEST(SchedulerAlloc, SteadyStateScheduleCancelIsAllocationFree) {
  Scheduler s;
  FakeComponent comp;
  // The pausable-clock pattern: schedule the next edge, cancel it on pause.
  const auto round = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const EventId id =
          s.schedule_after(Time::ns(i + 1), [&comp, i] { comp.on_event(i); });
      ASSERT_TRUE(s.cancel(id));
    }
    s.run();
  };
  round(256);
  const std::uint64_t before = g_allocs;
  for (int r = 0; r < 10; ++r) round(256);
  EXPECT_EQ(g_allocs, before) << "schedule/cancel hot path allocated";
  EXPECT_EQ(comp.hits, 0u);
}

TEST(SchedulerAlloc, SelfReschedulingClockIsAllocationFree) {
  Scheduler s;
  std::uint64_t edges = 0;
  struct Clock {
    Scheduler& s;
    std::uint64_t& edges;
    std::uint64_t remaining;
    void edge() {
      ++edges;
      if (--remaining > 0) {
        s.schedule_after(Time::ns(10), [this] { edge(); });
      }
    }
  };
  Clock warm{s, edges, 64};
  s.schedule_after(Time::ns(10), [&warm] { warm.edge(); });
  s.run();
  const std::uint64_t before = g_allocs;
  Clock clk{s, edges, 4096};
  s.schedule_after(Time::ns(10), [&clk] { clk.edge(); });
  s.run();
  EXPECT_EQ(g_allocs, before) << "self-rescheduling clock allocated per edge";
  EXPECT_EQ(edges, 64u + 4096u);
}

TEST(SchedulerAlloc, OversizedCapturesStillWorkViaHeapFallback) {
  Scheduler s;
  struct Big {
    char payload[96];
  };
  Big big{};
  big.payload[0] = 42;
  char seen = 0;
  static_assert(!Scheduler::Callback::stores_inline<
                decltype([big, &seen] { seen = big.payload[0]; })>());
  s.schedule_after(1_ns, [big, &seen] { seen = big.payload[0]; });
  const std::uint64_t before = g_allocs;
  s.run();
  EXPECT_EQ(seen, 42);
  EXPECT_GE(before, 1u);  // the oversized capture did allocate (by design)
}

}  // namespace
}  // namespace aetr::sim
