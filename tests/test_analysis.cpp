// Tests for the error-analysis module (the paper's Matlab-model equivalent):
// sweep behaviour across the three §5.1 regions, the analytic bound, and
// agreement between the algorithmic model and record scoring.
#include <gtest/gtest.h>

#include "analysis/error.hpp"

namespace aetr::analysis {
namespace {

using namespace time_literals;

clockgen::ScheduleConfig paper_cfg(std::uint32_t theta) {
  clockgen::ScheduleConfig cfg;
  cfg.tmin = Time::ns(1e3 / 15.0);
  cfg.theta_div = theta;
  cfg.n_div = 8;
  return cfg;
}

TEST(Sweep, ActiveRegionErrorBelowBound) {
  // Paper: for theta_div = 64 the average error stays "significantly below
  // the analytic 3 % bound" across the active region. That statement holds
  // for the time-weighted error; the per-event mean sits near the bound.
  const auto cfg = paper_cfg(64);
  for (double rate : {2e3, 10e3, 50e3, 200e3}) {
    const auto stats = sweep_error(cfg, rate, {.n_events = 3000, .seed = 3});
    EXPECT_LT(stats.weighted_rel_error(), 0.5 * analytic_error_bound(64))
        << "rate " << rate;
    EXPECT_LT(stats.mean_rel_error(), 1.2 * analytic_error_bound(64))
        << "rate " << rate;
    EXPECT_LT(stats.frac_saturated(), 0.05) << "rate " << rate;
  }
}

TEST(Sweep, InactiveRegionDominatedBySaturation) {
  const auto cfg = paper_cfg(64);
  const auto stats = sweep_error(cfg, 100.0, {.n_events = 1500, .seed = 5});
  // Awake span ~2.2 ms vs 10 ms mean interval: most tags saturate and the
  // error is large (paper: "the error is high as ... the interface is
  // essentially always off").
  EXPECT_GT(stats.frac_saturated(), 0.5);
  EXPECT_GT(stats.mean_rel_error(), 0.3);
}

TEST(Sweep, HighActivityErrorRisesAgain) {
  const auto cfg = paper_cfg(64);
  const auto mid = sweep_error(cfg, 100e3, {.n_events = 4000, .seed = 7});
  const auto high = sweep_error(cfg, 2e6, {.n_events = 4000, .seed = 7});
  // Near-Nyquist intervals push the error up at very high rates.
  EXPECT_GT(high.mean_rel_error(), 2.0 * mid.mean_rel_error());
  EXPECT_GT(high.sub_nyquist, high.events / 10);
}

TEST(Sweep, LargerThetaIsMoreAccurate) {
  // Paper Fig. 7b: "increasing theta_div improves overall accuracy".
  const double rate = 30e3;
  const auto e16 =
      sweep_error(paper_cfg(16), rate, {.n_events = 6000, .seed = 11});
  const auto e64 =
      sweep_error(paper_cfg(64), rate, {.n_events = 6000, .seed = 11});
  EXPECT_LT(e64.mean_rel_error(), e16.mean_rel_error());
}

TEST(Sweep, AccuracyAbove97PercentInActiveRegion) {
  // The abstract's headline: "accuracy above 97 % on timestamps".
  const auto cfg = paper_cfg(64);
  for (double rate : {5e3, 20e3, 100e3}) {
    const auto stats = sweep_error(cfg, rate, {.n_events = 5000, .seed = 13});
    EXPECT_GT(1.0 - stats.weighted_rel_error(), 0.97) << "rate " << rate;
  }
}

TEST(Sweep, CurveHasExpectedPoints) {
  const auto curve = sweep_error_curve(paper_cfg(32), 100.0, 2e6, 9,
                                       {.n_events = 300, .seed = 1});
  ASSERT_EQ(curve.size(), 9u);
  EXPECT_NEAR(curve.front().rate_hz, 100.0, 1e-6);
  EXPECT_NEAR(curve.back().rate_hz, 2e6, 1.0);
  // Log spacing: constant ratio between adjacent rates.
  const double ratio = curve[1].rate_hz / curve[0].rate_hz;
  for (std::size_t i = 2; i < curve.size(); ++i) {
    EXPECT_NEAR(curve[i].rate_hz / curve[i - 1].rate_hz, ratio, 1e-6);
  }
}

TEST(Regions, ClassificationMatchesPaperBoundaries) {
  const auto cfg = paper_cfg(64);
  EXPECT_EQ(classify_region(cfg, 100.0), Region::kInactive);
  EXPECT_EQ(classify_region(cfg, 10e3), Region::kActive);
  EXPECT_EQ(classify_region(cfg, 100e3), Region::kActive);
  // Paper: high-activity above ~550 kevt/s for theta_div = 64.
  EXPECT_EQ(classify_region(cfg, 450e3), Region::kActive);
  EXPECT_EQ(classify_region(cfg, 700e3), Region::kHighActivity);
}

TEST(Regions, NaiveModeAlwaysHighActivity) {
  auto cfg = paper_cfg(64);
  cfg.divide_enabled = false;
  EXPECT_EQ(classify_region(cfg, 100.0), Region::kHighActivity);
}

TEST(Regions, Names) {
  EXPECT_STREQ(to_string(Region::kInactive), "inactive");
  EXPECT_STREQ(to_string(Region::kActive), "active");
  EXPECT_STREQ(to_string(Region::kHighActivity), "high-activity");
}

TEST(Bound, MatchesPaperThreePercent) {
  EXPECT_NEAR(analytic_error_bound(64), 0.03125, 1e-9);
  EXPECT_NEAR(analytic_error_bound(32), 0.0625, 1e-9);
}

TEST(Sweep, DeterministicPerSeed) {
  const auto cfg = paper_cfg(32);
  const auto a = sweep_error(cfg, 10e3, {.n_events = 500, .seed = 21});
  const auto b = sweep_error(cfg, 10e3, {.n_events = 500, .seed = 21});
  EXPECT_DOUBLE_EQ(a.mean_rel_error(), b.mean_rel_error());
  EXPECT_EQ(a.saturated, b.saturated);
}

TEST(Sweep, SyncEdgesInflateErrorBoundedly) {
  // The 2-FF synchroniser delays both interval endpoints by two *current*
  // sampling periods. When consecutive intervals land at different division
  // levels the delays no longer cancel, so the effective bound grows from
  // ~2/theta to ~(2 + 2*sync)/theta — still bounded, and still small.
  const auto cfg = paper_cfg(64);
  const auto plain =
      sweep_error(cfg, 20e3, {.n_events = 4000, .seed = 31, .sync_edges = 0});
  const auto synced =
      sweep_error(cfg, 20e3, {.n_events = 4000, .seed = 31, .sync_edges = 2});
  EXPECT_GT(synced.mean_rel_error(), plain.mean_rel_error());
  EXPECT_LT(synced.mean_rel_error(), 3.2 * analytic_error_bound(64));
}

}  // namespace
}  // namespace aetr::analysis
