// Tests for the GALS pausible-clock port: grant phasing, clock stretching,
// no-short-pulse guarantee, mutex contention, and queued ports.
#include <gtest/gtest.h>

#include <vector>

#include "clockgen/pausible.hpp"
#include "sim/scheduler.hpp"

namespace aetr::clockgen {
namespace {

using namespace time_literals;

PausibleClockConfig cfg_100ns() {
  PausibleClockConfig cfg;
  cfg.period = 100_ns;  // rising at 100, 200, ...; low phase [x+50, x+100)
  cfg.hold = 20_ns;
  return cfg;
}

TEST(Pausible, FreeRunsWithoutRequests) {
  sim::Scheduler sched;
  PausibleClock clk{sched, cfg_100ns()};
  std::vector<Time> edges;
  clk.line().on_rising([&](Time t, Time) { edges.push_back(t); });
  clk.start();
  sched.run_until(550_ns);
  ASSERT_EQ(edges.size(), 5u);
  EXPECT_EQ(edges[0], 100_ns);
  EXPECT_EQ(edges[4], 500_ns);
  EXPECT_EQ(clk.total_stretch(), 0_ns);
}

TEST(Pausible, LowPhaseRequestGrantsImmediately) {
  sim::Scheduler sched;
  PausibleClock clk{sched, cfg_100ns()};
  clk.start();
  Time granted;
  sched.schedule_at(160_ns, [&] {  // low phase of cycle [100, 200)
    clk.request([&](Time g) { granted = g; });
  });
  sched.run_until(1_us);
  EXPECT_EQ(granted, 160_ns);
  EXPECT_EQ(clk.grants(), 1u);
}

TEST(Pausible, HighPhaseRequestWaitsForFallingEdge) {
  sim::Scheduler sched;
  PausibleClock clk{sched, cfg_100ns()};
  clk.start();
  Time granted;
  sched.schedule_at(120_ns, [&] {  // high phase [100, 150)
    clk.request([&](Time g) { granted = g; });
  });
  sched.run_until(1_us);
  EXPECT_EQ(granted, 150_ns);  // the falling edge
}

TEST(Pausible, GrantNearEdgeStretchesTheClock) {
  sim::Scheduler sched;
  PausibleClock clk{sched, cfg_100ns()};
  std::vector<Time> edges;
  clk.line().on_rising([&](Time t, Time) { edges.push_back(t); });
  clk.start();
  sched.schedule_at(190_ns, [&] {  // 10 ns before the rising edge at 200
    clk.request([](Time) {});
  });
  sched.run_until(500_ns);
  // The edge nominally at 200 ns is postponed to grant + hold = 210 ns;
  // subsequent edges follow from the stretched one.
  ASSERT_GE(edges.size(), 3u);
  EXPECT_EQ(edges[0], 100_ns);
  EXPECT_EQ(edges[1], 210_ns);
  EXPECT_EQ(edges[2], 310_ns);
  EXPECT_EQ(clk.total_stretch(), 10_ns);
}

TEST(Pausible, NoShortHighPulseEver) {
  // Property: whatever the request pattern, consecutive rising edges are
  // never closer than the nominal period (stretching only lengthens).
  sim::Scheduler sched;
  PausibleClockConfig cfg = cfg_100ns();
  cfg.mutex_window = 1_ns;
  PausibleClock clk{sched, cfg};
  std::vector<Time> edges;
  clk.line().on_rising([&](Time t, Time) { edges.push_back(t); });
  clk.start();
  for (int i = 0; i < 200; ++i) {
    sched.schedule_at(Time::ns(37.0 * i + 53.0),
                      [&] { clk.request([](Time) {}); });
  }
  sched.run_until(10_us);
  ASSERT_GT(edges.size(), 10u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i] - edges[i - 1], 100_ns);
  }
}

TEST(Pausible, GrantAlwaysInSafeWindow) {
  // Property: a grant never lands inside the high phase of the clock.
  sim::Scheduler sched;
  PausibleClock clk{sched, cfg_100ns()};
  std::vector<Time> rising;
  std::vector<Time> grants;
  clk.line().on_rising([&](Time t, Time) { rising.push_back(t); });
  clk.start();
  for (int i = 0; i < 100; ++i) {
    sched.schedule_at(Time::ns(61.0 * i + 11.0),
                      [&] { clk.request([&](Time g) { grants.push_back(g); }); });
  }
  sched.run_until(10_us);
  for (const Time g : grants) {
    // Find the last rising edge at or before g.
    Time last = Time::ps(-1);
    for (const Time e : rising) {
      if (e <= g) last = e;
    }
    if (last >= Time::zero()) {
      EXPECT_GE(g - last, 50_ns) << "grant inside high phase at "
                                 << g.to_string();
    }
  }
  EXPECT_EQ(grants.size(), 100u);
}

TEST(Pausible, QueuedRequestsSerialiseByHoldTime) {
  sim::Scheduler sched;
  PausibleClock clk{sched, cfg_100ns()};
  clk.start();
  std::vector<Time> grants;
  sched.schedule_at(155_ns, [&] {
    for (int i = 0; i < 3; ++i) {
      clk.request([&](Time g) { grants.push_back(g); });
    }
  });
  sched.run_until(2_us);
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(grants[0], 155_ns);
  // Each subsequent grant waits for the previous hold to release and for a
  // safe window.
  for (std::size_t i = 1; i < grants.size(); ++i) {
    EXPECT_GE(grants[i] - grants[i - 1], 20_ns);
  }
}

TEST(Pausible, ContentionCountedNearEdge) {
  sim::Scheduler sched;
  PausibleClockConfig cfg = cfg_100ns();
  cfg.mutex_window = 5_ns;
  cfg.mutex_resolution = 2_ns;
  PausibleClock clk{sched, cfg};
  clk.start();
  sched.schedule_at(197_ns, [&] { clk.request([](Time) {}); });
  sched.run_until(1_us);
  EXPECT_EQ(clk.contentions(), 1u);
  EXPECT_EQ(clk.grants(), 1u);
}

TEST(Pausible, StoppedClockGrantsFreely) {
  sim::Scheduler sched;
  PausibleClock clk{sched, cfg_100ns()};
  Time granted;
  sched.schedule_at(42_ns, [&] {
    clk.request([&](Time g) { granted = g; });
  });
  sched.run();
  EXPECT_EQ(granted, 42_ns);  // never started: always safe
}

}  // namespace
}  // namespace aetr::clockgen
