// Tests for the closed-form expected-power model, including the key
// cross-validation: the analytic curve must agree with full cycle-level
// simulation across the whole Fig. 8 rate range.
#include <gtest/gtest.h>

#include "analysis/power_curve.hpp"
#include "core/scenario.hpp"
#include "gen/sources.hpp"

namespace aetr::analysis {
namespace {

clockgen::ScheduleConfig paper_schedule(std::uint32_t theta) {
  clockgen::ScheduleConfig cfg;
  cfg.theta_div = theta;
  cfg.n_div = 8;
  return cfg;
}

TEST(PowerCurve, StaticFloorAtVanishingRate) {
  const auto est = expected_power(paper_schedule(64),
                                  power::PowerCalibration::paper(), 0.1);
  EXPECT_NEAR(est.power_w, 50e-6, 5e-6);
  EXPECT_LT(est.awake_fraction, 1e-3);
}

TEST(PowerCurve, HighRatePinsNearAnchor) {
  const auto est = expected_power(paper_schedule(64),
                                  power::PowerCalibration::paper(), 550e3);
  EXPECT_NEAR(est.power_w, 4.4e-3, 0.3e-3);
  EXPECT_NEAR(est.awake_fraction, 1.0, 1e-6);
  // Mean interval 1.8 us < first division at 4.3 us: mostly undivided.
  EXPECT_GT(est.sampling_freq_hz, 12e6);
}

TEST(PowerCurve, NaiveModeIsFlat) {
  auto cfg = paper_schedule(64);
  cfg.divide_enabled = false;
  cfg.shutdown_enabled = false;
  const auto cal = power::PowerCalibration::paper();
  const auto lo = expected_power(cfg, cal, 100.0);
  const auto hi = expected_power(cfg, cal, 550e3);
  EXPECT_NEAR(lo.sampling_freq_hz, 15e6, 0.1e6);
  EXPECT_NEAR(hi.sampling_freq_hz, 15e6, 0.1e6);
  EXPECT_GT(lo.power_w / hi.power_w, 0.9);
}

TEST(PowerCurve, MonotoneInRate) {
  const auto cal = power::PowerCalibration::paper();
  double prev = 0.0;
  for (double rate = 10.0; rate <= 1e6; rate *= 3.0) {
    const auto est = expected_power(paper_schedule(64), cal, rate);
    EXPECT_GT(est.power_w, prev) << "rate " << rate;
    prev = est.power_w;
  }
}

TEST(PowerCurve, SmallerThetaSavesMoreAtMidRates) {
  const auto cal = power::PowerCalibration::paper();
  const auto p16 = expected_power(paper_schedule(16), cal, 10e3);
  const auto p64 = expected_power(paper_schedule(64), cal, 10e3);
  EXPECT_LT(p16.power_w, p64.power_w);
}

TEST(PowerCurve, WakeupRateMatchesSaturationProbability) {
  const auto cfg = paper_schedule(64);
  const clockgen::SamplingSchedule schedule{cfg};
  const double t = schedule.awake_span().to_sec();
  const double rate = 1.0 / t;  // at the flex point: P(sat) = 1/e
  const auto est =
      expected_power(cfg, power::PowerCalibration::paper(), rate);
  EXPECT_NEAR(est.wakeups_per_sec, rate / std::numbers::e, rate * 0.01);
}

// The strong check: analytic expectation vs. full cycle-level simulation.
class PowerCurveAgreement : public ::testing::TestWithParam<double> {};

TEST_P(PowerCurveAgreement, AnalyticMatchesDes) {
  const double rate = GetParam();
  const auto cal = power::PowerCalibration::paper();
  const auto est = expected_power(paper_schedule(64), cal, rate);

  core::ScenarioConfig sc;
  sc.interface.front_end.keep_records = false;
  sc.interface.fifo.batch_threshold = 512;
  gen::PoissonSource src{rate, 128, 123};
  const auto n = static_cast<std::size_t>(
      std::clamp(rate * 0.5, 300.0, 8000.0));
  sc.cooldown = Time::ms(0.01);
  const auto r = core::run_scenario(sc, src, n);

  EXPECT_NEAR(r.average_power_w, est.power_w, 0.12 * est.power_w)
      << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Fig8Rates, PowerCurveAgreement,
                         ::testing::Values(30.0, 300.0, 3e3, 30e3, 300e3,
                                           550e3));

}  // namespace
}  // namespace aetr::analysis
