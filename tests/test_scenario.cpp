// Tests for the scenario builder and the statistical conformance of the
// stimulus generators (chi-square / KS goodness of fit).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gen/scenario.hpp"
#include "gen/sources.hpp"
#include "util/stats_tests.hpp"

namespace aetr::gen {
namespace {

using namespace time_literals;

TEST(Scenario, PhasesResolveStartsAndDuration) {
  ScenarioBuilder sb;
  sb.silence(100_ms)
      .poisson("speech", 50e3, 200_ms)
      .add("noise", PhaseKind::kLfsr, 300e3, 50_ms);
  const auto events = sb.build();
  ASSERT_EQ(sb.phases().size(), 3u);
  EXPECT_EQ(sb.phases()[0].start, Time::zero());
  EXPECT_EQ(sb.phases()[1].start, 100_ms);
  EXPECT_EQ(sb.phases()[2].start, 300_ms);
  EXPECT_EQ(sb.total_duration(), 350_ms);
  EXPECT_FALSE(events.empty());
}

TEST(Scenario, EventsConfinedToTheirPhases) {
  ScenarioBuilder sb;
  sb.silence(50_ms).poisson("a", 20e3, 100_ms).silence(50_ms);
  const auto events = sb.build();
  for (const auto& ev : events) {
    EXPECT_GE(ev.time, 50_ms);
    EXPECT_LT(ev.time, 150_ms + 1_us);  // seam adjustment tolerance
  }
  EXPECT_NEAR(static_cast<double>(events.size()), 2000.0, 150.0);
}

TEST(Scenario, StreamIsStrictlyOrdered) {
  ScenarioBuilder sb;
  sb.poisson("a", 100e3, 50_ms)
      .add("b", PhaseKind::kRegular, 50e3, 50_ms)
      .poisson("c", 200e3, 50_ms);
  const auto events = sb.build();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].time, events[i - 1].time);
  }
}

TEST(Scenario, PhaseOfLookup) {
  ScenarioBuilder sb;
  sb.silence(10_ms).poisson("x", 1e3, 10_ms);
  (void)sb.build();
  EXPECT_EQ(sb.phase_of(5_ms), 0u);
  EXPECT_EQ(sb.phase_of(15_ms), 1u);
  EXPECT_EQ(sb.phase_of(25_ms), static_cast<std::size_t>(-1));
}

TEST(Scenario, RejectsInvalidPhases) {
  ScenarioBuilder sb;
  EXPECT_THROW(sb.poisson("bad", 1e3, Time::zero()), std::invalid_argument);
  EXPECT_THROW(sb.add("bad", PhaseKind::kPoisson, 0.0, 1_ms),
               std::invalid_argument);
}

TEST(Scenario, DistinctPhaseSeedsDecorrelate) {
  ScenarioBuilder sb;
  sb.poisson("a", 10e3, 100_ms).poisson("b", 10e3, 100_ms);
  const auto events = sb.build();
  // The two phases must not replay the same addresses in the same order.
  const std::size_t half = events.size() / 2;
  int same = 0;
  for (std::size_t i = 0; i < 100 && half + i < events.size(); ++i) {
    same += events[i].address == events[half + i].address;
  }
  EXPECT_LT(same, 20);
}

// ---------------------------------------------------------------------------
// Goodness-of-fit for the generators themselves.

TEST(Goodness, PoissonIntervalsPassKsAgainstExponential) {
  PoissonSource src{10e3, 128, 99};
  const auto events = take(src, 20000);
  std::vector<double> intervals;
  for (std::size_t i = 1; i < events.size(); ++i) {
    intervals.push_back((events[i].time - events[i - 1].time).to_sec());
  }
  const double d = ks_exponential(intervals, 1e-4);
  EXPECT_LT(d, ks_critical_999(intervals.size()));
}

TEST(Goodness, PoissonAddressesUniformByChiSquare) {
  PoissonSource src{10e3, 64, 7};
  const auto events = take(src, 64000);
  std::vector<double> counts(64, 0.0);
  for (const auto& ev : events) counts[ev.address] += 1.0;
  EXPECT_LT(chi_square_uniform(counts), chi_square_critical_999(63));
}

TEST(Goodness, LfsrAddressesRoughlyUniform) {
  LfsrRateSource src{100e3, Frequency::mhz(30.0), 64, 0xACE1, 0xBEEF};
  const auto events = take(src, 64000);
  std::vector<double> counts(64, 0.0);
  for (const auto& ev : events) counts[ev.address] += 1.0;
  // An LFSR is not an RNG; allow a wider (but still bounded) statistic.
  EXPECT_LT(chi_square_uniform(counts), 4.0 * chi_square_critical_999(63));
}

TEST(Goodness, LfsrIntervalsGeometricViaChiSquare) {
  // Compare observed interval histogram (in generator-clock cycles)
  // against the geometric pmf.
  const double rate = 300e3;
  const double gen_hz = 30e6;
  LfsrRateSource src{rate, Frequency::mhz(30.0), 64, 0xACE1, 0xCAFE};
  const auto events = take(src, 50000);
  const double p = rate / gen_hz;
  const Time gen_period = Frequency::mhz(30.0).period();
  std::map<std::int64_t, double> hist;
  for (std::size_t i = 1; i < events.size(); ++i) {
    hist[(events[i].time - events[i - 1].time) / gen_period] += 1.0;
  }
  std::vector<double> observed, expected;
  const auto n = static_cast<double>(events.size() - 1);
  for (std::int64_t k = 1; k <= 300; ++k) {
    observed.push_back(hist.count(k) ? hist[k] : 0.0);
    expected.push_back(n * p * std::pow(1.0 - p, static_cast<double>(k - 1)));
  }
  EXPECT_LT(chi_square(observed, expected),
            2.0 * chi_square_critical_999(observed.size() - 1));
}

TEST(Goodness, XoshiroUniformityChiSquare) {
  Xoshiro256StarStar rng{123};
  std::vector<double> counts(100, 0.0);
  for (int i = 0; i < 200000; ++i) {
    counts[static_cast<std::size_t>(rng.uniform() * 100.0)] += 1.0;
  }
  EXPECT_LT(chi_square_uniform(counts), chi_square_critical_999(99));
}

}  // namespace
}  // namespace aetr::gen
