// Integration: bit-level I2S wire + batch framing under injected faults.
// Proves the CRC layer catches what the PHY corrupts, end to end.
#include <gtest/gtest.h>

#include <vector>

#include "i2s/framing.hpp"
#include "i2s/i2s.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace aetr::i2s {
namespace {

using aer::AetrWord;

std::vector<AetrWord> batch(std::uint16_t base, std::size_t n) {
  std::vector<AetrWord> b;
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(AetrWord::make(static_cast<std::uint16_t>(base + i),
                               static_cast<std::uint64_t>(i)));
  }
  return b;
}

/// Serialise framed words over the bit-level PHY, flipping each SD bit
/// with probability `ber`, and parse what the receiver reassembles.
struct WireRun {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_ok{0};
  std::uint64_t crc_errors{0};
  std::vector<std::vector<AetrWord>> delivered;
};

WireRun run_over_wire(const std::vector<std::vector<AetrWord>>& batches,
                      double ber, std::uint64_t seed) {
  sim::Scheduler sched;
  I2sWireSerializer tx{sched};
  I2sWireReceiver rx;
  Xoshiro256StarStar noise{seed};
  tx.on_wire([&](const I2sWireSerializer::Wire& w) {
    I2sWireSerializer::Wire corrupted = w;
    if (ber > 0.0 && w.sck && noise.bernoulli(ber)) {
      corrupted.sd = !corrupted.sd;
    }
    rx.on_wire(corrupted);
  });

  WireRun result;
  FrameDecoder dec{[&](std::uint8_t, const std::vector<AetrWord>& payload) {
    result.delivered.push_back(payload);
  }};

  FrameEncoder enc;
  // One continuous burst: I2S keeps clocking, frames sit back to back in
  // the slot stream (a new transmit would restart the Philips delay bit,
  // which only a WS-tracking receiver reset could follow).
  std::vector<AetrWord> burst;
  for (const auto& b : batches) {
    const auto framed = enc.encode(b);
    ++result.frames_sent;
    for (const auto w : framed) burst.emplace_back(w);
  }
  tx.transmit(burst, nullptr);
  sched.run();

  for (const auto w : rx.words()) dec.feed(w.raw());
  result.frames_ok = dec.frames_ok();
  result.crc_errors = dec.crc_errors();
  return result;
}

TEST(WireFaults, CleanWireDeliversEverything) {
  std::vector<std::vector<AetrWord>> batches{batch(0, 7), batch(50, 5),
                                             batch(200, 9)};
  const auto r = run_over_wire(batches, 0.0, 1);
  EXPECT_EQ(r.frames_ok, 3u);
  EXPECT_EQ(r.crc_errors, 0u);
  ASSERT_EQ(r.delivered.size(), 3u);
  EXPECT_EQ(r.delivered[0], batches[0]);
  EXPECT_EQ(r.delivered[2], batches[2]);
}

TEST(WireFaults, NoisyWireNeverDeliversCorruptPayloads) {
  // 0.1 % BER: many frames damaged. Every delivered frame must be
  // bit-exact; everything else must be rejected, never silently wrong.
  std::vector<std::vector<AetrWord>> batches;
  for (int i = 0; i < 40; ++i) {
    batches.push_back(batch(static_cast<std::uint16_t>(i * 8), 8));
  }
  const auto r = run_over_wire(batches, 1e-3, 7);
  EXPECT_EQ(r.frames_sent, 40u);
  EXPECT_LT(r.frames_ok, 40u);  // some frames must have been hit
  for (const auto& payload : r.delivered) {
    bool matched = false;
    for (const auto& b : batches) matched = matched || payload == b;
    EXPECT_TRUE(matched) << "corrupt payload passed the CRC";
  }
  EXPECT_GT(r.crc_errors + (40u - r.frames_ok), 0u);
}

TEST(WireFaults, SevereNoiseDegradesGracefully) {
  std::vector<std::vector<AetrWord>> batches;
  for (int i = 0; i < 10; ++i) batches.push_back(batch(0, 16));
  const auto r = run_over_wire(batches, 2e-2, 11);
  // Almost nothing survives 2 % BER, but the decoder must not crash or
  // fabricate frames.
  EXPECT_LE(r.frames_ok, 3u);
  for (const auto& payload : r.delivered) {
    EXPECT_EQ(payload, batches[0]);
  }
}

}  // namespace
}  // namespace aetr::i2s
