// Tests for the interrupt controller and the INT pin behaviour of the full
// interface (Fig. 3's INT line to the MCU).
#include <gtest/gtest.h>

#include <vector>

#include "core/interface.hpp"
#include "core/interrupt.hpp"
#include "gen/sources.hpp"
#include "aer/agents.hpp"
#include "spi/spi.hpp"

namespace aetr::core {
namespace {

using namespace time_literals;

TEST(Irq, RaiseSetsStatusAndLine) {
  sim::Scheduler sched;
  InterruptController irq{sched};
  std::vector<bool> line_changes;
  irq.on_line([&](bool level, Time) { line_changes.push_back(level); });
  irq.raise(Irq::kBatchReady);
  EXPECT_EQ(irq.status(), 0x01);
  EXPECT_TRUE(irq.line());
  ASSERT_EQ(line_changes.size(), 1u);
  EXPECT_TRUE(line_changes[0]);
}

TEST(Irq, LevelStaysHighForMultipleSources) {
  sim::Scheduler sched;
  InterruptController irq{sched};
  int edges = 0;
  irq.on_line([&](bool, Time) { ++edges; });
  irq.raise(Irq::kBatchReady);
  irq.raise(Irq::kFifoOverflow);  // already high: no extra edge
  EXPECT_EQ(edges, 1);
  EXPECT_EQ(irq.status(), 0x03);
  irq.clear(0x01);
  EXPECT_TRUE(irq.line());  // overflow still pending
  irq.clear(0x02);
  EXPECT_FALSE(irq.line());
  EXPECT_EQ(edges, 2);  // one falling edge at the final clear
}

TEST(Irq, MaskSuppressesLineNotStatus) {
  sim::Scheduler sched;
  InterruptController irq{sched};
  irq.set_mask(0x00);
  irq.raise(Irq::kWakeup);
  EXPECT_EQ(irq.status(), 0x08);
  EXPECT_FALSE(irq.line());
  irq.set_mask(0xFF);  // unmasking a pending source raises the line
  EXPECT_TRUE(irq.line());
}

TEST(Irq, WriteOneToClearIsSelective) {
  sim::Scheduler sched;
  InterruptController irq{sched};
  irq.raise(Irq::kBatchReady);
  irq.raise(Irq::kDrainDone);
  irq.clear(static_cast<std::uint8_t>(Irq::kDrainDone));
  EXPECT_EQ(irq.status(), static_cast<std::uint8_t>(Irq::kBatchReady));
}

TEST(IrqInterface, BatchReadyAndDrainDoneFireOnTraffic) {
  sim::Scheduler sched;
  InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 16;
  AerToI2sInterface iface{sched, cfg};
  aer::AerSender sender{sched, iface.aer_in()};
  gen::RegularSource src{10_us, 64};
  sender.submit_stream(gen::take(src, 16));
  sched.run();
  const auto status = iface.irq().status();
  EXPECT_TRUE(status & static_cast<std::uint8_t>(Irq::kBatchReady));
  EXPECT_TRUE(status & static_cast<std::uint8_t>(Irq::kDrainDone));
  EXPECT_FALSE(status & static_cast<std::uint8_t>(Irq::kFifoOverflow));
}

TEST(IrqInterface, OverflowRaisesInterrupt) {
  sim::Scheduler sched;
  InterfaceConfig cfg;
  cfg.fifo.capacity_words = 8;
  cfg.fifo.batch_threshold = 8;
  cfg.i2s.sck = Frequency::khz(100.0);  // hopeless drain rate
  AerToI2sInterface iface{sched, cfg};
  aer::AerSender sender{sched, iface.aer_in()};
  gen::RegularSource src{1_us, 64};
  sender.submit_stream(gen::take(src, 64));
  sched.run();
  EXPECT_TRUE(iface.irq().status() &
              static_cast<std::uint8_t>(Irq::kFifoOverflow));
  EXPECT_GT(iface.dropped_words(), 0u);
}

TEST(IrqInterface, WakeupSourceOnSaturatedEvent) {
  sim::Scheduler sched;
  InterfaceConfig cfg;
  AerToI2sInterface iface{sched, cfg};
  aer::AerSender sender{sched, iface.aer_in()};
  sender.submit(aer::Event{1, iface.saturation_span() * 3});
  sched.run();
  EXPECT_TRUE(iface.irq().status() & static_cast<std::uint8_t>(Irq::kWakeup));
}

TEST(IrqInterface, SpiMaskAndClearRoundTrip) {
  sim::Scheduler sched;
  InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 4;
  AerToI2sInterface iface{sched, cfg};
  aer::AerSender sender{sched, iface.aer_in()};
  spi::SpiMaster master{sched, iface.spi()};
  gen::RegularSource src{10_us, 64};
  sender.submit_stream(gen::take(src, 4));
  sched.run();
  std::uint8_t status = 0;
  master.read(spi::Reg::kIntStatus, [&](std::uint8_t v) { status = v; });
  sched.run();
  EXPECT_TRUE(status & static_cast<std::uint8_t>(Irq::kBatchReady));
  master.write(spi::Reg::kIntStatus, 0xFF);  // clear everything
  sched.run();
  EXPECT_EQ(iface.irq().status(), 0);
  EXPECT_FALSE(iface.irq().line());
  master.write(spi::Reg::kIntMask, 0x02);  // only overflow enabled
  sched.run();
  EXPECT_EQ(iface.irq().mask(), 0x02);
}

}  // namespace
}  // namespace aetr::core
