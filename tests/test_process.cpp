// Tests for the coroutine process API: delays, triggers, cancellation,
// and a coroutine-driven AER stimulus against the real interface.
#include <gtest/gtest.h>

#include <vector>

#include "aer/agents.hpp"
#include "core/interface.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace aetr::sim {
namespace {

using namespace time_literals;

Process ticker(Scheduler& s, std::vector<Time>& log, int n, Time period) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{s, period};
    log.push_back(s.now());
  }
}

TEST(Process, DelaysAdvanceSimTime) {
  Scheduler sched;
  std::vector<Time> log;
  Process p = ticker(sched, log, 3, 10_us);
  EXPECT_FALSE(p.done());
  sched.run();
  EXPECT_TRUE(p.done());
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 10_us);
  EXPECT_EQ(log[2], 30_us);
}

TEST(Process, RunsEagerlyUntilFirstAwait) {
  Scheduler sched;
  bool started = false;
  auto body = [&](Scheduler& s) -> Process {
    started = true;
    co_await Delay{s, 1_us};
  };
  Process p = body(sched);
  EXPECT_TRUE(started);  // before sched.run()
  sched.run();
  EXPECT_TRUE(p.done());
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  Scheduler sched;
  int steps = 0;
  auto body = [&](Scheduler& s) -> Process {
    ++steps;
    co_await Delay{s, Time::zero()};
    ++steps;
  };
  Process p = body(sched);
  EXPECT_EQ(steps, 2);  // completed synchronously
  EXPECT_TRUE(p.done());
}

TEST(Process, DestructionCancelsPendingWakeup) {
  Scheduler sched;
  std::vector<Time> log;
  {
    Process p = ticker(sched, log, 100, 10_us);
    sched.run_until(25_us);  // two ticks happened
  }                          // process destroyed mid-flight
  sched.run();               // the pending wakeup fires harmlessly
  EXPECT_EQ(log.size(), 2u);
}

TEST(Process, MoveTransfersOwnership) {
  Scheduler sched;
  std::vector<Time> log;
  Process a = ticker(sched, log, 2, 5_us);
  Process b = std::move(a);
  sched.run();
  EXPECT_TRUE(b.done());
  EXPECT_EQ(log.size(), 2u);
}

Process waiter(Trigger& t, std::vector<int>& log, int id) {
  co_await WaitFor{t};
  log.push_back(id);
  co_await WaitFor{t};
  log.push_back(id + 100);
}

TEST(Trigger, FireResumesAllWaitersInOrder) {
  Scheduler sched;
  Trigger t{sched};
  std::vector<int> log;
  Process w1 = waiter(t, log, 1);
  Process w2 = waiter(t, log, 2);
  EXPECT_EQ(t.waiters(), 2u);
  t.fire();
  sched.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(t.waiters(), 2u);  // both re-armed for the second await
  t.fire();
  sched.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 101, 102}));
  EXPECT_TRUE(w1.done());
  EXPECT_TRUE(w2.done());
}

TEST(Trigger, LateWaiterWaitsForNextFire) {
  Scheduler sched;
  Trigger t{sched};
  std::vector<int> log;
  t.fire();  // nobody listening
  Process w = waiter(t, log, 7);
  sched.run();
  EXPECT_TRUE(log.empty());
  t.fire();
  sched.run();
  EXPECT_EQ(log, (std::vector<int>{7}));
}

// A coroutine testbench driving the *real* interface: a sensor process
// performing explicit 4-phase handshakes, awaiting the ACK trigger.
Process sensor_process(Scheduler& s, aer::AerChannel& ch, Trigger& ack_rise,
                       Trigger& ack_fall, int events) {
  for (int i = 0; i < events; ++i) {
    co_await Delay{s, 20_us};
    ch.drive_addr(static_cast<std::uint16_t>(i));
    ch.assert_req();
    co_await WaitFor{ack_rise};
    ch.deassert_req();
    co_await WaitFor{ack_fall};
  }
}

TEST(Process, CoroutineSensorDrivesTheInterface) {
  Scheduler sched;
  core::InterfaceConfig cfg;
  cfg.fifo.batch_threshold = 4;
  core::AerToI2sInterface iface{sched, cfg};
  iface.aer_in().set_strict(true);
  Trigger ack_rise{sched}, ack_fall{sched};
  iface.aer_in().on_ack_change([&](bool level, Time) {
    (level ? ack_rise : ack_fall).fire();
  });
  std::vector<aer::AetrWord> words;
  iface.on_i2s_word([&](aer::AetrWord w, Time) { words.push_back(w); });

  Process sensor = sensor_process(sched, iface.aer_in(), ack_rise, ack_fall, 12);
  sched.run();
  if (!iface.fifo().empty()) iface.i2s_master().request_drain(sched.now());
  sched.run();

  EXPECT_TRUE(sensor.done());
  ASSERT_EQ(words.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(words[static_cast<std::size_t>(i)].address(), i);
  }
  EXPECT_TRUE(iface.aer_in().violations().empty());
}

}  // namespace
}  // namespace aetr::sim
