// Tests for the I2S carrier: word-level drain engine timing/accounting and
// the bit-level Philips-format PHY pair.
#include <gtest/gtest.h>

#include <vector>

#include "buffer/fifo.hpp"
#include "i2s/i2s.hpp"
#include "sim/scheduler.hpp"

namespace aetr::i2s {
namespace {

using namespace time_literals;
using aer::AetrWord;

struct Bench {
  sim::Scheduler sched;
  buffer::AetrFifo fifo;
  I2sMaster master;
  std::vector<AetrWord> received;
  std::vector<Time> arrivals;

  explicit Bench(buffer::FifoConfig fcfg = {.capacity_words = 64,
                                            .batch_threshold = 8},
                 I2sConfig icfg = {})
      : fifo{fcfg}, master{sched, fifo, icfg} {
    master.on_word([this](AetrWord w, Time t) {
      received.push_back(w);
      arrivals.push_back(t);
    });
    fifo.on_threshold([this](Time t) { master.request_drain(t); });
  }

  void push_n(std::uint16_t n) {
    for (std::uint16_t i = 0; i < n; ++i) {
      fifo.push(AetrWord::make(i, i * 10u), sched.now());
    }
  }
};

TEST(I2sMaster, DrainsBatchOnThreshold) {
  Bench b;
  b.push_n(8);
  b.sched.run();
  EXPECT_EQ(b.received.size(), 8u);
  EXPECT_TRUE(b.fifo.empty());
  EXPECT_EQ(b.master.drains(), 1u);
  EXPECT_FALSE(b.master.draining());
}

TEST(I2sMaster, WordTimingMatchesSckRate) {
  I2sConfig icfg;
  icfg.sck = Frequency::mhz(32.0);  // 32 bits -> 1 us per word
  Bench b{{.capacity_words = 64, .batch_threshold = 4}, icfg};
  b.push_n(4);
  b.sched.run();
  ASSERT_EQ(b.arrivals.size(), 4u);
  EXPECT_EQ(b.arrivals[0], 1_us);
  EXPECT_EQ(b.arrivals[3], 4_us);
  EXPECT_EQ(b.master.word_time(), 1_us);
}

TEST(I2sMaster, PreservesOrderAndPayload) {
  Bench b;
  b.push_n(8);
  b.sched.run();
  for (std::uint16_t i = 0; i < 8; ++i) {
    EXPECT_EQ(b.received[i].address(), i);
    EXPECT_EQ(b.received[i].timestamp_ticks(), i * 10u);
  }
}

TEST(I2sMaster, DrainUntilEmptyPicksUpLateArrivals) {
  Bench b;
  b.push_n(8);  // threshold fires, drain starts
  // More words arrive while the drain is in progress.
  b.sched.schedule_at(500_ns, [&b] { b.push_n(3); });
  b.sched.run();
  EXPECT_EQ(b.received.size(), 11u);
  EXPECT_EQ(b.master.drains(), 1u);  // one continuous drain
}

TEST(I2sMaster, SingleBatchModeStopsAtBatch) {
  I2sConfig icfg;
  icfg.drain_until_empty = false;
  Bench b{{.capacity_words = 64, .batch_threshold = 4}, icfg};
  b.push_n(6);  // threshold at 4: batch size is the occupancy at kick time
  b.sched.run();
  // The drain captured the batch size when it started (4 words in).
  EXPECT_EQ(b.received.size(), 4u);
  EXPECT_EQ(b.fifo.size(), 2u);
}

TEST(I2sMaster, BitAccounting) {
  Bench b;
  b.push_n(8);
  b.sched.run();
  EXPECT_EQ(b.master.bits_shifted(), 8u * 32u);
  EXPECT_EQ(b.master.words_sent(), 8u);
  EXPECT_GT(b.master.busy_time(), Time::zero());
}

TEST(I2sMaster, RedundantDrainRequestsIgnored) {
  Bench b;
  b.push_n(8);
  b.master.request_drain(b.sched.now());  // already draining
  b.sched.run();
  EXPECT_EQ(b.master.drains(), 1u);
  EXPECT_EQ(b.received.size(), 8u);
  b.master.request_drain(b.sched.now());  // empty fifo: no-op
  EXPECT_EQ(b.master.drains(), 1u);
}

// ---------------------------------------------------------------------------
// Bit-level PHY.

TEST(I2sWire, SerialiserReceiverRoundTrip) {
  sim::Scheduler sched;
  I2sWireSerializer tx{sched};
  I2sWireReceiver rx;
  tx.on_wire([&rx](const I2sWireSerializer::Wire& w) { rx.on_wire(w); });
  std::vector<AetrWord> words{AetrWord::make(0x2A, 1234),
                              AetrWord::make(0x3FF, 0x3FFFFE),
                              AetrWord::make(0, 0), AetrWord::make(5, 99)};
  bool done = false;
  tx.transmit(words, [&](Time) { done = true; });
  sched.run();
  EXPECT_TRUE(done);
  ASSERT_EQ(rx.words().size(), 4u);
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(rx.words()[i], words[i]) << "word " << i;
  }
}

TEST(I2sWire, OddWordCountPadsFrame) {
  sim::Scheduler sched;
  I2sWireSerializer tx{sched};
  I2sWireReceiver rx;
  tx.on_wire([&rx](const I2sWireSerializer::Wire& w) { rx.on_wire(w); });
  tx.transmit({AetrWord::make(9, 7)}, nullptr);
  sched.run();
  ASSERT_EQ(rx.words().size(), 2u);
  EXPECT_EQ(rx.words()[0], AetrWord::make(9, 7));
  EXPECT_EQ(rx.words()[1].raw(), 0u);  // stereo padding slot
}

TEST(I2sWire, WsAlternatesPerSlot) {
  sim::Scheduler sched;
  I2sWireSerializer tx{sched};
  std::vector<I2sWireSerializer::Wire> wires;
  tx.on_wire([&](const I2sWireSerializer::Wire& w) {
    if (w.sck) wires.push_back(w);  // rising edges only
  });
  tx.transmit({AetrWord::make(1, 1), AetrWord::make(2, 2)}, nullptr);
  sched.run();
  // 32 cycles of WS=0, then WS flips for the right slot.
  ASSERT_GT(wires.size(), 40u);
  EXPECT_FALSE(wires[5].ws);
  EXPECT_TRUE(wires[40].ws);
}

TEST(I2sWire, DurationMatchesBitBudget) {
  sim::Scheduler sched;
  I2sConfig cfg;
  cfg.sck = Frequency::mhz(1.0);  // 1 us per bit
  I2sWireSerializer tx{sched, cfg};
  Time done_at;
  tx.transmit({AetrWord::make(1, 1), AetrWord::make(2, 2)},
              [&](Time t) { done_at = t; });
  sched.run();
  // 64 data cycles + 1 delay cycle, half-period granularity.
  EXPECT_NEAR(done_at.to_us(), 65.0, 1.1);
}

TEST(I2sWire, EmptyTransmitCompletesImmediately) {
  sim::Scheduler sched;
  I2sWireSerializer tx{sched};
  bool done = false;
  tx.transmit({}, [&](Time) { done = true; });
  sched.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace aetr::i2s
