// Tests for the parameterised AETR wire codec.
#include <gtest/gtest.h>

#include "aer/codec.hpp"
#include "util/rng.hpp"

namespace aetr::aer {
namespace {

TEST(Codec, SimpleRoundTrip) {
  AetrCodec codec{16};
  std::vector<CodedEvent> events{{5, 100}, {6, 65535}, {7, 0}};
  const auto words = codec.encode_stream(events);
  EXPECT_EQ(words.size(), 3u);  // all deltas fit 16 bits
  EXPECT_EQ(codec.decode_stream(words), events);
}

TEST(Codec, OverflowWordsCarryLargeDeltas) {
  AetrCodec codec{8};
  std::vector<CodedEvent> events{{1, 1000}};  // 1000 >> 8 = 3 wraps
  const auto words = codec.encode_stream(events);
  EXPECT_EQ(words.size(), 2u);  // one overflow word (3 wraps) + data
  EXPECT_EQ(codec.decode_stream(words), events);
}

TEST(Codec, ChainedOverflowRuns) {
  AetrCodec codec{4};
  // 4-bit: mask 15. delta = (15*3 + 7) << 4 | 9 -> 3 overflow words.
  const std::uint64_t delta = ((15ull * 3 + 7) << 4) | 9;
  std::vector<CodedEvent> events{{2, delta}};
  const auto words = codec.encode_stream(events);
  EXPECT_EQ(words.size(), 5u);  // 15+15+15+7 wraps -> 4 overflows + data
  EXPECT_EQ(codec.decode_stream(words), events);
}

TEST(Codec, WordsForMatchesEncoding) {
  for (const unsigned bits : {4u, 8u, 12u, 16u, 22u}) {
    AetrCodec codec{bits};
    Xoshiro256StarStar rng{bits};
    for (int i = 0; i < 300; ++i) {
      // Deltas within the width's bounded overflow-run budget (the
      // interface's saturation keeps real deltas far smaller still).
      const std::uint64_t delta =
          rng.uniform_int(1u << std::min(20u, bits + 13u));
      std::vector<std::uint32_t> out;
      codec.encode(CodedEvent{3, delta}, out);
      EXPECT_EQ(out.size(), codec.words_for(delta))
          << "bits=" << bits << " delta=" << delta;
    }
  }
}

TEST(Codec, UnboundedOverflowRunRejected) {
  AetrCodec codec{4};
  std::vector<std::uint32_t> out;
  // 2^40 ticks would need ~2^36/15 overflow words: rejected, not emitted.
  EXPECT_THROW(codec.encode(CodedEvent{1, std::uint64_t{1} << 40}, out),
               std::invalid_argument);
}

TEST(Codec, RandomStreamPropertyRoundTrip) {
  for (const unsigned bits : {6u, 14u, 22u}) {
    AetrCodec codec{bits};
    Xoshiro256StarStar rng{bits * 11};
    std::vector<CodedEvent> events;
    for (int i = 0; i < 2000; ++i) {
      events.push_back(CodedEvent{
          static_cast<std::uint16_t>(rng.uniform_int(kAddressMask)),  // < overflow code
          rng.uniform_int(1u << 20)});
    }
    EXPECT_EQ(codec.decode_stream(codec.encode_stream(events)), events);
  }
}

TEST(Codec, ReservedAddressRejected) {
  AetrCodec codec{16};
  std::vector<std::uint32_t> out;
  EXPECT_THROW(codec.encode(CodedEvent{AetrCodec::kOverflowAddr, 1}, out),
               std::invalid_argument);
}

TEST(Codec, TruncatedOverflowRunThrows) {
  AetrCodec codec{8};
  std::vector<std::uint32_t> words;
  codec.encode(CodedEvent{1, 1000}, words);
  words.pop_back();  // drop the data word, leaving a dangling overflow
  EXPECT_THROW(codec.decode_stream(words), std::runtime_error);
}

TEST(Codec, InvalidWidthRejected) {
  EXPECT_THROW(AetrCodec{3}, std::invalid_argument);
  EXPECT_THROW(AetrCodec{23}, std::invalid_argument);
}

TEST(Codec, NarrowerTimestampsCostMoreWordsOnSparseStreams) {
  // The design trade the ablation quantifies, pinned as a property: for a
  // stream with many long gaps, narrow timestamps need more words.
  std::vector<CodedEvent> sparse;
  for (int i = 0; i < 100; ++i) {
    sparse.push_back(CodedEvent{1, 200'000});  // ~13 ms at Tmin
  }
  AetrCodec wide{22}, narrow{12};
  EXPECT_GT(narrow.encode_stream(sparse).size(),
            wide.encode_stream(sparse).size());
  EXPECT_EQ(wide.encode_stream(sparse).size(), 100u);
}

}  // namespace
}  // namespace aetr::aer
