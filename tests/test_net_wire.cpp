// aetr::net wire codec + connection state machine, sockets excluded.
//
// The codec is pure (bytes in, frames out), so every protocol-abuse case
// the ISSUE names — truncated frames, corrupted CRC, oversized length
// prefixes, interleaved control/data, garbage before HELLO — is driven
// here with crafted byte vectors and must be rejected without crashing or
// desyncing. The fuzz loops run under the ASan/UBSan preset like the rest
// of the suite (cmake --preset sanitize).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <sstream>

#include "core/config_io.hpp"
#include "gen/sources.hpp"
#include "i2s/framing.hpp"
#include "net/connection.hpp"
#include "net/wire.hpp"

namespace {

using namespace aetr;
using namespace aetr::net;

aer::EventStream test_stream(std::size_t n, std::uint64_t seed = 7) {
  gen::PoissonSource source{50e3, 256, seed};
  return gen::take(source, n);
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// --- CRC ---------------------------------------------------------------------

TEST(NetCrc, MatchesTheStandardCheckValue) {
  // The canonical IEEE CRC-32 check: crc32("123456789") == 0xCBF43926.
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32_bytes(data), 0xCBF43926u);
}

TEST(NetCrc, EmptyInput) { EXPECT_EQ(crc32_bytes(nullptr, 0), 0u); }

TEST(NetCrc, AgreesWithTheWordCrcOnWholeWords) {
  // Same polynomial and byte order as i2s::crc32_words: hashing a word
  // buffer byte-wise (LE expansion) must give the word CRC, so the two
  // transports' CRCs are one algorithm, not two.
  const std::vector<std::uint32_t> words{0x00000001u, 0xDEADBEEFu,
                                         0x12345678u};
  std::vector<std::uint8_t> raw;
  for (const auto w : words) {
    for (int i = 0; i < 4; ++i) {
      raw.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  EXPECT_EQ(crc32_bytes(raw), i2s::crc32_words(words));
}

// --- frame round trips -------------------------------------------------------

TEST(NetFrame, RoundTripsEveryMessageType) {
  Decoder dec;

  Hello hello;
  hello.session_name = "alpha";
  hello.config_text = "sender.min_gap_ns = 5\n";
  dec.feed(encode_frame(MsgType::kHello, 0, encode_hello(hello)));

  HelloAck ack;
  ack.config_fingerprint = 0x1122334455667788ull;
  ack.events_fed = 42;
  ack.position_ps = 123456789;
  ack.credit = 4096;
  dec.feed(encode_frame(MsgType::kHelloAck, 3, encode_hello_ack(ack)));

  const auto stream = test_stream(100);
  dec.feed(encode_frame(MsgType::kData, 3, encode_data(stream, 0, 100)));
  dec.feed(encode_frame(MsgType::kCredit, 3, encode_credit(Credit{100})));
  dec.feed(encode_frame(MsgType::kNack, 3, encode_nack(Nack{"nope"})));
  dec.feed(encode_frame(MsgType::kSnapshotReq, 3, {}));
  dec.feed(encode_frame(MsgType::kSnapshotAck, 3,
                        encode_snapshot_ack(SnapshotAck{77, 88})));
  dec.feed(encode_frame(MsgType::kDrain, 3, {}));
  dec.feed(encode_frame(MsgType::kSummary, 3,
                        encode_summary(Summary{"events_in = 1\n"})));
  dec.feed(encode_frame(MsgType::kBye, 3, {}));

  auto f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, MsgType::kHello);
  EXPECT_EQ(f->session_id, 0);
  const Hello h = decode_hello(f->payload);
  EXPECT_EQ(h.protocol_version, kProtocolVersion);
  EXPECT_EQ(h.session_name, "alpha");
  EXPECT_EQ(h.config_text, "sender.min_gap_ns = 5\n");

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, MsgType::kHelloAck);
  EXPECT_EQ(f->session_id, 3);
  const HelloAck a = decode_hello_ack(f->payload);
  EXPECT_EQ(a.config_fingerprint, ack.config_fingerprint);
  EXPECT_EQ(a.events_fed, 42u);
  EXPECT_EQ(a.position_ps, 123456789);
  EXPECT_EQ(a.credit, 4096u);

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, MsgType::kData);
  EXPECT_EQ(decode_data(f->payload), stream);

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(decode_credit(f->payload).grant, 100u);

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(decode_nack(f->payload).reason, "nope");

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, MsgType::kSnapshotReq);
  EXPECT_TRUE(f->payload.empty());

  f = dec.next();
  ASSERT_TRUE(f);
  const SnapshotAck s = decode_snapshot_ack(f->payload);
  EXPECT_EQ(s.position_ps, 77);
  EXPECT_EQ(s.blob_bytes, 88u);

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, MsgType::kDrain);

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(decode_summary(f->payload).text, "events_in = 1\n");

  f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, MsgType::kBye);

  EXPECT_FALSE(dec.next());
  EXPECT_FALSE(dec.failed());
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(NetFrame, ReassemblesAcrossArbitrarySplits) {
  const auto stream = test_stream(257);
  const auto frame =
      encode_frame(MsgType::kData, 9, encode_data(stream, 0, 257));
  // Byte-at-a-time is the worst case; a frame must pop out exactly when its
  // final CRC byte lands and not one byte earlier.
  Decoder dec;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    dec.feed(&frame[i], 1);
    if (i + 1 < frame.size()) {
      EXPECT_FALSE(dec.next()) << "frame surfaced early at byte " << i;
    }
  }
  const auto f = dec.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(decode_data(f->payload), stream);
}

TEST(NetFrame, TruncatedFrameNeverSurfaces) {
  const auto stream = test_stream(64);
  const auto frame =
      encode_frame(MsgType::kData, 1, encode_data(stream, 0, 64));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Decoder dec;
    dec.feed(frame.data(), cut);
    EXPECT_FALSE(dec.next()) << "truncation at " << cut;
    EXPECT_FALSE(dec.failed()) << "truncation at " << cut;
  }
}

TEST(NetFrame, CorruptedCrcIsTerminal) {
  const auto stream = test_stream(32);
  auto frame = encode_frame(MsgType::kData, 1, encode_data(stream, 0, 32));
  frame.back() ^= 0x01;
  Decoder dec;
  dec.feed(frame);
  EXPECT_FALSE(dec.next());
  EXPECT_TRUE(dec.failed());
  EXPECT_NE(dec.error().find("CRC"), std::string::npos);
  // Terminal: even a pristine frame afterwards is refused (no resync).
  EXPECT_FALSE(dec.feed(encode_frame(MsgType::kDrain, 1, {})));
  EXPECT_FALSE(dec.next());
}

TEST(NetFrame, EveryCorruptedByteIsRejectedOrDetected) {
  // Flip each byte of a valid frame in turn: the decoder must either fail
  // (header/CRC damage) or deliver a frame whose typed decode throws —
  // never crash, never return silently corrupted events... except for
  // payload bytes whose flip still decodes to in-range values, which the
  // CRC would have caught had the trailer not been refreshed. Here the CRC
  // is NOT refreshed, so every payload flip must be a CRC failure.
  const auto stream = test_stream(16);
  const auto good = encode_frame(MsgType::kData, 1, encode_data(stream, 0, 16));
  for (std::size_t i = 0; i < good.size(); ++i) {
    auto bad = good;
    bad[i] ^= 0x40;
    Decoder dec;
    dec.feed(bad);
    const auto f = dec.next();
    if (f) {
      // Only possible if the flip left magic/type/len/CRC consistent —
      // a single-bit flip cannot, so reaching here means the decoder and
      // CRC disagree.
      ADD_FAILURE() << "corrupted byte " << i << " went undetected";
    } else {
      EXPECT_TRUE(dec.failed() || dec.pending_bytes() > 0);
    }
  }
}

TEST(NetFrame, OversizedLengthPrefixIsTerminal) {
  // Hand-build a header claiming a payload beyond kMaxPayload; the decoder
  // must fail on the header alone instead of waiting for 4 GiB.
  std::vector<std::uint8_t> raw;
  const auto put32 = [&raw](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      raw.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put32(kMagic);
  raw.push_back(static_cast<std::uint8_t>(MsgType::kData));
  raw.push_back(0);
  raw.push_back(0);
  raw.push_back(0);
  put32(static_cast<std::uint32_t>(kMaxPayload) + 1);
  Decoder dec;
  dec.feed(raw);
  EXPECT_FALSE(dec.next());
  EXPECT_TRUE(dec.failed());
  EXPECT_NE(dec.error().find("oversized"), std::string::npos);
}

TEST(NetFrame, EncoderRefusesOversizedPayload) {
  const std::vector<std::uint8_t> huge(kMaxPayload + 1, 0);
  EXPECT_THROW(encode_frame(MsgType::kSummary, 0, huge),
               std::invalid_argument);
}

TEST(NetFrame, BadMagicIsTerminal) {
  Decoder dec;
  dec.feed(bytes_of("GET / HTTP/1.1\r\n"));
  EXPECT_FALSE(dec.next());
  EXPECT_TRUE(dec.failed());
}

TEST(NetFrame, UnknownTypeAndReservedByteAreTerminal) {
  auto frame = encode_frame(MsgType::kDrain, 0, {});
  frame[4] = 0xEE;  // type nobody speaks
  Decoder dec1;
  dec1.feed(frame);
  EXPECT_FALSE(dec1.next());
  EXPECT_TRUE(dec1.failed());

  auto frame2 = encode_frame(MsgType::kDrain, 0, {});
  frame2[5] = 1;  // reserved byte
  Decoder dec2;
  dec2.feed(frame2);
  EXPECT_FALSE(dec2.next());
  EXPECT_TRUE(dec2.failed());
}

TEST(NetFrame, TypedDecodersRejectTrailingBytes) {
  auto payload = encode_credit(Credit{5});
  payload.push_back(0);
  EXPECT_THROW(decode_credit(payload), std::runtime_error);

  auto hello = encode_hello(Hello{kProtocolVersion, "a", ""});
  hello.push_back(1);
  EXPECT_THROW(decode_hello(hello), std::runtime_error);
}

TEST(NetFrame, TypedDecodersRejectTruncation) {
  const auto stream = test_stream(8);
  const auto payload = encode_data(stream, 0, 8);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> part(payload.begin(),
                                         payload.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_data(part), std::runtime_error) << cut;
  }
}

TEST(NetFrame, DataDecodeRejectsOutOfRangeAddress) {
  aer::EventStream events{{aer::Event{aer::kAddressMask, Time::us(1)}}};
  auto payload = encode_data(events, 0, 1);
  // Patch the address field (first event, right after the u32 count) to
  // exceed the 10-bit bus.
  payload[4] = 0xFF;
  payload[5] = 0xFF;
  EXPECT_THROW((void)decode_data(payload), std::runtime_error);
}

TEST(NetFrame, RandomGarbageNeverCrashesTheDecoder) {
  std::mt19937 rng{20260809};
  std::uniform_int_distribution<int> byte{0, 255};
  std::uniform_int_distribution<std::size_t> len{0, 512};
  for (int iter = 0; iter < 2000; ++iter) {
    Decoder dec;
    std::vector<std::uint8_t> junk(len(rng));
    for (auto& b : junk) b = static_cast<std::uint8_t>(byte(rng));
    dec.feed(junk);
    while (dec.next()) {
    }
    // Either waiting for more bytes or failed — never crashed, and a
    // random 12+-byte prefix essentially never spells the magic.
    if (junk.size() >= kHeaderSize && !dec.failed()) {
      EXPECT_EQ(std::memcmp(junk.data(), "\x4E\x45\x54\x41", 4), 0);
    }
  }
}

TEST(NetFrame, RandomlyCorruptedValidStreamsNeverCrash) {
  std::mt19937 rng{42};
  std::uniform_int_distribution<int> byte{0, 255};
  const auto stream = test_stream(50);
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 5; ++i) {
    const auto f =
        encode_frame(MsgType::kData, 1, encode_data(stream, 0, stream.size()));
    wire.insert(wire.end(), f.begin(), f.end());
  }
  std::uniform_int_distribution<std::size_t> pos{0, wire.size() - 1};
  for (int iter = 0; iter < 500; ++iter) {
    auto bad = wire;
    for (int hits = 0; hits < 3; ++hits) {
      bad[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    }
    Decoder dec;
    dec.feed(bad);
    while (auto f = dec.next()) {
      try {
        (void)decode_data(f->payload);
      } catch (const std::runtime_error&) {
        // Malformed payload surfaced as an exception: fine.
      }
    }
  }
}

// --- connection state machine -----------------------------------------------

struct Harness {
  GatewayConfig config;
  std::vector<Frame> sent;
  std::unique_ptr<Connection> conn;
  Decoder out;

  explicit Harness(GatewayConfig cfg = {}) : config{std::move(cfg)} {
    conn = std::make_unique<Connection>(
        config, 1, [this](const std::vector<std::uint8_t>& b) {
          out.feed(b);
          while (auto f = out.next()) sent.push_back(*f);
        });
  }

  bool push(MsgType type, const std::vector<std::uint8_t>& payload) {
    return conn->on_bytes(encode_frame(type, 0, payload));
  }

  bool hello(const std::string& name, const std::string& config_text = "") {
    Hello h;
    h.session_name = name;
    h.config_text = config_text;
    return push(MsgType::kHello, encode_hello(h));
  }

  [[nodiscard]] const Frame& last() const { return sent.back(); }
};

TEST(NetConnection, GarbageBeforeHelloIsNackedAndClosed) {
  Harness h;
  const auto junk = bytes_of("not a frame at all, definitely not");
  EXPECT_FALSE(h.conn->on_bytes(junk));
  EXPECT_EQ(h.conn->state(), Connection::State::kError);
  ASSERT_FALSE(h.sent.empty());
  EXPECT_EQ(h.last().type, MsgType::kNack);
  EXPECT_NE(decode_nack(h.last().payload).reason.find("framing"),
            std::string::npos);
}

TEST(NetConnection, DataBeforeHelloIsNacked) {
  Harness h;
  const auto stream = test_stream(4);
  EXPECT_FALSE(h.push(MsgType::kData, encode_data(stream, 0, 4)));
  EXPECT_EQ(h.conn->state(), Connection::State::kError);
  EXPECT_EQ(h.last().type, MsgType::kNack);
  EXPECT_NE(decode_nack(h.last().payload).reason.find("DATA before HELLO"),
            std::string::npos);
}

TEST(NetConnection, HelloHandshakeGrantsCreditAndFingerprint) {
  GatewayConfig cfg;
  cfg.credit_window = 1234;
  Harness h{cfg};
  EXPECT_TRUE(h.hello("alpha"));
  EXPECT_EQ(h.conn->state(), Connection::State::kStreaming);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.last().type, MsgType::kHelloAck);
  EXPECT_EQ(h.last().session_id, 1);
  const HelloAck ack = decode_hello_ack(h.last().payload);
  EXPECT_EQ(ack.credit, 1234u);
  EXPECT_EQ(ack.events_fed, 0u);
  EXPECT_EQ(ack.config_fingerprint,
            config_fingerprint(
                core::dump_scenario(cfg.default_scenario)));
}

TEST(NetConnection, ExplicitConfigTextOverridesTheDefault) {
  Harness h;
  core::ScenarioConfig want = h.config.default_scenario;
  want.sender.min_gap = Time::ns(123);
  EXPECT_TRUE(h.hello("alpha", core::dump_scenario(want)));
  const HelloAck ack = decode_hello_ack(h.last().payload);
  EXPECT_EQ(ack.config_fingerprint,
            config_fingerprint(core::dump_scenario(want)));
}

TEST(NetConnection, BadConfigTextIsNacked) {
  Harness h;
  EXPECT_FALSE(h.hello("alpha", "no.such.key = 1\n"));
  EXPECT_EQ(h.last().type, MsgType::kNack);
  EXPECT_NE(decode_nack(h.last().payload).reason.find("bad config"),
            std::string::npos);
}

TEST(NetConnection, HostileSessionNamesAreNacked) {
  for (const char* name :
       {"", "../../etc/passwd", "a/b", "x y", ".hidden",
        "waaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaay-"
        "too-long"}) {
    Harness h;
    EXPECT_FALSE(h.hello(name)) << name;
    EXPECT_EQ(h.conn->state(), Connection::State::kError) << name;
  }
}

TEST(NetConnection, WrongProtocolVersionIsNacked) {
  Harness h;
  Hello hello;
  hello.protocol_version = kProtocolVersion + 1;
  hello.session_name = "alpha";
  EXPECT_FALSE(h.push(MsgType::kHello, encode_hello(hello)));
  EXPECT_NE(decode_nack(h.last().payload).reason.find("version"),
            std::string::npos);
}

TEST(NetConnection, DuplicateHelloIsNacked) {
  Harness h;
  EXPECT_TRUE(h.hello("alpha"));
  EXPECT_FALSE(h.hello("beta"));
  EXPECT_NE(decode_nack(h.last().payload).reason.find("duplicate"),
            std::string::npos);
}

TEST(NetConnection, CreditOverrunIsNacked) {
  GatewayConfig cfg;
  cfg.credit_window = 8;
  Harness h{cfg};
  EXPECT_TRUE(h.hello("alpha"));
  const auto stream = test_stream(16);
  EXPECT_FALSE(h.push(MsgType::kData, encode_data(stream, 0, 16)));
  EXPECT_NE(decode_nack(h.last().payload).reason.find("credit overrun"),
            std::string::npos);
}

TEST(NetConnection, NonMonotonicDataIsNacked) {
  Harness h;
  EXPECT_TRUE(h.hello("alpha"));
  aer::EventStream events{{aer::Event{1, Time::us(100)},
                           aer::Event{2, Time::us(50)}}};
  EXPECT_FALSE(h.push(MsgType::kData, encode_data(events, 0, 2)));
  EXPECT_NE(decode_nack(h.last().payload).reason.find("non-monotonic"),
            std::string::npos);
}

TEST(NetConnection, InterleavedControlAndDataFollowTheStateMachine) {
  // DATA -> CREDIT, unexpected client frames -> NACK, DRAIN -> summary+BYE:
  // control frames interleave with data without desyncing the decoder.
  Harness h;
  EXPECT_TRUE(h.hello("alpha"));
  const auto stream = test_stream(64);
  EXPECT_TRUE(h.push(MsgType::kData, encode_data(stream, 0, 32)));
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.last().type, MsgType::kCredit);
  EXPECT_EQ(decode_credit(h.last().payload).grant, 32u);
  EXPECT_TRUE(h.push(MsgType::kData, encode_data(stream, 32, 32)));
  EXPECT_EQ(h.last().type, MsgType::kCredit);
  EXPECT_FALSE(h.push(MsgType::kDrain, {}));  // connection completes
  EXPECT_EQ(h.conn->state(), Connection::State::kDone);
  ASSERT_GE(h.sent.size(), 5u);
  EXPECT_EQ(h.sent[h.sent.size() - 2].type, MsgType::kSummary);
  EXPECT_EQ(h.last().type, MsgType::kBye);
  const Summary summary = decode_summary(h.sent[h.sent.size() - 2].payload);
  EXPECT_NE(summary.text.find("events_in = 64"), std::string::npos);
  EXPECT_EQ(h.conn->summary_text(), summary.text);
}

TEST(NetConnection, ServerOnlyFramesFromClientAreNacked) {
  Harness h;
  EXPECT_TRUE(h.hello("alpha"));
  EXPECT_FALSE(h.push(MsgType::kSummary, encode_summary(Summary{"x"})));
  EXPECT_NE(decode_nack(h.last().payload).reason.find("unexpected"),
            std::string::npos);
}

TEST(NetConnection, SnapshotReqWithoutSnapshotDirIsNacked) {
  Harness h;
  EXPECT_TRUE(h.hello("alpha"));
  EXPECT_FALSE(h.push(MsgType::kSnapshotReq, {}));
  EXPECT_NE(decode_nack(h.last().payload).reason.find("snapshot"),
            std::string::npos);
}

TEST(NetConnection, RandomGarbageIntoLiveConnectionNeverCrashes) {
  std::mt19937 rng{99};
  std::uniform_int_distribution<int> byte{0, 255};
  std::uniform_int_distribution<std::size_t> len{1, 200};
  for (int iter = 0; iter < 200; ++iter) {
    Harness h;
    EXPECT_TRUE(h.hello("alpha"));
    std::vector<std::uint8_t> junk(len(rng));
    for (auto& b : junk) b = static_cast<std::uint8_t>(byte(rng));
    (void)h.conn->on_bytes(junk);  // must not crash; may NACK
  }
}

TEST(NetConnection, FingerprintIsStableAndSensitive) {
  const std::string a = "a = 1\n";
  const std::string b = "a = 2\n";
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(a));
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
  EXPECT_NE(config_fingerprint(""), config_fingerprint(a));
}

}  // namespace
