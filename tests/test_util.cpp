// Unit tests for util: time/frequency types, RNGs, statistics, histograms,
// tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace aetr {
namespace {

using namespace time_literals;

TEST(Time, LiteralsAndConversions) {
  EXPECT_EQ((1_ns).count_ps(), 1000);
  EXPECT_EQ((1_us).count_ps(), 1'000'000);
  EXPECT_EQ((1_ms).count_ps(), 1'000'000'000);
  EXPECT_EQ((1_sec).count_ps(), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ((2500_ps).to_ns(), 2.5);
  EXPECT_DOUBLE_EQ((1500_us).to_ms(), 1.5);
}

TEST(Time, RoundsFractionalInputToNearestPicosecond) {
  EXPECT_EQ(Time::ns(0.0004).count_ps(), 0);
  EXPECT_EQ(Time::ns(0.0006).count_ps(), 1);
  EXPECT_EQ(Time::ns(66.6667).count_ps(), 66667);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(1_us + 500_ns, Time::ns(1500));
  EXPECT_EQ(1_us - 400_ns, 600_ns);
  EXPECT_EQ((100_ns) * 3, 300_ns);
  EXPECT_EQ((1_us) / (250_ns), 4);
  EXPECT_EQ((1100_ns) % (250_ns), 100_ns);
  EXPECT_LT(99_ns, 100_ns);
  EXPECT_GT(1_ms, 999_us);
}

TEST(Time, RatioAndToString) {
  EXPECT_DOUBLE_EQ((500_ns).ratio(1_us), 0.5);
  EXPECT_EQ((1500_ns).to_string(), "1.5us");
  EXPECT_EQ((250_ps).to_string(), "250ps");
}

TEST(Frequency, PeriodRoundTrip) {
  const auto f = Frequency::mhz(15.0);
  EXPECT_NEAR(f.period().to_ns(), 66.667, 0.001);
  // The period is rounded to the picosecond grid, so the round trip is
  // accurate only to ~1e-5 relative.
  EXPECT_NEAR(Frequency::from_period(f.period()).to_mhz(), 15.0, 1e-3);
}

TEST(Frequency, UnitHelpers) {
  EXPECT_DOUBLE_EQ(Frequency::khz(550.0).to_hz(), 550e3);
  EXPECT_DOUBLE_EQ(Frequency::mhz(120.0).to_hz(), 120e6);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a{123}, b{123}, c{124};
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256StarStar rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformIntBounded) {
  Xoshiro256StarStar rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(Xoshiro, ExponentialMeanMatches) {
  Xoshiro256StarStar rng{99};
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.02);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256StarStar rng{5};
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(3.0, 0.5));
  EXPECT_NEAR(s.mean(), 3.0, 0.01);
  EXPECT_NEAR(s.stddev(), 0.5, 0.01);
}

TEST(Xoshiro, ExponentialTime) {
  Xoshiro256StarStar rng{11};
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(rng.exponential_time(10_us).to_sec());
  }
  EXPECT_NEAR(s.mean(), 10e-6, 0.2e-6);
}

TEST(Lfsr, MaximalLength16Bit) {
  Lfsr lfsr{16, 0x100Bu, 0xACE1u};
  const auto start = lfsr.state();
  std::uint64_t period = 0;
  do {
    lfsr.step();
    ++period;
  } while (lfsr.state() != start && period <= 70000);
  EXPECT_EQ(period, 65535u);  // maximal length: 2^16 - 1
}

TEST(Lfsr, NeverReachesZeroState) {
  Lfsr lfsr{8, 0x1Du, 0x01u};  // maximal 8-bit polynomial x^8+x^6+x^5+x^4+1
  for (int i = 0; i < 300; ++i) {
    lfsr.step();
    EXPECT_NE(lfsr.state(), 0u);
  }
}

TEST(Lfsr, ZeroSeedIsCoercedToNonZero) {
  Lfsr lfsr{16, 0xD008u, 0};
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, StepWordBitWidth) {
  Lfsr lfsr{12, 0x107u, 0x5A5u};
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(lfsr.step_word(), 1u << 12);
  }
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  RunningStats a, b, all;
  Xoshiro256StarStar rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeIntoEmpty) {
  RunningStats a, b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e{0.1};
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);  // primes on first sample
  for (int i = 0; i < 200; ++i) e.add(4.0);
  EXPECT_NEAR(e.value(), 4.0, 1e-6);
}

TEST(Histogram, BinningAndProbability) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.total(), 12.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(h.count(i), 1.0);
    EXPECT_NEAR(h.probability(i), 1.0 / 12.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, Quantile) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.01);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.01);
}

TEST(Histogram, AsciiRenders) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const auto art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(LogHistogram, GeometricBins) {
  LogHistogram h{1.0, 1000.0, 1};
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  EXPECT_EQ(h.bin_count(), 3u);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_NEAR(h.bin_center(0), std::sqrt(10.0), 1e-9);
}

TEST(Table, AlignedPrintAndCsv) {
  Table t{{"rate", "power"}};
  t.add_row({"100", "4.5"});
  t.add_row({"100000", "0.05"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("rate"), std::string::npos);
  EXPECT_NE(text.find("100000"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(Table::num(0.05), "0.05");
  EXPECT_EQ(Table::num(4500.0, 2), "4.5e+03");
}

}  // namespace
}  // namespace aetr
