// Tests for the framed-batch carrier protocol: CRC, resync, corruption and
// loss detection.
#include <gtest/gtest.h>

#include <vector>

#include "i2s/framing.hpp"
#include "util/rng.hpp"

namespace aetr::i2s {
namespace {

using aer::AetrWord;

std::vector<AetrWord> make_batch(std::uint16_t base, std::size_t n) {
  std::vector<AetrWord> batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(AetrWord::make(
        static_cast<std::uint16_t>((base + i) & 0x3FF),
        static_cast<std::uint64_t>(i * 7)));
  }
  return batch;
}

TEST(Crc32, KnownVector) {
  // Reference: zlib.crc32(b"\x01\x00\x00\x00") == 0x99F8B879.
  EXPECT_EQ(crc32_words({1u}), 0x99F8B879u);
  EXPECT_EQ(crc32_words({}), 0x00000000u);
}

TEST(Crc32, SensitiveToAnyBitFlip) {
  const std::vector<std::uint32_t> payload{0xDEADBEEF, 0x12345678};
  const auto ref = crc32_words(payload);
  for (int bit = 0; bit < 64; ++bit) {
    auto mutated = payload;
    mutated[static_cast<std::size_t>(bit / 32)] ^= 1u << (bit % 32);
    EXPECT_NE(crc32_words(mutated), ref) << "bit " << bit;
  }
}

TEST(Framing, CleanRoundTrip) {
  FrameEncoder enc;
  std::vector<std::vector<AetrWord>> received;
  FrameDecoder dec{[&](std::uint8_t, const std::vector<AetrWord>& batch) {
    received.push_back(batch);
  }};
  const auto b0 = make_batch(0, 5);
  const auto b1 = make_batch(100, 3);
  for (const auto w : enc.encode(b0)) dec.feed(w);
  for (const auto w : enc.encode(b1)) dec.feed(w);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], b0);
  EXPECT_EQ(received[1], b1);
  EXPECT_EQ(dec.frames_ok(), 2u);
  EXPECT_EQ(dec.crc_errors(), 0u);
  EXPECT_EQ(dec.sequence_gaps(), 0u);
}

TEST(Framing, EmptyBatchIsLegal) {
  FrameEncoder enc;
  int frames = 0;
  FrameDecoder dec{[&](std::uint8_t, const std::vector<AetrWord>& batch) {
    EXPECT_TRUE(batch.empty());
    ++frames;
  }};
  for (const auto w : enc.encode({})) dec.feed(w);
  EXPECT_EQ(frames, 1);
}

TEST(Framing, SequenceNumbersIncrementAndWrap) {
  FrameEncoder enc;
  std::vector<std::uint8_t> seqs;
  FrameDecoder dec{[&](std::uint8_t s, const std::vector<AetrWord>&) {
    seqs.push_back(s);
  }};
  for (int i = 0; i < 300; ++i) {
    for (const auto w : enc.encode(make_batch(1, 1))) dec.feed(w);
  }
  ASSERT_EQ(seqs.size(), 300u);
  EXPECT_EQ(seqs[0], 0);
  EXPECT_EQ(seqs[255], 255);
  EXPECT_EQ(seqs[256], 0);  // 8-bit wrap
  EXPECT_EQ(dec.sequence_gaps(), 0u);
}

TEST(Framing, CorruptedPayloadRejected) {
  FrameEncoder enc;
  int frames = 0;
  FrameDecoder dec{
      [&](std::uint8_t, const std::vector<AetrWord>&) { ++frames; }};
  auto words = enc.encode(make_batch(0, 8));
  words[4] ^= 0x00010000u;  // flip a payload bit
  for (const auto w : words) dec.feed(w);
  EXPECT_EQ(frames, 0);
  EXPECT_EQ(dec.crc_errors(), 1u);
}

TEST(Framing, LostFrameCountedAsSequenceGap) {
  FrameEncoder enc;
  int frames = 0;
  FrameDecoder dec{
      [&](std::uint8_t, const std::vector<AetrWord>&) { ++frames; }};
  const auto f0 = enc.encode(make_batch(0, 2));
  const auto f1 = enc.encode(make_batch(0, 2));  // lost in transit
  const auto f2 = enc.encode(make_batch(0, 2));
  for (const auto w : f0) dec.feed(w);
  (void)f1;
  for (const auto w : f2) dec.feed(w);
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(dec.sequence_gaps(), 1u);
}

TEST(Framing, ResyncAfterJoiningMidStream) {
  FrameEncoder enc;
  int frames = 0;
  FrameDecoder dec{
      [&](std::uint8_t, const std::vector<AetrWord>&) { ++frames; }};
  const auto f0 = enc.encode(make_batch(0, 6));
  const auto f1 = enc.encode(make_batch(50, 4));
  // The MCU starts listening halfway through frame 0.
  for (std::size_t i = 3; i < f0.size(); ++i) dec.feed(f0[i]);
  for (const auto w : f1) dec.feed(w);
  EXPECT_GE(frames, 1);       // frame 1 recovered
  EXPECT_GT(dec.resyncs(), 0u);
}

TEST(Framing, RandomNoiseNeverCrashes) {
  FrameDecoder dec{[](std::uint8_t, const std::vector<AetrWord>&) {}};
  Xoshiro256StarStar rng{1};
  for (int i = 0; i < 100000; ++i) {
    dec.feed(static_cast<std::uint32_t>(rng.next()));
  }
  // Statistically some words look like headers; none should survive CRC.
  EXPECT_EQ(dec.frames_ok(), 0u);
  EXPECT_GT(dec.resyncs(), 0u);
}

TEST(Framing, OversizeBatchRejected) {
  FrameEncoder enc;
  EXPECT_THROW(enc.encode(make_batch(0, 0x10000)), std::invalid_argument);
}

}  // namespace
}  // namespace aetr::i2s
