// Determinism regression: identical seeds and configurations must yield
// bit-identical results across runs — the property that makes every number
// in EXPERIMENTS.md reproducible.
#include <gtest/gtest.h>

#include "analysis/error.hpp"
#include "cochlea/audio.hpp"
#include "cochlea/cochlea.hpp"
#include "core/scenario.hpp"
#include "gen/sources.hpp"
#include "vision/dvs.hpp"

namespace aetr {
namespace {

using namespace time_literals;

core::RunResult run_once(std::uint64_t seed) {
  core::ScenarioConfig sc;
  sc.interface.fifo.batch_threshold = 128;
  sc.interface.front_end.metastability_prob = 0.01;  // exercises the RNG
  gen::PoissonSource src{40e3, 128, seed};
  return core::run_scenario(sc, gen::take(src, 1500));
}

TEST(Determinism, FullRunsAreBitIdentical) {
  const auto a = run_once(7);
  const auto b = run_once(7);
  EXPECT_EQ(a.activity.sampling_cycles, b.activity.sampling_cycles);
  EXPECT_EQ(a.activity.osc_awake.count_ps(), b.activity.osc_awake.count_ps());
  EXPECT_DOUBLE_EQ(a.average_power_w, b.average_power_w);
  EXPECT_DOUBLE_EQ(a.error.mean_rel_error(), b.error.mean_rel_error());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].word, b.records[i].word);
    EXPECT_EQ(a.records[i].sample_edge, b.records[i].sample_edge);
  }
  ASSERT_EQ(a.decoded.size(), b.decoded.size());
  for (std::size_t i = 0; i < a.decoded.size(); ++i) {
    EXPECT_EQ(a.decoded[i].reconstructed_time,
              b.decoded[i].reconstructed_time);
  }
}

TEST(Determinism, DifferentSeedsDiffer) {
  const auto a = run_once(7);
  const auto b = run_once(8);
  EXPECT_NE(a.records.front().word.raw(), b.records.front().word.raw());
}

TEST(Determinism, CochleaPipelineIsReproducible) {
  auto render = [] {
    cochlea::CochleaModel model;
    cochlea::AudioSynth synth{model.config().sample_rate, 99};
    auto audio = synth.word(cochlea::AudioSynth::demo_word());
    synth.add_background(audio, 0.02);
    return model.process(audio);
  };
  EXPECT_EQ(render(), render());
}

TEST(Determinism, DvsPipelineIsReproducible) {
  auto render = [] {
    vision::DvsConfig cfg;
    cfg.background_rate_hz = 5.0;
    vision::DvsSensor sensor{cfg};
    vision::SceneGenerator scene{cfg.width, cfg.height};
    return sensor.process(scene.sweeping_bar(1e3, 100_ms));
  };
  EXPECT_EQ(render(), render());
}

TEST(Determinism, ErrorSweepReproducible) {
  clockgen::ScheduleConfig cfg;
  const auto a = analysis::sweep_error(cfg, 25e3, {.n_events = 2000, .seed = 3});
  const auto b = analysis::sweep_error(cfg, 25e3, {.n_events = 2000, .seed = 3});
  EXPECT_DOUBLE_EQ(a.mean_rel_error(), b.mean_rel_error());
  EXPECT_DOUBLE_EQ(a.weighted_rel_error(), b.weighted_rel_error());
  EXPECT_EQ(a.sub_nyquist, b.sub_nyquist);
}

TEST(Determinism, GoldenHeadlineNumbers) {
  // Regression pin on the headline reproduction numbers (default
  // calibration and parameters). If a refactor shifts these, EXPERIMENTS.md
  // must be re-baselined deliberately.
  const auto r = run_once(7);
  // 40 kevt/s, theta 64, with the 2-FF synchroniser in the loop: the
  // weighted error sits near (but within) the widened ~3x bound.
  EXPECT_LT(r.error.weighted_rel_error(), 0.04);
  EXPECT_GT(r.error.weighted_rel_error(), 0.001);
  // Power in the active-region plateau: ~2.1-3 mW.
  EXPECT_GT(r.average_power_w, 1.5e-3);
  EXPECT_LT(r.average_power_w, 3.5e-3);
}

}  // namespace
}  // namespace aetr
