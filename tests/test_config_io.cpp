// Tests for the textual InterfaceConfig format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/config_io.hpp"

namespace aetr::core {
namespace {

TEST(ConfigIo, DefaultsWhenEmpty) {
  std::stringstream ss{""};
  const auto cfg = load_config(ss);
  EXPECT_EQ(cfg.clock.theta_div, 64u);
  EXPECT_EQ(cfg.clock.n_div, 8u);
  EXPECT_EQ(cfg.fifo.capacity_words, 2300u);
}

TEST(ConfigIo, ParsesKeysAndComments) {
  std::stringstream ss{
      "# comment\n"
      "\n"
      "clock.theta_div = 16\n"
      "  clock.n_div=5  \n"
      "fifo.batch_threshold = 128\n"
      "clock.divide_enabled = false\n"
      "i2s.sck_mhz = 12.288\n"};
  const auto cfg = load_config(ss);
  EXPECT_EQ(cfg.clock.theta_div, 16u);
  EXPECT_EQ(cfg.clock.n_div, 5u);
  EXPECT_EQ(cfg.fifo.batch_threshold, 128u);
  EXPECT_FALSE(cfg.clock.divide_enabled);
  EXPECT_NEAR(cfg.i2s.sck.to_mhz(), 12.288, 1e-9);
}

TEST(ConfigIo, UnknownKeyThrows) {
  std::stringstream ss{"clock.theta = 16\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, MissingEqualsThrows) {
  std::stringstream ss{"clock.theta_div 16\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, BadNumberThrows) {
  std::stringstream ss{"clock.theta_div = banana\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, TrailingJunkThrows) {
  std::stringstream ss{"clock.ring_mhz = 120 MHz\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, RangeValidation) {
  std::stringstream a{"clock.theta_div = 0\n"};
  EXPECT_THROW(load_config(a), std::runtime_error);
  std::stringstream b{"clock.n_div = 31\n"};
  EXPECT_THROW(load_config(b), std::runtime_error);
  std::stringstream c{"clock.theta_div = -4\n"};
  EXPECT_THROW(load_config(c), std::runtime_error);
}

TEST(ConfigIo, BooleanSpellings) {
  for (const char* spelling : {"true", "1", "on"}) {
    std::stringstream ss{std::string("clock.shutdown_enabled = ") + spelling};
    EXPECT_TRUE(load_config(ss).clock.shutdown_enabled);
  }
  for (const char* spelling : {"false", "0", "off"}) {
    std::stringstream ss{std::string("clock.shutdown_enabled = ") + spelling};
    EXPECT_FALSE(load_config(ss).clock.shutdown_enabled);
  }
  std::stringstream bad{"clock.shutdown_enabled = maybe"};
  EXPECT_THROW(load_config(bad), std::runtime_error);
}

TEST(ConfigIo, DumpLoadRoundTrip) {
  InterfaceConfig cfg;
  cfg.clock.theta_div = 32;
  cfg.clock.n_div = 6;
  cfg.clock.divide_enabled = false;
  cfg.front_end.metastability_prob = 0.001;
  cfg.fifo.batch_threshold = 777;
  cfg.i2s.sck = Frequency::mhz(12.288);
  cfg.calibration.static_w = 60e-6;

  std::stringstream ss{dump_config(cfg)};
  const auto back = load_config(ss);
  EXPECT_EQ(back.clock.theta_div, 32u);
  EXPECT_EQ(back.clock.n_div, 6u);
  EXPECT_FALSE(back.clock.divide_enabled);
  EXPECT_NEAR(back.front_end.metastability_prob, 0.001, 1e-12);
  EXPECT_EQ(back.fifo.batch_threshold, 777u);
  EXPECT_NEAR(back.i2s.sck.to_mhz(), 12.288, 1e-6);
  EXPECT_NEAR(back.calibration.static_w, 60e-6, 1e-12);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(load_config_file("/nonexistent/aetr.conf"), std::runtime_error);
}

TEST(ConfigIo, DrainTimeoutKey) {
  std::stringstream ss{"drain_timeout_us = 5000\n"};
  EXPECT_EQ(load_config(ss).drain_timeout, Time::ms(5.0));
  InterfaceConfig cfg;
  cfg.drain_timeout = Time::us(250.0);
  std::stringstream rt{dump_config(cfg)};
  EXPECT_EQ(load_config(rt).drain_timeout, Time::us(250.0));
}

TEST(ConfigIo, PowerCalibrationKeys) {
  std::stringstream ss{
      "power.static_uw = 75\n"
      "power.osc_domain_mw = 1.5\n"};
  const auto cfg = load_config(ss);
  EXPECT_NEAR(cfg.calibration.static_w, 75e-6, 1e-12);
  EXPECT_NEAR(cfg.calibration.osc_domain_w, 1.5e-3, 1e-12);
}

}  // namespace
}  // namespace aetr::core
