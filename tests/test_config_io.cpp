// Tests for the textual InterfaceConfig format.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/config_io.hpp"

namespace aetr::core {
namespace {

TEST(ConfigIo, DefaultsWhenEmpty) {
  std::stringstream ss{""};
  const auto cfg = load_config(ss);
  EXPECT_EQ(cfg.clock.theta_div, 64u);
  EXPECT_EQ(cfg.clock.n_div, 8u);
  EXPECT_EQ(cfg.fifo.capacity_words, 2300u);
}

TEST(ConfigIo, ParsesKeysAndComments) {
  std::stringstream ss{
      "# comment\n"
      "\n"
      "clock.theta_div = 16\n"
      "  clock.n_div=5  \n"
      "fifo.batch_threshold = 128\n"
      "clock.divide_enabled = false\n"
      "i2s.sck_mhz = 12.288\n"};
  const auto cfg = load_config(ss);
  EXPECT_EQ(cfg.clock.theta_div, 16u);
  EXPECT_EQ(cfg.clock.n_div, 5u);
  EXPECT_EQ(cfg.fifo.batch_threshold, 128u);
  EXPECT_FALSE(cfg.clock.divide_enabled);
  EXPECT_NEAR(cfg.i2s.sck.to_mhz(), 12.288, 1e-9);
}

TEST(ConfigIo, UnknownKeyThrows) {
  std::stringstream ss{"clock.theta = 16\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, MissingEqualsThrows) {
  std::stringstream ss{"clock.theta_div 16\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, BadNumberThrows) {
  std::stringstream ss{"clock.theta_div = banana\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, TrailingJunkThrows) {
  std::stringstream ss{"clock.ring_mhz = 120 MHz\n"};
  EXPECT_THROW(load_config(ss), std::runtime_error);
}

TEST(ConfigIo, RangeValidation) {
  std::stringstream a{"clock.theta_div = 0\n"};
  EXPECT_THROW(load_config(a), std::runtime_error);
  std::stringstream b{"clock.n_div = 31\n"};
  EXPECT_THROW(load_config(b), std::runtime_error);
  std::stringstream c{"clock.theta_div = -4\n"};
  EXPECT_THROW(load_config(c), std::runtime_error);
}

TEST(ConfigIo, BooleanSpellings) {
  for (const char* spelling : {"true", "1", "on"}) {
    std::stringstream ss{std::string("clock.shutdown_enabled = ") + spelling};
    EXPECT_TRUE(load_config(ss).clock.shutdown_enabled);
  }
  for (const char* spelling : {"false", "0", "off"}) {
    std::stringstream ss{std::string("clock.shutdown_enabled = ") + spelling};
    EXPECT_FALSE(load_config(ss).clock.shutdown_enabled);
  }
  std::stringstream bad{"clock.shutdown_enabled = maybe"};
  EXPECT_THROW(load_config(bad), std::runtime_error);
}

TEST(ConfigIo, DumpLoadRoundTrip) {
  InterfaceConfig cfg;
  cfg.clock.theta_div = 32;
  cfg.clock.n_div = 6;
  cfg.clock.divide_enabled = false;
  cfg.front_end.metastability_prob = 0.001;
  cfg.fifo.batch_threshold = 777;
  cfg.i2s.sck = Frequency::mhz(12.288);
  cfg.calibration.static_w = 60e-6;

  std::stringstream ss{dump_config(cfg)};
  const auto back = load_config(ss);
  EXPECT_EQ(back.clock.theta_div, 32u);
  EXPECT_EQ(back.clock.n_div, 6u);
  EXPECT_FALSE(back.clock.divide_enabled);
  EXPECT_NEAR(back.front_end.metastability_prob, 0.001, 1e-12);
  EXPECT_EQ(back.fifo.batch_threshold, 777u);
  EXPECT_NEAR(back.i2s.sck.to_mhz(), 12.288, 1e-6);
  EXPECT_NEAR(back.calibration.static_w, 60e-6, 1e-12);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(load_config_file("/nonexistent/aetr.conf"), std::runtime_error);
}

TEST(ConfigIo, DrainTimeoutKey) {
  std::stringstream ss{"drain_timeout_us = 5000\n"};
  EXPECT_EQ(load_config(ss).drain_timeout, Time::ms(5.0));
  InterfaceConfig cfg;
  cfg.drain_timeout = Time::us(250.0);
  std::stringstream rt{dump_config(cfg)};
  EXPECT_EQ(load_config(rt).drain_timeout, Time::us(250.0));
}

TEST(ConfigIo, PowerCalibrationKeys) {
  std::stringstream ss{
      "power.static_uw = 75\n"
      "power.osc_domain_mw = 1.5\n"};
  const auto cfg = load_config(ss);
  EXPECT_NEAR(cfg.calibration.static_w, 75e-6, 1e-12);
  EXPECT_NEAR(cfg.calibration.osc_domain_w, 1.5e-3, 1e-12);
}


// --- ScenarioConfig serialization -------------------------------------------

TEST(ScenarioIo, DefaultsRoundTripByteIdentical) {
  const ScenarioConfig scenario;
  const std::string first = dump_scenario(scenario);
  std::stringstream ss{first};
  const auto back = load_scenario(ss);
  EXPECT_EQ(dump_scenario(back), first);
}

TEST(ScenarioIo, EveryFaultKindRoundTrips) {
  ScenarioConfig scenario;
  scenario.interface.clock.theta_div = 32;
  scenario.interface.fifo.batch_threshold = 96;
  scenario.interface.fifo.overflow_policy = buffer::OverflowPolicy::kDropOldest;
  scenario.sender.addr_setup = Time::ns(7.0);
  scenario.sender.req_release = Time::ns(9.0);
  scenario.sender.min_gap = Time::ns(11.0);
  scenario.cooldown = Time::us(450.0);
  scenario.strict_protocol = true;
  scenario.final_flush = false;
  scenario.attach_mcu = false;
  scenario.faults.seed = 20260807;
  scenario.faults.aer.drop_req_prob = 0.01;
  scenario.faults.aer.stuck_ack_prob = 0.02;
  scenario.faults.aer.addr_bit_flip_prob = 0.03;
  scenario.faults.aer.runt_req_prob = 0.04;
  scenario.faults.aer.runt_width = Time::ns(155.0);
  scenario.faults.clock.period_jitter_rel = 0.05;
  scenario.faults.clock.wake_jitter_rel = 0.06;
  scenario.faults.fifo.cell_bit_flip_prob = 0.07;
  scenario.faults.spi.word_bit_flip_prob = 0.08;
  scenario.faults.i2s.bit_error_rate = 0.005;
  scenario.faults.recovery.watchdog = false;
  scenario.faults.recovery.watchdog_timeout = Time::us(25.0);
  scenario.faults.recovery.fifo_parity = false;
  scenario.faults.recovery.crc_frames = false;
  telemetry::SessionOptions tel;
  tel.trace = true;
  tel.metrics = true;
  tel.metrics_window = Time::ms(3.0);
  tel.trace_json_path = "/tmp/t.json";
  scenario.telemetry = TelemetryChoice::owned(tel);

  const std::string first = dump_scenario(scenario);
  std::stringstream ss{first};
  const auto back = load_scenario(ss);
  EXPECT_EQ(dump_scenario(back), first);  // dump -> load -> dump, byte-exact

  EXPECT_EQ(back.interface.clock.theta_div, 32u);
  EXPECT_EQ(back.interface.fifo.overflow_policy,
            buffer::OverflowPolicy::kDropOldest);
  EXPECT_EQ(back.sender.min_gap, Time::ns(11.0));
  EXPECT_EQ(back.cooldown, Time::us(450.0));
  EXPECT_TRUE(back.strict_protocol);
  EXPECT_FALSE(back.final_flush);
  EXPECT_FALSE(back.attach_mcu);
  EXPECT_EQ(back.faults.seed, 20260807u);
  EXPECT_NEAR(back.faults.aer.drop_req_prob, 0.01, 1e-12);
  EXPECT_NEAR(back.faults.aer.addr_bit_flip_prob, 0.03, 1e-12);
  EXPECT_EQ(back.faults.aer.runt_width, Time::ns(155.0));
  EXPECT_NEAR(back.faults.clock.period_jitter_rel, 0.05, 1e-12);
  EXPECT_NEAR(back.faults.fifo.cell_bit_flip_prob, 0.07, 1e-12);
  EXPECT_NEAR(back.faults.spi.word_bit_flip_prob, 0.08, 1e-12);
  EXPECT_NEAR(back.faults.i2s.bit_error_rate, 0.005, 1e-12);
  EXPECT_FALSE(back.faults.recovery.watchdog);
  EXPECT_EQ(back.faults.recovery.watchdog_timeout, Time::us(25.0));
  EXPECT_FALSE(back.faults.recovery.fifo_parity);
  EXPECT_FALSE(back.faults.recovery.crc_frames);
  ASSERT_EQ(back.telemetry.mode(), TelemetryChoice::Mode::kOwned);
  EXPECT_TRUE(back.telemetry.options().trace);
  EXPECT_EQ(back.telemetry.options().metrics_window, Time::ms(3.0));
  EXPECT_EQ(back.telemetry.options().trace_json_path, "/tmp/t.json");
}

TEST(ScenarioIo, InterfaceFileIsValidScenarioFile) {
  std::stringstream ss{dump_config(InterfaceConfig{})};
  const auto scenario = load_scenario(ss);
  EXPECT_FALSE(scenario.faults.any());
  EXPECT_EQ(scenario.telemetry.mode(), TelemetryChoice::Mode::kOff);
}

TEST(ScenarioIo, UnknownKeyThrows) {
  std::stringstream ss{"fault.aer.drop_req = 0.5\n"};
  EXPECT_THROW(load_scenario(ss), std::runtime_error);
}

TEST(ScenarioIo, OutOfRangeProbabilityThrowsAtLoad) {
  std::stringstream ss{"fault.fifo.cell_bit_flip_prob = 1.25\n"};
  EXPECT_THROW(load_scenario(ss), std::invalid_argument);
}

TEST(ScenarioIo, UnknownKeySuggestsNearestKey) {
  // A one-letter typo must fail with a did-you-mean hint naming the real
  // key, so a misspelt scenario file is a one-line fix, not a hunt.
  std::stringstream ss{"fifo.overlow_policy = drop_oldest\n"};
  try {
    (void)load_scenario(ss);
    FAIL() << "expected unknown-key rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fifo.overlow_policy"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'fifo.overflow_policy'"),
              std::string::npos)
        << msg;
  }
}

TEST(ScenarioIo, RemovedRunAliasesAreRejected) {
  // The pre-Session run.* spellings were deprecated aliases for exactly one
  // release; they are gone now and must fail like any other unknown key.
  for (const char* line : {"run.cooldown_us = 5\n", "run.fast_forward = on\n",
                           "run.strict_protocol = on\n",
                           "run.final_flush = off\n", "run.attach_mcu = on\n",
                           "run.energy_ledger = on\n"}) {
    std::stringstream ss{line};
    try {
      (void)load_scenario(ss);
      FAIL() << "expected rejection of removed alias: " << line;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find("unknown key"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ScenarioIo, SuggestScenarioKeyDistanceCutoff) {
  EXPECT_EQ(suggest_scenario_key("clock.n_dib"), "clock.n_div");
  EXPECT_EQ(suggest_scenario_key("colck.theta_div"), "clock.theta_div");
  // Nothing plausibly close: no suggestion rather than a misleading one.
  EXPECT_EQ(suggest_scenario_key("zzzzzzzzzzzz"), "");
}

TEST(ScenarioIo, ApplyScenarioKeySetsAndValidates) {
  ScenarioConfig scenario;
  apply_scenario_key(scenario, "clock.n_div", "5");
  apply_scenario_key(scenario, "fifo.batch_threshold", "256");
  EXPECT_EQ(scenario.interface.clock.n_div, 5u);
  EXPECT_EQ(scenario.interface.fifo.batch_threshold, 256u);
  EXPECT_THROW(apply_scenario_key(scenario, "clock.n_dib", "5"),
               std::runtime_error);
  EXPECT_THROW(apply_scenario_key(scenario, "clock.n_div", "bogus"),
               std::runtime_error);
}

TEST(ScenarioIo, ScenarioKeysCoverTheDumpFormat) {
  // Every key dump_scenario() emits must be in scenario_keys(): the list
  // is what the optimizer and the did-you-mean hint search.
  const auto keys = scenario_keys();
  EXPECT_FALSE(keys.empty());
  std::istringstream dump{dump_scenario(ScenarioConfig{})};
  std::string line;
  while (std::getline(dump, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos || line[0] == '#') continue;
    auto key = line.substr(0, eq);
    while (!key.empty() && key.back() == ' ') key.pop_back();
    EXPECT_NE(std::find(keys.begin(), keys.end(), key), keys.end())
        << "dumped key missing from scenario_keys(): " << key;
  }
}

TEST(ScenarioIo, BorrowedTelemetryDumpsAsOff) {
  // A borrowed session is an in-process handle; it must serialise as
  // telemetry off rather than leak a dangling reference into the file.
  telemetry::TelemetrySession session{telemetry::SessionOptions{}};
  ScenarioConfig scenario;
  scenario.telemetry = TelemetryChoice::borrowed(&session);
  EXPECT_EQ(dump_scenario(scenario), dump_scenario(ScenarioConfig{}));
}

}  // namespace
}  // namespace aetr::core
