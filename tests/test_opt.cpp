// aetr::opt — deterministic multi-objective design-space optimizer.
//
// The tests mirror the subsystem's three layers: the SearchSpace (typed
// axes, text round-trip, eager key validation), the ParetoFront (dominance
// and exact hypervolume, including the degenerate shapes the issue calls
// out), and optimize() end-to-end (byte-identical artifacts across --jobs,
// interrupt + resume equivalence, and the headline claim that the quick
// halving search strictly dominates the paper-default configuration).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "opt/evaluator.hpp"
#include "opt/optimizer.hpp"
#include "opt/pareto.hpp"
#include "opt/search_space.hpp"

using namespace aetr;
using opt::ParetoFront;
using opt::ParetoPoint;
using opt::SearchSpace;

// --- search space ----------------------------------------------------------

TEST(SearchSpace, DumpParseRoundTrip) {
  SearchSpace space;
  space.linear("power.static_uw", 1.0, 5.0, 4)
      .log("drain_timeout_us", 100.0, 1600.0, 5)
      .log_int("fifo.batch_threshold", 64, 2048, 6)
      .integer("clock.n_div", 4, 10)
      .choice("clock.theta_div", {16, 32, 64});
  const std::string text = space.dump();
  std::istringstream is{text};
  const auto parsed = SearchSpace::parse(is);
  EXPECT_EQ(parsed.dump(), text);
  ASSERT_EQ(parsed.size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(parsed.axes()[i].key, space.axes()[i].key);
    EXPECT_EQ(parsed.axes()[i].grid_values(), space.axes()[i].grid_values());
  }
}

TEST(SearchSpace, ParseAcceptsCommentsAndBlankLines) {
  std::istringstream is{
      "# tuning axes\n"
      "\n"
      "clock.n_div = int(4, 10)\n"
      "clock.theta_div = choice(16, 32)  # trailing comment\n"};
  const auto space = SearchSpace::parse(is);
  ASSERT_EQ(space.size(), 2u);
  EXPECT_EQ(space.axes()[0].grid_values().size(), 7u);
  EXPECT_EQ(space.axes()[1].grid_values(), (std::vector<double>{16, 32}));
}

TEST(SearchSpace, UnknownKeyFailsEagerlyWithSuggestion) {
  SearchSpace space;
  try {
    space.integer("clock.n_dib", 4, 10);
    FAIL() << "expected unknown-key rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scenario key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'clock.n_div'"), std::string::npos)
        << msg;
  }
}

TEST(SearchSpace, TelemetryAxesRejected) {
  // Observers must not join the search: a telemetry knob changes what is
  // recorded, not how the interface behaves.
  SearchSpace space;
  EXPECT_THROW(space.choice("telemetry.trace", {0, 1}), std::runtime_error);
  std::istringstream is{"telemetry.trace = choice(0, 1)\n"};
  EXPECT_THROW((void)SearchSpace::parse(is), std::runtime_error);
}

TEST(SearchSpace, BuilderRejectsDegenerateDomains) {
  SearchSpace space;
  EXPECT_THROW(space.linear("clock.n_div", 10, 4, 3), std::runtime_error);
  EXPECT_THROW(space.log("power.static_uw", 0.0, 1.0, 3),
               std::runtime_error);
  EXPECT_THROW(space.linear("clock.n_div", 4, 10, 0), std::runtime_error);
  EXPECT_THROW(space.choice("clock.n_div", {}), std::runtime_error);
  space.integer("clock.n_div", 4, 10);
  EXPECT_THROW(space.integer("clock.n_div", 4, 10), std::runtime_error);
}

TEST(SearchSpace, LogIntGridIsDeduplicatedIntegers) {
  SearchSpace space;
  space.log_int("fifo.batch_threshold", 64, 2048, 6);
  const auto grid = space.axes()[0].grid_values();
  ASSERT_GE(grid.size(), 2u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i], std::round(grid[i]));
    if (i) {
      EXPECT_LT(grid[i - 1], grid[i]);
    }
  }
  EXPECT_EQ(grid.front(), 64.0);
  EXPECT_EQ(grid.back(), 2048.0);
}

TEST(SearchSpace, FactorialDecodeIsRowMajor) {
  SearchSpace space;
  space.choice("clock.theta_div", {16, 32, 64}).integer("clock.n_div", 4, 5);
  ASSERT_EQ(space.factorial_size(), 6u);
  // First axis slowest: index runs n_div fastest.
  EXPECT_EQ(space.factorial_point(0), (std::vector<double>{16, 4}));
  EXPECT_EQ(space.factorial_point(1), (std::vector<double>{16, 5}));
  EXPECT_EQ(space.factorial_point(2), (std::vector<double>{32, 4}));
  EXPECT_EQ(space.factorial_point(5), (std::vector<double>{64, 5}));
}

TEST(SearchSpace, SamplingIsSeedPureAndInDomain) {
  const auto space = SearchSpace::default_space();
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const auto a = space.sample(seed);
    const auto b = space.sample(seed);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), space.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto& axis = space.axes()[i];
      if (axis.kind == opt::AxisKind::kChoice) {
        const auto& cs = axis.choices;
        EXPECT_NE(std::find(cs.begin(), cs.end(), a[i]), cs.end());
      } else {
        EXPECT_GE(a[i], axis.lo);
        EXPECT_LE(a[i], axis.hi);
      }
    }
  }
  EXPECT_NE(space.sample(1), space.sample(2));
}

TEST(SearchSpace, ApplyReachesTheScenario) {
  SearchSpace space;
  space.integer("clock.n_div", 4, 10)
      .log_int("fifo.batch_threshold", 64, 2048, 6);
  core::ScenarioConfig sc;
  space.apply(sc, {5, 256});
  EXPECT_EQ(sc.interface.clock.n_div, 5u);
  EXPECT_EQ(sc.interface.fifo.batch_threshold, 256u);
  EXPECT_THROW(space.apply(sc, {5}), std::runtime_error);
}

// --- pareto front ----------------------------------------------------------

TEST(Pareto, DominanceIsStrict) {
  EXPECT_TRUE(opt::dominates({1, 2}, {2, 2}));
  EXPECT_TRUE(opt::dominates({1, 1}, {2, 2}));
  EXPECT_FALSE(opt::dominates({1, 2}, {1, 2}));  // equal: not strict
  EXPECT_FALSE(opt::dominates({1, 3}, {2, 2}));  // trade-off: incomparable
  EXPECT_FALSE(opt::dominates({2, 2}, {1, 2}));
  EXPECT_THROW((void)opt::dominates({1}, {1, 2}), std::invalid_argument);
}

TEST(Pareto, AddKeepsNonDominatedSetSorted) {
  ParetoFront front;
  EXPECT_TRUE(front.add({0, {}, {3, 1}}));
  EXPECT_TRUE(front.add({1, {}, {1, 3}}));
  EXPECT_FALSE(front.add({2, {}, {3, 3}}));  // dominated by both
  EXPECT_TRUE(front.add({3, {}, {2, 2}}));   // incomparable: joins
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front.points()[0].objectives, (std::vector<double>{1, 3}));
  EXPECT_EQ(front.points()[1].objectives, (std::vector<double>{2, 2}));
  EXPECT_EQ(front.points()[2].objectives, (std::vector<double>{3, 1}));
  // A new dominator evicts everything it beats.
  EXPECT_TRUE(front.add({4, {}, {1, 1}}));
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.points()[0].id, 4u);
}

TEST(Pareto, DuplicateObjectiveVectorsKeepFirstId) {
  ParetoFront front;
  EXPECT_TRUE(front.add({7, {}, {1, 2}}));
  EXPECT_FALSE(front.add({3, {}, {1, 2}}));  // same trade-off: dropped
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.points()[0].id, 7u);
}

TEST(Pareto, SingleObjectiveFrontIsTheMinimum) {
  ParetoFront front;
  EXPECT_TRUE(front.add({0, {}, {5}}));
  EXPECT_TRUE(front.add({1, {}, {2}}));
  EXPECT_FALSE(front.add({2, {}, {3}}));
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.points()[0].objectives, (std::vector<double>{2}));
  EXPECT_DOUBLE_EQ(front.hypervolume({10}), 8.0);
}

TEST(Pareto, ContainsDominatorOf) {
  ParetoFront front;
  front.add({0, {}, {1, 3}});
  front.add({1, {}, {3, 1}});
  EXPECT_TRUE(front.contains_dominator_of({2, 4}));
  EXPECT_FALSE(front.contains_dominator_of({1, 3}));  // equal, not strict
  EXPECT_FALSE(front.contains_dominator_of({2, 2}));
  EXPECT_FALSE(front.contains_dominator_of({0, 0}));
}

TEST(Pareto, HypervolumeKnownValues2D) {
  ParetoFront front;
  EXPECT_DOUBLE_EQ(front.hypervolume({3, 3}), 0.0);  // empty front
  front.add({0, {}, {1, 2}});
  front.add({1, {}, {2, 1}});
  // Boxes [1,3]x[2,3] and [2,3]x[1,3]: 2 + 2 - 1 overlap = 3.
  EXPECT_DOUBLE_EQ(front.hypervolume({3, 3}), 3.0);
  // A member on the reference contributes nothing.
  ParetoFront edge;
  edge.add({0, {}, {3, 1}});
  EXPECT_DOUBLE_EQ(edge.hypervolume({3, 3}), 0.0);
}

TEST(Pareto, HypervolumeKnownValues3D) {
  ParetoFront front;
  front.add({0, {}, {0, 1, 1}});
  front.add({1, {}, {1, 0, 0}});
  // [0,2]x[1,2]x[1,2] = 2 and [1,2]x[0,2]x[0,2] = 4, overlap
  // [1,2]x[1,2]x[1,2] = 1: union = 5.
  EXPECT_DOUBLE_EQ(front.hypervolume({2, 2, 2}), 5.0);
}

// --- evaluator -------------------------------------------------------------

TEST(Evaluator, ParseObjectives) {
  using opt::Objective;
  const auto v = opt::parse_objectives("energy,error,loss,latency");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], Objective::kEnergyPerEvent);
  EXPECT_EQ(v[3], Objective::kLatencyP99);
  EXPECT_EQ(opt::parse_objectives("error").size(), 1u);
  EXPECT_THROW((void)opt::parse_objectives(""), std::runtime_error);
  EXPECT_THROW((void)opt::parse_objectives("energy,energy"),
               std::runtime_error);
  EXPECT_THROW((void)opt::parse_objectives("joules"), std::runtime_error);
}

TEST(Evaluator, PairedEvaluationIsSeedPure) {
  const core::ScenarioConfig sc;
  opt::Workload wl;
  wl.n_events = 300;
  const std::vector<opt::Objective> objs{opt::Objective::kEnergyPerEvent,
                                         opt::Objective::kErrorRms,
                                         opt::Objective::kLoss,
                                         opt::Objective::kLatencyP99};
  const auto a = opt::evaluate(sc, wl, objs, 99);
  const auto b = opt::evaluate(sc, wl, objs, 99);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(a.events_in, b.events_in);
  EXPECT_EQ(a.words_out, b.words_out);
  ASSERT_EQ(a.objectives.size(), 4u);
  EXPECT_GT(a.energy_per_event_j, 0.0);
  EXPECT_GT(a.delivered, 0.0);
  EXPECT_LE(a.delivered, 1.0);
  // A different stream seed changes the (Poisson) workload.
  const auto c = opt::evaluate(sc, wl, objs, 100);
  EXPECT_NE(a.objectives, c.objectives);
}

// --- optimizer end-to-end --------------------------------------------------

namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream is{p, std::ios::binary};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

opt::OptOptions quick_options(const std::filesystem::path& dir) {
  opt::OptOptions options;
  options.strategy = opt::Strategy::kHalving;
  options.budget = 8;
  options.workload.n_events = 800;
  options.out_dir = dir.string();
  return options;
}

const char* const kArtifacts[] = {
    "aetr_opt_trials.csv", "aetr_opt_pareto.csv", "aetr_opt_pareto.svg",
    "aetr_opt_summary.json", "aetr_opt_checkpoint.csv"};

}  // namespace

TEST(Optimizer, ArtifactsByteIdenticalAcrossJobs) {
  const auto base_dir =
      std::filesystem::temp_directory_path() / "aetr_opt_jobs";
  std::filesystem::remove_all(base_dir);
  const auto space = SearchSpace::default_space();
  const core::ScenarioConfig base;
  std::vector<opt::OptResult> results;
  for (std::size_t jobs : {1u, 4u}) {
    const auto dir = base_dir / ("j" + std::to_string(jobs));
    std::filesystem::create_directories(dir);
    auto options = quick_options(dir);
    options.jobs = jobs;
    results.push_back(opt::optimize(space, base, options));
  }
  ASSERT_EQ(results[0].trials.size(), results[1].trials.size());
  for (std::size_t i = 0; i < results[0].trials.size(); ++i) {
    EXPECT_EQ(results[0].trials[i].eval.objectives,
              results[1].trials[i].eval.objectives);
  }
  for (const char* name : kArtifacts) {
    EXPECT_EQ(slurp(base_dir / "j1" / name), slurp(base_dir / "j4" / name))
        << name;
  }
  std::filesystem::remove_all(base_dir);
}

TEST(Optimizer, InterruptThenResumeMatchesUninterrupted) {
  const auto base_dir =
      std::filesystem::temp_directory_path() / "aetr_opt_resume";
  std::filesystem::remove_all(base_dir);
  std::filesystem::create_directories(base_dir / "straight");
  std::filesystem::create_directories(base_dir / "resumed");
  const auto space = SearchSpace::default_space();
  const core::ScenarioConfig base;

  auto straight = quick_options(base_dir / "straight");
  (void)opt::optimize(space, base, straight);

  auto interrupted = quick_options(base_dir / "resumed");
  interrupted.interrupt_after = 5;
  EXPECT_THROW((void)opt::optimize(space, base, interrupted),
               opt::OptInterrupted);

  auto resumed = quick_options(base_dir / "resumed");
  resumed.resume = true;
  const auto result = opt::optimize(space, base, resumed);
  EXPECT_LT(result.evaluations_run, result.trials.size());

  for (const char* name : kArtifacts) {
    EXPECT_EQ(slurp(base_dir / "straight" / name),
              slurp(base_dir / "resumed" / name))
        << name;
  }
  std::filesystem::remove_all(base_dir);
}

TEST(Optimizer, ResumeOfCompletedRunReEvaluatesNothing) {
  const auto dir = std::filesystem::temp_directory_path() / "aetr_opt_done";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto space = SearchSpace::default_space();
  const core::ScenarioConfig base;
  const auto first = opt::optimize(space, base, quick_options(dir));
  EXPECT_GT(first.evaluations_run, 0u);
  auto again = quick_options(dir);
  again.resume = true;
  const auto second = opt::optimize(space, base, again);
  EXPECT_EQ(second.evaluations_run, 0u);
  EXPECT_EQ(second.hypervolume, first.hypervolume);
  std::filesystem::remove_all(dir);
}

TEST(Optimizer, QuickHalvingStrictlyDominatesPaperDefault) {
  // The acceptance claim: on the fig6 active-region workload the quick
  // search finds a configuration strictly better than the paper default on
  // both (energy per event, timestamp RMS error).
  const auto dir = std::filesystem::temp_directory_path() / "aetr_opt_dom";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto options = quick_options(dir);
  options.budget = 16;
  options.workload.n_events = 2000;
  const auto result =
      opt::optimize(SearchSpace::default_space(), core::ScenarioConfig{},
                    options);
  EXPECT_TRUE(result.dominated_baseline);
  EXPECT_TRUE(result.front.contains_dominator_of(
      result.baseline.objectives));
  EXPECT_GT(result.hypervolume, 0.0);
  ASSERT_FALSE(result.front.empty());
  EXPECT_LT(result.front.points().front().objectives[0],
            result.baseline.objectives[0]);
  std::filesystem::remove_all(dir);
}

TEST(Optimizer, FactorialCoversTheWholeGrid) {
  const auto dir = std::filesystem::temp_directory_path() / "aetr_opt_fact";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  SearchSpace space;
  space.choice("clock.theta_div", {32, 64}).integer("clock.n_div", 6, 7);
  auto options = quick_options(dir);
  options.strategy = opt::Strategy::kFactorial;
  options.workload.n_events = 300;
  const auto result =
      opt::optimize(space, core::ScenarioConfig{}, options);
  // Every grid point scored once (the baseline is reported separately).
  EXPECT_EQ(result.trials.size(), 4u);
  std::filesystem::remove_all(dir);
}

TEST(Optimizer, StrategyNamesRoundTrip) {
  EXPECT_EQ(opt::parse_strategy("halving"), opt::Strategy::kHalving);
  EXPECT_EQ(opt::parse_strategy("random"), opt::Strategy::kRandom);
  EXPECT_EQ(opt::parse_strategy("factorial"), opt::Strategy::kFactorial);
  EXPECT_THROW((void)opt::parse_strategy("bayes"), std::runtime_error);
}
