// Tests for the SPI configuration interface: bus mapping, bit-level slave
// decode, and master-driven transactions.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/scheduler.hpp"
#include "spi/spi.hpp"

namespace aetr::spi {
namespace {

TEST(ConfigBus, ReadWriteMappedRegister) {
  ConfigBus bus;
  std::uint8_t reg = 0;
  bus.map(
      Reg::kThetaDiv, [&] { return reg; },
      [&](std::uint8_t v) { reg = v; });
  bus.write(0x00, 64);
  EXPECT_EQ(reg, 64);
  EXPECT_EQ(bus.read(0x00), 64);
}

TEST(ConfigBus, UnmappedReadReturnsZero) {
  ConfigBus bus;
  EXPECT_EQ(bus.read(0x55), 0);
}

TEST(ConfigBus, ReadOnlyWriteIgnoredAndCounted) {
  ConfigBus bus;
  bus.map(Reg::kStatus, [] { return std::uint8_t{3}; });
  bus.write(static_cast<std::uint8_t>(Reg::kStatus), 0xFF);
  EXPECT_EQ(bus.read(static_cast<std::uint8_t>(Reg::kStatus)), 3);
  EXPECT_EQ(bus.ignored_writes(), 1u);
}

/// Clock a 16-bit frame into the slave directly (mode 0), sampling MISO
/// before each rising edge; returns the low byte read back.
std::uint8_t shift_frame(SpiSlave& slave, std::uint16_t frame) {
  std::uint16_t miso = 0;
  slave.set_csn(false);
  for (int bit = 15; bit >= 0; --bit) {
    miso = static_cast<std::uint16_t>((miso << 1) |
                                      (slave.miso() ? 1u : 0u));
    slave.sck_rise((frame >> bit) & 1u);
    slave.sck_fall();
  }
  slave.set_csn(true);
  return static_cast<std::uint8_t>(miso & 0xFF);
}

TEST(SpiSlave, DecodesWriteTransaction) {
  ConfigBus bus;
  std::uint8_t reg = 0;
  bus.map(
      Reg::kNDiv, [&] { return reg; },
      [&](std::uint8_t v) { reg = v; });
  SpiSlave slave{bus};
  shift_frame(slave, 0x8000 | (0x01 << 8) | 0x0A);  // write reg 1 = 10
  EXPECT_EQ(reg, 10);
  EXPECT_EQ(slave.transactions(), 1u);
  EXPECT_EQ(slave.bits_clocked(), 16u);
}

TEST(SpiSlave, DecodesReadTransaction) {
  ConfigBus bus;
  bus.map(Reg::kThetaDiv, [] { return std::uint8_t{0xA5}; });
  SpiSlave slave{bus};
  const auto data = shift_frame(slave, 0x0000);  // read reg 0
  EXPECT_EQ(data, 0xA5);
}

TEST(SpiSlave, IgnoredWhenDeselected) {
  ConfigBus bus;
  std::uint8_t reg = 0;
  bus.map(
      Reg::kThetaDiv, [&] { return reg; },
      [&](std::uint8_t v) { reg = v; });
  SpiSlave slave{bus};
  // CSN stays high: nothing happens.
  for (int i = 0; i < 16; ++i) {
    slave.sck_rise(true);
    slave.sck_fall();
  }
  EXPECT_EQ(slave.transactions(), 0u);
  EXPECT_EQ(reg, 0);
}

TEST(SpiSlave, CsnResetRealignsFrame) {
  ConfigBus bus;
  std::uint8_t reg = 0;
  bus.map(
      Reg::kThetaDiv, [&] { return reg; },
      [&](std::uint8_t v) { reg = v; });
  SpiSlave slave{bus};
  // Clock a partial garbage frame, deselect, then a clean write.
  slave.set_csn(false);
  for (int i = 0; i < 5; ++i) {
    slave.sck_rise(true);
    slave.sck_fall();
  }
  slave.set_csn(true);
  shift_frame(slave, 0x8000 | 0x37);
  EXPECT_EQ(reg, 0x37);
}

TEST(SpiSlave, BackToBackTransactionsInOneSelect) {
  ConfigBus bus;
  std::uint8_t a = 0, b = 0;
  bus.map(
      Reg::kThetaDiv, [&] { return a; }, [&](std::uint8_t v) { a = v; });
  bus.map(
      Reg::kNDiv, [&] { return b; }, [&](std::uint8_t v) { b = v; });
  SpiSlave slave{bus};
  slave.set_csn(false);
  auto clock16 = [&](std::uint16_t frame) {
    for (int bit = 15; bit >= 0; --bit) {
      slave.sck_rise((frame >> bit) & 1u);
      slave.sck_fall();
    }
  };
  clock16(0x8000 | 0x11);
  clock16(0x8100 | 0x22);
  slave.set_csn(true);
  EXPECT_EQ(a, 0x11);
  EXPECT_EQ(b, 0x22);
  EXPECT_EQ(slave.transactions(), 2u);
}

TEST(SpiMaster, WriteThenReadThroughWire) {
  sim::Scheduler sched;
  ConfigBus bus;
  std::uint8_t reg = 0;
  bus.map(
      Reg::kThetaDiv, [&] { return reg; },
      [&](std::uint8_t v) { reg = v; });
  SpiSlave slave{bus};
  SpiMaster master{sched, slave};
  master.write(Reg::kThetaDiv, 64);
  std::uint8_t read_back = 0;
  master.read(Reg::kThetaDiv, [&](std::uint8_t v) { read_back = v; });
  sched.run();
  EXPECT_EQ(reg, 64);
  EXPECT_EQ(read_back, 64);
  EXPECT_FALSE(master.busy());
  EXPECT_EQ(slave.transactions(), 2u);
}

TEST(SpiMaster, QueuedTransactionsSerialise) {
  sim::Scheduler sched;
  ConfigBus bus;
  std::uint8_t reg = 0;
  bus.map(
      Reg::kNDiv, [&] { return reg; },
      [&](std::uint8_t v) { reg = v; });
  SpiSlave slave{bus};
  SpiMaster master{sched, slave};
  for (std::uint8_t v = 1; v <= 5; ++v) master.write(Reg::kNDiv, v);
  sched.run();
  EXPECT_EQ(reg, 5);
  EXPECT_EQ(slave.transactions(), 5u);
  EXPECT_EQ(slave.bits_clocked(), 80u);
}

}  // namespace
}  // namespace aetr::spi
