// Tests for the SRAM FIFO buffer: ordering, capacity, threshold signalling,
// overflow accounting, runtime reconfiguration.
#include <gtest/gtest.h>

#include <vector>

#include "buffer/fifo.hpp"

namespace aetr::buffer {
namespace {

using namespace time_literals;
using aer::AetrWord;

TEST(Fifo, FifoOrderPreserved) {
  AetrFifo fifo{{.capacity_words = 16, .batch_threshold = 16}};
  for (std::uint16_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(fifo.push(AetrWord::make(i, i), Time::zero()));
  }
  for (std::uint16_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fifo.pop(Time::zero()).address(), i);
  }
  EXPECT_TRUE(fifo.empty());
}

TEST(Fifo, DefaultGeometryMatchesPaper) {
  AetrFifo fifo;
  // 9.2 kB of 32-bit words.
  EXPECT_EQ(fifo.capacity(), 2300u);
}

TEST(Fifo, OverflowDropsAndCounts) {
  AetrFifo fifo{{.capacity_words = 4, .batch_threshold = 4}};
  for (std::uint16_t i = 0; i < 6; ++i) {
    fifo.push(AetrWord::make(i, 0), Time::zero());
  }
  EXPECT_EQ(fifo.size(), 4u);
  EXPECT_EQ(fifo.overflows(), 2u);
  EXPECT_EQ(fifo.pushes(), 4u);  // only accepted words count as pushes
  // The oldest words survive (the drop is at the tail).
  EXPECT_EQ(fifo.pop(Time::zero()).address(), 0);
}

TEST(Fifo, ThresholdFiresOnCrossing) {
  AetrFifo fifo{{.capacity_words = 16, .batch_threshold = 3}};
  std::vector<Time> fires;
  fifo.on_threshold([&](Time t) { fires.push_back(t); });
  fifo.push(AetrWord::make(1, 0), 1_ns);
  fifo.push(AetrWord::make(2, 0), 2_ns);
  EXPECT_TRUE(fires.empty());
  fifo.push(AetrWord::make(3, 0), 3_ns);
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], 3_ns);
  // Above threshold: no retrigger until it drops below again.
  fifo.push(AetrWord::make(4, 0), 4_ns);
  EXPECT_EQ(fires.size(), 1u);
  fifo.pop(5_ns);
  fifo.pop(5_ns);  // size 2 < 3: re-armed
  fifo.push(AetrWord::make(5, 0), 6_ns);
  ASSERT_EQ(fires.size(), 2u);
}

TEST(Fifo, MaxOccupancyTracked) {
  AetrFifo fifo{{.capacity_words = 8, .batch_threshold = 8}};
  for (std::uint16_t i = 0; i < 5; ++i) {
    fifo.push(AetrWord::make(i, 0), Time::zero());
  }
  fifo.pop(Time::zero());
  fifo.pop(Time::zero());
  EXPECT_EQ(fifo.max_occupancy(), 5u);
  EXPECT_EQ(fifo.pops(), 2u);
}

TEST(Fifo, RuntimeThresholdChange) {
  AetrFifo fifo{{.capacity_words = 16, .batch_threshold = 10}};
  int fires = 0;
  fifo.on_threshold([&](Time) { ++fires; });
  for (std::uint16_t i = 0; i < 4; ++i) {
    fifo.push(AetrWord::make(i, 0), Time::zero());
  }
  EXPECT_EQ(fires, 0);
  fifo.set_batch_threshold(4);  // already at 4: armed state recomputed
  fifo.push(AetrWord::make(9, 0), Time::zero());
  EXPECT_EQ(fires, 1);
}

TEST(Fifo, InvalidConfigThrows) {
  EXPECT_THROW((AetrFifo{{.capacity_words = 0, .batch_threshold = 1}}),
               std::invalid_argument);
  EXPECT_THROW((AetrFifo{{.capacity_words = 4, .batch_threshold = 5}}),
               std::invalid_argument);
  AetrFifo fifo{{.capacity_words = 4, .batch_threshold = 2}};
  EXPECT_THROW(fifo.set_batch_threshold(0), std::invalid_argument);
  EXPECT_THROW(fifo.set_batch_threshold(5), std::invalid_argument);
}

TEST(Fifo, WordPayloadSurvivesRoundTrip) {
  AetrFifo fifo{{.capacity_words = 4, .batch_threshold = 4}};
  const auto w = AetrWord::make(0x3FF, 0x3FFFFE);
  fifo.push(w, Time::zero());
  EXPECT_EQ(fifo.pop(Time::zero()), w);
}

}  // namespace
}  // namespace aetr::buffer
