// aetr::fleet — the determinism contract (results are a pure function of
// FleetConfig, independent of --jobs), the N=1 bit-identity against a plain
// run_scenario() run, the shared-uplink contention/arbitration semantics,
// the per-node energy budget, and the config_io round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "core/scenario.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_io.hpp"
#include "runtime/seed.hpp"
#include "sweeps/figures.hpp"

namespace aetr::fleet {
namespace {

FleetConfig small_fleet() {
  FleetConfig cfg;
  cfg.base.interface.fifo.batch_threshold = 16;
  cfg.base.interface.front_end.keep_records = false;
  cfg.nodes = 8;
  cfg.rate_hz = 30e3;
  cfg.events_per_node = 120;
  cfg.seed = 2026;
  return cfg;
}

TEST(FleetConfig, ValidateCatchesInconsistencies) {
  EXPECT_NO_THROW(small_fleet().validate());
  {
    auto c = small_fleet();
    c.nodes = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = small_fleet();
    c.gateways = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = small_fleet();
    c.link.bandwidth_words_per_sec = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = small_fleet();
    c.link.queue_words = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = small_fleet();
    c.rate_spread = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = small_fleet();
    c.base.attach_mcu = false;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    auto c = small_fleet();
    telemetry::SessionOptions tel;
    tel.metrics = true;
    c.base.telemetry = core::TelemetryChoice::owned(tel);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
}

TEST(FleetConfig, DumpLoadDumpIsByteIdentical) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 77;
  cfg.gateways = 3;
  cfg.rate_spread = 0.25;
  cfg.fault_level = 0.01;
  cfg.node_energy_budget_j = 0.125;
  cfg.link.bandwidth_words_per_sec = 5e5;
  cfg.link.queue_words = 512;
  cfg.link.arbitration = Arbitration::kRoundRobin;
  cfg.base.interface.clock.theta_div = 32;
  const std::string once = dump_fleet(cfg);
  std::istringstream is{once};
  const FleetConfig loaded = load_fleet(is);
  EXPECT_EQ(once, dump_fleet(loaded));
  EXPECT_EQ(loaded.nodes, 77u);
  EXPECT_EQ(loaded.gateways, 3u);
  EXPECT_EQ(loaded.link.arbitration, Arbitration::kRoundRobin);
  EXPECT_EQ(loaded.base.interface.clock.theta_div, 32u);
}

TEST(FleetConfig, UnknownKeySuggestsAcrossFleetAndScenarioKeys) {
  FleetConfig cfg;
  try {
    apply_fleet_key(cfg, "fleet.nodez", "4");
    FAIL() << "expected unknown-key error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("fleet.nodes"), std::string::npos)
        << e.what();
  }
  // Scenario keys fall through to the base scenario.
  apply_fleet_key(cfg, "clock.theta_div", "16");
  EXPECT_EQ(cfg.base.interface.clock.theta_div, 16u);
}

TEST(Fleet, N1NodeIsBitIdenticalToPlainRunScenario) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 1;
  cfg.rate_spread = 0.2;   // the heterogeneity draw must replay too
  cfg.fault_level = 0.01;  // and the per-node scaled fault plan
  const FleetResult fleet = run_fleet(cfg);
  ASSERT_EQ(fleet.nodes.size(), 1u);

  const auto plain =
      core::run_scenario(node_scenario(cfg, 0), node_stream(cfg, 0));
  const NodeResult& node = fleet.nodes[0];
  EXPECT_EQ(node.seed, runtime::derive_seed(cfg.seed, 0));
  EXPECT_EQ(node.average_power_w, plain.average_power_w);  // bitwise
  EXPECT_EQ(node.sim_end_sec, plain.sim_end.to_sec());
  EXPECT_EQ(node.energy_j, plain.average_power_w * plain.sim_end.to_sec());
  EXPECT_EQ(node.err_weighted_rel, plain.error.weighted_rel_error());
  EXPECT_EQ(node.events_in, plain.events_in);
  EXPECT_EQ(node.decoded, plain.decoded.size());
  EXPECT_EQ(node.fifo_overflows, plain.fifo_overflows);
  EXPECT_EQ(node.faults_injected, plain.faults.injected_total());
  // The default uplink is uncontended at one node: everything decoded
  // arrives, nothing drops.
  EXPECT_EQ(node.delivered, node.decoded);
  EXPECT_EQ(node.dropped_link, 0u);
}

TEST(Fleet, ResultIsIdenticalForAnyJobsValue) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 24;
  cfg.rate_spread = 0.3;
  cfg.fault_level = 0.02;
  cfg.gateways = 2;
  FleetOptions serial;
  serial.jobs = 1;
  FleetOptions parallel;
  parallel.jobs = 4;
  const FleetResult a = run_fleet(cfg, serial);
  const FleetResult b = run_fleet(cfg, parallel);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].energy_j, b.nodes[i].energy_j) << "node " << i;
    EXPECT_EQ(a.nodes[i].rate_hz, b.nodes[i].rate_hz) << "node " << i;
    EXPECT_EQ(a.nodes[i].decoded, b.nodes[i].decoded) << "node " << i;
    EXPECT_EQ(a.nodes[i].delivered, b.nodes[i].delivered) << "node " << i;
  }
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);  // summed in node order
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.latency_p50_sec, b.latency_p50_sec);
  EXPECT_EQ(a.latency_p99_sec, b.latency_p99_sec);
  EXPECT_EQ(a.latency_p999_sec, b.latency_p999_sec);
}

TEST(Fleet, HeterogeneousRatesSpreadAroundTheMean) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 64;
  cfg.rate_spread = 0.2;
  double lo = 1e300, hi = 0.0;
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    const double r = node_rate_hz(cfg, i);
    EXPECT_GE(r, cfg.rate_hz * 0.8);
    EXPECT_LT(r, cfg.rate_hz * 1.2);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_GT(hi - lo, cfg.rate_hz * 0.1);  // actually spread, not constant
  cfg.rate_spread = 0.0;
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    EXPECT_EQ(node_rate_hz(cfg, i), cfg.rate_hz);  // exact at spread 0
  }
}

TEST(Fleet, SaturatedLinkDropsAndStretchesTheTail) {
  FleetConfig contended = small_fleet();
  contended.nodes = 16;
  contended.link.bandwidth_words_per_sec = 5e4;  // 16 x 30k >> 50k words/s
  contended.link.queue_words = 64;
  const FleetResult r = run_fleet(contended);

  FleetConfig free_link = contended;
  free_link.link.bandwidth_words_per_sec = 1e8;
  const FleetResult f = run_fleet(free_link);

  EXPECT_GT(r.dropped_link_total, 0u);
  EXPECT_LT(r.delivered_fraction(), f.delivered_fraction());
  EXPECT_GT(r.latency_p99_sec, f.latency_p99_sec);
  EXPECT_GT(r.gateways[0].utilization(), 0.9);  // pegged uplink
  EXPECT_EQ(r.gateways[0].offered,
            r.gateways[0].delivered + r.gateways[0].dropped_link);
  // Conservation: every decoded word is delivered, queue-dropped, or dead.
  EXPECT_EQ(r.decoded_total,
            r.delivered_total + r.dropped_link_total + r.dropped_dead_total);
}

TEST(Fleet, RoundRobinSharesTheLinkMoreEvenlyThanFifo) {
  // One slow node against fifteen fast ones on a saturated uplink: FIFO
  // serves in arrival order (the flood wins slots proportionally), while
  // round-robin guarantees the slow node a turn whenever it has a word
  // buffered. Its delivered fraction must not get worse under RR.
  FleetConfig cfg = small_fleet();
  cfg.nodes = 16;
  cfg.rate_spread = 0.5;
  cfg.link.bandwidth_words_per_sec = 1e5;
  cfg.link.queue_words = 32;
  cfg.link.arbitration = Arbitration::kFifo;
  const FleetResult fifo = run_fleet(cfg);
  cfg.link.arbitration = Arbitration::kRoundRobin;
  const FleetResult rr = run_fleet(cfg);

  // Both policies conserve words and deliver the same totals-or-less under
  // identical offered load; the per-node split is what changes.
  EXPECT_EQ(fifo.decoded_total, rr.decoded_total);
  std::size_t slowest = 0;
  for (std::size_t i = 1; i < cfg.nodes; ++i) {
    if (rr.nodes[i].rate_hz < rr.nodes[slowest].rate_hz) slowest = i;
  }
  EXPECT_GE(rr.nodes[slowest].delivered_fraction(),
            fifo.nodes[slowest].delivered_fraction());
}

TEST(Fleet, EnergyBudgetKillsNodesAndDropsTheirLateWords) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 4;
  cfg.events_per_node = 400;
  const FleetResult unlimited = run_fleet(cfg);
  // Budget half of the cheapest node's spend: every node dies mid-run.
  double min_energy = 1e300;
  for (const auto& n : unlimited.nodes) {
    min_energy = std::min(min_energy, n.energy_j);
  }
  cfg.node_energy_budget_j = min_energy / 2.0;
  const FleetResult capped = run_fleet(cfg);
  for (const auto& n : capped.nodes) {
    EXPECT_TRUE(n.budget_exhausted) << "node " << n.node_id;
    EXPECT_EQ(n.energy_j, cfg.node_energy_budget_j);
    EXPECT_GT(n.dropped_dead, 0u) << "node " << n.node_id;
  }
  EXPECT_GT(capped.dropped_dead_total, 0u);
  EXPECT_LT(capped.delivered_fraction(), unlimited.delivered_fraction());
  EXPECT_LT(capped.total_energy_j, unlimited.total_energy_j);
}

TEST(Fleet, GatewaysPartitionTheFleet) {
  FleetConfig cfg = small_fleet();
  cfg.nodes = 8;
  cfg.gateways = 2;
  const FleetResult r = run_fleet(cfg);
  ASSERT_EQ(r.gateways.size(), 2u);
  EXPECT_GT(r.gateways[0].offered, 0u);
  EXPECT_GT(r.gateways[1].offered, 0u);
  EXPECT_EQ(r.gateways[0].offered + r.gateways[1].offered + 0u,
            r.decoded_total - r.dropped_dead_total);
  EXPECT_GT(r.gateways[0].utilization(), 0.0);
  EXPECT_GT(r.gateways[1].utilization(), 0.0);
}

TEST(Fleet, MetricsRegistryCarriesTheNodeEnergyHistogram) {
  FleetConfig cfg = small_fleet();
  const FleetResult r = run_fleet(cfg);
  const auto names = r.metrics.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "fleet.total_energy_j"),
            names.end());
  ASSERT_EQ(r.metrics.snapshots().size(), 1u);
  ASSERT_FALSE(r.metrics.histograms().empty());
  const auto& [hist_name, hist] = r.metrics.histograms().front();
  EXPECT_EQ(hist_name, "fleet.node_energy_j");
  EXPECT_EQ(hist.total(), static_cast<double>(cfg.nodes));
}

TEST(FleetFigure, QuickRunWritesIdenticalFilesForAnyJobs) {
  const auto run_to = [](const std::string& dir, std::size_t jobs) {
    sweeps::FigureOptions fo;
    fo.quick = true;
    fo.jobs = jobs;
    fo.out_dir = dir;
    return sweeps::run_fleet_figure(fo);
  };
  const std::string d1 = ::testing::TempDir() + "fleet_j1";
  const std::string d2 = ::testing::TempDir() + "fleet_j4";
  const auto r1 = run_to(d1, 1);
  const auto r2 = run_to(d2, 4);
  const auto slurp = [](const std::string& path) {
    std::ifstream f{path};
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };
  for (const char* name :
       {"/aetr_fleet.csv", "/aetr_fleet_points.csv",
        "/aetr_fleet_summary.json"}) {
    const std::string a = slurp(d1 + name);
    const std::string b = slurp(d2 + name);
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name << " differs between --jobs 1 and --jobs 4";
  }
  EXPECT_TRUE(r1.checks.empty());  // quick mode skips the paper checks
  EXPECT_EQ(r1.report.outputs.size(), r2.report.outputs.size());
}

}  // namespace
}  // namespace aetr::fleet
