// aetr::runtime — deterministic parallel sweep runtime.
//
// The load-bearing property is the determinism contract (runtime/sweep.hpp):
// a sweep's output is a pure function of (grid, root seed, job function),
// bit-identical for any thread count. The tests drive it from both ends:
// unit-level (seed derivation, grid decoding, pool stealing, collector
// ordering) and end-to-end (a fig6-slice sweep and the real figure
// definitions compared byte-for-byte across --jobs).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/error.hpp"
#include "runtime/seed.hpp"
#include "runtime/sink.hpp"
#include "runtime/sweep.hpp"
#include "runtime/sweep_grid.hpp"
#include "runtime/thread_pool.hpp"
#include "sweeps/figures.hpp"

using namespace aetr;
using runtime::derive_seed;
using runtime::SweepGrid;

// --- seed derivation -------------------------------------------------------

TEST(RuntimeSeed, StableAcrossCallsAndDocumentedValues) {
  // The derivation is part of the determinism contract: these values must
  // never change, or previously published sweeps stop being reproducible.
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_EQ(derive_seed(1234, 7), derive_seed(1234, 7));
  static_assert(derive_seed(1, 0) == derive_seed(1, 0));
  // Golden values pin the algorithm itself (two-round splitmix64).
  constexpr std::uint64_t g0 = derive_seed(1234, 0);
  constexpr std::uint64_t g1 = derive_seed(1234, 1);
  EXPECT_EQ(g0, derive_seed(1234, 0));
  EXPECT_NE(g0, g1);
}

TEST(RuntimeSeed, NoCollisionsOverTypicalGrids) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {1ull, 42ull, 1234ull}) {
    for (std::uint64_t i = 0; i < 4096; ++i) {
      seen.insert(derive_seed(root, i));
    }
  }
  EXPECT_EQ(seen.size(), 3u * 4096u);
}

TEST(RuntimeSeed, AsymmetricInRootAndIndex) {
  // Regression: a symmetric combiner made derive(r, i) == derive(i, r) and
  // derive(r, r) a constant shared by every sweep.
  EXPECT_NE(derive_seed(1, 42), derive_seed(42, 1));
  EXPECT_NE(derive_seed(5, 5), derive_seed(7, 7));
}

TEST(RuntimeSeed, IndependentOfJobCountAndOrder) {
  // Seeds depend on the index only — shuffling execution order or changing
  // the worker count cannot change them (they are computed, not drawn).
  std::vector<std::uint64_t> forward, backward;
  for (std::uint64_t i = 0; i < 64; ++i) forward.push_back(derive_seed(7, i));
  for (std::uint64_t i = 64; i-- > 0;) backward.push_back(derive_seed(7, i));
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(forward[i], backward[63 - i]);
  }
}

TEST(RuntimeSeed, SubstreamsAreCollisionFreeAcrossFleetNodeIds) {
  // The fleet gives every node several independent streams
  // (events / faults / heterogeneity). Across 10k node ids and all three
  // streams — plus the per-node roots themselves — nothing may collide.
  using runtime::derive_substream_seed;
  constexpr std::uint64_t kRoot = 0xF1EE7u;
  constexpr std::uint64_t kNodes = 10'000;
  std::set<std::uint64_t> seen;
  for (std::uint64_t node = 0; node < kNodes; ++node) {
    seen.insert(derive_seed(kRoot, node));
    for (std::uint64_t stream = 0; stream < 3; ++stream) {
      seen.insert(derive_substream_seed(kRoot, node, stream));
    }
  }
  EXPECT_EQ(seen.size(), kNodes * 4);
}

TEST(RuntimeSeed, SubstreamDerivationIsNestedDeriveSeed) {
  // The documented definition: substream s of node i is
  // derive_seed(derive_seed(root, i), s) — a node's stream set depends only
  // on its own derived root, never on the fleet-level layout.
  using runtime::derive_substream_seed;
  static_assert(derive_substream_seed(9, 4, 2) ==
                derive_seed(derive_seed(9, 4), 2));
  for (std::uint64_t node : {0ull, 1ull, 63ull, 1023ull}) {
    for (std::uint64_t stream : {0ull, 1ull, 2ull}) {
      EXPECT_EQ(derive_substream_seed(42, node, stream),
                derive_seed(derive_seed(42, node), stream));
    }
  }
}

// --- grid --------------------------------------------------------------------

TEST(SweepGrid, RowMajorDecode) {
  SweepGrid grid;
  grid.axis("theta", {16, 32, 64}).axis("rate", {1e3, 1e4});
  ASSERT_EQ(grid.size(), 6u);
  // First axis slowest: (16,1e3) (16,1e4) (32,1e3) ...
  EXPECT_EQ(grid.point(0).at("theta"), 16);
  EXPECT_EQ(grid.point(0).at("rate"), 1e3);
  EXPECT_EQ(grid.point(1).at("theta"), 16);
  EXPECT_EQ(grid.point(1).at("rate"), 1e4);
  EXPECT_EQ(grid.point(2).at("theta"), 32);
  EXPECT_EQ(grid.point(5).at("theta"), 64);
  EXPECT_EQ(grid.point(5).at("rate"), 1e4);
  EXPECT_EQ(grid.point(4).ordinal("theta"), 2u);
  EXPECT_EQ(grid.point(4).ordinal("rate"), 0u);
  EXPECT_EQ(grid.point(3).tag(), "theta=32,rate=10000");
}

TEST(SweepGrid, UnknownAxisThrows) {
  SweepGrid grid;
  grid.axis("rate", {1.0});
  EXPECT_THROW((void)grid.point(0).at("theta"), std::out_of_range);
  EXPECT_THROW(grid.axis("empty", {}), std::invalid_argument);
}

TEST(SweepGrid, LogSpaceMatchesLegacyRateGrid) {
  // SweepGrid::log_space must reproduce the exact grid the fig6/fig8
  // benches hand-rolled: lo * exp(i * log(hi/lo)/(n-1)).
  const auto v = SweepGrid::log_space(100.0, 2e6, 27);
  ASSERT_EQ(v.size(), 27u);
  EXPECT_DOUBLE_EQ(v.front(), 100.0);
  EXPECT_NEAR(v.back(), 2e6, 2e6 * 1e-12);
  const double step = std::log(2e6 / 100.0) / 26.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(v[i], 100.0 * std::exp(step * static_cast<double>(i)));
    if (i) {
      EXPECT_GT(v[i], v[i - 1]);
    }
  }
}

TEST(SweepGrid, LinSpaceEndpoints) {
  const auto v = SweepGrid::lin_space(0.0, 10.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
  EXPECT_DOUBLE_EQ(v[4], 10.0);
}

TEST(SweepGrid, SinglePointAxesAreConstant) {
  // points == 1 pins the axis to lo; equal endpoints pin it regardless of
  // the point count. Both are legal degenerate axes, not errors: a sweep
  // definition that collapses one dimension should still run.
  EXPECT_EQ(SweepGrid::log_space(500.0, 2e6, 1),
            (std::vector<double>{500.0}));
  EXPECT_EQ(SweepGrid::lin_space(7.0, 7.0, 4),
            (std::vector<double>{7.0, 7.0, 7.0, 7.0}));
  const auto v = SweepGrid::log_space(1e3, 1e3, 3);
  ASSERT_EQ(v.size(), 3u);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 1e3);
}

TEST(SweepGrid, ZeroPointsAndInvalidSpansThrow) {
  EXPECT_THROW((void)SweepGrid::log_space(100.0, 2e6, 0),
               std::invalid_argument);
  EXPECT_THROW((void)SweepGrid::lin_space(0.0, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)SweepGrid::log_space(0.0, 1.0, 3),
               std::invalid_argument);  // log of a non-positive lo
  EXPECT_THROW((void)SweepGrid::log_space(10.0, 1.0, 3),
               std::invalid_argument);  // hi < lo
  // lin_space has no positivity constraint, so a reversed span is simply a
  // descending axis, not an error.
  EXPECT_EQ(SweepGrid::lin_space(10.0, 1.0, 3),
            (std::vector<double>{10.0, 5.5, 1.0}));
}

TEST(SweepGrid, ZeroTrialGridRunsNoJobs) {
  // A grid with no axes has size 0; run_sweep over it must complete
  // without ever invoking the job function.
  SweepGrid grid;
  EXPECT_EQ(grid.size(), 0u);
  std::atomic<int> calls{0};
  const auto report = runtime::run_sweep(grid, [&calls](
                                                   const runtime::JobContext&) {
    calls.fetch_add(1);
    return runtime::JobOutput{};
  });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(report.outputs.empty());
  EXPECT_TRUE(report.metrics.empty());
}

// --- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEverythingUnderSkewedDurations) {
  runtime::ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&done, i] {
      // Skew: a few jobs are ~50x longer than the rest.
      std::this_thread::sleep_for(
          std::chrono::microseconds(i % 8 == 0 ? 2500 : 50));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(pool.first_exception(), nullptr);
}

TEST(ThreadPool, IdleWorkersStealFromALoadedDeque) {
  runtime::ThreadPool pool{2};
  // Both tasks go to worker 0. The owner pops LIFO, so it runs the waiter
  // first and blocks; only a steal by worker 1 (FIFO from the same deque)
  // can run the setter and release it.
  std::mutex m;
  std::condition_variable cv;
  bool flag = false;
  pool.submit_to(0, [&] {
    std::lock_guard lock{m};
    flag = true;
    cv.notify_all();
  });
  pool.submit_to(0, [&] {
    std::unique_lock lock{m};
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return flag; });
  });
  pool.wait_idle();
  EXPECT_TRUE(flag);
  EXPECT_GE(pool.steal_count(), 1u);
}

TEST(ThreadPool, CapturesTaskExceptions) {
  runtime::ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error{"boom"}; });
  pool.wait_idle();
  ASSERT_NE(pool.first_exception(), nullptr);
  EXPECT_THROW(std::rethrow_exception(pool.first_exception()),
               std::runtime_error);
}

TEST(ThreadPool, CancelPendingDropsQueuedWork) {
  runtime::ThreadPool pool{1};
  std::atomic<int> ran{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    ran.fetch_add(1);
  });
  // Ensure the blocker is running (not still queued) before piling work
  // behind it — otherwise cancel_pending could drop it too.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  pool.cancel_pending();
  release.store(true);
  pool.wait_idle();
  // Only the already-running task survived the cancellation.
  EXPECT_EQ(ran.load(), 1);
}

// --- collector + sinks -----------------------------------------------------

TEST(OrderedCollector, ReordersOutOfOrderArrivals) {
  std::ostringstream out;
  runtime::CsvSink sink{out};
  sink.begin({"i"});
  runtime::OrderedCollector collector{4, &sink};
  collector.add(2, {{"2"}});
  collector.add(3, {{"3"}});
  EXPECT_EQ(out.str(), "i\n");  // nothing flushed before index 0 lands
  collector.add(0, {{"0"}});
  EXPECT_EQ(out.str(), "i\n0\n");  // 0 flushes, 1 still missing
  collector.add(1, {{"1"}});
  sink.end();
  EXPECT_EQ(out.str(), "i\n0\n1\n2\n3\n");
  EXPECT_EQ(collector.done(), 4u);
}

namespace {

// Runs `n` single-row jobs through an OrderedCollector in the completion
// order given by `order` (a permutation of 0..n-1) and returns the CSV body.
std::string collect_in_order(std::size_t n,
                             const std::vector<std::size_t>& order) {
  std::ostringstream out;
  runtime::CsvSink sink{out};
  sink.begin({"i"});
  runtime::OrderedCollector collector{n, &sink};
  for (std::size_t idx : order) {
    collector.add(idx, {{std::to_string(idx)}});
  }
  sink.end();
  EXPECT_EQ(collector.done(), n);
  return out.str();
}

}  // namespace

TEST(OrderedCollector, AdversarialCompletionOrdersAtFleetSizes) {
  // Fleet node phases hand the collector completions in whatever order the
  // work-stealing pool finishes them. Whatever that order is, the flushed
  // rows must come out 0..n-1. Worst cases: strictly reverse (every row
  // buffers until the last arrival) and a deterministic pseudo-random shuffle.
  for (std::size_t n : {64u, 1024u}) {
    std::string expect = "i\n";
    for (std::size_t i = 0; i < n; ++i) expect += std::to_string(i) + "\n";

    std::vector<std::size_t> reverse(n);
    for (std::size_t i = 0; i < n; ++i) reverse[i] = n - 1 - i;
    EXPECT_EQ(collect_in_order(n, reverse), expect) << "reverse, n=" << n;

    // Deterministic shuffle via an LCG Fisher-Yates (no std::random_device;
    // the test must be reproducible byte-for-byte).
    std::vector<std::size_t> shuffled(n);
    for (std::size_t i = 0; i < n; ++i) shuffled[i] = i;
    std::uint64_t state = 0x9E3779B97F4A7C15ull ^ n;
    for (std::size_t i = n - 1; i > 0; --i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      std::swap(shuffled[i], shuffled[(state >> 33) % (i + 1)]);
    }
    EXPECT_EQ(collect_in_order(n, shuffled), expect) << "shuffle, n=" << n;
  }
}

TEST(OrderedCollector, FlushesTheLongestReadyPrefixImmediately) {
  // Rows must stream out as soon as the prefix is contiguous — a collector
  // that buffers everything until done() == n would pass the tests above
  // but stall sinks that stream to disk mid-sweep.
  std::ostringstream out;
  runtime::CsvSink sink{out};
  sink.begin({"i"});
  runtime::OrderedCollector collector{6, &sink};
  collector.add(1, {{"1"}});
  collector.add(2, {{"2"}});
  EXPECT_EQ(out.str(), "i\n");  // hole at 0: nothing may flush
  collector.add(0, {{"0"}});
  EXPECT_EQ(out.str(), "i\n0\n1\n2\n");  // prefix 0..2 flushes at once
  collector.add(5, {{"5"}});
  EXPECT_EQ(out.str(), "i\n0\n1\n2\n");  // hole at 3 blocks 5
  collector.add(4, {{"4"}});
  collector.add(3, {{"3"}});
  sink.end();
  EXPECT_EQ(out.str(), "i\n0\n1\n2\n3\n4\n5\n");
  EXPECT_EQ(collector.done(), 6u);
}

TEST(Sinks, CsvEscapingAndJsonShape) {
  std::ostringstream csv, json;
  {
    runtime::CsvSink cs{csv};
    runtime::JsonSink js{json};
    runtime::MultiSink multi{{&cs, &js}};
    multi.begin({"name", "value"});
    multi.row({"plain", "1"});
    multi.row({"with,comma", "quote\"inside"});
    multi.end();
  }
  EXPECT_EQ(csv.str(),
            "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n");
  EXPECT_EQ(json.str(),
            "[\n {\"name\": \"plain\", \"value\": \"1\"},\n"
            " {\"name\": \"with,comma\", \"value\": \"quote\\\"inside\"}\n]\n");
}

// --- run_sweep --------------------------------------------------------------

namespace {

// A fig6 slice as a raw runtime sweep: real simulation work with a
// rate x theta grid small enough for the sanitizer presets.
runtime::SweepReport fig6_slice(std::size_t jobs, std::ostream& csv) {
  SweepGrid grid;
  grid.axis("theta", {16, 64})
      .axis("rate", SweepGrid::log_space(1e3, 1e5, 5));
  runtime::SweepOptions opt;
  opt.jobs = jobs;
  opt.seed = 99;
  opt.header = {"theta", "rate", "err"};
  runtime::CsvSink sink{csv};
  return runtime::run_sweep(
      grid,
      [](const runtime::JobContext& ctx) {
        clockgen::ScheduleConfig cfg;
        cfg.theta_div = static_cast<std::uint32_t>(ctx.point.at("theta"));
        cfg.n_div = 8;
        analysis::SweepOptions so;
        so.n_events = 400;
        so.seed = ctx.seed;
        const auto stats =
            analysis::sweep_error(cfg, ctx.point.at("rate"), so);
        char rate[32], err[32];
        std::snprintf(rate, sizeof rate, "%.6g", ctx.point.at("rate"));
        std::snprintf(err, sizeof err, "%.17g",
                      stats.weighted_rel_error());
        runtime::JobOutput out;
        out.values = {stats.weighted_rel_error()};
        out.rows = {{ctx.point.tag(), rate, err}};
        return out;
      },
      opt, &sink);
}

}  // namespace

TEST(RunSweep, ParallelAndSerialAreBitIdentical) {
  std::ostringstream serial, parallel;
  const auto r1 = fig6_slice(1, serial);
  const auto r4 = fig6_slice(4, parallel);
  EXPECT_EQ(r1.threads, 1u);
  EXPECT_EQ(r4.threads, 4u);
  // The whole point of the runtime: same bytes whatever --jobs is.
  EXPECT_EQ(serial.str(), parallel.str());
  ASSERT_EQ(r1.outputs.size(), r4.outputs.size());
  for (std::size_t i = 0; i < r1.outputs.size(); ++i) {
    EXPECT_EQ(r1.outputs[i].values, r4.outputs[i].values) << "job " << i;
  }
}

TEST(RunSweep, SeedDerivationStableAcrossJobCounts) {
  for (const std::size_t jobs : {1u, 2u, 4u}) {
    std::ostringstream ignored;
    const auto r = fig6_slice(jobs, ignored);
    ASSERT_EQ(r.metrics.size(), 10u);
    for (std::size_t i = 0; i < r.metrics.size(); ++i) {
      EXPECT_EQ(r.metrics[i].index, i);
      EXPECT_EQ(r.metrics[i].seed, derive_seed(99, i));
      EXPECT_GE(r.metrics[i].wall_sec, 0.0);
      EXPECT_FALSE(r.metrics[i].tag.empty());
    }
  }
}

TEST(RunSweep, ThrowingJobAbortsWithNamedGridPoint) {
  SweepGrid grid;
  grid.axis("x", {0, 1, 2, 3, 4, 5, 6, 7});
  runtime::SweepOptions opt;
  opt.jobs = 2;
  std::atomic<int> started{0};
  try {
    runtime::run_sweep(
        grid,
        [&](const runtime::JobContext& ctx) -> runtime::JobOutput {
          started.fetch_add(1);
          if (ctx.point.at("x") == 3.0) {
            throw std::runtime_error{"injected failure"};
          }
          return {};
        },
        opt);
    FAIL() << "expected SweepError";
  } catch (const runtime::SweepError& e) {
    EXPECT_EQ(e.job_index(), 3u);
    EXPECT_EQ(e.job_tag(), "x=3");
    EXPECT_NE(std::string{e.what()}.find("injected failure"),
              std::string::npos);
  }
  // No hang, and the pool is reusable afterwards.
  std::ostringstream ignored;
  EXPECT_NO_THROW(fig6_slice(2, ignored));
}

TEST(RunSweep, ProgressReportsEveryJob) {
  SweepGrid grid;
  grid.axis("x", SweepGrid::lin_space(0, 9, 10));
  runtime::SweepOptions opt;
  opt.jobs = 3;
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> last{0};
  opt.progress = [&](std::size_t done, std::size_t total) {
    calls.fetch_add(1);
    last.store(done);
    EXPECT_EQ(total, 10u);
  };
  runtime::run_sweep(grid, [](const runtime::JobContext&) {
    return runtime::JobOutput{};
  }, opt);
  EXPECT_EQ(calls.load(), 10u);
  EXPECT_EQ(last.load(), 10u);
}

// --- figure definitions end-to-end -----------------------------------------

namespace {

std::string slurp(const std::string& path) {
  std::ifstream f{path};
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

TEST(Figures, QuickFig6IsByteIdenticalAcrossJobCounts) {
  const auto dir = std::filesystem::temp_directory_path() / "aetr_rt_fig6";
  std::filesystem::remove_all(dir);
  sweeps::FigureOptions o1;
  o1.jobs = 1;
  o1.quick = true;
  o1.out_dir = (dir / "j1").string();
  auto r1 = sweeps::run_fig6(o1);
  sweeps::FigureOptions o4 = o1;
  o4.jobs = 4;
  o4.out_dir = (dir / "j4").string();
  auto r4 = sweeps::run_fig6(o4);

  EXPECT_EQ(slurp(r1.csv_path), slurp(r4.csv_path));
  EXPECT_EQ(slurp(r1.points_csv_path), slurp(r4.points_csv_path));
  EXPECT_FALSE(slurp(r1.csv_path).empty());
  EXPECT_EQ(r1.table.row_count(), r4.table.row_count());
  std::filesystem::remove_all(dir);
}

TEST(Figures, QuickFig8IsByteIdenticalAcrossJobCounts) {
  const auto dir = std::filesystem::temp_directory_path() / "aetr_rt_fig8";
  std::filesystem::remove_all(dir);
  sweeps::FigureOptions o1;
  o1.jobs = 1;
  o1.quick = true;
  o1.out_dir = (dir / "j1").string();
  auto r1 = sweeps::run_fig8(o1);
  sweeps::FigureOptions o4 = o1;
  o4.jobs = 4;
  o4.out_dir = (dir / "j4").string();
  auto r4 = sweeps::run_fig8(o4);

  EXPECT_EQ(slurp(r1.csv_path), slurp(r4.csv_path));
  EXPECT_EQ(slurp(r1.points_csv_path), slurp(r4.points_csv_path));
  EXPECT_FALSE(slurp(r1.csv_path).empty());
  std::filesystem::remove_all(dir);
}

TEST(Figures, RegistryCoversCliSubcommands) {
  EXPECT_NE(sweeps::find_figure("fig6"), nullptr);
  EXPECT_NE(sweeps::find_figure("fig8"), nullptr);
  EXPECT_NE(sweeps::find_figure("ablation-ndiv"), nullptr);
  EXPECT_NE(sweeps::find_figure("ablation-agreement"), nullptr);
  EXPECT_EQ(sweeps::find_figure("fig99"), nullptr);
}
