// aetr-sweep — unified sweep driver for the figure/ablation reproductions
// and the design-space optimizer.
//
//   aetr-sweep fig6|fig8|ablation-ndiv|ablation-agreement|faults|fleet|all
//              [--jobs N] [--seed S] [--out DIR] [--quick] [--no-fast-forward]
//              [--trace] [--metrics] [--ledger] [--report FILE] [--quiet]
//
// `all` runs every figure in the sweeps::figures() registry — the fig/
// ablation set plus the faults and fleet figures — so the CI determinism
// gates (`all --quick` with fast path on vs off) exercise each of them.
//   aetr-sweep opt [--strategy factorial|random|halving] [--budget N]
//              [--objectives energy,error[,loss,latency]] [--space FILE]
//              [--events N] [--rate HZ] [--fault-level X] [--resume]
//              [--interrupt-after N] [common options]
//   aetr-sweep report [--in DIR] [--out DIR]
//   aetr-sweep list
//
// Runs the selected figure's parameter grid on the work-stealing runtime
// (src/runtime), prints the paper-style table plus self-checks, and writes
// the CSV series under --out (default results/, or $AETR_OUT). Output files
// are byte-identical for any --jobs value; see docs/RUNTIME.md for the
// determinism contract, and docs/OPTIMIZER.md for the `opt` subcommand.
//
// Exit codes: 0 = all checks passed, 1 = a check failed, 2 = usage error,
// 3 = a sweep job threw, 4 = optimizer interrupted (--interrupt-after).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "opt/optimizer.hpp"
#include "runtime/sweep.hpp"
#include "sweeps/figures.hpp"
#include "telemetry/telemetry.hpp"
#include "util/artifacts.hpp"

namespace {

struct CliOptions {
  std::vector<std::string> figures;
  aetr::sweeps::FigureOptions fig;
  std::string report_path;
  bool quiet = false;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end) return false;
  out = v;
  return true;
}

int usage(std::ostream& os) {
  os << "usage: aetr-sweep <figure>|all|opt|list [options]\n\nfigures:\n";
  for (const auto& d : aetr::sweeps::figures()) {
    os << "  " << d.name << "\n      " << d.summary << "\n";
  }
  os << "  opt\n      multi-objective design-space search over "
        "ScenarioConfig (docs/OPTIMIZER.md)\n";
  os << "  report\n      render observability artifacts (ledgers, metrics, "
        "stacks) into one\n      self-contained HTML dashboard "
        "(docs/OBSERVABILITY.md)\n";
  os << "\noptions:\n"
        "  --jobs N       worker threads (default: hardware concurrency)\n"
        "  --seed S       root seed (default: per-figure)\n"
        "  --out DIR      output directory (default: results/ or $AETR_OUT)\n"
        "  --quick        reduced grid, paper checks skipped\n"
        "  --no-fast-forward  force the reference event-driven path\n"
        "                 (outputs are bit-identical; see docs/SIMULATOR.md)\n"
        "  --trace        per-job Chrome trace JSON + CSV (DES figures:\n"
        "                 fig8, ablation-agreement; see docs/OBSERVABILITY.md)\n"
        "  --metrics      per-job sampled-metrics CSV (same figures)\n"
        "  --ledger       per-job energy-attribution ledger CSV + collapsed\n"
        "                 stack (fig8); fleet health roll-up (fleet)\n"
        "  --report FILE  write sweep metrics as JSON\n"
        "  --quiet        suppress tables and progress\n"
        "\nopt options:\n"
        "  --strategy S          factorial | random | halving (default)\n"
        "  --budget N            trials (halving population / random count)\n"
        "  --objectives LIST     energy,error[,loss,latency] (minimised)\n"
        "  --space FILE          search-space file (default: built-in)\n"
        "  --events N            full workload length (default 4000;\n"
        "                        --quick drops it to 2000)\n"
        "  --rate HZ             workload event rate (default 50e3)\n"
        "  --fault-level X       robust mode: scaled_plan(X) per trial\n"
        "  --resume              continue from aetr_opt_checkpoint.csv\n"
        "  --interrupt-after N   stop (exit 4) after N evaluations\n"
        "\nreport options:\n"
        "  --in DIR       artifact directory to render (default: the same\n"
        "                 results/ or $AETR_OUT directory sweeps write to)\n"
        "  --out DIR      where aetr_report.html goes (default: --in)\n";
  return 2;
}

int run_opt(int argc, char** argv, bool* usage_error) {
  aetr::opt::OptOptions opt;
  std::string space_file;
  bool quick = false;
  bool quiet = false;
  bool fast_forward = true;
  double rate_hz = 0.0;
  std::size_t events = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "aetr-sweep: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    try {
      if (arg == "--jobs") {
        std::uint64_t v = 0;
        const char* s = next();
        if (!s || !parse_u64(s, v)) { *usage_error = true; return 2; }
        opt.jobs = static_cast<std::size_t>(v);
      } else if (arg == "--seed") {
        std::uint64_t v = 0;
        const char* s = next();
        if (!s || !parse_u64(s, v)) { *usage_error = true; return 2; }
        opt.seed = v;
      } else if (arg == "--out") {
        const char* s = next();
        if (!s) { *usage_error = true; return 2; }
        opt.out_dir = s;
      } else if (arg == "--strategy") {
        const char* s = next();
        if (!s) { *usage_error = true; return 2; }
        opt.strategy = aetr::opt::parse_strategy(s);
      } else if (arg == "--budget") {
        std::uint64_t v = 0;
        const char* s = next();
        if (!s || !parse_u64(s, v) || v == 0) {
          *usage_error = true;
          return 2;
        }
        opt.budget = static_cast<std::size_t>(v);
      } else if (arg == "--objectives") {
        const char* s = next();
        if (!s) { *usage_error = true; return 2; }
        opt.objectives = aetr::opt::parse_objectives(s);
      } else if (arg == "--space") {
        const char* s = next();
        if (!s) { *usage_error = true; return 2; }
        space_file = s;
      } else if (arg == "--events") {
        std::uint64_t v = 0;
        const char* s = next();
        if (!s || !parse_u64(s, v) || v == 0) {
          *usage_error = true;
          return 2;
        }
        events = static_cast<std::size_t>(v);
      } else if (arg == "--rate") {
        const char* s = next();
        if (!s) { *usage_error = true; return 2; }
        rate_hz = std::strtod(s, nullptr);
      } else if (arg == "--fault-level") {
        const char* s = next();
        if (!s) { *usage_error = true; return 2; }
        opt.workload.fault_level = std::strtod(s, nullptr);
      } else if (arg == "--resume") {
        opt.resume = true;
      } else if (arg == "--interrupt-after") {
        std::uint64_t v = 0;
        const char* s = next();
        if (!s || !parse_u64(s, v)) { *usage_error = true; return 2; }
        opt.interrupt_after = static_cast<std::size_t>(v);
      } else if (arg == "--quick") {
        quick = true;
      } else if (arg == "--no-fast-forward") {
        fast_forward = false;
      } else if (arg == "--trace") {
        opt.trace = true;
      } else if (arg == "--metrics") {
        opt.metrics = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::cerr << "aetr-sweep: unknown option '" << arg << "'\n";
        *usage_error = true;
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "aetr-sweep: " << e.what() << "\n";
      return 2;
    }
  }
  if (quick) {
    opt.workload.n_events = 2000;
    if (opt.budget > 16) opt.budget = 16;
  }
  if (events != 0) opt.workload.n_events = events;
  if (rate_hz > 0.0) opt.workload.rate_hz = rate_hz;
  if (!quiet) {
    opt.progress = [](const std::string& line) {
      std::fprintf(stderr, "opt: %s\n", line.c_str());
    };
  }

  try {
    const aetr::opt::SearchSpace space =
        space_file.empty() ? aetr::opt::SearchSpace::default_space()
                           : aetr::opt::SearchSpace::parse_file(space_file);
    aetr::core::ScenarioConfig base;  // the paper-default scenario
    base.fast_forward = fast_forward;
    const auto result = aetr::opt::optimize(space, base, opt);
    if (!quiet) {
      std::printf("== opt — %s, budget %zu, %zu evaluations run ==\n",
                  aetr::opt::to_string(opt.strategy), opt.budget,
                  result.evaluations_run);
      std::printf("front: %zu points, hypervolume %.6g\n",
                  result.front.size(), result.hypervolume);
      std::printf("baseline energy/event: %.6g J, err RMS: %.6g\n",
                  result.baseline.energy_per_event_j,
                  result.baseline.err_rms);
      std::printf("front %s the paper-default configuration\n",
                  result.dominated_baseline ? "strictly dominates"
                                            : "does NOT dominate");
      for (const auto& a : result.artifacts) {
        std::printf("wrote %s\n", a.c_str());
      }
    }
    return 0;
  } catch (const aetr::opt::OptInterrupted& e) {
    std::cerr << "aetr-sweep: " << e.what() << "\n";
    return 4;
  } catch (const aetr::runtime::SweepError& e) {
    std::cerr << "aetr-sweep: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "aetr-sweep: " << e.what() << "\n";
    return 2;
  }
}

int run_report(int argc, char** argv, bool* usage_error) {
  std::string in_dir;
  std::string out_dir;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "aetr-sweep: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--in") {
      const char* s = next();
      if (!s) { *usage_error = true; return 2; }
      in_dir = s;
    } else if (arg == "--out") {
      const char* s = next();
      if (!s) { *usage_error = true; return 2; }
      out_dir = s;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "aetr-sweep: unknown option '" << arg << "'\n";
      *usage_error = true;
      return 2;
    }
  }
  if (in_dir.empty()) in_dir = aetr::util::artifact_dir();
  if (out_dir.empty()) out_dir = in_dir;
  try {
    const auto summary = aetr::obs::render_report(in_dir, out_dir);
    if (!quiet) {
      std::printf("report: %zu ledgers, %zu stacks, %zu metrics CSVs, "
                  "%zu health CSVs, %zu profiles -> %s\n",
                  summary.ledgers, summary.stacks, summary.metrics,
                  summary.health, summary.profiles, summary.out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "aetr-sweep: " << e.what() << "\n";
    return 2;
  }
}

void write_json_report(const std::string& path,
                       const std::vector<std::pair<std::string,
                                                   aetr::sweeps::FigureResult>>&
                           results,
                       std::size_t jobs) {
  std::ofstream os{path};
  if (!os) {
    std::cerr << "aetr-sweep: cannot write report: " << path << "\n";
    return;
  }
  os << "[\n";
  for (std::size_t f = 0; f < results.size(); ++f) {
    const auto& [name, r] = results[f];
    const auto& rep = r.report;
    os << " {\"figure\": \"" << name << "\", \"jobs_requested\": " << jobs
       << ", \"threads\": " << rep.threads << ", \"n_jobs\": "
       << rep.metrics.size() << ", \"wall_sec\": " << rep.wall_sec
       << ", \"busy_sec\": " << rep.busy_sec() << ", \"jobs_per_sec\": "
       << rep.jobs_per_sec() << ", \"steals\": " << rep.steals
       << ", \"checks_ok\": " << (r.ok() ? "true" : "false")
       << ", \"csv\": \"" << r.csv_path << "\",\n  \"per_job\": [";
    for (std::size_t i = 0; i < rep.metrics.size(); ++i) {
      const auto& m = rep.metrics[i];
      os << (i ? ", " : "") << "{\"index\": " << m.index << ", \"tag\": \""
         << m.tag << "\", \"wall_sec\": " << m.wall_sec << "}";
    }
    os << "]}" << (f + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (argc < 2) return usage(std::cerr);

  const std::string cmd = argv[1];
  if (cmd == "list" || cmd == "--help" || cmd == "-h") {
    usage(std::cout);
    return 0;
  }
  if (cmd == "opt") {
    bool usage_error = false;
    const int rc = run_opt(argc, argv, &usage_error);
    if (usage_error) return usage(std::cerr);
    return rc;
  }
  if (cmd == "report") {
    bool usage_error = false;
    const int rc = run_report(argc, argv, &usage_error);
    if (usage_error) return usage(std::cerr);
    return rc;
  }
  if (cmd == "all") {
    for (const auto& d : aetr::sweeps::figures()) cli.figures.push_back(d.name);
  } else if (aetr::sweeps::find_figure(cmd)) {
    cli.figures.push_back(cmd);
  } else {
    std::cerr << "aetr-sweep: unknown figure '" << cmd << "'\n\n";
    return usage(std::cerr);
  }

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "aetr-sweep: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      std::uint64_t v = 0;
      const char* s = next();
      if (!s || !parse_u64(s, v)) return usage(std::cerr);
      cli.fig.jobs = static_cast<std::size_t>(v);
    } else if (arg == "--seed") {
      std::uint64_t v = 0;
      const char* s = next();
      if (!s || !parse_u64(s, v)) return usage(std::cerr);
      cli.fig.seed = v;
    } else if (arg == "--out") {
      const char* s = next();
      if (!s) return usage(std::cerr);
      cli.fig.out_dir = s;
    } else if (arg == "--report") {
      const char* s = next();
      if (!s) return usage(std::cerr);
      cli.report_path = s;
    } else if (arg == "--quick") {
      cli.fig.quick = true;
    } else if (arg == "--no-fast-forward") {
      cli.fig.fast_forward = false;
    } else if (arg == "--trace") {
      cli.fig.trace = true;
    } else if (arg == "--metrics") {
      cli.fig.metrics = true;
    } else if (arg == "--ledger") {
      cli.fig.ledger = true;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else {
      std::cerr << "aetr-sweep: unknown option '" << arg << "'\n\n";
      return usage(std::cerr);
    }
  }

  if ((cli.fig.trace || cli.fig.metrics) && !aetr::telemetry::compiled_in()) {
    std::cerr << "aetr-sweep: built with AETR_TELEMETRY=0; "
                 "--trace/--metrics are ignored\n";
  }

  const bool show_progress = !cli.quiet && isatty(fileno(stderr));
  int exit_code = 0;
  std::vector<std::pair<std::string, aetr::sweeps::FigureResult>> results;

  for (const auto& name : cli.figures) {
    const auto* def = aetr::sweeps::find_figure(name);
    aetr::sweeps::FigureOptions opt = cli.fig;
    if (show_progress) {
      opt.progress = [&name](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r%s: %zu/%zu", name.c_str(), done, total);
        if (done == total) std::fprintf(stderr, "\n");
      };
    }
    try {
      auto result = def->run(opt);
      if (!cli.quiet) {
        std::printf("== %s — %s ==\n", def->name, def->summary);
        const int rc = aetr::sweeps::report_figure(result, std::cout);
        if (rc != 0) exit_code = 1;
      } else if (!result.ok()) {
        exit_code = 1;
      }
      results.emplace_back(name, std::move(result));
    } catch (const aetr::runtime::SweepError& e) {
      std::cerr << "aetr-sweep: " << e.what() << "\n";
      return 3;
    }
  }

  if (!cli.report_path.empty()) {
    write_json_report(cli.report_path, results, cli.fig.jobs);
  }
  return exit_code;
}
