#!/usr/bin/env python3
"""Run the scheduler micro-benchmarks and record the results at repo root.

Writes BENCH_scheduler.json with the current google-benchmark output plus a
`history` array carrying every earlier recorded run (most recent last), so
successive PRs accumulate a perf trajectory to regress against.

Usage:
    tools/bench_report.py [path/to/micro_kernels] [label]

Defaults to build/bench/micro_kernels and an empty label. Also exposed as the
`bench_report` CMake target.
"""
import json
import pathlib
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_scheduler.json"
FILTER = "BM_Scheduler"


def compact(benchmarks):
    """name -> real_time (ns) for the *_mean aggregate rows."""
    return {
        b["name"]: round(b["real_time"], 1)
        for b in benchmarks
        if b.get("name", "").endswith("_mean")
    }


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else str(
        ROOT / "build" / "bench" / "micro_kernels")
    label = sys.argv[2] if len(sys.argv) > 2 else ""
    try:
        proc = subprocess.run(
            [
                bench,
                f"--benchmark_filter={FILTER}",
                "--benchmark_format=json",
                "--benchmark_repetitions=9",
                "--benchmark_report_aggregates_only=true",
            ],
            check=True,
            capture_output=True,
            text=True,
        )
    except FileNotFoundError:
        print(f"error: benchmark binary not found: {bench}", file=sys.stderr)
        print("build it first: cmake --build build --target micro_kernels",
              file=sys.stderr)
        return 1
    except subprocess.CalledProcessError as e:
        print(f"error: {bench} exited {e.returncode}:\n{e.stderr}",
              file=sys.stderr)
        return 1
    data = json.loads(proc.stdout)

    history = []
    if OUT.exists():
        old = json.loads(OUT.read_text())
        history = old.get("history", [])
        history.append({
            "label": old.get("label", ""),
            "date": old.get("date", ""),
            "benchmarks": compact(old.get("benchmarks", [])),
        })

    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "context": data.get("context", {}),
        "benchmarks": data.get("benchmarks", []),
        "history": history,
    }
    OUT.write_text(json.dumps(doc, indent=1) + "\n")
    summary = compact(doc["benchmarks"])
    for name, ns in sorted(summary.items()):
        print(f"{name:45s} {ns:>12.1f} ns")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
