#!/usr/bin/env python3
"""Run a benchmark suite and record the results at repo root.

Two modes, selected by the first argument:

  tools/bench_report.py [path/to/micro_kernels] [label]
      Scheduler micro-benchmarks (google-benchmark JSON) -> BENCH_scheduler.json.
      Also exposed as the `bench_report` CMake target.

  tools/bench_report.py runtime [path/to/aetr-sweep] [label]
      Sweep-runtime scaling: runs `aetr-sweep fig8` at --jobs 1 and
      --jobs max(4, cpu_count), checks the output CSVs are byte-identical
      (the runtime's determinism contract), and records both wall clocks
      plus per-core jobs/sec -> BENCH_runtime.json. On a single-CPU host
      the parallel speedup is recorded as null (threads time-slice one
      core, so the ratio measures scheduler noise, not scaling). Also
      exposed as the `runtime_report` target.

  tools/bench_report.py fastpath [path/to/aetr-sweep] [fastpath_throughput] [label]
      Idle-skip fast path (core/fast_path.hpp): per-rate single-thread
      events/sec with session.fast_forward on vs off from the
      fastpath_throughput bench, the fig6/fig8 --jobs 1 wall clocks on vs
      off, and the on-vs-off CSV byte-identity gate -> BENCH_fastpath.json.
      Also exposed as the `fastpath_report` target.

  tools/bench_report.py faults [path/to/aetr-sweep] [label]
      Fault-injection sweep: runs `aetr-sweep faults --quick` at --jobs 1
      and --jobs max(4, cpu_count), checks the degradation CSVs are
      byte-identical across --jobs (the fault layer's determinism gate),
      and records the wall clocks plus the degradation series
      -> BENCH_faults.json. Also exposed as the `faults_report` target.

  tools/bench_report.py fleet [path/to/aetr-sweep] [fleet_throughput] [label]
      Fleet simulation (fleet/fleet.hpp): node-phase throughput in
      events/sec/core and energy-per-delivered-event across fleet sizes
      from the fleet_throughput bench, plus the `aetr-sweep fleet --quick`
      --jobs 1 vs N byte-identity gate (CSV + summary JSON)
      -> BENCH_fleet.json. Also exposed as the `fleet_report` target.

  tools/bench_report.py opt [path/to/aetr-sweep] [label]
      Design-space optimizer: runs `aetr-sweep opt --quick` at --jobs 1
      and --jobs max(4, cpu_count), checks the Pareto-front artifacts are
      byte-identical across --jobs, then replays the search interrupted +
      --resume and checks those bytes too. Records the best-found energy
      per event against the paper-default configuration and whether the
      front strictly dominates it -> BENCH_opt.json. Also exposed as the
      `opt_report` target.

  tools/bench_report.py profile [path/to/profile_hotpath] [label]
      Hot-path profiler breakdown (util/profiler.hpp): runs the
      profile_hotpath bench — one full DES run under the scoped sampling
      profiler — and records per-site calls/ns/fractions for the four
      instrumented sites (mcu decode, harvest, schedule measure, word
      path) plus the profiler's measured overhead -> BENCH_profile.json.
      The bench self-checks the zero-cost contract (profiler off ->
      every counter zero). Also exposed as the `profile_report` target.

  tools/bench_report.py serve [path/to/aetr-serve] [label]
      Streaming service harness (core::Session via aetr-serve): ingest
      throughput over a generated event stream with --no-history (the
      steady-state RSS ceiling), snapshot cadence cost (mean wall-clock
      per snapshot), restore latency, and the snapshot-run vs
      resumed-run summary byte-identity gate -> BENCH_serve.json. Also
      exposed as the `serve_report` target.

  tools/bench_report.py net [path/to/net_throughput] [path/to/aetr-serve] [label]
      Framed socket transport (net/wire.hpp + net/server.hpp): pure codec
      encode/decode events/sec and wire bytes per event, loopback UDS
      ingest throughput end to end, total throughput across 1/2/4
      concurrent sessions on the single-threaded gateway, and the
      socket-vs-batch summary byte-identity gate via aetr-serve
      listen/send -> BENCH_net.json. Also exposed as the `net_report`
      target.

  tools/bench_report.py validate [BENCH_*.json ...]
      Structural validator for the BENCH_*.json perf records. With no
      args the file list is not hardcoded anywhere: it is discovered by
      globbing BENCH_*.json at the repo root, so a new mode's output is
      validated the moment it first lands. Checks each document carries
      a string label, a string date, a list-valued history, and only
      JSON-representable scalar/list/dict values — the shape every mode
      above writes and the CI observability job gates on. Pure standard
      library; exits non-zero listing each violation.

  tools/bench_report.py telemetry [path/to/aetr-sweep] [stripped-sweep] [label]
      Telemetry overhead on the fig8 quick sweep -> BENCH_telemetry.json.
      Always records the *recording* cost (no flags vs --trace --metrics
      on the instrumented binary; artifact I/O dominates — that cost buys
      the artifacts). When a second binary from a -DAETR_TELEMETRY=OFF
      build is given, also records the *instrumentation* cost: the
      compiled-in-but-disabled null-check path vs the stripped binary.
      That is the number with the < 3 % target (compiled out is 0 by
      construction). Also the `telemetry_report` target.

Each output file carries a `history` array with every earlier recorded run
(most recent last), so successive PRs accumulate a perf trajectory to
regress against.
"""
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
FILTER = "BM_Scheduler"


def load_history(out, summarize):
    """Previous runs of `out`, with the most recent one compacted via
    `summarize` and appended."""
    if not out.exists():
        return []
    old = json.loads(out.read_text())
    history = old.get("history", [])
    history.append(summarize(old))
    return history


def write_doc(out, doc):
    out.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {out}")


# --- scheduler micro-benchmarks ---------------------------------------------

def compact(benchmarks):
    """name -> real_time (ns) for the *_mean aggregate rows."""
    return {
        b["name"]: round(b["real_time"], 1)
        for b in benchmarks
        if b.get("name", "").endswith("_mean")
    }


def scheduler_mode(bench, label):
    out = ROOT / "BENCH_scheduler.json"
    try:
        proc = subprocess.run(
            [
                bench,
                f"--benchmark_filter={FILTER}",
                "--benchmark_format=json",
                "--benchmark_repetitions=9",
                "--benchmark_report_aggregates_only=true",
            ],
            check=True,
            capture_output=True,
            text=True,
        )
    except FileNotFoundError:
        print(f"error: benchmark binary not found: {bench}", file=sys.stderr)
        print("build it first: cmake --build build --target micro_kernels",
              file=sys.stderr)
        return 1
    except subprocess.CalledProcessError as e:
        print(f"error: {bench} exited {e.returncode}:\n{e.stderr}",
              file=sys.stderr)
        return 1
    data = json.loads(proc.stdout)

    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "benchmarks": compact(old.get("benchmarks", [])),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "context": data.get("context", {}),
        "benchmarks": data.get("benchmarks", []),
        "history": history,
    }
    for name, ns in sorted(compact(doc["benchmarks"]).items()):
        print(f"{name:45s} {ns:>12.1f} ns")
    write_doc(out, doc)
    return 0


# --- sweep-runtime scaling ---------------------------------------------------

def run_sweep(cli, jobs, out_dir):
    report = out_dir / "report.json"
    proc = subprocess.run(
        [cli, "fig8", "--jobs", str(jobs), "--quiet",
         "--out", str(out_dir), "--report", str(report)],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"error: aetr-sweep fig8 --jobs {jobs} exited "
              f"{proc.returncode}:\n{proc.stderr}", file=sys.stderr)
        return None
    entry = json.loads(report.read_text())[0]
    entry.pop("per_job", None)  # bulky; the summary numbers suffice here
    return entry


def runtime_mode(cli, label):
    out = ROOT / "BENCH_runtime.json"
    if not pathlib.Path(cli).exists():
        print(f"error: aetr-sweep binary not found: {cli}", file=sys.stderr)
        print("build it first: cmake --build build --target aetr_sweep",
              file=sys.stderr)
        return 1
    cpus = os.cpu_count() or 1
    jobs_n = max(4, cpus)
    with tempfile.TemporaryDirectory(prefix="aetr_runtime_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        (tmp / "j1").mkdir()
        (tmp / "jN").mkdir()
        serial = run_sweep(cli, 1, tmp / "j1")
        parallel = run_sweep(cli, jobs_n, tmp / "jN")
        if serial is None or parallel is None:
            return 1
        identical = all(
            (tmp / "j1" / f).read_bytes() == (tmp / "jN" / f).read_bytes()
            for f in ("aetr_fig8.csv", "aetr_fig8_points.csv")
        )

    speedup = (serial["wall_sec"] / parallel["wall_sec"]
               if parallel["wall_sec"] > 0 else 0.0)
    # On one CPU the "parallel" run time-slices a single core: the ratio
    # measures scheduler noise, not scaling, so don't record it as a
    # speedup. Per-core jobs/sec is the number that stays comparable
    # across hosts of any width.
    speedup_meaningful = cpus > 1
    parallel_cores = max(1, min(parallel["threads"], cpus))
    per_core_serial = serial["jobs_per_sec"]
    per_core_parallel = parallel["jobs_per_sec"] / parallel_cores
    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "wall_sec_serial": old.get("serial", {}).get("wall_sec"),
        "wall_sec_parallel": old.get("parallel", {}).get("wall_sec"),
        "speedup": old.get("speedup"),
        "jobs_per_sec_per_core_serial":
            old.get("jobs_per_sec_per_core_serial"),
        "cpu_count": old.get("cpu_count"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "figure": "fig8",
        "cpu_count": cpus,
        "serial": serial,
        "parallel": parallel,
        "speedup": round(speedup, 3) if speedup_meaningful else None,
        "speedup_note": None if speedup_meaningful else (
            "single-CPU host: --jobs N time-slices one core, so a speedup"
            " ratio is not meaningful; see jobs_per_sec_per_core"),
        "jobs_per_sec_per_core_serial": round(per_core_serial, 4),
        "jobs_per_sec_per_core_parallel": round(per_core_parallel, 4),
        "outputs_identical": identical,
        "history": history,
    }
    print(f"fig8  --jobs 1                  {serial['wall_sec']:8.3f} s"
          f"  ({per_core_serial:.2f} jobs/s/core)")
    print(f"fig8  --jobs {jobs_n:<4d}"
          f"               {parallel['wall_sec']:8.3f} s"
          f"  ({parallel['threads']} threads, {parallel['steals']} steals,"
          f" {per_core_parallel:.2f} jobs/s/core)")
    if speedup_meaningful:
        print(f"speedup {speedup:.2f}x on {cpus} CPU(s); outputs"
              f" byte-identical: {identical}")
    else:
        print(f"single-CPU host: speedup recorded as null (measured ratio"
              f" {speedup:.2f}x is scheduler noise); outputs"
              f" byte-identical: {identical}")
    write_doc(out, doc)
    return 0 if identical else 1


# --- idle-skip fast path ------------------------------------------------------

def run_figure_timed(cli, fig, out_dir, fast_forward):
    report = out_dir / "report.json"
    cmd = [cli, fig, "--jobs", "1", "--quiet",
           "--out", str(out_dir), "--report", str(report)]
    if not fast_forward:
        cmd.append("--no-fast-forward")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd[1:])} exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return None
    return json.loads(report.read_text())[0]["wall_sec"]


def fastpath_mode(cli, bench, label):
    out = ROOT / "BENCH_fastpath.json"
    for path, target in ((cli, "aetr_sweep"), (bench, "fastpath_throughput")):
        if not pathlib.Path(path).exists():
            print(f"error: binary not found: {path}", file=sys.stderr)
            print(f"build it first: cmake --build build --target {target}",
                  file=sys.stderr)
            return 1
    cpus = os.cpu_count() or 1

    # Per-rate single-thread throughput, fast path on vs off, with the
    # bench's own bit-identity check. Everything here runs on one thread,
    # so events/sec IS events/sec-per-core.
    proc = subprocess.run([bench], capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {bench} exited {proc.returncode}:\n{proc.stderr}",
              file=sys.stderr)
        return 1
    series = json.loads(proc.stdout)

    figures = {}
    csvs_identical = True
    with tempfile.TemporaryDirectory(prefix="aetr_fastpath_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        for fig in ("fig6", "fig8"):
            on_dir = tmp / fig / "on"
            off_dir = tmp / fig / "off"
            on_dir.mkdir(parents=True)
            off_dir.mkdir(parents=True)
            wall_on = run_figure_timed(cli, fig, on_dir, True)
            wall_off = run_figure_timed(cli, fig, off_dir, False)
            if wall_on is None or wall_off is None:
                return 1
            same = all(
                (on_dir / f).read_bytes() == (off_dir / f).read_bytes()
                for f in (f"aetr_{fig}.csv", f"aetr_{fig}_points.csv")
            )
            csvs_identical = csvs_identical and same
            figures[fig] = {
                "wall_sec_on": round(wall_on, 4),
                "wall_sec_off": round(wall_off, 4),
                "speedup": round(wall_off / wall_on, 3)
                           if wall_on > 0 else 0.0,
                "outputs_identical": same,
            }

    peak_evps = max(e["events_per_sec_on"] for e in series)
    best_speedup = max(e["speedup"] for e in series)
    series_identical = all(e["identical"] for e in series)
    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "peak_events_per_sec_per_core":
            old.get("peak_events_per_sec_per_core"),
        "best_rate_speedup": old.get("best_rate_speedup"),
        "fig8_speedup": old.get("figures", {}).get("fig8", {})
                           .get("speedup"),
        "outputs_identical": old.get("outputs_identical"),
        "cpu_count": old.get("cpu_count"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "cpu_count": cpus,
        "threads": 1,
        "rates": series,
        "peak_events_per_sec_per_core": round(peak_evps),
        "best_rate_speedup": round(best_speedup, 3),
        "figures": figures,
        "figure_notes": {
            "fig6": "analytic error model, no DES pipeline: the fast path"
                    " does not engage, so ~1x is expected here",
            "fig8": "DES pipeline end to end; the paper-facing speedup",
        },
        "target_speedup": 10.0,
        "bottlenecks": {
            "note": "Measured speedup is below the 10x target because the"
                    " reference path was never idle-dominated at the"
                    " paper's operating rates: after idle-skip removes the"
                    " clock-tree ticking, per-event work dominates both"
                    " paths. gprof on the remaining fast-path run:",
            "profile_pct": {
                "mcu_decode_one": 30,
                "harvest_callback": 20,
                "sampling_schedule_measure": 15,
                "word_fn_callback_chain": 20,
            },
            "word_fn_note": "the per-word callbacks are now"
                            " util::InplaceFunction (inline storage, no"
                            " allocator round-trip; see"
                            " tests/test_word_path_alloc.cpp) — the history"
                            " entries record the std::function-era numbers",
        },
        "outputs_identical": csvs_identical and series_identical,
        "history": history,
    }
    for e in series:
        print(f"rate {e['rate_hz']:>10g} evt/s   on {e['wall_sec_on']:8.4f} s"
              f"  off {e['wall_sec_off']:8.4f} s"
              f"  {e['events_per_sec_on']:>12.0f} evt/s/core"
              f"  speedup {e['speedup']:.2f}x")
    for fig, f in figures.items():
        print(f"{fig}  --jobs 1  on {f['wall_sec_on']:8.3f} s"
              f"  off {f['wall_sec_off']:8.3f} s"
              f"  speedup {f['speedup']:.2f}x"
              f"  byte-identical: {f['outputs_identical']}")
    print(f"peak {peak_evps:.0f} evt/s/core on {cpus} CPU(s);"
          f" all outputs byte-identical:"
          f" {csvs_identical and series_identical}")
    write_doc(out, doc)
    return 0 if csvs_identical and series_identical else 1


# --- fault-injection sweep ----------------------------------------------------

def run_faults_sweep(cli, jobs, out_dir):
    report = out_dir / "report.json"
    proc = subprocess.run(
        [cli, "faults", "--quick", "--jobs", str(jobs), "--quiet",
         "--out", str(out_dir), "--report", str(report)],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"error: aetr-sweep faults --jobs {jobs} exited "
              f"{proc.returncode}:\n{proc.stderr}", file=sys.stderr)
        return None
    entry = json.loads(report.read_text())[0]
    entry.pop("per_job", None)
    return entry


def read_faults_series(csv_path):
    """aetr_faults_points.csv -> list of per-level dicts."""
    lines = csv_path.read_text().strip().splitlines()
    header = lines[0].split(",")
    return [dict(zip(header, line.split(","))) for line in lines[1:]]


def faults_mode(cli, label):
    out = ROOT / "BENCH_faults.json"
    if not pathlib.Path(cli).exists():
        print(f"error: aetr-sweep binary not found: {cli}", file=sys.stderr)
        print("build it first: cmake --build build --target aetr_sweep",
              file=sys.stderr)
        return 1
    cpus = os.cpu_count() or 1
    jobs_n = max(4, cpus)
    with tempfile.TemporaryDirectory(prefix="aetr_faults_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        (tmp / "j1").mkdir()
        (tmp / "jN").mkdir()
        serial = run_faults_sweep(cli, 1, tmp / "j1")
        parallel = run_faults_sweep(cli, jobs_n, tmp / "jN")
        if serial is None or parallel is None:
            return 1
        identical = all(
            (tmp / "j1" / f).read_bytes() == (tmp / "jN" / f).read_bytes()
            for f in ("aetr_faults.csv", "aetr_faults_points.csv")
        )
        series = read_faults_series(tmp / "j1" / "aetr_faults_points.csv")

    # The grid's zero level is the fault-free baseline, so the serial wall
    # clock split per level approximates the injection overhead; the
    # meaningful signals recorded here are the determinism bit and the
    # degradation trajectory.
    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "wall_sec_serial": old.get("serial", {}).get("wall_sec"),
        "wall_sec_parallel": old.get("parallel", {}).get("wall_sec"),
        "outputs_identical": old.get("outputs_identical"),
        "series": old.get("series"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "figure": "faults --quick",
        "cpu_count": cpus,
        "serial": serial,
        "parallel": parallel,
        "outputs_identical": identical,
        "series": series,
        "history": history,
    }
    for row in series:
        print(f"level {row['level']:>8s}  err {row['err']:>10s}"
              f"  delivered {row['delivered']:>10s}"
              f"  injected {row['injected']:>8s}"
              f"  recovered {row['recovered']:>8s}")
    print(f"faults --quick  --jobs 1 {serial['wall_sec']:8.3f} s |"
          f" --jobs {jobs_n} {parallel['wall_sec']:8.3f} s |"
          f" outputs byte-identical: {identical}")
    write_doc(out, doc)
    return 0 if identical else 1


# --- sensor fleet -------------------------------------------------------------

FLEET_ARTIFACTS = ("aetr_fleet.csv", "aetr_fleet_points.csv",
                   "aetr_fleet_summary.json")


def run_fleet_sweep(cli, jobs, out_dir):
    proc = subprocess.run(
        [cli, "fleet", "--quick", "--jobs", str(jobs), "--quiet",
         "--out", str(out_dir)],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"error: aetr-sweep fleet --jobs {jobs} exited "
              f"{proc.returncode}:\n{proc.stderr}", file=sys.stderr)
        return None
    return True


def fleet_mode(cli, bench, label):
    out = ROOT / "BENCH_fleet.json"
    for path, target in ((cli, "aetr_sweep"), (bench, "fleet_throughput")):
        if not pathlib.Path(path).exists():
            print(f"error: binary not found: {path}", file=sys.stderr)
            print(f"build it first: cmake --build build --target {target}",
                  file=sys.stderr)
            return 1
    cpus = os.cpu_count() or 1
    jobs_n = max(4, cpus)

    # Per-N wall clock + figure-of-merit series from the bench (node phase
    # parallelised over all cores; per-core numbers stay host-comparable).
    proc = subprocess.run([bench], capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {bench} exited {proc.returncode}:\n{proc.stderr}",
              file=sys.stderr)
        return 1
    series = json.loads(proc.stdout)

    # Determinism gate: the quick fleet figure must be byte-identical for
    # any --jobs value, summary JSON included.
    with tempfile.TemporaryDirectory(prefix="aetr_fleet_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        (tmp / "j1").mkdir()
        (tmp / "jN").mkdir()
        if run_fleet_sweep(cli, 1, tmp / "j1") is None:
            return 1
        if run_fleet_sweep(cli, jobs_n, tmp / "jN") is None:
            return 1
        identical = all(
            (tmp / "j1" / f).read_bytes() == (tmp / "jN" / f).read_bytes()
            for f in FLEET_ARTIFACTS
        )

    peak_evps_core = max(e["events_per_sec_per_core"] for e in series)
    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "peak_events_per_sec_per_core":
            old.get("peak_events_per_sec_per_core"),
        "series": [
            {k: e.get(k) for k in ("nodes", "events_per_sec_per_core",
                                   "energy_per_delivered_uj",
                                   "delivered_fraction")}
            for e in old.get("series", [])
        ],
        "outputs_identical": old.get("outputs_identical"),
        "cpu_count": old.get("cpu_count"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "cpu_count": cpus,
        "series": series,
        "peak_events_per_sec_per_core": round(peak_evps_core),
        "outputs_identical": identical,
        "history": history,
    }
    for e in series:
        print(f"N {e['nodes']:>5d}  {e['events_per_sec']:>12.0f} evt/s"
              f"  ({e['events_per_sec_per_core']:>10.0f} /core)"
              f"  delivered {e['delivered_fraction']:.4f}"
              f"  {e['energy_per_delivered_uj']:.3f} uJ/evt"
              f"  p99 {e['latency_p99_ms']:.3f} ms")
    print(f"peak {peak_evps_core:.0f} evt/s/core on {cpus} CPU(s);"
          f" fleet --quick outputs byte-identical across --jobs:"
          f" {identical}")
    write_doc(out, doc)
    return 0 if identical else 1


# --- design-space optimizer ---------------------------------------------------

OPT_ARTIFACTS = ("aetr_opt_trials.csv", "aetr_opt_pareto.csv",
                 "aetr_opt_pareto.svg", "aetr_opt_summary.json",
                 "aetr_opt_checkpoint.csv")


def run_opt(cli, out_dir, jobs, extra=()):
    cmd = [cli, "opt", "--quick", "--jobs", str(jobs), "--quiet",
           "--out", str(out_dir)] + list(extra)
    t0 = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True)
    wall = time.monotonic() - t0
    # --interrupt-after exits 4 by design.
    expected = {0, 4} if "--interrupt-after" in extra else {0}
    if proc.returncode not in expected:
        print(f"error: {' '.join(cmd[1:])} exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return None
    return wall


def opt_mode(cli, label):
    out = ROOT / "BENCH_opt.json"
    if not pathlib.Path(cli).exists():
        print(f"error: aetr-sweep binary not found: {cli}", file=sys.stderr)
        print("build it first: cmake --build build --target aetr_sweep",
              file=sys.stderr)
        return 1
    cpus = os.cpu_count() or 1
    jobs_n = max(4, cpus)
    with tempfile.TemporaryDirectory(prefix="aetr_opt_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        for d in ("j1", "jN", "resumed"):
            (tmp / d).mkdir()
        serial = run_opt(cli, tmp / "j1", 1)
        parallel = run_opt(cli, tmp / "jN", jobs_n)
        if serial is None or parallel is None:
            return 1
        identical = all(
            (tmp / "j1" / f).read_bytes() == (tmp / "jN" / f).read_bytes()
            for f in OPT_ARTIFACTS
        )
        # Interrupt the search mid-flight, then resume it; the final
        # artifacts must match the uninterrupted run byte for byte.
        if run_opt(cli, tmp / "resumed", jobs_n,
                   ("--interrupt-after", "10")) is None:
            return 1
        if run_opt(cli, tmp / "resumed", jobs_n, ("--resume",)) is None:
            return 1
        resume_identical = all(
            (tmp / "j1" / f).read_bytes()
            == (tmp / "resumed" / f).read_bytes()
            for f in OPT_ARTIFACTS
        )
        summary = json.loads((tmp / "j1" / "aetr_opt_summary.json")
                             .read_text())

    baseline = summary["baseline"]["energy_per_event_j"]
    best = summary["best_energy_per_event_j"]
    saving_pct = (baseline - best) / baseline * 100.0 if baseline else 0.0
    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "wall_sec_serial": old.get("wall_sec_serial"),
        "wall_sec_parallel": old.get("wall_sec_parallel"),
        "best_energy_per_event_j": old.get("best_energy_per_event_j"),
        "baseline_energy_per_event_j":
            old.get("baseline_energy_per_event_j"),
        "energy_saving_pct": old.get("energy_saving_pct"),
        "dominated_baseline": old.get("dominated_baseline"),
        "outputs_identical": old.get("outputs_identical"),
        "resume_identical": old.get("resume_identical"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "figure": "opt --quick",
        "cpu_count": cpus,
        "wall_sec_serial": round(serial, 4),
        "wall_sec_parallel": round(parallel, 4),
        "strategy": summary["strategy"],
        "budget": summary["budget"],
        "trials": summary["trials"],
        "front_size": len(summary["front"]),
        "hypervolume": summary["hypervolume"],
        "baseline_energy_per_event_j": baseline,
        "best_energy_per_event_j": best,
        "energy_saving_pct": round(saving_pct, 2),
        "dominated_baseline": summary["dominated_baseline"],
        "outputs_identical": identical,
        "resume_identical": resume_identical,
        "history": history,
    }
    print(f"opt --quick  --jobs 1 {serial:8.3f} s |"
          f" --jobs {jobs_n} {parallel:8.3f} s")
    print(f"energy/event: default {baseline:.4g} J -> best {best:.4g} J"
          f"  ({saving_pct:+.1f}%)")
    print(f"front dominates default: {summary['dominated_baseline']} |"
          f" outputs byte-identical: {identical} |"
          f" interrupted+resume identical: {resume_identical}")
    write_doc(out, doc)
    ok = (identical and resume_identical
          and summary["dominated_baseline"])
    return 0 if ok else 1


# --- hot-path profiler --------------------------------------------------------

def profile_mode(bench, label):
    out = ROOT / "BENCH_profile.json"
    if not pathlib.Path(bench).exists():
        print(f"error: profile bench binary not found: {bench}",
              file=sys.stderr)
        print("build it first: cmake --build build --target profile_hotpath",
              file=sys.stderr)
        return 1
    # AETR_PROFILE would also work; the bench toggles the profiler itself so
    # the disabled-run zero-cost self-check can run first in-process.
    proc = subprocess.run([bench], capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {bench} exited {proc.returncode}:\n{proc.stderr}",
              file=sys.stderr)
        return 1
    run = json.loads(proc.stdout)

    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "wall_sec_off": old.get("wall_sec_off"),
        "profiling_overhead_pct": old.get("profiling_overhead_pct"),
        "site_frac": {
            s.get("site"): s.get("frac")
            for s in old.get("profile", {}).get("sites", [])
        },
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "figure": "profile_hotpath",
        "cpu_count": os.cpu_count() or 1,
        "rate_hz": run["rate_hz"],
        "events": run["events"],
        "wall_sec_off": run["wall_sec_off"],
        "wall_sec_on": run["wall_sec_on"],
        "profiling_overhead_pct": run["profiling_overhead_pct"],
        "profile": run["profile"],
        "history": history,
    }
    total_ns = run["profile"]["total_ns"]
    for site in run["profile"]["sites"]:
        print(f"{site['site']:>18s}  {site['calls']:>10d} calls"
              f"  {site['ns'] / 1e6:>10.3f} ms  {site['frac'] * 100:5.1f}%")
    print(f"profiled {total_ns / 1e6:.3f} ms across "
          f"{len(run['profile']['sites'])} sites; profiler overhead "
          f"{run['profiling_overhead_pct']:+.1f}% "
          f"({run['wall_sec_off']:.3f} s -> {run['wall_sec_on']:.3f} s)")
    write_doc(out, doc)
    return 0


# --- streaming service (aetr-serve) -------------------------------------------

SERVE_EVENTS = 100_000
SERVE_RATE_HZ = 100_000
SERVE_SNAPSHOT_INTERVAL_SEC = 0.1


def run_serve(binary, argv):
    proc = subprocess.run([binary] + argv, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: aetr-serve {' '.join(argv)} exited "
              f"{proc.returncode}:\n{proc.stderr}", file=sys.stderr)
        return None
    return True


def serve_mode(binary, label):
    out = ROOT / "BENCH_serve.json"
    if not pathlib.Path(binary).exists():
        print(f"error: aetr-serve binary not found: {binary}", file=sys.stderr)
        print("build it first: cmake --build build --target aetr_serve",
              file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory(prefix="aetr_serve_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        stream = tmp / "stream.trace"
        if run_serve(binary, ["gen", "--out", str(stream),
                              "--events", str(SERVE_EVENTS),
                              "--rate-hz", str(SERVE_RATE_HZ),
                              "--seed", "7"]) is None:
            return 1
        # Pure ingest throughput with per-event history dropped: the
        # steady-state RSS ceiling an endless service run sits at.
        if run_serve(binary, ["run", "--in", str(stream),
                              "--out-dir", str(tmp / "ingest"),
                              "--no-history",
                              "--stats-json", str(tmp / "ingest.json")
                              ]) is None:
            return 1
        ingest = json.loads((tmp / "ingest.json").read_text())
        # Snapshotting run: periodic snapshots on the simulated clock,
        # then a resume from the last snapshot — the resumed summary must
        # match the snapshotting run's byte for byte (the kill-and-resume
        # determinism contract; CI exercises the SIGKILL variant).
        snap_args = ["run", "--in", str(stream),
                     "--snapshot", str(tmp / "state.snap"),
                     "--snapshot-interval-sec",
                     str(SERVE_SNAPSHOT_INTERVAL_SEC)]
        if run_serve(binary, snap_args + [
                "--out-dir", str(tmp / "snap"),
                "--stats-json", str(tmp / "snap.json")]) is None:
            return 1
        snap = json.loads((tmp / "snap.json").read_text())
        if run_serve(binary, snap_args + [
                "--out-dir", str(tmp / "resumed"), "--resume",
                "--stats-json", str(tmp / "resumed.json")]) is None:
            return 1
        resumed = json.loads((tmp / "resumed.json").read_text())
        resume_identical = ((tmp / "snap" / "summary.txt").read_bytes()
                            == (tmp / "resumed" / "summary.txt").read_bytes())

    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "events_per_sec": old.get("ingest", {}).get("events_per_sec"),
        "max_rss_kb_no_history":
            old.get("ingest", {}).get("max_rss_kb_no_history"),
        "snapshot_sec_mean": old.get("snapshot", {}).get("sec_mean"),
        "restore_sec": old.get("restore_sec"),
        "resume_identical": old.get("resume_identical"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "cpu_count": os.cpu_count() or 1,
        "events": SERVE_EVENTS,
        "rate_hz": SERVE_RATE_HZ,
        "ingest": {
            "wall_sec": round(ingest["ingest_sec"], 4),
            "events_per_sec": round(ingest["events_per_sec"]),
            "max_rss_kb_no_history": ingest["max_rss_kb"],
        },
        "snapshot": {
            "interval_sec": SERVE_SNAPSHOT_INTERVAL_SEC,
            "count": snap["snapshots"],
            "sec_total": round(snap["snapshot_sec_total"], 5),
            "sec_mean": round(snap["snapshot_sec_mean"], 6),
            "max_rss_kb": snap["max_rss_kb"],
        },
        "restore_sec": round(resumed["restore_sec"], 6),
        "resume_identical": resume_identical,
        "history": history,
    }
    print(f"ingest {SERVE_EVENTS} events"
          f"        {ingest['ingest_sec']:8.3f} s"
          f"  ({ingest['events_per_sec']:>12.0f} evt/s,"
          f" RSS {ingest['max_rss_kb']} kB with --no-history)")
    print(f"snapshots x{snap['snapshots']:<3d}"
          f"               {snap['snapshot_sec_mean'] * 1e3:8.3f} ms mean"
          f"  ({snap['snapshot_sec_total']:.4f} s total)")
    print(f"restore                    "
          f"{resumed['restore_sec'] * 1e3:8.3f} ms;"
          f" resumed summary byte-identical: {resume_identical}")
    write_doc(out, doc)
    return 0 if resume_identical else 1


# --- framed socket transport (aetr::net) --------------------------------------

NET_EVENTS = 20_000
NET_RATE_HZ = 50e3


def net_mode(bench, serve, label):
    """BENCH_net.json: codec + loopback ingest throughput from the
    net_throughput bench, plus the socket-vs-batch summary byte-identity
    gate driven through the aetr-serve listen/send CLI."""
    out = ROOT / "BENCH_net.json"
    for path, target in ((bench, "net_throughput"), (serve, "aetr_serve")):
        if not pathlib.Path(path).exists():
            print(f"error: binary not found: {path}", file=sys.stderr)
            print(f"build it first: cmake --build build --target {target}",
                  file=sys.stderr)
            return 1

    proc = subprocess.run([bench], capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"error: {bench} exited {proc.returncode}:\n{proc.stderr}",
              file=sys.stderr)
        return 1
    series = json.loads(proc.stdout)
    codec = next(e for e in series if e["bench"] == "codec")
    ingest = [e for e in series if e["bench"] == "ingest"]

    # Determinism gate: one session streamed over a Unix socket must yield
    # a summary byte-identical to the batch `aetr-serve run` of the same
    # stream (tests/test_net_server asserts the same for concurrent
    # sessions and TCP; CI adds the SIGKILL/resume variant).
    with tempfile.TemporaryDirectory(prefix="aetr_net_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        stream = tmp / "stream.trace"
        sock = tmp / "gw.sock"
        if run_serve(serve, ["gen", "--out", str(stream),
                             "--events", str(NET_EVENTS),
                             "--rate-hz", str(NET_RATE_HZ),
                             "--seed", "7"]) is None:
            return 1
        if run_serve(serve, ["run", "--in", str(stream),
                             "--out-dir", str(tmp / "batch")]) is None:
            return 1
        gateway = subprocess.Popen(
            [serve, "listen", "--uds", str(sock),
             "--out-dir", str(tmp / "gw"), "--exit-after-sessions", "1"],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
        try:
            sent = None
            for _ in range(200):  # wait for the socket to come up
                sent = subprocess.run(
                    [serve, "send", "--in", str(stream), "--uds", str(sock),
                     "--name", "bench"],
                    capture_output=True, text=True)
                if sent.returncode == 0 or gateway.poll() is not None:
                    break
                time.sleep(0.05)
            if sent is None or sent.returncode != 0:
                print(f"error: aetr-serve send failed:\n"
                      f"{sent.stderr if sent else ''}", file=sys.stderr)
                return 1
        finally:
            try:
                gateway.wait(timeout=30)
            except subprocess.TimeoutExpired:
                gateway.kill()
                gateway.wait()
                print("error: gateway did not exit after the session",
                      file=sys.stderr)
                return 1
        socket_identical = ((tmp / "batch" / "summary.txt").read_bytes()
                            == (tmp / "gw" / "summary-bench.txt").read_bytes())

    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "codec_events_per_sec": old.get("codec", {}).get("events_per_sec"),
        "ingest_events_per_sec_1":
            (old.get("ingest", [{}])[0] or {}).get("events_per_sec_total"),
        "socket_identical": old.get("socket_identical"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "cpu_count": os.cpu_count() or 1,
        "codec": {
            "events_per_sec": round(codec["events_per_sec"]),
            "wire_bytes_per_event": codec["wire_bytes_per_event"],
        },
        "ingest": [
            {
                "sessions": e["sessions"],
                "events_per_sec_total": round(e["events_per_sec_total"]),
                "events_per_sec_per_session":
                    round(e["events_per_sec_per_session"]),
            }
            for e in ingest
        ],
        "socket_identical": socket_identical,
        "history": history,
    }
    print(f"codec                      "
          f"{codec['events_per_sec']:>12.0f} evt/s"
          f"  ({codec['wire_bytes_per_event']:.2f} wire B/evt)")
    for e in ingest:
        print(f"ingest x{e['sessions']:<2d} sessions       "
              f"{e['events_per_sec_total']:>12.0f} evt/s total"
              f"  ({e['events_per_sec_per_session']:>10.0f} /session)")
    print(f"socket-vs-batch summary byte-identical: {socket_identical}")
    write_doc(out, doc)
    return 0 if socket_identical else 1


# --- BENCH_*.json structural validation ---------------------------------------

def check_json_shape(value, path, errors, depth=0):
    """Every value must be a JSON scalar, list, or dict — anything else
    means a mode wrote something json.dumps coerced unexpectedly."""
    if depth > 12:
        errors.append(f"{path}: nesting deeper than 12 levels")
        return
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, list):
        for i, v in enumerate(value):
            check_json_shape(v, f"{path}[{i}]", errors, depth + 1)
        return
    if isinstance(value, dict):
        for k, v in value.items():
            if not isinstance(k, str):
                errors.append(f"{path}: non-string key {k!r}")
            check_json_shape(v, f"{path}.{k}", errors, depth + 1)
        return
    errors.append(f"{path}: unexpected type {type(value).__name__}")


def validate_one(path):
    """Structural checks shared by every BENCH_*.json; returns error list."""
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path.name}: unreadable or invalid JSON: {e}"]
    if not isinstance(doc, dict):
        return [f"{path.name}: top level is {type(doc).__name__}, not object"]
    for key in ("label", "date"):
        if not isinstance(doc.get(key), str):
            errors.append(f"{path.name}: missing or non-string '{key}'")
    history = doc.get("history")
    if not isinstance(history, list):
        errors.append(f"{path.name}: missing or non-list 'history'")
    else:
        for i, entry in enumerate(history):
            if not isinstance(entry, dict):
                errors.append(
                    f"{path.name}: history[{i}] is not an object")
            elif not isinstance(entry.get("label"), str):
                errors.append(
                    f"{path.name}: history[{i}] missing string 'label'")
    check_json_shape(doc, path.name, errors)
    return errors


def validate_mode(paths):
    if paths:
        files = [pathlib.Path(p) for p in paths]
    else:
        files = sorted(ROOT.glob("BENCH_*.json"))
    if not files:
        print("validate: no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = 0
    for f in files:
        errors = validate_one(f)
        if errors:
            failures += 1
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            doc = json.loads(f.read_text())
            print(f"ok   {f.name}  ({len(doc.get('history', []))} history"
                  f" entries)")
    if failures:
        print(f"validate: {failures}/{len(files)} files failed",
              file=sys.stderr)
    return 1 if failures else 0


# --- telemetry overhead -------------------------------------------------------

def timed_quick_sweep(cli, out_dir, telemetry, repetitions=5):
    """Best-of-N wall time of `aetr-sweep fig8 --quick`, via --report."""
    best = None
    for rep in range(repetitions):
        rep_dir = out_dir / f"rep{rep}"
        rep_dir.mkdir()
        report = rep_dir / "report.json"
        cmd = [cli, "fig8", "--quick", "--jobs", "1", "--quiet",
               "--out", str(rep_dir), "--report", str(report)]
        if telemetry:
            cmd += ["--trace", "--metrics"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"error: {' '.join(cmd[1:])} exited {proc.returncode}:\n"
                  f"{proc.stderr}", file=sys.stderr)
            return None
        wall = json.loads(report.read_text())[0]["wall_sec"]
        best = wall if best is None else min(best, wall)
    return best


def telemetry_mode(cli, cli_stripped, label):
    out = ROOT / "BENCH_telemetry.json"
    if not pathlib.Path(cli).exists():
        print(f"error: aetr-sweep binary not found: {cli}", file=sys.stderr)
        print("build it first: cmake --build build --target aetr_sweep",
              file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory(prefix="aetr_telemetry_bench_") as tmp:
        tmp = pathlib.Path(tmp)
        (tmp / "off").mkdir()
        (tmp / "on").mkdir()
        idle = timed_quick_sweep(cli, tmp / "off", telemetry=False)
        recording = timed_quick_sweep(cli, tmp / "on", telemetry=True)
        if idle is None or recording is None:
            return 1
        wrote_artifacts = any(
            (tmp / "on" / "rep0").glob("aetr_fig8_j*_trace.json"))
        stripped = None
        if cli_stripped:
            (tmp / "stripped").mkdir()
            stripped = timed_quick_sweep(cli_stripped, tmp / "stripped",
                                         telemetry=False)
            if stripped is None:
                return 1

    recording_pct = ((recording - idle) / idle * 100.0 if idle > 0 else 0.0)
    instrumentation_pct = None
    if stripped is not None and stripped > 0:
        instrumentation_pct = (idle - stripped) / stripped * 100.0
    history = load_history(out, lambda old: {
        "label": old.get("label", ""),
        "date": old.get("date", ""),
        "wall_sec_idle": old.get("wall_sec_idle"),
        "wall_sec_recording": old.get("wall_sec_recording"),
        "wall_sec_stripped": old.get("wall_sec_stripped"),
        "instrumentation_overhead_pct":
            old.get("instrumentation_overhead_pct"),
        "recording_overhead_pct": old.get("recording_overhead_pct"),
    })
    doc = {
        "label": label,
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "figure": "fig8 --quick",
        "wall_sec_idle": round(idle, 4),
        "wall_sec_recording": round(recording, 4),
        "wall_sec_stripped":
            round(stripped, 4) if stripped is not None else None,
        "instrumentation_overhead_pct":
            round(instrumentation_pct, 2)
            if instrumentation_pct is not None else None,
        "instrumentation_target_pct": 3.0,
        "recording_overhead_pct": round(recording_pct, 2),
        "artifacts_written": wrote_artifacts,
        "history": history,
    }
    print(f"fig8 --quick  instrumented, telemetry off {idle:8.3f} s")
    print(f"fig8 --quick  --trace --metrics           {recording:8.3f} s"
          f"  (recording {recording_pct:+.1f}%; buys the artifacts:"
          f" written={wrote_artifacts})")
    if stripped is not None:
        print(f"fig8 --quick  AETR_TELEMETRY=OFF build    {stripped:8.3f} s"
              f"  (instrumentation {instrumentation_pct:+.2f}%,"
              " target < 3%)")
    else:
        print("no stripped binary given: instrumentation overhead not"
              " measured (pass a -DAETR_TELEMETRY=OFF aetr-sweep as the"
              " 2nd argument)")
    write_doc(out, doc)
    # Overhead is wall-clock-noisy on shared CI hosts; only a missing
    # artifact (telemetry silently off) fails the run.
    return 0 if wrote_artifacts else 1


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "telemetry":
        cli = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "aetr-sweep")
        # 2nd positional: a -DAETR_TELEMETRY=OFF binary if it names an
        # existing file, else the label.
        cli_stripped = None
        rest = args[2:]
        if rest and pathlib.Path(rest[0]).exists():
            cli_stripped = rest[0]
            rest = rest[1:]
        label = rest[0] if rest else ""
        return telemetry_mode(cli, cli_stripped, label)
    if args and args[0] == "fastpath":
        cli = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "aetr-sweep")
        bench = args[2] if len(args) > 2 else str(
            ROOT / "build" / "bench" / "fastpath_throughput")
        label = args[3] if len(args) > 3 else ""
        return fastpath_mode(cli, bench, label)
    if args and args[0] == "fleet":
        cli = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "aetr-sweep")
        bench = args[2] if len(args) > 2 else str(
            ROOT / "build" / "bench" / "fleet_throughput")
        label = args[3] if len(args) > 3 else ""
        return fleet_mode(cli, bench, label)
    if args and args[0] == "profile":
        bench = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "profile_hotpath")
        label = args[2] if len(args) > 2 else ""
        return profile_mode(bench, label)
    if args and args[0] == "serve":
        binary = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "aetr-serve")
        label = args[2] if len(args) > 2 else ""
        return serve_mode(binary, label)
    if args and args[0] == "net":
        bench = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "net_throughput")
        serve = args[2] if len(args) > 2 else str(
            ROOT / "build" / "bench" / "aetr-serve")
        label = args[3] if len(args) > 3 else ""
        return net_mode(bench, serve, label)
    if args and args[0] == "validate":
        return validate_mode(args[1:])
    if args and args[0] == "opt":
        cli = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "aetr-sweep")
        label = args[2] if len(args) > 2 else ""
        return opt_mode(cli, label)
    if args and args[0] == "faults":
        cli = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "aetr-sweep")
        label = args[2] if len(args) > 2 else ""
        return faults_mode(cli, label)
    if args and args[0] == "runtime":
        cli = args[1] if len(args) > 1 else str(
            ROOT / "build" / "bench" / "aetr-sweep")
        label = args[2] if len(args) > 2 else ""
        return runtime_mode(cli, label)
    bench = args[0] if args else str(
        ROOT / "build" / "bench" / "micro_kernels")
    label = args[1] if len(args) > 1 else ""
    return scheduler_mode(bench, label)


if __name__ == "__main__":
    sys.exit(main())
