// aetr-serve — service-mode harness over the incremental core::Session.
//
//   aetr-serve gen --out FILE [--events N] [--rate-hz R] [--seed S]
//              [--addr-range A]
//       Generate a deterministic Poisson stream: AEDAT 2.0 when FILE ends
//       in .aedat, the line-oriented aer trace format otherwise.
//
//   aetr-serve run --in FILE|- [--config FILE] [--out-dir DIR]
//              [--snapshot FILE] [--snapshot-interval-sec S] [--resume]
//              [--no-history] [--pace-us N] [--pace-every N]
//              [--stats-json FILE]
//       Ingest a stream — an .aedat file, a trace file, a FIFO, or stdin
//       ('-') — through a core::Session: feed each event as it arrives,
//       advance simulated time under backpressure, checkpoint the full
//       simulator state to --snapshot every session.snapshot_interval_sec
//       of *simulated* time (atomically: tmp + rename, so a kill never
//       leaves a torn blob), and on end-of-stream or SIGTERM/SIGINT drain
//       gracefully: finish() the session and write the run summary.
//
//       With --resume the session first restores the last snapshot and
//       skips the events it already consumed, continuing byte-identically
//       to a run that was never interrupted — the CI serve-determinism job
//       SIGKILLs a paced run mid-stream and diffs the resumed summary
//       against an uninterrupted one.
//
//       summary.txt under --out-dir holds only deterministic counters (no
//       wall-clock data), so `diff -r` across runs is meaningful.
//       --stats-json lands wall-clock ingest/snapshot timings and peak RSS
//       outside the out-dir for the BENCH_serve.json report.
//
//   aetr-serve listen (--uds PATH | --tcp [--port P]) [--config FILE]
//              [--out-dir DIR] [--snapshot-dir DIR]
//              [--snapshot-interval-sec S] [--resume] [--credit-window N]
//              [--max-sessions N] [--exit-after-sessions N]
//              [--port-file FILE] [--no-history]
//       The multi-session gateway (docs/SERVICE.md "Socket transport"):
//       hosts one core::Session per connection over the framed wire
//       protocol, each with its own periodic snapshots under
//       --snapshot-dir and a per-session summary-<name>.txt under
//       --out-dir. SIGTERM/SIGINT drains every live session before exit;
//       --resume restores <name>.snap at HELLO so a SIGKILLed gateway
//       continues byte-identically.
//
//   aetr-serve send --in FILE --name NAME (--uds PATH | --host H --port P)
//              [--config FILE] [--chunk N] [--pace-us N] [--pace-every N]
//              [--snapshot-every N]
//       Stream a stream file into a gateway session and print the drained
//       summary on stdout. Against a resumed gateway the HELLO_ACK's
//       events_fed skips what the session already consumed.
//
//   aetr-serve bridge (--uds PATH | --host H --port P) [--fleet FILE]
//              [--nodes N] [--events-per-node N] [--concurrency C]
//              [--chunk N] [--out-dir DIR]
//       Fleet bridge: stream every node of an aetr::fleet config as a live
//       gateway session (round-robin interleaved DATA), writing each
//       node's summary under --out-dir.
//
// Exit codes: 0 = completed (including a graceful signal drain), 2 = usage
// error, 3 = runtime failure.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "aer/aedat.hpp"
#include "aer/event.hpp"
#include "aer/trace.hpp"
#include "core/config_io.hpp"
#include "core/session.hpp"
#include "core/summary.hpp"
#include "fleet/fleet_io.hpp"
#include "gen/sources.hpp"
#include "net/client.hpp"
#include "net/fleet_bridge.hpp"
#include "net/server.hpp"
#include "util/artifacts.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(std::ostream& os) {
  os << "usage:\n"
        "  aetr-serve gen --out FILE [--events N] [--rate-hz R] [--seed S]"
        " [--addr-range A]\n"
        "  aetr-serve run --in FILE|- [--config FILE] [--out-dir DIR]\n"
        "             [--snapshot FILE] [--snapshot-interval-sec S]"
        " [--resume]\n"
        "             [--no-history] [--pace-us N] [--pace-every N]"
        " [--stats-json FILE]\n"
        "  aetr-serve listen (--uds PATH | --tcp [--port P])"
        " [--config FILE]\n"
        "             [--out-dir DIR] [--snapshot-dir DIR]"
        " [--snapshot-interval-sec S]\n"
        "             [--resume] [--credit-window N] [--max-sessions N]\n"
        "             [--exit-after-sessions N] [--port-file FILE]"
        " [--no-history]\n"
        "  aetr-serve send --in FILE --name NAME"
        " (--uds PATH | --host H --port P)\n"
        "             [--config FILE] [--chunk N] [--pace-us N]"
        " [--pace-every N]\n"
        "             [--snapshot-every N]\n"
        "  aetr-serve bridge (--uds PATH | --host H --port P)"
        " [--fleet FILE]\n"
        "             [--nodes N] [--events-per-node N] [--concurrency C]"
        " [--chunk N]\n"
        "             [--out-dir DIR]\n";
  return &os == &std::cerr ? 2 : 0;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end) return false;
  out = v;
  return true;
}

bool parse_f64(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end) return false;
  out = v;
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

double wall_sec(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

// ---------------------------------------------------------------------------
// gen

int cmd_gen(int argc, char** argv) {
  std::string out;
  std::uint64_t events = 100000;
  std::uint64_t seed = 1;
  std::uint64_t addr_range = 256;
  double rate_hz = 50e3;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--out" && has_next) {
      out = argv[++i];
    } else if (a == "--events" && has_next) {
      if (!parse_u64(argv[++i], events)) return usage(std::cerr);
    } else if (a == "--seed" && has_next) {
      if (!parse_u64(argv[++i], seed)) return usage(std::cerr);
    } else if (a == "--addr-range" && has_next) {
      if (!parse_u64(argv[++i], addr_range) || addr_range == 0 ||
          addr_range > 0xffff) {
        return usage(std::cerr);
      }
    } else if (a == "--rate-hz" && has_next) {
      if (!parse_f64(argv[++i], rate_hz) || rate_hz <= 0.0) {
        return usage(std::cerr);
      }
    } else {
      std::cerr << "aetr-serve gen: unknown argument " << a << '\n';
      return usage(std::cerr);
    }
  }
  if (out.empty()) {
    std::cerr << "aetr-serve gen: --out is required\n";
    return usage(std::cerr);
  }
  aetr::gen::PoissonSource source{rate_hz,
                                  static_cast<std::uint16_t>(addr_range),
                                  seed};
  const aetr::aer::EventStream stream =
      aetr::gen::take(source, static_cast<std::size_t>(events));
  if (ends_with(out, ".aedat")) {
    aetr::aer::save_aedat(out, stream);
  } else {
    aetr::aer::save_trace(out, stream);
  }
  std::cout << "aetr-serve: wrote " << stream.size() << " events to " << out
            << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// run

struct RunArgs {
  std::string in;
  std::string config;
  std::string out_dir;
  std::string snapshot;
  std::string stats_json;
  double snapshot_interval_sec = -1.0;  // <0: take from the scenario config
  bool resume = false;
  bool keep_history = true;
  std::uint64_t pace_us = 0;
  std::uint64_t pace_every = 1000;
};

/// Incremental reader over the aer trace line format, so a FIFO or stdin
/// pipe is consumed event-by-event instead of being materialised first.
/// (.aedat input is a binary file format and is loaded whole.)
class TraceFeed {
 public:
  explicit TraceFeed(std::istream& is) : is_{is} {}

  std::optional<aetr::aer::Event> next() {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      std::istringstream ls{line};
      aetr::Time::Rep t_ps = 0;
      unsigned address = 0;
      if (!(ls >> t_ps >> address) || address > aetr::aer::kAddressMask) {
        throw std::runtime_error("aetr-serve: malformed trace line " +
                                 std::to_string(line_no_) + ": " + line);
      }
      return aetr::aer::Event{static_cast<std::uint16_t>(address),
                              aetr::Time::ps(t_ps)};
    }
    return std::nullopt;
  }

 private:
  std::istream& is_;
  std::size_t line_no_{0};
};

long max_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;
}

int cmd_run(const RunArgs& args) {
  aetr::core::ScenarioConfig scenario;
  if (!args.config.empty()) {
    scenario = aetr::core::load_scenario_file(args.config);
  }
  const double interval_sec = args.snapshot_interval_sec >= 0.0
                                  ? args.snapshot_interval_sec
                                  : scenario.session.snapshot_interval_sec;
  const bool snapshotting = !args.snapshot.empty() && interval_sec > 0.0;
  const aetr::Time interval =
      snapshotting ? aetr::Time::sec(interval_sec) : aetr::Time::zero();

  aetr::core::Session session{scenario};
  if (!args.keep_history) session.set_keep_history(false);

  const auto t0 = std::chrono::steady_clock::now();
  double restore_sec = 0.0;
  std::uint64_t to_skip = 0;
  if (args.resume) {
    const auto blob = aetr::net::read_blob(args.snapshot);
    const auto r0 = std::chrono::steady_clock::now();
    session.restore(blob);
    restore_sec = wall_sec(r0);
    // Everything the snapshot already consumed (submitted or still in the
    // session's buffer) replays from the blob, not from the stream.
    to_skip = session.events_fed();
    std::cerr << "aetr-serve: resumed at " << session.position().count_ps()
              << " ps, skipping " << to_skip << " already-fed events\n";
  }

  // Snapshot cadence on the *simulated* clock, anchored at multiples of
  // the interval from zero so the schedule is a pure function of the
  // stream, not of wall time or of where a previous run was killed.
  aetr::Time next_snapshot = aetr::Time::zero();
  if (snapshotting) {
    while (next_snapshot <= session.position()) next_snapshot += interval;
  }

  std::uint64_t ingested = 0;
  std::uint64_t snapshots = 0;
  double snapshot_sec = 0.0;
  bool drained_by_signal = false;

  const auto pump = [&](const aetr::aer::Event& ev) -> bool {
    if (to_skip > 0) {
      --to_skip;
      return g_stop == 0;
    }
    while (!session.feed(ev)) {
      // Backpressure: the buffer is full of events at or before ev.time,
      // so advancing to the stream position drains all of it.
      session.advance_to(ev.time);
    }
    ++ingested;
    if (snapshotting && ev.time >= next_snapshot) {
      session.advance_to(next_snapshot);
      const auto s0 = std::chrono::steady_clock::now();
      aetr::net::write_blob_atomic(args.snapshot, session.snapshot());
      snapshot_sec += wall_sec(s0);
      ++snapshots;
      while (next_snapshot <= ev.time) next_snapshot += interval;
    }
    if (args.pace_us > 0 && ingested % args.pace_every == 0) {
      usleep(static_cast<useconds_t>(args.pace_us));
    }
    return g_stop == 0;
  };

  if (args.in != "-" && ends_with(args.in, ".aedat")) {
    const aetr::aer::EventStream stream = aetr::aer::load_aedat(args.in);
    for (const auto& ev : stream) {
      if (!pump(ev)) {
        drained_by_signal = true;
        break;
      }
    }
  } else if (args.in == "-") {
    TraceFeed feed{std::cin};
    while (auto ev = feed.next()) {
      if (!pump(*ev)) {
        drained_by_signal = true;
        break;
      }
    }
  } else {
    std::ifstream f{args.in};
    if (!f) throw std::runtime_error("aetr-serve: cannot open " + args.in);
    TraceFeed feed{f};
    while (auto ev = feed.next()) {
      if (!pump(*ev)) {
        drained_by_signal = true;
        break;
      }
    }
  }
  const double ingest_sec = wall_sec(t0);

  // Graceful drain: end-of-stream and SIGTERM land in the same place —
  // run the buffered remainder to completion and write the summary.
  const aetr::core::RunResult result = session.finish();
  const std::string out_dir = aetr::util::artifact_dir(
      args.out_dir.empty() ? "results/serve" : args.out_dir);
  aetr::core::write_run_summary_file(out_dir + "/summary.txt", result);

  if (!args.stats_json.empty()) {
    std::ofstream js{args.stats_json, std::ios::trunc};
    if (!js) {
      throw std::runtime_error("aetr-serve: cannot open " + args.stats_json);
    }
    js << "{\n"
       << "  \"ingested_events\": " << ingested << ",\n"
       << "  \"ingest_sec\": " << ingest_sec << ",\n"
       << "  \"events_per_sec\": "
       << (ingest_sec > 0.0 ? static_cast<double>(ingested) / ingest_sec
                            : 0.0)
       << ",\n"
       << "  \"snapshots\": " << snapshots << ",\n"
       << "  \"snapshot_sec_total\": " << snapshot_sec << ",\n"
       << "  \"snapshot_sec_mean\": "
       << (snapshots > 0 ? snapshot_sec / static_cast<double>(snapshots)
                         : 0.0)
       << ",\n"
       << "  \"restore_sec\": " << restore_sec << ",\n"
       << "  \"max_rss_kb\": " << max_rss_kb() << ",\n"
       << "  \"drained_by_signal\": " << (drained_by_signal ? "true" : "false")
       << "\n}\n";
  }

  std::cout << "aetr-serve: " << (drained_by_signal ? "drained" : "completed")
            << " after " << ingested << " events, " << snapshots
            << " snapshots; summary in " << out_dir << "/summary.txt\n";
  return 0;
}

// ---------------------------------------------------------------------------
// listen

aetr::net::Server* g_server = nullptr;

void on_listen_signal(int) {
  // atomic store + pipe write: both async-signal-safe.
  if (g_server != nullptr) g_server->request_stop();
}

aetr::aer::EventStream load_stream(const std::string& path) {
  return ends_with(path, ".aedat") ? aetr::aer::load_aedat(path)
                                   : aetr::aer::load_trace(path);
}

int cmd_listen(int argc, char** argv) {
  aetr::net::ServerOptions options;
  std::string config;
  std::string port_file;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    std::uint64_t u = 0;
    if (a == "--uds" && has_next) {
      options.uds_path = argv[++i];
    } else if (a == "--tcp") {
      options.tcp = true;
    } else if (a == "--port" && has_next) {
      if (!parse_u64(argv[++i], u) || u > 65535) return usage(std::cerr);
      options.tcp = true;
      options.tcp_port = static_cast<int>(u);
    } else if (a == "--port-file" && has_next) {
      port_file = argv[++i];
    } else if (a == "--config" && has_next) {
      config = argv[++i];
    } else if (a == "--out-dir" && has_next) {
      options.gateway.out_dir = argv[++i];
    } else if (a == "--snapshot-dir" && has_next) {
      options.gateway.snapshot_dir = argv[++i];
    } else if (a == "--snapshot-interval-sec" && has_next) {
      if (!parse_f64(argv[++i], options.gateway.snapshot_interval_sec) ||
          options.gateway.snapshot_interval_sec < 0.0) {
        return usage(std::cerr);
      }
    } else if (a == "--resume") {
      options.gateway.resume = true;
    } else if (a == "--no-history") {
      options.gateway.keep_history = false;
    } else if (a == "--credit-window" && has_next) {
      if (!parse_u64(argv[++i], options.gateway.credit_window) ||
          options.gateway.credit_window == 0) {
        return usage(std::cerr);
      }
    } else if (a == "--max-sessions" && has_next) {
      if (!parse_u64(argv[++i], u) || u == 0) return usage(std::cerr);
      options.max_connections = static_cast<std::size_t>(u);
    } else if (a == "--exit-after-sessions" && has_next) {
      if (!parse_u64(argv[++i], u)) return usage(std::cerr);
      options.exit_after_sessions = static_cast<std::size_t>(u);
    } else {
      std::cerr << "aetr-serve listen: unknown argument " << a << '\n';
      return usage(std::cerr);
    }
  }
  if (!options.tcp && options.uds_path.empty()) {
    std::cerr << "aetr-serve listen: need --uds and/or --tcp\n";
    return usage(std::cerr);
  }
  if (!config.empty()) {
    options.gateway.default_scenario = aetr::core::load_scenario_file(config);
  }
  if (!options.gateway.out_dir.empty()) {
    options.gateway.out_dir =
        aetr::util::artifact_dir(options.gateway.out_dir);
  }
  if (!options.gateway.snapshot_dir.empty()) {
    options.gateway.snapshot_dir =
        aetr::util::artifact_dir(options.gateway.snapshot_dir);
  }

  aetr::net::Server server{std::move(options)};
  if (!port_file.empty()) {
    std::ofstream pf{port_file, std::ios::trunc};
    pf << server.tcp_port() << '\n';
    if (!pf) {
      std::cerr << "aetr-serve listen: cannot write " << port_file << '\n';
      return 3;
    }
  }
  g_server = &server;
  std::signal(SIGTERM, on_listen_signal);
  std::signal(SIGINT, on_listen_signal);
  std::cerr << "aetr-serve: listening"
            << (server.tcp_port() != 0
                    ? " tcp 127.0.0.1:" + std::to_string(server.tcp_port())
                    : std::string{})
            << '\n';
  server.run();
  g_server = nullptr;
  std::cout << "aetr-serve: gateway drained after "
            << server.sessions_completed() << " sessions\n";
  return 0;
}

// ---------------------------------------------------------------------------
// send

int cmd_send(int argc, char** argv) {
  std::string in;
  std::string name;
  std::string uds;
  std::string host = "127.0.0.1";
  std::string config;
  int port = 0;
  aetr::net::SendOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    std::uint64_t u = 0;
    if (a == "--in" && has_next) {
      in = argv[++i];
    } else if (a == "--name" && has_next) {
      name = argv[++i];
    } else if (a == "--uds" && has_next) {
      uds = argv[++i];
    } else if (a == "--host" && has_next) {
      host = argv[++i];
    } else if (a == "--port" && has_next) {
      if (!parse_u64(argv[++i], u) || u == 0 || u > 65535) {
        return usage(std::cerr);
      }
      port = static_cast<int>(u);
    } else if (a == "--config" && has_next) {
      config = argv[++i];
    } else if (a == "--chunk" && has_next) {
      if (!parse_u64(argv[++i], u) || u == 0) return usage(std::cerr);
      options.chunk = static_cast<std::size_t>(u);
    } else if (a == "--pace-us" && has_next) {
      if (!parse_u64(argv[++i], options.pace_us)) return usage(std::cerr);
    } else if (a == "--pace-every" && has_next) {
      if (!parse_u64(argv[++i], options.pace_every) ||
          options.pace_every == 0) {
        return usage(std::cerr);
      }
    } else if (a == "--snapshot-every" && has_next) {
      if (!parse_u64(argv[++i], options.snapshot_every)) {
        return usage(std::cerr);
      }
    } else {
      std::cerr << "aetr-serve send: unknown argument " << a << '\n';
      return usage(std::cerr);
    }
  }
  if (in.empty() || name.empty() || (uds.empty() && port == 0)) {
    std::cerr << "aetr-serve send: need --in, --name and a destination\n";
    return usage(std::cerr);
  }
  std::string config_text;
  if (!config.empty()) {
    config_text =
        aetr::core::dump_scenario(aetr::core::load_scenario_file(config));
  }
  const aetr::aer::EventStream stream = load_stream(in);

  aetr::net::Client client = uds.empty()
                                 ? aetr::net::Client::connect_tcp(host, port)
                                 : aetr::net::Client::connect_uds(uds);
  const aetr::net::HelloAck ack = client.hello(name, config_text);
  const auto skip =
      std::min(static_cast<std::size_t>(ack.events_fed), stream.size());
  if (skip > 0) {
    std::cerr << "aetr-serve send: session already consumed " << skip
              << " events, skipping\n";
  }
  const std::uint64_t sent = client.send_events(stream, skip, options);
  const std::string summary = client.drain();
  std::cerr << "aetr-serve send: streamed " << sent << " events\n";
  std::cout << summary;
  return 0;
}

// ---------------------------------------------------------------------------
// bridge

int cmd_bridge(int argc, char** argv) {
  std::string uds;
  std::string host = "127.0.0.1";
  std::string fleet_file;
  std::string out_dir;
  int port = 0;
  bool have_nodes = false;
  bool have_events = false;
  std::uint64_t nodes = 0;
  std::uint64_t events_per_node = 0;
  aetr::net::BridgeOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    std::uint64_t u = 0;
    if (a == "--uds" && has_next) {
      uds = argv[++i];
    } else if (a == "--host" && has_next) {
      host = argv[++i];
    } else if (a == "--port" && has_next) {
      if (!parse_u64(argv[++i], u) || u == 0 || u > 65535) {
        return usage(std::cerr);
      }
      port = static_cast<int>(u);
    } else if (a == "--fleet" && has_next) {
      fleet_file = argv[++i];
    } else if (a == "--nodes" && has_next) {
      if (!parse_u64(argv[++i], nodes) || nodes == 0) return usage(std::cerr);
      have_nodes = true;
    } else if (a == "--events-per-node" && has_next) {
      if (!parse_u64(argv[++i], events_per_node) || events_per_node == 0) {
        return usage(std::cerr);
      }
      have_events = true;
    } else if (a == "--concurrency" && has_next) {
      if (!parse_u64(argv[++i], u) || u == 0) return usage(std::cerr);
      options.concurrency = static_cast<std::size_t>(u);
    } else if (a == "--chunk" && has_next) {
      if (!parse_u64(argv[++i], u) || u == 0) return usage(std::cerr);
      options.chunk = static_cast<std::size_t>(u);
    } else if (a == "--out-dir" && has_next) {
      out_dir = argv[++i];
    } else {
      std::cerr << "aetr-serve bridge: unknown argument " << a << '\n';
      return usage(std::cerr);
    }
  }
  if (uds.empty() && port == 0) {
    std::cerr << "aetr-serve bridge: need --uds or --host/--port\n";
    return usage(std::cerr);
  }
  aetr::fleet::FleetConfig fleet;
  if (!fleet_file.empty()) {
    fleet = aetr::fleet::load_fleet_file(fleet_file);
  } else {
    fleet.nodes = 4;
    fleet.events_per_node = 500;
  }
  if (have_nodes) fleet.nodes = static_cast<std::size_t>(nodes);
  if (have_events) {
    fleet.events_per_node = static_cast<std::size_t>(events_per_node);
  }

  aetr::net::BridgeEndpoint endpoint;
  endpoint.uds_path = uds;
  endpoint.tcp_host = host;
  endpoint.tcp_port = port;
  const aetr::net::BridgeResult result =
      aetr::net::run_fleet_bridge(fleet, endpoint, options);

  if (!out_dir.empty()) {
    const std::string dir = aetr::util::artifact_dir(out_dir);
    for (std::size_t i = 0; i < result.summaries.size(); ++i) {
      const std::string path =
          dir + "/summary-" + options.name_prefix + std::to_string(i) + ".txt";
      std::ofstream os{path, std::ios::trunc};
      if (!os) throw std::runtime_error("aetr-serve: cannot open " + path);
      os << result.summaries[i];
    }
  }
  std::cout << "aetr-serve bridge: " << result.sessions << " sessions, "
            << result.events_streamed << " events streamed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(std::cout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  try {
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "listen") return cmd_listen(argc - 2, argv + 2);
    if (cmd == "send") return cmd_send(argc - 2, argv + 2);
    if (cmd == "bridge") return cmd_bridge(argc - 2, argv + 2);
    if (cmd == "run") {
      RunArgs args;
      for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        const bool has_next = i + 1 < argc;
        if (a == "--in" && has_next) {
          args.in = argv[++i];
        } else if (a == "--config" && has_next) {
          args.config = argv[++i];
        } else if (a == "--out-dir" && has_next) {
          args.out_dir = argv[++i];
        } else if (a == "--snapshot" && has_next) {
          args.snapshot = argv[++i];
        } else if (a == "--snapshot-interval-sec" && has_next) {
          if (!parse_f64(argv[++i], args.snapshot_interval_sec) ||
              args.snapshot_interval_sec < 0.0) {
            return usage(std::cerr);
          }
        } else if (a == "--stats-json" && has_next) {
          args.stats_json = argv[++i];
        } else if (a == "--resume") {
          args.resume = true;
        } else if (a == "--no-history") {
          args.keep_history = false;
        } else if (a == "--pace-us" && has_next) {
          if (!parse_u64(argv[++i], args.pace_us)) return usage(std::cerr);
        } else if (a == "--pace-every" && has_next) {
          if (!parse_u64(argv[++i], args.pace_every) || args.pace_every == 0) {
            return usage(std::cerr);
          }
        } else {
          std::cerr << "aetr-serve run: unknown argument " << a << '\n';
          return usage(std::cerr);
        }
      }
      if (args.in.empty()) {
        std::cerr << "aetr-serve run: --in is required\n";
        return usage(std::cerr);
      }
      if (args.resume && args.snapshot.empty()) {
        std::cerr << "aetr-serve run: --resume requires --snapshot\n";
        return usage(std::cerr);
      }
      return cmd_run(args);
    }
  } catch (const std::exception& e) {
    std::cerr << "aetr-serve: " << e.what() << '\n';
    return 3;
  }
  std::cerr << "aetr-serve: unknown command " << cmd << '\n';
  return usage(std::cerr);
}
