// aetr-serve — service-mode harness over the incremental core::Session.
//
//   aetr-serve gen --out FILE [--events N] [--rate-hz R] [--seed S]
//              [--addr-range A]
//       Generate a deterministic Poisson stream: AEDAT 2.0 when FILE ends
//       in .aedat, the line-oriented aer trace format otherwise.
//
//   aetr-serve run --in FILE|- [--config FILE] [--out-dir DIR]
//              [--snapshot FILE] [--snapshot-interval-sec S] [--resume]
//              [--no-history] [--pace-us N] [--pace-every N]
//              [--stats-json FILE]
//       Ingest a stream — an .aedat file, a trace file, a FIFO, or stdin
//       ('-') — through a core::Session: feed each event as it arrives,
//       advance simulated time under backpressure, checkpoint the full
//       simulator state to --snapshot every session.snapshot_interval_sec
//       of *simulated* time (atomically: tmp + rename, so a kill never
//       leaves a torn blob), and on end-of-stream or SIGTERM/SIGINT drain
//       gracefully: finish() the session and write the run summary.
//
//       With --resume the session first restores the last snapshot and
//       skips the events it already consumed, continuing byte-identically
//       to a run that was never interrupted — the CI serve-determinism job
//       SIGKILLs a paced run mid-stream and diffs the resumed summary
//       against an uninterrupted one.
//
//       summary.txt under --out-dir holds only deterministic counters (no
//       wall-clock data), so `diff -r` across runs is meaningful.
//       --stats-json lands wall-clock ingest/snapshot timings and peak RSS
//       outside the out-dir for the BENCH_serve.json report.
//
// Exit codes: 0 = completed (including a graceful signal drain), 2 = usage
// error, 3 = runtime failure.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "aer/aedat.hpp"
#include "aer/event.hpp"
#include "aer/trace.hpp"
#include "core/config_io.hpp"
#include "core/session.hpp"
#include "gen/sources.hpp"
#include "util/artifacts.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(std::ostream& os) {
  os << "usage:\n"
        "  aetr-serve gen --out FILE [--events N] [--rate-hz R] [--seed S]"
        " [--addr-range A]\n"
        "  aetr-serve run --in FILE|- [--config FILE] [--out-dir DIR]\n"
        "             [--snapshot FILE] [--snapshot-interval-sec S]"
        " [--resume]\n"
        "             [--no-history] [--pace-us N] [--pace-every N]"
        " [--stats-json FILE]\n";
  return &os == &std::cerr ? 2 : 0;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end) return false;
  out = v;
  return true;
}

bool parse_f64(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end) return false;
  out = v;
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

double wall_sec(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

// ---------------------------------------------------------------------------
// gen

int cmd_gen(int argc, char** argv) {
  std::string out;
  std::uint64_t events = 100000;
  std::uint64_t seed = 1;
  std::uint64_t addr_range = 256;
  double rate_hz = 50e3;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--out" && has_next) {
      out = argv[++i];
    } else if (a == "--events" && has_next) {
      if (!parse_u64(argv[++i], events)) return usage(std::cerr);
    } else if (a == "--seed" && has_next) {
      if (!parse_u64(argv[++i], seed)) return usage(std::cerr);
    } else if (a == "--addr-range" && has_next) {
      if (!parse_u64(argv[++i], addr_range) || addr_range == 0 ||
          addr_range > 0xffff) {
        return usage(std::cerr);
      }
    } else if (a == "--rate-hz" && has_next) {
      if (!parse_f64(argv[++i], rate_hz) || rate_hz <= 0.0) {
        return usage(std::cerr);
      }
    } else {
      std::cerr << "aetr-serve gen: unknown argument " << a << '\n';
      return usage(std::cerr);
    }
  }
  if (out.empty()) {
    std::cerr << "aetr-serve gen: --out is required\n";
    return usage(std::cerr);
  }
  aetr::gen::PoissonSource source{rate_hz,
                                  static_cast<std::uint16_t>(addr_range),
                                  seed};
  const aetr::aer::EventStream stream =
      aetr::gen::take(source, static_cast<std::size_t>(events));
  if (ends_with(out, ".aedat")) {
    aetr::aer::save_aedat(out, stream);
  } else {
    aetr::aer::save_trace(out, stream);
  }
  std::cout << "aetr-serve: wrote " << stream.size() << " events to " << out
            << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// run

struct RunArgs {
  std::string in;
  std::string config;
  std::string out_dir;
  std::string snapshot;
  std::string stats_json;
  double snapshot_interval_sec = -1.0;  // <0: take from the scenario config
  bool resume = false;
  bool keep_history = true;
  std::uint64_t pace_us = 0;
  std::uint64_t pace_every = 1000;
};

/// Incremental reader over the aer trace line format, so a FIFO or stdin
/// pipe is consumed event-by-event instead of being materialised first.
/// (.aedat input is a binary file format and is loaded whole.)
class TraceFeed {
 public:
  explicit TraceFeed(std::istream& is) : is_{is} {}

  std::optional<aetr::aer::Event> next() {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      std::istringstream ls{line};
      aetr::Time::Rep t_ps = 0;
      unsigned address = 0;
      if (!(ls >> t_ps >> address) || address > aetr::aer::kAddressMask) {
        throw std::runtime_error("aetr-serve: malformed trace line " +
                                 std::to_string(line_no_) + ": " + line);
      }
      return aetr::aer::Event{static_cast<std::uint16_t>(address),
                              aetr::Time::ps(t_ps)};
    }
    return std::nullopt;
  }

 private:
  std::istream& is_;
  std::size_t line_no_{0};
};

void write_snapshot_atomic(const std::string& path,
                           const std::vector<std::uint8_t>& blob) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f{tmp, std::ios::binary | std::ios::trunc};
    if (!f) throw std::runtime_error("aetr-serve: cannot open " + tmp);
    f.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    if (!f) throw std::runtime_error("aetr-serve: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("aetr-serve: cannot rename " + tmp + " to " +
                             path);
  }
}

std::vector<std::uint8_t> read_snapshot(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  if (!f) throw std::runtime_error("aetr-serve: cannot open " + path);
  std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>(f),
                                 std::istreambuf_iterator<char>()};
  return blob;
}

/// Deterministic run summary: counters only, no wall-clock data, so the CI
/// kill/resume job can `diff` it against an uninterrupted run's.
void write_summary(const std::string& path, const aetr::core::RunResult& r) {
  std::ofstream os{path, std::ios::trunc};
  if (!os) throw std::runtime_error("aetr-serve: cannot open " + path);
  char buf[64];
  const auto f64 = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string{buf};
  };
  os << "# aetr-serve run summary\n";
  os << "events_in = " << r.events_in << '\n';
  os << "words_out = " << r.words_out << '\n';
  os << "batches = " << r.batches << '\n';
  os << "fifo_overflows = " << r.fifo_overflows << '\n';
  os << "handshakes = " << r.handshakes << '\n';
  os << "caviar_violations = " << r.caviar_violations << '\n';
  os << "protocol_violations = " << r.protocol_violations << '\n';
  os << "decoded = " << r.decoded.size() << '\n';
  os << "error.events = " << r.error.events << '\n';
  os << "error.saturated = " << r.error.saturated << '\n';
  os << "error.mean_rel = " << f64(r.error.mean_rel_error()) << '\n';
  os << "faults.injected_total = " << r.faults.injected_total() << '\n';
  os << "faults.recovered_total = " << r.faults.recovered_total() << '\n';
  os << "faults.watchdog_resyncs = " << r.faults.watchdog_resyncs << '\n';
  os << "faults.crc_rejected_words = " << r.faults.crc_rejected_words << '\n';
  os << "sim_end_ps = " << r.sim_end.count_ps() << '\n';
  os << "input_rate_hz = " << f64(r.input_rate_hz) << '\n';
  os << "average_power_w = " << f64(r.average_power_w) << '\n';
  if (!os) throw std::runtime_error("aetr-serve: write failed for " + path);
}

long max_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;
}

int cmd_run(const RunArgs& args) {
  aetr::core::ScenarioConfig scenario;
  if (!args.config.empty()) {
    scenario = aetr::core::load_scenario_file(args.config);
  }
  const double interval_sec = args.snapshot_interval_sec >= 0.0
                                  ? args.snapshot_interval_sec
                                  : scenario.session.snapshot_interval_sec;
  const bool snapshotting = !args.snapshot.empty() && interval_sec > 0.0;
  const aetr::Time interval =
      snapshotting ? aetr::Time::sec(interval_sec) : aetr::Time::zero();

  aetr::core::Session session{scenario};
  if (!args.keep_history) session.set_keep_history(false);

  const auto t0 = std::chrono::steady_clock::now();
  double restore_sec = 0.0;
  std::uint64_t to_skip = 0;
  if (args.resume) {
    const auto blob = read_snapshot(args.snapshot);
    const auto r0 = std::chrono::steady_clock::now();
    session.restore(blob);
    restore_sec = wall_sec(r0);
    // Everything the snapshot already consumed (submitted or still in the
    // session's buffer) replays from the blob, not from the stream.
    to_skip = session.events_fed();
    std::cerr << "aetr-serve: resumed at " << session.position().count_ps()
              << " ps, skipping " << to_skip << " already-fed events\n";
  }

  // Snapshot cadence on the *simulated* clock, anchored at multiples of
  // the interval from zero so the schedule is a pure function of the
  // stream, not of wall time or of where a previous run was killed.
  aetr::Time next_snapshot = aetr::Time::zero();
  if (snapshotting) {
    while (next_snapshot <= session.position()) next_snapshot += interval;
  }

  std::uint64_t ingested = 0;
  std::uint64_t snapshots = 0;
  double snapshot_sec = 0.0;
  bool drained_by_signal = false;

  const auto pump = [&](const aetr::aer::Event& ev) -> bool {
    if (to_skip > 0) {
      --to_skip;
      return g_stop == 0;
    }
    while (!session.feed(ev)) {
      // Backpressure: the buffer is full of events at or before ev.time,
      // so advancing to the stream position drains all of it.
      session.advance_to(ev.time);
    }
    ++ingested;
    if (snapshotting && ev.time >= next_snapshot) {
      session.advance_to(next_snapshot);
      const auto s0 = std::chrono::steady_clock::now();
      write_snapshot_atomic(args.snapshot, session.snapshot());
      snapshot_sec += wall_sec(s0);
      ++snapshots;
      while (next_snapshot <= ev.time) next_snapshot += interval;
    }
    if (args.pace_us > 0 && ingested % args.pace_every == 0) {
      usleep(static_cast<useconds_t>(args.pace_us));
    }
    return g_stop == 0;
  };

  if (args.in != "-" && ends_with(args.in, ".aedat")) {
    const aetr::aer::EventStream stream = aetr::aer::load_aedat(args.in);
    for (const auto& ev : stream) {
      if (!pump(ev)) {
        drained_by_signal = true;
        break;
      }
    }
  } else if (args.in == "-") {
    TraceFeed feed{std::cin};
    while (auto ev = feed.next()) {
      if (!pump(*ev)) {
        drained_by_signal = true;
        break;
      }
    }
  } else {
    std::ifstream f{args.in};
    if (!f) throw std::runtime_error("aetr-serve: cannot open " + args.in);
    TraceFeed feed{f};
    while (auto ev = feed.next()) {
      if (!pump(*ev)) {
        drained_by_signal = true;
        break;
      }
    }
  }
  const double ingest_sec = wall_sec(t0);

  // Graceful drain: end-of-stream and SIGTERM land in the same place —
  // run the buffered remainder to completion and write the summary.
  const aetr::core::RunResult result = session.finish();
  const std::string out_dir = aetr::util::artifact_dir(
      args.out_dir.empty() ? "results/serve" : args.out_dir);
  write_summary(out_dir + "/summary.txt", result);

  if (!args.stats_json.empty()) {
    std::ofstream js{args.stats_json, std::ios::trunc};
    if (!js) {
      throw std::runtime_error("aetr-serve: cannot open " + args.stats_json);
    }
    js << "{\n"
       << "  \"ingested_events\": " << ingested << ",\n"
       << "  \"ingest_sec\": " << ingest_sec << ",\n"
       << "  \"events_per_sec\": "
       << (ingest_sec > 0.0 ? static_cast<double>(ingested) / ingest_sec
                            : 0.0)
       << ",\n"
       << "  \"snapshots\": " << snapshots << ",\n"
       << "  \"snapshot_sec_total\": " << snapshot_sec << ",\n"
       << "  \"snapshot_sec_mean\": "
       << (snapshots > 0 ? snapshot_sec / static_cast<double>(snapshots)
                         : 0.0)
       << ",\n"
       << "  \"restore_sec\": " << restore_sec << ",\n"
       << "  \"max_rss_kb\": " << max_rss_kb() << ",\n"
       << "  \"drained_by_signal\": " << (drained_by_signal ? "true" : "false")
       << "\n}\n";
  }

  std::cout << "aetr-serve: " << (drained_by_signal ? "drained" : "completed")
            << " after " << ingested << " events, " << snapshots
            << " snapshots; summary in " << out_dir << "/summary.txt\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(std::cout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  try {
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "run") {
      RunArgs args;
      for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        const bool has_next = i + 1 < argc;
        if (a == "--in" && has_next) {
          args.in = argv[++i];
        } else if (a == "--config" && has_next) {
          args.config = argv[++i];
        } else if (a == "--out-dir" && has_next) {
          args.out_dir = argv[++i];
        } else if (a == "--snapshot" && has_next) {
          args.snapshot = argv[++i];
        } else if (a == "--snapshot-interval-sec" && has_next) {
          if (!parse_f64(argv[++i], args.snapshot_interval_sec) ||
              args.snapshot_interval_sec < 0.0) {
            return usage(std::cerr);
          }
        } else if (a == "--stats-json" && has_next) {
          args.stats_json = argv[++i];
        } else if (a == "--resume") {
          args.resume = true;
        } else if (a == "--no-history") {
          args.keep_history = false;
        } else if (a == "--pace-us" && has_next) {
          if (!parse_u64(argv[++i], args.pace_us)) return usage(std::cerr);
        } else if (a == "--pace-every" && has_next) {
          if (!parse_u64(argv[++i], args.pace_every) || args.pace_every == 0) {
            return usage(std::cerr);
          }
        } else {
          std::cerr << "aetr-serve run: unknown argument " << a << '\n';
          return usage(std::cerr);
        }
      }
      if (args.in.empty()) {
        std::cerr << "aetr-serve run: --in is required\n";
        return usage(std::cerr);
      }
      if (args.resume && args.snapshot.empty()) {
        std::cerr << "aetr-serve run: --resume requires --snapshot\n";
        return usage(std::cerr);
      }
      return cmd_run(args);
    }
  } catch (const std::exception& e) {
    std::cerr << "aetr-serve: " << e.what() << '\n';
    return 3;
  }
  std::cerr << "aetr-serve: unknown command " << cmd << '\n';
  return usage(std::cerr);
}
