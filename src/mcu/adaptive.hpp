// Closed-loop theta_div adaptation (an extension the paper's "two knobs"
// discussion invites but never builds).
//
// The right theta_div/N_div depend on the spike rate: accuracy wants large
// theta at high rates, power wants small theta and early shutdown at low
// rates. Since the interface exposes both knobs over SPI, a sleeping MCU
// can retune them from its own decoded-rate estimate. This controller
// implements that loop with hysteresis: a table of rate bands, each with a
// (theta_div, n_div) policy, applied only when the estimate leaves the
// current band by a margin — avoiding reconfiguration churn (each
// reconfigure restarts the division schedule).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace aetr::mcu {

/// One rate band and the knob settings to use inside it.
struct RatePolicy {
  double min_rate_hz{0.0};  ///< band lower edge (bands sorted ascending)
  std::uint32_t theta_div{64};
  std::uint32_t n_div{8};
};

/// Controller parameters.
struct AdaptiveConfig {
  /// Default policy table: sparse -> aggressive power, dense -> accuracy.
  std::vector<RatePolicy> policies{
      {0.0, 16, 6},      // near-silence: divide fast, sleep early
      {1e3, 32, 8},      // low activity
      {20e3, 64, 8},     // speech-band activity: the paper's default
      {300e3, 128, 8},   // dense bursts: hold accuracy near Nyquist
  };
  double hysteresis = 0.2;   ///< fractional band-edge margin
  Time estimator_tau = Time::ms(20.0);
  Time min_dwell = Time::ms(10.0);  ///< no retune sooner than this
  /// Interface base sampling period, needed to turn the current policy's
  /// (theta, N) into its maximum measurable interval T_max.
  Time tmin = Time::ns(1e3 / 15.0);
};

/// Rate-driven knob controller. Feed it decoded event times; it invokes
/// the apply callback (which writes the SPI registers) on band changes.
class AdaptiveController {
 public:
  /// Apply callback: (theta_div, n_div).
  using ApplyFn = std::function<void(std::uint32_t, std::uint32_t)>;

  explicit AdaptiveController(AdaptiveConfig config = {});

  void on_apply(ApplyFn fn) { apply_ = std::move(fn); }

  /// Feed one decoded event (reconstructed time); may trigger a retune.
  /// Pass `saturated` for events tagged with the saturated timestamp: their
  /// reconstructed delta is only a lower bound (exactly T_max), so counting
  /// them as arrivals would bias the estimate to ~1/T_max during silence
  /// and make the controller oscillate between bands — they decay the
  /// estimate instead.
  void observe(Time event_time, bool saturated = false);

  [[nodiscard]] std::size_t current_band() const { return band_; }
  [[nodiscard]] const RatePolicy& current_policy() const {
    return cfg_.policies[band_];
  }
  [[nodiscard]] std::uint64_t retunes() const { return retunes_; }
  [[nodiscard]] double rate_estimate_hz(Time now) const;

 private:
  [[nodiscard]] std::size_t band_for(double rate_hz) const;
  void maybe_retune(Time now);

  AdaptiveConfig cfg_;
  ApplyFn apply_;
  std::size_t band_{0};
  std::uint64_t retunes_{0};
  Time last_retune_{Time::ps(-1)};
  // Exponential rate estimator state (same maths as RateEstimator, inlined
  // so the controller owns its observation window).
  double level_{0.0};
  Time last_event_{Time::zero()};
  bool primed_{false};
};

}  // namespace aetr::mcu
