// MCU-side power model (STM32-L476-class numbers).
//
// The paper's §3 motivation for AETR batching: "making the time domain
// information explicit could enable storing and accumulating events so that
// they can be processed in batch, allowing more efficient usage of the
// downstream computing device... the actual achievable energy saving
// depends on two main factors: i) the ratio between the input and output
// bitrate; ii) the buffer size." This model quantifies that saving: the
// MCU pays a wake transition plus active time per batch, Stop-mode power in
// between — against an always-on alternative that must busy-poll the
// asynchronous input.
//
// Default coefficients follow the STM32L476 datasheet orders of magnitude:
// ~100 uA/MHz Run (8 mW at 80 MHz), ~1.1 uA Stop 2 with RTC (~3.6 uW),
// ~10 us wakeup.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace aetr::mcu {

/// MCU energy coefficients.
struct McuPowerCalibration {
  double run_w = 8e-3;            ///< active (Run mode, 80 MHz)
  double stop_w = 3.6e-6;         ///< Stop 2 with SRAM retention
  double wake_j = 0.2e-6;         ///< Stop -> Run transition energy
  Time wake_time = Time::us(10.0);
  /// Cycles the firmware spends per received AETR word (I2S DMA + decode
  /// + accumulate), at the Run-mode clock.
  double cycles_per_word = 200.0;
  double run_clock_hz = 80e6;
};

/// Batch-processing statistics for one workload window.
struct McuDuty {
  Time window{Time::zero()};
  std::uint64_t words{0};
  std::uint64_t batches{0};
};

/// Energy/power of the batch-driven MCU over the window.
struct McuEnergy {
  double active_sec{0.0};
  double energy_j{0.0};
  double average_power_w{0.0};
  double duty{0.0};  ///< active fraction
};

/// Batch-mode MCU: wakes per batch, decodes the words, returns to Stop.
[[nodiscard]] McuEnergy batch_mcu_energy(const McuDuty& duty,
                                         const McuPowerCalibration& cal = {});

/// Always-on alternative: the MCU must stay in Run mode continuously to
/// consume the unbuffered asynchronous stream in real time (the paper's
/// "forcing it to remain always-on and active to process collected events
/// in real time").
[[nodiscard]] McuEnergy always_on_mcu_energy(const McuDuty& duty,
                                             const McuPowerCalibration& cal = {});

}  // namespace aetr::mcu
