// MCU-side consumer model (the STM32-L476 of paper Fig. 3).
//
// The whole point of AETR is that the stream is latency-insensitive: the
// MCU can sleep while the interface accumulates a batch, then decode the
// batch at leisure. This module reconstructs absolute event times from the
// delta timestamps, estimates instantaneous event rate, and accumulates the
// time-frequency representation that the "time-to-information" pipeline is
// after.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aer/event.hpp"
#include "fault/injector.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace aetr {
class BlobWriter;
class BlobReader;
}  // namespace aetr

namespace aetr::mcu {

/// Turns a sequence of AETR words back into absolute event times.
///
/// `tick_unit` is the Tmin the interface counted in; `saturation_span` is
/// the interface's maximum measurable interval (clock-off threshold): a
/// saturated word only says "at least this much time passed", so the
/// decoder advances by exactly that span and flags the event.
class AetrDecoder {
 public:
  AetrDecoder(Time tick_unit, Time saturation_span);

  /// Decode the next word of the stream.
  aer::TimedEvent decode(aer::AetrWord word);

  /// Restart reconstruction from the given absolute origin.
  void reset(Time origin = Time::zero());

  [[nodiscard]] Time clock() const { return clock_; }
  [[nodiscard]] std::uint64_t decoded() const { return decoded_; }
  [[nodiscard]] std::uint64_t saturated() const { return saturated_; }

  /// Raw accumulator state, for snapshot/restore.
  struct State {
    Time clock;
    std::uint64_t decoded;
    std::uint64_t saturated;
  };
  [[nodiscard]] State state() const { return {clock_, decoded_, saturated_}; }
  void set_state(const State& s) {
    clock_ = s.clock;
    decoded_ = s.decoded;
    saturated_ = s.saturated;
  }

 private:
  Time tick_unit_;
  Time saturation_span_;
  Time clock_{Time::zero()};
  std::uint64_t decoded_{0};
  std::uint64_t saturated_{0};
};

/// Exponentially windowed instantaneous-rate estimator over event times.
class RateEstimator {
 public:
  explicit RateEstimator(Time tau = Time::ms(10.0));

  void add(Time t);

  /// Current estimate in events/second (decayed to `now`).
  [[nodiscard]] double rate_hz(Time now) const;

 private:
  double tau_sec_;
  double level_{0.0};  ///< rate estimate at last event
  Time last_{Time::zero()};
  bool primed_{false};
};

/// Accumulates events into a (group x time-bin) count matrix — the
/// "predistilled time-frequency representation" the paper's introduction
/// describes, rebuilt on the MCU side from the AETR stream.
class TimeFrequencyMap {
 public:
  using GroupFn = std::function<std::size_t(std::uint16_t address)>;

  TimeFrequencyMap(std::size_t groups, Time bin_width, GroupFn group_of);

  void add(const aer::TimedEvent& ev);

  [[nodiscard]] std::size_t groups() const { return groups_; }
  [[nodiscard]] std::size_t bins() const;
  [[nodiscard]] std::uint64_t count(std::size_t group, std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Render as an ASCII cochleagram (rows = groups, top row = last group).
  [[nodiscard]] std::string ascii() const;

 private:
  std::size_t groups_;
  Time bin_width_;
  GroupFn group_of_;
  std::vector<std::vector<std::uint64_t>> counts_;  // [group][bin]
  std::uint64_t total_{0};
};

/// End-to-end consumer: feed it the I2S word stream, read back the decoded
/// events and batch statistics.
class McuConsumer {
 public:
  McuConsumer(Time tick_unit, Time saturation_span,
              Time batch_gap = Time::us(50.0));

  /// Hook for I2sMaster::on_word.
  void on_word(aer::AetrWord word, Time arrival);

  [[nodiscard]] const std::vector<aer::TimedEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const AetrDecoder& decoder() const { return decoder_; }

  /// Words separated by more than `batch_gap` of bus idle time count as
  /// separate batches (the MCU sleeps in between).
  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::uint64_t words() const { return words_; }

  /// Total I2S-bus-active time (the MCU must be awake at least this long).
  [[nodiscard]] Time bus_active() const { return bus_active_; }

  /// Attach run telemetry (the consumer holds no scheduler reference, so
  /// the harness passes the session explicitly). Emits "batch_start"
  /// instants and "decode" instants for saturated words; registers mcu.*
  /// probes.
  void attach_telemetry(telemetry::TelemetrySession* session);

  /// Attach the run's fault injector. When the plan's CRC batch framing is
  /// active (fault::crc_framing_active) the consumer defers decoding: words
  /// accumulate until one matches the running CRC-32 of the accumulated
  /// payload (the frame trailer the I2S master appended), at which point the
  /// whole batch is accepted. A bus-idle gap or end-of-run flushes any
  /// unterminated payload as a rejected batch. Null is inert.
  void attach_faults(fault::FaultInjector* faults);

  /// End-of-run hook: flush (and reject) any CRC-pending payload.
  void finish(Time now);

  /// When false, decoded events are no longer appended to events(); bounds
  /// memory for endless serve-mode streams (disables latency harvesting).
  void set_keep_events(bool keep) { keep_events_ = keep; }

  /// Serialize decoder/batch state (crc_gate_ is reconstructed by
  /// attach_faults at component reconstruction).
  void save_state(BlobWriter& w) const;
  void restore_state(BlobReader& r);

 private:
  void decode_one(aer::AetrWord word, Time arrival);
  void reject_pending(Time now);

  AetrDecoder decoder_;
  Time batch_gap_;
  std::vector<aer::TimedEvent> events_;
  fault::FaultInjector* faults_{nullptr};
  bool crc_gate_{false};
  std::vector<std::uint32_t> pending_;  ///< payload awaiting its CRC trailer
  std::uint32_t running_crc_{0};
  std::uint64_t batches_{0};
  std::uint64_t words_{0};
  Time last_arrival_{Time::zero()};
  Time bus_active_{Time::zero()};
  bool any_{false};
  bool keep_events_{true};
  telemetry::BlockTelemetry tel_;
};

}  // namespace aetr::mcu
