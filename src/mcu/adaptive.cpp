#include "mcu/adaptive.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace aetr::mcu {

AdaptiveController::AdaptiveController(AdaptiveConfig config)
    : cfg_{std::move(config)} {
  if (cfg_.policies.empty()) {
    throw std::invalid_argument("AdaptiveController: empty policy table");
  }
  for (std::size_t i = 1; i < cfg_.policies.size(); ++i) {
    if (cfg_.policies[i].min_rate_hz <= cfg_.policies[i - 1].min_rate_hz) {
      throw std::invalid_argument(
          "AdaptiveController: policy bands must be ascending");
    }
  }
}

double AdaptiveController::rate_estimate_hz(Time now) const {
  if (!primed_) return 0.0;
  const double dt = std::max((now - last_event_).to_sec(), 0.0);
  return level_ * std::exp(-dt / cfg_.estimator_tau.to_sec());
}

std::size_t AdaptiveController::band_for(double rate_hz) const {
  std::size_t band = 0;
  for (std::size_t i = 1; i < cfg_.policies.size(); ++i) {
    if (rate_hz >= cfg_.policies[i].min_rate_hz) band = i;
  }
  return band;
}

void AdaptiveController::observe(Time event_time, bool saturated) {
  const double tau = cfg_.estimator_tau.to_sec();
  if (!primed_) {
    primed_ = true;
    last_event_ = event_time;
    level_ = 0.0;
    return;
  }
  const double dt = std::max((event_time - last_event_).to_sec(), 1e-12);
  level_ = level_ * std::exp(-dt / tau);
  if (!saturated) {
    level_ += 1.0 / tau;
  } else {
    // Saturation proves the true gap was at least the current T_max, so
    // the instantaneous rate is at most 1/T_max. Clamping matters because
    // the *reconstructed* clock compresses saturated gaps to T_max,
    // throttling the plain exponential decay.
    const auto& p = cfg_.policies[band_];
    const double t_max =
        cfg_.tmin.to_sec() * static_cast<double>(p.theta_div) *
        static_cast<double>((std::uint64_t{1} << (p.n_div + 1)) - 1);
    level_ = std::min(level_, 1.0 / t_max);
  }
  last_event_ = event_time;
  maybe_retune(event_time);
}

void AdaptiveController::maybe_retune(Time now) {
  if (last_retune_ >= Time::zero() && now - last_retune_ < cfg_.min_dwell) {
    return;
  }
  const double rate = rate_estimate_hz(now);
  const std::size_t target = band_for(rate);
  if (target == band_) return;

  // Hysteresis: only cross a band edge by the configured margin.
  if (target > band_) {
    const double edge = cfg_.policies[target].min_rate_hz;
    if (rate < edge * (1.0 + cfg_.hysteresis)) return;
  } else {
    const double edge = cfg_.policies[band_].min_rate_hz;
    if (rate > edge * (1.0 - cfg_.hysteresis)) return;
  }

  band_ = target;
  ++retunes_;
  last_retune_ = now;
  if (apply_) {
    apply_(cfg_.policies[band_].theta_div, cfg_.policies[band_].n_div);
  }
}

}  // namespace aetr::mcu
