#include "mcu/consumer.hpp"

#include <algorithm>
#include <cmath>

#include "i2s/framing.hpp"
#include "util/blob.hpp"
#include "util/profiler.hpp"

namespace aetr::mcu {

AetrDecoder::AetrDecoder(Time tick_unit, Time saturation_span)
    : tick_unit_{tick_unit}, saturation_span_{saturation_span} {}

aer::TimedEvent AetrDecoder::decode(aer::AetrWord word) {
  aer::TimedEvent ev;
  ev.address = word.address();
  ev.saturated = word.is_saturated();
  if (ev.saturated) {
    clock_ += saturation_span_;
    ++saturated_;
  } else {
    clock_ += tick_unit_ * static_cast<Time::Rep>(word.timestamp_ticks());
  }
  ev.reconstructed_time = clock_;
  ++decoded_;
  return ev;
}

void AetrDecoder::reset(Time origin) {
  clock_ = origin;
  decoded_ = 0;
  saturated_ = 0;
}

RateEstimator::RateEstimator(Time tau) : tau_sec_{tau.to_sec()} {}

void RateEstimator::add(Time t) {
  if (!primed_) {
    primed_ = true;
    last_ = t;
    level_ = 0.0;
    return;
  }
  const double dt = std::max((t - last_).to_sec(), 1e-12);
  // Decay the previous estimate over dt, then add this event's contribution
  // (an exponential kernel of area 1 and time constant tau).
  level_ = level_ * std::exp(-dt / tau_sec_) + 1.0 / tau_sec_;
  last_ = t;
}

double RateEstimator::rate_hz(Time now) const {
  if (!primed_) return 0.0;
  const double dt = std::max((now - last_).to_sec(), 0.0);
  return level_ * std::exp(-dt / tau_sec_);
}

TimeFrequencyMap::TimeFrequencyMap(std::size_t groups, Time bin_width,
                                   GroupFn group_of)
    : groups_{groups},
      bin_width_{bin_width},
      group_of_{std::move(group_of)},
      counts_(groups) {}

void TimeFrequencyMap::add(const aer::TimedEvent& ev) {
  const std::size_t g = group_of_(ev.address);
  if (g >= groups_) return;
  const auto bin = static_cast<std::size_t>(
      ev.reconstructed_time.count_ps() / bin_width_.count_ps());
  auto& row = counts_[g];
  if (bin >= row.size()) row.resize(bin + 1, 0);
  ++row[bin];
  ++total_;
}

std::size_t TimeFrequencyMap::bins() const {
  std::size_t b = 0;
  for (const auto& row : counts_) b = std::max(b, row.size());
  return b;
}

std::uint64_t TimeFrequencyMap::count(std::size_t group,
                                      std::size_t bin) const {
  if (group >= groups_ || bin >= counts_[group].size()) return 0;
  return counts_[group][bin];
}

std::string TimeFrequencyMap::ascii() const {
  static constexpr char kShades[] = " .:-=+*#%@";
  const std::size_t nbins = bins();
  std::uint64_t peak = 1;
  for (const auto& row : counts_) {
    for (auto c : row) peak = std::max(peak, c);
  }
  std::string out;
  for (std::size_t g = groups_; g-- > 0;) {
    for (std::size_t b = 0; b < nbins; ++b) {
      const std::uint64_t c = count(g, b);
      const auto idx = static_cast<std::size_t>(
          std::llround(static_cast<double>(c) / static_cast<double>(peak) * 9));
      out.push_back(kShades[std::min<std::size_t>(idx, 9)]);
    }
    out.push_back('\n');
  }
  return out;
}

McuConsumer::McuConsumer(Time tick_unit, Time saturation_span, Time batch_gap)
    : decoder_{tick_unit, saturation_span}, batch_gap_{batch_gap} {}

void McuConsumer::attach_faults(fault::FaultInjector* faults) {
  faults_ = faults;
  crc_gate_ = faults != nullptr && fault::crc_framing_active(faults->plan());
  running_crc_ = i2s::crc32_init();
}

void McuConsumer::on_word(aer::AetrWord word, Time arrival) {
  if (!any_ || arrival - last_arrival_ > batch_gap_) {
    // A bus-idle gap can only fall between drains, so an unterminated CRC
    // payload at a gap means the frame trailer was corrupted: reject it.
    if (crc_gate_) reject_pending(arrival);
    ++batches_;
    if (tel_.tracing()) [[unlikely]] {
      tel_.instant("batch_start", arrival,
                   {{"batch", static_cast<double>(batches_)}});
    }
  } else {
    bus_active_ += arrival - last_arrival_;
  }
  any_ = true;
  last_arrival_ = arrival;
  ++words_;
  if (crc_gate_) {
    if (!pending_.empty() && word.raw() == i2s::crc32_final(running_crc_)) {
      // The trailer matches the payload hash: accept the whole batch.
      for (const std::uint32_t raw : pending_) {
        decode_one(aer::AetrWord{raw}, arrival);
      }
      pending_.clear();
      running_crc_ = i2s::crc32_init();
      return;
    }
    pending_.push_back(word.raw());
    running_crc_ = i2s::crc32_update(running_crc_, word.raw());
    return;
  }
  decode_one(word, arrival);
}

void McuConsumer::decode_one(aer::AetrWord word, Time arrival) {
  util::ProfScope prof{util::ProfSite::kMcuDecode};
  const aer::TimedEvent ev = decoder_.decode(word);
  if (ev.saturated) tel_.instant("saturated_decode", arrival);
  if (keep_events_) events_.push_back(ev);
}

void McuConsumer::reject_pending(Time now) {
  if (pending_.empty()) return;
  ++faults_->counters().crc_rejected_batches;
  faults_->counters().crc_rejected_words += pending_.size();
  if (tel_.tracing()) [[unlikely]] {
    tel_.instant("crc_reject", now,
                 {{"words", static_cast<double>(pending_.size())}});
  }
  pending_.clear();
  running_crc_ = i2s::crc32_init();
}

void McuConsumer::finish(Time now) {
  if (crc_gate_) reject_pending(now);
}

void McuConsumer::attach_telemetry(telemetry::TelemetrySession* session) {
  tel_ = telemetry::BlockTelemetry{session, "mcu"};
  if (auto* m = tel_.metrics()) {
    m->probe("mcu.words", [this] { return static_cast<double>(words_); });
    m->probe("mcu.batches", [this] { return static_cast<double>(batches_); });
    m->probe("mcu.decoded", [this] {
      return static_cast<double>(decoder_.decoded());
    });
    m->probe("mcu.saturated", [this] {
      return static_cast<double>(decoder_.saturated());
    });
    m->probe("mcu.bus_active_s", [this] { return bus_active_.to_sec(); });
  }
}

void McuConsumer::save_state(BlobWriter& w) const {
  const auto ds = decoder_.state();
  w.time(ds.clock);
  w.u64(ds.decoded);
  w.u64(ds.saturated);
  w.u64(events_.size());
  for (const auto& ev : events_) {
    w.u16(ev.address);
    w.time(ev.reconstructed_time);
    w.b(ev.saturated);
  }
  w.u64(pending_.size());
  for (const std::uint32_t raw : pending_) w.u32(raw);
  w.u32(running_crc_);
  w.u64(batches_);
  w.u64(words_);
  w.time(last_arrival_);
  w.time(bus_active_);
  w.b(any_);
  w.b(keep_events_);
}

void McuConsumer::restore_state(BlobReader& r) {
  AetrDecoder::State ds{};
  ds.clock = r.time();
  ds.decoded = r.u64();
  ds.saturated = r.u64();
  decoder_.set_state(ds);
  events_.clear();
  const auto ne = r.u64();
  events_.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    aer::TimedEvent ev;
    ev.address = r.u16();
    ev.reconstructed_time = r.time();
    ev.saturated = r.b();
    events_.push_back(ev);
  }
  pending_.clear();
  const auto np = r.u64();
  pending_.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) pending_.push_back(r.u32());
  running_crc_ = r.u32();
  batches_ = r.u64();
  words_ = r.u64();
  last_arrival_ = r.time();
  bus_active_ = r.time();
  any_ = r.b();
  keep_events_ = r.b();
}

}  // namespace aetr::mcu
