#include "mcu/power.hpp"

#include <algorithm>

namespace aetr::mcu {

McuEnergy batch_mcu_energy(const McuDuty& duty,
                           const McuPowerCalibration& cal) {
  McuEnergy e;
  const double window = duty.window.to_sec();
  if (window <= 0.0) return e;
  const double decode_sec = static_cast<double>(duty.words) *
                            cal.cycles_per_word / cal.run_clock_hz;
  const double wake_sec =
      static_cast<double>(duty.batches) * cal.wake_time.to_sec();
  e.active_sec = std::min(decode_sec + wake_sec, window);
  const double stop_sec = window - e.active_sec;
  e.energy_j = cal.run_w * e.active_sec + cal.stop_w * stop_sec +
               cal.wake_j * static_cast<double>(duty.batches);
  e.average_power_w = e.energy_j / window;
  e.duty = e.active_sec / window;
  return e;
}

McuEnergy always_on_mcu_energy(const McuDuty& duty,
                               const McuPowerCalibration& cal) {
  McuEnergy e;
  const double window = duty.window.to_sec();
  if (window <= 0.0) return e;
  e.active_sec = window;
  e.energy_j = cal.run_w * window;
  e.average_power_w = cal.run_w;
  e.duty = 1.0;
  return e;
}

}  // namespace aetr::mcu
