// Fixed-bin histograms (linear and logarithmic) used for the Fig. 7b error
// distributions and buffer-occupancy statistics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace aetr {

/// Linear-bin histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double underflow() const { return underflow_; }
  [[nodiscard]] double overflow() const { return overflow_; }
  [[nodiscard]] double total() const { return total_; }

  /// Fraction of all samples (including under/overflow) in bin i.
  [[nodiscard]] double probability(std::size_t i) const;

  /// Smallest x such that at least `q` of the mass lies at or below it.
  [[nodiscard]] double quantile(double q) const;

  /// Render as an ASCII bar chart, `width` characters for the largest bin.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<double> counts_;
  double underflow_{0.0};
  double overflow_{0.0};
  double total_{0.0};
};

/// Log-spaced histogram over [lo, hi) with `bins_per_decade` resolution;
/// used for inter-spike-interval distributions spanning ns..ms.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins_per_decade);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double bin_center(std::size_t i) const;  ///< geometric center
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }

  /// Overwrite bin counts and total, for snapshot/restore. The geometry
  /// (lo/hi/bins_per_decade) must match the histogram being restored into;
  /// a size mismatch throws.
  void set_counts(const std::vector<double>& counts, double total);

 private:
  double log_lo_;
  double log_step_;
  std::vector<double> counts_;
  double total_{0.0};
};

}  // namespace aetr
