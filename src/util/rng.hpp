// Deterministic random-number utilities.
//
// Two generators are provided:
//   * Xoshiro256StarStar — fast, high-quality software RNG used by the
//     Poisson stimulus model and the metastability injector. Deterministic
//     across platforms (unlike std::mt19937 distributions).
//   * Lfsr — a bit-accurate Fibonacci linear-feedback shift register, the
//     same structure the paper synthesised on the FPGA to generate
//     pseudo-random spike streams for the power measurements (§5.2).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/time.hpp"

namespace aetr {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic for a given seed on every platform.
class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponentially distributed value with the given mean (mean > 0).
  double exponential(double mean);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponentially distributed time span with the given mean span.
  Time exponential_time(Time mean);

  /// Raw generator state, for snapshot/restore. A restored generator
  /// continues the exact sequence the saved one would have produced.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

/// Bit-accurate Fibonacci LFSR with XOR feedback from a tap mask.
///
/// `taps` is a bitmask over the state register: the feedback bit is the
/// XOR of all masked state bits, shifted in at the MSB while the register
/// shifts right (bit 0 is the output, i.e. stage `width`). The default
/// mask 0x100B realises the maximal-length 16-bit polynomial
/// x^16 + x^15 + x^13 + x^4 + 1 (period 65535), a common FPGA choice.
class Lfsr {
 public:
  explicit Lfsr(std::uint32_t width = 16, std::uint32_t taps = 0x100Bu,
                std::uint32_t seed = 0xACE1u);

  /// Advance one clock; returns the output (feedback) bit.
  std::uint32_t step();

  /// Advance `width` clocks and return the parallel word.
  std::uint32_t step_word();

  [[nodiscard]] std::uint32_t state() const { return state_; }
  [[nodiscard]] std::uint32_t width() const { return width_; }

  /// Sequence period for a maximal-length register of this width.
  [[nodiscard]] std::uint64_t max_period() const {
    return (std::uint64_t{1} << width_) - 1;
  }

 private:
  std::uint32_t width_;
  std::uint32_t taps_;
  std::uint32_t state_;
  std::uint32_t mask_;
};

}  // namespace aetr
