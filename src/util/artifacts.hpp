// Where generated artifacts (CSV series, VCD waveforms, session traces)
// land. Benches and sweeps write under results/ — or $AETR_OUT, or an
// explicit --out directory — instead of scattering files over the source
// tree (which is why none of these outputs are version-controlled).
#pragma once

#include <string>

namespace aetr::util {

/// Output directory for generated artifacts: `dir` if non-empty, else the
/// AETR_OUT environment variable, else "results". Created (with parents)
/// if it does not exist.
std::string artifact_dir(const std::string& dir = "");

/// artifact_dir(dir) joined with `filename`.
std::string artifact_path(const std::string& filename,
                          const std::string& dir = "");

}  // namespace aetr::util
