// Small-buffer, move-only callable wrapper.
//
// The simulation kernel dispatches millions of callbacks whose captures are
// almost always tiny (a component pointer plus a small integer or two).
// std::function heap-allocates most captures beyond ~16 bytes, which turns
// every scheduled event into an allocator round-trip. InplaceFunction stores
// captures up to `Capacity` bytes inline in the object itself and only falls
// back to the heap for oversized or throwing-move callables, so the common
// case is allocation-free. It is move-only (callbacks are consumed exactly
// once), which also lets it wrap non-copyable captures that std::function
// rejects.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aetr::util {

template <typename Signature, std::size_t Capacity = 64>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(&other.buf_, &buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.vt_ != nullptr) {
        other.vt_->relocate(&other.buf_, &buf_);
        vt_ = other.vt_;
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(&buf_);
      vt_ = nullptr;
    }
  }

  /// Destroy the current target (if any) and construct a new one directly in
  /// the buffer — no temporary wrapper, no relocate call through the vtable.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    construct<D>(std::forward<F>(f));
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(&buf_, std::forward<Args>(args)...);
  }

  /// True if a callable of type F would be stored inline (no allocation).
  template <typename F>
  static constexpr bool stores_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<D*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* src, void* dst) noexcept {
      auto* s = static_cast<D*>(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static R invoke(void* p, Args&&... args) {
      return (**static_cast<D**>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* src, void* dst) noexcept {
      *static_cast<D**>(dst) = *static_cast<D**>(src);
    }
    static void destroy(void* p) noexcept { delete *static_cast<D**>(p); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

  template <typename D, typename F>
  void construct(F&& f) {
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D>::vtable;
    } else {
      *reinterpret_cast<D**>(&buf_) = new D(std::forward<F>(f));
      vt_ = &HeapOps<D>::vtable;
    }
  }

  static_assert(Capacity >= sizeof(void*), "Capacity must hold a pointer");

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_{nullptr};
};

}  // namespace aetr::util
