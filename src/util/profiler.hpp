// Host-side scoped sampling profiler for the simulator's residual hot path.
//
// PR 6's fast-path work left an ad-hoc wall-clock profile (mcu decode ~30%,
// harvest ~20%, schedule measure ~15%, word-path dispatch ~20%); this
// formalises those four sites so hot-path regressions become visible across
// PRs (tools/bench_report.py profile -> BENCH_profile.json).
//
// Cost model mirrors AETR_TELEMETRY's: every ProfScope is one relaxed
// atomic load and a branch when profiling is off — no clock reads, no
// allocation, no stores. Enable at runtime with profiler_set_enabled(true)
// or by exporting AETR_PROFILE=1 before the process starts. Counters are
// global atomics (relaxed), so sweep workers may profile concurrently;
// totals are exact, attribution across threads is pooled.
//
// Wall-clock numbers are inherently nondeterministic, so profiler output
// must NEVER feed a deterministic artifact (CSV series, ledgers, traces) —
// it goes to BENCH_profile.json and stderr reports only.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace aetr::util {

/// The instrumented sites (the PR 6 residual profile, one enumerator each).
enum class ProfSite : std::size_t {
  kMcuDecode,        ///< mcu::McuConsumer::decode_one
  kHarvest,          ///< run_scenario's delivery-latency harvest
  kScheduleMeasure,  ///< clockgen::SamplingSchedule::measure via capture
  kWordPath,         ///< I2S word_fn dispatch chain into the MCU
  kCount,
};

constexpr std::size_t kProfSiteCount =
    static_cast<std::size_t>(ProfSite::kCount);

[[nodiscard]] const char* to_string(ProfSite s);

namespace detail {
struct ProfSlot {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> ns{0};
};
extern std::atomic<bool> g_prof_enabled;
extern ProfSlot g_prof_slots[kProfSiteCount];
}  // namespace detail

/// Runtime toggle. Initialised once from the AETR_PROFILE environment
/// variable ("1"/"true"/"on"); flip at will afterwards.
[[nodiscard]] inline bool profiler_enabled() {
  return detail::g_prof_enabled.load(std::memory_order_relaxed);
}
void profiler_set_enabled(bool on);
/// Zero every site's counters (the toggle is left alone).
void profiler_reset();

struct ProfStats {
  std::uint64_t calls{0};
  std::uint64_t ns{0};
  [[nodiscard]] double sec() const {
    return static_cast<double>(ns) * 1e-9;
  }
};
[[nodiscard]] ProfStats profiler_stats(ProfSite site);

/// One JSON object: {"sites": [{"site": ..., "calls": ..., "ns": ...,
/// "frac": ...}, ...], "total_ns": ...}. Fractions are of the summed site
/// time. For bench reporting — wall-clock values, not deterministic.
[[nodiscard]] std::string profiler_report_json();

/// RAII sample: times the enclosing scope into its site's slot. When the
/// profiler is off, construction is a single relaxed load + branch and the
/// destructor a predictable non-taken branch — zero-cost in the same sense
/// as a detached telemetry session.
class ProfScope {
 public:
  explicit ProfScope(ProfSite site) {
    if (profiler_enabled()) [[unlikely]] {
      site_ = site;
      armed_ = true;
      t0_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfScope() {
    if (armed_) [[unlikely]] {
      const auto dt = std::chrono::steady_clock::now() - t0_;
      auto& slot = detail::g_prof_slots[static_cast<std::size_t>(site_)];
      slot.calls.fetch_add(1, std::memory_order_relaxed);
      slot.ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                  .count()),
          std::memory_order_relaxed);
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  std::chrono::steady_clock::time_point t0_{};
  ProfSite site_{ProfSite::kMcuDecode};
  bool armed_{false};
};

}  // namespace aetr::util
