// Statistical conformance tests for the stimulus generators.
//
// A simulator's conclusions are only as good as its random inputs; these
// goodness-of-fit helpers let the test suite *prove* the Poisson source is
// Poisson and the LFSR stream is uniform, instead of eyeballing means.
#pragma once

#include <cstddef>
#include <vector>

namespace aetr {

/// Pearson chi-square statistic for observed counts vs. a uniform
/// expectation. Returns the statistic; degrees of freedom = bins - 1.
[[nodiscard]] double chi_square_uniform(const std::vector<double>& counts);

/// Chi-square statistic against arbitrary expected counts (same length).
[[nodiscard]] double chi_square(const std::vector<double>& observed,
                                const std::vector<double>& expected);

/// Approximate upper critical value of the chi-square distribution at the
/// 0.999 quantile (Wilson–Hilferty), i.e. a test failing this is wrong
/// with overwhelming probability, not unlucky.
[[nodiscard]] double chi_square_critical_999(std::size_t dof);

/// Kolmogorov–Smirnov statistic of `samples` against the exponential
/// distribution with the given mean. Samples need not be sorted.
[[nodiscard]] double ks_exponential(std::vector<double> samples, double mean);

/// KS critical value at alpha = 0.001 for n samples (asymptotic form).
[[nodiscard]] double ks_critical_999(std::size_t n);

}  // namespace aetr
