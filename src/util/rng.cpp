#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace aetr {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64, used to expand the single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256StarStar::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256StarStar::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256StarStar::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256StarStar::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling, rejection-corrected.
  __extension__ using Wide = unsigned __int128;
  std::uint64_t x = next();
  Wide m = static_cast<Wide>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<Wide>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256StarStar::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  // Guard against log(0); uniform() can return exactly 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Xoshiro256StarStar::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Xoshiro256StarStar::bernoulli(double p) { return uniform() < p; }

Time Xoshiro256StarStar::exponential_time(Time mean) {
  return Time::sec(exponential(mean.to_sec()));
}

Lfsr::Lfsr(std::uint32_t width, std::uint32_t taps, std::uint32_t seed)
    : width_{width},
      taps_{taps},
      state_{seed},
      mask_{width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u)} {
  assert(width_ >= 2 && width_ <= 32);
  state_ &= mask_;
  if (state_ == 0) state_ = 1;  // all-zero is the LFSR lockup state
}

std::uint32_t Lfsr::step() {
  // XOR of all tapped stages feeds the MSB; output is the LSB.
  const std::uint32_t out = state_ & 1u;
  std::uint32_t feedback = 0;
  std::uint32_t tapped = state_ & taps_;
  while (tapped != 0) {
    feedback ^= tapped & 1u;
    tapped >>= 1;
  }
  state_ = ((state_ >> 1) | (feedback << (width_ - 1))) & mask_;
  return out;
}

std::uint32_t Lfsr::step_word() {
  std::uint32_t word = 0;
  for (std::uint32_t i = 0; i < width_; ++i) word = (word << 1) | step();
  return word;
}

}  // namespace aetr
