// Strong time and frequency types for the aetr simulator.
//
// All simulation time is kept as an integral number of picoseconds, which is
// fine enough to represent the 120 MHz ring-oscillator period (8333 ps) and
// every divided sampling period exactly, while covering ~106 days of
// simulated time in an int64 — far beyond any experiment in the paper.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace aetr {

/// A point in (or span of) simulated time, in integral picoseconds.
///
/// `Time` is deliberately a strong type: raw integers and floating-point
/// seconds must be converted explicitly, so clock arithmetic can never mix
/// units silently.
class Time {
 public:
  using Rep = std::int64_t;

  constexpr Time() = default;

  /// Named constructors. Fractional inputs round to the nearest picosecond.
  [[nodiscard]] static constexpr Time ps(Rep v) { return Time{v}; }
  [[nodiscard]] static constexpr Time ns(double v) { return from_scaled(v, 1e3); }
  [[nodiscard]] static constexpr Time us(double v) { return from_scaled(v, 1e6); }
  [[nodiscard]] static constexpr Time ms(double v) { return from_scaled(v, 1e9); }
  [[nodiscard]] static constexpr Time sec(double v) { return from_scaled(v, 1e12); }

  /// Largest representable time; used as "never" for idle schedulers.
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<Rep>::max()};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }

  [[nodiscard]] constexpr Rep count_ps() const { return ps_; }
  [[nodiscard]] constexpr double to_ns() const { return static_cast<double>(ps_) / 1e3; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ps_) / 1e6; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ps_) / 1e9; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ps_) / 1e12; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) { ps_ += rhs.ps_; return *this; }
  constexpr Time& operator-=(Time rhs) { ps_ -= rhs.ps_; return *this; }
  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, Rep k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(Rep k, Time a) { return Time{a.ps_ * k}; }
  friend constexpr Rep operator/(Time a, Time b) { return a.ps_ / b.ps_; }
  friend constexpr Time operator/(Time a, Rep k) { return Time{a.ps_ / k}; }
  friend constexpr Time operator%(Time a, Time b) { return Time{a.ps_ % b.ps_}; }

  /// Ratio of two spans as a double (for error metrics).
  [[nodiscard]] constexpr double ratio(Time denom) const {
    return static_cast<double>(ps_) / static_cast<double>(denom.ps_);
  }

  /// Human-readable rendering with an auto-selected unit, e.g. "66.7ns".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(Rep v) : ps_{v} {}
  [[nodiscard]] static constexpr Time from_scaled(double v, double scale) {
    const double scaled = v * scale;
    return Time{static_cast<Rep>(scaled + (scaled >= 0 ? 0.5 : -0.5))};
  }

  Rep ps_{0};
};

namespace time_literals {
constexpr Time operator""_ps(unsigned long long v) { return Time::ps(static_cast<Time::Rep>(v)); }
constexpr Time operator""_ns(unsigned long long v) { return Time::ns(static_cast<double>(v)); }
constexpr Time operator""_us(unsigned long long v) { return Time::us(static_cast<double>(v)); }
constexpr Time operator""_ms(unsigned long long v) { return Time::ms(static_cast<double>(v)); }
constexpr Time operator""_sec(unsigned long long v) { return Time::sec(static_cast<double>(v)); }
constexpr Time operator""_ns(long double v) { return Time::ns(static_cast<double>(v)); }
constexpr Time operator""_us(long double v) { return Time::us(static_cast<double>(v)); }
constexpr Time operator""_ms(long double v) { return Time::ms(static_cast<double>(v)); }
constexpr Time operator""_sec(long double v) { return Time::sec(static_cast<double>(v)); }
}  // namespace time_literals

/// A frequency in hertz; converts to/from periods.
class Frequency {
 public:
  constexpr Frequency() = default;
  [[nodiscard]] static constexpr Frequency hz(double v) { return Frequency{v}; }
  [[nodiscard]] static constexpr Frequency khz(double v) { return Frequency{v * 1e3}; }
  [[nodiscard]] static constexpr Frequency mhz(double v) { return Frequency{v * 1e6}; }

  [[nodiscard]] constexpr double to_hz() const { return hz_; }
  [[nodiscard]] constexpr double to_mhz() const { return hz_ / 1e6; }

  /// Period of one cycle at this frequency (rounded to the ps grid).
  [[nodiscard]] constexpr Time period() const { return Time::sec(1.0 / hz_); }
  [[nodiscard]] static constexpr Frequency from_period(Time p) {
    return Frequency{1.0 / p.to_sec()};
  }

  constexpr auto operator<=>(const Frequency&) const = default;

 private:
  constexpr explicit Frequency(double v) : hz_{v} {}
  double hz_{0.0};
};

}  // namespace aetr
