// Portable two-lane double-precision SIMD wrapper (SSE2 / NEON / scalar).
//
// Vec2d is a value type over two doubles whose arithmetic compiles to
// packed instructions where the target has them and to plain scalar code
// otherwise. Every operation maps to exactly one IEEE-754 operation per
// lane in the written order (no FMA contraction, no reassociation), so a
// kernel written with Vec2d is bit-identical to the equivalent scalar
// loop — the property the cochlea filterbank tests assert.
//
// Dispatch is resolved at runtime, once: active_isa() reports which
// backend this process uses, honouring an AETR_SIMD=scalar environment
// override so the scalar fallback stays testable on any machine. Kernels
// (e.g. cochlea::BiquadBankSoA) select their implementation through it.
#pragma once

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define AETR_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define AETR_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace aetr::simd {

/// Which backend Vec2d arithmetic runs on in this process.
enum class Isa { kScalar, kSse2, kNeon };

[[nodiscard]] constexpr const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kSse2: return "sse2";
    case Isa::kNeon: return "neon";
    default: return "scalar";
  }
}

/// The backend compiled into this binary.
[[nodiscard]] constexpr Isa compiled_isa() {
#if defined(AETR_SIMD_SSE2)
  return Isa::kSse2;
#elif defined(AETR_SIMD_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

/// Runtime-selected backend: the compiled one, unless AETR_SIMD=scalar
/// forces the fallback. Evaluated once per process.
[[nodiscard]] inline Isa active_isa() {
  static const Isa isa = [] {
    const char* env = std::getenv("AETR_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return Isa::kScalar;
    }
    return compiled_isa();
  }();
  return isa;
}

/// Doubles with magnitude at or below this flush to zero in
/// flush_subnormals() — the boundary of the IEEE subnormal range, where
/// x86 cores fall off the fast path by orders of magnitude.
inline constexpr double kSubnormalThreshold =
    std::numeric_limits<double>::min();

/// Two packed doubles. All operations are lane-wise, one IEEE op each.
struct Vec2d {
#if defined(AETR_SIMD_SSE2)
  __m128d v;
  Vec2d() : v{_mm_setzero_pd()} {}
  explicit Vec2d(__m128d raw) : v{raw} {}
  explicit Vec2d(double broadcast) : v{_mm_set1_pd(broadcast)} {}
  [[nodiscard]] static Vec2d load(const double* p) {
    return Vec2d{_mm_loadu_pd(p)};
  }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  [[nodiscard]] Vec2d operator+(Vec2d o) const {
    return Vec2d{_mm_add_pd(v, o.v)};
  }
  [[nodiscard]] Vec2d operator-(Vec2d o) const {
    return Vec2d{_mm_sub_pd(v, o.v)};
  }
  [[nodiscard]] Vec2d operator*(Vec2d o) const {
    return Vec2d{_mm_mul_pd(v, o.v)};
  }
  [[nodiscard]] Vec2d max(Vec2d o) const {
    return Vec2d{_mm_max_pd(v, o.v)};
  }
  /// Lanes whose magnitude is at or below the subnormal threshold become
  /// +0.0; every normal value passes through bit-unchanged.
  [[nodiscard]] Vec2d flush_subnormals() const {
    const __m128d sign = _mm_set1_pd(-0.0);
    const __m128d mag = _mm_andnot_pd(sign, v);
    const __m128d keep = _mm_cmpgt_pd(mag, _mm_set1_pd(kSubnormalThreshold));
    return Vec2d{_mm_and_pd(v, keep)};
  }
#elif defined(AETR_SIMD_NEON)
  float64x2_t v;
  Vec2d() : v{vdupq_n_f64(0.0)} {}
  explicit Vec2d(float64x2_t raw) : v{raw} {}
  explicit Vec2d(double broadcast) : v{vdupq_n_f64(broadcast)} {}
  [[nodiscard]] static Vec2d load(const double* p) {
    return Vec2d{vld1q_f64(p)};
  }
  void store(double* p) const { vst1q_f64(p, v); }
  [[nodiscard]] Vec2d operator+(Vec2d o) const {
    return Vec2d{vaddq_f64(v, o.v)};
  }
  [[nodiscard]] Vec2d operator-(Vec2d o) const {
    return Vec2d{vsubq_f64(v, o.v)};
  }
  [[nodiscard]] Vec2d operator*(Vec2d o) const {
    return Vec2d{vmulq_f64(v, o.v)};
  }
  [[nodiscard]] Vec2d max(Vec2d o) const {
    return Vec2d{vmaxq_f64(v, o.v)};
  }
  [[nodiscard]] Vec2d flush_subnormals() const {
    const float64x2_t mag = vabsq_f64(v);
    const uint64x2_t keep =
        vcgtq_f64(mag, vdupq_n_f64(kSubnormalThreshold));
    return Vec2d{vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(v), keep))};
  }
#else
  double v[2];
  Vec2d() : v{0.0, 0.0} {}
  explicit Vec2d(double broadcast) : v{broadcast, broadcast} {}
  [[nodiscard]] static Vec2d load(const double* p) {
    Vec2d r;
    r.v[0] = p[0];
    r.v[1] = p[1];
    return r;
  }
  void store(double* p) const {
    p[0] = v[0];
    p[1] = v[1];
  }
  [[nodiscard]] Vec2d operator+(Vec2d o) const {
    Vec2d r;
    r.v[0] = v[0] + o.v[0];
    r.v[1] = v[1] + o.v[1];
    return r;
  }
  [[nodiscard]] Vec2d operator-(Vec2d o) const {
    Vec2d r;
    r.v[0] = v[0] - o.v[0];
    r.v[1] = v[1] - o.v[1];
    return r;
  }
  [[nodiscard]] Vec2d operator*(Vec2d o) const {
    Vec2d r;
    r.v[0] = v[0] * o.v[0];
    r.v[1] = v[1] * o.v[1];
    return r;
  }
  [[nodiscard]] Vec2d max(Vec2d o) const {
    Vec2d r;
    r.v[0] = v[0] > o.v[0] ? v[0] : o.v[0];
    r.v[1] = v[1] > o.v[1] ? v[1] : o.v[1];
    return r;
  }
  [[nodiscard]] Vec2d flush_subnormals() const {
    Vec2d r = *this;
    if (std::fabs(r.v[0]) <= kSubnormalThreshold) r.v[0] = 0.0;
    if (std::fabs(r.v[1]) <= kSubnormalThreshold) r.v[1] = 0.0;
    return r;
  }
#endif
};

/// Scalar flush with the same semantics as Vec2d::flush_subnormals().
[[nodiscard]] inline double flush_subnormal(double x) {
  return std::fabs(x) <= kSubnormalThreshold ? 0.0 : x;
}

}  // namespace aetr::simd
