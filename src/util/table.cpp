#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

namespace aetr {

Table::Table(std::vector<std::string> header) : header_{std::move(header)} {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f{path};
  if (!f) return;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) f << ',';
      f << row[c];
    }
    f << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace aetr
