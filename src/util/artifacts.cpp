#include "util/artifacts.hpp"

#include <cstdlib>
#include <filesystem>

namespace aetr::util {

std::string artifact_dir(const std::string& dir) {
  std::string out = dir;
  if (out.empty()) {
    if (const char* env = std::getenv("AETR_OUT"); env && *env) {
      out = env;
    } else {
      out = "results";
    }
  }
  std::filesystem::create_directories(out);
  return out;
}

std::string artifact_path(const std::string& filename, const std::string& dir) {
  return (std::filesystem::path{artifact_dir(dir)} / filename).string();
}

}  // namespace aetr::util
