#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace aetr {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, bin_width_{(hi - lo) / static_cast<double>(bins)},
      counts_(bins, 0.0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, double weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
  } else if (x >= hi_) {
    overflow_ += weight;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
    idx = std::min(idx, counts_.size() - 1);
    counts_[idx] += weight;
  }
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }
double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + bin_width_ / 2.0;
}

double Histogram::probability(std::size_t i) const {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

double Histogram::quantile(double q) const {
  const double target = q * total_;
  double acc = underflow_;
  if (acc >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= target) return bin_hi(i);
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  if (peak <= 0.0) peak = 1.0;
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof head, "%10.4g..%-10.4g |", bin_lo(i), bin_hi(i));
    out += head;
    const auto bar =
        static_cast<std::size_t>(counts_[i] / peak * static_cast<double>(width));
    out.append(bar, '#');
    char tail[32];
    std::snprintf(tail, sizeof tail, " %.5g\n", probability(i));
    out += tail;
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : log_lo_{std::log10(lo)},
      log_step_{1.0 / static_cast<double>(bins_per_decade)} {
  assert(lo > 0.0 && hi > lo && bins_per_decade > 0);
  const auto bins = static_cast<std::size_t>(
      std::ceil((std::log10(hi) - log_lo_) / log_step_));
  counts_.assign(bins, 0.0);
}

void LogHistogram::add(double x, double weight) {
  total_ += weight;
  if (x <= 0.0) return;
  const double pos = (std::log10(x) - log_lo_) / log_step_;
  if (pos < 0.0 || pos >= static_cast<double>(counts_.size())) return;
  counts_[static_cast<std::size_t>(pos)] += weight;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return std::pow(10.0, log_lo_ + log_step_ * static_cast<double>(i));
}
double LogHistogram::bin_hi(std::size_t i) const {
  return std::pow(10.0, log_lo_ + log_step_ * static_cast<double>(i + 1));
}
double LogHistogram::bin_center(std::size_t i) const {
  return std::sqrt(bin_lo(i) * bin_hi(i));
}

void LogHistogram::set_counts(const std::vector<double>& counts, double total) {
  if (counts.size() != counts_.size()) {
    throw std::runtime_error("LogHistogram::set_counts: bin count mismatch");
  }
  counts_ = counts;
  total_ = total;
}

}  // namespace aetr
