#include "util/profiler.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aetr::util {

namespace detail {

namespace {

bool env_wants_profile() {
  const char* v = std::getenv("AETR_PROFILE");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0;
}

}  // namespace

std::atomic<bool> g_prof_enabled{env_wants_profile()};
ProfSlot g_prof_slots[kProfSiteCount];

}  // namespace detail

const char* to_string(ProfSite s) {
  switch (s) {
    case ProfSite::kMcuDecode: return "mcu_decode";
    case ProfSite::kHarvest: return "harvest";
    case ProfSite::kScheduleMeasure: return "schedule_measure";
    case ProfSite::kWordPath: return "word_path";
    case ProfSite::kCount: break;
  }
  return "?";
}

void profiler_set_enabled(bool on) {
  detail::g_prof_enabled.store(on, std::memory_order_relaxed);
}

void profiler_reset() {
  for (auto& slot : detail::g_prof_slots) {
    slot.calls.store(0, std::memory_order_relaxed);
    slot.ns.store(0, std::memory_order_relaxed);
  }
}

ProfStats profiler_stats(ProfSite site) {
  const auto& slot = detail::g_prof_slots[static_cast<std::size_t>(site)];
  ProfStats st;
  st.calls = slot.calls.load(std::memory_order_relaxed);
  st.ns = slot.ns.load(std::memory_order_relaxed);
  return st;
}

std::string profiler_report_json() {
  std::uint64_t total_ns = 0;
  ProfStats stats[kProfSiteCount];
  for (std::size_t i = 0; i < kProfSiteCount; ++i) {
    stats[i] = profiler_stats(static_cast<ProfSite>(i));
    total_ns += stats[i].ns;
  }
  std::string out = "{\"sites\": [";
  char buf[160];
  for (std::size_t i = 0; i < kProfSiteCount; ++i) {
    const double frac =
        total_ns != 0u
            ? static_cast<double>(stats[i].ns) / static_cast<double>(total_ns)
            : 0.0;
    std::snprintf(buf, sizeof buf,
                  "%s{\"site\": \"%s\", \"calls\": %llu, \"ns\": %llu, "
                  "\"frac\": %.6f}",
                  i == 0 ? "" : ", ", to_string(static_cast<ProfSite>(i)),
                  static_cast<unsigned long long>(stats[i].calls),
                  static_cast<unsigned long long>(stats[i].ns), frac);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "], \"total_ns\": %llu}",
                static_cast<unsigned long long>(total_ns));
  out += buf;
  return out;
}

}  // namespace aetr::util
