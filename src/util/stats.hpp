// Streaming statistics accumulators (Welford's algorithm).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace aetr {

/// Single-pass mean/variance/min/max accumulator. O(1) memory, numerically
/// stable for the long accumulation runs the error sweeps produce.
class RunningStats {
 public:
  /// Fold one sample into the accumulator.
  void add(double x);

  /// Merge another accumulator (parallel-friendly; Chan et al. update).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;       ///< population variance
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = RunningStats{}; }

  /// Raw accumulator state, for snapshot/restore.
  struct State {
    std::size_t n;
    double mean;
    double m2;
    double min;
    double max;
  };
  [[nodiscard]] State state() const { return {n_, mean_, m2_, min_, max_}; }
  void set_state(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Exponentially weighted moving average, used by the MCU-side rate
/// estimator. `alpha` is the per-sample smoothing factor in (0, 1].
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_{alpha} {}

  void add(double x) {
    value_ = primed_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    primed_ = true;
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }

 private:
  double alpha_;
  double value_{0.0};
  bool primed_{false};
};

}  // namespace aetr
