#include "util/stats_tests.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aetr {

double chi_square(const std::vector<double>& observed,
                  const std::vector<double>& expected) {
  assert(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

double chi_square_uniform(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  const std::vector<double> expected(counts.size(),
                                     total / static_cast<double>(counts.size()));
  return chi_square(counts, expected);
}

double chi_square_critical_999(std::size_t dof) {
  // Wilson–Hilferty: chi2_q(k) ~ k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3,
  // z_0.999 = 3.0902.
  const auto k = static_cast<double>(dof);
  const double z = 3.0902;
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

double ks_exponential(std::vector<double> samples, double mean) {
  assert(!samples.empty() && mean > 0.0);
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double cdf = 1.0 - std::exp(-samples[i] / mean);
    const double hi = (static_cast<double>(i) + 1.0) / n - cdf;
    const double lo = cdf - static_cast<double>(i) / n;
    d = std::max({d, hi, lo});
  }
  return d;
}

double ks_critical_999(std::size_t n) {
  // c(alpha) / sqrt(n) with c(0.001) = 1.95.
  return 1.95 / std::sqrt(static_cast<double>(n));
}

}  // namespace aetr
