// Versioned little-endian binary blob serialization for snapshot/restore.
//
// The Session checkpoint format (docs/SERVICE.md) is built on these two
// helpers. All integers are written little-endian regardless of host order,
// doubles as IEEE-754 bit patterns via u64, and strings/byte-spans as a u64
// length prefix followed by the raw bytes. Readers throw std::runtime_error
// on truncation so a torn snapshot file is rejected rather than half-loaded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace aetr {

class BlobWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void b(bool v) { u8(v ? 1 : 0); }
  void time(Time t) { i64(t.count_ps()); }
  void str(std::string_view s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

class BlobReader {
 public:
  BlobReader(const std::uint8_t* data, std::size_t size)
      : data_{data}, size_{size} {}
  explicit BlobReader(const std::vector<std::uint8_t>& bytes)
      : BlobReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool b() { return u8() != 0; }
  Time time() { return Time::ps(i64()); }
  std::string str() {
    std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  void raw(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_) {
      throw std::runtime_error("blob: truncated (need " + std::to_string(n) +
                               " bytes, have " + std::to_string(size_ - pos_) +
                               ")");
    }
  }
  std::uint64_t le(int n) {
    need(static_cast<std::uint64_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace aetr
