// Result-table rendering: aligned console tables (the paper-style rows the
// bench harnesses print) and CSV export for plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace aetr {

/// Column-aligned text table with an optional CSV mirror.
///
/// Usage:
///   Table t({"rate (evt/s)", "avg error", "power (mW)"});
///   t.add_row({fmt(r), fmt(err), fmt(p)});
///   t.print(std::cout);
///   t.write_csv("fig6.csv");
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Number formatting helper: %.*g with the given significant digits.
  [[nodiscard]] static std::string num(double v, int digits = 5);

  void print(std::ostream& os) const;
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aetr
