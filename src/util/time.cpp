#include "util/time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace aetr {

std::string Time::to_string() const {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 5> kUnits{{
      {1e12, "s"}, {1e9, "ms"}, {1e6, "us"}, {1e3, "ns"}, {1.0, "ps"}}};
  const double abs_ps = std::abs(static_cast<double>(ps_));
  for (const auto& u : kUnits) {
    if (abs_ps >= u.scale || u.scale == 1.0) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.4g%s",
                    static_cast<double>(ps_) / u.scale, u.suffix);
      return buf;
    }
  }
  return "0ps";
}

}  // namespace aetr
