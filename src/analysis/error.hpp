// Timestamp-accuracy analysis (paper §5.1).
//
// The paper evaluates conversion accuracy with a Matlab model of the clock
// generation unit fed by Poisson spike streams, assuming a perfect 50 %-duty
// clock. sweep_error() is that model: it pushes Poisson inter-spike
// intervals through the exact SamplingSchedule quantiser and accumulates the
// relative timestamp error, tracking the carry-over between the true event
// instant and the sampling edge where the interface actually consumed it.
// analyze_records() applies the same scoring to ground-truth records from
// the cycle-level DES, letting tests prove model and simulator agree.
#pragma once

#include <cstdint>
#include <vector>

#include "clockgen/schedule.hpp"
#include "frontend/aer_frontend.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace aetr::analysis {

/// The three operating regions of Fig. 6 (§5.1).
enum class Region { kInactive, kActive, kHighActivity };

[[nodiscard]] const char* to_string(Region r);

/// Quantisation-error statistics over one stream.
///
/// Two averages are reported. `mean_rel_error` is the per-event mean of
/// |measured - true| / true; it is dominated by the shortest intervals
/// (whose relative error diverges as the interval shrinks towards the
/// sampling period). `weighted_rel_error` is sum(|measured - true|) /
/// sum(true) — the total timing error per unit of measured time — which is
/// the reading consistent with the paper's Fig. 6 levels ("significantly
/// below the analytic 3 % bound" across the whole active region).
struct ErrorStats {
  RunningStats rel_error;        ///< per-event |measured - true| / true
  std::uint64_t events{0};
  std::uint64_t saturated{0};    ///< tagged with the saturated timestamp
  std::uint64_t sub_nyquist{0};  ///< true interval below 2 * current Tmin
  double abs_err_sec{0.0};       ///< sum of |measured - true|
  double true_sec{0.0};          ///< sum of true intervals
  double abs_err_unsat_sec{0.0}; ///< ... over non-saturated intervals only
  double true_unsat_sec{0.0};

  [[nodiscard]] double mean_rel_error() const { return rel_error.mean(); }
  [[nodiscard]] double weighted_rel_error() const {
    return true_sec > 0.0 ? abs_err_sec / true_sec : 0.0;
  }
  /// Timing accuracy of the *correlated* (non-saturated) intervals — the
  /// reading that matters for workloads with long deliberate silences,
  /// where saturated tags dominate weighted_rel_error by design.
  [[nodiscard]] double weighted_rel_error_unsaturated() const {
    return true_unsat_sec > 0.0 ? abs_err_unsat_sec / true_unsat_sec : 0.0;
  }
  [[nodiscard]] double frac_saturated() const {
    return events ? static_cast<double>(saturated) / static_cast<double>(events)
                  : 0.0;
  }
};

/// Options for the model-based sweep.
struct SweepOptions {
  std::size_t n_events = 4000;   ///< intervals measured per rate point
  std::uint64_t seed = 1;
  std::uint32_t sync_edges = 0;  ///< 0 = the paper's ideal Matlab model
  Time wake_latency = Time::zero();
  std::uint16_t address_range = 128;
  /// Physical floor on inter-request gaps: the AER handshake serialises
  /// spikes, and the paper's interface senses inter-spike times of 130 ns
  /// or more (§5) — the sender stalls faster streams. Without this floor
  /// the relative error of unphysically tiny intervals diverges.
  Time min_gap = Time::ns(130.0);
};

/// Measure a Poisson stream of the given mean rate through the schedule.
[[nodiscard]] ErrorStats sweep_error(const clockgen::ScheduleConfig& cfg,
                                     double rate_hz,
                                     const SweepOptions& opt = {});

/// One (rate, error) point of a Fig. 6 curve.
struct CurvePoint {
  double rate_hz{0.0};
  ErrorStats stats;
  Region region{Region::kActive};
};

/// Sweep a log-spaced rate grid (one Fig. 6 series).
[[nodiscard]] std::vector<CurvePoint> sweep_error_curve(
    const clockgen::ScheduleConfig& cfg, double rate_lo_hz, double rate_hi_hz,
    std::size_t points, const SweepOptions& opt = {});

/// Score the ground-truth capture log of a DES run: compares each AETR
/// timestamp against the true inter-request interval.
[[nodiscard]] ErrorStats analyze_records(
    const std::vector<frontend::CaptureRecord>& records, Time tick_unit,
    Time saturation_span);

/// Per-event relative errors from a capture log (for Fig. 7b histograms).
[[nodiscard]] std::vector<double> record_errors(
    const std::vector<frontend::CaptureRecord>& records, Time tick_unit,
    Time saturation_span);

/// Region classification: inactive when most intervals outlive the awake
/// span (exp(-r*T_awake) > 1/2), high-activity when fewer than 10 % of
/// intervals ever reach the first division, active otherwise.
[[nodiscard]] Region classify_region(const clockgen::ScheduleConfig& cfg,
                                     double rate_hz);

/// The analytic worst-case relative error of the division scheme, ~2/theta
/// (the paper's "3 % bound" for theta_div = 64).
[[nodiscard]] double analytic_error_bound(std::uint32_t theta_div);

}  // namespace aetr::analysis
