// Closed-form expected power under Poisson traffic.
//
// For a Poisson spike stream of rate r, every power-relevant activity of
// the interface is a function of the inter-spike interval tau ~ Exp(r):
// the oscillator runs min(tau, T_awake), the sampling domain executes
// cycles(tau) edges (piecewise linear per division level), a wakeup
// transient occurs iff tau > T_awake, and each event costs fixed front-end/
// FIFO/I2S energy. Taking expectations per segment of the schedule gives
// the whole Fig. 8 curve in closed form — no simulation — which both
// cross-validates the DES (tests pin the agreement) and gives designers an
// instant theta/N_div/rate -> power calculator.
#pragma once

#include "clockgen/schedule.hpp"
#include "power/model.hpp"

namespace aetr::analysis {

/// Expected steady-state behaviour per event and per second.
struct PowerEstimate {
  double rate_hz{0.0};
  double awake_fraction{0.0};        ///< E[min(tau,T)] * r
  double sampling_freq_hz{0.0};      ///< E[cycles(tau)] * r
  double wakeups_per_sec{0.0};       ///< r * P(tau > T_awake)
  double power_w{0.0};               ///< total expected power
  power::PowerBreakdown breakdown;   ///< per-component expectation
};

/// Expected power of the interface under Poisson traffic at `rate_hz`,
/// for the given schedule and calibration. I2S cost assumes every event is
/// eventually drained (32 bits/word) — true whenever the stream fits the
/// output bitrate.
[[nodiscard]] PowerEstimate expected_power(
    const clockgen::ScheduleConfig& schedule, const power::PowerCalibration& cal,
    double rate_hz, unsigned i2s_word_bits = 32);

}  // namespace aetr::analysis
