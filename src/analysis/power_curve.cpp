#include "analysis/power_curve.hpp"

#include <cassert>
#include <cmath>

namespace aetr::analysis {
namespace {

/// P(tau in [a,b)) for tau ~ Exp(r): integral of r e^{-r tau}.
double mass(double r, double a, double b) {
  return std::exp(-r * a) - std::exp(-r * b);
}

/// E[tau ; tau in [a,b)] = integral of tau r e^{-r tau}.
double first_moment(double r, double a, double b) {
  const double inv = 1.0 / r;
  return (a + inv) * std::exp(-r * a) - (b + inv) * std::exp(-r * b);
}

}  // namespace

PowerEstimate expected_power(const clockgen::ScheduleConfig& schedule_cfg,
                             const power::PowerCalibration& cal,
                             double rate_hz, unsigned i2s_word_bits) {
  assert(rate_hz > 0.0);
  const clockgen::SamplingSchedule schedule{schedule_cfg};
  const double r = rate_hz;
  const std::uint32_t top =
      schedule_cfg.divide_enabled ? schedule_cfg.n_div : 0;
  const bool sleeps = schedule.awake_span() != Time::max();
  const double t_awake =
      sleeps ? schedule.awake_span().to_sec() : 1e9;  // effectively infinite

  // E[min(tau, T_awake)] and E[cycles(tau)] accumulated per level segment.
  double e_awake = first_moment(r, 0.0, t_awake) + t_awake * std::exp(-r * t_awake);
  double e_cycles = 0.0;
  for (std::uint32_t k = 0; k <= top; ++k) {
    const double s_k = schedule.level_start(k).to_sec();
    const double s_next = k < top ? schedule.level_start(k + 1).to_sec()
                                  : t_awake;
    const double p_k = schedule.period_of_level(k).to_sec();
    // cycles(tau) ~= theta*k + (tau - S_k)/p_k within level k (the +-1
    // staircase rounding averages out over the exponential mixture).
    const double c0 = static_cast<double>(schedule_cfg.theta_div) * k -
                      s_k / p_k;
    e_cycles += c0 * mass(r, s_k, s_next) + first_moment(r, s_k, s_next) / p_k;
  }
  if (sleeps) {
    // Saturated tail: the full awake schedule ran.
    const double sat_cycles =
        static_cast<double>(schedule_cfg.theta_div) * (top + 1) - 1.0;
    e_cycles += sat_cycles * std::exp(-r * t_awake);
  }

  PowerEstimate est;
  est.rate_hz = r;
  est.awake_fraction = std::min(1.0, r * e_awake);
  est.sampling_freq_hz = r * e_cycles;
  est.wakeups_per_sec = sleeps ? r * std::exp(-r * t_awake) : 0.0;

  auto& b = est.breakdown;
  b.static_w = cal.static_w;
  b.osc_domain_w = cal.osc_domain_w * est.awake_fraction;
  b.sampling_w = cal.sampling_cycle_j * est.sampling_freq_hz;
  b.events_w = cal.event_j * r;
  b.fifo_w = cal.fifo_access_j * 2.0 * r;  // one write + one read per event
  b.i2s_w = cal.i2s_bit_j * static_cast<double>(i2s_word_bits) * r;
  b.wakeup_w = cal.wakeup_j * est.wakeups_per_sec;
  est.power_w = b.total_w();
  return est;
}

}  // namespace aetr::analysis
