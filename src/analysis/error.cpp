#include "analysis/error.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace aetr::analysis {

const char* to_string(Region r) {
  switch (r) {
    case Region::kInactive: return "inactive";
    case Region::kActive: return "active";
    case Region::kHighActivity: return "high-activity";
  }
  return "?";
}

namespace {

/// Scores one measured interval into the stats.
void score(ErrorStats& s, Time true_delta, Time measured, bool saturated,
           Time tmin) {
  ++s.events;
  if (saturated) ++s.saturated;
  if (true_delta < tmin * 2) ++s.sub_nyquist;
  if (true_delta > Time::zero()) {
    const double abs_err = std::abs((measured - true_delta).to_sec());
    s.rel_error.add(abs_err / true_delta.to_sec());
    s.abs_err_sec += abs_err;
    s.true_sec += true_delta.to_sec();
    if (!saturated) {
      s.abs_err_unsat_sec += abs_err;
      s.true_unsat_sec += true_delta.to_sec();
    }
  }
}

}  // namespace

ErrorStats sweep_error(const clockgen::ScheduleConfig& cfg, double rate_hz,
                       const SweepOptions& opt) {
  assert(rate_hz > 0.0);
  const clockgen::SamplingSchedule schedule{cfg};
  Xoshiro256StarStar rng{opt.seed};
  ErrorStats stats;

  // `carry` is the lag between the previous event's true arrival and the
  // sampling edge where it was consumed: the next interval starts at that
  // edge, so the request lands `true_delta - carry` into the new schedule.
  Time carry = Time::zero();
  for (std::size_t i = 0; i < opt.n_events; ++i) {
    const Time true_delta = std::max(
        rng.exponential_time(Time::sec(1.0 / rate_hz)), opt.min_gap);
    Time elapsed = true_delta - carry;
    if (elapsed < Time::ps(1)) elapsed = Time::ps(1);
    const auto m = schedule.measure(elapsed, opt.sync_edges, opt.wake_latency);
    const Time measured = cfg.tmin * static_cast<Time::Rep>(
                              std::min<std::uint64_t>(m.ticks, UINT32_MAX));
    score(stats, true_delta, measured, m.saturated, cfg.tmin);
    carry = m.sample_edge - elapsed;
  }
  return stats;
}

std::vector<CurvePoint> sweep_error_curve(const clockgen::ScheduleConfig& cfg,
                                          double rate_lo_hz, double rate_hi_hz,
                                          std::size_t points,
                                          const SweepOptions& opt) {
  assert(points >= 2 && rate_hi_hz > rate_lo_hz);
  std::vector<CurvePoint> curve;
  curve.reserve(points);
  const double step =
      std::log(rate_hi_hz / rate_lo_hz) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double rate = rate_lo_hz * std::exp(step * static_cast<double>(i));
    SweepOptions o = opt;
    o.seed = opt.seed + i;  // decorrelate points
    CurvePoint p;
    p.rate_hz = rate;
    p.stats = sweep_error(cfg, rate, o);
    p.region = classify_region(cfg, rate);
    curve.push_back(std::move(p));
  }
  return curve;
}

ErrorStats analyze_records(const std::vector<frontend::CaptureRecord>& records,
                           Time tick_unit, Time saturation_span) {
  ErrorStats stats;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const Time true_delta = records[i].request.time - records[i - 1].request.time;
    const bool saturated = records[i].word.is_saturated();
    const Time measured =
        saturated ? saturation_span
                  : tick_unit * static_cast<Time::Rep>(
                        records[i].word.timestamp_ticks());
    score(stats, true_delta, measured, saturated, tick_unit);
  }
  return stats;
}

std::vector<double> record_errors(
    const std::vector<frontend::CaptureRecord>& records, Time tick_unit,
    Time saturation_span) {
  std::vector<double> errors;
  errors.reserve(records.size());
  for (std::size_t i = 1; i < records.size(); ++i) {
    const Time true_delta = records[i].request.time - records[i - 1].request.time;
    if (true_delta <= Time::zero()) continue;
    const Time measured =
        records[i].word.is_saturated()
            ? saturation_span
            : tick_unit * static_cast<Time::Rep>(
                  records[i].word.timestamp_ticks());
    errors.push_back(std::abs((measured - true_delta).to_sec()) /
                     true_delta.to_sec());
  }
  return errors;
}

Region classify_region(const clockgen::ScheduleConfig& cfg, double rate_hz) {
  const clockgen::SamplingSchedule schedule{cfg};
  // High activity: fewer than 10 % of Poisson intervals reach the first
  // division, i.e. exp(-r * theta*Tmin) < 0.1.
  const double first_division_sec =
      cfg.tmin.to_sec() * static_cast<double>(cfg.theta_div);
  if (!cfg.divide_enabled ||
      std::exp(-rate_hz * first_division_sec) < 0.1) {
    return Region::kHighActivity;
  }
  // Inactive: the majority of intervals outlive the awake span.
  if (schedule.awake_span() != Time::max()) {
    const double p_saturate =
        std::exp(-rate_hz * schedule.awake_span().to_sec());
    if (p_saturate > 0.5) return Region::kInactive;
  }
  return Region::kActive;
}

double analytic_error_bound(std::uint32_t theta_div) {
  assert(theta_div > 0);
  return 2.0 / static_cast<double>(theta_div);
}

}  // namespace aetr::analysis
