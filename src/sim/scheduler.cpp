#include "sim/scheduler.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace aetr::sim {

namespace {

/// Wheel level for an event at tick `t` seen from tick `now`: the highest
/// 8-bit digit in which the two times differ. Same-digit placement is
/// impossible by construction, so a bucket never collides with the cursor.
unsigned placement_level(std::uint64_t diff) {
  if (diff == 0) return 0;
  return (static_cast<unsigned>(std::bit_width(diff)) - 1u) >> 3u;
}

}  // namespace

std::uint32_t Scheduler::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  if (meta_.size() == meta_.capacity()) {
    // Grow in large steps: metadata copies trivially, but reallocating the
    // cell array relocates every callback, so keep reallocations rare.
    const std::size_t cap = meta_.empty() ? 1024 : meta_.capacity() * 2;
    meta_.reserve(cap);
    cells_.reserve(cap);
  }
  meta_.emplace_back();
  cells_.emplace_back();
  return static_cast<std::uint32_t>(meta_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t idx) {
  SlotMeta& m = meta_[idx];
  ++m.gen;  // stale EventIds (ran / cancelled / recycled) now never match
  m.where = Where::kFree;
  // prev/next were already detached by whichever unlink/pop got us here
  // (heap slots are never linked in the first place).
  free_.push_back(idx);
}

void Scheduler::bucket_push(std::uint16_t bucket, std::uint32_t idx) {
  SlotMeta& m = meta_[idx];
  Bucket& b = buckets_[bucket];
  m.bucket = bucket;
  m.next = -1;
  m.prev = b.tail;
  if (b.tail >= 0) {
    meta_[static_cast<std::size_t>(b.tail)].next = static_cast<std::int32_t>(idx);
  } else {
    b.head = static_cast<std::int32_t>(idx);
    occ_set(bucket / kSlotsPerLevel, bucket % kSlotsPerLevel);
  }
  b.tail = static_cast<std::int32_t>(idx);
}

void Scheduler::bucket_unlink(std::uint32_t idx) {
  SlotMeta& m = meta_[idx];
  Bucket& b = buckets_[m.bucket];
  if (m.prev >= 0) {
    meta_[static_cast<std::size_t>(m.prev)].next = m.next;
  } else {
    b.head = m.next;
  }
  if (m.next >= 0) {
    meta_[static_cast<std::size_t>(m.next)].prev = m.prev;
  } else {
    b.tail = m.prev;
  }
  m.prev = m.next = -1;
  if (b.head < 0) {
    occ_clear(m.bucket / kSlotsPerLevel, m.bucket % kSlotsPerLevel);
  }
}

void Scheduler::wheel_insert(std::uint32_t idx) {
  SlotMeta& m = meta_[idx];
  const std::uint64_t tt = ticks(m.t);
  const unsigned level = placement_level(tt ^ ticks(now_));
  assert(level < kLevels);
  const auto index =
      static_cast<unsigned>((tt >> (kGroupBits * level)) & kIndexMask);
  m.where = Where::kWheel;
  bucket_push(static_cast<std::uint16_t>(level * kSlotsPerLevel + index), idx);
}

std::uint32_t Scheduler::schedule_slot(Time t) {
  if (t < now_) {
    throw std::logic_error("Scheduler: event scheduled in the past (" +
                           t.to_string() + " < " + now_.to_string() + ")");
  }
  const std::uint32_t idx = acquire_slot();
  SlotMeta& m = meta_[idx];
  m.t = t;
  m.seq = next_seq_++;
  if ((ticks(t) ^ ticks(now_)) >> kHorizonBits) {
    m.where = Where::kHeap;
    heap_.push(HeapEntry{t, m.seq, idx, m.gen});
  } else {
    wheel_insert(idx);
  }
  ++live_;
  return idx;
}

EventId Scheduler::schedule_at(Time t, Callback cb) {
  const std::uint32_t idx = schedule_slot(t);
  cells_[idx] = std::move(cb);
  return EventId{(std::uint64_t{meta_[idx].gen} << 32) | (idx + 1)};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto biased = static_cast<std::uint32_t>(id.id & 0xFFFFFFFFu);
  if (biased == 0 || biased > meta_.size()) return false;
  const std::uint32_t idx = biased - 1;
  SlotMeta& m = meta_[idx];
  if (m.gen != static_cast<std::uint32_t>(id.id >> 32)) return false;
  switch (m.where) {
    case Where::kWheel:
      bucket_unlink(idx);
      cells_[idx].reset();
      release_slot(idx);
      --live_;
      ++stats_.cancelled;
      return true;
    case Where::kHeap:
      // The heap entry still references the slot; park it as a zombie and
      // let prune_heap() reclaim it when the entry surfaces.
      cells_[idx].reset();
      m.where = Where::kZombie;
      --live_;
      ++stats_.cancelled;
      return true;
    default:
      return false;  // already ran, already cancelled, or recycled
  }
}

void Scheduler::prune_heap() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    SlotMeta& m = meta_[top.slot];
    if (m.where == Where::kHeap && m.gen == top.gen) return;  // live
    assert(m.where == Where::kZombie);
    release_slot(top.slot);
    heap_.pop();
  }
}

void Scheduler::advance_now_to(Time t) {
  assert(t >= now_);
  const std::uint64_t old_ticks = ticks(now_);
  const std::uint64_t new_ticks = ticks(t);
  now_ = t;
  const std::uint64_t diff = old_ticks ^ new_ticks;
  if (diff == 0) return;
  unsigned level = placement_level(diff);
  if (level >= kLevels) level = kLevels - 1;
  // Cascade, coarsest first, every bucket the cursor just landed in: its
  // events re-place at a strictly finer level (possibly into a bucket a
  // later, finer iteration of this same loop then cascades again).
  for (; level >= 1; --level) {
    const auto index =
        static_cast<unsigned>((new_ticks >> (kGroupBits * level)) & kIndexMask);
    Bucket& b = buckets_[level * kSlotsPerLevel + index];
    std::int32_t cur = b.head;
    if (cur < 0) continue;
    b.head = b.tail = -1;
    occ_clear(level, index);
    while (cur >= 0) {  // relink in list order: preserves same-time FIFO
      const auto idx = static_cast<std::uint32_t>(cur);
      cur = meta_[idx].next;
      meta_[idx].prev = meta_[idx].next = -1;
      wheel_insert(idx);
      ++stats_.cascaded;
    }
  }
}

// Locate, position on, pop and invoke the earliest live event with
// timestamp <= horizon. This is the single dispatch path shared by run(),
// run_until() and run_next(); it fuses peeking and dispatching so the
// common case costs one pass over the occupancy bitmaps.
bool Scheduler::step(Time horizon) {
  for (;;) {
    prune_heap();
    const bool have_heap = !heap_.empty();

    if (levels_ == 0) {
      if (!have_heap || heap_.top().t > horizon) return false;
      return dispatch_heap();
    }
    const auto level = static_cast<unsigned>(std::countr_zero(levels_));
    const unsigned index = min_index(level);
    const auto bucket =
        static_cast<std::uint16_t>(level * kSlotsPerLevel + index);
    Bucket& b = buckets_[bucket];

    if (level == 0 || b.head == b.tail) {
      // Exact-dispatch fast path. A level-0 bucket's head is the wheel
      // minimum by construction (one shared tick, FIFO list). A *single*
      // node in the earliest bucket of the lowest occupied level is
      // likewise the wheel minimum: every finer level is empty and every
      // other same-level bucket holds a strictly later digit. Either way
      // the node dispatches straight from here — no cascade, no rescan.
      const auto idx = static_cast<std::uint32_t>(b.head);
      SlotMeta& m = meta_[idx];
      const Time t = m.t;
      if (have_heap) {
        const HeapEntry& top = heap_.top();
        if (top.t < t || (top.t == t && top.seq < m.seq)) {
          if (top.t > horizon) return false;
          return dispatch_heap();
        }
      }
      if (t > horizon) return false;
      assert(t >= now_);
      // Pop the head, then jump the cursor straight to t: all finer levels
      // are empty and no other node shares this bucket's digit, so there is
      // nothing for the cursor to cascade on the way.
      b.head = m.next;
      if (m.next >= 0) {
        meta_[static_cast<std::size_t>(m.next)].prev = -1;
      } else {
        b.tail = -1;
        occ_clear(level, index);
      }
      m.prev = m.next = -1;
      now_ = t;
      finish_dispatch(idx);
      return true;
    }

    // Multi-node coarse bucket: its start time lower-bounds every event
    // inside it. If the heap's front comes first, dispatch that; if even
    // the lower bound lies beyond the horizon, nothing qualifies; otherwise
    // hop the cursor to the bucket start (safe: nothing lives before it)
    // which cascades the bucket one level finer, and retry.
    const unsigned parent_shift = kGroupBits * (level + 1);
    const std::uint64_t bucket_start =
        ((ticks(now_) >> parent_shift) << parent_shift) |
        (std::uint64_t{index} << (kGroupBits * level));
    const Time bucket_t = Time::ps(static_cast<Time::Rep>(bucket_start));
    assert(bucket_t > now_);
    if (have_heap && heap_.top().t < bucket_t) {
      if (heap_.top().t > horizon) return false;
      return dispatch_heap();
    }
    if (bucket_t > horizon) return false;
    advance_now_to(bucket_t);
  }
}

bool Scheduler::dispatch_heap() {
  const std::uint32_t idx = heap_.top().slot;
  const Time t = heap_.top().t;
  heap_.pop();
  assert(t >= now_);
  advance_now_to(t);
  ++stats_.heap_dispatches;
  finish_dispatch(idx);
  return true;
}

void Scheduler::finish_dispatch(std::uint32_t idx) {
  Callback cb = std::move(cells_[idx]);
  release_slot(idx);
  --live_;
  ++processed_;
  cb();
}

void Scheduler::run(std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (!step(Time::max())) return;
  }
}

void Scheduler::run_until(Time t) {
  while (step(t)) {
  }
  if (t > now_) advance_now_to(t);
}

bool Scheduler::run_next() { return step(Time::max()); }

Time Scheduler::next_event_time() {
  prune_heap();
  Time best = heap_.empty() ? Time::max() : heap_.top().t;
  if (levels_ != 0) {
    // The earliest occupied bucket of the lowest occupied level contains the
    // wheel minimum: finer levels are empty, same-level buckets with larger
    // digits start strictly later, and any coarser event differs from now()
    // in a higher digit (upwards — events are never in the past), so it lies
    // beyond every event that shares those digits. A multi-node bucket is
    // scanned in place — no cursor movement, no cascade, no side effects.
    const auto level = static_cast<unsigned>(std::countr_zero(levels_));
    const unsigned index = min_index(level);
    const Bucket& b = buckets_[level * kSlotsPerLevel + index];
    for (std::int32_t cur = b.head; cur >= 0;
         cur = meta_[static_cast<std::size_t>(cur)].next) {
      const Time t = meta_[static_cast<std::size_t>(cur)].t;
      if (t < best) best = t;
    }
  }
  return best;
}

void Scheduler::fast_forward_to(Time t) {
  if (t < now_) {
    throw std::logic_error("Scheduler: fast_forward_to into the past (" +
                           t.to_string() + " < " + now_.to_string() + ")");
  }
  if (next_event_time() < t) {
    throw std::logic_error(
        "Scheduler: fast_forward_to(" + t.to_string() +
        ") would jump over a pending event at " +
        next_event_time().to_string());
  }
  advance_now_to(t);
}

void Scheduler::restore_clock_state(const ClockState& s) {
  if (live_ != 0) {
    throw std::logic_error(
        "Scheduler: restore_clock_state with pending events");
  }
  if (s.now < now_) {
    throw std::logic_error("Scheduler: restore_clock_state into the past");
  }
  advance_now_to(s.now);
  next_seq_ = s.next_seq;
  processed_ = s.processed;
  stats_.cancelled = s.cancelled;
  stats_.heap_dispatches = s.heap_dispatches;
  stats_.cascaded = s.cascaded;
}

}  // namespace aetr::sim
