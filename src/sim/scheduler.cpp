#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>

namespace aetr::sim {

EventId Scheduler::schedule_at(Time t, Callback cb) {
  if (t < now_) {
    throw std::logic_error("Scheduler: event scheduled in the past (" +
                           t.to_string() + " < " + now_.to_string() + ")");
  }
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(cb)});
  return EventId{id};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  // Lazy deletion: remember the id; the entry is dropped when popped.
  // An id is only cancellable while pending (ran ids are never reused).
  if (id.id >= next_id_) return false;
  return cancelled_.insert(id.id).second;
}

bool Scheduler::pop_and_dispatch() {
  while (!heap_.empty()) {
    // priority_queue::top is const; the callback is moved out via const_cast,
    // which is safe because the entry is popped immediately afterwards.
    auto& top = const_cast<Entry&>(heap_.top());
    if (cancelled_.erase(top.id) > 0) {
      heap_.pop();
      continue;
    }
    assert(top.t >= now_);
    now_ = top.t;
    Callback cb = std::move(top.cb);
    heap_.pop();
    ++processed_;
    cb();
    return true;
  }
  return false;
}

void Scheduler::run(std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (!pop_and_dispatch()) return;
  }
}

void Scheduler::run_until(Time t) {
  while (!heap_.empty()) {
    const auto& top = heap_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.t > t) break;
    pop_and_dispatch();
  }
  if (t > now_) now_ = t;
}

bool Scheduler::run_next() { return pop_and_dispatch(); }

}  // namespace aetr::sim
