#include "sim/vcd.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace aetr::sim {
namespace {

/// VCD identifiers are short printable-ASCII strings; base-94 encode.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

VcdWriter::VcdWriter(const std::string& path) : out_{path} {
  if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
}

VcdWriter::~VcdWriter() { close(); }

VcdSignal VcdWriter::add_signal(const std::string& scope,
                                const std::string& name, unsigned width) {
  if (header_written_) {
    throw std::logic_error("VcdWriter: add_signal(\"" + scope + "." + name +
                           "\") after the first change(); the VCD header is "
                           "already streamed, so every signal must be "
                           "declared before any change is logged");
  }
  decls_.push_back(Decl{scope, name, width, vcd_id(decls_.size()), 0, false});
  return VcdSignal{decls_.size() - 1};
}

void VcdWriter::write_header() {
  out_ << "$date aetr simulation $end\n"
       << "$version aetr vcd writer $end\n"
       << "$timescale 1ps $end\n";
  // Group declarations by scope.
  std::map<std::string, std::vector<const Decl*>> by_scope;
  for (const auto& d : decls_) by_scope[d.scope].push_back(&d);
  for (const auto& [scope, sigs] : by_scope) {
    out_ << "$scope module " << scope << " $end\n";
    for (const auto* d : sigs) {
      out_ << "$var wire " << d->width << ' ' << d->id << ' ' << d->name
           << " $end\n";
    }
    out_ << "$upscope $end\n";
  }
  out_ << "$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::emit(const Decl& d, std::uint64_t value) {
  if (d.width == 1) {
    out_ << (value & 1u) << d.id << '\n';
  } else {
    out_ << 'b';
    bool leading = true;
    for (int bit = static_cast<int>(d.width) - 1; bit >= 0; --bit) {
      const bool set = (value >> bit) & 1u;
      if (set) leading = false;
      if (!leading || bit == 0) out_ << (set ? '1' : '0');
    }
    out_ << ' ' << d.id << '\n';
  }
}

void VcdWriter::advance_time(Time t) {
  if (t != current_time_) {
    out_ << '#' << t.count_ps() << '\n';
    current_time_ = t;
  }
}

void VcdWriter::change(VcdSignal sig, std::uint64_t value, Time t) {
  auto& d = decls_.at(sig.index);
  if (!header_written_) write_header();
  if (d.has_value && d.last_value == value) return;
  advance_time(t);
  emit(d, value);
  d.last_value = value;
  d.has_value = true;
}

void VcdWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace aetr::sim
