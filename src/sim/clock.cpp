#include "sim/clock.hpp"

#include <utility>

namespace aetr::sim {

std::size_t ClockLine::on_rising(EdgeFn fn) {
  subscribers_.push_back(std::move(fn));
  return subscribers_.size() - 1;
}

void ClockLine::tick(Time edge_time, Time period) {
  ++edges_;
  last_edge_ = edge_time;
  for (auto& fn : subscribers_) fn(edge_time, period);
}

FixedClock::FixedClock(Scheduler& sched, Time period, Time first_edge)
    : sched_{sched}, period_{period}, next_edge_{first_edge} {}

void FixedClock::start() {
  if (running_) return;
  running_ = true;
  // An unset/stale first edge means "free-run": first edge one period out.
  if (next_edge_ <= sched_.now()) next_edge_ = sched_.now() + period_;
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

void FixedClock::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(pending_);
  pending_ = EventId{};
}

void FixedClock::edge() {
  line_.tick(sched_.now(), period_);
  if (!running_) return;  // a subscriber may have stopped us
  next_edge_ = sched_.now() + period_;
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

}  // namespace aetr::sim
