#include "sim/clock.hpp"

#include <utility>

namespace aetr::sim {

std::size_t ClockLine::on_rising(EdgeFn fn, BulkFn bulk) {
  subscribers_.push_back(Subscriber{std::move(fn), std::move(bulk)});
  return subscribers_.size() - 1;
}

void ClockLine::tick(Time edge_time, Time period) {
  ++edges_;
  last_edge_ = edge_time;
  for (auto& s : subscribers_) s.fn(edge_time, period);
}

void ClockLine::advance(std::uint64_t n, Time last_edge, Time period) {
  if (n == 0) return;
  edges_ += n;
  last_edge_ = last_edge;
  const Time first = last_edge - period * static_cast<Time::Rep>(n - 1);
  for (auto& s : subscribers_) {
    if (s.bulk) {
      s.bulk(n, last_edge, period);
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        s.fn(first + period * static_cast<Time::Rep>(i), period);
      }
    }
  }
}

FixedClock::FixedClock(Scheduler& sched, Time period, Time first_edge)
    : sched_{sched}, period_{period}, next_edge_{first_edge} {}

void FixedClock::start() {
  if (running_) return;
  running_ = true;
  // An unset/stale first edge means "free-run": first edge one period out.
  if (next_edge_ <= sched_.now()) next_edge_ = sched_.now() + period_;
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

void FixedClock::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(pending_);
  pending_ = EventId{};
}

void FixedClock::edge() {
  line_.tick(sched_.now(), period_);
  if (!running_) return;  // a subscriber may have stopped us
  next_edge_ = sched_.now() + period_;
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

}  // namespace aetr::sim
