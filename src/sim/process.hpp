// Coroutine simulation processes.
//
// Callback-style modelling (what the library's blocks use internally) is
// efficient but turns sequential behaviour inside out. For testbenches and
// behavioural models, a SystemC-thread-like coroutine is far more natural:
//
//   sim::Process stimulus(sim::Scheduler& s, aer::AerChannel& ch) {
//     for (int i = 0; i < 10; ++i) {
//       co_await sim::Delay{s, 10_us};
//       ch.drive_addr(i);
//       ch.assert_req();
//       co_await sim::WaitFor{s, ack_trigger};   // until the ACK fires
//       ch.deassert_req();
//     }
//   }
//
// Processes start eagerly, run on the shared Scheduler timeline, and are
// safely cancellable: destroying the Process object invalidates pending
// wakeups (the scheduler callbacks hold a liveness token, never a dangling
// frame pointer).
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aetr::sim {

/// Handle to a running simulation process (move-only, owning).
class Process {
 public:
  struct promise_type {
    std::shared_ptr<bool> alive = std::make_shared<bool>(true);

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  Process() = default;
  explicit Process(std::coroutine_handle<promise_type> h) : handle_{h} {}
  Process(Process&& other) noexcept : handle_{other.handle_} {
    other.handle_ = {};
  }
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  /// True once the coroutine ran to completion.
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

 private:
  void destroy() {
    if (handle_) {
      *handle_.promise().alive = false;  // defuse pending wakeups
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

namespace detail {
/// Resume `h` only if its process is still alive.
inline auto guarded_resume(std::coroutine_handle<Process::promise_type> h) {
  return [h, alive = h.promise().alive] {
    if (*alive) h.resume();
  };
}
}  // namespace detail

/// Awaitable: suspend for a simulated time span.
struct Delay {
  Scheduler& sched;
  Time span;

  [[nodiscard]] bool await_ready() const noexcept {
    return span <= Time::zero();
  }
  void await_suspend(std::coroutine_handle<Process::promise_type> h) const {
    sched.schedule_after(span, detail::guarded_resume(h));
  }
  void await_resume() const noexcept {}
};

/// A broadcast event processes can wait on. fire() resumes every waiter
/// (at the current simulation time, in wait order).
class Trigger {
 public:
  explicit Trigger(Scheduler& sched) : sched_{sched} {}

  /// Resume all current waiters; new waiters wait for the next fire.
  void fire() {
    auto waiting = std::move(waiters_);
    waiters_.clear();
    ++fires_;
    for (auto& resume : waiting) {
      sched_.schedule_after(Time::zero(), std::move(resume));
    }
  }

  [[nodiscard]] std::size_t waiters() const { return waiters_.size(); }
  [[nodiscard]] std::uint64_t fires() const { return fires_; }

 private:
  friend struct WaitFor;
  Scheduler& sched_;
  std::vector<Scheduler::Callback> waiters_;
  std::uint64_t fires_{0};
};

/// Awaitable: suspend until the trigger fires.
struct WaitFor {
  Trigger& trigger;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Process::promise_type> h) const {
    trigger.waiters_.push_back(detail::guarded_resume(h));
  }
  void await_resume() const noexcept {}
};

}  // namespace aetr::sim
