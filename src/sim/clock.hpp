// Clock distribution primitives.
//
// A ClockLine is the simulator's clock net: producers (the clock generator)
// publish rising edges; consumers (front-end, FIFO, I2S, FSMs) subscribe.
// A FixedClock is a free-running producer for blocks that are not driven by
// the pausable generator (e.g. standalone I2S tests).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aetr::sim {

/// A clock net that fans a rising-edge notification out to subscribers.
///
/// Subscribers are called in subscription order at the edge instant; the
/// current edge period (useful for variable-frequency clocks) is passed
/// along so consumers can reason about elapsed wall time per tick.
class ClockLine {
 public:
  /// Edge callback: (edge_time, current_period).
  using EdgeFn = std::function<void(Time, Time)>;
  /// Bulk callback: (n_edges, last_edge_time, period) — `n_edges` evenly
  /// spaced rising edges ending at `last_edge_time`, delivered as one call.
  using BulkFn = std::function<void(std::uint64_t, Time, Time)>;

  /// Subscribe to rising edges; returns a subscriber index. A subscriber
  /// may also provide a bulk handler that advance() uses to absorb a whole
  /// run of periodic edges in closed form; the two handlers must leave the
  /// subscriber in bit-identical state for the same edge sequence.
  std::size_t on_rising(EdgeFn fn, BulkFn bulk = {});

  /// Publish one rising edge with the given period to all subscribers.
  void tick(Time edge_time, Time period);

  /// Publish `n` evenly spaced edges ending at `last_edge` in one call.
  /// Subscribers with a bulk handler get a single callback; the rest are
  /// ticked per edge (correct, just not fast). Equivalent to calling
  /// tick() n times except for subscriber interleaving: bulk publishes to
  /// each subscriber in turn rather than edge by edge, so it must only be
  /// used on nets whose subscribers do not observe each other mid-run
  /// (the clockgen counters qualify).
  void advance(std::uint64_t n, Time last_edge, Time period);

  /// Total rising edges published on this net (activity counter input).
  [[nodiscard]] std::uint64_t edge_count() const { return edges_; }

  /// Time of the most recent edge.
  [[nodiscard]] Time last_edge() const { return last_edge_; }

 private:
  struct Subscriber {
    EdgeFn fn;
    BulkFn bulk;
  };
  std::vector<Subscriber> subscribers_;
  std::uint64_t edges_{0};
  Time last_edge_{Time::zero()};
};

/// Free-running fixed-frequency clock driving a ClockLine.
class FixedClock {
 public:
  FixedClock(Scheduler& sched, Time period, Time first_edge = Time::zero());

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Time period() const { return period_; }
  [[nodiscard]] ClockLine& line() { return line_; }

 private:
  void edge();

  Scheduler& sched_;
  Time period_;
  Time next_edge_;
  ClockLine line_;
  EventId pending_{};
  bool running_{false};
};

}  // namespace aetr::sim
