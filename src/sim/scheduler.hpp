// Discrete-event simulation kernel.
//
// The whole interface is modelled as components that schedule callbacks on a
// shared picosecond timeline. Blocks with deterministic idle behaviour (the
// division FSM between spikes, the paused oscillator) schedule only their
// *state-change* instants, so simulated cost scales with activity, not with
// wall-clock frequency — the same energy-proportionality trick the paper
// plays in hardware, applied to simulator throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace aetr::sim {

/// Handle to a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t id{0};
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Central event queue. Single-threaded; callbacks may schedule/cancel
/// further events freely (including at the current time).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` `delta` after the current time.
  EventId schedule_after(Time delta, Callback cb) {
    return schedule_at(now_ + delta, std::move(cb));
  }

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Safe to call with an invalid id.
  bool cancel(EventId id);

  /// Run events until the queue is empty or `limit` events processed.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Run all events with timestamp <= t, then advance now() to exactly t.
  void run_until(Time t);

  /// Process the single earliest event; returns false if queue empty.
  bool run_next();

  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;  // FIFO order among same-time events
    std::uint64_t id;
    Callback cb;
    bool operator>(const Entry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  bool pop_and_dispatch();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_{Time::zero()};
  std::uint64_t next_id_{1};
  std::uint64_t next_seq_{0};
  std::uint64_t processed_{0};
};

}  // namespace aetr::sim
