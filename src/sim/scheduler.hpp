// Discrete-event simulation kernel.
//
// The whole interface is modelled as components that schedule callbacks on a
// shared picosecond timeline. Blocks with deterministic idle behaviour (the
// division FSM between spikes, the paused oscillator) schedule only their
// *state-change* instants, so simulated cost scales with activity, not with
// wall-clock frequency — the same energy-proportionality trick the paper
// plays in hardware, applied to simulator throughput.
//
// The event store is a two-tier kernel (docs/SIMULATOR.md#the-event-kernel):
//
//  * a hierarchical timer wheel (kLevels levels of 256 buckets, picosecond
//    ticks) holds every event within ~1.1 s of now(). Schedule and cancel
//    are O(1); an event cascades to a finer level at most kLevels-1 times
//    before it is dispatched at its exact tick, and the earliest bucket
//    dispatches directly — no cascade — whenever it holds a single event.
//  * a comparison heap catches the rare far-future event (idle timeouts,
//    "never" sentinels) whose timestamp lies beyond the wheel horizon.
//
// Callbacks live in a generation-tagged slot pool of InplaceFunction cells,
// so the common capture (component pointer + small ints) never touches the
// allocator and a stale EventId can never cancel a recycled slot.
#pragma once

#include <bit>
#include <cstdint>
#include <queue>
#include <type_traits>
#include <vector>

#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace aetr::telemetry {
class TelemetrySession;
}  // namespace aetr::telemetry

namespace aetr::sim {

/// Handle to a scheduled event, usable for cancellation.
///
/// Encodes a slot-pool index (low 32 bits, biased by 1 so 0 stays "invalid")
/// and the slot's generation at scheduling time (high 32 bits). Cancelling
/// is an O(1) pool lookup; a handle whose generation no longer matches the
/// slot (the event ran, was cancelled, or the slot was recycled) is simply
/// stale and cancel() returns false.
struct EventId {
  std::uint64_t id{0};
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Central event queue. Single-threaded; callbacks may schedule/cancel
/// further events freely (including at the current time).
class Scheduler {
 public:
  /// 56 inline bytes covers every capture in the library (the largest is the
  /// SPI bit-clocking closure at exactly 56 bytes, asserted in spi.cpp) and
  /// makes the whole cell — buffer plus vtable pointer — exactly one 64-byte
  /// cache line. Bigger captures still work via the wrapper's heap fallback.
  using Callback = util::InplaceFunction<void(), 56>;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// In-place overload: a small nothrow-movable callable is constructed
  /// directly in its pooled cell, skipping the temporary wrapper and the
  /// vtable relocate of the Callback path entirely.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, Callback> && std::is_invocable_r_v<void, D&>>>
  EventId schedule_at(Time t, F&& f) {
    if constexpr (Callback::stores_inline<F>() &&
                  std::is_nothrow_constructible_v<D, F&&>) {
      const std::uint32_t idx = schedule_slot(t);
      cells_[idx].emplace(std::forward<F>(f));
      return EventId{(std::uint64_t{meta_[idx].gen} << 32) | (idx + 1)};
    } else {
      // Potentially-throwing construction: build the wrapper first so a
      // throw cannot leave a linked slot with an empty callback.
      return schedule_at(t, Callback(std::forward<F>(f)));
    }
  }

  /// Schedule `cb` `delta` after the current time.
  EventId schedule_after(Time delta, Callback cb) {
    return schedule_at(now_ + delta, std::move(cb));
  }

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, Callback> && std::is_invocable_r_v<void, D&>>>
  EventId schedule_after(Time delta, F&& f) {
    return schedule_at(now_ + delta, std::forward<F>(f));
  }

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Safe to call with an invalid id.
  bool cancel(EventId id);

  /// Run events until the queue is empty or `limit` events processed.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Run all events with timestamp <= t, then advance now() to exactly t.
  void run_until(Time t);

  /// Process the single earliest event; returns false if queue empty.
  bool run_next();

  // --- gap query / fast-forward -------------------------------------------
  /// Timestamp of the earliest pending event, or Time::max() when the queue
  /// is empty. Non-destructive: nothing is dispatched, now() does not move
  /// and no bucket cascades (a multi-node coarse bucket is scanned in
  /// place). This is the gap-query half of the fast-forward contract: a
  /// caller that knows its own next action time can test
  /// `next_event_time() >= t` and skip the idle stretch.
  [[nodiscard]] Time next_event_time();

  /// Advance now() straight to `t` across a verified gap. Throws
  /// std::logic_error if an event is pending strictly before `t` — the
  /// caller's gap query was stale and jumping would reorder dispatches.
  /// Events scheduled exactly at `t` stay pending (they dispatch after any
  /// state the caller applies at `t`, matching the schedule-then-run order
  /// of a callback that runs at `t` itself).
  void fast_forward_to(Time t);

  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Event-kernel self-metrics: how events were stored and dispatched.
  /// Free to keep always-on: the per-event numbers (scheduled, wheel
  /// dispatches) are derived from counters the kernel maintains anyway, so
  /// only the rare paths (heap dispatch, cascade, cancel) carry an
  /// increment. Telemetry registers them as sampled probes.
  struct Stats {
    std::uint64_t scheduled{0};        ///< schedule_at/after calls accepted
    std::uint64_t wheel_dispatches{0};  ///< exact-dispatch fast-path hits
    std::uint64_t heap_dispatches{0};   ///< overflow-heap (far-future) hits
    std::uint64_t cascaded{0};          ///< events re-placed by a cascade
    std::uint64_t cancelled{0};         ///< successful cancel() calls
  };
  [[nodiscard]] Stats stats() const {
    Stats s = stats_;
    s.scheduled = processed_ + live_ + stats_.cancelled;
    s.wheel_dispatches = processed_ - stats_.heap_dispatches;
    return s;
  }

  /// Telemetry session for this run, or nullptr (the default). The
  /// scheduler only carries the pointer — components reach their telemetry
  /// through the scheduler reference they already hold. Attach before
  /// constructing the components that should pick it up.
  void set_telemetry(telemetry::TelemetrySession* session) {
    telemetry_ = session;
  }
  [[nodiscard]] telemetry::TelemetrySession* telemetry() const {
    return telemetry_;
  }

  /// Events within this distance of now() live in the timer wheel; farther
  /// ones overflow into the comparison heap.
  static constexpr Time wheel_horizon() {
    return Time::ps(Time::Rep{1} << kHorizonBits);
  }

  // --- snapshot/restore ----------------------------------------------------
  /// Clock-and-counter state for session snapshots. Callbacks cannot be
  /// serialized, so a snapshot is only taken at a quiescent point where the
  /// Session knows (and can re-arm) every pending event; this struct carries
  /// the rest.
  struct ClockState {
    Time now;
    std::uint64_t next_seq;
    std::uint64_t processed;
    std::uint64_t cancelled;
    std::uint64_t heap_dispatches;
    std::uint64_t cascaded;
  };
  [[nodiscard]] ClockState clock_state() const {
    return {now_,           next_seq_,
            processed_,     stats_.cancelled,
            stats_.heap_dispatches, stats_.cascaded};
  }
  /// Restore the clock/counter state. Only valid on a scheduler with no
  /// pending events (the restorer re-arms standing timers afterwards, which
  /// then receive seq numbers >= next_seq exactly as the saved run's
  /// re-armed timers did); throws std::logic_error otherwise.
  void restore_clock_state(const ClockState& s);

 private:
  static constexpr unsigned kGroupBits = 8;                // 256 buckets/level
  static constexpr unsigned kSlotsPerLevel = 1u << kGroupBits;
  static constexpr unsigned kLevels = 5;                   // 256^5 ps ≈ 1.1 s
  static constexpr unsigned kHorizonBits = kGroupBits * kLevels;
  static constexpr std::uint64_t kIndexMask = kSlotsPerLevel - 1;
  static constexpr unsigned kWordsPerLevel = kSlotsPerLevel / 64;

  enum class Where : std::uint8_t {
    kFree,    // on the free list
    kWheel,   // linked into a wheel bucket
    kHeap,    // referenced by a live heap entry
    kZombie,  // cancelled while in the heap; freed when its entry pops
  };

  /// Hot slot bookkeeping, split from the (larger, colder) callback cell so
  /// that cascades, cancels and peeks walk dense 32-byte records — two per
  /// cache line — and pool growth is a trivial copy.
  struct SlotMeta {
    Time t{Time::zero()};
    std::uint64_t seq{0};        // FIFO order among same-time events
    std::int32_t prev{-1};       // intrusive doubly-linked bucket list
    std::int32_t next{-1};
    std::uint32_t gen{1};        // bumped on every release; 0 never matches
    std::uint16_t bucket{0};     // level * kSlotsPerLevel + index
    Where where{Where::kFree};
  };
  static_assert(sizeof(SlotMeta) <= 32, "keep slot metadata cache-dense");

  struct Bucket {
    std::int32_t head{-1};
    std::int32_t tail{-1};
  };

  /// Heap entries are plain values; the callback stays in the slot pool.
  struct HeapEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    bool operator>(const HeapEntry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  static std::uint64_t ticks(Time t) {
    return static_cast<std::uint64_t>(t.count_ps());
  }

  void occ_set(unsigned level, unsigned index) {
    occupancy_[level][index >> 6] |= std::uint64_t{1} << (index & 63u);
    words_[level] |= static_cast<std::uint8_t>(1u << (index >> 6));
    levels_ |= 1u << level;
  }
  void occ_clear(unsigned level, unsigned index) {
    std::uint64_t& w = occupancy_[level][index >> 6];
    w &= ~(std::uint64_t{1} << (index & 63u));
    if (w == 0) {
      words_[level] &= static_cast<std::uint8_t>(~(1u << (index >> 6)));
      if (words_[level] == 0) levels_ &= ~(1u << level);
    }
  }
  /// Index of the earliest non-empty bucket of a non-empty level.
  [[nodiscard]] unsigned min_index(unsigned level) const {
    const auto w = static_cast<unsigned>(
        std::countr_zero(static_cast<unsigned>(words_[level])));
    return (w << 6) +
           static_cast<unsigned>(std::countr_zero(occupancy_[level][w]));
  }

  std::uint32_t acquire_slot();
  std::uint32_t schedule_slot(Time t);  // validate + acquire + enqueue
  void release_slot(std::uint32_t idx);
  void wheel_insert(std::uint32_t idx);
  void bucket_push(std::uint16_t bucket, std::uint32_t idx);
  void bucket_unlink(std::uint32_t idx);
  void advance_now_to(Time t);
  void prune_heap();
  bool step(Time horizon);
  bool dispatch_heap();
  void finish_dispatch(std::uint32_t idx);

  std::vector<SlotMeta> meta_;
  std::vector<Callback> cells_;  // cells_[i] is slot i's callback
  std::vector<std::uint32_t> free_;
  Bucket buckets_[kLevels * kSlotsPerLevel]{};
  // Three-deep occupancy hierarchy, finest to coarsest: bit b of
  // occupancy_[l][w] <=> bucket (l, 64w+b) non-empty; bit w of words_[l]
  // <=> occupancy_[l][w] != 0; bit l of levels_ <=> level l non-empty.
  std::uint64_t occupancy_[kLevels][kWordsPerLevel]{};
  std::uint8_t words_[kLevels]{};
  std::uint32_t levels_{0};
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  Time now_{Time::zero()};
  std::uint64_t next_seq_{0};
  std::size_t live_{0};
  std::uint64_t processed_{0};
  Stats stats_;
  telemetry::TelemetrySession* telemetry_{nullptr};
};

}  // namespace aetr::sim
