// Value-Change-Dump (IEEE 1364 VCD) waveform writer.
//
// Lets every experiment dump real waveforms viewable in GTKWave — used by
// the Fig. 2 reproduction (divided sampling clock) and the trace_replay
// example. Signals must all be declared before the first change is logged.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace aetr::sim {

/// Handle for a declared VCD signal.
struct VcdSignal {
  std::size_t index{0};
};

/// Streams value changes to a .vcd file. Times are written in picoseconds.
class VcdWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit VcdWriter(const std::string& path);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Declare a signal of `width` bits in module scope `scope`.
  /// All declarations must precede the first change().
  VcdSignal add_signal(const std::string& scope, const std::string& name,
                       unsigned width = 1);

  /// Record a value change at time t. Writing the header lazily on the
  /// first change; values are deduplicated per signal.
  void change(VcdSignal sig, std::uint64_t value, Time t);

  /// Flush and close the file (also done by the destructor).
  void close();

 private:
  struct Decl {
    std::string scope;
    std::string name;
    unsigned width;
    std::string id;           // VCD short identifier
    std::uint64_t last_value;
    bool has_value;
  };

  void write_header();
  void emit(const Decl& d, std::uint64_t value);
  void advance_time(Time t);

  std::ofstream out_;
  std::vector<Decl> decls_;
  bool header_written_{false};
  Time current_time_{Time::ps(-1)};
};

}  // namespace aetr::sim
