// F2 — fleet-level energy proportionality: energy-per-delivered-event and
// delivery-latency tails vs. fleet size N at several activity levels.
//
// Each cell of the (N, activity) grid is one run_fleet() call: N independent
// interfaces share one bandwidth-limited gateway uplink. At low N the fleet
// inherits the single-node story — energy per *delivered* event falls as
// activity rises (static power amortises over more events). At N = 1024 the
// shared link saturates: nodes keep burning energy but their words drop, so
// the fleet-level energy-per-delivered-event curve breaks away from the
// per-node one — the figure the ROADMAP names as the deliverable.
//
// Cells run sequentially; each fleet internally shards its nodes across the
// pool (--jobs forwarded), so the cell outputs — and therefore every file
// written here — are byte-identical for any --jobs value.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "fleet/fleet.hpp"
#include "obs/ledger.hpp"
#include "runtime/seed.hpp"
#include "sweeps/figures.hpp"
#include "util/artifacts.hpp"

namespace aetr::sweeps {

namespace {

std::string ffmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

struct FleetCell {
  std::size_t nodes;
  double activity;
  fleet::FleetResult result;
};

fleet::FleetConfig cell_config(std::size_t nodes, double activity,
                               std::uint64_t seed, bool quick,
                               bool fast_forward, bool health) {
  fleet::FleetConfig cfg;
  cfg.base.interface.fifo.batch_threshold = 64;
  cfg.base.interface.front_end.keep_records = false;
  cfg.base.fast_forward = fast_forward;
  cfg.health = health;
  cfg.nodes = nodes;
  cfg.gateways = 1;
  cfg.rate_hz = 30e3 * activity;
  cfg.events_per_node = quick ? 120 : 300;
  cfg.rate_spread = 0.1;
  // Full grid: 4e6 words/s keeps N <= 64 uncontended at full activity and
  // saturates hard at N = 1024 (30.7M offered). Quick shrinks the fleet, so
  // a smaller pipe keeps the contention/drop paths exercised.
  cfg.link.bandwidth_words_per_sec = quick ? 1.5e5 : 4e6;
  cfg.link.queue_words = quick ? 256 : 4096;
  cfg.seed = seed;
  return cfg;
}

FigureResult fleet_impl(const FigureOptions& opt) {
  const std::vector<std::size_t> fleet_sizes =
      opt.quick ? std::vector<std::size_t>{1, 4, 16}
                : std::vector<std::size_t>{1, 8, 64, 256, 1024};
  const std::vector<double> activities =
      opt.quick ? std::vector<double>{0.1, 1.0}
                : std::vector<double>{0.05, 0.25, 1.0};
  const std::uint64_t root = opt.seed ? opt.seed : 99;

  std::size_t total_nodes = 0;
  for (const std::size_t n : fleet_sizes) {
    total_nodes += n * activities.size();
  }

  const runtime::Row header{"nodes",
                            "activity",
                            "rate_hz",
                            "events_in",
                            "decoded",
                            "delivered",
                            "delivered_frac",
                            "energy_j",
                            "energy_per_delivered_uj",
                            "p50_ms",
                            "p99_ms",
                            "p999_ms",
                            "gw_util",
                            "link_drops",
                            "dead_drops"};
  const std::string points_csv =
      util::artifact_path("aetr_fleet_points.csv", opt.out_dir);
  runtime::CsvSink sink{points_csv};
  sink.begin(header);

  runtime::SweepReport report;
  report.threads = opt.jobs ? opt.jobs : std::thread::hardware_concurrency();
  std::vector<FleetCell> cells;
  std::size_t done_nodes = 0;
  std::size_t cell_index = 0;
  const auto t_sweep0 = std::chrono::steady_clock::now();
  for (const std::size_t n : fleet_sizes) {
    for (const double activity : activities) {
      const std::uint64_t cell_seed = runtime::derive_seed(root, cell_index);
      const auto cfg = cell_config(n, activity, cell_seed, opt.quick,
                                   opt.fast_forward, opt.ledger);
      fleet::FleetOptions fo;
      fo.jobs = opt.jobs;
      if (opt.progress) {
        fo.progress = [&opt, done_nodes, total_nodes](std::size_t done,
                                                      std::size_t) {
          opt.progress(done_nodes + done, total_nodes);
        };
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto res = fleet::run_fleet(cfg, fo);
      const auto t1 = std::chrono::steady_clock::now();
      done_nodes += n;

      runtime::JobOutput out;
      out.values = {static_cast<double>(n),
                    activity,
                    cfg.rate_hz,
                    static_cast<double>(res.events_in_total),
                    static_cast<double>(res.decoded_total),
                    static_cast<double>(res.delivered_total),
                    res.delivered_fraction(),
                    res.total_energy_j,
                    res.energy_per_delivered_j() * 1e6,
                    res.latency_p50_sec * 1e3,
                    res.latency_p99_sec * 1e3,
                    res.latency_p999_sec * 1e3,
                    res.gateways[0].utilization(),
                    static_cast<double>(res.dropped_link_total),
                    static_cast<double>(res.dropped_dead_total)};
      runtime::Row row;
      row.reserve(out.values.size());
      row.push_back(ffmt("%g", out.values[0]));
      row.push_back(ffmt("%g", activity));
      row.push_back(ffmt("%.6g", cfg.rate_hz));
      row.push_back(ffmt("%g", out.values[3]));
      row.push_back(ffmt("%g", out.values[4]));
      row.push_back(ffmt("%g", out.values[5]));
      row.push_back(ffmt("%.6g", out.values[6]));
      row.push_back(ffmt("%.8g", out.values[7]));
      row.push_back(ffmt("%.8g", out.values[8]));
      row.push_back(ffmt("%.6g", out.values[9]));
      row.push_back(ffmt("%.6g", out.values[10]));
      row.push_back(ffmt("%.6g", out.values[11]));
      row.push_back(ffmt("%.6g", out.values[12]));
      row.push_back(ffmt("%g", out.values[13]));
      row.push_back(ffmt("%g", out.values[14]));
      sink.row(row);

      runtime::JobMetrics jm;
      jm.index = cell_index;
      jm.seed = cell_seed;
      jm.tag = "N=" + ffmt("%g", out.values[0]) +
               " activity=" + ffmt("%g", activity);
      jm.wall_sec = std::chrono::duration<double>(t1 - t0).count();
      report.outputs.push_back(std::move(out));
      report.metrics.push_back(std::move(jm));
      cells.push_back(FleetCell{n, activity, std::move(res)});
      ++cell_index;
    }
  }
  sink.end();
  report.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_sweep0)
          .count();

  const auto cell_values = [&](std::size_t n, double activity)
      -> const std::vector<double>& {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].nodes == n && cells[i].activity == activity) {
        return report.outputs[i].values;
      }
    }
    return report.outputs[0].values;
  };

  Table table{{"N", "activity", "E/delivered (uJ)", "delivered", "p50 (ms)",
               "p99 (ms)", "p999 (ms)", "uplink util"}};
  for (const auto& out : report.outputs) {
    const auto& v = out.values;
    table.add_row({ffmt("%g", v[0]), ffmt("%g", v[1]), Table::num(v[8], 4),
                   Table::num(v[6], 4), Table::num(v[9], 4),
                   Table::num(v[10], 4), Table::num(v[11], 4),
                   Table::num(v[12], 3)});
  }
  const std::string csv = util::artifact_path("aetr_fleet.csv", opt.out_dir);
  table.write_csv(csv);

  // The machine-readable companion the acceptance criteria (and the
  // bench_report fleet mode) consume. Values are rendered with the same
  // deterministic formats as the CSV, so the file is byte-identical for any
  // --jobs value too.
  const std::string summary_path =
      util::artifact_path("aetr_fleet_summary.json", opt.out_dir);
  {
    std::ofstream js{summary_path};
    js << "{\n  \"figure\": \"fleet\",\n";
    js << "  \"seed\": " << root << ",\n";
    js << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n";
    js << "  \"cells\": [\n";
    for (std::size_t i = 0; i < report.outputs.size(); ++i) {
      const auto& v = report.outputs[i].values;
      js << "    {\"nodes\": " << ffmt("%g", v[0])
         << ", \"activity\": " << ffmt("%g", v[1])
         << ", \"delivered_fraction\": " << ffmt("%.6g", v[6])
         << ", \"energy_per_delivered_uj\": " << ffmt("%.8g", v[8])
         << ", \"p50_ms\": " << ffmt("%.6g", v[9])
         << ", \"p99_ms\": " << ffmt("%.6g", v[10])
         << ", \"p999_ms\": " << ffmt("%.6g", v[11])
         << ", \"gateway_utilization\": " << ffmt("%.6g", v[12]) << "}"
         << (i + 1 < report.outputs.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
  }

  // Health roll-up artifacts (--ledger): one wide CSV row per grid cell
  // with the fleet ledger's stage/state/outcome attribution and percentile
  // summaries, plus a per-cell ledger CSV + collapsed stack so the report
  // command (and flamegraph.pl) can render each cell. Cells run serially,
  // every number is sim-side, and the formats are fixed — byte-identical
  // for any --jobs value.
  if (opt.ledger) {
    const std::string health_csv =
        util::artifact_path("aetr_fleet_health.csv", opt.out_dir);
    std::ofstream hs{health_csv};
    hs << "nodes,activity";
    for (std::size_t s = 0; s < obs::kStageCount; ++s) {
      hs << ",e_" << obs::to_string(static_cast<obs::Stage>(s)) << "_j";
    }
    for (std::size_t s = 0; s < obs::kStateCount; ++s) {
      hs << ",t_" << obs::to_string(static_cast<obs::ClockState>(s)) << "_s";
    }
    for (std::size_t o = 0; o < obs::kOutcomeCount; ++o) {
      hs << ",n_" << obs::to_string(static_cast<obs::Outcome>(o));
    }
    for (std::size_t o = 0; o < obs::kOutcomeCount; ++o) {
      hs << ",e_" << obs::to_string(static_cast<obs::Outcome>(o)) << "_j";
    }
    hs << ",node_energy_p50_j,node_energy_p99_j,node_power_p50_w"
          ",node_power_p99_w,delivered_frac_p50,delivered_frac_min\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const fleet::FleetHealth& h = cells[i].result.health;
      hs << cells[i].nodes << ',' << ffmt("%g", cells[i].activity);
      for (const double e : h.fleet.stage_energy_j) {
        hs << ',' << ffmt("%.17g", e);
      }
      for (const double s : h.fleet.state_sec) hs << ',' << ffmt("%.17g", s);
      for (const std::uint64_t n_ev : h.fleet.outcome_events) {
        hs << ',' << n_ev;
      }
      for (const double e : h.fleet.outcome_energy_j) {
        hs << ',' << ffmt("%.17g", e);
      }
      hs << ',' << ffmt("%.17g", h.node_energy_p50_j) << ','
         << ffmt("%.17g", h.node_energy_p99_j) << ','
         << ffmt("%.17g", h.node_power_p50_w) << ','
         << ffmt("%.17g", h.node_power_p99_w) << ','
         << ffmt("%.17g", h.delivered_frac_p50) << ','
         << ffmt("%.17g", h.delivered_frac_min) << '\n';

      char stem[96];
      std::snprintf(stem, sizeof stem, "aetr_fleet_c%03zu", i);
      obs::write_ledger_csv(
          h.fleet,
          util::artifact_path(std::string{stem} + "_ledger.csv", opt.out_dir));
      obs::write_collapsed_stack(
          h.fleet,
          util::artifact_path(std::string{stem} + "_stack.txt", opt.out_dir));
    }
  }

  std::vector<Check> checks;
  if (!opt.quick) {
    const double act_hi = activities.back();

    // The subsystem's hard contract: node 0 of an N=1 fleet is a plain
    // run_scenario() run, bit for bit.
    {
      const FleetCell* one = nullptr;
      for (const auto& c : cells) {
        if (c.nodes == 1 && c.activity == act_hi) one = &c;
      }
      // Recompute the cell seed the same way the sweep loop derived it.
      std::uint64_t cell_seed = root;
      std::size_t idx = 0;
      for (const std::size_t n : fleet_sizes) {
        for (const double a : activities) {
          if (n == 1 && a == act_hi) cell_seed = runtime::derive_seed(root, idx);
          ++idx;
        }
      }
      const auto fc = cell_config(1, act_hi, cell_seed, opt.quick,
                                  opt.fast_forward, opt.ledger);
      const auto plain =
          core::run_scenario(fleet::node_scenario(fc, 0),
                             fleet::node_stream(fc, 0));
      const auto& node = one->result.nodes[0];
      const double plain_energy =
          plain.average_power_w * plain.sim_end.to_sec();
      const bool identical =
          node.energy_j == plain_energy &&
          node.average_power_w == plain.average_power_w &&
          node.events_in == plain.events_in &&
          node.decoded == plain.decoded.size();
      checks.push_back(Check{
          "N=1 node is bit-identical to a plain run_scenario() run",
          identical,
          identical ? ""
                    : ffmt("%.17g", node.energy_j) + " J vs " +
                          ffmt("%.17g", plain_energy) + " J"});
    }

    bool full_delivery = true;
    std::string fd_worst;
    for (const auto& c : cells) {
      if (c.nodes > 64) continue;
      const double frac = c.result.delivered_fraction();
      if (frac < 0.99) {
        full_delivery = false;
        fd_worst = "N=" + std::to_string(c.nodes) + " activity=" +
                   ffmt("%g", c.activity) + ": " + ffmt("%.4f", frac);
      }
    }
    checks.push_back(Check{"uncontended fleets (N <= 64) deliver >= 99%",
                           full_delivery, fd_worst});

    const double frac_big = cell_values(1024, act_hi)[6];
    checks.push_back(
        Check{"shared link saturates at N=1024 full activity (< 60% "
              "delivered)",
              frac_big < 0.6, ffmt("%.3f", frac_big) + " delivered"});

    bool proportional = true;
    std::string prop_worst;
    for (const std::size_t n : fleet_sizes) {
      if (n > 64) continue;
      for (std::size_t a = 1; a < activities.size(); ++a) {
        const double prev = cell_values(n, activities[a - 1])[8];
        const double cur = cell_values(n, activities[a])[8];
        if (cur >= prev) {
          proportional = false;
          prop_worst = "N=" + std::to_string(n) + ": " + ffmt("%.4g", cur) +
                       " uJ at activity " + ffmt("%g", activities[a]) +
                       " >= " + ffmt("%.4g", prev) + " uJ";
        }
      }
    }
    checks.push_back(Check{
        "energy per delivered event falls as activity rises (N <= 64)",
        proportional, prop_worst});

    bool linear = true;
    std::string lin_worst;
    const double e1 = cell_values(1, 0.25)[7];
    for (const std::size_t n : fleet_sizes) {
      const double per_node = cell_values(n, 0.25)[7] / static_cast<double>(n);
      if (e1 <= 0.0 || std::abs(per_node / e1 - 1.0) > 0.25) {
        linear = false;
        lin_worst = "N=" + std::to_string(n) + ": " +
                    ffmt("%.4g", per_node * 1e6) + " uJ/node vs " +
                    ffmt("%.4g", e1 * 1e6) + " uJ at N=1";
      }
    }
    checks.push_back(Check{
        "fleet energy stays ~linear in N (per-node energy within 25%)",
        linear, lin_worst});

    const double p99_big = cell_values(1024, act_hi)[10];
    const double p99_small = cell_values(8, act_hi)[10];
    checks.push_back(
        Check{"uplink contention stretches the latency tail at N=1024",
              p99_big > p99_small,
              ffmt("%.3f", p99_big) + " ms vs " + ffmt("%.3f", p99_small) +
                  " ms at N=8"});
  }

  return FigureResult{std::move(table), std::move(report), std::move(checks),
                      csv, points_csv};
}

}  // namespace

FigureResult run_fleet_figure(const FigureOptions& opt) {
  return fleet_impl(opt);
}

}  // namespace aetr::sweeps
