#include "sweeps/figures.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <ostream>
#include <utility>

#include "analysis/error.hpp"
#include "core/scenario.hpp"
#include "gen/sources.hpp"
#include "obs/ledger.hpp"
#include "power/model.hpp"
#include "runtime/sink.hpp"
#include "telemetry/telemetry.hpp"
#include "util/artifacts.hpp"

namespace aetr::sweeps {

namespace {

using runtime::GridPoint;
using runtime::JobContext;
using runtime::JobOutput;
using runtime::SweepGrid;

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

runtime::SweepOptions sweep_options(const FigureOptions& opt,
                                    std::uint64_t default_seed,
                                    runtime::Row header) {
  runtime::SweepOptions so;
  so.jobs = opt.jobs;
  so.seed = opt.seed ? opt.seed : default_seed;
  so.header = std::move(header);
  so.progress = opt.progress;
  return so;
}

Check make_check(std::string name, bool ok, std::string detail) {
  return Check{std::move(name), ok, std::move(detail)};
}

/// Per-job telemetry options with deterministic artifact names
/// (aetr_<figure>_j<NNN>_trace.json / _trace.csv / _metrics.csv). Jobs run
/// concurrently but each writes only its own files, and every recorded
/// timestamp is sim time, so the sweep's telemetry output is byte-identical
/// for any `jobs` value. Returns any() == false when neither flag is set.
telemetry::SessionOptions job_telemetry(const FigureOptions& opt,
                                        const char* figure,
                                        std::size_t job_index) {
  telemetry::SessionOptions so;
  so.trace = opt.trace;
  so.metrics = opt.metrics;
  if (!so.any()) return so;
  char stem[96];
  std::snprintf(stem, sizeof stem, "aetr_%s_j%03zu", figure, job_index);
  if (so.trace) {
    so.trace_json_path =
        util::artifact_path(std::string{stem} + "_trace.json", opt.out_dir);
    so.trace_csv_path =
        util::artifact_path(std::string{stem} + "_trace.csv", opt.out_dir);
  }
  if (so.metrics) {
    so.metrics_csv_path =
        util::artifact_path(std::string{stem} + "_metrics.csv", opt.out_dir);
  }
  return so;
}

// --- Fig. 6: average relative timestamp error vs. event rate ---------------

FigureResult fig6_impl(const FigureOptions& opt) {
  const std::vector<double> thetas{16, 32, 64};
  const std::size_t points = opt.quick ? 9 : 27;
  const std::size_t n_events = opt.quick ? 800 : 6000;

  SweepGrid grid;
  grid.axis("theta", thetas)
      .axis("rate", SweepGrid::log_space(100.0, 2e6, points));

  const auto job = [n_events](const JobContext& ctx) {
    clockgen::ScheduleConfig cfg;
    cfg.theta_div = static_cast<std::uint32_t>(ctx.point.at("theta"));
    cfg.n_div = 8;
    analysis::SweepOptions so;
    so.n_events = n_events;
    so.seed = ctx.seed;
    const double rate = ctx.point.at("rate");
    const auto stats = analysis::sweep_error(cfg, rate, so);
    JobOutput out;
    out.values = {stats.weighted_rel_error(), stats.frac_saturated()};
    out.rows = {{fmt("%g", ctx.point.at("theta")), fmt("%.6g", rate),
                 fmt("%.6g", stats.weighted_rel_error()),
                 fmt("%.6g", stats.frac_saturated())}};
    return out;
  };

  const std::string points_csv =
      util::artifact_path("aetr_fig6_points.csv", opt.out_dir);
  runtime::CsvSink sink{points_csv};
  const auto report = runtime::run_sweep(
      grid, job, sweep_options(opt, 1234, {"theta", "rate", "err", "sat"}),
      &sink);

  const auto& rates = grid.axis_at(1).values;
  const auto err = [&](std::size_t t, std::size_t r) {
    return report.outputs[t * points + r].values[0];
  };
  const auto sat = [&](std::size_t t, std::size_t r) {
    return report.outputs[t * points + r].values[1];
  };

  clockgen::ScheduleConfig cfg64;
  cfg64.theta_div = 64;
  cfg64.n_div = 8;

  Table table{{"rate (evt/s)", "err theta=16", "err theta=32", "err theta=64",
               "region (theta=64)", "sat% (64)"}};
  for (std::size_t r = 0; r < points; ++r) {
    table.add_row({Table::num(rates[r], 4), Table::num(err(0, r), 3),
                   Table::num(err(1, r), 3), Table::num(err(2, r), 3),
                   analysis::to_string(analysis::classify_region(cfg64,
                                                                 rates[r])),
                   Table::num(100.0 * sat(2, r), 3)});
  }
  const std::string csv = util::artifact_path("aetr_fig6.csv", opt.out_dir);
  table.write_csv(csv);

  std::vector<Check> checks;
  if (!opt.quick) {
    const double bound64 = analysis::analytic_error_bound(64);
    // The paper quotes the bound "from 1 kevt/s to 550 kevt/s"; just above
    // the inactive boundary a residual saturated fraction still dominates,
    // so score the bound over the saturation-free part of the active region.
    double worst_active = 0.0;
    for (std::size_t r = 0; r < points; ++r) {
      if (analysis::classify_region(cfg64, rates[r]) ==
              analysis::Region::kActive &&
          sat(2, r) < 0.02) {
        worst_active = std::max(worst_active, err(2, r));
      }
    }
    checks.push_back(make_check(
        "active-region error below analytic bound (theta=64)",
        worst_active < bound64,
        fmt("%.4f", worst_active) + " vs bound " + fmt("%.4f", bound64)));

    const std::size_t near50k = static_cast<std::size_t>(
        std::min_element(rates.begin(), rates.end(),
                         [](double a, double b) {
                           return std::abs(a - 50e3) < std::abs(b - 50e3);
                         }) -
        rates.begin());
    const double accuracy = 1.0 - err(2, near50k);
    checks.push_back(make_check("accuracy near 50 kevt/s > 97% (theta=64)",
                                accuracy > 0.97,
                                fmt("%.2f", 100.0 * accuracy) + " %"));
  }

  return FigureResult{std::move(table), report, std::move(checks), csv,
                      points_csv};
}

// --- Fig. 8: average interface power vs. event rate ------------------------

core::InterfaceConfig fig8_config(std::uint32_t theta, bool divide) {
  core::InterfaceConfig cfg;
  cfg.clock.theta_div = theta;
  cfg.clock.n_div = 8;
  cfg.clock.divide_enabled = divide;
  cfg.clock.shutdown_enabled = divide;
  cfg.front_end.keep_records = false;  // long runs; no need for logs
  cfg.fifo.batch_threshold = 512;
  return cfg;
}

double fig8_measure_power(const core::InterfaceConfig& cfg, double rate_hz,
                          std::uint64_t seed,
                          const telemetry::SessionOptions& tel = {},
                          bool fast_forward = true,
                          const std::string& ledger_stem = {}) {
  core::ScenarioConfig sc;
  sc.interface = cfg;
  sc.telemetry = core::TelemetryChoice::owned(tel);
  sc.fast_forward = fast_forward;
  sc.energy_ledger = !ledger_stem.empty();
  core::RunResult r;
  if (rate_hz <= 0.0) {
    // "Absence of spikes": a long idle window, clock long shut down.
    sc.cooldown = Time::sec(2.0);
    r = core::run_scenario(sc, {});
  } else {
    // Enough events for a stable average, enough window to see shutdown.
    const auto n_events =
        static_cast<std::size_t>(std::clamp(rate_hz * 0.5, 300.0, 20000.0));
    gen::LfsrRateSource src{rate_hz, Frequency::mhz(30.0), 128,
                            static_cast<std::uint32_t>(seed),
                            static_cast<std::uint32_t>(seed >> 32)};
    sc.cooldown = Time::ms(0.1);
    r = core::run_scenario(sc, src, n_events);
  }
  if (sc.energy_ledger) {
    obs::write_ledger_csv(r.ledger, ledger_stem + "_ledger.csv");
    obs::write_collapsed_stack(r.ledger, ledger_stem + "_stack.txt");
  }
  return r.average_power_w;
}

FigureResult fig8_impl(const FigureOptions& opt) {
  // theta = 0 encodes the paper's no-division baseline (theta_div = 64
  // hardware with the divider and shutdown disabled).
  const std::vector<double> thetas =
      opt.quick ? std::vector<double>{64, 0}
                : std::vector<double>{64, 32, 16, 0};
  // Rate 0 is the paper's "absence of spikes" anchor; the rest spans the
  // figure's 0.01-800 kevt/s axis.
  const std::vector<double> rates =
      opt.quick ? std::vector<double>{0, 10, 1e3, 100e3}
                : std::vector<double>{0,    10,    30,    100,   300,
                                      1e3,  3e3,   10e3,  30e3,  100e3,
                                      300e3, 550e3, 800e3};

  SweepGrid grid;
  grid.axis("theta", thetas).axis("rate", rates);

  const auto job = [&opt](const JobContext& ctx) {
    const auto theta = static_cast<std::uint32_t>(ctx.point.at("theta"));
    const double rate = ctx.point.at("rate");
    const auto cfg = fig8_config(theta ? theta : 64, theta != 0);
    std::string ledger_stem;
    if (opt.ledger) {
      char stem[96];
      std::snprintf(stem, sizeof stem, "aetr_fig8_j%03zu", ctx.index);
      ledger_stem = util::artifact_path(stem, opt.out_dir);
    }
    const double p =
        fig8_measure_power(cfg, rate, ctx.seed,
                           job_telemetry(opt, "fig8", ctx.index),
                           opt.fast_forward, ledger_stem);
    JobOutput out;
    out.values = {p};
    out.rows = {{fmt("%g", ctx.point.at("theta")), fmt("%.6g", rate),
                 fmt("%.8g", p * 1e3)}};
    return out;
  };

  const std::string points_csv =
      util::artifact_path("aetr_fig8_points.csv", opt.out_dir);
  runtime::CsvSink sink{points_csv};
  const auto report = runtime::run_sweep(
      grid, job, sweep_options(opt, 8, {"theta", "rate", "power_mw"}), &sink);

  const std::size_t n_rates = rates.size();
  const auto power = [&](std::size_t t, std::size_t r) {
    return report.outputs[t * n_rates + r].values[0];
  };
  const std::size_t naive_ord = thetas.size() - 1;  // theta = 0 is last

  // Eq. 1: E_spike estimated from the high-activity region (top rate).
  const power::PowerModel model;
  const double espike =
      power::estimate_espike_j(power(naive_ord, n_rates - 1),
                               model.calibration().static_w, rates.back());

  std::vector<std::string> header{"rate (evt/s)"};
  for (const double t : thetas) {
    header.push_back(t != 0 ? "P mW theta=" + fmt("%g", t) : "P mW no-div");
  }
  header.push_back("P mW ideal");
  Table table{header};
  for (std::size_t r = 0; r < n_rates; ++r) {
    std::vector<std::string> row{Table::num(rates[r], 4)};
    for (std::size_t t = 0; t < thetas.size(); ++t) {
      row.push_back(Table::num(power(t, r) * 1e3, 4));
    }
    row.push_back(Table::num(model.ideal_power_w(rates[r], espike) * 1e3, 4));
    table.add_row(std::move(row));
  }
  const std::string csv = util::artifact_path("aetr_fig8.csv", opt.out_dir);
  table.write_csv(csv);

  std::vector<Check> checks;
  if (!opt.quick) {
    const auto at_rate = [&](std::size_t t, double r) {
      for (std::size_t i = 0; i < n_rates; ++i) {
        if (rates[i] == r) return power(t, i);
      }
      return 0.0;
    };
    const double p550k = at_rate(0, 550e3);
    const double p_idle = at_rate(0, 0);
    const double span = p550k / p_idle;
    checks.push_back(make_check("E_spike estimate in 2-10 nJ",
                                espike > 2e-9 && espike < 10e-9,
                                fmt("%.2f", espike * 1e9) + " nJ"));
    checks.push_back(make_check("power at 550 kevt/s ~ 4.5 mW",
                                p550k > 3e-3 && p550k < 6e-3,
                                fmt("%.2f", p550k * 1e3) + " mW"));
    checks.push_back(make_check("power with no spikes ~ 50 uW",
                                p_idle > 20e-6 && p_idle < 100e-6,
                                fmt("%.1f", p_idle * 1e6) + " uW"));
    checks.push_back(make_check("proportionality span > 20x (paper: ~90x)",
                                span > 20.0, fmt("%.0f", span) + "x"));
    double best_saving = 0.0;
    double best_rate = 0.0;
    for (std::size_t i = 0; i < n_rates; ++i) {
      if (rates[i] < 1e3 || rates[i] > 300e3) continue;  // active region
      const double saving = 1.0 - power(0, i) / power(naive_ord, i);
      if (saving > best_saving) {
        best_saving = saving;
        best_rate = rates[i];
      }
    }
    checks.push_back(make_check(
        "max active-region saving > 30% (paper: up to 55%)",
        best_saving > 0.30,
        fmt("%.0f", 100.0 * best_saving) + " % at " + fmt("%.3g", best_rate) +
            " evt/s"));
    const double flatness = at_rate(naive_ord, 10) / at_rate(naive_ord, 550e3);
    checks.push_back(make_check("no-division baseline flat",
                                flatness > 0.7 && flatness < 1.3,
                                "P(10)/P(550k) = " + fmt("%.2f", flatness)));
  }

  return FigureResult{std::move(table), report, std::move(checks), csv,
                      points_csv};
}

// --- Ablation A1: the N_div knob -------------------------------------------

FigureResult ablation_ndiv_impl(const FigureOptions& opt) {
  const std::vector<double> ndivs = opt.quick
                                        ? std::vector<double>{2, 8}
                                        : std::vector<double>{2, 4, 6, 8, 10};
  const std::size_t n_events = opt.quick ? 400 : 1200;

  SweepGrid grid;
  grid.axis("n_div", ndivs);

  const auto job = [n_events, &opt](const JobContext& ctx) {
    const auto n_div = static_cast<std::uint32_t>(ctx.point.at("n_div"));
    clockgen::ScheduleConfig sc;
    sc.theta_div = 64;
    sc.n_div = n_div;
    const clockgen::SamplingSchedule schedule{sc};
    const double t_max = schedule.awake_span().to_sec();
    const double flex = 1.0 / t_max;

    const auto power_at = [&](double rate_hz, std::uint64_t seed) {
      core::ScenarioConfig sc;
      sc.interface.clock.theta_div = 64;
      sc.interface.clock.n_div = n_div;
      sc.interface.front_end.keep_records = false;
      sc.fast_forward = opt.fast_forward;
      gen::PoissonSource src{rate_hz, 128, seed};
      const auto n =
          static_cast<std::size_t>(std::clamp(rate_hz * 0.3, 200.0, 5000.0));
      return core::run_scenario(sc, src, n).average_power_w;
    };

    analysis::SweepOptions so;
    so.n_events = n_events;
    so.seed = ctx.seed;
    const auto err_lo = analysis::sweep_error(sc, 2.0 * flex, so);
    const auto err_hi = analysis::sweep_error(sc, 20.0 * flex, so);

    JobOutput out;
    out.values = {t_max,
                  flex,
                  power_at(flex / 4.0, runtime::splitmix64(ctx.seed)),
                  power_at(flex * 4.0, runtime::splitmix64(ctx.seed + 1)),
                  err_lo.frac_saturated(),
                  err_hi.frac_saturated()};
    out.rows = {{fmt("%g", ctx.point.at("n_div")), fmt("%.6g", t_max),
                 fmt("%.6g", flex), fmt("%.6g", out.values[2]),
                 fmt("%.6g", out.values[3]), fmt("%.6g", out.values[4]),
                 fmt("%.6g", out.values[5])}};
    return out;
  };

  const std::string points_csv =
      util::artifact_path("aetr_ablation_ndiv_points.csv", opt.out_dir);
  runtime::CsvSink sink{points_csv};
  const auto report = runtime::run_sweep(
      grid, job,
      sweep_options(opt, 5,
                    {"n_div", "t_max_s", "flex_hz", "p_w_flex_quarter",
                     "p_w_flex_x4", "sat_2flex", "sat_20flex"}),
      &sink);

  Table table{{"N_div", "T_max", "flex rate 1/T_max (evt/s)",
               "P @ flex/4 (mW)", "P @ 4*flex (mW)", "sat% @ 2/T_max",
               "sat% @ 20/T_max"}};
  for (std::size_t i = 0; i < ndivs.size(); ++i) {
    const auto& v = report.outputs[i].values;
    clockgen::ScheduleConfig sc;
    sc.theta_div = 64;
    sc.n_div = static_cast<std::uint32_t>(ndivs[i]);
    table.add_row({fmt("%g", ndivs[i]),
                   clockgen::SamplingSchedule{sc}.awake_span().to_string(),
                   Table::num(v[1], 4), Table::num(v[2] * 1e3, 4),
                   Table::num(v[3] * 1e3, 4), Table::num(100.0 * v[4], 3),
                   Table::num(100.0 * v[5], 3)});
  }
  const std::string csv =
      util::artifact_path("aetr_ablation_ndiv.csv", opt.out_dir);
  table.write_csv(csv);

  // Internal consistency: both boundaries must slide together as N_div
  // grows — that is the whole point of the knob (§5.2).
  std::vector<Check> checks;
  bool tmax_monotonic = true;
  bool power_ordered = true;
  bool sat_ordered = true;
  for (std::size_t i = 0; i < ndivs.size(); ++i) {
    const auto& v = report.outputs[i].values;
    if (i && v[0] <= report.outputs[i - 1].values[0]) tmax_monotonic = false;
    if (v[2] >= v[3]) power_ordered = false;
    if (v[4] <= v[5]) sat_ordered = false;
  }
  checks.push_back(make_check("T_max grows monotonically with N_div",
                              tmax_monotonic, ""));
  checks.push_back(make_check("power below flex < power above flex",
                              power_ordered, ""));
  checks.push_back(make_check(
      "saturation near the flex exceeds saturation well above it",
      sat_ordered, ""));

  return FigureResult{std::move(table), report, std::move(checks), csv,
                      points_csv};
}

// --- Ablation A4: DES vs. algorithmic model --------------------------------

FigureResult ablation_agreement_impl(const FigureOptions& opt) {
  const std::vector<double> thetas =
      opt.quick ? std::vector<double>{64} : std::vector<double>{16, 64};
  const std::vector<double> rates =
      opt.quick ? std::vector<double>{3e3, 3e4}
                : std::vector<double>{3e3, 3e4, 3e5};
  const std::size_t n_events = opt.quick ? 1000 : 5000;

  SweepGrid grid;
  grid.axis("theta", thetas).axis("rate", rates);

  const auto job = [n_events, &opt](const JobContext& ctx) {
    const auto theta = static_cast<std::uint32_t>(ctx.point.at("theta"));
    const double rate = ctx.point.at("rate");
    clockgen::ScheduleConfig sc;
    sc.theta_div = theta;
    sc.n_div = 8;

    // All three paths consume the same seed, hence (for the two model
    // variants) the same Poisson stream — the measured deltas isolate the
    // synchroniser and the handshake, not sampling noise.
    analysis::SweepOptions ideal;
    ideal.n_events = n_events;
    ideal.seed = ctx.seed;
    const auto model_err = analysis::sweep_error(sc, rate, ideal);

    analysis::SweepOptions synced = ideal;
    synced.sync_edges = 2;
    const auto sync_err = analysis::sweep_error(sc, rate, synced);

    core::ScenarioConfig run_sc;
    run_sc.interface.clock.theta_div = theta;
    run_sc.interface.fifo.batch_threshold = 512;
    run_sc.fast_forward = opt.fast_forward;
    gen::PoissonSource src{rate, 128, ctx.seed, Time::ns(130.0)};
    const auto events = gen::take(src, n_events);
    run_sc.telemetry = core::TelemetryChoice::owned(
        job_telemetry(opt, "ablation_agreement", ctx.index));
    const auto r = core::run_scenario(run_sc, events);

    JobOutput out;
    out.values = {model_err.weighted_rel_error(),
                  sync_err.weighted_rel_error(),
                  r.error.weighted_rel_error()};
    out.rows = {{fmt("%g", ctx.point.at("theta")), fmt("%.6g", rate),
                 fmt("%.6g", out.values[0]), fmt("%.6g", out.values[1]),
                 fmt("%.6g", out.values[2])}};
    return out;
  };

  const std::string points_csv =
      util::artifact_path("aetr_ablation_agreement_points.csv", opt.out_dir);
  runtime::CsvSink sink{points_csv};
  const auto report = runtime::run_sweep(
      grid, job,
      sweep_options(opt, 42,
                    {"theta", "rate", "model_err", "sync_err", "des_err"}),
      &sink);

  // The legacy bench printed a wall-clock throughput column inside the
  // CSV; that column is inherently nondeterministic, so it now lives in
  // the sweep metrics (report.metrics[i].wall_sec) instead and the CSV
  // stays byte-identical across runs and thread counts.
  Table table{{"rate (evt/s)", "theta", "model err", "model+sync err",
               "DES err"}};
  std::vector<Check> checks;
  bool sync_closes_gap = true;
  std::string worst;
  for (std::size_t t = 0; t < thetas.size(); ++t) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const auto& v = report.outputs[t * rates.size() + r].values;
      table.add_row({Table::num(rates[r], 4), fmt("%g", thetas[t]),
                     Table::num(v[0], 3), Table::num(v[1], 3),
                     Table::num(v[2], 3)});
      // model+sync must track the DES within 15 % (+ small absolute floor).
      if (std::abs(v[1] - v[2]) > 0.15 * v[2] + 0.005) {
        sync_closes_gap = false;
        worst = "theta=" + fmt("%g", thetas[t]) + " rate=" +
                fmt("%g", rates[r]) + ": sync " + fmt("%.4f", v[1]) +
                " vs DES " + fmt("%.4f", v[2]);
      }
    }
  }
  checks.push_back(make_check("model+sync tracks the DES within 15%",
                              sync_closes_gap, worst));

  const std::string csv =
      util::artifact_path("aetr_ablation_agreement.csv", opt.out_dir);
  table.write_csv(csv);

  return FigureResult{std::move(table), report, std::move(checks), csv,
                      points_csv};
}

// --- Faults: accuracy / power degradation vs. fault rate -------------------

// The per-level plan is fault::scaled_plan — shared with the optimizer's
// robust-evaluation mode. All levels share ONE fault seed (derived from the
// sweep's root, not the per-job seed) and the event stream is likewise
// shared, so the curves are coupled: a glitch injected at a low level is,
// with high probability, also injected at every higher level.

FigureResult faults_impl(const FigureOptions& opt) {
  const std::vector<double> levels =
      opt.quick ? std::vector<double>{0, 1e-2, 5e-2}
                : std::vector<double>{0, 2e-3, 1e-2, 3e-2, 1e-1};
  const std::size_t n_events = opt.quick ? 600 : 3000;
  const double rate_hz = 30e3;
  const std::uint64_t root = opt.seed ? opt.seed : 77;

  // The SAME stream and the SAME fault seed for every level — the whole
  // point of the figure is the marginal effect of the level knob.
  const std::uint64_t stream_seed = runtime::derive_seed(root, 1);
  const std::uint64_t fault_seed = runtime::derive_seed(root, 2);

  SweepGrid grid;
  grid.axis("level", levels);

  const bool fast_forward = opt.fast_forward;
  const auto scenario_at = [=](double level) {
    core::ScenarioConfig sc;
    sc.interface.fifo.batch_threshold = 64;
    sc.fast_forward = fast_forward;
    if (level > 0.0) sc.faults = fault::scaled_plan(level, fault_seed);
    return sc;
  };
  const auto stream = [=] {
    gen::PoissonSource src{rate_hz, 128, stream_seed, Time::ns(130.0)};
    return gen::take(src, n_events);
  };

  const auto job = [&](const JobContext& ctx) {
    const double level = ctx.point.at("level");
    const auto events = stream();
    const auto r = core::run_scenario(scenario_at(level), events);
    const double delivered =
        r.events_in ? static_cast<double>(r.decoded.size()) /
                          static_cast<double>(r.events_in)
                    : 1.0;
    // The degradation score the monotonicity check runs on: timestamp
    // error plus the fraction of events the pipeline failed to deliver.
    const double degradation =
        r.error.weighted_rel_error() + (1.0 - delivered);
    JobOutput out;
    out.values = {r.error.weighted_rel_error(),
                  delivered,
                  r.average_power_w,
                  static_cast<double>(r.faults.injected_total()),
                  static_cast<double>(r.faults.recovered_total()),
                  degradation};
    out.rows = {{fmt("%g", level), fmt("%.6g", out.values[0]),
                 fmt("%.6g", delivered), fmt("%.8g", r.average_power_w * 1e3),
                 fmt("%g", out.values[3]), fmt("%g", out.values[4]),
                 fmt("%g", static_cast<double>(r.faults.watchdog_resyncs)),
                 fmt("%g", static_cast<double>(r.faults.crc_rejected_words))}};
    return out;
  };

  const std::string points_csv =
      util::artifact_path("aetr_faults_points.csv", opt.out_dir);
  runtime::CsvSink sink{points_csv};
  const auto report = runtime::run_sweep(
      grid, job,
      sweep_options(opt, 77,
                    {"level", "err", "delivered", "power_mw", "injected",
                     "recovered", "watchdog_resyncs", "crc_rejected_words"}),
      &sink);

  Table table{{"fault level", "ts err", "delivered", "P (mW)", "injected",
               "recovered"}};
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& v = report.outputs[i].values;
    table.add_row({fmt("%g", levels[i]), Table::num(v[0], 3),
                   Table::num(v[1], 4), Table::num(v[2] * 1e3, 4),
                   fmt("%g", v[3]), fmt("%g", v[4])});
  }
  const std::string csv = util::artifact_path("aetr_faults.csv", opt.out_dir);
  table.write_csv(csv);

  std::vector<Check> checks;
  {
    // Zero-rate identity: an empty plan must be byte-identical to a run
    // with no fault plumbing at all (the injector is simply absent).
    const auto events = stream();
    const auto baseline = core::run_scenario(scenario_at(0.0), events);
    const auto& v0 = report.outputs[0].values;
    const bool identical =
        baseline.error.weighted_rel_error() == v0[0] &&
        baseline.average_power_w == v0[2] &&
        static_cast<double>(baseline.decoded.size()) ==
            v0[1] * static_cast<double>(baseline.events_in);
    checks.push_back(make_check(
        "zero fault level is bit-identical to the fault-free baseline",
        identical,
        identical ? "" : fmt("%.6g", v0[0]) + " vs " +
                             fmt("%.6g", baseline.error.weighted_rel_error())));
  }
  bool monotone = true;
  std::string worst;
  for (std::size_t i = 1; i < levels.size(); ++i) {
    const double prev = report.outputs[i - 1].values[5];
    const double cur = report.outputs[i].values[5];
    if (cur < prev) {
      monotone = false;
      worst = "level " + fmt("%g", levels[i]) + ": " + fmt("%.4f", cur) +
              " < " + fmt("%.4f", prev);
    }
  }
  checks.push_back(make_check(
      "degradation (err + loss) is monotone in the fault level", monotone,
      worst));
  if (!opt.quick) {
    const auto& top = report.outputs.back().values;
    checks.push_back(make_check(
        "recovery engages at the top fault level (recovered > 0)",
        top[4] > 0.0, fmt("%g", top[4]) + " recoveries"));
  }

  return FigureResult{std::move(table), report, std::move(checks), csv,
                      points_csv};
}

}  // namespace

FigureResult run_fig6(const FigureOptions& opt) { return fig6_impl(opt); }
FigureResult run_fig8(const FigureOptions& opt) { return fig8_impl(opt); }
FigureResult run_ablation_ndiv(const FigureOptions& opt) {
  return ablation_ndiv_impl(opt);
}
FigureResult run_ablation_agreement(const FigureOptions& opt) {
  return ablation_agreement_impl(opt);
}
FigureResult run_faults(const FigureOptions& opt) { return faults_impl(opt); }

const std::vector<FigureDef>& figures() {
  static const std::vector<FigureDef> defs{
      {"fig6", "Fig. 6 — avg relative timestamp error vs. event rate",
       &run_fig6},
      {"fig8", "Fig. 8 — average interface power vs. event rate", &run_fig8},
      {"ablation-ndiv", "A1 — N_div as the max-measurable-interval knob",
       &run_ablation_ndiv},
      {"ablation-agreement", "A4 — cycle-level DES vs. algorithmic model",
       &run_ablation_agreement},
      {"faults", "R1 — accuracy/power degradation vs. injected fault rate",
       &run_faults},
      {"fleet",
       "F2 — fleet energy-per-delivered-event and latency tails vs. N nodes",
       &run_fleet_figure},
  };
  return defs;
}

const FigureDef* find_figure(const std::string& name) {
  for (const auto& d : figures()) {
    if (name == d.name) return &d;
  }
  return nullptr;
}

int report_figure(const FigureResult& result, std::ostream& os) {
  result.table.print(os);
  os << "\nseries written to " << result.csv_path << " (per-job rows: "
     << result.points_csv_path << ")\n";
  if (!result.checks.empty()) {
    os << "\nchecks:\n";
    for (const auto& c : result.checks) {
      os << "  [" << (c.ok ? " ok " : "FAIL") << "] " << c.name;
      if (!c.detail.empty()) os << "  (" << c.detail << ")";
      os << "\n";
    }
  }
  const auto& rep = result.report;
  char line[160];
  std::snprintf(line, sizeof line,
                "\nsweep: %zu jobs on %zu threads in %.3f s wall"
                " (%.3f s busy, %.1f jobs/s, %llu steals)\n",
                rep.metrics.size(), rep.threads, rep.wall_sec, rep.busy_sec(),
                rep.jobs_per_sec(),
                static_cast<unsigned long long>(rep.steals));
  os << line;
  return result.ok() ? 0 : 1;
}

}  // namespace aetr::sweeps
