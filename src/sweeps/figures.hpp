// Figure/ablation sweep definitions on top of aetr::runtime.
//
// Each run_*() builds a parameter grid, maps one simulation job per grid
// point onto the work-stealing pool, and post-processes the ordered outputs
// into the paper-style table, the CSV series, and the self-checks the
// legacy bench mains used to hand-roll sequentially. The bench binaries
// and the `aetr-sweep` CLI are both thin wrappers over these functions, so
// a figure is defined in exactly one place.
//
// Determinism: for a fixed (figure, seed, grid) every output file is
// byte-identical whatever `jobs` is — see runtime/sweep.hpp for the
// contract. Figure default seeds reproduce the published repo numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/sweep.hpp"
#include "util/table.hpp"

namespace aetr::sweeps {

struct FigureOptions {
  /// Worker threads; 0 = hardware_concurrency.
  std::size_t jobs = 0;
  /// Root seed; 0 = the figure's own default (stable across releases).
  std::uint64_t seed = 0;
  /// Output directory for CSV series; "" = results/ (or $AETR_OUT).
  std::string out_dir;
  /// Reduced grid + event counts for tests and smoke runs. Paper checks
  /// are skipped: the thresholds are only meaningful on the full grid.
  bool quick = false;
  /// Per-job sim-time telemetry for the figures that run the DES pipeline
  /// (fig8, ablation-agreement). Each job writes deterministically named
  /// artifacts — aetr_<figure>_j<NNN>_trace.json/.csv, _metrics.csv — into
  /// the same directory as the series CSVs; outputs are byte-identical for
  /// any `jobs` value. No-ops when the build has AETR_TELEMETRY=0.
  bool trace = false;
  bool metrics = false;
  /// Per-job energy-attribution ledgers (obs/ledger.hpp) for the figures
  /// that run the DES pipeline (fig8) and the fleet health roll-up for the
  /// fleet figure. Each job writes aetr_<figure>_j<NNN>_ledger.csv and
  /// _stack.txt (collapsed-stack flame graph) next to the series CSVs; the
  /// fleet figure writes aetr_fleet_health.csv. Byte-identical for any
  /// `jobs` value, and — unlike telemetry — the ledger never disqualifies
  /// the fast path.
  bool ledger = false;
  /// Idle-skip fast path for the figures that run the DES pipeline (see
  /// core/fast_path.hpp). Results are bit-identical either way; turning it
  /// off (`aetr-sweep --no-fast-forward`) forces the reference event-driven
  /// path — the CI determinism job diffs the two. Figures that enable
  /// per-job telemetry fall back to the reference path regardless.
  bool fast_forward = true;
  /// Forwarded to runtime::SweepOptions::progress.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// One self-check against the paper (or internal consistency).
struct Check {
  std::string name;
  bool ok{false};
  std::string detail;
};

struct FigureResult {
  Table table;                    ///< the paper-style series table
  runtime::SweepReport report;    ///< per-job + whole-sweep metrics
  std::vector<Check> checks;      ///< empty in --quick mode
  std::string csv_path;           ///< main series CSV
  std::string points_csv_path;    ///< long-format per-job CSV (streamed)

  [[nodiscard]] bool ok() const {
    for (const auto& c : checks) {
      if (!c.ok) return false;
    }
    return true;
  }
};

FigureResult run_fig6(const FigureOptions& opt);
FigureResult run_fig8(const FigureOptions& opt);
FigureResult run_ablation_ndiv(const FigureOptions& opt);
FigureResult run_ablation_agreement(const FigureOptions& opt);
/// R1: scenario runs under a scaled FaultPlan — timestamp error, delivered
/// fraction and power vs. the fault level, with the zero level checked
/// bit-identical against a fault-free baseline.
FigureResult run_faults(const FigureOptions& opt);
/// F2: fleet-level energy proportionality — energy-per-delivered-event and
/// delivery-latency tails vs. fleet size N at several activity levels, N
/// interfaces contending for one bandwidth-limited gateway uplink
/// (fleet/fleet.hpp). Writes aetr_fleet.csv, aetr_fleet_points.csv and
/// aetr_fleet_summary.json.
FigureResult run_fleet_figure(const FigureOptions& opt);

/// Registry shared by the CLI and the bench mains.
struct FigureDef {
  const char* name;     ///< CLI subcommand ("fig6", "ablation-ndiv", ...)
  const char* summary;
  FigureResult (*run)(const FigureOptions&);
};
[[nodiscard]] const std::vector<FigureDef>& figures();
[[nodiscard]] const FigureDef* find_figure(const std::string& name);

/// Print the table, the checks, and the sweep metrics; returns 0 when all
/// checks passed, 1 otherwise — the bench/CI exit code.
int report_figure(const FigureResult& result, std::ostream& os);

}  // namespace aetr::sweeps
