// Spike stimulus generators.
//
// Every evaluation in the paper is driven by one of these:
//  * PoissonSource      — Fig. 6 error sweeps ("Poisson distributed spike
//                         stream" fed to the Matlab model);
//  * LfsrRateSource     — Fig. 8 power sweeps (the paper adds "a variable
//                         rate pseudo-random spike generator based on a
//                         linear-feedback shift register" to the FPGA);
//  * BurstSource        — speech-like activity for ablations;
//  * RegularSource      — deterministic streams for protocol tests;
//  * TraceSource        — replay of recorded streams (incl. cochlea output);
//  * MergeSource        — combine sources (multi-sensor scenarios).
//
// Sources are pull-based iterators over an unbounded event sequence; use
// take()/take_until() to materialise finite streams.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "aer/event.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace aetr::gen {

/// Abstract pull-based spike source. Implementations must return events in
/// non-decreasing time order.
class SpikeSource {
 public:
  virtual ~SpikeSource() = default;

  /// The next spike, or nullopt when the source is exhausted.
  virtual std::optional<aer::Event> next() = 0;
};

/// Poisson process with a fixed mean rate; addresses drawn uniformly from
/// [0, address_range).
class PoissonSource final : public SpikeSource {
 public:
  PoissonSource(double rate_hz, std::uint16_t address_range,
                std::uint64_t seed, Time min_gap = Time::zero());

  std::optional<aer::Event> next() override;

 private:
  double mean_interval_sec_;
  std::uint16_t address_range_;
  Time min_gap_;
  Time t_{Time::zero()};
  Xoshiro256StarStar rng_;
};

/// Perfectly periodic source with a fixed address stride.
class RegularSource final : public SpikeSource {
 public:
  RegularSource(Time period, std::uint16_t address_range,
                Time first = Time::zero());

  std::optional<aer::Event> next() override;

 private:
  Time period_;
  std::uint16_t address_range_;
  Time t_;
  std::uint16_t addr_{0};
};

/// Model of the paper's on-FPGA pseudo-random generator: a generator clock
/// at `gen_clock` Hz fires a spike on each cycle where the LFSR word falls
/// below a programmable threshold, producing geometrically distributed
/// inter-spike intervals with mean rate `gen_clock * threshold / 2^width`.
/// Addresses come from a second LFSR. The per-cycle Bernoulli trial is
/// realised by exact geometric sampling (one LFSR word per event) so that
/// low-rate streams do not cost one iteration per generator cycle; event
/// times stay aligned to the generator clock grid.
class LfsrRateSource final : public SpikeSource {
 public:
  /// Configure for a target mean rate. The generator clock must be well
  /// above the target rate; the paper runs it from the 30 MHz reference.
  LfsrRateSource(double target_rate_hz, Frequency gen_clock,
                 std::uint16_t address_range, std::uint32_t interval_seed,
                 std::uint32_t address_seed);

  std::optional<aer::Event> next() override;

  /// Effective mean rate given threshold quantisation.
  [[nodiscard]] double effective_rate_hz() const;

 private:
  Time gen_period_;
  std::uint32_t threshold_;
  std::uint16_t address_range_;
  Lfsr interval_lfsr_;
  Lfsr address_lfsr_;
  Time t_{Time::zero()};
  double gen_hz_;
};

/// Duty-cycled bursts: `active_rate` Poisson spikes for `active_len`, then
/// silence for `idle_len`, repeating. Models word-like activity.
class BurstSource final : public SpikeSource {
 public:
  BurstSource(double active_rate_hz, Time active_len, Time idle_len,
              std::uint16_t address_range, std::uint64_t seed);

  std::optional<aer::Event> next() override;

 private:
  double mean_interval_sec_;
  Time active_len_;
  Time idle_len_;
  std::uint16_t address_range_;
  Xoshiro256StarStar rng_;
  Time t_{Time::zero()};
  Time burst_start_{Time::zero()};
};

/// Replays a pre-recorded stream.
class TraceSource final : public SpikeSource {
 public:
  explicit TraceSource(aer::EventStream events);

  std::optional<aer::Event> next() override;

 private:
  aer::EventStream events_;
  std::size_t pos_{0};
};

/// Time-ordered merge of several sources (e.g. two cochlea ears).
class MergeSource final : public SpikeSource {
 public:
  explicit MergeSource(std::vector<std::unique_ptr<SpikeSource>> sources);

  std::optional<aer::Event> next() override;

 private:
  std::vector<std::unique_ptr<SpikeSource>> sources_;
  std::vector<std::optional<aer::Event>> heads_;
};

/// Materialise the first `n` events of a source.
aer::EventStream take(SpikeSource& source, std::size_t n);

/// Materialise all events strictly before `end`.
aer::EventStream take_until(SpikeSource& source, Time end);

}  // namespace aetr::gen
