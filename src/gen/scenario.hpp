// Scenario builder: multi-phase workloads.
//
// Evaluations keep needing the same shape — "silence, then a speech burst,
// then noise, then silence" — and hand-rolling the phase stitching in every
// bench invites subtle bugs (overlapping times, reused seeds). The builder
// composes phases of any rate/kind into one time-sorted stream and
// remembers the phase boundaries so results can be scored per phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aer/event.hpp"
#include "gen/sources.hpp"
#include "util/time.hpp"

namespace aetr::gen {

/// Kinds of traffic a phase can carry.
enum class PhaseKind {
  kSilence,   ///< no events at all
  kPoisson,   ///< Poisson at `rate_hz`
  kRegular,   ///< strictly periodic at `rate_hz`
  kLfsr,      ///< the paper's pseudo-random generator at `rate_hz`
};

/// One phase of the scenario.
struct Phase {
  std::string label;
  PhaseKind kind{PhaseKind::kPoisson};
  double rate_hz{0.0};
  Time duration{Time::zero()};
  Time start{Time::zero()};  ///< filled in by build()
};

/// Composes phases into a stream.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::uint16_t address_range = 128,
                           std::uint64_t seed = 1,
                           Time min_gap = Time::ns(130.0));

  /// Append a phase; returns *this for chaining.
  ScenarioBuilder& add(const std::string& label, PhaseKind kind,
                       double rate_hz, Time duration);

  /// Convenience spellings.
  ScenarioBuilder& silence(Time duration) {
    return add("silence", PhaseKind::kSilence, 0.0, duration);
  }
  ScenarioBuilder& poisson(const std::string& label, double rate_hz,
                           Time duration) {
    return add(label, PhaseKind::kPoisson, rate_hz, duration);
  }

  /// Materialise the stream. Phases get distinct derived seeds; events are
  /// strictly time-ordered and confined to their phase window.
  [[nodiscard]] aer::EventStream build();

  /// Phase table with resolved start times (valid after build()).
  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }

  /// Total scenario duration.
  [[nodiscard]] Time total_duration() const;

  /// Index of the phase containing `t`, or npos if outside.
  [[nodiscard]] std::size_t phase_of(Time t) const;

 private:
  std::uint16_t address_range_;
  std::uint64_t seed_;
  Time min_gap_;
  std::vector<Phase> phases_;
};

}  // namespace aetr::gen
