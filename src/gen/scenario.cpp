#include "gen/scenario.hpp"

#include <memory>
#include <stdexcept>

namespace aetr::gen {

ScenarioBuilder::ScenarioBuilder(std::uint16_t address_range,
                                 std::uint64_t seed, Time min_gap)
    : address_range_{address_range}, seed_{seed}, min_gap_{min_gap} {}

ScenarioBuilder& ScenarioBuilder::add(const std::string& label,
                                      PhaseKind kind, double rate_hz,
                                      Time duration) {
  if (duration <= Time::zero()) {
    throw std::invalid_argument("ScenarioBuilder: phase needs a duration");
  }
  if (kind != PhaseKind::kSilence && rate_hz <= 0.0) {
    throw std::invalid_argument("ScenarioBuilder: phase needs a rate");
  }
  phases_.push_back(Phase{label, kind, rate_hz, duration, Time::zero()});
  return *this;
}

Time ScenarioBuilder::total_duration() const {
  Time t = Time::zero();
  for (const auto& p : phases_) t += p.duration;
  return t;
}

std::size_t ScenarioBuilder::phase_of(Time t) const {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (t >= phases_[i].start && t < phases_[i].start + phases_[i].duration) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

aer::EventStream ScenarioBuilder::build() {
  aer::EventStream all;
  Time t0 = Time::zero();
  std::uint64_t phase_seed = seed_;
  for (auto& phase : phases_) {
    phase.start = t0;
    ++phase_seed;
    std::unique_ptr<SpikeSource> src;
    switch (phase.kind) {
      case PhaseKind::kSilence:
        break;
      case PhaseKind::kPoisson:
        src = std::make_unique<PoissonSource>(phase.rate_hz, address_range_,
                                              phase_seed, min_gap_);
        break;
      case PhaseKind::kRegular:
        src = std::make_unique<RegularSource>(Time::sec(1.0 / phase.rate_hz),
                                              address_range_);
        break;
      case PhaseKind::kLfsr:
        src = std::make_unique<LfsrRateSource>(
            phase.rate_hz, Frequency::mhz(30.0), address_range_,
            static_cast<std::uint32_t>(0xACE1u + phase_seed),
            static_cast<std::uint32_t>(0x1234u + phase_seed));
        break;
    }
    if (src) {
      for (auto ev : take_until(*src, phase.duration)) {
        ev.time += t0;
        // Enforce the global ordering across the phase seam.
        if (!all.empty() && ev.time <= all.back().time) {
          ev.time = all.back().time + min_gap_;
        }
        all.push_back(ev);
      }
    }
    t0 += phase.duration;
  }
  return all;
}

}  // namespace aetr::gen
