#include "gen/sources.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace aetr::gen {

PoissonSource::PoissonSource(double rate_hz, std::uint16_t address_range,
                             std::uint64_t seed, Time min_gap)
    : mean_interval_sec_{1.0 / rate_hz},
      address_range_{address_range},
      min_gap_{min_gap},
      rng_{seed} {
  assert(rate_hz > 0.0 && address_range > 0);
}

std::optional<aer::Event> PoissonSource::next() {
  Time dt = Time::sec(rng_.exponential(mean_interval_sec_));
  dt = std::max(dt, min_gap_);
  t_ += dt;
  const auto addr = static_cast<std::uint16_t>(rng_.uniform_int(address_range_));
  return aer::Event{addr, t_};
}

RegularSource::RegularSource(Time period, std::uint16_t address_range,
                             Time first)
    : period_{period}, address_range_{address_range}, t_{first} {
  assert(period > Time::zero() && address_range > 0);
}

std::optional<aer::Event> RegularSource::next() {
  const aer::Event ev{addr_, t_};
  t_ += period_;
  addr_ = static_cast<std::uint16_t>((addr_ + 1u) % address_range_);
  return ev;
}

LfsrRateSource::LfsrRateSource(double target_rate_hz, Frequency gen_clock,
                               std::uint16_t address_range,
                               std::uint32_t interval_seed,
                               std::uint32_t address_seed)
    : gen_period_{gen_clock.period()},
      address_range_{address_range},
      // 24-bit interval register: a 16-bit threshold cannot represent
      // firing probabilities below 1/65536 (~457 evt/s at 30 MHz), and the
      // paper sweeps down to 10 evt/s. x^24 + x^23 + x^22 + x^17 + 1.
      interval_lfsr_{24, 0x87u, interval_seed},
      address_lfsr_{16, 0x100Bu, address_seed},
      gen_hz_{gen_clock.to_hz()} {
  assert(target_rate_hz > 0.0 && target_rate_hz < gen_hz_);
  const double p = target_rate_hz / gen_hz_;
  threshold_ = static_cast<std::uint32_t>(
      std::llround(p * static_cast<double>(interval_lfsr_.max_period() + 1)));
  threshold_ = std::max(threshold_, 1u);
}

double LfsrRateSource::effective_rate_hz() const {
  return gen_hz_ * static_cast<double>(threshold_) /
         static_cast<double>(interval_lfsr_.max_period() + 1);
}

std::optional<aer::Event> LfsrRateSource::next() {
  // Geometric sampling of the per-cycle Bernoulli trial: the number of
  // generator cycles until the next sub-threshold word is
  // floor(ln u / ln(1-p)) + 1 with u uniform in (0,1] — drawn from the
  // interval LFSR so the stream stays fully deterministic per seed.
  const double p = static_cast<double>(threshold_) /
                   static_cast<double>(interval_lfsr_.max_period() + 1);
  const double u = (static_cast<double>(interval_lfsr_.step_word()) + 1.0) /
                   static_cast<double>(interval_lfsr_.max_period() + 1);
  const auto cycles = static_cast<Time::Rep>(
      std::floor(std::log(u) / std::log1p(-p)) + 1.0);
  t_ += gen_period_ * std::max<Time::Rep>(cycles, 1);
  const auto addr =
      static_cast<std::uint16_t>(address_lfsr_.step_word() % address_range_);
  return aer::Event{addr, t_};
}

BurstSource::BurstSource(double active_rate_hz, Time active_len, Time idle_len,
                         std::uint16_t address_range, std::uint64_t seed)
    : mean_interval_sec_{1.0 / active_rate_hz},
      active_len_{active_len},
      idle_len_{idle_len},
      address_range_{address_range},
      rng_{seed} {
  assert(active_rate_hz > 0.0 && active_len > Time::zero());
}

std::optional<aer::Event> BurstSource::next() {
  t_ += Time::sec(rng_.exponential(mean_interval_sec_));
  // Jump over idle gaps: if the tentative spike falls outside the active
  // window, shift into the next burst (the Poisson process is memoryless,
  // so restarting the residual interval there is statistically identical).
  while (t_ - burst_start_ >= active_len_) {
    const Time overshoot = t_ - burst_start_ - active_len_;
    burst_start_ += active_len_ + idle_len_;
    t_ = burst_start_ + overshoot;
  }
  const auto addr = static_cast<std::uint16_t>(rng_.uniform_int(address_range_));
  return aer::Event{addr, t_};
}

TraceSource::TraceSource(aer::EventStream events) : events_{std::move(events)} {}

std::optional<aer::Event> TraceSource::next() {
  if (pos_ >= events_.size()) return std::nullopt;
  return events_[pos_++];
}

MergeSource::MergeSource(std::vector<std::unique_ptr<SpikeSource>> sources)
    : sources_{std::move(sources)} {
  heads_.reserve(sources_.size());
  for (auto& s : sources_) heads_.push_back(s->next());
}

std::optional<aer::Event> MergeSource::next() {
  std::size_t best = heads_.size();
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    if (heads_[i] &&
        (best == heads_.size() || heads_[i]->time < heads_[best]->time)) {
      best = i;
    }
  }
  if (best == heads_.size()) return std::nullopt;
  auto ev = heads_[best];
  heads_[best] = sources_[best]->next();
  return ev;
}

aer::EventStream take(SpikeSource& source, std::size_t n) {
  aer::EventStream out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto ev = source.next();
    if (!ev) break;
    out.push_back(*ev);
  }
  return out;
}

aer::EventStream take_until(SpikeSource& source, Time end) {
  aer::EventStream out;
  for (;;) {
    auto ev = source.next();
    if (!ev || ev->time >= end) break;
    out.push_back(*ev);
  }
  return out;
}

}  // namespace aetr::gen
