// `aetr-sweep report` — render the observability artifacts a sweep run left
// behind (energy ledgers, fleet health roll-ups, metrics CSVs, collapsed
// stacks, BENCH_profile.json) into one self-contained HTML dashboard with
// inline SVG charts. No external assets, no JavaScript, no timestamps: the
// output is a pure function of the input files, so reports produced from
// byte-identical artifact directories are themselves byte-identical (the CI
// observability job diffs the --jobs 1 and --jobs 4 reports).
#pragma once

#include <string>

namespace aetr::obs {

struct ReportSummary {
  std::size_t ledgers{0};       ///< *_ledger.csv files rendered
  std::size_t stacks{0};        ///< *_stack.txt files rendered
  std::size_t metrics{0};       ///< *_metrics.csv files rendered
  std::size_t health{0};        ///< fleet health CSVs rendered
  std::size_t profiles{0};      ///< BENCH_profile.json files rendered
  std::string out_path;         ///< the HTML file written
  [[nodiscard]] std::size_t total() const {
    return ledgers + stacks + metrics + health + profiles;
  }
};

/// Scan `in_dir` (sorted, non-recursive) for known observability artifacts
/// and write `<out_dir>/aetr_report.html`. Returns what was found; a summary
/// with total() == 0 means the directory held nothing renderable (the HTML
/// is still written, saying so). Throws std::runtime_error if `in_dir` does
/// not exist or the output cannot be written.
ReportSummary render_report(const std::string& in_dir,
                            const std::string& out_dir);

}  // namespace aetr::obs
