// aetr::obs — the energy-attribution ledger.
//
// The paper's central claim is energy *proportionality*: energy spent should
// track information extracted. power::PowerModel reports one total per run;
// this ledger splits that total three ways so every joule is attributable:
//
//  * per pipeline STAGE (static floor, clockgen, frontend, FIFO, I2S, SPI,
//    MCU) — the same per-unit terms PowerModel::energy_j sums, kept separate,
//    so the ledger reconciles with the model to within 1e-12 J by
//    construction (asserted in tests/test_obs.cpp);
//  * per clock STATE residency (active / paused / oscillator-off) — the
//    energest-style accounting: at division level k one sampling cycle spans
//    2^k * Tmin of which Tmin is full-rate work, so active time is exactly
//    sampling_cycles * Tmin, the rest of the oscillator-awake window is
//    division-gated "paused" time, and everything else is shutdown;
//  * per OUTCOME (delivered / buffer-dropped / fault-lost, plus the fleet's
//    link-dropped / budget-dead) — total energy split proportionally over
//    where the input events ended up, the EventF2S-style
//    energy-per-delivered-information view.
//
// The ledger is pure post-hoc arithmetic over RunResult counters and
// ActivityTotals: filling it never perturbs the run (fast-path runs stay
// eligible), it holds only fixed-size arrays (no allocation, enabled or
// not), and a disabled ledger leaves RunResult bit-identical to a build
// without it. The CSV and collapsed-stack writers are deterministic —
// byte-identical for any --jobs — and the stack file loads directly into
// speedscope / FlameGraph (`flamegraph.pl aetr_*_stack.txt`).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "power/model.hpp"
#include "util/time.hpp"

namespace aetr::obs {

/// Pipeline stages energy is attributed to. kStatic is the always-on fabric
/// floor; kClockGen bundles the oscillator domain, the divided sampling
/// edges and the restart transients (one clock subsystem, three terms).
enum class Stage : std::size_t {
  kStatic,
  kClockGen,
  kFrontend,
  kFifo,
  kI2s,
  kSpi,
  kMcu,
  kCount,
};

/// Clock-domain residency states (the energest triple).
enum class ClockState : std::size_t {
  kActive,  ///< full-rate sampling work: cycles * Tmin
  kPaused,  ///< oscillator awake but division-gated
  kOscOff,  ///< oscillator shut down
  kCount,
};

/// Where an input event ended up. The first three are node-level; the last
/// two only accrue in a fleet run's link phase.
enum class Outcome : std::size_t {
  kDelivered,
  kBufferDropped,  ///< FIFO overflow
  kFaultLost,      ///< injected fault ate it (residual, clamped >= 0)
  kLinkDropped,    ///< lost uplink arbitration (fleet)
  kBudgetDead,     ///< node energy budget exhausted first (fleet)
  kCount,
};

[[nodiscard]] const char* to_string(Stage s);
[[nodiscard]] const char* to_string(ClockState s);
[[nodiscard]] const char* to_string(Outcome o);

constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);
constexpr std::size_t kStateCount =
    static_cast<std::size_t>(ClockState::kCount);
constexpr std::size_t kOutcomeCount =
    static_cast<std::size_t>(Outcome::kCount);

/// Everything from_run() needs, decoupled from core::RunResult so obs can
/// sit below core in the module graph.
struct LedgerInputs {
  power::ActivityTotals activity;
  power::PowerCalibration calibration;
  Time tick_unit{Time::zero()};  ///< Tmin — one full-rate sampling period
  std::uint64_t words{0};        ///< MCU-side words received
  std::uint64_t batches{0};      ///< MCU-side wake bursts
  std::uint64_t events_in{0};
  std::uint64_t delivered{0};       ///< events the consumer reconstructed
  std::uint64_t buffer_dropped{0};  ///< FIFO overflows
  bool include_mcu{false};          ///< charge the downstream MCU stage too
};

/// The per-run energy-attribution ledger. Fixed-size storage only; a
/// default-constructed ledger (enabled == false, all zeros) is what every
/// run that did not ask for one carries.
struct EnergyLedger {
  bool enabled{false};
  double window_sec{0.0};
  std::array<double, kStageCount> stage_energy_j{};
  std::array<double, kStateCount> state_sec{};
  std::array<std::uint64_t, kOutcomeCount> outcome_events{};
  std::array<double, kOutcomeCount> outcome_energy_j{};

  [[nodiscard]] double stage_j(Stage s) const {
    return stage_energy_j[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double state_s(ClockState s) const {
    return state_sec[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t events(Outcome o) const {
    return outcome_events[static_cast<std::size_t>(o)];
  }
  [[nodiscard]] double outcome_j(Outcome o) const {
    return outcome_energy_j[static_cast<std::size_t>(o)];
  }

  /// Interface-side energy: every stage except the downstream MCU. This is
  /// the quantity that reconciles with PowerModel::energy_j /
  /// RunResult::average_power_w * window (within 1e-12 J).
  [[nodiscard]] double interface_energy_j() const;
  /// Interface + MCU.
  [[nodiscard]] double total_energy_j() const;
  /// Energy per delivered event — the figure of merit. 0 if none delivered.
  [[nodiscard]] double energy_per_delivered_j() const;

  /// (Re)split total_energy_j() across outcomes proportionally to
  /// outcome_events. With no events at all, the whole total is booked under
  /// kDelivered: idle readiness is the cost of the service, not a loss.
  /// Call again after mutating outcome_events (the fleet link phase does).
  void finalize_outcomes();

  /// Build a ledger from one run's counters. Pure arithmetic — allocates
  /// nothing, reads nothing but `in`.
  [[nodiscard]] static EnergyLedger from_run(const LedgerInputs& in);
};

/// Element-wise sum (the fleet roll-up primitive): stages, states and
/// outcome counts add; window_sec takes the max (fleet wall time).
/// finalize_outcomes() is NOT re-run — callers decide when.
void accumulate(EnergyLedger& into, const EnergyLedger& from);

/// Scale every energy and residency by `factor` (the fleet's constant-power
/// budget-death truncation). Outcome counts are left alone.
void scale(EnergyLedger& ledger, double factor);

/// Deterministic long-format CSV: section,name,energy_j/seconds/events.
void write_ledger_csv(const EnergyLedger& ledger, const std::string& path);

/// Collapsed-stack file ("outcome;stage <picojoules>" per line, integer
/// weights) loadable by speedscope and Brendan Gregg's flamegraph.pl.
void write_collapsed_stack(const EnergyLedger& ledger,
                           const std::string& path);

}  // namespace aetr::obs
