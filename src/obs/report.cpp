#include "obs/report.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aetr::obs {

namespace {

namespace fs = std::filesystem;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (const char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

std::string read_file(const fs::path& p) {
  std::ifstream is{p, std::ios::binary};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Fixed-width bar length in px; deterministic because width only depends on
/// the parsed values and the printf format.
std::string fmt_px(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", frac * 420.0);
  return buf;
}

std::string fmt_val(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

struct BarRow {
  std::string name;
  double value{0.0};
  std::string display;  ///< pre-formatted label (value + unit)
};

/// One horizontal SVG bar chart. Bars keep input order (which is already
/// deterministic: ledger sections are written in enum order).
void emit_bars(std::ostream& os, const std::string& title,
               const std::vector<BarRow>& rows, const char* color) {
  os << "<h4>" << html_escape(title) << "</h4>\n";
  if (rows.empty()) {
    os << "<p class=\"empty\">(no rows)</p>\n";
    return;
  }
  double max_v = 0.0;
  for (const auto& r : rows) max_v = std::max(max_v, r.value);
  const int row_h = 22;
  const int h = static_cast<int>(rows.size()) * row_h + 4;
  os << "<svg width=\"720\" height=\"" << h
     << "\" role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const int y = static_cast<int>(i) * row_h + 2;
    const double frac = max_v > 0.0 ? rows[i].value / max_v : 0.0;
    os << "<text x=\"0\" y=\"" << (y + 14)
       << "\" font-size=\"12\" font-family=\"monospace\">"
       << html_escape(rows[i].name) << "</text>\n";
    os << "<rect x=\"140\" y=\"" << y << "\" width=\"" << fmt_px(frac)
       << "\" height=\"" << (row_h - 6) << "\" fill=\"" << color << "\"/>\n";
    os << "<text x=\"566\" y=\"" << (y + 14)
       << "\" font-size=\"12\" font-family=\"monospace\">"
       << html_escape(rows[i].display) << "</text>\n";
  }
  os << "</svg>\n";
}

/// Render one *_ledger.csv (section,name,value,unit long format).
void emit_ledger(std::ostream& os, const fs::path& path) {
  std::ifstream is{path};
  std::string line;
  std::getline(is, line);  // header
  std::vector<BarRow> stages, outcomes, states;
  std::vector<std::array<std::string, 4>> totals;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 4) continue;
    const std::string& section = cells[0];
    BarRow row;
    row.name = cells[1];
    row.value = std::strtod(cells[2].c_str(), nullptr);
    row.display = fmt_val(row.value) + " " + cells[3];
    if (section == "stage") {
      stages.push_back(row);
    } else if (section == "outcome_energy") {
      outcomes.push_back(row);
    } else if (section == "state") {
      states.push_back(row);
    } else if (section == "total" || section == "meta") {
      totals.push_back({section, cells[1], cells[2], cells[3]});
    }
  }
  os << "<section>\n<h3>" << html_escape(path.filename().string())
     << "</h3>\n";
  emit_bars(os, "Energy by pipeline stage", stages, "#4878a8");
  emit_bars(os, "Energy by outcome", outcomes, "#58a868");
  emit_bars(os, "Clock-state residency", states, "#a87848");
  os << "<table><tr><th>section</th><th>name</th><th>value</th>"
        "<th>unit</th></tr>\n";
  for (const auto& t : totals) {
    os << "<tr><td>" << html_escape(t[0]) << "</td><td>" << html_escape(t[1])
       << "</td><td>" << html_escape(t[2]) << "</td><td>" << html_escape(t[3])
       << "</td></tr>\n";
  }
  os << "</table>\n</section>\n";
}

/// Render a collapsed-stack file as the flame-graph frame table.
void emit_stack(std::ostream& os, const fs::path& path) {
  std::ifstream is{path};
  std::string line;
  std::vector<BarRow> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    BarRow row;
    row.name = line.substr(0, sp);
    row.value = std::strtod(line.c_str() + sp + 1, nullptr);
    row.display = line.substr(sp + 1) + " pJ";
    rows.push_back(row);
  }
  os << "<section>\n<h3>" << html_escape(path.filename().string())
     << "</h3>\n<p>Collapsed stack (outcome;stage, picojoules) — feed to "
        "speedscope or flamegraph.pl for the interactive view.</p>\n";
  emit_bars(os, "Frames", rows, "#9858a8");
  os << "</section>\n";
}

/// Render a generic CSV (metrics snapshots, fleet health) as a table,
/// truncated to keep the report readable.
void emit_table(std::ostream& os, const fs::path& path,
                std::size_t max_rows) {
  std::ifstream is{path};
  std::string line;
  std::size_t shown = 0;
  std::size_t total = 0;
  std::ostringstream body;
  bool header = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++total;
    if (shown > max_rows) continue;  // keep counting rows, stop rendering
    ++shown;
    const auto cells = split_csv_line(line);
    body << "<tr>";
    for (const auto& c : cells) {
      body << (header ? "<th>" : "<td>") << html_escape(c)
           << (header ? "</th>" : "</td>");
    }
    body << "</tr>\n";
    header = false;
  }
  os << "<section>\n<h3>" << html_escape(path.filename().string())
     << "</h3>\n<table>\n"
     << body.str() << "</table>\n";
  if (total > shown) {
    os << "<p class=\"empty\">(" << (total - shown)
       << " more rows not shown)</p>\n";
  }
  os << "</section>\n";
}

/// BENCH_profile.json is embedded verbatim: wall-clock numbers are
/// nondeterministic by nature, so they are quoted, not charted, and the
/// CI determinism diff excludes them by construction (the report only runs
/// on artifact directories, BENCH_* lives at the repo root).
void emit_profile(std::ostream& os, const fs::path& path) {
  os << "<section>\n<h3>" << html_escape(path.filename().string())
     << "</h3>\n<p>Hot-path wall-clock profile (nondeterministic; informative "
        "only).</p>\n<pre>"
     << html_escape(read_file(path)) << "</pre>\n</section>\n";
}

}  // namespace

ReportSummary render_report(const std::string& in_dir,
                            const std::string& out_dir) {
  const fs::path in{in_dir};
  if (!fs::is_directory(in)) {
    throw std::runtime_error("report: input directory not found: " + in_dir);
  }
  fs::create_directories(out_dir);

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(in)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  ReportSummary summary;
  summary.out_path = (fs::path{out_dir} / "aetr_report.html").string();
  std::ofstream os{summary.out_path, std::ios::binary};
  if (!os) {
    throw std::runtime_error("report: cannot write " + summary.out_path);
  }

  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta "
        "charset=\"utf-8\">\n<title>aetr observability report</title>\n"
        "<style>\n"
        "body{font-family:sans-serif;max-width:900px;margin:2em auto;"
        "color:#222;}\n"
        "table{border-collapse:collapse;font-family:monospace;"
        "font-size:12px;}\n"
        "th,td{border:1px solid #ccc;padding:2px 8px;text-align:left;}\n"
        "section{margin-bottom:2em;border-bottom:1px solid #eee;}\n"
        ".empty{color:#888;font-style:italic;}\n"
        "</style>\n</head>\n<body>\n"
        "<h1>aetr observability report</h1>\n"
        // No paths, no timestamps: the report is a pure function of the
        // artifact FILES, so two directories with byte-identical contents
        // render byte-identical reports wherever they live.
        "<p>Deterministic render of the observability artifacts in the "
        "input directory.</p>\n";

  for (const auto& p : files) {
    const std::string name = p.filename().string();
    if (ends_with(name, "_ledger.csv")) {
      emit_ledger(os, p);
      ++summary.ledgers;
    } else if (ends_with(name, "_stack.txt")) {
      emit_stack(os, p);
      ++summary.stacks;
    } else if (ends_with(name, "_health.csv")) {
      emit_table(os, p, 64);
      ++summary.health;
    } else if (ends_with(name, "_metrics.csv")) {
      emit_table(os, p, 48);
      ++summary.metrics;
    } else if (name == "BENCH_profile.json" ||
               ends_with(name, "_profile.json")) {
      emit_profile(os, p);
      ++summary.profiles;
    }
  }

  if (summary.total() == 0) {
    os << "<p class=\"empty\">No observability artifacts found. Run e.g. "
          "<code>aetr-sweep fig8 --ledger --metrics</code> or "
          "<code>aetr-sweep fleet</code> first.</p>\n";
  }
  os << "</body>\n</html>\n";
  return summary;
}

}  // namespace aetr::obs
