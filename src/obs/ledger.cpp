#include "obs/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "mcu/power.hpp"

namespace aetr::obs {

namespace {

std::size_t idx(Stage s) { return static_cast<std::size_t>(s); }
std::size_t idx(ClockState s) { return static_cast<std::size_t>(s); }
std::size_t idx(Outcome o) { return static_cast<std::size_t>(o); }

/// %.17g round-trips any double exactly, so two writes of the same ledger
/// are byte-identical and a reader recovers the exact values.
std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kStatic: return "static";
    case Stage::kClockGen: return "clockgen";
    case Stage::kFrontend: return "frontend";
    case Stage::kFifo: return "fifo";
    case Stage::kI2s: return "i2s";
    case Stage::kSpi: return "spi";
    case Stage::kMcu: return "mcu";
    case Stage::kCount: break;
  }
  return "?";
}

const char* to_string(ClockState s) {
  switch (s) {
    case ClockState::kActive: return "active";
    case ClockState::kPaused: return "paused";
    case ClockState::kOscOff: return "osc_off";
    case ClockState::kCount: break;
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kDelivered: return "delivered";
    case Outcome::kBufferDropped: return "buffer_dropped";
    case Outcome::kFaultLost: return "fault_lost";
    case Outcome::kLinkDropped: return "link_dropped";
    case Outcome::kBudgetDead: return "budget_dead";
    case Outcome::kCount: break;
  }
  return "?";
}

double EnergyLedger::interface_energy_j() const {
  double e = 0.0;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (s != idx(Stage::kMcu)) e += stage_energy_j[s];
  }
  return e;
}

double EnergyLedger::total_energy_j() const {
  double e = 0.0;
  for (const double s : stage_energy_j) e += s;
  return e;
}

double EnergyLedger::energy_per_delivered_j() const {
  const std::uint64_t n = events(Outcome::kDelivered);
  return n != 0u ? total_energy_j() / static_cast<double>(n) : 0.0;
}

void EnergyLedger::finalize_outcomes() {
  std::uint64_t total = 0;
  for (const std::uint64_t n : outcome_events) total += n;
  outcome_energy_j.fill(0.0);
  const double e = total_energy_j();
  if (total == 0u) {
    outcome_energy_j[idx(Outcome::kDelivered)] = e;
    return;
  }
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    outcome_energy_j[o] = e * static_cast<double>(outcome_events[o]) /
                          static_cast<double>(total);
  }
}

EnergyLedger EnergyLedger::from_run(const LedgerInputs& in) {
  EnergyLedger led;
  led.enabled = true;
  const power::ActivityTotals& a = in.activity;
  const power::PowerCalibration& cal = in.calibration;
  led.window_sec = a.window.to_sec();

  // Stage energies: the exact per-unit terms PowerModel::energy_j sums, so
  // Σ stages == the model's total up to addition reordering (well under the
  // 1e-12 J reconciliation bound for any realistic window).
  led.stage_energy_j[idx(Stage::kStatic)] = cal.static_w * a.window.to_sec();
  led.stage_energy_j[idx(Stage::kClockGen)] =
      cal.osc_domain_w * a.osc_awake.to_sec() +
      cal.sampling_cycle_j * static_cast<double>(a.sampling_cycles) +
      cal.wakeup_j * static_cast<double>(a.wakeups);
  led.stage_energy_j[idx(Stage::kFrontend)] =
      cal.event_j * static_cast<double>(a.events);
  led.stage_energy_j[idx(Stage::kFifo)] =
      cal.fifo_access_j * static_cast<double>(a.fifo_writes + a.fifo_reads);
  led.stage_energy_j[idx(Stage::kI2s)] =
      cal.i2s_bit_j * static_cast<double>(a.i2s_bits);
  led.stage_energy_j[idx(Stage::kSpi)] =
      cal.spi_bit_j * static_cast<double>(a.spi_bits);
  if (in.include_mcu) {
    led.stage_energy_j[idx(Stage::kMcu)] =
        mcu::batch_mcu_energy(mcu::McuDuty{a.window, in.words, in.batches})
            .energy_j;
  }

  // State residency, in closed form from the counted activity: at division
  // level k one sampling cycle spans 2^k * Tmin of which exactly Tmin is
  // full-rate work, so cycles * Tmin is the active time whatever schedule
  // of levels produced it.
  const double active =
      static_cast<double>(a.sampling_cycles) * in.tick_unit.to_sec();
  const double awake = a.osc_awake.to_sec();
  led.state_sec[idx(ClockState::kActive)] = std::min(active, awake);
  led.state_sec[idx(ClockState::kPaused)] = std::max(awake - active, 0.0);
  led.state_sec[idx(ClockState::kOscOff)] =
      std::max(led.window_sec - awake, 0.0);

  led.outcome_events[idx(Outcome::kDelivered)] = in.delivered;
  led.outcome_events[idx(Outcome::kBufferDropped)] = in.buffer_dropped;
  const std::uint64_t accounted = in.delivered + in.buffer_dropped;
  led.outcome_events[idx(Outcome::kFaultLost)] =
      in.events_in > accounted ? in.events_in - accounted : 0u;
  led.finalize_outcomes();
  return led;
}

void accumulate(EnergyLedger& into, const EnergyLedger& from) {
  into.enabled = into.enabled || from.enabled;
  into.window_sec = std::max(into.window_sec, from.window_sec);
  for (std::size_t s = 0; s < kStageCount; ++s) {
    into.stage_energy_j[s] += from.stage_energy_j[s];
  }
  for (std::size_t s = 0; s < kStateCount; ++s) {
    into.state_sec[s] += from.state_sec[s];
  }
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    into.outcome_events[o] += from.outcome_events[o];
  }
}

void scale(EnergyLedger& ledger, double factor) {
  for (double& e : ledger.stage_energy_j) e *= factor;
  for (double& s : ledger.state_sec) s *= factor;
  ledger.window_sec *= factor;
}

void write_ledger_csv(const EnergyLedger& ledger, const std::string& path) {
  std::ofstream os{path};
  if (!os) return;
  os << "section,name,value,unit\n";
  os << "meta,enabled," << (ledger.enabled ? 1 : 0) << ",bool\n";
  os << "meta,window," << g17(ledger.window_sec) << ",s\n";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    os << "stage," << to_string(static_cast<Stage>(s)) << ','
       << g17(ledger.stage_energy_j[s]) << ",J\n";
  }
  for (std::size_t s = 0; s < kStateCount; ++s) {
    os << "state," << to_string(static_cast<ClockState>(s)) << ','
       << g17(ledger.state_sec[s]) << ",s\n";
  }
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    os << "outcome_events," << to_string(static_cast<Outcome>(o)) << ','
       << ledger.outcome_events[o] << ",events\n";
  }
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    os << "outcome_energy," << to_string(static_cast<Outcome>(o)) << ','
       << g17(ledger.outcome_energy_j[o]) << ",J\n";
  }
  os << "total,interface," << g17(ledger.interface_energy_j()) << ",J\n";
  os << "total,all," << g17(ledger.total_energy_j()) << ",J\n";
}

void write_collapsed_stack(const EnergyLedger& ledger,
                           const std::string& path) {
  std::ofstream os{path};
  if (!os) return;
  // Two-level frames, integer picojoule weights: each outcome's share of
  // the total is re-split over the stages, so the flame graph reads
  // "where did the joules for THIS outcome go". Zero weights are skipped —
  // flamegraph.pl treats absent and zero identically.
  const double total = ledger.total_energy_j();
  for (std::size_t o = 0; o < kOutcomeCount; ++o) {
    const double oe = ledger.outcome_energy_j[o];
    if (oe <= 0.0) continue;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const double share =
          total > 0.0 ? oe * ledger.stage_energy_j[s] / total : 0.0;
      const long long pj = std::llround(share * 1e12);
      if (pj <= 0) continue;
      os << to_string(static_cast<Outcome>(o)) << ';'
         << to_string(static_cast<Stage>(s)) << ' ' << pj << '\n';
    }
  }
}

}  // namespace aetr::obs
