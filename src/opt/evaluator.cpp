#include "opt/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analysis/error.hpp"
#include "fault/fault_plan.hpp"
#include "gen/sources.hpp"
#include "runtime/seed.hpp"

namespace aetr::opt {

const char* to_string(Objective o) {
  switch (o) {
    case Objective::kEnergyPerEvent: return "energy";
    case Objective::kErrorRms: return "error";
    case Objective::kLoss: return "loss";
    case Objective::kLatencyP99: return "latency";
  }
  return "?";
}

std::vector<Objective> parse_objectives(const std::string& spec) {
  std::vector<Objective> out;
  std::istringstream is(spec);
  std::string name;
  while (std::getline(is, name, ',')) {
    const auto b = name.find_first_not_of(" \t");
    const auto e = name.find_last_not_of(" \t");
    if (b == std::string::npos) {
      throw std::runtime_error("objectives: empty name in '" + spec + "'");
    }
    name = name.substr(b, e - b + 1);
    Objective o;
    if (name == "energy") o = Objective::kEnergyPerEvent;
    else if (name == "error") o = Objective::kErrorRms;
    else if (name == "loss") o = Objective::kLoss;
    else if (name == "latency") o = Objective::kLatencyP99;
    else
      throw std::runtime_error(
          "objectives: unknown name '" + name +
          "' (expected energy, error, loss, or latency)");
    if (std::find(out.begin(), out.end(), o) != out.end()) {
      throw std::runtime_error("objectives: duplicate '" + name + "'");
    }
    out.push_back(o);
  }
  if (out.empty()) throw std::runtime_error("objectives: empty list");
  return out;
}

Evaluation evaluate(const core::ScenarioConfig& scenario,
                    const Workload& workload,
                    const std::vector<Objective>& objectives,
                    std::uint64_t stream_seed, std::size_t n_events) {
  core::ScenarioConfig sc = scenario;
  // The error objective scores capture records; force them on regardless of
  // what the candidate point set.
  sc.interface.front_end.keep_records = true;
  if (workload.fault_level > 0.0) {
    sc.faults = fault::scaled_plan(workload.fault_level,
                                   runtime::derive_seed(stream_seed, 0x77));
  }
  const std::size_t n = n_events != 0 ? n_events : workload.n_events;

  gen::PoissonSource source{workload.rate_hz, workload.address_range,
                            stream_seed, workload.min_gap};
  const core::RunResult r = core::run_scenario(sc, source, n);

  Evaluation ev;
  ev.average_power_w = r.average_power_w;
  ev.events_in = r.events_in;
  ev.words_out = r.words_out;
  ev.energy_per_event_j =
      r.events_in > 0
          ? r.average_power_w * r.sim_end.to_sec() /
                static_cast<double>(r.events_in)
          : r.average_power_w * r.sim_end.to_sec();
  ev.delivered = r.events_in > 0
                     ? static_cast<double>(r.decoded.size()) /
                           static_cast<double>(r.events_in)
                     : 1.0;

  const auto errors =
      analysis::record_errors(r.records, r.tick_unit, r.saturation_span);
  if (!errors.empty()) {
    double sum_sq = 0.0;
    for (double e : errors) sum_sq += e * e;
    ev.err_rms = std::sqrt(sum_sq / static_cast<double>(errors.size()));
  }

  if (!r.delivery_latency_sec.empty()) {
    std::vector<double> sorted = r.delivery_latency_sec;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(sorted.size())));
    ev.p99_latency_s = sorted[std::min(rank > 0 ? rank - 1 : 0,
                                       sorted.size() - 1)];
  }

  ev.objectives.reserve(objectives.size());
  for (Objective o : objectives) {
    switch (o) {
      case Objective::kEnergyPerEvent:
        ev.objectives.push_back(ev.energy_per_event_j);
        break;
      case Objective::kErrorRms:
        ev.objectives.push_back(ev.err_rms);
        break;
      case Objective::kLoss:
        ev.objectives.push_back(1.0 - ev.delivered);
        break;
      case Objective::kLatencyP99:
        ev.objectives.push_back(ev.p99_latency_s);
        break;
    }
  }
  return ev;
}

}  // namespace aetr::opt
