// Objective extraction: one scenario in, one minimised objective vector out.
//
// The evaluator wraps core::run_scenario() with the measurement conventions
// the optimizer needs to compare candidates fairly:
//   * the workload (rate, length, address range, minimum gap) is pinned, and
//     the spike stream's seed comes from the caller — every candidate in a
//     comparison rung sees the *same* stream (paired evaluation), so
//     objective deltas measure the configuration, not sampling noise;
//   * capture records are forced on, because the timestamp-error objective
//     scores them;
//   * an optional fault level wraps the run in fault::scaled_plan() for
//     robust optimisation — search for configs that hold up under noise.
//
// All objectives are minimised; "delivered fraction" therefore enters the
// vector as loss = 1 - delivered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace aetr::opt {

/// Minimised objectives the evaluator can extract.
enum class Objective {
  kEnergyPerEvent,  ///< average_power * sim_time / events_in   [J/event]
  kErrorRms,        ///< RMS per-event relative timestamp error
  kLoss,            ///< 1 - decoded/events_in (delivered fraction)
  kLatencyP99,      ///< p99 of per-event delivery latency       [s]
};

[[nodiscard]] const char* to_string(Objective o);

/// Parse "energy,error,loss,latency" (any non-empty subset, any order).
/// Throws std::runtime_error on unknown names or duplicates.
[[nodiscard]] std::vector<Objective> parse_objectives(
    const std::string& spec);

/// The stream every candidate is scored on. Defaults match the Fig. 6
/// active-region workload (50 kevt/s Poisson, 130 ns minimum gap).
struct Workload {
  double rate_hz = 50e3;
  std::size_t n_events = 4000;
  std::uint16_t address_range = 128;
  Time min_gap = Time::ns(130.0);
  /// 0 = fault-free; otherwise the fault::scaled_plan() level applied to
  /// every evaluation (robust optimisation).
  double fault_level = 0.0;
};

/// One scored run: the requested objective vector plus the raw metrics it
/// was assembled from (for reports and checkpoints).
struct Evaluation {
  std::vector<double> objectives;
  double energy_per_event_j{0.0};
  double err_rms{0.0};
  double delivered{0.0};      ///< decoded / events_in
  double p99_latency_s{0.0};
  double average_power_w{0.0};
  std::uint64_t events_in{0};
  std::uint64_t words_out{0};
};

/// Run `scenario` over the workload stream seeded with `stream_seed` and
/// extract `objectives`. `n_events` overrides workload.n_events when
/// non-zero (successive halving promotes by lengthening the stream).
[[nodiscard]] Evaluation evaluate(const core::ScenarioConfig& scenario,
                                  const Workload& workload,
                                  const std::vector<Objective>& objectives,
                                  std::uint64_t stream_seed,
                                  std::size_t n_events = 0);

}  // namespace aetr::opt
