#include "opt/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/config_io.hpp"
#include "runtime/seed.hpp"
#include "runtime/sweep.hpp"
#include "util/artifacts.hpp"

namespace aetr::opt {
namespace {

// --- formatting -------------------------------------------------------------

std::string fmt_double(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

double parse_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("opt: bad number '" + s + "' in checkpoint");
  }
  return v;
}

// --- seed streams -----------------------------------------------------------
// All derived from the root seed through fixed tags and *stable* ids, never
// from execution order: a resumed run re-derives identical seeds for the
// trials it still has to evaluate.

constexpr std::uint64_t kParamsTag = 0x5A;
constexpr std::uint64_t kStreamTag = 0xE0;

std::uint64_t params_seed(std::uint64_t root, std::uint64_t id) {
  return runtime::derive_seed(runtime::derive_seed(root, kParamsTag), id);
}

std::uint64_t stream_seed(std::uint64_t root, std::size_t rung) {
  return runtime::derive_seed(runtime::derive_seed(root, kStreamTag), rung);
}

// --- default point ----------------------------------------------------------

/// The base scenario's value for each axis, read back through the config
/// dump (the one representation that covers every key) and snapped into the
/// axis domain so it is expressible as a trial.
std::vector<double> default_params(const SearchSpace& space,
                                   const core::ScenarioConfig& base) {
  std::map<std::string, std::string> kv;
  std::istringstream dump(core::dump_scenario(base));
  std::string line;
  while (std::getline(dump, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      if (b == std::string::npos) return std::string{};
      const auto e = s.find_last_not_of(" \t\r");
      return s.substr(b, e - b + 1);
    };
    kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }
  std::vector<double> params;
  params.reserve(space.size());
  for (const auto& axis : space.axes()) {
    const auto it = kv.find(axis.key);
    if (it == kv.end()) {
      throw std::runtime_error("opt: axis key '" + axis.key +
                               "' missing from the scenario dump");
    }
    const double raw = std::strtod(it->second.c_str(), nullptr);
    // Snap to the nearest value the axis can produce.
    double best = axis.grid_values().front();
    for (double v : axis.grid_values()) {
      if (std::abs(v - raw) < std::abs(best - raw)) best = v;
    }
    params.push_back(best);
  }
  return params;
}

// --- population -------------------------------------------------------------

std::vector<std::vector<double>> build_population(const SearchSpace& space,
                                                  const OptOptions& opt,
                                                  const core::ScenarioConfig&
                                                      base) {
  std::vector<std::vector<double>> pop;
  switch (opt.strategy) {
    case Strategy::kFactorial: {
      const std::size_t n = space.factorial_size();
      pop.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        pop.push_back(space.factorial_point(i));
      }
      break;
    }
    case Strategy::kRandom: {
      const std::size_t n = std::max<std::size_t>(opt.budget, 1);
      pop.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        pop.push_back(space.sample(params_seed(opt.seed, i)));
      }
      break;
    }
    case Strategy::kHalving: {
      const std::size_t n = std::max<std::size_t>(opt.budget, 4);
      // Warm start: the default point first, then every one-axis variant of
      // it (axis order, value order) — the screening rung always scores the
      // "change exactly one knob" neighbourhood of the paper's default —
      // then random samples until the population is full.
      const auto defaults = default_params(space, base);
      pop.push_back(defaults);
      for (std::size_t a = 0; a < space.size() && pop.size() < n; ++a) {
        for (double v : space.axes()[a].grid_values()) {
          if (v == defaults[a]) continue;
          auto variant = defaults;
          variant[a] = v;
          pop.push_back(std::move(variant));
          if (pop.size() >= n) break;
        }
      }
      for (std::size_t i = pop.size(); i < n; ++i) {
        pop.push_back(space.sample(params_seed(opt.seed, i)));
      }
      break;
    }
  }
  return pop;
}

// --- checkpoint -------------------------------------------------------------

runtime::Row checkpoint_header(const SearchSpace& space) {
  runtime::Row h{"rung", "id", "n_events"};
  for (const auto& axis : space.axes()) h.push_back("param:" + axis.key);
  for (const char* col : {"energy_per_event_j", "err_rms", "delivered",
                          "p99_latency_s", "power_w", "events_in",
                          "words_out"}) {
    h.emplace_back(col);
  }
  return h;
}

std::string join_csv(const runtime::Row& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += cells[i];
  }
  return line;
}

runtime::Row checkpoint_row(const Trial& t, const SearchSpace& space) {
  runtime::Row r{std::to_string(t.rung), fmt_u64(t.id),
                 std::to_string(t.n_events)};
  for (std::size_t i = 0; i < space.size(); ++i) {
    r.push_back(fmt_double(t.params[i]));
  }
  r.push_back(fmt_double(t.eval.energy_per_event_j));
  r.push_back(fmt_double(t.eval.err_rms));
  r.push_back(fmt_double(t.eval.delivered));
  r.push_back(fmt_double(t.eval.p99_latency_s));
  r.push_back(fmt_double(t.eval.average_power_w));
  r.push_back(fmt_u64(t.eval.events_in));
  r.push_back(fmt_u64(t.eval.words_out));
  return r;
}

/// Rebuild the objective vector from checkpointed raw metrics — the raw
/// values round-trip exactly, so a loaded trial is bit-identical to the
/// evaluation that produced it.
void rebuild_objectives(Evaluation& ev,
                        const std::vector<Objective>& objectives) {
  ev.objectives.clear();
  for (Objective o : objectives) {
    switch (o) {
      case Objective::kEnergyPerEvent:
        ev.objectives.push_back(ev.energy_per_event_j);
        break;
      case Objective::kErrorRms:
        ev.objectives.push_back(ev.err_rms);
        break;
      case Objective::kLoss:
        ev.objectives.push_back(1.0 - ev.delivered);
        break;
      case Objective::kLatencyP99:
        ev.objectives.push_back(ev.p99_latency_s);
        break;
    }
  }
}

using CheckpointMap = std::map<std::pair<std::size_t, std::uint64_t>, Trial>;

CheckpointMap load_checkpoint(const std::string& path,
                              const SearchSpace& space,
                              const std::vector<Objective>& objectives) {
  CheckpointMap out;
  std::ifstream is(path);
  if (!is) return out;
  std::string line;
  if (!std::getline(is, line)) return out;
  if (line != join_csv(checkpoint_header(space))) {
    throw std::runtime_error(
        "opt: checkpoint '" + path +
        "' does not match this search space (delete it or drop --resume)");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::istringstream cell_stream(line);
    std::string cell;
    while (std::getline(cell_stream, cell, ',')) cells.push_back(cell);
    const std::size_t expect = 3 + space.size() + 7;
    if (cells.size() != expect) {
      // A truncated final line (interrupted mid-write) is skipped; the
      // trial simply re-runs.
      continue;
    }
    Trial t;
    t.rung = static_cast<std::size_t>(std::strtoull(cells[0].c_str(),
                                                    nullptr, 10));
    t.id = std::strtoull(cells[1].c_str(), nullptr, 10);
    t.n_events = static_cast<std::size_t>(std::strtoull(cells[2].c_str(),
                                                        nullptr, 10));
    for (std::size_t i = 0; i < space.size(); ++i) {
      t.params.push_back(parse_double(cells[3 + i]));
    }
    std::size_t c = 3 + space.size();
    t.eval.energy_per_event_j = parse_double(cells[c++]);
    t.eval.err_rms = parse_double(cells[c++]);
    t.eval.delivered = parse_double(cells[c++]);
    t.eval.p99_latency_s = parse_double(cells[c++]);
    t.eval.average_power_w = parse_double(cells[c++]);
    t.eval.events_in = std::strtoull(cells[c++].c_str(), nullptr, 10);
    t.eval.words_out = std::strtoull(cells[c++].c_str(), nullptr, 10);
    rebuild_objectives(t.eval, objectives);
    t.from_checkpoint = true;
    out[{t.rung, t.id}] = std::move(t);
  }
  return out;
}

// --- rung promotion ---------------------------------------------------------

/// Deterministic multi-objective ranking: candidates dominated by fewer
/// rung-mates rank first; ties break on the objective vector, then id.
std::vector<std::uint64_t> promote(const std::vector<Trial>& rung_trials,
                                   std::size_t keep) {
  struct Ranked {
    std::size_t dominated_by;
    const Trial* trial;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(rung_trials.size());
  for (const auto& t : rung_trials) {
    std::size_t count = 0;
    for (const auto& other : rung_trials) {
      if (&other != &t && dominates(other.eval.objectives,
                                    t.eval.objectives)) {
        ++count;
      }
    }
    ranked.push_back({count, &t});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.dominated_by != b.dominated_by) {
                return a.dominated_by < b.dominated_by;
              }
              if (a.trial->eval.objectives != b.trial->eval.objectives) {
                return a.trial->eval.objectives < b.trial->eval.objectives;
              }
              return a.trial->id < b.trial->id;
            });
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < ranked.size() && i < keep; ++i) {
    ids.push_back(ranked[i].trial->id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// --- artifacts --------------------------------------------------------------

void write_svg(const std::string& path, const OptResult& result,
               const std::vector<Objective>& objectives,
               std::size_t full_n) {
  // Scatter of the first two objectives over all full-length trials, with
  // the front and the baseline called out. Single-objective searches plot
  // trial id on the y axis instead.
  const bool two_d = objectives.size() >= 2;
  struct Dot {
    double x, y;
    int kind;  // 0 = trial, 1 = front, 2 = baseline
  };
  std::vector<Dot> dots;
  for (const auto& t : result.trials) {
    if (t.n_events != full_n) continue;
    const double y = two_d ? t.eval.objectives[1]
                           : static_cast<double>(t.id);
    dots.push_back({t.eval.objectives[0], y, 0});
  }
  for (const auto& p : result.front.points()) {
    const double y = two_d ? p.objectives[1] : static_cast<double>(p.id);
    dots.push_back({p.objectives[0], y, 1});
  }
  dots.push_back({result.baseline.objectives[0],
                  two_d ? result.baseline.objectives[1] : -1.0, 2});

  double x_lo = dots[0].x, x_hi = dots[0].x;
  double y_lo = dots[0].y, y_hi = dots[0].y;
  for (const auto& d : dots) {
    x_lo = std::min(x_lo, d.x);
    x_hi = std::max(x_hi, d.x);
    y_lo = std::min(y_lo, d.y);
    y_hi = std::max(y_hi, d.y);
  }
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;
  const double W = 640, H = 480, M = 56;
  const auto px = [&](double x) {
    return M + (x - x_lo) / (x_hi - x_lo) * (W - 2 * M);
  };
  const auto py = [&](double y) {
    return H - M - (y - y_lo) / (y_hi - y_lo) * (H - 2 * M);
  };
  std::ofstream os(path);
  if (!os) throw std::runtime_error("opt: cannot write '" + path + "'");
  char buf[256];
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"640\" "
        "height=\"480\" viewBox=\"0 0 640 480\">\n"
        "<rect width=\"640\" height=\"480\" fill=\"white\"/>\n";
  std::snprintf(buf, sizeof buf,
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
                "fill=\"none\" stroke=\"#888\"/>\n",
                M, M, W - 2 * M, H - 2 * M);
  os << buf;
  os << "<text x=\"320\" y=\"470\" text-anchor=\"middle\" "
        "font-family=\"sans-serif\" font-size=\"13\">"
     << to_string(objectives[0]) << " (min)</text>\n";
  os << "<text x=\"14\" y=\"240\" text-anchor=\"middle\" "
        "font-family=\"sans-serif\" font-size=\"13\" "
        "transform=\"rotate(-90 14 240)\">"
     << (two_d ? to_string(objectives[1]) : "trial id")
     << (two_d ? " (min)" : "") << "</text>\n";
  for (const auto& d : dots) {
    const char* fill = d.kind == 0 ? "#b0b0b0"
                       : d.kind == 1 ? "#d62728"
                                     : "#1f77b4";
    const double r = d.kind == 0 ? 3.5 : 5.0;
    std::snprintf(buf, sizeof buf,
                  "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.1f\" "
                  "fill=\"%s\" fill-opacity=\"0.85\"/>\n",
                  px(d.x), py(d.y), r, fill);
    os << buf;
  }
  os << "<text x=\"60\" y=\"44\" font-family=\"sans-serif\" "
        "font-size=\"12\" fill=\"#d62728\">front</text>\n"
        "<text x=\"104\" y=\"44\" font-family=\"sans-serif\" "
        "font-size=\"12\" fill=\"#1f77b4\">default</text>\n"
        "<text x=\"158\" y=\"44\" font-family=\"sans-serif\" "
        "font-size=\"12\" fill=\"#808080\">trials</text>\n"
        "</svg>\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void write_summary_json(const std::string& path, const SearchSpace& space,
                        const OptOptions& opt, const OptResult& result,
                        std::size_t full_n) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("opt: cannot write '" + path + "'");
  os << "{\n";
  os << "  \"strategy\": \"" << to_string(opt.strategy) << "\",\n";
  os << "  \"budget\": " << opt.budget << ",\n";
  os << "  \"seed\": " << opt.seed << ",\n";
  os << "  \"objectives\": [";
  for (std::size_t i = 0; i < opt.objectives.size(); ++i) {
    os << (i ? ", " : "") << '"' << to_string(opt.objectives[i]) << '"';
  }
  os << "],\n";
  os << "  \"workload\": {\"rate_hz\": " << fmt_double(opt.workload.rate_hz)
     << ", \"n_events\": " << opt.workload.n_events
     << ", \"fault_level\": " << fmt_double(opt.workload.fault_level)
     << "},\n";
  os << "  \"axes\": [";
  for (std::size_t i = 0; i < space.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(space.axes()[i].key) << '"';
  }
  os << "],\n";
  // Deliberately no wall clocks and no this-process evaluation counts:
  // the summary is a pure function of the search, so an interrupted and
  // resumed run ends with the same bytes as an uninterrupted one.
  os << "  \"trials\": " << result.trials.size() << ",\n";
  os << "  \"baseline\": {\"energy_per_event_j\": "
     << fmt_double(result.baseline.energy_per_event_j)
     << ", \"err_rms\": " << fmt_double(result.baseline.err_rms)
     << ", \"delivered\": " << fmt_double(result.baseline.delivered)
     << ", \"p99_latency_s\": " << fmt_double(result.baseline.p99_latency_s)
     << "},\n";
  double best_energy = result.baseline.energy_per_event_j;
  for (const auto& t : result.trials) {
    if (t.n_events == full_n &&
        t.eval.energy_per_event_j < best_energy) {
      best_energy = t.eval.energy_per_event_j;
    }
  }
  os << "  \"best_energy_per_event_j\": " << fmt_double(best_energy)
     << ",\n";
  os << "  \"dominated_baseline\": "
     << (result.dominated_baseline ? "true" : "false") << ",\n";
  os << "  \"hypervolume\": " << fmt_double(result.hypervolume) << ",\n";
  os << "  \"front\": [\n";
  for (std::size_t i = 0; i < result.front.points().size(); ++i) {
    const auto& p = result.front.points()[i];
    os << "    {\"id\": " << p.id << ", \"params\": [";
    for (std::size_t j = 0; j < p.params.size(); ++j) {
      os << (j ? ", " : "") << fmt_double(p.params[j]);
    }
    os << "], \"objectives\": [";
    for (std::size_t j = 0; j < p.objectives.size(); ++j) {
      os << (j ? ", " : "") << fmt_double(p.objectives[j]);
    }
    os << "]}" << (i + 1 < result.front.points().size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

// --- public surface ---------------------------------------------------------

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kFactorial: return "factorial";
    case Strategy::kRandom: return "random";
    case Strategy::kHalving: return "halving";
  }
  return "?";
}

Strategy parse_strategy(const std::string& name) {
  if (name == "factorial") return Strategy::kFactorial;
  if (name == "random") return Strategy::kRandom;
  if (name == "halving") return Strategy::kHalving;
  throw std::runtime_error("opt: unknown strategy '" + name +
                           "' (expected factorial, random, or halving)");
}

OptInterrupted::OptInterrupted(std::size_t evaluations)
    : std::runtime_error("opt: interrupted after " +
                         std::to_string(evaluations) +
                         " evaluations (checkpoint saved; rerun with "
                         "--resume to finish)"),
      evaluations_(evaluations) {}

OptResult optimize(const SearchSpace& space, const core::ScenarioConfig& base,
                   const OptOptions& opt) {
  if (space.axes().empty()) throw std::runtime_error("opt: empty space");
  if (opt.objectives.empty()) {
    throw std::runtime_error("opt: no objectives");
  }
  base.validate();

  const Workload workload = opt.workload;
  const std::size_t full_n = std::max<std::size_t>(workload.n_events, 4);

  const auto say = [&opt](const std::string& line) {
    if (opt.progress) opt.progress(line);
  };

  // Rung plan: (n_events, keep) per rung.
  const auto population = build_population(space, opt, base);
  std::vector<std::pair<std::size_t, std::size_t>> rungs;  // (n, keep)
  if (opt.strategy == Strategy::kHalving) {
    rungs = {{std::max<std::size_t>(full_n / 4, 4),
              (population.size() + 1) / 2},
             {std::max<std::size_t>(full_n / 2, 4),
              (population.size() + 3) / 4},
             {full_n, 0}};
  } else {
    rungs = {{full_n, 0}};
  }
  const std::size_t baseline_rung = rungs.size();  // checkpoint slot

  const std::string checkpoint_path =
      util::artifact_path("aetr_opt_checkpoint.csv", opt.out_dir);
  CheckpointMap cache;
  if (opt.resume) {
    cache = load_checkpoint(checkpoint_path, space, opt.objectives);
    if (!cache.empty()) {
      say("resume: " + std::to_string(cache.size()) +
          " checkpointed evaluations loaded");
    }
  }
  std::ofstream checkpoint(checkpoint_path,
                           opt.resume ? std::ios::app : std::ios::trunc);
  if (!checkpoint) {
    throw std::runtime_error("opt: cannot write '" + checkpoint_path + "'");
  }
  if (!opt.resume || cache.empty()) {
    if (opt.resume) {
      // Resuming with no (or an unreadable) checkpoint: start clean.
      checkpoint.close();
      checkpoint.open(checkpoint_path, std::ios::trunc);
    }
    checkpoint << join_csv(checkpoint_header(space)) << "\n";
    checkpoint.flush();
  }

  OptResult result;
  std::size_t evals_run = 0;

  // Evaluate the given ids at one rung, consulting the checkpoint first.
  // Returns the rung's trials in id order. Throws OptInterrupted when the
  // interrupt_after budget cuts the batch short (completed evaluations are
  // checkpointed first).
  // `stream_rung` picks the stream seed, decoupled from the checkpoint slot
  // `rung` so the baseline can be paired with the final rung's stream.
  const auto run_rung = [&](std::size_t rung, std::vector<std::uint64_t> ids,
                            std::size_t n_events,
                            const std::vector<double>* fixed_params,
                            std::size_t stream_rung) -> std::vector<Trial> {
    std::sort(ids.begin(), ids.end());
    std::vector<Trial> trials;
    std::vector<std::uint64_t> pending;
    for (std::uint64_t id : ids) {
      const auto& params =
          fixed_params != nullptr ? *fixed_params
                                  : population[static_cast<std::size_t>(id)];
      const auto it = cache.find({rung, id});
      if (it != cache.end() && it->second.n_events == n_events) {
        if (it->second.params != params) {
          throw std::runtime_error(
              "opt: checkpoint trial (rung " + std::to_string(rung) +
              ", id " + std::to_string(id) +
              ") has different parameters — it belongs to another "
              "search; delete the checkpoint or drop --resume");
        }
        trials.push_back(it->second);
      } else {
        pending.push_back(id);
      }
    }
    bool interrupted = false;
    if (!pending.empty() && opt.interrupt_after > 0) {
      const std::size_t allowed =
          opt.interrupt_after > evals_run ? opt.interrupt_after - evals_run
                                          : 0;
      if (pending.size() > allowed) {
        pending.resize(allowed);
        interrupted = true;
      }
    }
    if (!pending.empty()) {
      runtime::SweepGrid grid;
      std::vector<double> slots(pending.size());
      for (std::size_t i = 0; i < pending.size(); ++i) {
        slots[i] = static_cast<double>(i);
      }
      grid.axis("slot", slots);
      std::vector<Evaluation> evals(pending.size());
      const std::uint64_t rung_stream = stream_seed(opt.seed, stream_rung);
      runtime::SweepOptions sweep_opt;
      sweep_opt.jobs = opt.jobs;
      sweep_opt.seed = runtime::derive_seed(opt.seed, 0xCE + rung);
      const runtime::JobFn job =
          [&](const runtime::JobContext& ctx) -> runtime::JobOutput {
        const auto slot = static_cast<std::size_t>(ctx.point.at("slot"));
        const std::uint64_t id = pending[slot];
        core::ScenarioConfig sc = base;
        const auto& params =
            fixed_params != nullptr
                ? *fixed_params
                : population[static_cast<std::size_t>(id)];
        space.apply(sc, params);
        if (opt.trace || opt.metrics) {
          telemetry::SessionOptions so;
          const std::string stem = "aetr_opt_r" + std::to_string(rung) +
                                   "_t" + std::to_string(id);
          so.trace = opt.trace;
          so.metrics = opt.metrics;
          if (opt.trace) {
            so.trace_json_path =
                util::artifact_path(stem + "_trace.json", opt.out_dir);
            so.trace_csv_path =
                util::artifact_path(stem + "_trace.csv", opt.out_dir);
          }
          if (opt.metrics) {
            so.metrics_csv_path =
                util::artifact_path(stem + "_metrics.csv", opt.out_dir);
          }
          sc.telemetry = core::TelemetryChoice::owned(so);
        }
        evals[slot] =
            evaluate(sc, workload, opt.objectives, rung_stream, n_events);
        return {};
      };
      (void)runtime::run_sweep(grid, job, sweep_opt, nullptr);
      for (std::size_t i = 0; i < pending.size(); ++i) {
        Trial t;
        t.id = pending[i];
        t.rung = rung;
        t.n_events = n_events;
        t.params = fixed_params != nullptr
                       ? *fixed_params
                       : population[static_cast<std::size_t>(pending[i])];
        t.eval = std::move(evals[i]);
        checkpoint << join_csv(checkpoint_row(t, space)) << "\n";
        cache[{rung, t.id}] = t;
        trials.push_back(std::move(t));
      }
      checkpoint.flush();
      evals_run += pending.size();
    }
    if (interrupted) throw OptInterrupted(evals_run);
    std::sort(trials.begin(), trials.end(),
              [](const Trial& a, const Trial& b) { return a.id < b.id; });
    return trials;
  };

  // --- the search ---
  std::vector<std::uint64_t> active;
  active.reserve(population.size());
  for (std::size_t i = 0; i < population.size(); ++i) {
    active.push_back(static_cast<std::uint64_t>(i));
  }
  for (std::size_t r = 0; r < rungs.size(); ++r) {
    const auto [n_events, keep] = rungs[r];
    say("rung " + std::to_string(r + 1) + "/" +
        std::to_string(rungs.size()) + ": " +
        std::to_string(active.size()) + " trials x " +
        std::to_string(n_events) + " events");
    auto rung_trials = run_rung(r, active, n_events, nullptr, r);
    if (keep > 0 && keep < rung_trials.size()) {
      active = promote(rung_trials, keep);
    }
    for (auto& t : rung_trials) result.trials.push_back(std::move(t));
  }

  // --- baseline (paired with the final rung's stream) ---
  result.baseline_params = default_params(space, base);
  {
    // Paired with the final rung's stream: the dominance verdict compares
    // candidate and default on the same spikes.
    auto baseline_trials = run_rung(baseline_rung, {0}, full_n,
                                    &result.baseline_params,
                                    rungs.size() - 1);
    result.baseline = baseline_trials.front().eval;
  }
  result.evaluations_run = evals_run;

  // --- front over full-length evaluations ---
  for (const auto& t : result.trials) {
    if (t.n_events != full_n) continue;
    result.front.add({t.id, t.params, t.eval.objectives});
  }
  result.dominated_baseline =
      result.front.contains_dominator_of(result.baseline.objectives);

  // Hypervolume reference: 1.1x the componentwise worst of front+baseline.
  result.reference.assign(opt.objectives.size(), 0.0);
  for (std::size_t i = 0; i < opt.objectives.size(); ++i) {
    double worst = result.baseline.objectives[i];
    for (const auto& p : result.front.points()) {
      worst = std::max(worst, p.objectives[i]);
    }
    result.reference[i] = worst > 0.0 ? 1.1 * worst : 1e-12;
  }
  result.hypervolume = result.front.hypervolume(result.reference);

  // --- artifacts (always regenerated in full, so an interrupted+resumed
  // run ends with byte-identical outputs) ---
  const std::string trials_path =
      util::artifact_path("aetr_opt_trials.csv", opt.out_dir);
  {
    std::ofstream os(trials_path);
    if (!os) throw std::runtime_error("opt: cannot write trials CSV");
    runtime::Row header{"rung", "id", "n_events"};
    for (const auto& axis : space.axes()) {
      header.push_back("param:" + axis.key);
    }
    for (Objective o : opt.objectives) {
      header.push_back(std::string("obj:") + to_string(o));
    }
    header.insert(header.end(), {"energy_per_event_j", "err_rms",
                                 "delivered", "p99_latency_s", "power_w"});
    os << join_csv(header) << "\n";
    for (const auto& t : result.trials) {
      runtime::Row row{std::to_string(t.rung), fmt_u64(t.id),
                       std::to_string(t.n_events)};
      for (double v : t.params) row.push_back(fmt_double(v));
      for (double v : t.eval.objectives) row.push_back(fmt_double(v));
      row.push_back(fmt_double(t.eval.energy_per_event_j));
      row.push_back(fmt_double(t.eval.err_rms));
      row.push_back(fmt_double(t.eval.delivered));
      row.push_back(fmt_double(t.eval.p99_latency_s));
      row.push_back(fmt_double(t.eval.average_power_w));
      os << join_csv(row) << "\n";
    }
  }
  result.artifacts.push_back(trials_path);

  const std::string pareto_path =
      util::artifact_path("aetr_opt_pareto.csv", opt.out_dir);
  {
    std::ofstream os(pareto_path);
    if (!os) throw std::runtime_error("opt: cannot write pareto CSV");
    runtime::Row header{"id"};
    for (const auto& axis : space.axes()) {
      header.push_back("param:" + axis.key);
    }
    for (Objective o : opt.objectives) {
      header.push_back(std::string("obj:") + to_string(o));
    }
    os << join_csv(header) << "\n";
    for (const auto& p : result.front.points()) {
      runtime::Row row{fmt_u64(p.id)};
      for (double v : p.params) row.push_back(fmt_double(v));
      for (double v : p.objectives) row.push_back(fmt_double(v));
      os << join_csv(row) << "\n";
    }
  }
  result.artifacts.push_back(pareto_path);

  const std::string svg_path =
      util::artifact_path("aetr_opt_pareto.svg", opt.out_dir);
  write_svg(svg_path, result, opt.objectives, full_n);
  result.artifacts.push_back(svg_path);

  const std::string summary_path =
      util::artifact_path("aetr_opt_summary.json", opt.out_dir);
  write_summary_json(summary_path, space, opt, result, full_n);
  result.artifacts.push_back(summary_path);

  say("front: " + std::to_string(result.front.size()) + " points, " +
      std::string(result.dominated_baseline ? "dominates" : "does not "
                                                            "dominate") +
      " the default config");
  return result;
}

}  // namespace aetr::opt
