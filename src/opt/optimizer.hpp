// Budgeted, deterministic, parallel multi-objective search over
// core::ScenarioConfig.
//
// Strategies:
//   * factorial — every point of the space's per-axis grids (budget ignored);
//   * random    — `budget` points sampled from the space;
//   * halving   — successive halving: a warm-started population is scored on
//     a quarter-length stream, the non-dominated half is promoted to a
//     half-length stream, and the survivors to the full workload. Quick
//     screening spends most of the budget where it is cheap.
//
// Determinism contract (same spirit as runtime::run_sweep, extended to
// resume): the trial list, every evaluation, and every artifact byte are a
// pure function of (space, options, base scenario). Per-trial seeds derive
// from stable trial ids — never from execution order, thread identity, or
// which trials a resumed run found already checkpointed — so `--jobs 1`,
// `--jobs N`, and any interrupt/--resume split produce identical results.
//
// Every completed evaluation is appended to a checkpoint CSV; optimize()
// with resume=true reloads it, verifies it matches this invocation
// (same axes, params, objectives), and only runs what is missing.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "opt/evaluator.hpp"
#include "opt/pareto.hpp"
#include "opt/search_space.hpp"

namespace aetr::opt {

enum class Strategy { kFactorial, kRandom, kHalving };

[[nodiscard]] const char* to_string(Strategy s);
/// Parse "factorial" | "random" | "halving"; throws on anything else.
[[nodiscard]] Strategy parse_strategy(const std::string& name);

struct OptOptions {
  Strategy strategy = Strategy::kHalving;
  /// Trial budget: population size for halving, trial count for random;
  /// ignored by factorial (the grid is the budget).
  std::size_t budget = 16;
  std::size_t jobs = 0;       ///< worker threads; 0 = hardware concurrency
  std::uint64_t seed = 1;     ///< root seed for all derived streams
  std::string out_dir;        ///< artifact directory ("" = results/$AETR_OUT)
  Workload workload;          ///< stream every candidate is scored on
  std::vector<Objective> objectives{Objective::kEnergyPerEvent,
                                    Objective::kErrorRms};
  /// Resume from the checkpoint left in out_dir by an earlier run.
  bool resume = false;
  /// Testing hook: throw OptInterrupted after this many evaluations have
  /// completed in this process (0 = disabled). The checkpoint holds them.
  std::size_t interrupt_after = 0;
  /// Per-trial telemetry artifacts (aetr_opt_r<rung>_t<id>_*.json/.csv).
  bool trace = false;
  bool metrics = false;
  /// Progress lines ("rung 1/3: 16 trials ..."); null = silent.
  std::function<void(const std::string&)> progress;
};

/// One scored candidate.
struct Trial {
  std::uint64_t id{0};       ///< stable identity within the run
  std::size_t rung{0};       ///< halving rung (0 for flat strategies)
  std::size_t n_events{0};   ///< stream length it was scored on
  std::vector<double> params;
  Evaluation eval;
  bool from_checkpoint{false};  ///< loaded, not evaluated, this process
};

struct OptResult {
  std::vector<Trial> trials;        ///< every evaluation, (rung, id) order
  ParetoFront front;                ///< over full-length evaluations only
  std::vector<double> baseline_params;
  Evaluation baseline;              ///< default config, full length, paired
  bool dominated_baseline{false};   ///< front strictly dominates the default
  double hypervolume{0.0};
  std::vector<double> reference;    ///< hypervolume reference point
  std::size_t evaluations_run{0};   ///< evaluated in this process
  std::vector<std::string> artifacts;  ///< files written (in write order)
};

/// Thrown by the interrupt_after testing hook; everything evaluated so far
/// is already in the checkpoint, so a resume run completes the search.
class OptInterrupted : public std::runtime_error {
 public:
  explicit OptInterrupted(std::size_t evaluations);
  [[nodiscard]] std::size_t evaluations() const { return evaluations_; }

 private:
  std::size_t evaluations_;
};

/// Run the search. `base` is the scenario every candidate perturbs (and the
/// baseline the front is judged against). Writes aetr_opt_trials.csv,
/// aetr_opt_pareto.csv, aetr_opt_pareto.svg, aetr_opt_summary.json, and the
/// aetr_opt_checkpoint.csv into the artifact directory.
[[nodiscard]] OptResult optimize(const SearchSpace& space,
                                 const core::ScenarioConfig& base,
                                 const OptOptions& options);

}  // namespace aetr::opt
