#include "opt/pareto.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace aetr::opt {
namespace {

bool objectives_less(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.objectives != b.objectives) return a.objectives < b.objectives;
  return a.id < b.id;
}

/// Recursive slicing: sort by the last objective, sweep slices upward, and
/// weight each slice's (d-1)-dimensional hypervolume by its thickness.
double hv_recursive(std::vector<std::vector<double>> pts,
                    const std::vector<double>& ref) {
  const std::size_t d = ref.size();
  if (pts.empty()) return 0.0;
  if (d == 1) {
    double best = pts.front()[0];
    for (const auto& p : pts) best = std::min(best, p[0]);
    return best < ref[0] ? ref[0] - best : 0.0;
  }
  std::sort(pts.begin(), pts.end(),
            [d](const std::vector<double>& a, const std::vector<double>& b) {
              return a[d - 1] < b[d - 1];
            });
  double volume = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    // Slab along the last objective: from this point's coordinate up to the
    // next point's (or the reference). Points 0..i are active inside it.
    const double z_lo = pts[i][d - 1];
    const double z_hi = (i + 1 < pts.size())
                            ? std::min(pts[i + 1][d - 1], ref[d - 1])
                            : ref[d - 1];
    if (z_hi <= z_lo) continue;
    std::vector<std::vector<double>> slice;
    slice.reserve(i + 1);
    for (std::size_t j = 0; j <= i; ++j) {
      slice.emplace_back(pts[j].begin(), pts[j].end() - 1);
    }
    std::vector<double> sub_ref(ref.begin(), ref.end() - 1);
    volume += (z_hi - z_lo) * hv_recursive(std::move(slice), sub_ref);
  }
  return volume;
}

}  // namespace

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pareto: objective vectors differ in size");
  }
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

bool ParetoFront::add(ParetoPoint point) {
  for (const auto& member : points_) {
    if (member.objectives == point.objectives ||
        dominates(member.objectives, point.objectives)) {
      return false;
    }
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&point](const ParetoPoint& member) {
                                 return dominates(point.objectives,
                                                  member.objectives);
                               }),
                points_.end());
  const auto pos =
      std::lower_bound(points_.begin(), points_.end(), point, objectives_less);
  points_.insert(pos, std::move(point));
  return true;
}

bool ParetoFront::contains_dominator_of(
    const std::vector<double>& objectives) const {
  for (const auto& member : points_) {
    if (dominates(member.objectives, objectives)) return true;
  }
  return false;
}

double ParetoFront::hypervolume(const std::vector<double>& reference) const {
  std::vector<std::vector<double>> pts;
  pts.reserve(points_.size());
  for (const auto& member : points_) {
    if (member.objectives.size() != reference.size()) {
      throw std::invalid_argument(
          "pareto: reference dimension mismatches the front");
    }
    bool inside = true;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (member.objectives[i] >= reference[i]) {
        inside = false;
        break;
      }
    }
    if (inside) pts.push_back(member.objectives);
  }
  return hv_recursive(std::move(pts), reference);
}

}  // namespace aetr::opt
