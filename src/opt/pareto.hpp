// Pareto front over minimised objective vectors.
//
// Dominance (all objectives minimised): a dominates b iff a is no worse in
// every objective and strictly better in at least one. The front keeps the
// mutually non-dominated set; points whose objective vector duplicates one
// already on the front are dropped (first id wins), so the front is a set
// of distinct trade-offs, not a multiset of ties.
//
// The front order is deterministic — ascending lexicographic by objective
// vector, ties by id — so serialising a front is byte-stable regardless of
// insertion order.
#pragma once

#include <cstdint>
#include <vector>

namespace aetr::opt {

/// One candidate on (or tested against) the front. `params` is carried
/// opaquely — the front only reads `objectives`.
struct ParetoPoint {
  std::uint64_t id{0};
  std::vector<double> params;
  std::vector<double> objectives;  ///< all minimised
};

/// Strict Pareto dominance (minimisation). Vectors must be the same size.
[[nodiscard]] bool dominates(const std::vector<double>& a,
                             const std::vector<double>& b);

class ParetoFront {
 public:
  /// Insert a candidate. Returns true when the point joins the front
  /// (evicting any now-dominated members); false when it is dominated by
  /// or duplicates an existing member.
  bool add(ParetoPoint point);

  /// Current front, sorted lexicographically by objectives (ties by id).
  [[nodiscard]] const std::vector<ParetoPoint>& points() const {
    return points_;
  }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// True when some member strictly dominates `objectives`.
  [[nodiscard]] bool contains_dominator_of(
      const std::vector<double>& objectives) const;

  /// Exact hypervolume dominated by the front below `reference` (the
  /// region { x : some member dominates-or-equals x, x <= reference },
  /// computed by recursive slicing on the last objective). Members not
  /// strictly below the reference in every coordinate contribute nothing.
  /// Works for any dimension; 0 for an empty front.
  [[nodiscard]] double hypervolume(
      const std::vector<double>& reference) const;

 private:
  std::vector<ParetoPoint> points_;
};

}  // namespace aetr::opt
