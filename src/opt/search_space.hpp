// Typed parameter axes over core::ScenarioConfig for the optimizer.
//
// A SearchSpace is an ordered list of named axes; each axis names a scenario
// key (any key core::load_scenario() accepts) and a domain to draw values
// from. Points materialise through core::apply_scenario_key(), so the space
// can tune exactly what a scenario file can express — and a typo'd key fails
// with the same did-you-mean diagnostic a config file gets.
//
// Domains:
//   lin(lo, hi, steps)     continuous, linear;  grid = lin_space(lo,hi,steps)
//   log(lo, hi, steps)     continuous, log;     grid = log_space(lo,hi,steps)
//   logint(lo, hi, steps)  log-spaced integers (rounded, deduplicated)
//   int(lo, hi)            every integer in [lo, hi]
//   choice(v1, v2, ...)    explicit value list
//
// The text form (one axis per line, same "key = domain" shape as the config
// format) round-trips through parse()/dump(), so a space travels next to the
// scenario file it perturbs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace aetr::opt {

enum class AxisKind { kLinear, kLog, kLogInt, kInteger, kChoice };

[[nodiscard]] const char* to_string(AxisKind k);

/// One tunable dimension: a scenario key plus a value domain.
struct ParamAxis {
  std::string key;
  AxisKind kind{AxisKind::kLinear};
  double lo{0.0};
  double hi{0.0};
  std::size_t steps{0};          ///< grid points (kLinear/kLog/kLogInt)
  std::vector<double> choices;   ///< kChoice values, in declaration order

  /// The finite grid this axis contributes to a full-factorial search.
  /// Integer-valued kinds return exact integers (deduplicated for kLogInt).
  [[nodiscard]] std::vector<double> grid_values() const;

  /// Map a uniform u in [0, 1) into the domain. Integer-valued kinds round
  /// to an exact integer; kChoice picks by index. Deterministic in u.
  [[nodiscard]] double value_at(double u) const;

  /// Render one value of this axis as the string apply_scenario_key()
  /// receives: integers exactly, reals with round-trip precision.
  [[nodiscard]] std::string format(double value) const;
};

class SearchSpace {
 public:
  SearchSpace& linear(std::string key, double lo, double hi,
                      std::size_t steps);
  SearchSpace& log(std::string key, double lo, double hi, std::size_t steps);
  SearchSpace& log_int(std::string key, double lo, double hi,
                       std::size_t steps);
  SearchSpace& integer(std::string key, double lo, double hi);
  SearchSpace& choice(std::string key, std::vector<double> values);

  [[nodiscard]] const std::vector<ParamAxis>& axes() const { return axes_; }
  [[nodiscard]] std::size_t size() const { return axes_.size(); }

  /// Product of per-axis grid sizes — the full-factorial trial count.
  [[nodiscard]] std::size_t factorial_size() const;

  /// Decode flat factorial index -> one value per axis (row-major, first
  /// axis slowest, matching runtime::SweepGrid).
  [[nodiscard]] std::vector<double> factorial_point(std::size_t index) const;

  /// Draw one point from `seed`: axis i consumes derive_seed(seed, i), so a
  /// point is a pure function of (space, seed) — never of execution order.
  [[nodiscard]] std::vector<double> sample(std::uint64_t seed) const;

  /// Apply a point (one value per axis, axis order) to a scenario via
  /// core::apply_scenario_key. Throws std::runtime_error on size mismatch
  /// or an unknown/invalid key.
  void apply(core::ScenarioConfig& scenario,
             const std::vector<double>& values) const;

  /// One "key = domain" line per axis; parse(dump()) round-trips.
  [[nodiscard]] std::string dump() const;

  /// Parse the text form. Throws std::runtime_error with the line number on
  /// syntax errors, unknown scenario keys, or empty/invalid domains.
  /// telemetry.* keys are rejected: observers must not join the search.
  [[nodiscard]] static SearchSpace parse(std::istream& is);
  [[nodiscard]] static SearchSpace parse_file(const std::string& path);

  /// The built-in space over the knobs that trade energy against accuracy
  /// and latency (theta_div, n_div, batch threshold, sync stages).
  [[nodiscard]] static SearchSpace default_space();

 private:
  SearchSpace& add(ParamAxis axis);
  std::vector<ParamAxis> axes_;
};

}  // namespace aetr::opt
