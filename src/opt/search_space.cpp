#include "opt/search_space.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "core/config_io.hpp"
#include "runtime/seed.hpp"
#include "runtime/sweep_grid.hpp"

namespace aetr::opt {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("search space: " + what);
}

bool is_integer_kind(AxisKind k) {
  return k == AxisKind::kLogInt || k == AxisKind::kInteger;
}

std::string format_double(double v) {
  // Shortest form that round-trips: try %g precisions, fall back to %.17g.
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

const char* to_string(AxisKind k) {
  switch (k) {
    case AxisKind::kLinear: return "lin";
    case AxisKind::kLog: return "log";
    case AxisKind::kLogInt: return "logint";
    case AxisKind::kInteger: return "int";
    case AxisKind::kChoice: return "choice";
  }
  return "?";
}

std::vector<double> ParamAxis::grid_values() const {
  switch (kind) {
    case AxisKind::kLinear:
      return runtime::SweepGrid::lin_space(lo, hi, steps);
    case AxisKind::kLog:
      return runtime::SweepGrid::log_space(lo, hi, steps);
    case AxisKind::kLogInt: {
      std::vector<double> out;
      for (double v : runtime::SweepGrid::log_space(lo, hi, steps)) {
        const double r = std::round(v);
        if (out.empty() || out.back() != r) out.push_back(r);
      }
      return out;
    }
    case AxisKind::kInteger: {
      std::vector<double> out;
      for (double v = lo; v <= hi; v += 1.0) out.push_back(v);
      return out;
    }
    case AxisKind::kChoice:
      return choices;
  }
  return {};
}

double ParamAxis::value_at(double u) const {
  u = std::clamp(u, 0.0, std::nextafter(1.0, 0.0));
  switch (kind) {
    case AxisKind::kLinear:
      return lo + u * (hi - lo);
    case AxisKind::kLog:
      return lo * std::pow(hi / lo, u);
    case AxisKind::kLogInt:
      return std::clamp(std::round(lo * std::pow(hi / lo, u)), lo, hi);
    case AxisKind::kInteger:
      return std::clamp(lo + std::floor(u * (hi - lo + 1.0)), lo, hi);
    case AxisKind::kChoice:
      return choices[static_cast<std::size_t>(
          u * static_cast<double>(choices.size()))];
  }
  return lo;
}

std::string ParamAxis::format(double value) const {
  if (is_integer_kind(kind) ||
      (kind == AxisKind::kChoice && value == std::round(value))) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(std::llround(value)));
    return buf;
  }
  return format_double(value);
}

SearchSpace& SearchSpace::add(ParamAxis axis) {
  if (axis.key.rfind("telemetry.", 0) == 0) {
    fail("axis '" + axis.key + "': telemetry keys cannot be searched");
  }
  // Validate the key eagerly against the shared config schema (with its
  // did-you-mean hint) so a typo fails at space construction, not
  // mid-optimisation. Deprecated aliases (run.*) are accepted here just as
  // the config loader accepts them.
  const auto& schema = core::scenario_schema();
  if (!schema.known(axis.key)) {
    std::string msg = "axis '" + axis.key + "': unknown scenario key";
    if (const std::string hint = schema.suggest(axis.key); !hint.empty()) {
      msg += " (did you mean '" + hint + "'?)";
    }
    fail(msg);
  }
  for (const auto& existing : axes_) {
    if (existing.key == axis.key) fail("duplicate axis '" + axis.key + "'");
  }
  if (axis.kind == AxisKind::kChoice) {
    if (axis.choices.empty()) fail("axis '" + axis.key + "': empty choice");
  } else {
    if (axis.hi < axis.lo) fail("axis '" + axis.key + "': hi < lo");
    if (axis.kind != AxisKind::kInteger && axis.steps == 0) {
      fail("axis '" + axis.key + "': zero steps");
    }
    if ((axis.kind == AxisKind::kLog || axis.kind == AxisKind::kLogInt) &&
        axis.lo <= 0.0) {
      fail("axis '" + axis.key + "': log domain needs lo > 0");
    }
  }
  axes_.push_back(std::move(axis));
  return *this;
}

SearchSpace& SearchSpace::linear(std::string key, double lo, double hi,
                                 std::size_t steps) {
  return add({std::move(key), AxisKind::kLinear, lo, hi, steps, {}});
}
SearchSpace& SearchSpace::log(std::string key, double lo, double hi,
                              std::size_t steps) {
  return add({std::move(key), AxisKind::kLog, lo, hi, steps, {}});
}
SearchSpace& SearchSpace::log_int(std::string key, double lo, double hi,
                                  std::size_t steps) {
  return add({std::move(key), AxisKind::kLogInt, lo, hi, steps, {}});
}
SearchSpace& SearchSpace::integer(std::string key, double lo, double hi) {
  return add({std::move(key), AxisKind::kInteger, lo, hi, 0, {}});
}
SearchSpace& SearchSpace::choice(std::string key, std::vector<double> values) {
  return add({std::move(key), AxisKind::kChoice, 0, 0, 0, std::move(values)});
}

std::size_t SearchSpace::factorial_size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.grid_values().size();
  return n;
}

std::vector<double> SearchSpace::factorial_point(std::size_t index) const {
  std::vector<double> values(axes_.size());
  // Row-major: last axis varies fastest, as in runtime::SweepGrid.
  for (std::size_t i = axes_.size(); i-- > 0;) {
    const auto grid = axes_[i].grid_values();
    values[i] = grid[index % grid.size()];
    index /= grid.size();
  }
  return values;
}

std::vector<double> SearchSpace::sample(std::uint64_t seed) const {
  std::vector<double> values(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    const std::uint64_t bits = runtime::derive_seed(seed, i);
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    values[i] = axes_[i].value_at(u);
  }
  return values;
}

void SearchSpace::apply(core::ScenarioConfig& scenario,
                        const std::vector<double>& values) const {
  if (values.size() != axes_.size()) {
    fail("point has " + std::to_string(values.size()) + " values for " +
         std::to_string(axes_.size()) + " axes");
  }
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    core::scenario_schema().apply(scenario, axes_[i].key,
                                  axes_[i].format(values[i]));
  }
}

std::string SearchSpace::dump() const {
  std::ostringstream os;
  os << "# aetr optimizer search space\n";
  for (const auto& a : axes_) {
    os << a.key << " = " << to_string(a.kind) << "(";
    if (a.kind == AxisKind::kChoice) {
      for (std::size_t i = 0; i < a.choices.size(); ++i) {
        if (i) os << ", ";
        os << a.format(a.choices[i]);
      }
    } else {
      os << a.format(a.lo) << ", " << a.format(a.hi);
      if (a.kind != AxisKind::kInteger) os << ", " << a.steps;
    }
    os << ")\n";
  }
  return os.str();
}

SearchSpace SearchSpace::parse(std::istream& is) {
  SearchSpace space;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto fail_at = [&](const std::string& what) {
      fail("line " + std::to_string(line_no) + ": " + what);
    };
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      if (b == std::string::npos) return std::string{};
      const auto e = s.find_last_not_of(" \t\r");
      return s.substr(b, e - b + 1);
    };
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail_at("expected 'key = domain(...)'");
    const std::string key = trim(line.substr(0, eq));
    const std::string domain = trim(line.substr(eq + 1));
    const auto open = domain.find('(');
    if (open == std::string::npos || domain.back() != ')') {
      fail_at("expected 'kind(args)' after '='");
    }
    const std::string kind = trim(domain.substr(0, open));
    std::vector<double> args;
    std::istringstream arg_stream(
        domain.substr(open + 1, domain.size() - open - 2));
    std::string cell;
    while (std::getline(arg_stream, cell, ',')) {
      cell = trim(cell);
      if (cell.empty()) fail_at("empty argument");
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        fail_at("bad number '" + cell + "'");
      }
      args.push_back(v);
    }
    try {
      if (kind == "lin" && args.size() == 3) {
        space.linear(key, args[0], args[1],
                     static_cast<std::size_t>(args[2]));
      } else if (kind == "log" && args.size() == 3) {
        space.log(key, args[0], args[1], static_cast<std::size_t>(args[2]));
      } else if (kind == "logint" && args.size() == 3) {
        space.log_int(key, args[0], args[1],
                      static_cast<std::size_t>(args[2]));
      } else if (kind == "int" && args.size() == 2) {
        space.integer(key, args[0], args[1]);
      } else if (kind == "choice" && !args.empty()) {
        space.choice(key, args);
      } else {
        fail_at("unknown domain '" + kind + "' (or wrong arity)");
      }
    } catch (const std::runtime_error& e) {
      fail_at(e.what());
    }
  }
  if (space.axes().empty()) fail("no axes");
  return space;
}

SearchSpace SearchSpace::parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open '" + path + "'");
  return parse(is);
}

SearchSpace SearchSpace::default_space() {
  SearchSpace space;
  // The paper's energy/accuracy trade runs through the clock division
  // schedule (theta_div sets the error bound, n_div the awake span) and the
  // buffering depth (batch threshold trades drain energy against latency).
  space.choice("clock.theta_div", {16, 32, 64, 128, 256});
  space.integer("clock.n_div", 4, 10);
  space.log_int("fifo.batch_threshold", 64, 2048, 6);
  space.integer("frontend.sync_stages", 1, 3);
  return space;
}

}  // namespace aetr::opt
