// Fleet bridge: run an aetr::fleet node phase as live gateway sessions.
//
// run_fleet() materialises each node's stream and scenario and runs them
// as batch run_scenario() jobs. The bridge instead wires those exact
// per-node derivations — fleet::node_stream() and fleet::node_scenario()
// — into concurrent net::Client connections against a running gateway, so
// an N-node fleet executes as N live sessions over the loopback transport.
// DATA chunks are interleaved round-robin across the open connections,
// which is precisely the concurrency the single-threaded server must not
// care about: each session's summary is byte-identical to the batch
// run_scenario() result for that node (asserted in tests/test_net_server
// and the net-determinism CI job).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace aetr::net {

struct BridgeEndpoint {
  /// Unix socket path ("" = use TCP instead).
  std::string uds_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = 0;
};

struct BridgeOptions {
  /// Sessions open at once; node i joins as soon as a slot frees.
  std::size_t concurrency = 4;
  /// Events per DATA frame.
  std::size_t chunk = 256;
  /// Session name prefix: sessions are "<prefix><node_id>".
  std::string name_prefix = "node-";
};

struct BridgeResult {
  /// Per-node final summary text, node-id order.
  std::vector<std::string> summaries;
  std::uint64_t events_streamed{0};
  std::size_t sessions{0};
};

/// Stream every node of `config` through live sessions at `endpoint`.
/// Throws std::runtime_error on connection or protocol failure.
[[nodiscard]] BridgeResult run_fleet_bridge(const fleet::FleetConfig& config,
                                            const BridgeEndpoint& endpoint,
                                            const BridgeOptions& options = {});

}  // namespace aetr::net
