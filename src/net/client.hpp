// Blocking client for the aetr::net gateway: connect over TCP or a Unix
// domain socket, HELLO with a scenario config, stream an event stream in
// credit-respecting DATA chunks, and DRAIN for the final summary.
//
// The client enforces the credit window on its side (never more events in
// flight than granted) and consumes server frames inline — CREDIT grants,
// SNAPSHOT_ACKs, and a NACK at any point throws std::runtime_error with
// the server's reason.
#pragma once

#include <cstdint>
#include <string>

#include "aer/event.hpp"
#include "net/wire.hpp"

namespace aetr::net {

struct SendOptions {
  /// Events per DATA frame.
  std::size_t chunk = 512;
  /// usleep(pace_us) every pace_every ingested events (0 = full speed) —
  /// widens the kill window for the CI SIGKILL/resume job, mirroring
  /// aetr-serve run --pace-us/--pace-every.
  std::uint64_t pace_us = 0;
  std::uint64_t pace_every = 1000;
  /// Ask the server to checkpoint after every N sent events (0 = never).
  /// Deterministic: the request points are a pure function of the stream.
  std::uint64_t snapshot_every = 0;
};

class Client {
 public:
  /// Throws std::runtime_error on connect failure.
  [[nodiscard]] static Client connect_tcp(const std::string& host, int port);
  [[nodiscard]] static Client connect_uds(const std::string& path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// HELLO / HELLO_ACK handshake. config_text is canonical dump_scenario()
  /// output ("" = server default). Returns the ack — events_fed tells a
  /// resuming client how many stream events to skip.
  HelloAck hello(const std::string& session_name,
                 const std::string& config_text);

  /// Stream events[from..] in credit-respecting chunks.
  /// Returns the number of events actually sent.
  std::uint64_t send_events(const aer::EventStream& events, std::size_t from,
                            const SendOptions& options = {});

  /// Send at most max_events from events[from..] (still chunked and
  /// credit-respecting); returns how many were sent. The fleet bridge uses
  /// this to interleave DATA round-robin across concurrent sessions.
  std::uint64_t send_some(const aer::EventStream& events, std::size_t from,
                          std::size_t max_events,
                          const SendOptions& options = {});

  /// DRAIN; blocks for SUMMARY + BYE and returns the summary text.
  [[nodiscard]] std::string drain();

  /// BYE without drain: abandon the session (no summary).
  void bye();

 private:
  explicit Client(int fd);
  void send_bytes(const std::vector<std::uint8_t>& bytes);
  /// Block for the next frame; NACK throws, unexpected types throw.
  Frame recv_frame();

  int fd_{-1};
  std::uint16_t session_id_{0};
  std::uint64_t credit_{0};
  Decoder decoder_;
};

}  // namespace aetr::net
