#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace aetr::net {
namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("net client: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::Client(int fd) : fd_{fd} {}

Client::Client(Client&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)},
      session_id_{other.session_id_},
      credit_{other.credit_},
      decoder_{std::move(other.decoder_)} {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    session_id_ = other.session_id_;
    credit_ = other.credit_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client Client::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(tcp)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("net client: bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    sys_fail("connect(tcp)");
  }
  return Client{fd};
}

Client Client::connect_uds(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("net client: UDS path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(unix)");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    sys_fail("connect(unix)");
  }
  return Client{fd};
}

void Client::send_bytes(const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

Frame Client::recv_frame() {
  std::uint8_t buf[65536];
  for (;;) {
    if (auto f = decoder_.next()) {
      if (f->type == MsgType::kNack) {
        const Nack nack = decode_nack(f->payload);
        throw std::runtime_error("net client: server NACK: " + nack.reason);
      }
      return *f;
    }
    if (decoder_.failed()) {
      throw std::runtime_error("net client: framing: " + decoder_.error());
    }
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("read");
    }
    if (n == 0) {
      throw std::runtime_error("net client: server closed the connection");
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

HelloAck Client::hello(const std::string& session_name,
                       const std::string& config_text) {
  Hello m;
  m.session_name = session_name;
  m.config_text = config_text;
  send_bytes(encode_frame(MsgType::kHello, 0, encode_hello(m)));
  const Frame f = recv_frame();
  if (f.type != MsgType::kHelloAck) {
    throw std::runtime_error(std::string{"net client: expected HELLO_ACK, "
                                         "got "} +
                             to_string(f.type));
  }
  const HelloAck ack = decode_hello_ack(f.payload);
  session_id_ = f.session_id;
  credit_ = ack.credit;
  return ack;
}

std::uint64_t Client::send_events(const aer::EventStream& events,
                                  std::size_t from,
                                  const SendOptions& options) {
  return send_some(events, from, events.size() - std::min(from, events.size()),
                   options);
}

std::uint64_t Client::send_some(const aer::EventStream& events,
                                std::size_t from, std::size_t max_events,
                                const SendOptions& options) {
  const std::size_t chunk_max =
      options.chunk == 0 ? 512
                         : std::min(options.chunk, kMaxEventsPerFrame);
  const std::size_t end =
      from + std::min(max_events, events.size() - std::min(from,
                                                           events.size()));
  std::uint64_t sent = 0;
  std::size_t pos = from;
  std::uint64_t since_snapshot = 0;
  while (pos < end) {
    while (credit_ == 0) {
      const Frame f = recv_frame();
      if (f.type == MsgType::kCredit) {
        credit_ += decode_credit(f.payload).grant;
      } else {
        throw std::runtime_error(
            std::string{"net client: expected CREDIT, got "} +
            to_string(f.type));
      }
    }
    const std::size_t n =
        std::min({chunk_max, end - pos, static_cast<std::size_t>(credit_)});
    send_bytes(
        encode_frame(MsgType::kData, session_id_, encode_data(events, pos, n)));
    credit_ -= n;
    pos += n;
    sent += n;
    // Consume the grant for this chunk before the next send, so at most
    // one window is ever in flight (and a NACK surfaces promptly).
    const Frame f = recv_frame();
    if (f.type == MsgType::kCredit) {
      credit_ += decode_credit(f.payload).grant;
    } else {
      throw std::runtime_error(
          std::string{"net client: expected CREDIT, got "} +
          to_string(f.type));
    }
    if (options.snapshot_every > 0) {
      since_snapshot += n;
      if (since_snapshot >= options.snapshot_every) {
        since_snapshot = 0;
        send_bytes(encode_frame(MsgType::kSnapshotReq, session_id_, {}));
        const Frame ack = recv_frame();
        if (ack.type != MsgType::kSnapshotAck) {
          throw std::runtime_error(
              std::string{"net client: expected SNAPSHOT_ACK, got "} +
              to_string(ack.type));
        }
      }
    }
    if (options.pace_us > 0 && options.pace_every > 0 &&
        sent % options.pace_every < n) {
      ::usleep(static_cast<useconds_t>(options.pace_us));
    }
  }
  return sent;
}

std::string Client::drain() {
  send_bytes(encode_frame(MsgType::kDrain, session_id_, {}));
  std::string summary;
  for (;;) {
    const Frame f = recv_frame();
    if (f.type == MsgType::kCredit) continue;  // late grant
    if (f.type == MsgType::kSummary) {
      summary = decode_summary(f.payload).text;
      continue;
    }
    if (f.type == MsgType::kBye) return summary;
    throw std::runtime_error(std::string{"net client: unexpected "} +
                             to_string(f.type) + " during drain");
  }
}

void Client::bye() {
  send_bytes(encode_frame(MsgType::kBye, session_id_, {}));
}

}  // namespace aetr::net
