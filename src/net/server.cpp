#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace aetr::net {
namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

/// Blocking send of the whole buffer (MSG_NOSIGNAL: a vanished peer is a
/// return value, not a SIGPIPE). EPIPE/ECONNRESET are reported as false
/// (peer gone), everything else throws.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      sys_fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Impl {
  ServerOptions options;
  int tcp_fd{-1};
  int uds_fd{-1};
  int wake_rd{-1};
  int wake_wr{-1};
  int bound_tcp_port{0};
  std::atomic<bool> stop{false};
  std::size_t completed{0};
  std::uint16_t next_session_id{1};

  struct Conn {
    int fd{-1};
    std::unique_ptr<Connection> connection;
    bool peer_gone{false};
  };
  std::vector<Conn> conns;

  ~Impl() {
    for (auto& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (tcp_fd >= 0) ::close(tcp_fd);
    if (uds_fd >= 0) ::close(uds_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
    if (!options.uds_path.empty()) ::unlink(options.uds_path.c_str());
  }

  void bind_listeners() {
    if (options.tcp) {
      tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (tcp_fd < 0) sys_fail("socket(tcp)");
      const int one = 1;
      ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
      if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        sys_fail("bind(tcp)");
      if (::listen(tcp_fd, 64) != 0) sys_fail("listen(tcp)");
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&bound), &len) !=
          0)
        sys_fail("getsockname(tcp)");
      bound_tcp_port = ntohs(bound.sin_port);
    }
    if (!options.uds_path.empty()) {
      sockaddr_un addr{};
      if (options.uds_path.size() >= sizeof addr.sun_path) {
        throw std::runtime_error("net: UDS path too long: " +
                                 options.uds_path);
      }
      uds_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (uds_fd < 0) sys_fail("socket(unix)");
      ::unlink(options.uds_path.c_str());
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, options.uds_path.c_str(),
                   sizeof addr.sun_path - 1);
      if (::bind(uds_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        sys_fail("bind(unix)");
      if (::listen(uds_fd, 64) != 0) sys_fail("listen(unix)");
    }
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) sys_fail("pipe");
    wake_rd = pipe_fds[0];
    wake_wr = pipe_fds[1];
  }

  void accept_on(int listen_fd) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
      sys_fail("accept");
    }
    if (conns.size() >= options.max_connections) {
      ::close(fd);
      return;
    }
    Conn c;
    c.fd = fd;
    const std::uint16_t id = next_session_id++;
    if (next_session_id == 0) next_session_id = 1;
    // The send path writes synchronously from the single event-loop
    // thread. A stalled client could in principle block the loop; the
    // paced test clients here always drain their reads, and the replies
    // (acks, credits, one summary) are small against socket buffers.
    c.connection = std::make_unique<Connection>(
        options.gateway, id, [this, fd](const std::vector<std::uint8_t>& b) {
          for (auto& cc : conns) {
            if (cc.fd == fd && !cc.peer_gone) {
              if (!write_all(fd, b.data(), b.size())) cc.peer_gone = true;
              return;
            }
          }
        });
    conns.push_back(std::move(c));
  }

  void close_conn(std::size_t i) {
    ::close(conns[i].fd);
    conns[i].fd = -1;
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
    ++completed;
  }

  void drain_all() {
    for (std::size_t i = conns.size(); i > 0; --i) {
      conns[i - 1].connection->drain();
      close_conn(i - 1);
    }
  }

  void loop() {
    std::vector<pollfd> fds;
    std::uint8_t buf[65536];
    while (!stop.load(std::memory_order_relaxed)) {
      if (options.exit_after_sessions > 0 &&
          completed >= options.exit_after_sessions && conns.empty()) {
        return;
      }
      fds.clear();
      fds.push_back({wake_rd, POLLIN, 0});
      if (tcp_fd >= 0) fds.push_back({tcp_fd, POLLIN, 0});
      if (uds_fd >= 0) fds.push_back({uds_fd, POLLIN, 0});
      const std::size_t first_conn = fds.size();
      for (const auto& c : conns) fds.push_back({c.fd, POLLIN, 0});

      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        sys_fail("poll");
      }
      if ((fds[0].revents & POLLIN) != 0) {
        char sink[64];
        [[maybe_unused]] const ssize_t drained =
            ::read(wake_rd, sink, sizeof sink);
        continue;  // stop flag re-checked at the top
      }
      std::size_t li = 1;
      if (tcp_fd >= 0) {
        if ((fds[li].revents & POLLIN) != 0) accept_on(tcp_fd);
        ++li;
      }
      if (uds_fd >= 0) {
        if ((fds[li].revents & POLLIN) != 0) accept_on(uds_fd);
        ++li;
      }
      // Walk connections back-to-front so close_conn's erase is safe.
      for (std::size_t k = fds.size(); k > first_conn; --k) {
        const std::size_t i = k - first_conn - 1;
        const short re = fds[k - 1].revents;
        if (re == 0) continue;
        if (i >= conns.size() || conns[i].fd != fds[k - 1].fd) continue;
        bool close_now = false;
        if ((re & POLLIN) != 0) {
          const ssize_t n = ::read(conns[i].fd, buf, sizeof buf);
          if (n > 0) {
            close_now = !conns[i].connection->on_bytes(
                buf, static_cast<std::size_t>(n));
          } else if (n == 0) {
            // EOF without DRAIN/BYE: the peer vanished (crash or kill).
            // The session is abandoned; its snapshot, if any, is the
            // resume point.
            close_now = true;
          } else if (errno != EINTR && errno != EAGAIN) {
            close_now = true;
          }
        } else if ((re & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
          close_now = true;
        }
        if (close_now) close_conn(i);
      }
    }
    drain_all();
  }
};

Server::Server(ServerOptions options) : impl_{std::make_unique<Impl>()} {
  impl_->options = std::move(options);
  impl_->bind_listeners();
}

Server::~Server() = default;

int Server::tcp_port() const { return impl_->bound_tcp_port; }

void Server::run() { impl_->loop(); }

void Server::request_stop() {
  impl_->stop.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // Best-effort wake; the pipe is only ever written here.
  [[maybe_unused]] const ssize_t n = ::write(impl_->wake_wr, &byte, 1);
}

std::size_t Server::sessions_completed() const { return impl_->completed; }

}  // namespace aetr::net
