// aetr::net gateway server — a single-threaded poll() readiness loop
// hosting multiple concurrent core::Session instances, one per accepted
// connection, over TCP and/or a Unix domain socket.
//
// Single-threaded on purpose: every session advances only when its bytes
// arrive, so the interleaving of N sessions is exactly the interleaving of
// their byte streams — no scheduler nondeterminism — and each session's
// result is a pure function of its own stream (sessions share no state).
// That is what makes the net-determinism CI job's concurrent-vs-serial
// byte-diff meaningful.
//
// Shutdown: request_stop() (safe from any thread or signal-forwarding
// loop) wakes the poll via a self-pipe; the server then drains every live
// connection — finish() each session, write its summary, best-effort
// SUMMARY+BYE — before run() returns. SIGKILL, by contrast, tests the
// snapshot/resume path: restart with GatewayConfig::resume and clients
// reconnect to continue byte-identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/connection.hpp"

namespace aetr::net {

struct ServerOptions {
  GatewayConfig gateway;
  /// Bind a TCP listener on 127.0.0.1 when true; port 0 = kernel-assigned
  /// (read it back with Server::tcp_port()).
  bool tcp = false;
  int tcp_port = 0;
  /// Bind a Unix domain socket at this path when non-empty (an existing
  /// socket file is replaced).
  std::string uds_path;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 64;
  /// When > 0: run() returns once this many sessions completed (drained or
  /// errored) and no connection is live — lets tests and the fleet bridge
  /// run a server to a known finish line without signals.
  std::size_t exit_after_sessions = 0;
};

class Server {
 public:
  /// Binds the listeners immediately (throws std::runtime_error on any
  /// socket/bind/listen failure) so tcp_port() is valid before run().
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (options.tcp_port, or the kernel's pick for 0).
  [[nodiscard]] int tcp_port() const;

  /// Serve until request_stop() or the exit_after_sessions finish line.
  /// Drains live sessions before returning.
  void run();

  /// Ask a running run() to drain and return; callable from any thread,
  /// and from a signal handler's forwarding thread.
  void request_stop();

  /// Sessions that reached Done or Error over the server's lifetime.
  [[nodiscard]] std::size_t sessions_completed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace aetr::net
