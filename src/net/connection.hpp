// Per-connection protocol state machine for the aetr::net gateway.
//
// A Connection owns one live core::Session and speaks the wire protocol
// (net/wire.hpp) over an abstract byte transport: raw bytes in through
// on_bytes(), raw bytes out through the SendFn the server (or a test)
// injects. No sockets here — the fuzz tests drive a Connection directly
// with crafted byte vectors and assert NACK/close behaviour without a
// kernel in the loop.
//
// Lifecycle:  AwaitHello --HELLO--> Streaming --DRAIN--> Done
// Any protocol violation (garbage before HELLO, DATA before HELLO, credit
// overrun, non-monotonic DATA timestamps, config mismatch on resume,
// malformed payload) sends NACK with a reason and closes; the session is
// abandoned, never half-finished.
//
// Credit/backpressure: the server grants `credit_window` events at
// HELLO_ACK and re-grants after processing each DATA chunk, so a
// well-behaved client can keep at most one window in flight. Session
// backpressure (feed() returning false) is absorbed server-side by
// advancing simulated time — exactly aetr-serve's pump — so the wire-level
// credit never deadlocks against the session's bounded buffer.
//
// Snapshots: with snapshot_dir set and interval > 0, the connection
// checkpoints its session to <snapshot_dir>/<name>.snap at absolute
// simulated-time grid multiples of the interval (atomic tmp+rename), the
// same schedule-as-pure-function-of-the-stream rule as aetr-serve, so a
// killed and resumed gateway continues byte-identically. A client can also
// force one with SNAPSHOT_REQ at a point of its choosing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/session.hpp"
#include "net/wire.hpp"

namespace aetr::net {

/// Server-side settings shared by every connection.
struct GatewayConfig {
  /// Scenario used when HELLO carries an empty config_text.
  core::ScenarioConfig default_scenario;
  /// Per-session summaries land at <out_dir>/summary-<name>.txt ("" = keep
  /// the summary only in the SUMMARY frame, write nothing).
  std::string out_dir;
  /// Per-session snapshots at <snapshot_dir>/<name>.snap ("" = none).
  std::string snapshot_dir;
  /// Periodic snapshot cadence on the simulated clock; <= 0 disables the
  /// periodic schedule (SNAPSHOT_REQ still works when snapshot_dir is set).
  double snapshot_interval_sec = 0.0;
  /// Restore <snapshot_dir>/<name>.snap at HELLO when it exists.
  bool resume = false;
  /// Event credit granted at HELLO_ACK and replenished per DATA chunk.
  std::uint64_t credit_window = 65536;
  /// Drop per-event history in each session (Session::set_keep_history).
  bool keep_history = true;
};

class Connection {
 public:
  using SendFn = std::function<void(const std::vector<std::uint8_t>&)>;

  enum class State : std::uint8_t {
    kAwaitHello,
    kStreaming,
    kDone,   ///< drained: summary written and sent, BYE sent
    kError,  ///< NACKed or framing failure; session abandoned
  };

  Connection(const GatewayConfig& config, std::uint16_t session_id,
             SendFn send);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Feed raw transport bytes. Returns false when the connection is over
  /// (Done or Error) and the transport should close.
  bool on_bytes(const std::uint8_t* data, std::size_t size);
  bool on_bytes(const std::vector<std::uint8_t>& bytes);

  /// Server shutdown (SIGTERM drain): finish the session now, write the
  /// summary, best-effort SUMMARY+BYE. No-op when already Done/Error.
  void drain();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool closed() const {
    return state_ == State::kDone || state_ == State::kError;
  }
  [[nodiscard]] const std::string& session_name() const { return name_; }
  [[nodiscard]] std::uint16_t session_id() const { return session_id_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Summary text of a drained session (empty until Done).
  [[nodiscard]] const std::string& summary_text() const { return summary_; }
  [[nodiscard]] std::uint64_t events_ingested() const { return ingested_; }

 private:
  void handle_frame(const Frame& f);
  void handle_hello(const Frame& f);
  void handle_data(const Frame& f);
  void handle_snapshot_req();
  void finish_session();
  void take_snapshot();
  void protocol_error(const std::string& reason);
  void send_frame(MsgType type, const std::vector<std::uint8_t>& payload);

  GatewayConfig config_;
  std::uint16_t session_id_;
  SendFn send_;
  Decoder decoder_;
  State state_{State::kAwaitHello};
  std::string name_;
  std::string error_;
  std::string summary_;
  std::unique_ptr<core::Session> session_;
  std::uint64_t credit_{0};
  std::uint64_t ingested_{0};
  Time last_time_{Time::zero()};
  bool have_last_time_{false};
  bool snapshotting_{false};
  Time snapshot_interval_{Time::zero()};
  Time next_snapshot_{Time::zero()};
  std::string snapshot_path_;
  std::uint64_t last_snapshot_bytes_{0};
};

/// Atomic (tmp + rename) blob write shared by the gateway and aetr-serve.
void write_blob_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& blob);
/// Whole-file read; throws std::runtime_error when the file cannot open.
[[nodiscard]] std::vector<std::uint8_t> read_blob(const std::string& path);

}  // namespace aetr::net
