#include "net/wire.hpp"

#include <array>
#include <stdexcept>

#include "util/blob.hpp"

namespace aetr::net {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0u ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

/// Wraps BlobReader with the shared "no trailing bytes" check every typed
/// decoder needs: a payload longer than its message is as malformed as a
/// truncated one.
void expect_done(const BlobReader& r, const char* what) {
  if (!r.done()) {
    throw std::runtime_error(std::string{"net: trailing bytes after "} + what);
  }
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kHelloAck: return "HELLO_ACK";
    case MsgType::kData: return "DATA";
    case MsgType::kCredit: return "CREDIT";
    case MsgType::kNack: return "NACK";
    case MsgType::kSnapshotReq: return "SNAPSHOT_REQ";
    case MsgType::kSnapshotAck: return "SNAPSHOT_ACK";
    case MsgType::kDrain: return "DRAIN";
    case MsgType::kSummary: return "SUMMARY";
    case MsgType::kBye: return "BYE";
  }
  return "?";
}

bool is_known_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint8_t>(MsgType::kBye);
}

std::uint32_t crc32_bytes(const std::uint8_t* data, std::size_t size) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_bytes(const std::vector<std::uint8_t>& b) {
  return crc32_bytes(b.data(), b.size());
}

std::vector<std::uint8_t> encode_frame(
    MsgType type, std::uint16_t session_id,
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    throw std::invalid_argument("net: payload exceeds kMaxPayload");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + 4);
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // reserved
  put_u16(out, session_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  // CRC over everything after the magic: type..payload.
  const std::uint32_t crc = crc32_bytes(out.data() + 4, out.size() - 4);
  put_u32(out, crc);
  return out;
}

bool Decoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed()) return false;
  buffer_.insert(buffer_.end(), data, data + size);
  return true;
}

bool Decoder::feed(const std::vector<std::uint8_t>& bytes) {
  return feed(bytes.data(), bytes.size());
}

void Decoder::fail(const std::string& why) {
  error_ = why;
  buffer_.clear();
  consumed_ = 0;
}

void Decoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its receive buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<Frame> Decoder::next() {
  if (failed()) return std::nullopt;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderSize) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  if (get_u32(head) != kMagic) {
    fail("bad magic");
    return std::nullopt;
  }
  const std::uint8_t raw_type = head[4];
  if (!is_known_type(raw_type)) {
    fail("unknown frame type " + std::to_string(raw_type));
    return std::nullopt;
  }
  if (head[5] != 0) {
    fail("reserved header byte set");
    return std::nullopt;
  }
  const std::uint32_t len = get_u32(head + 8);
  if (len > kMaxPayload) {
    fail("oversized payload length " + std::to_string(len));
    return std::nullopt;
  }
  const std::size_t total = kHeaderSize + len + 4;
  if (avail < total) return std::nullopt;
  const std::uint32_t want = get_u32(head + kHeaderSize + len);
  const std::uint32_t got = crc32_bytes(head + 4, kHeaderSize - 4 + len);
  if (want != got) {
    fail("frame CRC mismatch");
    return std::nullopt;
  }
  Frame f;
  f.type = static_cast<MsgType>(raw_type);
  f.session_id = get_u16(head + 6);
  f.payload.assign(head + kHeaderSize, head + kHeaderSize + len);
  consumed_ += total;
  compact();
  return f;
}

// --- typed messages ---------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const Hello& m) {
  BlobWriter w;
  w.u32(m.protocol_version);
  w.str(m.session_name);
  w.str(m.config_text);
  return w.bytes();
}

Hello decode_hello(const std::vector<std::uint8_t>& payload) {
  BlobReader r{payload};
  Hello m;
  m.protocol_version = r.u32();
  m.session_name = r.str();
  m.config_text = r.str();
  expect_done(r, "HELLO");
  return m;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& m) {
  BlobWriter w;
  w.u64(m.config_fingerprint);
  w.u64(m.events_fed);
  w.i64(m.position_ps);
  w.u64(m.credit);
  return w.bytes();
}

HelloAck decode_hello_ack(const std::vector<std::uint8_t>& payload) {
  BlobReader r{payload};
  HelloAck m;
  m.config_fingerprint = r.u64();
  m.events_fed = r.u64();
  m.position_ps = r.i64();
  m.credit = r.u64();
  expect_done(r, "HELLO_ACK");
  return m;
}

std::vector<std::uint8_t> encode_data(const aer::EventStream& events,
                                      std::size_t from, std::size_t count) {
  if (from > events.size() || count > events.size() - from) {
    throw std::invalid_argument("net: DATA range out of bounds");
  }
  if (count > kMaxEventsPerFrame) {
    throw std::invalid_argument("net: DATA chunk exceeds kMaxEventsPerFrame");
  }
  BlobWriter w;
  w.u32(static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const aer::Event& ev = events[from + i];
    w.u16(ev.address);
    w.i64(ev.time.count_ps());
  }
  return w.bytes();
}

aer::EventStream decode_data(const std::vector<std::uint8_t>& payload) {
  BlobReader r{payload};
  const std::uint32_t count = r.u32();
  if (count > kMaxEventsPerFrame) {
    throw std::runtime_error("net: DATA count exceeds kMaxEventsPerFrame");
  }
  aer::EventStream events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint16_t address = r.u16();
    const std::int64_t t_ps = r.i64();
    if (address > aer::kAddressMask) {
      throw std::runtime_error("net: DATA address out of range");
    }
    events.push_back(aer::Event{address, Time::ps(t_ps)});
  }
  expect_done(r, "DATA");
  return events;
}

std::vector<std::uint8_t> encode_credit(const Credit& m) {
  BlobWriter w;
  w.u64(m.grant);
  return w.bytes();
}

Credit decode_credit(const std::vector<std::uint8_t>& payload) {
  BlobReader r{payload};
  Credit m;
  m.grant = r.u64();
  expect_done(r, "CREDIT");
  return m;
}

std::vector<std::uint8_t> encode_nack(const Nack& m) {
  BlobWriter w;
  w.str(m.reason);
  return w.bytes();
}

Nack decode_nack(const std::vector<std::uint8_t>& payload) {
  BlobReader r{payload};
  Nack m;
  m.reason = r.str();
  expect_done(r, "NACK");
  return m;
}

std::vector<std::uint8_t> encode_snapshot_ack(const SnapshotAck& m) {
  BlobWriter w;
  w.i64(m.position_ps);
  w.u64(m.blob_bytes);
  return w.bytes();
}

SnapshotAck decode_snapshot_ack(const std::vector<std::uint8_t>& payload) {
  BlobReader r{payload};
  SnapshotAck m;
  m.position_ps = r.i64();
  m.blob_bytes = r.u64();
  expect_done(r, "SNAPSHOT_ACK");
  return m;
}

std::vector<std::uint8_t> encode_summary(const Summary& m) {
  BlobWriter w;
  w.str(m.text);
  return w.bytes();
}

Summary decode_summary(const std::vector<std::uint8_t>& payload) {
  BlobReader r{payload};
  Summary m;
  m.text = r.str();
  expect_done(r, "SUMMARY");
  return m;
}

std::uint64_t config_fingerprint(const std::string& config_text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : config_text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace aetr::net
