#include "net/connection.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/config_io.hpp"
#include "core/summary.hpp"

namespace aetr::net {
namespace {

bool file_exists(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  return static_cast<bool>(f);
}

/// Session names become file names (summary-<name>.txt, <name>.snap), so
/// the accepted alphabet is deliberately narrow.
bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) == 0 && c != '-' && c != '_' && c != '.') return false;
  }
  return name.front() != '.';
}

}  // namespace

void write_blob_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& blob) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f{tmp, std::ios::binary | std::ios::trunc};
    if (!f) throw std::runtime_error("net: cannot open " + tmp);
    f.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    if (!f) throw std::runtime_error("net: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("net: cannot rename " + tmp + " to " + path);
  }
}

std::vector<std::uint8_t> read_blob(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  if (!f) throw std::runtime_error("net: cannot open " + path);
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>()};
}

Connection::Connection(const GatewayConfig& config, std::uint16_t session_id,
                       SendFn send)
    : config_{config}, session_id_{session_id}, send_{std::move(send)} {}

Connection::~Connection() = default;

bool Connection::on_bytes(const std::uint8_t* data, std::size_t size) {
  if (closed()) return false;
  decoder_.feed(data, size);
  while (!closed()) {
    if (decoder_.failed()) {
      protocol_error("framing: " + decoder_.error());
      break;
    }
    const auto frame = decoder_.next();
    if (!frame) {
      if (decoder_.failed()) protocol_error("framing: " + decoder_.error());
      break;
    }
    handle_frame(*frame);
  }
  return !closed();
}

bool Connection::on_bytes(const std::vector<std::uint8_t>& bytes) {
  return on_bytes(bytes.data(), bytes.size());
}

void Connection::send_frame(MsgType type,
                            const std::vector<std::uint8_t>& payload) {
  if (send_) send_(encode_frame(type, session_id_, payload));
}

void Connection::protocol_error(const std::string& reason) {
  if (state_ == State::kError) return;
  error_ = reason;
  send_frame(MsgType::kNack, encode_nack(Nack{reason}));
  state_ = State::kError;
}

void Connection::handle_frame(const Frame& f) {
  // Clients address the gateway, not a session, until HELLO_ACK hands out
  // an id; after that both spellings are accepted.
  if (f.session_id != 0 && f.session_id != session_id_) {
    protocol_error("frame addressed to wrong session id " +
                   std::to_string(f.session_id));
    return;
  }
  switch (f.type) {
    case MsgType::kHello:
      handle_hello(f);
      return;
    case MsgType::kData:
      handle_data(f);
      return;
    case MsgType::kSnapshotReq:
      handle_snapshot_req();
      return;
    case MsgType::kDrain:
      if (state_ != State::kStreaming) {
        protocol_error("DRAIN before HELLO");
        return;
      }
      finish_session();
      return;
    case MsgType::kBye:
      // Abandon without a summary: the client walked away mid-stream.
      state_ = State::kDone;
      return;
    case MsgType::kHelloAck:
    case MsgType::kCredit:
    case MsgType::kNack:
    case MsgType::kSnapshotAck:
    case MsgType::kSummary:
      protocol_error(std::string{"unexpected "} + to_string(f.type) +
                     " from client");
      return;
  }
  protocol_error("unhandled frame type");
}

void Connection::handle_hello(const Frame& f) {
  if (state_ != State::kAwaitHello) {
    protocol_error("duplicate HELLO");
    return;
  }
  Hello hello;
  try {
    hello = decode_hello(f.payload);
  } catch (const std::exception& e) {
    protocol_error(std::string{"malformed HELLO: "} + e.what());
    return;
  }
  if (hello.protocol_version != kProtocolVersion) {
    protocol_error("protocol version mismatch: client " +
                   std::to_string(hello.protocol_version) + ", server " +
                   std::to_string(kProtocolVersion));
    return;
  }
  if (!valid_session_name(hello.session_name)) {
    protocol_error("invalid session name");
    return;
  }
  name_ = hello.session_name;

  core::ScenarioConfig scenario = config_.default_scenario;
  if (!hello.config_text.empty()) {
    try {
      std::istringstream is{hello.config_text};
      scenario = core::load_scenario(is);
    } catch (const std::exception& e) {
      protocol_error(std::string{"bad config: "} + e.what());
      return;
    }
  }
  const std::string canonical = core::dump_scenario(scenario);

  try {
    session_ = std::make_unique<core::Session>(scenario);
  } catch (const std::exception& e) {
    protocol_error(std::string{"scenario rejected: "} + e.what());
    return;
  }
  if (!config_.keep_history) session_->set_keep_history(false);

  if (!config_.snapshot_dir.empty()) {
    snapshot_path_ = config_.snapshot_dir + "/" + name_ + ".snap";
  }
  if (config_.resume && !snapshot_path_.empty() &&
      file_exists(snapshot_path_)) {
    try {
      session_->restore(read_blob(snapshot_path_));
    } catch (const std::exception& e) {
      protocol_error(std::string{"resume failed: "} + e.what());
      return;
    }
  }

  // Periodic snapshot cadence on the simulated clock, anchored at absolute
  // multiples of the interval so the schedule is a pure function of the
  // stream — a resumed gateway checkpoints at the same instants the killed
  // one would have (same rule as aetr-serve run).
  snapshotting_ =
      !snapshot_path_.empty() && config_.snapshot_interval_sec > 0.0;
  if (snapshotting_) {
    snapshot_interval_ = Time::sec(config_.snapshot_interval_sec);
    next_snapshot_ = Time::zero();
    while (next_snapshot_ <= session_->position()) {
      next_snapshot_ += snapshot_interval_;
    }
  }

  credit_ = config_.credit_window;
  HelloAck ack;
  ack.config_fingerprint = config_fingerprint(canonical);
  ack.events_fed = session_->events_fed();
  ack.position_ps = session_->position().count_ps();
  ack.credit = credit_;
  state_ = State::kStreaming;
  send_frame(MsgType::kHelloAck, encode_hello_ack(ack));
}

void Connection::handle_data(const Frame& f) {
  if (state_ != State::kStreaming) {
    protocol_error("DATA before HELLO");
    return;
  }
  aer::EventStream events;
  try {
    events = decode_data(f.payload);
  } catch (const std::exception& e) {
    protocol_error(std::string{"malformed DATA: "} + e.what());
    return;
  }
  if (events.size() > credit_) {
    protocol_error("credit overrun: " + std::to_string(events.size()) +
                   " events against " + std::to_string(credit_) + " credit");
    return;
  }
  credit_ -= events.size();
  for (const aer::Event& ev : events) {
    if (have_last_time_ && ev.time < last_time_) {
      protocol_error("non-monotonic DATA timestamp");
      return;
    }
    last_time_ = ev.time;
    have_last_time_ = true;
    // aetr-serve's pump: backpressure means the buffer is full of events
    // at or before ev.time, so advancing to the stream position drains it.
    while (!session_->feed(ev)) session_->advance_to(ev.time);
    ++ingested_;
    if (snapshotting_ && ev.time >= next_snapshot_) {
      session_->advance_to(next_snapshot_);
      take_snapshot();
      while (next_snapshot_ <= ev.time) next_snapshot_ += snapshot_interval_;
    }
  }
  // Replenish: the window re-opens as soon as the chunk is in the session.
  credit_ += events.size();
  send_frame(MsgType::kCredit,
             encode_credit(Credit{static_cast<std::uint64_t>(events.size())}));
}

void Connection::handle_snapshot_req() {
  if (state_ != State::kStreaming) {
    protocol_error("SNAPSHOT_REQ before HELLO");
    return;
  }
  if (snapshot_path_.empty()) {
    protocol_error("SNAPSHOT_REQ but the gateway has no snapshot dir");
    return;
  }
  take_snapshot();
  SnapshotAck ack;
  ack.position_ps = session_->position().count_ps();
  ack.blob_bytes = last_snapshot_bytes_;
  send_frame(MsgType::kSnapshotAck, encode_snapshot_ack(ack));
}

void Connection::take_snapshot() {
  const std::vector<std::uint8_t> blob = session_->snapshot();
  last_snapshot_bytes_ = blob.size();
  write_blob_atomic(snapshot_path_, blob);
}

void Connection::finish_session() {
  core::RunResult result;
  try {
    result = session_->finish();
  } catch (const std::exception& e) {
    protocol_error(std::string{"finish failed: "} + e.what());
    return;
  }
  summary_ = core::run_summary_text(result);
  if (!config_.out_dir.empty()) {
    core::write_run_summary_file(
        config_.out_dir + "/summary-" + name_ + ".txt", result);
  }
  send_frame(MsgType::kSummary, encode_summary(Summary{summary_}));
  send_frame(MsgType::kBye, {});
  state_ = State::kDone;
}

void Connection::drain() {
  if (closed()) return;
  if (state_ == State::kAwaitHello) {
    // Nothing was set up yet; just close.
    state_ = State::kDone;
    return;
  }
  finish_session();
}

}  // namespace aetr::net
