// aetr::net wire protocol — length-prefixed, CRC-checked frames carrying
// AEDAT event chunks and control messages between a streaming client and
// the multi-session gateway server (docs/SERVICE.md, "Socket transport").
//
// This layer is pure: encode_frame()/Decoder and the typed message
// encoders/decoders below touch no sockets and no global state, so the
// whole protocol is deterministically testable (and fuzzable) on byte
// vectors alone. Frame layout, all integers little-endian:
//
//   u32  magic        0x4154454E ("NETA" on the wire: 4E 45 54 41)
//   u8   type         MsgType
//   u8   reserved     must be 0
//   u16  session_id   0 until HELLO_ACK assigns one
//   u32  payload_len  <= kMaxPayload
//   ...  payload      payload_len bytes (BlobWriter format per message)
//   u32  crc32        IEEE CRC-32 over type..payload (magic excluded)
//
// The transport underneath (TCP / Unix domain socket) is a reliable byte
// stream, so framing damage can only mean a buggy or hostile peer: the
// Decoder treats bad magic, an oversized length prefix, or a CRC mismatch
// as a terminal protocol error — it reports the error and refuses further
// input rather than hunting for a resync point mid-stream (resyncing on a
// stream transport would silently swallow attacker-controlled bytes).
//
// Message payloads (BlobWriter: LE integers, u64-length-prefixed strings):
//
//   HELLO        u32 protocol_version, str session_name, str config_text
//   HELLO_ACK    u64 config_fingerprint, u64 events_fed, i64 position_ps,
//                u64 credit
//   DATA         u32 count, count x { u16 address, i64 time_ps }
//   CREDIT       u64 grant
//   NACK         str reason
//   SNAPSHOT_REQ (empty)
//   SNAPSHOT_ACK i64 position_ps, u64 blob_bytes
//   DRAIN        (empty)
//   SUMMARY      str summary_text
//   BYE          (empty)
//
// Typed decoders throw std::runtime_error on truncated or over-long
// payloads; the connection layer maps that to a NACK + close.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aer/event.hpp"

namespace aetr::net {

inline constexpr std::uint32_t kMagic = 0x4154454E;  // "NETA" little-endian
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Frame header bytes before the payload (magic..payload_len).
inline constexpr std::size_t kHeaderSize = 12;
/// Hard payload bound; a length prefix beyond this is a protocol error.
inline constexpr std::size_t kMaxPayload = 1u << 20;
/// Events per DATA frame the encoder will accept (fits kMaxPayload).
inline constexpr std::size_t kMaxEventsPerFrame =
    (kMaxPayload - 4) / 10;  // u32 count + 10 bytes per event

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kData = 3,
  kCredit = 4,
  kNack = 5,
  kSnapshotReq = 6,
  kSnapshotAck = 7,
  kDrain = 8,
  kSummary = 9,
  kBye = 10,
};

[[nodiscard]] const char* to_string(MsgType t);
[[nodiscard]] bool is_known_type(std::uint8_t raw);

/// One decoded frame: type + addressing + raw payload bytes.
struct Frame {
  MsgType type{MsgType::kBye};
  std::uint16_t session_id{0};
  std::vector<std::uint8_t> payload;
};

// --- CRC-32 (byte-wise IEEE reflected, poly 0xEDB88320) ---------------------
// The I2S carrier's crc32_words (i2s/framing.hpp) runs over u32 words; the
// socket transport frames arbitrary byte payloads, so it needs the byte-wise
// form. Same polynomial, same init/final inversion — crc32_bytes of a
// whole-word buffer equals crc32_words of those words.

[[nodiscard]] std::uint32_t crc32_bytes(const std::uint8_t* data,
                                        std::size_t size);
[[nodiscard]] std::uint32_t crc32_bytes(const std::vector<std::uint8_t>& b);

// --- frame encode / streaming decode ----------------------------------------

/// Encode one frame. Throws std::invalid_argument when payload exceeds
/// kMaxPayload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    MsgType type, std::uint16_t session_id,
    const std::vector<std::uint8_t>& payload);

/// Incremental frame decoder over a reliable byte stream. feed() bytes in
/// arbitrary chunk sizes; next() yields completed frames in order. Any
/// framing violation (bad magic, reserved byte set, unknown type, oversized
/// length, CRC mismatch) puts the decoder into a terminal error state:
/// error() is set, next() returns nothing, further feed()s are ignored.
class Decoder {
 public:
  /// Append raw bytes from the transport. Returns false once the decoder
  /// is in the error state (bytes are discarded).
  bool feed(const std::uint8_t* data, std::size_t size);
  bool feed(const std::vector<std::uint8_t>& bytes);

  /// The next completed frame, if any.
  [[nodiscard]] std::optional<Frame> next();

  /// Non-empty once a framing violation was seen; terminal.
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool failed() const { return !error_.empty(); }

  /// Bytes buffered but not yet consumed as frames (diagnostics).
  [[nodiscard]] std::size_t pending_bytes() const {
    return buffer_.size() - consumed_;
  }

 private:
  void fail(const std::string& why);
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_{0};
  std::string error_;
};

// --- typed messages ---------------------------------------------------------

struct Hello {
  std::uint32_t protocol_version{kProtocolVersion};
  std::string session_name;
  /// Canonical dump_scenario() text; empty = use the server's default.
  std::string config_text;
};

struct HelloAck {
  std::uint64_t config_fingerprint{0};
  /// Events the (possibly restored) session has already consumed; the
  /// client skips this many stream events before sending DATA.
  std::uint64_t events_fed{0};
  std::int64_t position_ps{0};
  std::uint64_t credit{0};
};

struct Credit {
  std::uint64_t grant{0};
};

struct Nack {
  std::string reason;
};

struct SnapshotAck {
  std::int64_t position_ps{0};
  std::uint64_t blob_bytes{0};
};

struct Summary {
  std::string text;
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& m);
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ack(const HelloAck& m);
[[nodiscard]] std::vector<std::uint8_t> encode_data(
    const aer::EventStream& events, std::size_t from, std::size_t count);
[[nodiscard]] std::vector<std::uint8_t> encode_credit(const Credit& m);
[[nodiscard]] std::vector<std::uint8_t> encode_nack(const Nack& m);
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_ack(
    const SnapshotAck& m);
[[nodiscard]] std::vector<std::uint8_t> encode_summary(const Summary& m);

/// All decode_* throw std::runtime_error on truncation, trailing bytes,
/// or out-of-range fields.
[[nodiscard]] Hello decode_hello(const std::vector<std::uint8_t>& payload);
[[nodiscard]] HelloAck decode_hello_ack(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] aer::EventStream decode_data(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] Credit decode_credit(const std::vector<std::uint8_t>& payload);
[[nodiscard]] Nack decode_nack(const std::vector<std::uint8_t>& payload);
[[nodiscard]] SnapshotAck decode_snapshot_ack(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] Summary decode_summary(const std::vector<std::uint8_t>& payload);

/// FNV-1a 64 over the canonical dump_scenario() text — the config
/// fingerprint HELLO_ACK echoes so client and server agree on the scenario
/// before any DATA flows.
[[nodiscard]] std::uint64_t config_fingerprint(const std::string& config_text);

}  // namespace aetr::net
