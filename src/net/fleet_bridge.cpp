#include "net/fleet_bridge.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/config_io.hpp"
#include "net/client.hpp"

namespace aetr::net {
namespace {

struct Live {
  std::size_t node{0};
  std::optional<Client> client;
  aer::EventStream stream;
  std::size_t pos{0};
};

Client connect(const BridgeEndpoint& endpoint) {
  if (!endpoint.uds_path.empty()) return Client::connect_uds(endpoint.uds_path);
  return Client::connect_tcp(endpoint.tcp_host, endpoint.tcp_port);
}

}  // namespace

BridgeResult run_fleet_bridge(const fleet::FleetConfig& config,
                              const BridgeEndpoint& endpoint,
                              const BridgeOptions& options) {
  config.validate();
  if (options.concurrency == 0) {
    throw std::invalid_argument("fleet bridge: concurrency must be > 0");
  }
  BridgeResult result;
  result.summaries.resize(config.nodes);

  std::vector<Live> live;
  std::size_t next_node = 0;

  const auto open_next = [&]() {
    if (next_node >= config.nodes) return false;
    Live l;
    l.node = next_node++;
    l.stream = fleet::node_stream(config, l.node);
    l.client.emplace(connect(endpoint));
    const std::string name =
        options.name_prefix + std::to_string(l.node);
    const std::string config_text =
        core::dump_scenario(fleet::node_scenario(config, l.node));
    const HelloAck ack = l.client->hello(name, config_text);
    // A resumed gateway reports what the session already consumed; skip it.
    l.pos = std::min(static_cast<std::size_t>(ack.events_fed),
                     l.stream.size());
    live.push_back(std::move(l));
    return true;
  };

  while (live.size() < options.concurrency && open_next()) {
  }

  SendOptions send_options;
  send_options.chunk = options.chunk;

  // Round-robin: one chunk per live session per turn. A finished session
  // drains, records its summary, and hands its slot to the next node.
  while (!live.empty()) {
    for (std::size_t i = 0; i < live.size();) {
      Live& l = live[i];
      if (l.pos < l.stream.size()) {
        const std::uint64_t sent =
            l.client->send_some(l.stream, l.pos, options.chunk, send_options);
        l.pos += static_cast<std::size_t>(sent);
        result.events_streamed += sent;
      }
      if (l.pos >= l.stream.size()) {
        result.summaries[l.node] = l.client->drain();
        ++result.sessions;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        open_next();
        continue;
      }
      ++i;
    }
  }
  return result;
}

}  // namespace aetr::net
