#include "runtime/sink.hpp"

#include <stdexcept>
#include <utility>

namespace aetr::runtime {

namespace {

// Minimal RFC-4180 escaping; the table cells are plain numbers today, but a
// tag or unit cell with a comma must not shear the file.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out{"\""};
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f{path};
  if (!f) throw std::runtime_error{"cannot open sink file: " + path};
  return f;
}

}  // namespace

// --- CsvSink ---------------------------------------------------------------

CsvSink::CsvSink(const std::string& path)
    : file_{open_or_throw(path)}, os_{&file_} {}

CsvSink::CsvSink(std::ostream& os) : os_{&os} {}

void CsvSink::begin(const Row& header) { write_line(header); }

void CsvSink::row(const Row& cells) { write_line(cells); }

void CsvSink::end() { os_->flush(); }

void CsvSink::write_line(const Row& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *os_ << ',';
    *os_ << csv_escape(cells[i]);
  }
  *os_ << '\n';
}

// --- JsonSink --------------------------------------------------------------

JsonSink::JsonSink(const std::string& path)
    : file_{open_or_throw(path)}, os_{&file_} {}

JsonSink::JsonSink(std::ostream& os) : os_{&os} {}

void JsonSink::begin(const Row& header) {
  header_ = header;
  *os_ << "[";
}

void JsonSink::row(const Row& cells) {
  *os_ << (first_row_ ? "\n" : ",\n") << " {";
  first_row_ = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string key =
        i < header_.size() ? header_[i] : "col" + std::to_string(i);
    *os_ << (i ? ", " : "") << '"' << json_escape(key) << "\": \""
         << json_escape(cells[i]) << '"';
  }
  *os_ << '}';
}

void JsonSink::end() {
  *os_ << "\n]\n";
  os_->flush();
}

// --- MultiSink -------------------------------------------------------------

MultiSink::MultiSink(std::vector<ResultSink*> sinks)
    : sinks_{std::move(sinks)} {}

void MultiSink::begin(const Row& header) {
  for (auto* s : sinks_) s->begin(header);
}

void MultiSink::row(const Row& cells) {
  for (auto* s : sinks_) s->row(cells);
}

void MultiSink::end() {
  for (auto* s : sinks_) s->end();
}

// --- OrderedCollector ------------------------------------------------------

OrderedCollector::OrderedCollector(
    std::size_t total, ResultSink* sink,
    std::function<void(std::size_t, std::size_t)> on_progress)
    : total_{total}, sink_{sink}, on_progress_{std::move(on_progress)} {}

void OrderedCollector::add(std::size_t index, std::vector<Row> rows) {
  std::lock_guard lock{mutex_};
  ++done_;
  pending_.emplace(index, std::move(rows));
  while (!pending_.empty() && pending_.begin()->first == next_flush_) {
    if (sink_) {
      for (const auto& r : pending_.begin()->second) sink_->row(r);
    }
    pending_.erase(pending_.begin());
    ++next_flush_;
  }
  if (on_progress_) on_progress_(done_, total_);
}

std::size_t OrderedCollector::done() const {
  std::lock_guard lock{mutex_};
  return done_;
}

}  // namespace aetr::runtime
