#include "runtime/sweep_grid.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace aetr::runtime {

double GridPoint::at(std::string_view axis) const {
  for (std::size_t i = 0; i < axes_->size(); ++i) {
    if ((*axes_)[i].name == axis) return (*axes_)[i].values[ordinals_[i]];
  }
  throw std::out_of_range{"GridPoint: unknown axis '" + std::string{axis} +
                          "'"};
}

std::size_t GridPoint::ordinal(std::string_view axis) const {
  for (std::size_t i = 0; i < axes_->size(); ++i) {
    if ((*axes_)[i].name == axis) return ordinals_[i];
  }
  throw std::out_of_range{"GridPoint: unknown axis '" + std::string{axis} +
                          "'"};
}

std::string GridPoint::tag() const {
  std::string tag;
  for (std::size_t i = 0; i < axes_->size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s%s=%g", i ? "," : "",
                  (*axes_)[i].name.c_str(), (*axes_)[i].values[ordinals_[i]]);
    tag += buf;
  }
  return tag;
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument{"SweepGrid axis '" + name + "' has no values"};
  }
  axes_.push_back(GridAxis{std::move(name), std::move(values)});
  return *this;
}

std::vector<double> SweepGrid::log_space(double lo, double hi,
                                         std::size_t points) {
  if (points == 0) {
    throw std::invalid_argument{"SweepGrid::log_space: zero points"};
  }
  if (lo <= 0.0 || hi < lo) {
    throw std::invalid_argument{
        "SweepGrid::log_space: needs 0 < lo <= hi"};
  }
  std::vector<double> values;
  values.reserve(points);
  // Degenerate spans (one point, or equal endpoints) collapse to a
  // constant axis instead of dividing by zero.
  if (points == 1 || hi == lo) {
    values.assign(points, lo);
    return values;
  }
  const double step = std::log(hi / lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    values.push_back(lo * std::exp(step * static_cast<double>(i)));
  }
  return values;
}

std::vector<double> SweepGrid::lin_space(double lo, double hi,
                                         std::size_t points) {
  if (points == 0) {
    throw std::invalid_argument{"SweepGrid::lin_space: zero points"};
  }
  std::vector<double> values;
  values.reserve(points);
  if (points == 1 || hi == lo) {
    values.assign(points, lo);
    return values;
  }
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    values.push_back(lo + step * static_cast<double>(i));
  }
  return values;
}

std::size_t SweepGrid::size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

GridPoint SweepGrid::point(std::size_t index) const {
  assert(index < size());
  GridPoint p;
  p.axes_ = &axes_;
  p.index_ = index;
  p.ordinals_.resize(axes_.size());
  // Row-major: last axis varies fastest.
  std::size_t rem = index;
  for (std::size_t i = axes_.size(); i-- > 0;) {
    const std::size_t n = axes_[i].values.size();
    p.ordinals_[i] = rem % n;
    rem /= n;
  }
  return p;
}

}  // namespace aetr::runtime
