// Deterministic per-job seed derivation for parallel sweeps.
//
// Every job in a sweep draws its RNG seed from (root_seed, job_index) via
// splitmix64, never from thread identity or execution order. This is the
// heart of the runtime's determinism contract: an N-thread run and a
// 1-thread run of the same grid produce bit-identical results because each
// grid point sees exactly the same stream of random numbers either way.
#pragma once

#include <cstdint>

namespace aetr::runtime {

/// One step of splitmix64 (Steele/Lea/Flood; public-domain reference
/// algorithm). Full 64-bit avalanche: adjacent inputs map to statistically
/// independent outputs, so seeding consecutive job indices is safe.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Seed for job `index` in a sweep rooted at `root_seed`: the index-th
/// output of a splitmix64 stream seeded with `root_seed` (next() advances
/// the state by the golden-ratio increment, then mixes).
///
/// Injective per root (increment and mix are both bijections), so no two
/// jobs of one sweep can share a seed, and asymmetric in (root, index) —
/// a symmetric combiner like mix(mix(root) ^ mix(index)) gives every
/// sweep the same seed at index == root. Stable across platforms, thread
/// counts, and job execution order.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t root_seed,
                                                  std::uint64_t index) {
  return splitmix64(root_seed + index * 0x9E3779B97F4A7C15ull);
}

/// Independent seed *streams* within one job: stream `stream` of job `index`
/// under `root_seed`. A fleet node needs several uncorrelated random streams
/// (its event source, its fault plan, its heterogeneity draw); deriving them
/// as derive_seed(node_seed, stream) nests two splitmix64 avalanches, so
/// streams of one node are mutually independent AND no stream of node i can
/// collide with a stream of node j sharing the same root (each nesting level
/// is a bijection per root). Stable across platforms and thread counts.
[[nodiscard]] constexpr std::uint64_t derive_substream_seed(
    std::uint64_t root_seed, std::uint64_t index, std::uint64_t stream) {
  return derive_seed(derive_seed(root_seed, index), stream);
}

}  // namespace aetr::runtime
