#include "runtime/thread_pool.hpp"

#include <utility>

namespace aetr::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  deques_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock{mutex_};
    deques_[next_worker_].push_back(std::move(task));
    next_worker_ = (next_worker_ + 1) % deques_.size();
    ++queued_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_to(std::size_t worker, std::function<void()> task) {
  {
    std::lock_guard lock{mutex_};
    deques_[worker % deques_.size()].push_back(std::move(task));
    ++queued_;
  }
  work_cv_.notify_all();
}

bool ThreadPool::pop_or_steal(std::size_t self, std::function<void()>& out) {
  if (!deques_[self].empty()) {
    out = std::move(deques_[self].back());  // own work: newest first (LIFO)
    deques_[self].pop_back();
    --queued_;
    return true;
  }
  for (std::size_t k = 1; k < deques_.size(); ++k) {
    const std::size_t victim = (self + k) % deques_.size();
    if (!deques_[victim].empty()) {
      out = std::move(deques_[victim].front());  // steal oldest (FIFO)
      deques_[victim].pop_front();
      --queued_;
      ++steals_;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::unique_lock lock{mutex_};
  for (;;) {
    std::function<void()> task;
    if (pop_or_steal(self, task)) {
      ++active_;
      lock.unlock();
      try {
        task();
      } catch (...) {
        lock.lock();
        if (!first_exception_) first_exception_ = std::current_exception();
        lock.unlock();
      }
      task = nullptr;  // run destructors outside the lock
      lock.lock();
      --active_;
      if (queued_ == 0 && active_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock, [this, self] {
      if (stop_ || !deques_[self].empty()) return true;
      for (const auto& d : deques_) {
        if (!d.empty()) return true;
      }
      return false;
    });
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  idle_cv_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
}

void ThreadPool::cancel_pending() {
  {
    std::lock_guard lock{mutex_};
    for (auto& d : deques_) {
      queued_ -= d.size();
      d.clear();
    }
    if (queued_ == 0 && active_ == 0) idle_cv_.notify_all();
  }
}

std::uint64_t ThreadPool::steal_count() const {
  std::lock_guard lock{mutex_};
  return steals_;
}

std::exception_ptr ThreadPool::first_exception() const {
  std::lock_guard lock{mutex_};
  return first_exception_;
}

}  // namespace aetr::runtime
