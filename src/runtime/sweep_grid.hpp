// Parameter-grid builder for sweeps.
//
// A SweepGrid is an ordered list of named axes (rate, theta_div, n_div,
// seed replica, ...); its job list is the cartesian product in row-major
// order — the first declared axis varies slowest, exactly like the nested
// for-loops the figure benches used to hand-roll:
//
//   SweepGrid grid;
//   grid.axis("theta", {16, 32, 64})
//       .axis("rate", SweepGrid::log_space(100.0, 2e6, 27));
//   // grid.size() == 81; point(0) = {theta=16, rate=100}
//
// GridPoint decodes one flat job index back into per-axis values/ordinals
// and renders a human-readable tag ("theta=16,rate=100") for progress and
// failure reports.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace aetr::runtime {

struct GridAxis {
  std::string name;
  std::vector<double> values;
};

class SweepGrid;

/// One decoded point of a grid. Values, not references: safe to copy into a
/// worker thread while the grid lives on the caller's stack.
class GridPoint {
 public:
  GridPoint() = default;

  [[nodiscard]] std::size_t index() const { return index_; }

  /// Value of the named axis at this point. Throws std::out_of_range for an
  /// unknown axis name — a misspelt axis is a programming error, and a
  /// silent 0.0 would corrupt a whole sweep.
  [[nodiscard]] double at(std::string_view axis) const;

  /// Position of this point along the named axis (0-based).
  [[nodiscard]] std::size_t ordinal(std::string_view axis) const;

  /// "theta=16,rate=100" — stable, shortest-round-trip %g formatting.
  [[nodiscard]] std::string tag() const;

  [[nodiscard]] const std::vector<GridAxis>* axes() const { return axes_; }

 private:
  friend class SweepGrid;
  const std::vector<GridAxis>* axes_{nullptr};
  std::vector<std::size_t> ordinals_;
  std::size_t index_{0};
};

class SweepGrid {
 public:
  /// Append an axis (varies faster than all axes added before it).
  /// An empty value list is rejected: it would silently zero the grid.
  SweepGrid& axis(std::string name, std::vector<double> values);

  /// `points` log-spaced values from `lo` to `hi` inclusive, the grid the
  /// figure benches use for event-rate axes: lo * (hi/lo)^(i/(points-1)).
  /// Degenerate spans are well-defined: points == 1 or hi == lo yield a
  /// constant axis. Throws std::invalid_argument for zero points, lo <= 0,
  /// or hi < lo.
  [[nodiscard]] static std::vector<double> log_space(double lo, double hi,
                                                     std::size_t points);

  /// `points` linearly spaced values from `lo` to `hi` inclusive. As with
  /// log_space, points == 1 or hi == lo yield a constant axis; zero points
  /// throw std::invalid_argument.
  [[nodiscard]] static std::vector<double> lin_space(double lo, double hi,
                                                     std::size_t points);

  /// Total number of grid points (product of axis sizes; 0 for no axes).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }
  [[nodiscard]] const GridAxis& axis_at(std::size_t i) const {
    return axes_.at(i);
  }

  /// Decode flat job index -> per-axis ordinals (row-major).
  [[nodiscard]] GridPoint point(std::size_t index) const;

 private:
  std::vector<GridAxis> axes_;
};

}  // namespace aetr::runtime
