// Result sinks and the ordered collector.
//
// Jobs finish in whatever order the pool schedules them; sinks must see rows
// in job-index order so a parallel sweep writes the same bytes as a serial
// one. OrderedCollector is the reorder buffer between the two: workers hand
// it (index, rows) pairs, it buffers out-of-order arrivals and flushes the
// contiguous prefix to the attached sink — streaming, not batch: row i is on
// disk as soon as jobs 0..i have finished, even mid-sweep.
#pragma once

#include <cstddef>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace aetr::runtime {

using Row = std::vector<std::string>;

/// Receives ordered rows. begin() is called once before the first row,
/// end() once after the last; implementations flush on end().
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const Row& header) { (void)header; }
  virtual void row(const Row& cells) = 0;
  virtual void end() {}
};

/// Streams rows as CSV. Cells containing commas or quotes are quoted.
class CsvSink final : public ResultSink {
 public:
  /// Write to an owned file (throws std::runtime_error if unopenable).
  explicit CsvSink(const std::string& path);
  /// Write to a caller-owned stream (kept alive by the caller).
  explicit CsvSink(std::ostream& os);

  void begin(const Row& header) override;
  void row(const Row& cells) override;
  void end() override;

 private:
  void write_line(const Row& cells);
  std::ofstream file_;
  std::ostream* os_;
};

/// Streams rows as a JSON array of objects keyed by the header cells.
class JsonSink final : public ResultSink {
 public:
  explicit JsonSink(const std::string& path);
  explicit JsonSink(std::ostream& os);

  void begin(const Row& header) override;
  void row(const Row& cells) override;
  void end() override;

 private:
  std::ofstream file_;
  std::ostream* os_;
  Row header_;
  bool first_row_{true};
};

/// Fans rows out to several sinks (console table + CSV + JSON in one pass).
class MultiSink final : public ResultSink {
 public:
  explicit MultiSink(std::vector<ResultSink*> sinks);

  void begin(const Row& header) override;
  void row(const Row& cells) override;
  void end() override;

 private:
  std::vector<ResultSink*> sinks_;
};

/// Thread-safe reorder buffer: add() in any order, rows reach the sink in
/// strictly increasing index order. One job may contribute zero or more rows.
class OrderedCollector {
 public:
  /// `on_progress(done, total)` fires after each job lands (in completion
  /// order, under the collector lock — keep it cheap).
  OrderedCollector(std::size_t total, ResultSink* sink,
                   std::function<void(std::size_t, std::size_t)> on_progress =
                       nullptr);

  /// Record job `index`'s rows; flushes the contiguous prefix to the sink.
  void add(std::size_t index, std::vector<Row> rows);

  /// Jobs landed so far.
  [[nodiscard]] std::size_t done() const;

 private:
  mutable std::mutex mutex_;
  std::size_t total_;
  std::size_t done_{0};
  std::size_t next_flush_{0};
  ResultSink* sink_;
  std::function<void(std::size_t, std::size_t)> on_progress_;
  std::map<std::size_t, std::vector<Row>> pending_;
};

}  // namespace aetr::runtime
