#include "runtime/sweep.hpp"

#include <chrono>
#include <mutex>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace aetr::runtime {

double SweepReport::busy_sec() const {
  double sum = 0.0;
  for (const auto& m : metrics) sum += m.wall_sec;
  return sum;
}

SweepError::SweepError(std::size_t index, std::string tag,
                       const std::string& reason)
    : std::runtime_error{"sweep job #" + std::to_string(index) + " (" + tag +
                         ") failed: " + reason},
      index_{index},
      tag_{std::move(tag)} {}

SweepReport run_sweep(const SweepGrid& grid, const JobFn& fn,
                      const SweepOptions& options, ResultSink* sink) {
  const std::size_t total = grid.size();
  SweepReport report;
  report.outputs.resize(total);
  report.metrics.resize(total);

  if (sink) sink->begin(options.header);

  const auto sweep_start = std::chrono::steady_clock::now();

  OrderedCollector collector{total, sink, options.progress};
  std::atomic<bool> cancel{false};

  // First failure wins; later ones are suppressed (they are usually the
  // same root cause hit by sibling grid points).
  std::mutex failure_mutex;
  bool failed = false;
  std::size_t failed_index = 0;
  std::string failed_tag;
  std::string failed_reason;

  {
    ThreadPool pool{options.jobs};
    report.threads = pool.thread_count();

    for (std::size_t i = 0; i < total; ++i) {
      pool.submit([&, i] {
        if (cancel.load(std::memory_order_relaxed)) {
          collector.add(i, {});
          return;
        }
        JobContext ctx;
        ctx.point = grid.point(i);
        ctx.index = i;
        ctx.seed = derive_seed(options.seed, i);
        ctx.cancel_ = &cancel;

        JobMetrics metrics;
        metrics.index = i;
        metrics.seed = ctx.seed;
        metrics.tag = ctx.point.tag();

        const auto start = std::chrono::steady_clock::now();
        try {
          JobOutput out = fn(ctx);
          metrics.wall_sec = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
          std::vector<Row> rows = out.rows;
          report.outputs[i] = std::move(out);      // slot i is ours alone
          report.metrics[i] = std::move(metrics);
          collector.add(i, std::move(rows));
        } catch (const std::exception& e) {
          cancel.store(true, std::memory_order_relaxed);
          {
            std::lock_guard lock{failure_mutex};
            if (!failed) {
              failed = true;
              failed_index = i;
              failed_tag = ctx.point.tag();
              failed_reason = e.what();
            }
          }
          collector.add(i, {});
        } catch (...) {
          cancel.store(true, std::memory_order_relaxed);
          {
            std::lock_guard lock{failure_mutex};
            if (!failed) {
              failed = true;
              failed_index = i;
              failed_tag = ctx.point.tag();
              failed_reason = "unknown exception";
            }
          }
          collector.add(i, {});
        }
      });
    }
    pool.wait_idle();
    report.steals = pool.steal_count();
  }  // pool joins here

  report.wall_sec = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - sweep_start)
                        .count();

  if (failed) throw SweepError{failed_index, failed_tag, failed_reason};
  if (sink) sink->end();
  return report;
}

}  // namespace aetr::runtime
