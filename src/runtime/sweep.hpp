// run_sweep(): map a job function over a SweepGrid on the work-stealing
// pool, deterministically.
//
// Job model. One job = one grid point + one derived seed + one tag.
// The job function receives a JobContext and returns a JobOutput:
//   * `values`  — numeric results for figure-level post-processing
//                 (assembling multi-series tables, estimating E_spike, ...)
//   * `rows`    — zero or more pre-rendered rows streamed to the sink in
//                 job-index order while the sweep is still running.
//
// Determinism contract. The output of a sweep is a pure function of
// (grid, root seed, job function):
//   * every job's RNG seed is derive_seed(root_seed, index) — never thread
//     identity, never execution order;
//   * jobs must not share mutable state (the runner hands each job its own
//     context and collects outputs by index);
//   * the collector re-orders completions, so sinks and the returned report
//     see index order regardless of --jobs.
// Under that contract `--jobs 1` and `--jobs N` produce bit-identical CSVs.
// Wall-clock metrics (JobMetrics::wall_sec, SweepReport::wall_sec) are the
// one deliberate exception — they measure the run, not the result, and are
// reported separately from the data rows.
//
// Failure. A throwing job cancels all not-yet-started jobs and run_sweep
// throws SweepError naming the job's index and tag — a broken sweep aborts
// loudly instead of hanging the pool or silently dropping grid points.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/seed.hpp"
#include "runtime/sink.hpp"
#include "runtime/sweep_grid.hpp"

namespace aetr::runtime {

/// Everything a job may depend on. Jobs draw randomness from `seed` only.
struct JobContext {
  GridPoint point;
  std::size_t index{0};
  std::uint64_t seed{0};
  /// True once another job has failed; long-running jobs may poll this and
  /// return early (their output is discarded anyway).
  [[nodiscard]] bool cancelled() const {
    return cancel_ && cancel_->load(std::memory_order_relaxed);
  }
  const std::atomic<bool>* cancel_{nullptr};
};

struct JobOutput {
  std::vector<double> values;
  std::vector<Row> rows;
};

using JobFn = std::function<JobOutput(const JobContext&)>;

/// Per-job measurement (index order in the report).
struct JobMetrics {
  std::size_t index{0};
  std::uint64_t seed{0};
  std::string tag;
  double wall_sec{0.0};
};

struct SweepOptions {
  /// Worker threads; 0 = hardware_concurrency.
  std::size_t jobs = 0;
  /// Root seed for derive_seed().
  std::uint64_t seed = 1;
  /// Header handed to the sink's begin() before any rows.
  Row header;
  /// Called after each job lands: (done, total). Runs under the collector
  /// lock in completion order — keep it cheap (progress meters, logging).
  std::function<void(std::size_t, std::size_t)> progress;
};

struct SweepReport {
  std::vector<JobOutput> outputs;   ///< one per grid point, index order
  std::vector<JobMetrics> metrics;  ///< one per grid point, index order
  double wall_sec{0.0};             ///< whole-sweep wall clock
  std::size_t threads{0};
  std::uint64_t steals{0};
  [[nodiscard]] double jobs_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(metrics.size()) / wall_sec
                          : 0.0;
  }
  /// Sum of per-job wall clocks — with wall_sec, the realised parallelism.
  [[nodiscard]] double busy_sec() const;
};

/// Thrown when any job throws; carries which grid point failed.
class SweepError : public std::runtime_error {
 public:
  SweepError(std::size_t index, std::string tag, const std::string& reason);
  [[nodiscard]] std::size_t job_index() const { return index_; }
  [[nodiscard]] const std::string& job_tag() const { return tag_; }

 private:
  std::size_t index_;
  std::string tag_;
};

/// Run `fn` over every grid point. `sink` (optional) receives the header
/// and all streamed rows in index order.
SweepReport run_sweep(const SweepGrid& grid, const JobFn& fn,
                      const SweepOptions& options = {},
                      ResultSink* sink = nullptr);

}  // namespace aetr::runtime
