// Work-stealing thread pool for sweep execution.
//
// Each worker owns a deque of tasks. submit() deals tasks round-robin across
// the workers (submit_to() pins one); a worker pops newest-first from its own
// deque and, when empty, steals oldest-first from a victim. Stealing keeps
// every core busy under skewed job durations (one 100 ms grid point next to
// a hundred 1 ms ones) without any up-front cost model.
//
// The pool makes no ordering promises across workers — determinism is the
// job model's concern (seeds derive from the job index, results are
// re-ordered by the collector; see sweep.hpp), never the scheduler's.
//
// Synchronisation is one pool-wide mutex. Sweep jobs are whole simulations
// (microseconds to seconds each), so queue traffic is far too sparse for a
// lock-free deque to pay for its complexity; the single lock also keeps the
// pool trivially race-free under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aetr::runtime {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Tasks still queued are dropped, not run; call
  /// wait_idle() first if completion matters.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task on the next worker (round-robin).
  ///
  /// Tasks must not throw: an escaping exception is captured (first one
  /// wins, exposed via first_exception()) rather than propagated, because
  /// there is no caller on a worker thread to propagate to. Layers that
  /// need failure semantics wrap their work (see run_sweep()).
  void submit(std::function<void()> task);

  /// Enqueue on a specific worker's deque (it may still be stolen).
  void submit_to(std::size_t worker, std::function<void()> task);

  /// Block until every submitted task has finished or been cancelled.
  void wait_idle();

  /// Drop all tasks that have not started yet. Running tasks finish.
  void cancel_pending();

  /// Tasks executed by a worker other than the one they were submitted to.
  [[nodiscard]] std::uint64_t steal_count() const;

  /// First exception thrown by a task, if any (null otherwise).
  [[nodiscard]] std::exception_ptr first_exception() const;

 private:
  void worker_loop(std::size_t self);

  // Pops a task for worker `self`: own deque back first, then steal the
  // oldest task from another worker. Caller must hold mutex_.
  bool pop_or_steal(std::size_t self, std::function<void()>& out);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: work available or stopping
  std::condition_variable idle_cv_;   // waiters: queue drained + all idle
  std::vector<std::deque<std::function<void()>>> deques_;
  std::vector<std::thread> workers_;
  std::size_t next_worker_{0};  // round-robin submit cursor
  std::size_t queued_{0};       // tasks in deques
  std::size_t active_{0};       // tasks currently executing
  std::uint64_t steals_{0};
  std::exception_ptr first_exception_;
  bool stop_{false};
};

}  // namespace aetr::runtime
