// Structure-of-arrays biquad filterbank — the SIMD hot path of the
// cochlea model.
//
// The AoS CochleaModel loop stepped 128 independent Biquad objects per
// audio sample, one virtual-free but scalar step each. Repacking the
// coefficients and state registers into contiguous per-field arrays lets
// one packed instruction advance two channels at once (util/simd.hpp:
// SSE2/NEON, scalar fallback), with all channels of one ear sharing the
// broadcast input sample.
//
// Bit-exactness contract: step_block() performs exactly the operations of
// Biquad::step() in the same order per lane — including the subnormal
// flush on the state registers — so the SoA bank, the scalar fallback,
// and a loop over Biquad objects all produce byte-identical output
// (asserted in tests/test_cochlea.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "cochlea/biquad.hpp"

namespace aetr::cochlea {

/// A bank of independent DF2T biquads stored field-major (SoA).
class BiquadBankSoA {
 public:
  BiquadBankSoA() = default;

  /// Append one section (its state starts zeroed).
  void add(const Biquad& section);

  [[nodiscard]] std::size_t lanes() const { return b0_.size(); }

  /// Step lanes [begin, begin+n) with the shared input `x`; writes each
  /// lane's output into band[0..n). Dispatches to the SIMD kernel unless
  /// the runtime backend is scalar (simd::active_isa()).
  void step_block(double x, std::size_t begin, std::size_t n, double* band);

  /// Zero every state register.
  void reset();

 private:
  std::vector<double> b0_, b1_, b2_, a1_, a2_;
  std::vector<double> z1_, z2_;
};

}  // namespace aetr::cochlea
