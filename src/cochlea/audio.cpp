#include "cochlea/audio.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "cochlea/biquad.hpp"

namespace aetr::cochlea {

AudioSynth::AudioSynth(double sample_rate, std::uint64_t seed)
    : fs_{sample_rate}, rng_{seed} {}

std::size_t AudioSynth::samples_of(Time duration) const {
  return static_cast<std::size_t>(duration.to_sec() * fs_);
}

void AudioSynth::envelope(std::vector<double>& buf) {
  const std::size_t ramp = std::max<std::size_t>(1, buf.size() / 10);
  for (std::size_t i = 0; i < ramp && i < buf.size(); ++i) {
    const double w =
        0.5 - 0.5 * std::cos(std::numbers::pi * static_cast<double>(i) /
                             static_cast<double>(ramp));
    buf[i] *= w;
    buf[buf.size() - 1 - i] *= w;
  }
}

std::vector<double> AudioSynth::tone(double freq, double amplitude,
                                     Time duration) {
  std::vector<double> buf(samples_of(duration));
  for (std::size_t n = 0; n < buf.size(); ++n) {
    buf[n] = amplitude * std::sin(2.0 * std::numbers::pi * freq *
                                  static_cast<double>(n) / fs_);
  }
  envelope(buf);
  return buf;
}

std::vector<double> AudioSynth::noise_burst(double amplitude, double centre,
                                            Time duration) {
  std::vector<double> buf(samples_of(duration));
  Biquad band = Biquad::bandpass(std::min(centre, fs_ / 2.5), 2.0, fs_);
  for (auto& s : buf) {
    s = amplitude * 4.0 * band.step(rng_.uniform(-1.0, 1.0));
  }
  envelope(buf);
  return buf;
}

std::vector<double> AudioSynth::silence(Time duration) const {
  return std::vector<double>(samples_of(duration), 0.0);
}

std::vector<double> AudioSynth::phoneme(const Phoneme& p) {
  std::vector<double> buf(samples_of(p.duration));
  Biquad noise_band =
      Biquad::bandpass(std::min(p.noise_centre, fs_ / 2.5), 2.0, fs_);
  for (std::size_t n = 0; n < buf.size(); ++n) {
    const double t = static_cast<double>(n) / fs_;
    double s = 0.0;
    if (p.a1 > 0.0) s += p.a1 * std::sin(2.0 * std::numbers::pi * p.f1 * t);
    if (p.a2 > 0.0) s += p.a2 * std::sin(2.0 * std::numbers::pi * p.f2 * t);
    if (p.a3 > 0.0) s += p.a3 * std::sin(2.0 * std::numbers::pi * p.f3 * t);
    if (p.pitch > 0.0 && s != 0.0) {
      // Voicing: raised-cosine modulation at the pitch rate approximates the
      // glottal pulse train's envelope.
      s *= 0.5 + 0.5 * std::cos(2.0 * std::numbers::pi * p.pitch * t);
    }
    if (p.noise > 0.0) {
      s += p.noise * 4.0 * noise_band.step(rng_.uniform(-1.0, 1.0));
    }
    buf[n] = s;
  }
  envelope(buf);
  return buf;
}

std::vector<double> AudioSynth::word(const std::vector<Phoneme>& phonemes,
                                     Time gap) {
  std::vector<double> out;
  for (std::size_t i = 0; i < phonemes.size(); ++i) {
    const auto seg = phoneme(phonemes[i]);
    out.insert(out.end(), seg.begin(), seg.end());
    if (i + 1 < phonemes.size()) {
      const auto pause = silence(gap);
      out.insert(out.end(), pause.begin(), pause.end());
    }
  }
  return out;
}

void AudioSynth::add_background(std::vector<double>& audio, double amplitude) {
  for (auto& s : audio) s += amplitude * rng_.uniform(-1.0, 1.0);
}

std::vector<Phoneme> AudioSynth::demo_word() {
  // "seven"-ish: /s/ noise, /E/ vowel, /v/ weak voiced, /@/ vowel, /n/ hum.
  return {
      Phoneme{.noise = 0.35, .noise_centre = 5500.0, .pitch = 0.0,
              .duration = Time::ms(90.0)},
      Phoneme{.f1 = 550.0, .f2 = 1800.0, .f3 = 2500.0, .a1 = 0.5, .a2 = 0.35,
              .a3 = 0.15, .pitch = 120.0, .duration = Time::ms(130.0)},
      Phoneme{.f1 = 220.0, .f2 = 1500.0, .a1 = 0.25, .a2 = 0.1, .noise = 0.08,
              .noise_centre = 3000.0, .pitch = 120.0,
              .duration = Time::ms(70.0)},
      Phoneme{.f1 = 500.0, .f2 = 1400.0, .f3 = 2300.0, .a1 = 0.45, .a2 = 0.3,
              .a3 = 0.1, .pitch = 110.0, .duration = Time::ms(110.0)},
      Phoneme{.f1 = 250.0, .f2 = 1200.0, .a1 = 0.35, .a2 = 0.08,
              .pitch = 110.0, .duration = Time::ms(90.0)},
  };
}

}  // namespace aetr::cochlea
