#include "cochlea/biquad.hpp"

#include <cassert>
#include <cmath>
#include <complex>
#include <numbers>

namespace aetr::cochlea {

Biquad Biquad::bandpass(double f0, double q, double fs) {
  assert(f0 > 0.0 && f0 < fs / 2.0 && q > 0.0);
  const double w0 = 2.0 * std::numbers::pi * f0 / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  return Biquad{alpha / a0, 0.0, -alpha / a0, -2.0 * std::cos(w0) / a0,
                (1.0 - alpha) / a0};
}

double Biquad::magnitude(double f, double fs) const {
  const double w = 2.0 * std::numbers::pi * f / fs;
  const std::complex<double> z = std::polar(1.0, -w);
  const std::complex<double> num = b0_ + b1_ * z + b2_ * z * z;
  const std::complex<double> den = 1.0 + a1_ * z + a2_ * z * z;
  return std::abs(num / den);
}

std::vector<double> log_spaced_centres(double f_lo, double f_hi,
                                       std::size_t channels) {
  assert(f_lo > 0.0 && f_hi > f_lo && channels >= 1);
  std::vector<double> centres(channels);
  if (channels == 1) {
    centres[0] = std::sqrt(f_lo * f_hi);
    return centres;
  }
  const double step = std::log(f_hi / f_lo) / static_cast<double>(channels - 1);
  for (std::size_t i = 0; i < channels; ++i) {
    centres[i] = f_lo * std::exp(step * static_cast<double>(i));
  }
  return centres;
}

}  // namespace aetr::cochlea
