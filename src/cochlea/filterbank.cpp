#include "cochlea/filterbank.hpp"

#include <cassert>

#include "util/simd.hpp"

namespace aetr::cochlea {

void BiquadBankSoA::add(const Biquad& section) {
  const Biquad::Coeffs c = section.coefficients();
  b0_.push_back(c.b0);
  b1_.push_back(c.b1);
  b2_.push_back(c.b2);
  a1_.push_back(c.a1);
  a2_.push_back(c.a2);
  z1_.push_back(0.0);
  z2_.push_back(0.0);
}

void BiquadBankSoA::reset() {
  z1_.assign(z1_.size(), 0.0);
  z2_.assign(z2_.size(), 0.0);
}

void BiquadBankSoA::step_block(double x, std::size_t begin, std::size_t n,
                               double* band) {
  assert(begin + n <= lanes());
  std::size_t i = begin;
  double* out = band;
  if (simd::active_isa() != simd::Isa::kScalar) {
    const simd::Vec2d vx{x};
    for (; i + 2 <= begin + n; i += 2, out += 2) {
      const simd::Vec2d b0 = simd::Vec2d::load(&b0_[i]);
      const simd::Vec2d b1 = simd::Vec2d::load(&b1_[i]);
      const simd::Vec2d b2 = simd::Vec2d::load(&b2_[i]);
      const simd::Vec2d a1 = simd::Vec2d::load(&a1_[i]);
      const simd::Vec2d a2 = simd::Vec2d::load(&a2_[i]);
      simd::Vec2d z1 = simd::Vec2d::load(&z1_[i]);
      const simd::Vec2d z2 = simd::Vec2d::load(&z2_[i]);
      // Biquad::step(), two lanes wide: y = b0*x + z1;
      // z1' = flush(b1*x - a1*y + z2); z2' = flush(b2*x - a2*y).
      const simd::Vec2d y = b0 * vx + z1;
      z1 = (b1 * vx - a1 * y + z2).flush_subnormals();
      const simd::Vec2d nz2 = (b2 * vx - a2 * y).flush_subnormals();
      z1.store(&z1_[i]);
      nz2.store(&z2_[i]);
      y.store(out);
    }
  }
  // Scalar fallback and odd tail lane.
  for (; i < begin + n; ++i, ++out) {
    const double y = b0_[i] * x + z1_[i];
    z1_[i] = simd::flush_subnormal(b1_[i] * x - a1_[i] * y + z2_[i]);
    z2_[i] = simd::flush_subnormal(b2_[i] * x - a2_[i] * y);
    *out = y;
  }
}

}  // namespace aetr::cochlea
