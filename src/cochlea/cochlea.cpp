#include "cochlea/cochlea.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace aetr::cochlea {

IafNeuron::IafNeuron(double threshold, double leak_per_sec, Time refractory)
    : threshold_{threshold},
      leak_per_sec_{leak_per_sec},
      refractory_{refractory} {
  assert(threshold > 0.0 && leak_per_sec >= 0.0);
}

bool IafNeuron::step(double drive, double dt_sec, double& fire_fraction) {
  if (refractory_left_sec_ > 0.0) {
    refractory_left_sec_ -= dt_sec;
    membrane_ = 0.0;
    return false;
  }
  const double before = membrane_;
  // Leak then integrate (explicit Euler at the audio rate).
  membrane_ = membrane_ * (1.0 - leak_per_sec_ * dt_sec) + drive * dt_sec;
  membrane_ = std::max(membrane_, 0.0);
  if (membrane_ >= threshold_) {
    // Linear interpolation of the crossing instant within the sample.
    const double rise = membrane_ - before;
    fire_fraction =
        rise > 0.0 ? std::clamp((threshold_ - before) / rise, 0.0, 1.0) : 0.0;
    membrane_ = 0.0;
    refractory_left_sec_ = refractory_.to_sec();
    return true;
  }
  return false;
}

void IafNeuron::reset() {
  membrane_ = 0.0;
  refractory_left_sec_ = 0.0;
}

CochleaModel::CochleaModel(CochleaConfig config)
    : cfg_{config},
      centres_{log_spaced_centres(config.f_lo, config.f_hi, config.channels)} {
  if (cfg_.channels * cfg_.ears > aer::kAddressMask + 1u) {
    throw std::invalid_argument(
        "CochleaModel: channels*ears exceeds the 10-bit AER address space");
  }
  neurons_.reserve(cfg_.ears * cfg_.channels);
  for (std::size_t ear = 0; ear < cfg_.ears; ++ear) {
    for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
      bank_.add(
          Biquad::bandpass(centres_[ch], cfg_.quality, cfg_.sample_rate));
      neurons_.emplace_back(cfg_.threshold, cfg_.leak_per_sec,
                            cfg_.refractory);
    }
  }
  band_.assign(cfg_.ears * cfg_.channels, 0.0);
  envelopes_.assign(cfg_.ears * cfg_.channels, cfg_.agc.target);
}

double CochleaModel::agc_gain(std::size_t ear, std::size_t channel) const {
  const auto& agc = cfg_.agc;
  if (!agc.enabled) return 1.0;
  const double env =
      std::max(envelopes_[ear * cfg_.channels + channel], 1e-9);
  return std::clamp(agc.target / env, agc.min_gain, agc.max_gain);
}

std::uint16_t CochleaModel::address_of(std::size_t ear,
                                       std::size_t channel) const {
  assert(ear < cfg_.ears && channel < cfg_.channels);
  return static_cast<std::uint16_t>(ear * cfg_.channels + channel);
}

std::size_t CochleaModel::channel_of(std::uint16_t address) const {
  return address % cfg_.channels;
}

std::size_t CochleaModel::ear_of(std::uint16_t address) const {
  return address / cfg_.channels;
}

aer::EventStream CochleaModel::process(const std::vector<double>& audio,
                                       Time start) {
  const double dt = 1.0 / cfg_.sample_rate;
  aer::EventStream events;
  for (std::size_t n = 0; n < audio.size(); ++n) {
    const double sample_time_sec = static_cast<double>(n) * dt;
    for (std::size_t ear = 0; ear < cfg_.ears; ++ear) {
      // All of one ear's channels share the input sample, so the whole
      // ear advances through the SoA bank as one SIMD block.
      const double gain = ear == 0 ? 1.0 : 1.0 + cfg_.ear_skew;
      const std::size_t base = ear * cfg_.channels;
      bank_.step_block(audio[n] * gain, base, cfg_.channels,
                       band_.data() + base);
      for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
        const std::size_t idx = base + ch;
        const double band = band_[idx];
        double drive = std::max(band, 0.0);  // half-wave rectification
        if (cfg_.agc.enabled) {
          // Slow envelope follower steering the channel gain towards the
          // target level (dynamic-range compression).
          const double alpha = dt / cfg_.agc.tau_sec;
          envelopes_[idx] += (std::abs(band) - envelopes_[idx]) * alpha;
          drive *= std::clamp(cfg_.agc.target /
                                  std::max(envelopes_[idx], 1e-9),
                              cfg_.agc.min_gain, cfg_.agc.max_gain);
        }
        double frac = 0.0;
        if (neurons_[idx].step(drive, dt, frac)) {
          const Time t =
              start + Time::sec(sample_time_sec + frac * dt);
          events.push_back(
              aer::Event{address_of(ear, ch), t});
        }
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const aer::Event& a, const aer::Event& b) {
              return a.time < b.time;
            });
  return events;
}

void CochleaModel::reset() {
  bank_.reset();
  for (auto& n : neurons_) n.reset();
  envelopes_.assign(envelopes_.size(), cfg_.agc.target);
}

}  // namespace aetr::cochlea
