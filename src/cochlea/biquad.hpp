// Second-order IIR sections and band-pass design (RBJ audio-EQ cookbook),
// the building block of the silicon-cochlea filterbank model.
#pragma once

#include <cstddef>
#include <vector>

#include "util/simd.hpp"

namespace aetr::cochlea {

/// Direct-form-II-transposed biquad. Coefficients are normalised (a0 = 1).
class Biquad {
 public:
  Biquad() = default;
  Biquad(double b0, double b1, double b2, double a1, double a2)
      : b0_{b0}, b1_{b1}, b2_{b2}, a1_{a1}, a2_{a2} {}

  /// Constant-0dB-peak-gain band-pass section at centre `f0` with quality
  /// `q`, for sample rate `fs` (RBJ cookbook "BPF, constant 0 dB peak").
  [[nodiscard]] static Biquad bandpass(double f0, double q, double fs);

  /// Process one sample. The state registers flush subnormals to zero:
  /// during long silent stretches an IIR tail decays geometrically into
  /// the subnormal range, where x86 cores take a microcode assist per
  /// operation — the flush caps the tail at zero (inaudible by ~300 dB)
  /// instead. BiquadBankSoA applies the identical guard, so scalar and
  /// SIMD paths stay bit-identical.
  [[nodiscard]] double step(double x) {
    const double y = b0_ * x + z1_;
    z1_ = simd::flush_subnormal(b1_ * x - a1_ * y + z2_);
    z2_ = simd::flush_subnormal(b2_ * x - a2_ * y);
    return y;
  }

  void reset() { z1_ = z2_ = 0.0; }

  /// Magnitude response at frequency `f` for sample rate `fs`.
  [[nodiscard]] double magnitude(double f, double fs) const;

  /// Normalised coefficients, for SoA repacking (BiquadBankSoA).
  struct Coeffs {
    double b0, b1, b2, a1, a2;
  };
  [[nodiscard]] Coeffs coefficients() const {
    return Coeffs{b0_, b1_, b2_, a1_, a2_};
  }

 private:
  double b0_{1.0}, b1_{0.0}, b2_{0.0};
  double a1_{0.0}, a2_{0.0};
  double z1_{0.0}, z2_{0.0};
};

/// Logarithmically spaced centre frequencies from `f_lo` to `f_hi`
/// (inclusive), one per channel — the cochlear place-frequency map.
[[nodiscard]] std::vector<double> log_spaced_centres(double f_lo, double f_hi,
                                                     std::size_t channels);

}  // namespace aetr::cochlea
