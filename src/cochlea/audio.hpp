// Formant-based audio synthesiser.
//
// The paper's Fig. 7 shows the cochlea sensing "a word extracted from a real
// sentence"; we have no licensed speech corpus in this environment, so the
// quickstart and Fig. 7 bench synthesise a spoken-word-like signal: a
// sequence of phoneme segments (voiced formant stacks and fricative noise
// bursts) under an amplitude envelope, optionally over background noise.
// This exercises the same code path: a bursty, channel-structured AER
// stream peaking at a few hundred kevt/s.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace aetr::cochlea {

/// One synthesis segment: up to three formants plus a noise component.
/// Voiced segments amplitude-modulate the formant stack at the pitch rate.
struct Phoneme {
  double f1 = 0.0, f2 = 0.0, f3 = 0.0;   ///< formant frequencies (Hz)
  double a1 = 0.0, a2 = 0.0, a3 = 0.0;   ///< formant amplitudes
  double noise = 0.0;                    ///< fricative noise amplitude
  double noise_centre = 4000.0;          ///< noise band centre (Hz)
  double pitch = 120.0;                  ///< voicing rate; 0 = unvoiced
  Time duration = Time::ms(120.0);
};

/// Deterministic (seeded) audio synthesiser.
class AudioSynth {
 public:
  explicit AudioSynth(double sample_rate = 48e3, std::uint64_t seed = 42);

  [[nodiscard]] double sample_rate() const { return fs_; }

  /// Pure sine burst.
  [[nodiscard]] std::vector<double> tone(double freq, double amplitude,
                                         Time duration);

  /// Band-limited noise burst around `centre`.
  [[nodiscard]] std::vector<double> noise_burst(double amplitude,
                                                double centre, Time duration);

  [[nodiscard]] std::vector<double> silence(Time duration) const;

  /// Render one phoneme with a 10 % raised-cosine attack/release envelope.
  [[nodiscard]] std::vector<double> phoneme(const Phoneme& p);

  /// Concatenate phonemes with `gap` of silence between them.
  [[nodiscard]] std::vector<double> word(const std::vector<Phoneme>& phonemes,
                                         Time gap = Time::ms(15.0));

  /// Add white background noise of the given amplitude in place.
  void add_background(std::vector<double>& audio, double amplitude);

  /// A canned two-syllable word (fricative onset, two vowel nuclei, stop)
  /// roughly shaped like "seven" — the Fig. 7 stimulus.
  [[nodiscard]] static std::vector<Phoneme> demo_word();

 private:
  [[nodiscard]] std::size_t samples_of(Time duration) const;
  static void envelope(std::vector<double>& buf);

  double fs_;
  Xoshiro256StarStar rng_;
};

}  // namespace aetr::cochlea
