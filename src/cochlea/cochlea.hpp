// Behavioural model of an AER silicon cochlea (stand-in for the Cochlea
// AMS C1c on the iniLabs DAS1 board, per the substitution table in
// DESIGN.md).
//
// Audio -> per-channel log-spaced band-pass filter -> half-wave
// rectification -> leaky integrate-and-fire neuron -> AER spike. Spike
// times are sub-sample interpolated so the produced inter-spike intervals
// are not quantised to the audio rate. Addresses encode (ear, channel) like
// the DAS1: address = ear * channels + channel.
#pragma once

#include <cstdint>
#include <vector>

#include "aer/event.hpp"
#include "cochlea/biquad.hpp"
#include "cochlea/filterbank.hpp"
#include "util/time.hpp"

namespace aetr::cochlea {

/// Leaky integrate-and-fire unit driven by rectified band energy.
class IafNeuron {
 public:
  /// `threshold`: membrane level that fires; `leak_per_sec`: exponential
  /// leak rate; `refractory`: dead time after a spike.
  IafNeuron(double threshold, double leak_per_sec, Time refractory);

  /// Integrate one audio sample of drive (already rectified); returns true
  /// if the neuron fires during this sample, with `fire_fraction` set to the
  /// sub-sample position in [0,1) of the threshold crossing.
  bool step(double drive, double dt_sec, double& fire_fraction);

  void reset();

  [[nodiscard]] double membrane() const { return membrane_; }

 private:
  double threshold_;
  double leak_per_sec_;
  Time refractory_;
  double membrane_{0.0};
  double refractory_left_sec_{0.0};
};

/// Per-channel automatic gain control — the behavioural counterpart of the
/// Q-control/adaptation loops in silicon cochleas (the paper's refs [13]
/// [14]): a slow envelope follower normalises each channel's drive towards
/// a target level, compressing the sensor's dynamic range so quiet signals
/// still spike and loud ones do not saturate the AER bus.
struct AgcConfig {
  bool enabled = false;
  double target = 0.05;      ///< envelope level gain steers towards
  double tau_sec = 0.05;     ///< envelope follower time constant
  double min_gain = 0.25;
  double max_gain = 20.0;
};

/// Full sensor configuration.
struct CochleaConfig {
  std::size_t channels = 64;     ///< per ear (DAS1: 64)
  std::size_t ears = 2;          ///< binaural
  double f_lo = 100.0;           ///< lowest channel centre (Hz)
  double f_hi = 10e3;            ///< highest channel centre (Hz)
  double quality = 6.0;          ///< band-pass Q
  double sample_rate = 48e3;     ///< audio rate of the model
  double threshold = 2e-5;       ///< IAF threshold (volt-seconds)
  double leak_per_sec = 80.0;    ///< membrane leak
  Time refractory = Time::us(100.0);
  double ear_skew = 0.02;        ///< right-ear drive mismatch (analog spread)
  AgcConfig agc;                 ///< per-channel gain adaptation
};

/// The sensor model: feed audio, get a time-sorted AER event stream.
class CochleaModel {
 public:
  explicit CochleaModel(CochleaConfig config = {});

  [[nodiscard]] const CochleaConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<double>& centres() const { return centres_; }

  /// Process a mono audio buffer (both ears hear it, the right ear with a
  /// slight gain mismatch); events are appended with absolute times offset
  /// by `start`. Model state persists across calls.
  aer::EventStream process(const std::vector<double>& audio,
                           Time start = Time::zero());

  /// Reset all filter and neuron state.
  void reset();

  /// Current AGC gain of (ear, channel) — for tests and introspection.
  [[nodiscard]] double agc_gain(std::size_t ear, std::size_t channel) const;

  /// Address layout helpers.
  [[nodiscard]] std::uint16_t address_of(std::size_t ear,
                                         std::size_t channel) const;
  [[nodiscard]] std::size_t channel_of(std::uint16_t address) const;
  [[nodiscard]] std::size_t ear_of(std::uint16_t address) const;

 private:
  CochleaConfig cfg_;
  std::vector<double> centres_;
  // Lanes indexed [ear * channels + channel]. The filterbank is SoA so
  // one packed instruction steps two channels (see cochlea/filterbank.hpp);
  // the rectify/AGC/neuron stage consumes its per-sample output from
  // band_ in the same lane order the old AoS loop used.
  BiquadBankSoA bank_;
  std::vector<double> band_;
  std::vector<IafNeuron> neurons_;
  std::vector<double> envelopes_;
};

}  // namespace aetr::cochlea
