// RTL-level clock unit: the Fig. 1 FSM executed cycle by cycle on *real*
// clock edges.
//
// The production ClockGenerator advances the divided-clock state in closed
// form (SamplingSchedule) for speed. This module is its structural twin:
// a RingOscillator produces every 120 MHz edge, a DividerCascade ripples
// them down to the 15 MHz base clock, and a register-level FSM — prescaler,
// cycle counter, division level, timestamp counter with shifting increment,
// 2-FF request synchroniser — executes the pseudocode literally, edge by
// edge, asserting SLEEP into the oscillator and waking it on REQ.
//
// tests/test_rtl.cpp co-simulates both against identical stimuli and pins
// tick-exact equivalence; this is the repository's proof that the fast
// model *is* the hardware behaviour.
#pragma once

#include <cstdint>
#include <functional>

#include "clockgen/divider.hpp"
#include "clockgen/ring_oscillator.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aetr::rtl {

/// FSM parameters (mirrors ClockGeneratorConfig for the shared fields).
struct ClockUnitConfig {
  clockgen::RingOscillatorConfig ring;  ///< 9 stages -> ~120 MHz
  unsigned base_divider_stages = 3;     ///< 120 MHz -> 15 MHz base clock
  std::uint32_t theta_div = 64;
  std::uint32_t n_div = 8;
  std::uint32_t sync_stages = 2;
  bool divide_enabled = true;
  bool shutdown_enabled = true;
};

/// Cycle-by-cycle clock unit.
class RtlClockUnit {
 public:
  /// Sample callback: (sampling-edge time, latched counter, saturated).
  using SampleFn = std::function<void(Time, std::uint64_t, bool)>;

  RtlClockUnit(sim::Scheduler& sched, ClockUnitConfig config = {});

  /// Begin oscillating (reset state: level 0, counter 0).
  void start();

  /// Drive the asynchronous REQ level into the synchroniser. A rising
  /// level while the oscillator sleeps restarts it (the Fig. 5 NOR path).
  void set_request(bool level);

  /// Register the sample consumer (the front-end).
  void on_sample(SampleFn fn) { sample_fn_ = std::move(fn); }

  /// The divided (variable-frequency) sampling clock, one tick per FSM
  /// sampling cycle — for VCD dumps and gated consumers.
  [[nodiscard]] sim::ClockLine& sampling_line() { return sampling_line_; }

  // --- observability ---------------------------------------------------------
  [[nodiscard]] std::uint32_t level() const { return level_; }
  [[nodiscard]] std::uint64_t counter() const { return counter_; }
  [[nodiscard]] bool asleep() const { return !osc_.running(); }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t base_edges() const { return base_edges_; }
  [[nodiscard]] clockgen::RingOscillator& oscillator() { return osc_; }

 private:
  void base_edge(Time t);
  void sampling_tick(Time t);
  void reset_fsm();

  sim::Scheduler& sched_;
  ClockUnitConfig cfg_;
  clockgen::RingOscillator osc_;
  clockgen::DividerCascade divider_;
  sim::ClockLine sampling_line_;
  SampleFn sample_fn_;

  // Architectural registers.
  std::uint32_t level_{0};
  std::uint64_t prescale_{1};        ///< base edges per sampling tick (2^level)
  std::uint64_t prescale_count_{0};
  std::uint32_t ticks_in_level_{0};
  std::uint64_t counter_{0};
  std::uint64_t sync_shift_{0};      ///< request synchroniser shift register
  bool req_level_{false};
  bool saturated_{false};

  std::uint64_t samples_{0};
  std::uint64_t base_edges_{0};
};

}  // namespace aetr::rtl
