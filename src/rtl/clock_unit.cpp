#include "rtl/clock_unit.hpp"

#include <utility>

namespace aetr::rtl {

RtlClockUnit::RtlClockUnit(sim::Scheduler& sched, ClockUnitConfig config)
    : sched_{sched},
      cfg_{config},
      osc_{sched, config.ring},
      divider_{osc_.line(), config.base_divider_stages} {
  divider_.line().on_rising([this](Time t, Time) { base_edge(t); });
}

void RtlClockUnit::start() {
  reset_fsm();
  osc_.start();
}

void RtlClockUnit::reset_fsm() {
  level_ = 0;
  prescale_ = 1;
  prescale_count_ = 0;
  ticks_in_level_ = 0;
  counter_ = 0;
  saturated_ = false;
}

void RtlClockUnit::set_request(bool level) {
  req_level_ = level;
  if (level && !osc_.running()) {
    // Fig. 5: the request releases SLEEP asynchronously through the NOR
    // gate; the ring restarts (wake latency) and, per the pseudocode, the
    // schedule resumes from the fastest period.
    prescale_ = 1;
    prescale_count_ = 0;
    level_ = 0;
    ticks_in_level_ = 0;
    divider_.reset();
    osc_.wake();
  }
}

void RtlClockUnit::base_edge(Time t) {
  ++base_edges_;
  if (++prescale_count_ < prescale_) return;
  prescale_count_ = 0;
  sampling_tick(t);
}

void RtlClockUnit::sampling_tick(Time t) {
  // 1. Timestamp counter: increment by the spacing just elapsed (the
  //    "configurable increment step" tracking the division level). Frozen
  //    once the schedule saturated — the register kept its final value
  //    while the clock was off.
  if (!saturated_) counter_ += prescale_;

  // 2. Request synchroniser: the request is consumed sync_stages edges
  //    after the first edge that observed it (same convention as
  //    ClockGenerator::capture_request).
  sync_shift_ = (sync_shift_ << 1) | (req_level_ ? 1u : 0u);
  if ((sync_shift_ >> cfg_.sync_stages) & 1u) {
    const std::uint64_t latched = counter_;
    // A counter at its ceiling is the saturation marker even when the
    // request raced the shutdown instant and kept the clock alive.
    const std::uint64_t sat_ticks =
        static_cast<std::uint64_t>(cfg_.theta_div) *
        ((std::uint64_t{1} << (cfg_.n_div + 1)) - 1);
    const bool was_saturated =
        saturated_ || (cfg_.divide_enabled && cfg_.shutdown_enabled &&
                       latched >= sat_ticks);
    ++samples_;
    reset_fsm();          // sample(); acknowledge(); back to Tmin
    sync_shift_ = 0;      // handshake closes before the next edge
    sampling_line_.tick(t, Time::zero());
    if (sample_fn_) sample_fn_(t, latched, was_saturated);
    return;
  }

  // 3. Saturated schedule: the clock only stays alive because a request is
  //    holding the NOR; once it clears (sample handled above) the ring can
  //    finally pause.
  if (saturated_) {
    if (!req_level_) {
      osc_.sleep();
      return;
    }
    sampling_line_.tick(t, Time::zero());
    return;
  }

  // 4. Division bookkeeping (Fig. 1).
  if (cfg_.divide_enabled && !saturated_) {
    if (++ticks_in_level_ >= cfg_.theta_div) {
      if (level_ >= cfg_.n_div) {
        if (cfg_.shutdown_enabled) {
          saturated_ = true;  // the counter freezes at its final value
          if (!req_level_) {
            // shutdown_clk(): this would-be edge never happens.
            osc_.sleep();
            return;
          }
          // A request is mid-synchroniser: REQ holds the Fig. 5 NOR, so
          // SLEEP cannot take effect — keep ticking at the slowest period
          // until the sample closes.
        }
        ticks_in_level_ = 0;  // dwell at the slowest period
      } else {
        ++level_;
        prescale_ <<= 1;
        ticks_in_level_ = 0;
      }
    }
  }
  sampling_line_.tick(t, Time::zero());
}

}  // namespace aetr::rtl
