#include "clockgen/ring_oscillator.hpp"

#include <algorithm>
#include <stdexcept>

namespace aetr::clockgen {

RingOscillator::RingOscillator(sim::Scheduler& sched,
                               RingOscillatorConfig config)
    : sched_{sched},
      cfg_{config},
      nominal_period_{config.stage_delay *
                      static_cast<Time::Rep>(2 * config.stages)},
      jitter_rng_{config.jitter_seed} {
  if (config.stages % 2 == 0) {
    throw std::invalid_argument(
        "RingOscillator: inverting ring needs an odd stage count");
  }
  if (config.stage_delay <= Time::zero()) {
    throw std::invalid_argument("RingOscillator: stage delay must be > 0");
  }
}

Time RingOscillator::jittered_period() {
  if (cfg_.jitter_stddev <= 0.0) return nominal_period_;
  const double factor =
      std::max(0.1, jitter_rng_.normal(1.0, cfg_.jitter_stddev));
  return Time::sec(nominal_period_.to_sec() * factor);
}

void RingOscillator::start() {
  if (running_) return;
  running_ = true;
  sleep_requested_ = false;
  run_start_ = sched_.now();
  next_edge_ = sched_.now() + jittered_period();
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

void RingOscillator::sleep() {
  if (!running_) return;
  // The SLEEP pulse is AND-gated with the clock so the stop is glitch-free:
  // the in-flight cycle still completes, then the loop freezes. We mark the
  // request; edge() performs the stop after publishing its edge.
  sleep_requested_ = true;
}

void RingOscillator::wake() {
  if (running_) {
    sleep_requested_ = false;  // wake raced an in-flight sleep request
    return;
  }
  running_ = true;
  ++wakeups_;
  run_start_ = sched_.now();
  // The restart transient lasts wake_latency; the first complete cycle
  // (and hence the first usable edge) closes one period after that.
  next_edge_ = sched_.now() + cfg_.wake_latency + jittered_period();
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

void RingOscillator::edge() {
  line_.tick(sched_.now(), nominal_period_);
  if (sleep_requested_) {
    sleep_requested_ = false;
    running_ = false;
    awake_accum_ += sched_.now() - run_start_;
    pending_ = sim::EventId{};
    next_edge_ = Time::max();
    return;
  }
  next_edge_ = sched_.now() + jittered_period();
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

void RingOscillator::advance_to(Time t) {
  if (cfg_.jitter_stddev > 0.0) {
    throw std::logic_error(
        "RingOscillator::advance_to: jittered ring must be step-ticked");
  }
  if (!running_ || next_edge_ > t) return;
  if (sleep_requested_) {
    // SLEEP already latched: exactly one more edge fires, then the loop
    // freezes — mirror the edge() stop branch at the edge instant.
    const Time e = next_edge_;
    sched_.cancel(pending_);
    pending_ = sim::EventId{};
    next_edge_ = Time::max();
    line_.advance(1, e, nominal_period_);
    sleep_requested_ = false;
    running_ = false;
    awake_accum_ += e - run_start_;
    return;
  }
  const auto n = static_cast<std::uint64_t>(
      (t - next_edge_) / nominal_period_) + 1;
  const Time last =
      next_edge_ + nominal_period_ * static_cast<Time::Rep>(n - 1);
  sched_.cancel(pending_);
  line_.advance(n, last, nominal_period_);
  if (sleep_requested_) {
    throw std::logic_error(
        "RingOscillator::advance_to: a subscriber paused the ring mid-run");
  }
  next_edge_ = last + nominal_period_;
  pending_ = sched_.schedule_at(next_edge_, [this] { edge(); });
}

Time RingOscillator::awake_time() const {
  Time t = awake_accum_;
  if (running_) t += sched_.now() - run_start_;
  return t;
}

}  // namespace aetr::clockgen
