// Pure mathematical model of the Fig. 1 variable-frequency sampling
// schedule ("AETRsampling" pseudocode).
//
// After every sampled event the sampling period restarts at Tmin; every
// `theta_div` cycles the period doubles; after `n_div` doublings plus a full
// dwell at the slowest period the clock shuts off. The timestamp counter
// increments by 2^level per sampling cycle, so its value always equals the
// elapsed time in Tmin units, quantised to the current period — this is the
// "configurable increment step" of the paper's timestamp counter (§4).
//
// All functions are closed-form in the elapsed time since the last schedule
// reset; the DES ClockGenerator and the analysis sweeps share this class, so
// the cycle-level simulator and the paper's-Matlab-model equivalent are
// provably quantising identically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace aetr::clockgen {

/// Static parameters of the sampling schedule.
struct ScheduleConfig {
  Time tmin = Time::ns(1e3 / 15.0);  ///< base sampling period (15 MHz)
  std::uint32_t theta_div = 64;      ///< cycles between successive divisions
  std::uint32_t n_div = 8;           ///< divisions before clock shutdown
  bool divide_enabled = true;        ///< false = naïve constant frequency
  bool shutdown_enabled = true;      ///< false = divide but never sleep
};

/// Closed-form sampling schedule. Elapsed times are relative to the last
/// reset edge (elapsed 0 is itself a sampling edge with counter value 0).
class SamplingSchedule {
 public:
  explicit SamplingSchedule(const ScheduleConfig& config);

  [[nodiscard]] const ScheduleConfig& config() const { return cfg_; }

  /// Sampling period while at division level k (0 <= k <= n_div).
  [[nodiscard]] Time period_of_level(std::uint32_t k) const;

  /// Elapsed time at which division level k begins (S_0 = 0).
  [[nodiscard]] Time level_start(std::uint32_t k) const;

  /// Total awake time after a reset: theta_div*Tmin*(2^(n_div+1)-1).
  /// Time::max() when shutdown or division is disabled.
  [[nodiscard]] Time awake_span() const;

  /// Counter value the timestamp register freezes at when the clock stops
  /// (the elapsed awake time in Tmin units). Events waiting longer than
  /// awake_span() are tagged saturated.
  [[nodiscard]] std::uint64_t saturation_ticks() const;

  /// Division level active at `elapsed` (clamped to n_div; meaningless when
  /// asleep — check is_asleep_at first).
  [[nodiscard]] std::uint32_t level_at(Time elapsed) const;

  /// True once the schedule has exhausted all divisions and shut down.
  [[nodiscard]] bool is_asleep_at(Time elapsed) const;

  /// First sampling edge at or after `elapsed`, or Time::max() if the clock
  /// shuts down before producing another edge.
  [[nodiscard]] Time first_edge_at_or_after(Time elapsed) const;

  /// Timestamp-counter value at sampling edge `edge` (edge must be an exact
  /// edge instant as returned by first_edge_at_or_after).
  [[nodiscard]] std::uint64_t counter_at_edge(Time edge) const;

  /// Number of sampling edges in (0, elapsed] — the dynamic activity of the
  /// sampling clock domain over the interval.
  [[nodiscard]] std::uint64_t cycles_until(Time elapsed) const;

  /// The full measurement an ideal interface performs on one inter-spike
  /// interval: the counter value latched `sync_edges` sampling edges after
  /// the request arrives, `delta` after the previous sample. Returns the
  /// measured ticks and the edge (relative time) at which the sample closes,
  /// which becomes the next interval's origin.
  struct Measurement {
    std::uint64_t ticks{0};
    Time sample_edge{Time::zero()};
    bool saturated{false};
  };
  [[nodiscard]] Measurement measure(Time delta, std::uint32_t sync_edges = 0,
                                    Time wake_latency = Time::zero()) const;

  /// All edge instants in [0, until] with their division level; for VCD
  /// dumps and the Fig. 2 waveform test. Bounded by `max_edges`.
  struct Edge {
    Time at;
    std::uint32_t level;
  };
  [[nodiscard]] std::vector<Edge> enumerate_edges(
      Time until, std::size_t max_edges = 1u << 20) const;

 private:
  ScheduleConfig cfg_;
  std::uint32_t top_level_;           // n_div if dividing, else 0
  std::vector<Time> level_starts_;    // S_0..S_(top+1)
};

}  // namespace aetr::clockgen
