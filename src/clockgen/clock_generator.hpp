// The Clock Generator block (paper §4.1): pausable ring oscillator +
// divider cascade + the Fig. 1 sampling FSM, exposed to the AER front-end
// as a "capture" service.
//
// Implementation note: between spikes the divided-clock state is a pure
// function of elapsed time (SamplingSchedule), so this block schedules *no*
// periodic DES events at all — it materialises edges only while a request
// is in flight (2-3 per spike) and accounts awake time / cycle counts in
// closed form at each schedule reset. This makes simulated cost proportional
// to event rate, mirroring the energy proportionality of the hardware.
#pragma once

#include <cstdint>
#include <functional>

#include "clockgen/schedule.hpp"
#include "fault/injector.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace aetr {
class BlobWriter;
class BlobReader;
}  // namespace aetr

namespace aetr::clockgen {

/// Clock generator parameters. Defaults follow the paper: 120 MHz ring,
/// /4 to the 30 MHz reference, /2 to the 15 MHz base sampling clock.
struct ClockGeneratorConfig {
  Frequency ring_frequency = Frequency::mhz(120.0);
  unsigned ref_divider_stages = 2;       ///< 120 MHz -> 30 MHz reference
  unsigned sampling_divider_stages = 1;  ///< 30 MHz -> 15 MHz base sampling
  std::uint32_t theta_div = 64;
  std::uint32_t n_div = 8;
  bool divide_enabled = true;
  bool shutdown_enabled = true;
  Time wake_latency = Time::ns(100);
};

/// Aggregated clock-domain activity, the input to the power model.
struct ClockActivity {
  Time awake{Time::zero()};           ///< ring-oscillator running time
  std::uint64_t sampling_cycles{0};   ///< edges of the divided global clock
  std::uint64_t wakeups{0};           ///< restarts from full shutdown
  std::uint64_t captures{0};          ///< events timed (schedule resets)

  /// Ring / reference cycle counts implied by the awake time.
  [[nodiscard]] std::uint64_t ring_cycles(Frequency ring) const {
    return static_cast<std::uint64_t>(awake.to_sec() * ring.to_hz());
  }
};

/// DES embodiment of the clock generator + sampling FSM.
class ClockGenerator {
 public:
  /// Capture completion callback: absolute sampling-edge time, the latched
  /// timestamp-counter value (Tmin ticks since previous event), and whether
  /// the value is the saturation marker.
  using CaptureFn =
      std::function<void(Time edge, std::uint64_t ticks, bool saturated)>;

  ClockGenerator(sim::Scheduler& sched, ClockGeneratorConfig config = {});

  /// Base (undivided) sampling period Tmin.
  [[nodiscard]] Time tmin() const { return schedule_.config().tmin; }
  [[nodiscard]] const ClockGeneratorConfig& config() const { return cfg_; }
  [[nodiscard]] const SamplingSchedule& schedule() const { return schedule_; }

  /// Runtime reconfiguration (SPI-accessible registers, §4.1). Takes effect
  /// from the current schedule origin onwards.
  void set_theta_div(std::uint32_t theta_div);
  void set_n_div(std::uint32_t n_div);
  void set_divide_enabled(bool enabled);
  void set_shutdown_enabled(bool enabled);

  /// Called by the AER front-end at the instant REQ rises. The generator
  /// wakes the ring if paused, lets the request cross `sync_edges` sampling
  /// edges (the 2-FF synchronizer), then invokes `done` at the edge where
  /// the FSM samples the event; the schedule resets to Tmin at that edge.
  /// Only one capture may be in flight (guaranteed by the AER handshake).
  void capture_request(std::uint32_t sync_edges, CaptureFn done);

  /// Analytic capture for the fast path: identical measurement, fault
  /// lotteries, accounting and telemetry as capture_request followed by its
  /// scheduled sample-edge callback, but computed immediately from the
  /// request's absolute time instead of materialising the edge as a DES
  /// event. `req_abs` is the instant REQ rises; it may lie ahead of
  /// sched_.now() — the caller owns the timeline and guarantees nothing
  /// else touches this block in between.
  struct CaptureResult {
    Time edge;            ///< absolute sampling-edge time
    std::uint64_t ticks;  ///< latched timestamp-counter value
    bool saturated;       ///< counter hit the saturation marker
  };
  CaptureResult capture_now(std::uint32_t sync_edges, Time req_abs);

  /// True when the sampling clock is currently shut down.
  [[nodiscard]] bool asleep() const;

  /// Division level currently active (0 = Tmin).
  [[nodiscard]] std::uint32_t level() const;

  /// Current sampling period of the global clock.
  [[nodiscard]] Time current_period() const;

  /// Activity totals settled up to the current simulation time.
  [[nodiscard]] ClockActivity activity() const;

  /// Period-jitter / wake-latency-variation lotteries. Null is inert.
  void attach_faults(fault::FaultInjector* faults) { faults_ = faults; }

  /// Serialize runtime config + settled accumulators. Requires no capture
  /// in flight (the schedule between captures is a pure function of config
  /// and origin, so nothing else needs saving).
  void save_state(BlobWriter& w) const;
  void restore_state(BlobReader& r);

 private:
  void rebuild_schedule();
  /// Wake latency for this capture, including the restart-jitter lottery.
  [[nodiscard]] Time wake_latency_for(bool was_asleep);
  /// Close the books on the interval ending at the sample edge: activity
  /// accounting, capture count, retroactive tracing, origin reset and the
  /// period-jitter lottery. Returns the (possibly jittered) latched ticks.
  std::uint64_t settle_capture(const SamplingSchedule::Measurement& m,
                               Time delta, bool was_asleep, Time wake,
                               Time sample_abs);
  [[nodiscard]] Time elapsed() const { return sched_.now() - origin_; }
  /// Materialise the FSM trace of a just-closed inter-capture interval:
  /// between captures the division level is a pure function of elapsed
  /// time, so the transitions (and the pause/wake pair, if the clock shut
  /// down) are emitted retroactively when the sample edge closes the books.
  void trace_closed_interval(Time old_origin, Time end_rel, bool was_asleep,
                             Time request_rel);

  sim::Scheduler& sched_;
  ClockGeneratorConfig cfg_;
  SamplingSchedule schedule_;
  fault::FaultInjector* faults_{nullptr};
  Time origin_{Time::zero()};  ///< absolute time of the last schedule reset
  bool capture_pending_{false};

  // Settled accumulators (exclude the open interval since origin_).
  Time awake_accum_{Time::zero()};
  std::uint64_t sampling_cycles_accum_{0};
  std::uint64_t wakeups_{0};
  std::uint64_t captures_{0};
  // Last: keeps the capture-path members on their seed cache lines.
  telemetry::BlockTelemetry tel_;
};

}  // namespace aetr::clockgen
