// Behavioural model of the pausable ring oscillator (paper Fig. 5).
//
// The hardware is an odd chain of minimum-delay inverters closed through a
// NOR gate; asserting SLEEP (converted to a pulse so the frozen registers
// can still stop their own clock) breaks the loop glitch-free during the low
// phase, and a request edge restarts the ring with ~100 ns latency.
//
// This model produces real DES edges, supports per-cycle Gaussian jitter,
// and accounts awake time exactly — it is used by cycle-level unit tests,
// the Fig. 2 waveform dump, and the wake-latency reproduction; the
// production ClockGenerator tracks the same quantities analytically.
#pragma once

#include <cstdint>

#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace aetr::clockgen {

/// Construction parameters for the ring.
struct RingOscillatorConfig {
  unsigned stages = 9;                 ///< odd number of inverting stages
  Time stage_delay = Time::ps(463);    ///< per-inverter delay (9 st -> 120 MHz)
  Time wake_latency = Time::ns(100);   ///< restart time from SLEEP (paper §5.2)
  double jitter_stddev = 0.0;          ///< cycle jitter as fraction of period
  std::uint64_t jitter_seed = 1;
};

/// A pausable ring oscillator publishing rising edges on a ClockLine.
class RingOscillator {
 public:
  RingOscillator(sim::Scheduler& sched, RingOscillatorConfig config = {});

  /// Nominal period: 2 * stages * stage_delay.
  [[nodiscard]] Time nominal_period() const { return nominal_period_; }
  [[nodiscard]] Frequency nominal_frequency() const {
    return Frequency::from_period(nominal_period_);
  }

  /// Begin oscillating now (first edge after one period).
  void start();

  /// Assert SLEEP: the current cycle completes, then the ring freezes.
  void sleep();

  /// Release SLEEP (request edge at the NOR input); the ring restarts and
  /// produces its first edge wake_latency later. No-op when running.
  void wake();

  /// Analytic idle-skip: publish every edge up to and including `t` in
  /// closed form (one ClockLine::advance call), then reschedule the single
  /// pending DES edge past `t`. Bit-identical to letting the scheduler
  /// dispatch each edge. Requires a deterministic ring (throws
  /// std::logic_error when cycle jitter is enabled — skipping would change
  /// the per-cycle RNG sequence) and that no line subscriber pauses the
  /// ring mid-run (throws if one requested SLEEP during the advance).
  void advance_to(Time t);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] sim::ClockLine& line() { return line_; }

  /// Total time the ring has spent oscillating (settled up to now()).
  [[nodiscard]] Time awake_time() const;

  /// Edges produced so far.
  [[nodiscard]] std::uint64_t cycles() const { return line_.edge_count(); }

  /// Times the ring has been restarted from SLEEP.
  [[nodiscard]] std::uint64_t wakeups() const { return wakeups_; }

 private:
  void edge();
  Time jittered_period();

  sim::Scheduler& sched_;
  RingOscillatorConfig cfg_;
  Time nominal_period_;
  sim::ClockLine line_;
  sim::EventId pending_{};
  Time next_edge_{Time::max()};
  bool running_{false};
  bool sleep_requested_{false};
  Time awake_accum_{Time::zero()};
  Time run_start_{Time::zero()};
  std::uint64_t wakeups_{0};
  Xoshiro256StarStar jitter_rng_;
};

}  // namespace aetr::clockgen
