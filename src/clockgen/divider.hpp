// Binary frequency-divider cascade (paper §4.1: the 120 MHz ring output is
// divided down to the 30 MHz reference before feeding the sampling FSM).
#pragma once

#include <cstdint>

#include "sim/clock.hpp"
#include "util/time.hpp"

namespace aetr::clockgen {

/// Divide-by-2^stages ripple divider: publishes one rising edge on its
/// output line for every 2^stages rising edges on the input line.
class DividerCascade {
 public:
  DividerCascade(sim::ClockLine& input, unsigned stages);

  [[nodiscard]] sim::ClockLine& line() { return out_; }
  [[nodiscard]] unsigned stages() const { return stages_; }
  [[nodiscard]] std::uint64_t divide_ratio() const {
    return std::uint64_t{1} << stages_;
  }

  /// Input edges consumed (toggle activity of the cascade flip-flops is
  /// 2 - 2^(1-stages) toggles per input edge; the power model uses this).
  [[nodiscard]] std::uint64_t input_edges() const { return input_edges_; }

  /// Flip-flop toggles across the whole cascade so far.
  [[nodiscard]] std::uint64_t ff_toggles() const { return ff_toggles_; }

  /// Clear the count chain (SLEEP resets the cascade so the first divided
  /// edge after a wake comes a full divided period after the restart).
  void reset() { count_ = 0; }

 private:
  unsigned stages_;
  sim::ClockLine out_;
  std::uint64_t count_{0};
  std::uint64_t input_edges_{0};
  std::uint64_t ff_toggles_{0};
};

}  // namespace aetr::clockgen
