// Pausible clocking port (GALS related work, paper §2 refs [28][29]).
//
// The paper's pausable ring oscillator descends from Yun & Donohue's
// "pausible clocking": an asynchronous port may pause the local clock in
// its safe (low) phase to transfer data across the asynchronous boundary
// without metastability, stretching the clock instead of synchronising the
// data. This module provides that classic mechanism as a standalone block:
//
//  * requests arriving in the low phase are granted immediately;
//  * requests arriving in the high phase wait for the next falling edge
//    (a request landing within the mutex-resolution window of the edge pays
//    a small metastability-resolution penalty first — the mutex element);
//  * while any grant is held, the next rising edge is postponed, so the
//    synchronous side observes a stretched cycle, never a short pulse.
//
// It also documents, executably, why the paper's SLEEP pulse "must be
// longer than a clock semiperiod and arrive during the low clock phase".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace aetr::clockgen {

/// Behavioural parameters of the pausible clock.
struct PausibleClockConfig {
  Time period = Time::ns(33.0);       ///< nominal clock period (50 % duty)
  Time hold = Time::ns(10.0);         ///< safe window held per grant
  Time mutex_window = Time::ps(200);  ///< contention window around edges
  Time mutex_resolution = Time::ns(1.0);  ///< worst extra delay on contention
  std::uint64_t seed = 3;
};

/// A free-running clock whose rising edges can be postponed by
/// asynchronous port grants.
class PausibleClock {
 public:
  /// Grant callback: runs at the grant instant, inside the safe window.
  using GrantFn = std::function<void(Time)>;

  PausibleClock(sim::Scheduler& sched, PausibleClockConfig config = {});

  /// Start free-running (first rising edge one period from now).
  void start();

  /// Stop permanently (pending grants still complete).
  void stop();

  /// Asynchronous port request. `done` runs when the mutex grants the
  /// port; the clock cannot produce a rising edge until `hold` later.
  void request(GrantFn done);

  /// Analytic idle-skip: publish every free-running rising edge up to and
  /// including `t` in one ClockLine::advance call, then reschedule the
  /// pending DES edge past `t`. Bit-identical to step-ticking. Only legal
  /// while the port is quiet — throws std::logic_error when a grant is in
  /// flight or queued (a held grant postpones edges, which is exactly the
  /// state the closed form cannot skip).
  void advance_to(Time t);

  [[nodiscard]] sim::ClockLine& line() { return line_; }
  [[nodiscard]] bool running() const { return running_; }

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  [[nodiscard]] std::uint64_t contentions() const { return contentions_; }
  /// Total time by which rising edges have been postponed.
  [[nodiscard]] Time total_stretch() const { return total_stretch_; }

 private:
  void rising_edge();
  void try_grant();
  [[nodiscard]] bool in_low_phase(Time t) const;

  sim::Scheduler& sched_;
  PausibleClockConfig cfg_;
  sim::ClockLine line_;
  bool running_{false};
  Time last_rising_{Time::zero()};
  Time next_rising_{Time::zero()};
  sim::EventId pending_edge_{};
  std::deque<GrantFn> waiting_;
  bool grant_active_{false};
  Xoshiro256StarStar rng_;
  std::uint64_t grants_{0};
  std::uint64_t contentions_{0};
  Time total_stretch_{Time::zero()};
};

}  // namespace aetr::clockgen
