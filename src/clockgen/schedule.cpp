#include "clockgen/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace aetr::clockgen {
namespace {

/// Ceiling division for positive picosecond counts.
Time::Rep ceil_div(Time::Rep a, Time::Rep b) { return (a + b - 1) / b; }

}  // namespace

SamplingSchedule::SamplingSchedule(const ScheduleConfig& config)
    : cfg_{config} {
  if (cfg_.tmin <= Time::zero()) {
    throw std::invalid_argument("SamplingSchedule: tmin must be positive");
  }
  if (cfg_.theta_div == 0) {
    throw std::invalid_argument("SamplingSchedule: theta_div must be > 0");
  }
  if (cfg_.n_div > 30) {
    throw std::invalid_argument("SamplingSchedule: n_div too large (max 30)");
  }
  top_level_ = cfg_.divide_enabled ? cfg_.n_div : 0;
  // S_k = theta_div * Tmin * (2^k - 1); one extra entry marks the end of the
  // top level (the shutdown instant, or "never").
  level_starts_.reserve(top_level_ + 2);
  for (std::uint32_t k = 0; k <= top_level_; ++k) {
    const auto scale = static_cast<Time::Rep>((std::uint64_t{1} << k) - 1);
    level_starts_.push_back(cfg_.tmin * static_cast<Time::Rep>(cfg_.theta_div) *
                            scale);
  }
  const bool sleeps = cfg_.divide_enabled && cfg_.shutdown_enabled;
  if (sleeps) {
    const auto scale =
        static_cast<Time::Rep>((std::uint64_t{1} << (top_level_ + 1)) - 1);
    level_starts_.push_back(cfg_.tmin * static_cast<Time::Rep>(cfg_.theta_div) *
                            scale);
  } else {
    level_starts_.push_back(Time::max());
  }
}

Time SamplingSchedule::period_of_level(std::uint32_t k) const {
  assert(k <= top_level_);
  return cfg_.tmin * static_cast<Time::Rep>(std::uint64_t{1} << k);
}

Time SamplingSchedule::level_start(std::uint32_t k) const {
  assert(k <= top_level_ + 1);
  return level_starts_[k];
}

Time SamplingSchedule::awake_span() const {
  return level_starts_[top_level_ + 1];
}

std::uint64_t SamplingSchedule::saturation_ticks() const {
  if (awake_span() == Time::max()) {
    return ~std::uint64_t{0};  // clock never stops; counter never freezes
  }
  return static_cast<std::uint64_t>(awake_span() / cfg_.tmin);
}

std::uint32_t SamplingSchedule::level_at(Time elapsed) const {
  std::uint32_t k = top_level_;
  while (k > 0 && elapsed < level_starts_[k]) --k;
  return k;
}

bool SamplingSchedule::is_asleep_at(Time elapsed) const {
  return elapsed >= awake_span();
}

Time SamplingSchedule::first_edge_at_or_after(Time elapsed) const {
  if (elapsed <= Time::zero()) return Time::zero();
  if (is_asleep_at(elapsed)) return Time::max();
  const std::uint32_t k = level_at(elapsed);
  const Time s = level_starts_[k];
  const Time p = period_of_level(k);
  const Time edge =
      s + p * ceil_div((elapsed - s).count_ps(), p.count_ps());
  // The edge may fall exactly on (or, for the top level with shutdown, past)
  // the level boundary; the boundary instant is the next level's first edge,
  // or the shutdown instant at the top.
  if (edge >= level_starts_[k + 1]) {
    return k < top_level_ ? level_starts_[k + 1] : Time::max();
  }
  return edge;
}

std::uint64_t SamplingSchedule::counter_at_edge(Time edge) const {
  const std::uint64_t sat = saturation_ticks();
  if (edge >= awake_span()) return sat;
  const std::uint32_t k = level_at(edge);
  const Time s = level_starts_[k];
  const Time p = period_of_level(k);
  const auto i = static_cast<std::uint64_t>((edge - s) / p);
  const std::uint64_t base =
      static_cast<std::uint64_t>(cfg_.theta_div) *
      ((std::uint64_t{1} << k) - 1);
  return std::min(base + i * (std::uint64_t{1} << k), sat);
}

std::uint64_t SamplingSchedule::cycles_until(Time elapsed) const {
  if (elapsed <= Time::zero()) return 0;
  if (is_asleep_at(elapsed)) {
    // Every level contributed theta_div edges except that the would-be edge
    // at the shutdown instant never happens.
    return static_cast<std::uint64_t>(cfg_.theta_div) * (top_level_ + 1) - 1;
  }
  const std::uint32_t k = level_at(elapsed);
  const Time s = level_starts_[k];
  const Time p = period_of_level(k);
  return static_cast<std::uint64_t>(cfg_.theta_div) * k +
         static_cast<std::uint64_t>((elapsed - s) / p);
}

SamplingSchedule::Measurement SamplingSchedule::measure(
    Time delta, std::uint32_t sync_edges, Time wake_latency) const {
  Measurement m;
  if (is_asleep_at(delta)) {
    // The request restarts the paused oscillator; the first edge closes one
    // Tmin after the wake latency, the synchroniser consumes sync_edges
    // more, and the event is tagged saturated since the counter froze when
    // the clock stopped.
    m.sample_edge = delta + wake_latency +
                    cfg_.tmin * static_cast<Time::Rep>(sync_edges + 1);
    m.ticks = saturation_ticks();
    m.saturated = true;
    return m;
  }
  // Hot path (one call per captured spike): find the first edge once, then
  // step edge-to-edge carrying the level along, instead of re-deriving the
  // level from scratch per synchroniser edge the way chained
  // first_edge_at_or_after calls would. Identical boundary rules: an edge
  // landing on (or past) a level boundary becomes the boundary instant —
  // the next level's first edge — and stepping off the top level means
  // shutdown would interrupt the synchroniser.
  std::uint32_t k;
  Time edge;
  if (delta <= Time::zero()) {
    edge = Time::zero();
    k = 0;
  } else {
    k = level_at(delta);
    const Time s = level_starts_[k];
    const Time p = period_of_level(k);
    edge = s + p * ceil_div((delta - s).count_ps(), p.count_ps());
    if (edge >= level_starts_[k + 1]) {
      if (k < top_level_) {
        edge = level_starts_[k + 1];
        ++k;
      } else {
        // Request landed inside the final sampling period before shutdown;
        // the pending request keeps the clock alive at the slowest period.
        m.sample_edge = awake_span() + period_of_level(top_level_) *
                                           static_cast<Time::Rep>(sync_edges);
        m.ticks = saturation_ticks();
        m.saturated = true;
        return m;
      }
    }
  }
  for (std::uint32_t i = 0; i < sync_edges; ++i) {
    Time next = edge + period_of_level(k);
    if (next >= level_starts_[k + 1]) {
      if (k < top_level_) {
        next = level_starts_[k + 1];
        ++k;
      } else {
        // Shutdown would occur while the request is being synchronised; the
        // FSM checks request() before shutting down, so the clock keeps
        // ticking at the slowest period until the sample completes.
        edge = awake_span() +
               period_of_level(top_level_) *
                   static_cast<Time::Rep>(sync_edges - i - 1);
        m.ticks = saturation_ticks();
        m.sample_edge = edge;
        m.saturated = true;
        return m;
      }
    }
    edge = next;
  }
  m.sample_edge = edge;
  // counter_at_edge with the level already in hand (edge ∈ [S_k, S_k+1)).
  const std::uint64_t sat = saturation_ticks();
  const std::uint64_t base =
      static_cast<std::uint64_t>(cfg_.theta_div) * ((std::uint64_t{1} << k) - 1);
  const auto idx = static_cast<std::uint64_t>(
      (edge - level_starts_[k]) / period_of_level(k));
  m.ticks = std::min(base + idx * (std::uint64_t{1} << k), sat);
  m.saturated = m.ticks >= sat;
  return m;
}

std::vector<SamplingSchedule::Edge> SamplingSchedule::enumerate_edges(
    Time until, std::size_t max_edges) const {
  std::vector<Edge> edges;
  Time t = Time::zero();
  while (edges.size() < max_edges) {
    const Time e = first_edge_at_or_after(t);
    if (e == Time::max() || e > until) break;
    edges.push_back(Edge{e, level_at(e)});
    t = e + Time::ps(1);
  }
  return edges;
}

}  // namespace aetr::clockgen
