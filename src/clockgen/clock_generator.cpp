#include "clockgen/clock_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/blob.hpp"
#include "util/profiler.hpp"

namespace aetr::clockgen {
namespace {

ScheduleConfig to_schedule_config(const ClockGeneratorConfig& cfg) {
  ScheduleConfig sc;
  const auto divide_ratio = static_cast<Time::Rep>(
      std::uint64_t{1} << (cfg.ref_divider_stages + cfg.sampling_divider_stages));
  sc.tmin = cfg.ring_frequency.period() * divide_ratio;
  sc.theta_div = cfg.theta_div;
  sc.n_div = cfg.n_div;
  sc.divide_enabled = cfg.divide_enabled;
  sc.shutdown_enabled = cfg.shutdown_enabled;
  return sc;
}

}  // namespace

ClockGenerator::ClockGenerator(sim::Scheduler& sched,
                               ClockGeneratorConfig config)
    : sched_{sched},
      cfg_{config},
      schedule_{to_schedule_config(config)},
      tel_{sched.telemetry(), "clockgen"},
      origin_{sched.now()} {
  if (auto* m = tel_.metrics()) {
    m->probe("clockgen.captures", [this] {
      return static_cast<double>(captures_);
    });
    m->probe("clockgen.wakeups", [this] {
      return static_cast<double>(wakeups_);
    });
    m->probe("clockgen.level", [this] {
      return asleep() ? -1.0 : static_cast<double>(level());
    });
    m->probe("clockgen.awake_s", [this] { return activity().awake.to_sec(); });
    m->probe("clockgen.sampling_cycles", [this] {
      return static_cast<double>(activity().sampling_cycles);
    });
  }
  tel_.counter("level", origin_, 0.0);
}

void ClockGenerator::rebuild_schedule() {
  // Settle the open interval under the old schedule, then restart the
  // schedule from "now" with the new parameters (the hardware loads the SPI
  // registers into the FSM, which re-enters its reset state).
  const Time e = elapsed();
  awake_accum_ += std::min(e, schedule_.awake_span());
  sampling_cycles_accum_ += schedule_.cycles_until(e);
  origin_ = sched_.now();
  schedule_ = SamplingSchedule{to_schedule_config(cfg_)};
  tel_.instant("reconfig", origin_,
               {{"theta_div", static_cast<double>(cfg_.theta_div)},
                {"n_div", static_cast<double>(cfg_.n_div)}});
  tel_.counter("level", origin_, 0.0);
}

void ClockGenerator::set_theta_div(std::uint32_t theta_div) {
  cfg_.theta_div = theta_div;
  rebuild_schedule();
}

void ClockGenerator::set_n_div(std::uint32_t n_div) {
  cfg_.n_div = n_div;
  rebuild_schedule();
}

void ClockGenerator::set_divide_enabled(bool enabled) {
  cfg_.divide_enabled = enabled;
  rebuild_schedule();
}

void ClockGenerator::set_shutdown_enabled(bool enabled) {
  cfg_.shutdown_enabled = enabled;
  rebuild_schedule();
}

Time ClockGenerator::wake_latency_for(bool was_asleep) {
  // Restart-latency variation: a jittered wakeup stretches the wake
  // latency of this capture only (the draw happens before measure() so
  // the sample edge itself shifts, exactly like real restart slew).
  Time wake = cfg_.wake_latency;
  if (faults_ != nullptr && was_asleep) {
    const double sig = faults_->plan().clock.wake_jitter_rel;
    if (sig > 0.0) {
      const double stretch =
          std::abs(faults_->rng(fault::Site::kClock).normal(0.0, sig));
      wake = Time::ns(wake.to_ns() * (1.0 + stretch));
      ++faults_->counters().wake_jitter_events;
    }
  }
  return wake;
}

std::uint64_t ClockGenerator::settle_capture(
    const SamplingSchedule::Measurement& m, Time delta, bool was_asleep,
    Time wake, Time sample_abs) {
  // Close the books on the interval [origin_, sample edge].
  if (was_asleep) {
    // Ring ran for the full schedule, paused, and restarted at the
    // request; it has been running again since the request instant.
    awake_accum_ += schedule_.awake_span() + (m.sample_edge - delta);
    sampling_cycles_accum_ +=
        schedule_.cycles_until(schedule_.awake_span()) +
        static_cast<std::uint64_t>((m.sample_edge - delta - wake) / tmin()) +
        1;
    ++wakeups_;
  } else {
    awake_accum_ += std::min(m.sample_edge, schedule_.awake_span());
    sampling_cycles_accum_ += schedule_.cycles_until(m.sample_edge);
  }
  ++captures_;
  if (tel_.tracing()) {
    trace_closed_interval(sample_abs - m.sample_edge, m.sample_edge,
                          was_asleep, delta);
  }
  origin_ = sample_abs;  // the sample edge is the new counter origin
  // Period jitter accumulates in the timestamp counter: the latched
  // tick count gains a zero-mean error with sigma growing as
  // sqrt(ticks) (independent per-cycle jitter).
  std::uint64_t ticks = m.ticks;
  if (faults_ != nullptr && !m.saturated) {
    const double sig = faults_->plan().clock.period_jitter_rel;
    if (sig > 0.0) {
      const double err =
          faults_->rng(fault::Site::kClock)
              .normal(0.0, sig * std::sqrt(static_cast<double>(m.ticks) + 1.0));
      const auto jit = static_cast<std::int64_t>(std::llround(err));
      if (jit != 0) ++faults_->counters().tick_jitter_events;
      ticks = static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, static_cast<std::int64_t>(m.ticks) + jit));
    }
  }
  return ticks;
}

void ClockGenerator::capture_request(std::uint32_t sync_edges, CaptureFn done) {
  if (capture_pending_) {
    throw std::logic_error(
        "ClockGenerator: capture while another request is in flight "
        "(AER 4-phase handshake should serialise requests)");
  }
  capture_pending_ = true;
  const Time delta = elapsed();
  const bool was_asleep = schedule_.is_asleep_at(delta);
  const Time wake = wake_latency_for(was_asleep);
  const auto m = [&] {
    util::ProfScope prof{util::ProfSite::kScheduleMeasure};
    return schedule_.measure(delta, sync_edges, wake);
  }();
  const Time sample_abs = origin_ + m.sample_edge;

  sched_.schedule_at(
      sample_abs, [this, m, delta, was_asleep, wake, done = std::move(done)] {
        const std::uint64_t ticks =
            settle_capture(m, delta, was_asleep, wake, sched_.now());
        capture_pending_ = false;
        done(sched_.now(), ticks, m.saturated);
      });
}

ClockGenerator::CaptureResult ClockGenerator::capture_now(
    std::uint32_t sync_edges, Time req_abs) {
  if (capture_pending_) {
    throw std::logic_error(
        "ClockGenerator: capture while another request is in flight "
        "(AER 4-phase handshake should serialise requests)");
  }
  const Time delta = req_abs - origin_;
  const bool was_asleep = schedule_.is_asleep_at(delta);
  const Time wake = wake_latency_for(was_asleep);
  const auto m = [&] {
    util::ProfScope prof{util::ProfSite::kScheduleMeasure};
    return schedule_.measure(delta, sync_edges, wake);
  }();
  const Time sample_abs = origin_ + m.sample_edge;
  const std::uint64_t ticks =
      settle_capture(m, delta, was_asleep, wake, sample_abs);
  return {sample_abs, ticks, m.saturated};
}

void ClockGenerator::trace_closed_interval(Time old_origin, Time end_rel,
                                           bool was_asleep, Time request_rel) {
  const ScheduleConfig& sc = schedule_.config();
  if (sc.divide_enabled) {
    for (std::uint32_t k = 1; k <= sc.n_div; ++k) {
      const Time s = schedule_.level_start(k);
      if (s > end_rel) break;
      tel_.counter("level", old_origin + s, static_cast<double>(k));
    }
  }
  if (was_asleep) {
    // The schedule ran dry, the ring paused, and the request restarted it.
    const Time span = schedule_.awake_span();
    if (span < end_rel) tel_.instant("pause", old_origin + span);
    tel_.instant("wake", old_origin + request_rel,
                 {{"latency_ns", cfg_.wake_latency.to_ns()}});
  }
  // The sample edge resets the schedule: back to full speed.
  tel_.counter("level", old_origin + end_rel, 0.0);
}

bool ClockGenerator::asleep() const {
  return schedule_.is_asleep_at(elapsed());
}

std::uint32_t ClockGenerator::level() const {
  return schedule_.level_at(elapsed());
}

Time ClockGenerator::current_period() const {
  return schedule_.period_of_level(level());
}

ClockActivity ClockGenerator::activity() const {
  ClockActivity a;
  const Time e = elapsed();
  a.awake = awake_accum_ + std::min(e, schedule_.awake_span());
  a.sampling_cycles = sampling_cycles_accum_ + schedule_.cycles_until(e);
  a.wakeups = wakeups_;
  a.captures = captures_;
  return a;
}

void ClockGenerator::save_state(BlobWriter& w) const {
  if (capture_pending_) {
    throw std::logic_error("ClockGenerator: save_state with capture pending");
  }
  w.u32(cfg_.theta_div);
  w.u32(cfg_.n_div);
  w.b(cfg_.divide_enabled);
  w.b(cfg_.shutdown_enabled);
  w.time(origin_);
  w.time(awake_accum_);
  w.u64(sampling_cycles_accum_);
  w.u64(wakeups_);
  w.u64(captures_);
}

void ClockGenerator::restore_state(BlobReader& r) {
  cfg_.theta_div = r.u32();
  cfg_.n_div = r.u32();
  cfg_.divide_enabled = r.b();
  cfg_.shutdown_enabled = r.b();
  // Rebuild the schedule directly from the restored config — unlike
  // rebuild_schedule(), no settling or telemetry: the saved accumulators
  // already contain everything up to the saved origin.
  schedule_ = SamplingSchedule{to_schedule_config(cfg_)};
  origin_ = r.time();
  awake_accum_ = r.time();
  sampling_cycles_accum_ = r.u64();
  wakeups_ = r.u64();
  captures_ = r.u64();
  capture_pending_ = false;
}

}  // namespace aetr::clockgen
