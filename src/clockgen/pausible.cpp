#include "clockgen/pausible.hpp"

#include <stdexcept>
#include <utility>

namespace aetr::clockgen {

PausibleClock::PausibleClock(sim::Scheduler& sched, PausibleClockConfig config)
    : sched_{sched}, cfg_{config}, rng_{config.seed} {}

void PausibleClock::start() {
  if (running_) return;
  running_ = true;
  last_rising_ = sched_.now() - cfg_.period;  // "just finished" a cycle
  next_rising_ = sched_.now() + cfg_.period;
  pending_edge_ = sched_.schedule_at(next_rising_, [this] { rising_edge(); });
}

void PausibleClock::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(pending_edge_);
  pending_edge_ = sim::EventId{};
}

bool PausibleClock::in_low_phase(Time t) const {
  return t >= last_rising_ + cfg_.period / 2;
}

void PausibleClock::rising_edge() {
  last_rising_ = sched_.now();
  line_.tick(sched_.now(), cfg_.period);
  if (!running_) return;
  next_rising_ = sched_.now() + cfg_.period;
  pending_edge_ = sched_.schedule_at(next_rising_, [this] { rising_edge(); });
}

void PausibleClock::advance_to(Time t) {
  if (grant_active_ || !waiting_.empty()) {
    throw std::logic_error(
        "PausibleClock::advance_to: port busy; edges may be postponed");
  }
  if (!running_ || next_rising_ > t) return;
  const auto n =
      static_cast<std::uint64_t>((t - next_rising_) / cfg_.period) + 1;
  const Time last = next_rising_ + cfg_.period * static_cast<Time::Rep>(n - 1);
  sched_.cancel(pending_edge_);
  line_.advance(n, last, cfg_.period);
  last_rising_ = last;
  next_rising_ = last + cfg_.period;
  pending_edge_ = sched_.schedule_at(next_rising_, [this] { rising_edge(); });
}

void PausibleClock::request(GrantFn done) {
  waiting_.push_back(std::move(done));
  try_grant();
}

void PausibleClock::try_grant() {
  if (grant_active_ || waiting_.empty()) return;
  const Time now = sched_.now();

  if (running_ && !in_low_phase(now)) {
    // High phase: the mutex sides with the clock; retry at the falling edge.
    const Time falling = last_rising_ + cfg_.period / 2;
    sched_.schedule_at(falling, [this] { try_grant(); });
    return;
  }

  // Low phase (or clock stopped): the port wins. If the request races the
  // upcoming rising edge within the contention window, the mutex needs a
  // metastability-resolution delay before deciding.
  Time grant_at = now;
  if (running_ && next_rising_ - now < cfg_.mutex_window) {
    ++contentions_;
    grant_at = now + Time::sec(rng_.uniform() *
                               cfg_.mutex_resolution.to_sec());
  }

  grant_active_ = true;
  sched_.schedule_at(grant_at, [this] {
    const Time g = sched_.now();
    ++grants_;
    // Hold the clock: no rising edge until the transfer window closes.
    const Time earliest_edge = g + cfg_.hold;
    if (running_ && next_rising_ < earliest_edge) {
      total_stretch_ += earliest_edge - next_rising_;
      sched_.cancel(pending_edge_);
      next_rising_ = earliest_edge;
      pending_edge_ =
          sched_.schedule_at(next_rising_, [this] { rising_edge(); });
    }
    GrantFn done = std::move(waiting_.front());
    waiting_.pop_front();
    if (done) done(g);
    sched_.schedule_at(g + cfg_.hold, [this] {
      grant_active_ = false;
      try_grant();
    });
  });
}

}  // namespace aetr::clockgen
