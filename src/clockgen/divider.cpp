#include "clockgen/divider.hpp"

#include <stdexcept>

namespace aetr::clockgen {

DividerCascade::DividerCascade(sim::ClockLine& input, unsigned stages)
    : stages_{stages} {
  if (stages == 0 || stages > 16) {
    throw std::invalid_argument("DividerCascade: stages must be in [1,16]");
  }
  input.on_rising([this](Time t, Time period) {
    ++input_edges_;
    const std::uint64_t before = count_;
    count_ = (count_ + 1) & (divide_ratio() - 1);
    // A ripple counter's stage i toggles when all lower bits roll over;
    // total toggles per increment = trailing ones of the previous value + 1.
    std::uint64_t v = before;
    std::uint64_t toggles = 1;
    while ((v & 1u) != 0 && toggles < stages_) {
      ++toggles;
      v >>= 1;
    }
    ff_toggles_ += toggles;
    if (count_ == 0) {
      out_.tick(t, period * static_cast<Time::Rep>(divide_ratio()));
    }
  });
}

}  // namespace aetr::clockgen
