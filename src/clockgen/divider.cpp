#include "clockgen/divider.hpp"

#include <stdexcept>

namespace aetr::clockgen {

DividerCascade::DividerCascade(sim::ClockLine& input, unsigned stages)
    : stages_{stages} {
  if (stages == 0 || stages > 16) {
    throw std::invalid_argument("DividerCascade: stages must be in [1,16]");
  }
  input.on_rising(
      [this](Time t, Time period) {
        ++input_edges_;
        const std::uint64_t before = count_;
        count_ = (count_ + 1) & (divide_ratio() - 1);
        // A ripple counter's stage i toggles when all lower bits roll over;
        // total toggles per increment = trailing ones of the previous value
        // + 1, capped at the stage count.
        std::uint64_t v = before;
        std::uint64_t toggles = 1;
        while ((v & 1u) != 0 && toggles < stages_) {
          ++toggles;
          v >>= 1;
        }
        ff_toggles_ += toggles;
        if (count_ == 0) {
          out_.tick(t, period * static_cast<Time::Rep>(divide_ratio()));
        }
      },
      [this](std::uint64_t n, Time last, Time period) {
        // Closed form for n increments from count_. Stage i flips on the
        // increment v -> v+1 iff 2^i divides v+1, so its flips over the run
        // count the multiples of 2^i in (count_, count_ + n] — summing that
        // over stages reproduces the per-edge trailing-ones rule exactly.
        const std::uint64_t c = count_;
        const std::uint64_t ratio = divide_ratio();
        input_edges_ += n;
        for (unsigned i = 0; i < stages_; ++i) {
          ff_toggles_ += ((c + n) >> i) - (c >> i);
        }
        count_ = (c + n) & (ratio - 1);
        const std::uint64_t outputs = (c + n) / ratio;
        if (outputs != 0) {
          // The m-th rollover lands on input edge index m*ratio - c - 1
          // (0-based from the first edge of this run).
          const std::uint64_t last_idx = outputs * ratio - c - 1;
          const Time t_last =
              last - period * static_cast<Time::Rep>(n - 1 - last_idx);
          out_.advance(outputs, t_last,
                       period * static_cast<Time::Rep>(ratio));
        }
      });
}

}  // namespace aetr::clockgen
