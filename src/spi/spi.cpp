#include "spi/spi.hpp"

#include <utility>

#include "util/blob.hpp"

namespace aetr::spi {

void ConfigBus::map(Reg reg, ReadFn read, WriteFn write) {
  auto& slot = slots_[static_cast<std::size_t>(reg) & 0x7F];
  slot.read = std::move(read);
  slot.write = std::move(write);
}

std::uint8_t ConfigBus::read(std::uint8_t addr) const {
  const auto& slot = slots_[addr & 0x7F];
  return slot.read ? slot.read() : 0;
}

void ConfigBus::write(std::uint8_t addr, std::uint8_t value) {
  const auto& slot = slots_[addr & 0x7F];
  if (slot.write) {
    slot.write(value);
  } else {
    ++ignored_writes_;
  }
}

void SpiSlave::set_csn(bool csn) {
  if (csn_ && !csn) {
    // Selected: reset the shift machinery for a fresh transaction.
    bit_count_ = 0;
    shift_in_ = 0;
    shift_out_ = 0;
    miso_ = false;
    corrupt_bit_ = -1;
  }
  csn_ = csn;
}

void SpiSlave::sck_rise(bool mosi) {
  if (csn_) return;
  if (faults_ != nullptr) {
    if (bit_count_ == 0) {
      // One lottery per 16-bit frame: pick the bit (if any) that the noisy
      // MOSI sampling path will invert.
      corrupt_bit_ =
          faults_->roll(fault::Site::kSpiWord,
                        faults_->plan().spi.word_bit_flip_prob)
              ? static_cast<int>(faults_->pick_bit(fault::Site::kSpiWord, 16))
              : -1;
    }
    if (corrupt_bit_ == static_cast<int>(bit_count_)) {
      mosi = !mosi;
      ++faults_->counters().spi_corrupted;
    }
  }
  ++bits_clocked_;
  shift_in_ = static_cast<std::uint16_t>((shift_in_ << 1) | (mosi ? 1u : 0u));
  ++bit_count_;
  if (bit_count_ == 8) {
    // Command byte complete: decode R/W + address; preload read data.
    is_write_ = (shift_in_ & 0x80u) != 0;
    addr_ = static_cast<std::uint8_t>(shift_in_ & 0x7Fu);
    if (!is_write_) shift_out_ = bus_.read(addr_);
  } else if (bit_count_ == 16) {
    if (is_write_) bus_.write(addr_, static_cast<std::uint8_t>(shift_in_ & 0xFFu));
    ++transactions_;
    bit_count_ = 0;
    shift_in_ = 0;
  }
}

void SpiSlave::sck_fall() {
  if (csn_) return;
  // During the data phase of a read, shift the register out MSB first.
  if (bit_count_ >= 8 && !is_write_) {
    const unsigned idx = 7 - (bit_count_ - 8);
    miso_ = (shift_out_ >> idx) & 1u;
  } else {
    miso_ = false;
  }
}

void ConfigBus::save_state(BlobWriter& w) const { w.u64(ignored_writes_); }

void ConfigBus::restore_state(BlobReader& r) { ignored_writes_ = r.u64(); }

void SpiSlave::save_state(BlobWriter& w) const {
  w.i64(corrupt_bit_);
  w.b(csn_);
  w.b(miso_);
  w.u32(bit_count_);
  w.u16(shift_in_);
  w.u8(shift_out_);
  w.b(is_write_);
  w.u8(addr_);
  w.u64(transactions_);
  w.u64(bits_clocked_);
}

void SpiSlave::restore_state(BlobReader& r) {
  corrupt_bit_ = static_cast<int>(r.i64());
  csn_ = r.b();
  miso_ = r.b();
  bit_count_ = static_cast<unsigned>(r.u32());
  shift_in_ = r.u16();
  shift_out_ = r.u8();
  is_write_ = r.b();
  addr_ = r.u8();
  transactions_ = r.u64();
  bits_clocked_ = r.u64();
}

SpiMaster::SpiMaster(sim::Scheduler& sched, SpiSlave& slave, Frequency sck)
    : sched_{sched}, slave_{slave}, half_period_{sck.period() / 2} {}

void SpiMaster::write(Reg reg, std::uint8_t value) {
  const auto frame = static_cast<std::uint16_t>(
      0x8000u | (static_cast<std::uint16_t>(reg) << 8) | value);
  queue_.push_back(Txn{frame, nullptr});
  if (!busy_) start_next();
}

void SpiMaster::read(Reg reg, std::function<void(std::uint8_t)> done) {
  const auto frame =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(reg) << 8);
  queue_.push_back(Txn{frame, std::move(done)});
  if (!busy_) start_next();
}

void SpiMaster::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Txn txn = std::move(queue_.front());
  queue_.erase(queue_.begin());
  slave_.set_csn(false);
  clock_bit(std::move(txn), 0, 0);
}

void SpiMaster::clock_bit(Txn txn, unsigned bit, std::uint16_t miso_accum) {
  if (bit == 16) {
    slave_.set_csn(true);
    if (txn.done) txn.done(static_cast<std::uint8_t>(miso_accum & 0xFFu));
    sched_.schedule_after(half_period_, [this] { start_next(); });
    return;
  }
  // Mode 0: master drives MOSI, then raises SCK (slave samples), then
  // lowers it (slave updates MISO); master samples MISO on the rise.
  const bool mosi = (txn.frame >> (15 - bit)) & 1u;
  auto rise = [this, txn = std::move(txn), bit, miso_accum, mosi]() mutable {
    const auto accum = static_cast<std::uint16_t>(
        (miso_accum << 1) | (slave_.miso() ? 1u : 0u));
    slave_.sck_rise(mosi);
    sched_.schedule_after(
        half_period_, [this, txn = std::move(txn), bit, accum]() mutable {
          slave_.sck_fall();
          clock_bit(std::move(txn), bit + 1, accum);
        });
  };
  // The library's largest scheduled capture — keep it within the inline
  // budget so the bit-clocking loop stays allocation-free.
  static_assert(sim::Scheduler::Callback::stores_inline<decltype(rise)>());
  sched_.schedule_after(half_period_, std::move(rise));
}

}  // namespace aetr::spi
