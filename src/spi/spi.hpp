// SPI configuration interface (paper §4: "a configuration bus, accessible by
// the outside through SPI, is used to modify the interface configuration
// registers at runtime").
//
// Wire protocol: SPI mode 0 (CPOL=0, CPHA=0), 16-bit transactions framed by
// CSN: bit 15 = R/W (1 = write), bits 14..8 = register address, bits 7..0 =
// data. On reads the slave shifts the addressed register out on MISO during
// the data phase. The register map itself lives in ConfigBus so the SPI
// front door and the blocks behind it stay decoupled.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aetr {
class BlobWriter;
class BlobReader;
}  // namespace aetr

namespace aetr::spi {

/// Register addresses of the AER-to-I2S interface.
enum class Reg : std::uint8_t {
  kThetaDiv = 0x00,   ///< theta_div (cycles between divisions)
  kNDiv = 0x01,       ///< n_div (divisions before shutdown)
  kBatchLo = 0x02,    ///< batch threshold, low byte
  kBatchHi = 0x03,    ///< batch threshold, high byte
  kCtrl = 0x04,       ///< bit0 divide_en, bit1 shutdown_en, bit2 record_en
  kStatus = 0x05,     ///< RO: bit0 i2s draining, bit1 clock asleep
  kFifoLo = 0x06,     ///< RO: FIFO occupancy, low byte
  kFifoHi = 0x07,     ///< RO: FIFO occupancy, high byte
  kIntStatus = 0x08,  ///< interrupt status; write 1s to clear
  kIntMask = 0x09,    ///< interrupt enable mask
  kFifoData0 = 0x0A,  ///< SPI read-out: pops a word, returns bits [7:0]
  kFifoData1 = 0x0B,  ///< bits [15:8] of the latched word
  kFifoData2 = 0x0C,  ///< bits [23:16]
  kFifoData3 = 0x0D,  ///< bits [31:24]
};

/// Byte-wide register bus: blocks register read/write handlers per address.
class ConfigBus {
 public:
  using ReadFn = std::function<std::uint8_t()>;
  using WriteFn = std::function<void(std::uint8_t)>;

  /// Attach handlers for one address; a null WriteFn makes it read-only.
  void map(Reg reg, ReadFn read, WriteFn write = nullptr);

  /// Bus accesses; unmapped reads return 0, unmapped/RO writes are ignored
  /// and counted.
  [[nodiscard]] std::uint8_t read(std::uint8_t addr) const;
  void write(std::uint8_t addr, std::uint8_t value);

  [[nodiscard]] std::uint64_t ignored_writes() const { return ignored_writes_; }

  /// Serialize the ignored-write counter (the handler map is rebuilt when
  /// the owning interface reconstructs).
  void save_state(BlobWriter& w) const;
  void restore_state(BlobReader& r);

 private:
  struct Slot {
    ReadFn read;
    WriteFn write;
  };
  std::array<Slot, 128> slots_{};
  mutable std::uint64_t ignored_writes_{0};
};

/// Bit-level SPI mode-0 slave decoding 16-bit transactions onto a ConfigBus.
class SpiSlave {
 public:
  explicit SpiSlave(ConfigBus& bus) : bus_{bus} {}

  /// Chip-select (active low). A falling edge resets the shift state.
  void set_csn(bool csn);

  /// SCK rising edge with the current MOSI level (mode 0: slave samples on
  /// the rising edge). Returns nothing; MISO is read via miso().
  void sck_rise(bool mosi);

  /// SCK falling edge (mode 0: slave updates MISO).
  void sck_fall();

  /// Current MISO level.
  [[nodiscard]] bool miso() const { return miso_; }

  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }
  [[nodiscard]] std::uint64_t bits_clocked() const { return bits_clocked_; }

  /// Config-word corruption lottery (one bit of a 16-bit frame flips on the
  /// MOSI sampling path). Null is inert.
  void attach_faults(fault::FaultInjector* faults) { faults_ = faults; }

  /// Serialize mid-transaction shift state + counters.
  void save_state(BlobWriter& w) const;
  void restore_state(BlobReader& r);

 private:
  ConfigBus& bus_;
  fault::FaultInjector* faults_{nullptr};
  int corrupt_bit_{-1};  ///< frame bit to flip this transaction (-1: none)
  bool csn_{true};
  bool miso_{false};
  unsigned bit_count_{0};
  std::uint16_t shift_in_{0};
  std::uint8_t shift_out_{0};
  bool is_write_{false};
  std::uint8_t addr_{0};
  std::uint64_t transactions_{0};
  std::uint64_t bits_clocked_{0};
};

/// DES-driven SPI master used by tests and the configuration examples:
/// clocks 16-bit transactions into a SpiSlave at a given SCK rate.
class SpiMaster {
 public:
  SpiMaster(sim::Scheduler& sched, SpiSlave& slave,
            Frequency sck = Frequency::mhz(1.0));

  /// Queue a write transaction.
  void write(Reg reg, std::uint8_t value);

  /// Queue a read; `done` receives the returned byte.
  void read(Reg reg, std::function<void(std::uint8_t)> done);

  /// True while transactions are still being clocked out.
  [[nodiscard]] bool busy() const { return busy_; }

 private:
  struct Txn {
    std::uint16_t frame;
    std::function<void(std::uint8_t)> done;
  };

  void start_next();
  void clock_bit(Txn txn, unsigned bit, std::uint16_t miso_accum);

  sim::Scheduler& sched_;
  SpiSlave& slave_;
  Time half_period_;
  std::vector<Txn> queue_;
  bool busy_{false};
};

}  // namespace aetr::spi
