// Time-resolved power profiling.
//
// The paper reports averages; a deployment wants the *profile* — how power
// tracks the workload phase by phase. PowerProbe samples an activity
// source on a fixed grid through the scheduler and derives per-window
// average power from consecutive activity snapshots, exactly like a
// sampling power monitor on the FPGA rail would.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "power/model.hpp"
#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aetr::power {

/// One profiled window.
struct PowerSample {
  Time start{Time::zero()};
  Time end{Time::zero()};
  double average_w{0.0};
  std::uint64_t events{0};
};

/// Samples an ActivityTotals source every `window` and converts deltas to
/// average power through the given model.
class PowerProbe {
 public:
  using ActivityFn = std::function<ActivityTotals()>;

  PowerProbe(sim::Scheduler& sched, ActivityFn source, PowerModel model,
             Time window = Time::ms(10.0));

  /// Arm the probe from now until `until` (schedules the sampling grid).
  void arm(Time until);

  /// Analytic idle-skip: emit every sampling window ending at or before `t`
  /// in closed form and reschedule the pending grid event past `t`.
  /// Precondition (the caller's idle-gap guarantee): the activity source
  /// returns the same totals throughout (now, t] — the source is snapshot
  /// once, so the first skipped window absorbs the whole delta and the rest
  /// read zero, exactly what per-window sampling would have recorded.
  void advance_to(Time t);

  [[nodiscard]] const std::vector<PowerSample>& samples() const {
    return samples_;
  }

  /// Peak / floor window power over the profile.
  [[nodiscard]] double peak_w() const;
  [[nodiscard]] double floor_w() const;

  /// Ratio of peak to floor — the profile's dynamic range (the paper's 90x
  /// claim, measured over time instead of across workloads). Returns 0.0
  /// (the documented "no meaningful range" sentinel) when the profile is
  /// empty or the floor window's power is zero or denormal-small: a
  /// near-zero floor would otherwise report an astronomically large,
  /// physically meaningless ratio.
  [[nodiscard]] double dynamic_range() const;

  /// Floor powers at or below this are treated as zero by dynamic_range():
  /// 1 fW is far below anything the calibrated model can produce (static
  /// power alone is tens of µW), so a floor under it means "no activity
  /// model attached", not "very efficient idle".
  static constexpr double kFloorEpsilonW = 1e-15;

  /// Write "start_ms,end_ms,power_mw,events" rows.
  void write_csv(const std::string& path) const;

 private:
  void tick();

  sim::Scheduler& sched_;
  ActivityFn source_;
  PowerModel model_;
  Time window_;
  Time until_{Time::zero()};
  Time next_tick_{Time::max()};
  sim::EventId pending_{};
  ActivityTotals last_{};
  bool primed_{false};
  std::vector<PowerSample> samples_;
};

}  // namespace aetr::power
