#include "power/probe.hpp"

#include <algorithm>
#include <fstream>

namespace aetr::power {

PowerProbe::PowerProbe(sim::Scheduler& sched, ActivityFn source,
                       PowerModel model, Time window)
    : sched_{sched},
      source_{std::move(source)},
      model_{model},
      window_{window} {}

void PowerProbe::arm(Time until) {
  until_ = until;
  last_ = source_();
  primed_ = true;
  next_tick_ = sched_.now() + window_;
  pending_ = sched_.schedule_at(next_tick_, [this] { tick(); });
}

void PowerProbe::tick() {
  const ActivityTotals now = source_();
  const ActivityTotals delta = now.since(last_);
  PowerSample s;
  s.end = sched_.now();
  s.start = s.end - window_;
  s.average_w = model_.average_power_w(delta);
  s.events = delta.events;
  samples_.push_back(s);
  last_ = now;
  if (sched_.now() + window_ <= until_) {
    next_tick_ = sched_.now() + window_;
    pending_ = sched_.schedule_at(next_tick_, [this] { tick(); });
  } else {
    next_tick_ = Time::max();
    pending_ = sim::EventId{};
  }
}

void PowerProbe::advance_to(Time t) {
  if (!primed_ || next_tick_ == Time::max() || next_tick_ > t) return;
  // One snapshot covers the whole span by the caller's idle-gap guarantee.
  const ActivityTotals now = source_();
  sched_.cancel(pending_);
  pending_ = sim::EventId{};
  while (next_tick_ != Time::max() && next_tick_ <= t) {
    const ActivityTotals delta = now.since(last_);
    PowerSample s;
    s.end = next_tick_;
    s.start = s.end - window_;
    s.average_w = model_.average_power_w(delta);
    s.events = delta.events;
    samples_.push_back(s);
    last_ = now;
    next_tick_ = next_tick_ + window_ <= until_ ? next_tick_ + window_
                                                : Time::max();
  }
  if (next_tick_ != Time::max()) {
    pending_ = sched_.schedule_at(next_tick_, [this] { tick(); });
  }
}

double PowerProbe::peak_w() const {
  double p = 0.0;
  for (const auto& s : samples_) p = std::max(p, s.average_w);
  return p;
}

double PowerProbe::floor_w() const {
  if (samples_.empty()) return 0.0;
  double p = samples_.front().average_w;
  for (const auto& s : samples_) p = std::min(p, s.average_w);
  return p;
}

double PowerProbe::dynamic_range() const {
  const double f = floor_w();
  return f > kFloorEpsilonW ? peak_w() / f : 0.0;
}

void PowerProbe::write_csv(const std::string& path) const {
  std::ofstream f{path};
  if (!f) return;
  f << "start_ms,end_ms,power_mw,events\n";
  for (const auto& s : samples_) {
    f << s.start.to_ms() << ',' << s.end.to_ms() << ','
      << s.average_w * 1e3 << ',' << s.events << '\n';
  }
}

}  // namespace aetr::power
