#include "power/model.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

namespace aetr::power {

ActivityTotals ActivityTotals::since(const ActivityTotals& earlier) const {
  ActivityTotals d;
  d.window = window - earlier.window;
  d.osc_awake = osc_awake - earlier.osc_awake;
  d.sampling_cycles = sampling_cycles - earlier.sampling_cycles;
  d.events = events - earlier.events;
  d.fifo_writes = fifo_writes - earlier.fifo_writes;
  d.fifo_reads = fifo_reads - earlier.fifo_reads;
  d.i2s_bits = i2s_bits - earlier.i2s_bits;
  d.spi_bits = spi_bits - earlier.spi_bits;
  d.wakeups = wakeups - earlier.wakeups;
  return d;
}

double PowerModel::energy_j(const ActivityTotals& a) const {
  double e = cal_.static_w * a.window.to_sec();
  e += cal_.osc_domain_w * a.osc_awake.to_sec();
  e += cal_.sampling_cycle_j * static_cast<double>(a.sampling_cycles);
  e += cal_.event_j * static_cast<double>(a.events);
  e += cal_.fifo_access_j * static_cast<double>(a.fifo_writes + a.fifo_reads);
  e += cal_.i2s_bit_j * static_cast<double>(a.i2s_bits);
  e += cal_.spi_bit_j * static_cast<double>(a.spi_bits);
  e += cal_.wakeup_j * static_cast<double>(a.wakeups);
  return e;
}

double PowerModel::average_power_w(const ActivityTotals& a) const {
  const double w = a.window.to_sec();
  if (w <= 0.0) return 0.0;
  return energy_j(a) / w;
}

PowerBreakdown PowerModel::breakdown(const ActivityTotals& a) const {
  PowerBreakdown b;
  const double w = a.window.to_sec();
  if (w <= 0.0) return b;
  b.static_w = cal_.static_w;
  b.osc_domain_w = cal_.osc_domain_w * a.osc_awake.to_sec() / w;
  b.sampling_w = cal_.sampling_cycle_j * static_cast<double>(a.sampling_cycles) / w;
  b.events_w = cal_.event_j * static_cast<double>(a.events) / w;
  b.fifo_w =
      cal_.fifo_access_j * static_cast<double>(a.fifo_writes + a.fifo_reads) / w;
  b.i2s_w = cal_.i2s_bit_j * static_cast<double>(a.i2s_bits) / w;
  b.spi_w = cal_.spi_bit_j * static_cast<double>(a.spi_bits) / w;
  b.wakeup_w = cal_.wakeup_j * static_cast<double>(a.wakeups) / w;
  return b;
}

double estimate_espike_j(double power_w, double static_w, double rate_hz) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument("estimate_espike_j: rate must be positive");
  }
  return std::max(0.0, power_w - static_w) / rate_hz;
}

double energy_proportionality_index(const std::vector<double>& rates_hz,
                                    const std::vector<double>& powers_w,
                                    double static_w) {
  assert(rates_hz.size() == powers_w.size());
  if (rates_hz.empty()) return 0.0;
  // Flat reference: the power at the highest observed rate.
  std::size_t top = 0;
  for (std::size_t i = 1; i < rates_hz.size(); ++i) {
    if (rates_hz[i] > rates_hz[top]) top = i;
  }
  const double p_flat = powers_w[top];
  const double espike = estimate_espike_j(p_flat, static_w, rates_hz[top]);
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < rates_hz.size(); ++i) {
    const double ideal = espike * rates_hz[i] + static_w;
    const double denom = p_flat - ideal;
    if (denom <= 0.0) continue;  // at/above the anchor point
    acc += std::clamp((powers_w[i] - ideal) / denom, 0.0, 1.0);
    ++n;
  }
  return n > 0 ? 1.0 - acc / static_cast<double>(n) : 1.0;
}

}  // namespace aetr::power
