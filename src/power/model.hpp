// Activity-based power model.
//
// The paper measures power on the FPGA board; we cannot, so this model maps
// *counted* simulator activity (oscillator awake time, divided-clock edges,
// events timed, FIFO accesses, I2S bit shifts) to energy through per-unit
// coefficients. The default calibration is anchored to the two absolute
// measurements the paper reports — 4.5 mW at 550 kevt/s with the undivided
// 15 MHz clock, and a 50 µW floor with no spikes — and splits the dynamic
// budget between the always-awake oscillator/divider domain and the divided
// sampling domain so that division alone saturates at the ~55 % saving the
// paper observes before shutdown takes over. All curve *shapes* then emerge
// from simulated activity, not from fitting.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace aetr::power {

/// Per-unit energy/power coefficients.
struct PowerCalibration {
  double static_w = 50e-6;       ///< FPGA static power (paper: 50 µW)
  double osc_domain_w = 2.0e-3;  ///< ring osc + cascade + REQ monitor, awake
  double sampling_cycle_j = 152e-12;  ///< per divided-clock edge (whole fabric)
  double event_j = 200e-12;      ///< per timed event (sync, addr reg, tag)
  double fifo_access_j = 20e-12; ///< per 32-bit SRAM FIFO read or write
  double i2s_bit_j = 2e-12;      ///< per serialised I2S bit
  double spi_bit_j = 2e-12;      ///< per SPI configuration bit
  double wakeup_j = 200e-12;     ///< oscillator restart transient

  /// The calibration used throughout the reproduction (the defaults above).
  [[nodiscard]] static PowerCalibration paper() { return {}; }
};

/// Raw activity counted over a simulation window.
struct ActivityTotals {
  Time window{Time::zero()};        ///< wall (simulated) duration
  Time osc_awake{Time::zero()};     ///< oscillator running time
  std::uint64_t sampling_cycles{0}; ///< divided global-clock edges
  std::uint64_t events{0};          ///< events timestamped
  std::uint64_t fifo_writes{0};
  std::uint64_t fifo_reads{0};
  std::uint64_t i2s_bits{0};
  std::uint64_t spi_bits{0};
  std::uint64_t wakeups{0};

  /// Component-wise difference (for measuring a sub-window).
  [[nodiscard]] ActivityTotals since(const ActivityTotals& earlier) const;
};

/// Average-power contributions per block over a window, in watts.
struct PowerBreakdown {
  double static_w{0.0};
  double osc_domain_w{0.0};
  double sampling_w{0.0};
  double events_w{0.0};
  double fifo_w{0.0};
  double i2s_w{0.0};
  double spi_w{0.0};
  double wakeup_w{0.0};

  [[nodiscard]] double total_w() const {
    return static_w + osc_domain_w + sampling_w + events_w + fifo_w + i2s_w +
           spi_w + wakeup_w;
  }
};

/// Maps activity to energy/power through a calibration.
class PowerModel {
 public:
  explicit PowerModel(PowerCalibration cal = PowerCalibration::paper())
      : cal_{cal} {}

  [[nodiscard]] const PowerCalibration& calibration() const { return cal_; }

  /// Total energy consumed over the window, in joules.
  [[nodiscard]] double energy_j(const ActivityTotals& a) const;

  /// Average power over the window, in watts.
  [[nodiscard]] double average_power_w(const ActivityTotals& a) const;

  /// Per-block average power over the window.
  [[nodiscard]] PowerBreakdown breakdown(const ActivityTotals& a) const;

  /// Eq. 1 of the paper: P_ideal(r) = E_spike * r + P_static.
  [[nodiscard]] double ideal_power_w(double rate_hz, double espike_j) const {
    return espike_j * rate_hz + cal_.static_w;
  }

 private:
  PowerCalibration cal_;
};

/// The paper's E_spike estimate: dynamic energy per spike in the
/// high-activity region, (P - P_static) / rate.
[[nodiscard]] double estimate_espike_j(double power_w, double static_w,
                                       double rate_hz);

/// Energy-proportionality index over a set of (rate, power) samples:
/// 1 = perfectly proportional (power tracks the ideal line), 0 = flat.
/// Computed as 1 - mean((P - P_ideal) / (P_flat - P_ideal)) over samples,
/// where P_flat is the power at the highest rate.
[[nodiscard]] double energy_proportionality_index(
    const std::vector<double>& rates_hz, const std::vector<double>& powers_w,
    double static_w);

}  // namespace aetr::power
