// SRAM-based AETR FIFO buffer (paper §4: 9.2 kB, configurable threshold).
//
// Collected events accumulate here until the batch threshold is crossed, at
// which point the buffer raises its threshold callback and the I2S interface
// drains it in a block — the accumulate-then-batch pattern that lets the
// downstream MCU sleep between transfers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

#include "aer/event.hpp"
#include "fault/injector.hpp"
#include "telemetry/telemetry.hpp"
#include "util/time.hpp"

namespace aetr {
class BlobWriter;
class BlobReader;
}  // namespace aetr

namespace aetr::buffer {

/// What a full FIFO does with the next arriving word.
enum class OverflowPolicy {
  kDropNewest,  ///< the incoming word is lost (paper behaviour: the timed
                ///< event cannot be stalled, the SRAM write is suppressed)
  kDropOldest,  ///< the stalest buffered word is evicted to make room
};

/// Buffer geometry. The paper's 9.2 kB SRAM holds 2300 32-bit AETR words.
struct FifoConfig {
  std::size_t capacity_words = 2300;
  std::size_t batch_threshold = 1024;  ///< raise drain request at this fill
  OverflowPolicy overflow_policy = OverflowPolicy::kDropNewest;
};

/// Word FIFO with occupancy accounting and threshold signalling.
class AetrFifo {
 public:
  using ThresholdFn = std::function<void(Time)>;

  explicit AetrFifo(FifoConfig config = {});

  /// Register the drain-request callback (fires on the push that crosses
  /// the threshold from below, and again only after dropping under it).
  void on_threshold(ThresholdFn fn) { threshold_fn_ = std::move(fn); }

  /// Append a word; returns false (and counts an overflow; the word is
  /// dropped) when full — AER has no way to stall an already-timed event.
  bool push(aer::AetrWord word, Time now);

  /// Remove the oldest word. Reads are saturating: popping an empty FIFO
  /// returns the all-zero bus pattern and counts an underflow instead of
  /// corrupting state (the SRAM read port has no handshake to stall on).
  aer::AetrWord pop(Time now);

  /// Parity verdict of the most recent pop: false when a cell upset was
  /// injected into the returned word and parity checking is enabled — the
  /// reader is expected to drop the word instead of forwarding it.
  [[nodiscard]] bool last_pop_parity_ok() const { return last_pop_parity_ok_; }

  /// SRAM cell-upset lottery. Null is inert.
  void attach_faults(fault::FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return cfg_.capacity_words; }
  [[nodiscard]] const FifoConfig& config() const { return cfg_; }

  /// Runtime threshold reconfiguration (SPI register).
  void set_batch_threshold(std::size_t words);

  /// Attach run telemetry (the FIFO holds no scheduler reference, so the
  /// harness passes the session explicitly). Emits an "occupancy" counter
  /// track, "overflow"/"batch_ready" instants and an occupancy histogram;
  /// registers fifo.* probes.
  void attach_telemetry(telemetry::TelemetrySession* session);

  // --- statistics ----------------------------------------------------------
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
  [[nodiscard]] std::uint64_t pops() const { return pops_; }
  [[nodiscard]] std::uint64_t overflows() const { return overflows_; }
  [[nodiscard]] std::uint64_t underflows() const { return underflows_; }
  [[nodiscard]] std::size_t max_occupancy() const { return max_occupancy_; }

  /// Serialize contents + counters (batch_threshold is runtime-mutable via
  /// SPI, so it travels with the state).
  void save_state(BlobWriter& w) const;
  void restore_state(BlobReader& r);

 private:
  FifoConfig cfg_;
  std::deque<aer::AetrWord> data_;
  ThresholdFn threshold_fn_;
  fault::FaultInjector* faults_{nullptr};
  bool armed_{true};  // threshold edge-triggered re-arm
  bool last_pop_parity_ok_{true};
  std::uint64_t pushes_{0};
  std::uint64_t pops_{0};
  std::uint64_t overflows_{0};
  std::uint64_t underflows_{0};
  std::size_t max_occupancy_{0};
  telemetry::BlockTelemetry tel_;
  LogHistogram* occ_hist_{nullptr};  ///< occupancy sampled at each push
};

}  // namespace aetr::buffer
