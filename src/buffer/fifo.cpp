#include "buffer/fifo.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/blob.hpp"

namespace aetr::buffer {

AetrFifo::AetrFifo(FifoConfig config) : cfg_{config} {
  if (cfg_.capacity_words == 0) {
    throw std::invalid_argument("AetrFifo: capacity must be > 0");
  }
  if (cfg_.batch_threshold == 0 || cfg_.batch_threshold > cfg_.capacity_words) {
    throw std::invalid_argument(
        "AetrFifo: batch threshold must be in [1, capacity]");
  }
}

bool AetrFifo::push(aer::AetrWord word, Time now) {
  // Per-word hot path: one tracing() test guards each emission cluster so
  // the disabled path never materialises the TraceArg lists.
  if (data_.size() >= cfg_.capacity_words) {
    ++overflows_;
    if (tel_.tracing()) [[unlikely]] {
      tel_.instant("overflow", now,
                   {{"occupancy", static_cast<double>(data_.size())}});
    }
    if (cfg_.overflow_policy == OverflowPolicy::kDropNewest) return false;
    // kDropOldest: evict the stalest word to keep the freshest timing info
    // (the overflow above counts the evicted word as lost).
    data_.pop_front();
  }
  data_.push_back(word);
  ++pushes_;
  max_occupancy_ = std::max(max_occupancy_, data_.size());
  if (tel_.tracing()) [[unlikely]] {
    tel_.counter("occupancy", now, static_cast<double>(data_.size()));
  }
  if (occ_hist_ != nullptr) [[unlikely]] {
    occ_hist_->add(static_cast<double>(data_.size()));
  }
  if (armed_ && data_.size() >= cfg_.batch_threshold) {
    armed_ = false;
    if (tel_.tracing()) [[unlikely]] {
      tel_.instant("batch_ready", now,
                   {{"occupancy", static_cast<double>(data_.size())},
                    {"threshold", static_cast<double>(cfg_.batch_threshold)}});
    }
    if (threshold_fn_) threshold_fn_(now);
  }
  return true;
}

aer::AetrWord AetrFifo::pop(Time now) {
  last_pop_parity_ok_ = true;
  if (data_.empty()) {
    // Saturating read: the SRAM read port returns the idle bus pattern.
    ++underflows_;
    return aer::AetrWord{};
  }
  aer::AetrWord word = data_.front();
  data_.pop_front();
  ++pops_;
  if (faults_ != nullptr &&
      faults_->roll(fault::Site::kFifoCell,
                    faults_->plan().fifo.cell_bit_flip_prob)) {
    // A cell upset while the word was resident, observed at the read port.
    word = aer::AetrWord{
        word.raw() ^ (1u << faults_->pick_bit(fault::Site::kFifoCell, 32))};
    ++faults_->counters().fifo_bit_flips;
    if (faults_->plan().recovery.fifo_parity) {
      // The per-word parity bit catches single-bit upsets; the reader is
      // told to drop the word rather than forward a corrupt timestamp.
      last_pop_parity_ok_ = false;
      ++faults_->counters().fifo_parity_drops;
    }
  }
  if (tel_.tracing()) [[unlikely]] {
    tel_.counter("occupancy", now, static_cast<double>(data_.size()));
  }
  if (data_.size() < cfg_.batch_threshold) armed_ = true;
  return word;
}

void AetrFifo::set_batch_threshold(std::size_t words) {
  if (words == 0 || words > cfg_.capacity_words) {
    throw std::invalid_argument(
        "AetrFifo: batch threshold must be in [1, capacity]");
  }
  cfg_.batch_threshold = words;
  // Re-arm: if the occupancy already sits at/above the new threshold the
  // next push delivers the (still unconsumed) crossing notification.
  armed_ = true;
}

void AetrFifo::attach_telemetry(telemetry::TelemetrySession* session) {
  tel_ = telemetry::BlockTelemetry{session, "fifo"};
  if (auto* m = tel_.metrics()) {
    m->probe("fifo.occupancy", [this] {
      return static_cast<double>(data_.size());
    });
    m->probe("fifo.pushes", [this] {
      return static_cast<double>(pushes_);
    });
    m->probe("fifo.pops", [this] { return static_cast<double>(pops_); });
    m->probe("fifo.overflows", [this] {
      return static_cast<double>(overflows_);
    });
    m->probe("fifo.underflows", [this] {
      return static_cast<double>(underflows_);
    });
    m->probe("fifo.max_occupancy", [this] {
      return static_cast<double>(max_occupancy_);
    });
    occ_hist_ = m->log_histogram("fifo.occupancy_words", 1.0,
                                 static_cast<double>(cfg_.capacity_words) * 2.0,
                                 4);
  }
}

void AetrFifo::save_state(BlobWriter& w) const {
  w.u64(cfg_.batch_threshold);
  w.u64(data_.size());
  for (const auto& word : data_) w.u32(word.raw());
  w.b(armed_);
  w.b(last_pop_parity_ok_);
  w.u64(pushes_);
  w.u64(pops_);
  w.u64(overflows_);
  w.u64(underflows_);
  w.u64(max_occupancy_);
}

void AetrFifo::restore_state(BlobReader& r) {
  cfg_.batch_threshold = static_cast<std::size_t>(r.u64());
  data_.clear();
  const auto n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    data_.push_back(aer::AetrWord{r.u32()});
  }
  armed_ = r.b();
  last_pop_parity_ok_ = r.b();
  pushes_ = r.u64();
  pops_ = r.u64();
  overflows_ = r.u64();
  underflows_ = r.u64();
  max_occupancy_ = static_cast<std::size_t>(r.u64());
}

}  // namespace aetr::buffer
