#include "buffer/fifo.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace aetr::buffer {

AetrFifo::AetrFifo(FifoConfig config) : cfg_{config} {
  if (cfg_.capacity_words == 0) {
    throw std::invalid_argument("AetrFifo: capacity must be > 0");
  }
  if (cfg_.batch_threshold == 0 || cfg_.batch_threshold > cfg_.capacity_words) {
    throw std::invalid_argument(
        "AetrFifo: batch threshold must be in [1, capacity]");
  }
}

bool AetrFifo::push(aer::AetrWord word, Time now) {
  if (data_.size() >= cfg_.capacity_words) {
    ++overflows_;
    return false;
  }
  data_.push_back(word);
  ++pushes_;
  max_occupancy_ = std::max(max_occupancy_, data_.size());
  if (armed_ && data_.size() >= cfg_.batch_threshold) {
    armed_ = false;
    if (threshold_fn_) threshold_fn_(now);
  }
  return true;
}

aer::AetrWord AetrFifo::pop(Time /*now*/) {
  assert(!data_.empty());
  const aer::AetrWord word = data_.front();
  data_.pop_front();
  ++pops_;
  if (data_.size() < cfg_.batch_threshold) armed_ = true;
  return word;
}

void AetrFifo::set_batch_threshold(std::size_t words) {
  if (words == 0 || words > cfg_.capacity_words) {
    throw std::invalid_argument(
        "AetrFifo: batch threshold must be in [1, capacity]");
  }
  cfg_.batch_threshold = words;
  // Re-arm: if the occupancy already sits at/above the new threshold the
  // next push delivers the (still unconsumed) crossing notification.
  armed_ = true;
}

}  // namespace aetr::buffer
